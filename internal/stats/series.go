// Package stats provides the numeric utilities the experiments need:
// series containers, the 0→1 normalisation of the paper's Figures 3c/4c,
// growth-rate comparison between predicted and observed series, simple
// least-squares fitting for calibration, and summary means.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Series is a named sequence of (x, y) points with shared x across the
// figure it belongs to.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Errors.
var (
	ErrEmpty    = errors.New("stats: empty series")
	ErrMismatch = errors.New("stats: length mismatch")
	ErrDegener  = errors.New("stats: degenerate input")
)

// NewSeries builds a series after validating lengths.
func NewSeries(name string, x, y []float64) (Series, error) {
	if len(x) != len(y) {
		return Series{}, fmt.Errorf("%w: len(x)=%d len(y)=%d", ErrMismatch, len(x), len(y))
	}
	if len(x) == 0 {
		return Series{}, ErrEmpty
	}
	return Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)}, nil
}

// Len returns the point count.
func (s Series) Len() int { return len(s.X) }

// MinMaxY returns the y range.
func (s Series) MinMaxY() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range s.Y {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Normalise rescales y onto [0,1] (min→0, max→1), the transformation the
// paper applies in Figures 3c and 4c so that cost (dimensionless) and time
// (ms) trends can be compared directly: "we have normalised all data on a
// 0→1 scale". A constant series maps to all zeros.
func (s Series) Normalise() Series {
	min, max := s.MinMaxY()
	out := Series{Name: s.Name, X: append([]float64(nil), s.X...), Y: make([]float64, len(s.Y))}
	span := max - min
	if span == 0 {
		return out
	}
	for i, v := range s.Y {
		out.Y[i] = (v - min) / span
	}
	return out
}

// Mean returns the arithmetic mean of y.
func (s Series) Mean() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Y {
		sum += v
	}
	return sum / float64(len(s.Y))
}

// Mean averages a plain slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// MeanAbsDiff returns the mean |a-b| over paired slices — the paper's
// "predicted proportions ... are on average to within 1.5% of observed
// proportions" metric for Figure 6.
func MeanAbsDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrMismatch, len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a)), nil
}

// GrowthGap measures how closely the shape of predicted tracks the shape
// of observed: both series are normalised to [0,1] and the mean absolute
// difference of the normalised values is returned. Smaller is better. The
// paper's claim "the ATGPU function has a rate of growth which is much
// closer to the actual total running time [than SWGPU]" corresponds to
// GrowthGap(atgpu, total) < GrowthGap(swgpu, total).
func GrowthGap(predicted, observed Series) (float64, error) {
	if predicted.Len() != observed.Len() {
		return 0, fmt.Errorf("%w: predicted %d points, observed %d",
			ErrMismatch, predicted.Len(), observed.Len())
	}
	p := predicted.Normalise()
	o := observed.Normalise()
	return MeanAbsDiff(p.Y, o.Y)
}
