package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewSeries(t *testing.T) {
	s, err := NewSeries("a", []float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Name != "a" {
		t.Fatalf("series = %+v", s)
	}
	if _, err := NewSeries("b", []float64{1}, []float64{1, 2}); !errors.Is(err, ErrMismatch) {
		t.Errorf("mismatch: %v", err)
	}
	if _, err := NewSeries("c", nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	// NewSeries must copy its inputs.
	x := []float64{1, 2}
	y := []float64{3, 4}
	s, _ = NewSeries("d", x, y)
	x[0], y[0] = 99, 99
	if s.X[0] != 1 || s.Y[0] != 3 {
		t.Fatal("NewSeries aliases caller slices")
	}
}

func TestMinMaxY(t *testing.T) {
	s, _ := NewSeries("a", []float64{0, 1, 2}, []float64{5, -3, 7})
	min, max := s.MinMaxY()
	if min != -3 || max != 7 {
		t.Fatalf("MinMaxY = %g, %g", min, max)
	}
}

func TestNormalise(t *testing.T) {
	s, _ := NewSeries("a", []float64{0, 1, 2}, []float64{10, 20, 30})
	n := s.Normalise()
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(n.Y[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalise Y = %v, want %v", n.Y, want)
		}
	}
	// Constant series maps to zeros, not NaN.
	c, _ := NewSeries("c", []float64{0, 1}, []float64{5, 5})
	for _, v := range c.Normalise().Y {
		if v != 0 {
			t.Fatalf("constant series normalised to %v", c.Normalise().Y)
		}
	}
}

// Property: normalised values lie in [0,1], with 0 and 1 attained, and
// normalisation is idempotent.
func TestNormaliseProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		x := make([]float64, len(raw))
		for i := range x {
			x[i] = float64(i)
		}
		s, err := NewSeries("p", x, raw)
		if err != nil {
			return false
		}
		n := s.Normalise()
		min, max := n.MinMaxY()
		if min < 0 || max > 1 {
			return false
		}
		// Idempotence.
		n2 := n.Normalise()
		for i := range n.Y {
			if math.Abs(n.Y[i]-n2.Y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
	s, _ := NewSeries("a", []float64{0, 1}, []float64{4, 6})
	if s.Mean() != 5 {
		t.Fatalf("Series.Mean = %g", s.Mean())
	}
	if (Series{}).Mean() != 0 {
		t.Fatal("empty series mean should be 0")
	}
}

func TestMeanAbsDiff(t *testing.T) {
	got, err := MeanAbsDiff([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MeanAbsDiff = %g, want 1", got)
	}
	if _, err := MeanAbsDiff([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrMismatch) {
		t.Errorf("mismatch: %v", err)
	}
	if _, err := MeanAbsDiff(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
}

func TestGrowthGap(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	obs, _ := NewSeries("obs", x, []float64{0, 10, 20, 30})
	lin, _ := NewSeries("lin", x, []float64{5, 15, 25, 35}) // same shape
	gap, err := GrowthGap(lin, obs)
	if err != nil {
		t.Fatal(err)
	}
	if gap > 1e-12 {
		t.Fatalf("identical-shape gap = %g, want 0", gap)
	}
	flat, _ := NewSeries("flat", x, []float64{10, 11, 11.5, 40}) // different shape
	gap2, err := GrowthGap(flat, obs)
	if err != nil {
		t.Fatal(err)
	}
	if gap2 <= gap {
		t.Fatal("different shape should have larger gap")
	}
	short, _ := NewSeries("s", []float64{0}, []float64{1})
	if _, err := GrowthGap(short, obs); !errors.Is(err, ErrMismatch) {
		t.Errorf("length mismatch: %v", err)
	}
}

func TestFitLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %g, want 1 for exact line", fit.R2)
	}
	if got := fit.Predict(10); math.Abs(got-21) > 1e-12 {
		t.Fatalf("Predict(10) = %g, want 21", got)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); !errors.Is(err, ErrDegener) {
		t.Errorf("single point: %v", err)
	}
	if _, err := FitLine([]float64{1, 1}, []float64{2, 3}); !errors.Is(err, ErrDegener) {
		t.Errorf("identical x: %v", err)
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrMismatch) {
		t.Errorf("mismatch: %v", err)
	}
}

// Property: FitLine recovers any exact affine relationship.
func TestFitLineRecoversAffineProperty(t *testing.T) {
	f := func(slope, intercept int8) bool {
		a, b := float64(slope), float64(intercept)
		x := []float64{0, 1, 2, 5, 9}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = b + a*x[i]
		}
		fit, err := FitLine(x, y)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-a) < 1e-9 && math.Abs(fit.Intercept-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %g", got)
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("x/0 should be +Inf")
	}
}
