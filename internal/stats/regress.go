package stats

import (
	"fmt"
	"math"
)

// LinearFit is the least-squares line y = Intercept + Slope·x, used by the
// calibration package to recover Boyer's α (intercept) and β (slope) from
// measured transfer times, the same fitting procedure Boyer et al. apply
// to real hardware.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLine computes the least-squares fit of y on x.
func FitLine(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("%w: len(x)=%d len(y)=%d", ErrMismatch, len(x), len(y))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinearFit{}, fmt.Errorf("%w: need at least 2 points", ErrDegener)
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("%w: all x identical", ErrDegener)
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range x {
			res := y[i] - (intercept + slope*x[i])
			ssRes += res * res
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// RelativeError returns |predicted-observed|/|observed|, the error metric
// the paper quotes for prior predictive tools (5.14%, 25.8%). Observed must
// be non-zero.
func RelativeError(predicted, observed float64) float64 {
	if observed == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-observed) / math.Abs(observed)
}
