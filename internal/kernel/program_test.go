package kernel

import (
	"errors"
	"strings"
	"testing"
)

func validProgram() *Program {
	return &Program{
		Name: "t",
		Instrs: []Instr{
			{Op: OpConst, Rd: 0, Imm: 1},
			{Op: OpHalt},
		},
		NumRegs: 1,
	}
}

func TestValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Program)
		want error
	}{
		{"empty", func(p *Program) { p.Instrs = nil }, ErrEmptyProgram},
		{"no halt", func(p *Program) { p.Instrs = p.Instrs[:1] }, ErrNoHalt},
		{"bad opcode", func(p *Program) { p.Instrs[0].Op = Op(250) }, ErrBadOpcode},
		{"bad register", func(p *Program) { p.Instrs[0].Rd = 9 }, ErrBadRegister},
		{"too many regs", func(p *Program) { p.NumRegs = 257 }, ErrTooManyRegs},
		{"negative regs", func(p *Program) { p.NumRegs = -1 }, ErrTooManyRegs},
		{"negative shared", func(p *Program) { p.SharedWords = -1 }, ErrNegativeShared},
		{"jump out of range", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpJump, Target: 99}
		}, ErrBadTarget},
		{"negative target", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpBrNZ, Ra: 0, Target: -1}
		}, ErrBadTarget},
		{"stray if.end", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpIfEnd}
		}, ErrUnbalancedIf},
		{"unclosed if.begin", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpIfBegin, Ra: 0, Target: 2}
		}, ErrUnbalancedIf},
	}
	for _, c := range cases {
		p := validProgram()
		c.mut(p)
		if err := p.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: Validate() = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestValidateIfTargetMustFollowEnd(t *testing.T) {
	p := &Program{
		Name: "t",
		Instrs: []Instr{
			{Op: OpIfBegin, Ra: 0, Target: 1}, // wrong: must be 3 (after if.end)
			{Op: OpNop},
			{Op: OpIfEnd},
			{Op: OpHalt},
		},
		NumRegs: 1,
	}
	if err := p.Validate(); !errors.Is(err, ErrBadIfTarget) {
		t.Fatalf("Validate() = %v, want ErrBadIfTarget", err)
	}
	p.Instrs[0].Target = 3
	if err := p.Validate(); err != nil {
		t.Fatalf("corrected program rejected: %v", err)
	}
}

func TestValidateNestedIf(t *testing.T) {
	p := &Program{
		Name: "nested",
		Instrs: []Instr{
			{Op: OpIfBegin, Ra: 0, Target: 5},
			{Op: OpIfBegin, Ra: 0, Target: 4},
			{Op: OpNop},
			{Op: OpIfEnd},
			{Op: OpIfEnd},
			{Op: OpHalt},
		},
		NumRegs: 1,
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("nested ifs rejected: %v", err)
	}
}

func TestCountStatic(t *testing.T) {
	p := &Program{
		Name: "c",
		Instrs: []Instr{
			{Op: OpConst}, {Op: OpConst}, {Op: OpAdd}, {Op: OpHalt},
		},
		NumRegs: 1,
	}
	counts := p.CountStatic()
	if counts[OpConst] != 2 || counts[OpAdd] != 1 || counts[OpHalt] != 1 {
		t.Fatalf("CountStatic = %v", counts)
	}
}

func TestDisassemble(t *testing.T) {
	p := validProgram()
	p.SharedWords = 8
	out := p.Disassemble()
	for _, want := range []string{"kernel t", "regs=1", "shared=8", "0: const r0, 1", "1: halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestLen(t *testing.T) {
	if got := validProgram().Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}
