// Package kernel defines the instruction set, program representation and
// structured builder for GPU kernels executed by the simulated device in
// package simgpu, and analysed on the ATGPU abstract model in package core.
//
// The instruction set deliberately mirrors what the ATGPU paper's pseudocode
// can express: register arithmetic, global-memory block transfers (the "⇐"
// operator), shared-memory access (the "←" operator), barriers, uniform
// loops, and a single-block conditional (the paper restricts if-statements
// to one conditional block "in order to reduce diverging execution paths").
//
// A kernel is a list of instructions for a single thread; the device runs
// one instance per core, with the b cores of a multiprocessor executing in
// lockstep exactly as the model prescribes.
package kernel

import "fmt"

// Word is the machine word of the model. The ATGPU model measures all
// memory (shared memory M, global memory G, transfer volumes I and O) in
// words; we fix a word to a 64-bit signed integer.
type Word = int64

// Reg names a per-thread register. Registers hold one Word each and are
// private to a thread, standing in for the register space the paper notes
// is reserved per core in shared memory.
type Reg uint8

// Op is an instruction opcode.
type Op uint8

// Opcode space. Arithmetic instructions operate on registers; *I variants
// take the second operand from the instruction's immediate field.
const (
	OpNop Op = iota

	// OpConst loads Imm into Rd.
	OpConst
	// OpMov copies Ra into Rd.
	OpMov

	// Three-register arithmetic: Rd <- Ra (op) Rb.
	OpAdd
	OpSub
	OpMul
	OpDiv // quotient; division by zero traps the kernel
	OpMod // remainder; division by zero traps the kernel
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	OpShl // shift amounts are masked to [0,63]
	OpShr // arithmetic shift right

	// Register-immediate arithmetic: Rd <- Ra (op) Imm.
	OpAddI
	OpMulI
	OpDivI
	OpModI
	OpShlI
	OpShrI
	OpAndI

	// Comparisons set Rd to 1 or 0.
	OpSlt // Rd <- Ra < Rb
	OpSle // Rd <- Ra <= Rb
	OpSeq // Rd <- Ra == Rb
	OpSne // Rd <- Ra != Rb
	OpSltI
	OpSleI
	OpSeqI
	OpSneI

	// Thread geometry. The model identifies a thread by the pair
	// (multiprocessor index i, core index j); a kernel launch supplies a
	// grid of thread blocks, one warp of B lanes per block.
	OpLaneID    // Rd <- core index j within the multiprocessor (0..b-1)
	OpBlockID   // Rd <- thread block index (0..numBlocks-1)
	OpNumBlocks // Rd <- number of thread blocks in the launch
	OpBlockDim  // Rd <- b, the warp width / cores per multiprocessor

	// Memory. Addresses are in words and are taken from registers, so
	// access patterns (coalescing, bank conflicts) are data-dependent and
	// observed by the simulator, exactly as the model's cost metrics
	// require.
	OpLdGlobal // Rd <- global[Ra]     ("x ⇐ g" in paper pseudocode)
	OpStGlobal // global[Ra] <- Rb
	OpLdShared // Rd <- shared[Ra]     ("x ← _s" in paper pseudocode)
	OpStShared // shared[Ra] <- Rb

	// OpBarrier synchronises all warps of a thread block. With the
	// model's one-warp blocks it costs one instruction slot; the device
	// still accounts for it so multi-warp extensions stay correct.
	OpBarrier

	// Control flow. OpJump is unconditional. OpBrNZ branches when Ra is
	// non-zero and must be warp-uniform (all active lanes agree); the
	// builder uses it only for loop back-edges, matching the paper's
	// uniform wrapper loops. Divergence is expressed only through
	// OpIfBegin/OpIfEnd, the paper's single-block if-statement: lanes
	// whose Ra is zero are masked off until the matching OpIfEnd.
	OpJump    // pc <- Target
	OpBrNZ    // if Ra != 0 { pc <- Target } (uniform)
	OpIfBegin // mask &= (Ra != 0); if mask empty pc <- Target (past OpIfEnd)
	OpIfEnd   // restore mask saved by matching OpIfBegin

	// OpHalt retires the warp.
	OpHalt

	// Atomics. Each performs a read-modify-write on one memory cell per
	// lane: Ra holds the address, Rb the operand, and Rd receives the old
	// cell value. Imm selects the address space (AtomShared or AtomGlobal).
	// Conflicting lanes are serialised by the device — per bank for shared
	// atomics, per address for global atomics — in ascending lane order, so
	// results are deterministic.
	OpAtomAdd  // Rd <- mem[Ra]; mem[Ra] <- Rd + Rb
	OpAtomMax  // Rd <- mem[Ra]; mem[Ra] <- max(Rd, Rb)
	OpAtomExch // Rd <- mem[Ra]; mem[Ra] <- Rb
	// OpAtomCAS compares against Rd's incoming value: if mem[Ra] == Rd then
	// mem[Ra] <- Rb; Rd always receives the old cell value.
	OpAtomCAS

	opCount // sentinel; keep last
)

// Address-space selectors carried in an atomic instruction's Imm field.
const (
	// AtomShared targets the block's shared memory.
	AtomShared Word = 0
	// AtomGlobal targets device global memory.
	AtomGlobal Word = 1
)

var opNames = [...]string{
	OpNop:       "nop",
	OpConst:     "const",
	OpMov:       "mov",
	OpAdd:       "add",
	OpSub:       "sub",
	OpMul:       "mul",
	OpDiv:       "div",
	OpMod:       "mod",
	OpMin:       "min",
	OpMax:       "max",
	OpAnd:       "and",
	OpOr:        "or",
	OpXor:       "xor",
	OpShl:       "shl",
	OpShr:       "shr",
	OpAddI:      "addi",
	OpMulI:      "muli",
	OpDivI:      "divi",
	OpModI:      "modi",
	OpShlI:      "shli",
	OpShrI:      "shri",
	OpAndI:      "andi",
	OpSlt:       "slt",
	OpSle:       "sle",
	OpSeq:       "seq",
	OpSne:       "sne",
	OpSltI:      "slti",
	OpSleI:      "slei",
	OpSeqI:      "seqi",
	OpSneI:      "snei",
	OpLaneID:    "laneid",
	OpBlockID:   "blockid",
	OpNumBlocks: "numblocks",
	OpBlockDim:  "blockdim",
	OpLdGlobal:  "ld.global",
	OpStGlobal:  "st.global",
	OpLdShared:  "ld.shared",
	OpStShared:  "st.shared",
	OpBarrier:   "barrier",
	OpJump:      "jump",
	OpBrNZ:      "brnz",
	OpIfBegin:   "if.begin",
	OpIfEnd:     "if.end",
	OpHalt:      "halt",
	OpAtomAdd:   "atom.add",
	OpAtomMax:   "atom.max",
	OpAtomExch:  "atom.exch",
	OpAtomCAS:   "atom.cas",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// IsMemory reports whether the opcode accesses global or shared memory.
func (o Op) IsMemory() bool {
	switch o {
	case OpLdGlobal, OpStGlobal, OpLdShared, OpStShared:
		return true
	}
	return false
}

// IsGlobalMemory reports whether the opcode accesses global memory; such
// instructions are the ones counted by the model's I/O metric qᵢ.
func (o Op) IsGlobalMemory() bool { return o == OpLdGlobal || o == OpStGlobal }

// IsAtomic reports whether the opcode is a read-modify-write atomic; the
// targeted address space is the instruction's Imm field (AtomShared or
// AtomGlobal).
func (o Op) IsAtomic() bool {
	switch o {
	case OpAtomAdd, OpAtomMax, OpAtomExch, OpAtomCAS:
		return true
	}
	return false
}

// IsControl reports whether the opcode alters the program counter or the
// active mask.
func (o Op) IsControl() bool {
	switch o {
	case OpJump, OpBrNZ, OpIfBegin, OpIfEnd, OpHalt:
		return true
	}
	return false
}

// Instr is one kernel instruction. Field use depends on the opcode:
// arithmetic uses Rd/Ra/Rb (or Rd/Ra/Imm for immediate forms), memory
// uses Rd or Rb for data and Ra for the address, control flow uses Target.
type Instr struct {
	Op     Op
	Rd     Reg   // destination register
	Ra     Reg   // first source register / address register
	Rb     Reg   // second source register / store-data register
	Imm    Word  // immediate operand
	Target int32 // branch target (instruction index)
}

// String renders the instruction in assembly-like form.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpBarrier, OpHalt:
		return in.Op.String()
	case OpConst:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case OpMov, OpLaneID, OpBlockID, OpNumBlocks, OpBlockDim:
		if in.Op == OpMov {
			return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Ra)
		}
		return fmt.Sprintf("%s r%d", in.Op, in.Rd)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpMin, OpMax, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpSlt, OpSle, OpSeq, OpSne:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Ra, in.Rb)
	case OpAddI, OpMulI, OpDivI, OpModI, OpShlI, OpShrI, OpAndI,
		OpSltI, OpSleI, OpSeqI, OpSneI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Ra, in.Imm)
	case OpLdGlobal:
		return fmt.Sprintf("%s r%d, [r%d]", in.Op, in.Rd, in.Ra)
	case OpStGlobal:
		return fmt.Sprintf("%s [r%d], r%d", in.Op, in.Ra, in.Rb)
	case OpLdShared:
		return fmt.Sprintf("%s r%d, [r%d]", in.Op, in.Rd, in.Ra)
	case OpStShared:
		return fmt.Sprintf("%s [r%d], r%d", in.Op, in.Ra, in.Rb)
	case OpJump:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case OpBrNZ:
		return fmt.Sprintf("%s r%d, @%d", in.Op, in.Ra, in.Target)
	case OpIfBegin:
		return fmt.Sprintf("%s r%d, @%d", in.Op, in.Ra, in.Target)
	case OpIfEnd:
		return in.Op.String()
	case OpAtomAdd, OpAtomMax, OpAtomExch, OpAtomCAS:
		space := "shared"
		if in.Imm == AtomGlobal {
			space = "global"
		}
		return fmt.Sprintf("%s r%d, [%s:r%d], r%d", in.Op, in.Rd, space, in.Ra, in.Rb)
	default:
		return fmt.Sprintf("%s rd=%d ra=%d rb=%d imm=%d tgt=%d",
			in.Op, in.Rd, in.Ra, in.Rb, in.Imm, in.Target)
	}
}
