package kernel_test

import (
	"errors"
	"testing"

	"atgpu/internal/analyze"
	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
)

// Operand edge cases: programs that are statically well-formed (Validate
// passes — addresses are dynamic) but trap at runtime, and the register-file
// extremes. Each trapping program is run both ways: the simulator must trap
// and the static analyzer must flag the same site, which is what lets the
// lint pre-flight refuse these launches before any simulation happens.

// edgeDevice returns a small device and the matching abstract machine.
func edgeDevice(t *testing.T) (*simgpu.Device, analyze.Machine) {
	t.Helper()
	cfg := simgpu.Tiny()
	dev, err := simgpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, analyze.FromConfig(cfg)
}

// wantBoundsError asserts the analyzer produced an error-severity bounds
// finding at the given pc and marked the analysis approximate (a trapping
// launch can't be priced).
func wantBoundsError(t *testing.T, rep *analyze.Report, pc int) {
	t.Helper()
	if rep.Precise {
		t.Error("trapping program reported as precise")
	}
	for _, f := range rep.Findings {
		if f.Analyzer == analyze.AnalyzerBounds && f.Severity == analyze.SevError && f.PC == pc {
			return
		}
	}
	t.Fatalf("no bounds error at pc %d; findings: %v", pc, rep.Findings)
}

func TestNegativeSharedIndexTrapsAndFlagged(t *testing.T) {
	prog := &kernel.Program{
		Name: "neg-shared", NumRegs: 2, SharedWords: 4,
		Instrs: []kernel.Instr{
			{Op: kernel.OpConst, Rd: 0, Imm: -1},
			{Op: kernel.OpLdShared, Rd: 1, Ra: 0},
			{Op: kernel.OpHalt},
		},
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("negative indices are dynamic; Validate should pass: %v", err)
	}
	dev, m := edgeDevice(t)
	if _, err := dev.Launch(prog, 1); !errors.Is(err, simgpu.ErrKernelTrap) {
		t.Fatalf("launch error = %v, want kernel trap", err)
	}
	rep, err := analyze.Program(prog, analyze.Options{Machine: m, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantBoundsError(t, rep, 1)
}

func TestNegativeGlobalIndexTrapsAndFlagged(t *testing.T) {
	prog := &kernel.Program{
		Name: "neg-global", NumRegs: 2,
		Instrs: []kernel.Instr{
			{Op: kernel.OpConst, Rd: 0, Imm: -5},
			{Op: kernel.OpLdGlobal, Rd: 1, Ra: 0},
			{Op: kernel.OpHalt},
		},
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	dev, m := edgeDevice(t)
	if _, err := dev.Launch(prog, 1); !errors.Is(err, simgpu.ErrKernelTrap) {
		t.Fatalf("launch error = %v, want kernel trap", err)
	}
	rep, err := analyze.Program(prog, analyze.Options{Machine: m, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantBoundsError(t, rep, 1)
}

func TestZeroSizeSharedDeclTrapsAndFlagged(t *testing.T) {
	// SharedWords: 0 is legal (a kernel need not use shared memory), but
	// then any shared access — even cell 0 — is out of bounds.
	prog := &kernel.Program{
		Name: "zero-shared", NumRegs: 1, SharedWords: 0,
		Instrs: []kernel.Instr{
			{Op: kernel.OpStShared, Ra: 0, Rb: 0},
			{Op: kernel.OpHalt},
		},
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("zero-size shared decl should validate: %v", err)
	}
	dev, m := edgeDevice(t)
	if _, err := dev.Launch(prog, 1); !errors.Is(err, simgpu.ErrKernelTrap) {
		t.Fatalf("launch error = %v, want kernel trap", err)
	}
	rep, err := analyze.Program(prog, analyze.Options{Machine: m, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantBoundsError(t, rep, 0)
}

// TestMaxRegisterProgram exercises the top of the register file: NumRegs at
// the 256 cap with r255 live. The simulator and the analyzer must both
// handle it, and agree on the counters.
func TestMaxRegisterProgram(t *testing.T) {
	prog := &kernel.Program{
		Name: "max-regs", NumRegs: 256,
		Instrs: []kernel.Instr{
			{Op: kernel.OpConst, Rd: 255, Imm: 7},
			{Op: kernel.OpAddI, Rd: 254, Ra: 255, Imm: 1},
			{Op: kernel.OpLaneID, Rd: 0},
			{Op: kernel.OpStGlobal, Ra: 0, Rb: 254},
			{Op: kernel.OpHalt},
		},
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	dev, m := edgeDevice(t)
	res, err := dev.Launch(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analyze.Program(prog, analyze.Options{Machine: m, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Precise || len(rep.Findings) != 0 {
		t.Fatalf("clean max-register program: precise=%v findings=%v", rep.Precise, rep.Findings)
	}
	if got, want := rep.Stats.InstructionsIssued, res.Stats.InstructionsIssued; got != want {
		t.Errorf("static instructions %d != observed %d", got, want)
	}
	if got, want := rep.Stats.GlobalTransactions, res.Stats.GlobalTransactions; got != want {
		t.Errorf("static transactions %d != observed %d", got, want)
	}
}

func TestRegisterFileLimits(t *testing.T) {
	halt := []kernel.Instr{{Op: kernel.OpHalt}}
	over := &kernel.Program{Name: "over", NumRegs: 257, Instrs: halt}
	if err := over.Validate(); !errors.Is(err, kernel.ErrTooManyRegs) {
		t.Errorf("NumRegs=257: %v, want ErrTooManyRegs", err)
	}
	out := &kernel.Program{
		Name: "out", NumRegs: 10,
		Instrs: []kernel.Instr{{Op: kernel.OpConst, Rd: 10}, {Op: kernel.OpHalt}},
	}
	if err := out.Validate(); !errors.Is(err, kernel.ErrBadRegister) {
		t.Errorf("r10 with 10 regs: %v, want ErrBadRegister", err)
	}
	neg := &kernel.Program{Name: "neg", NumRegs: 1, SharedWords: -1, Instrs: halt}
	if err := neg.Validate(); !errors.Is(err, kernel.ErrNegativeShared) {
		t.Errorf("SharedWords=-1: %v, want ErrNegativeShared", err)
	}
}
