package kernel

import "testing"

func TestDecodeColumnBases(t *testing.T) {
	b := NewBuilder("dec", 0)
	x := b.Reg()
	y := b.Reg()
	b.LaneID(x)
	b.Add(y, x, R(x))
	p := b.MustBuild()

	const width = 32
	d, err := Decode(p, width)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Width != width || d.Prog != p {
		t.Fatalf("decoded header = (%d, %p), want (%d, %p)", d.Width, d.Prog, width, p)
	}
	if len(d.Ins) != len(p.Instrs) {
		t.Fatalf("decoded %d instrs, want %d", len(d.Ins), len(p.Instrs))
	}
	for i, in := range p.Instrs {
		di := d.Ins[i]
		if di.Op != in.Op || di.Imm != in.Imm || di.Target != in.Target {
			t.Errorf("instr %d: decoded (%v imm=%d tgt=%d) != source (%v imm=%d tgt=%d)",
				i, di.Op, di.Imm, di.Target, in.Op, in.Imm, in.Target)
		}
		if int(di.D) != int(in.Rd)*width || int(di.A) != int(in.Ra)*width || int(di.B) != int(in.Rb)*width {
			t.Errorf("instr %d: bases (%d,%d,%d), want (%d,%d,%d)",
				i, di.D, di.A, di.B, int(in.Rd)*width, int(in.Ra)*width, int(in.Rb)*width)
		}
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := Decode(nil, 4); err == nil {
		t.Error("Decode(nil) should fail")
	}
	b := NewBuilder("dec", 0)
	b.Nop()
	p := b.MustBuild()
	if _, err := Decode(p, 0); err == nil {
		t.Error("Decode(width=0) should fail")
	}
}
