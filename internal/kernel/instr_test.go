package kernel

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpNop:       "nop",
		OpConst:     "const",
		OpAdd:       "add",
		OpAddI:      "addi",
		OpSlt:       "slt",
		OpLdGlobal:  "ld.global",
		OpStShared:  "st.shared",
		OpBarrier:   "barrier",
		OpIfBegin:   "if.begin",
		OpHalt:      "halt",
		OpNumBlocks: "numblocks",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q, want to contain the code", got)
	}
}

func TestOpValid(t *testing.T) {
	for op := OpNop; op < opCount; op++ {
		if !op.Valid() {
			t.Errorf("op %v should be valid", op)
		}
		if op.String() == "" {
			t.Errorf("op %d has empty mnemonic", op)
		}
	}
	if Op(opCount).Valid() {
		t.Error("opCount should be invalid")
	}
	if Op(255).Valid() {
		t.Error("op 255 should be invalid")
	}
}

func TestOpClassification(t *testing.T) {
	memOps := []Op{OpLdGlobal, OpStGlobal, OpLdShared, OpStShared}
	for _, op := range memOps {
		if !op.IsMemory() {
			t.Errorf("%v should be memory", op)
		}
	}
	globalOps := []Op{OpLdGlobal, OpStGlobal}
	for _, op := range globalOps {
		if !op.IsGlobalMemory() {
			t.Errorf("%v should be global memory", op)
		}
	}
	if OpLdShared.IsGlobalMemory() {
		t.Error("ld.shared is not global memory")
	}
	if OpAdd.IsMemory() {
		t.Error("add is not memory")
	}
	ctlOps := []Op{OpJump, OpBrNZ, OpIfBegin, OpIfEnd, OpHalt}
	for _, op := range ctlOps {
		if !op.IsControl() {
			t.Errorf("%v should be control", op)
		}
	}
	if OpBarrier.IsControl() {
		t.Error("barrier does not alter control flow")
	}
}

// TestInstrStringExhaustive renders one representative instruction per
// defined opcode and checks that none falls into String's default arm (the
// "rd=... ra=..." dump reserved for undefined opcodes) and that every
// rendering leads with the opcode's unique mnemonic — the round trip from
// rendered text back to the opcode. A new opcode that is added without a
// String case or an opNames entry fails here instead of silently degrading.
func TestInstrStringExhaustive(t *testing.T) {
	byName := make(map[string]Op, int(opCount))
	for op := OpNop; op < opCount; op++ {
		name := op.String()
		if strings.Contains(name, "op(") {
			t.Errorf("op %d has no mnemonic (opNames gap)", op)
			continue
		}
		if prev, dup := byName[name]; dup {
			t.Errorf("ops %d and %d share mnemonic %q", prev, op, name)
		}
		byName[name] = op
	}
	for op := OpNop; op < opCount; op++ {
		in := Instr{Op: op, Rd: 1, Ra: 2, Rb: 3, Imm: 4, Target: 5}
		got := in.String()
		if strings.Contains(got, "rd=") {
			t.Errorf("defined op %v rendered via the default arm: %q", op, got)
		}
		mnemonic := got
		if i := strings.IndexByte(got, ' '); i >= 0 {
			mnemonic = got[:i]
		}
		back, ok := byName[mnemonic]
		if !ok || back != op {
			t.Errorf("op %v rendering %q does not round-trip (mnemonic %q -> %v, %v)",
				op, got, mnemonic, back, ok)
		}
	}
	// The default arm must still catch genuinely undefined opcodes.
	bad := Instr{Op: Op(opCount), Rd: 1}
	if got := bad.String(); !strings.Contains(got, "rd=") {
		t.Errorf("undefined op rendered %q, want the default dump", got)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Rd: 3, Imm: -7}, "const r3, -7"},
		{Instr{Op: OpMov, Rd: 1, Ra: 2}, "mov r1, r2"},
		{Instr{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Instr{Op: OpAddI, Rd: 1, Ra: 2, Imm: 9}, "addi r1, r2, 9"},
		{Instr{Op: OpLdGlobal, Rd: 4, Ra: 5}, "ld.global r4, [r5]"},
		{Instr{Op: OpStGlobal, Ra: 5, Rb: 6}, "st.global [r5], r6"},
		{Instr{Op: OpLdShared, Rd: 4, Ra: 5}, "ld.shared r4, [r5]"},
		{Instr{Op: OpStShared, Ra: 5, Rb: 6}, "st.shared [r5], r6"},
		{Instr{Op: OpJump, Target: 12}, "jump @12"},
		{Instr{Op: OpBrNZ, Ra: 2, Target: 3}, "brnz r2, @3"},
		{Instr{Op: OpIfBegin, Ra: 2, Target: 8}, "if.begin r2, @8"},
		{Instr{Op: OpIfEnd}, "if.end"},
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpBarrier}, "barrier"},
		{Instr{Op: OpLaneID, Rd: 7}, "laneid r7"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Instr.String() = %q, want %q", got, c.want)
		}
	}
}
