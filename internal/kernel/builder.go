package kernel

import "fmt"

// Operand is either a register or an immediate word; builder helpers accept
// operands so callers can mix registers and constants without pre-loading
// every constant into a register themselves.
type Operand struct {
	isReg bool
	reg   Reg
	imm   Word
}

// R wraps a register as an operand.
func R(r Reg) Operand { return Operand{isReg: true, reg: r} }

// Imm wraps an immediate word as an operand.
func Imm(v Word) Operand { return Operand{imm: v} }

// Builder assembles a Program through structured constructs, guaranteeing
// the nesting invariants Validate checks. The zero Builder is not usable;
// call NewBuilder.
//
// Builder methods panic on misuse (register exhaustion, mismatched
// EndIf/EndFor); kernel construction happens at program set-up time, where
// a panic is the conventional Go response to a programming error, and
// Build converts any recorded problem into an error for callers that
// prefer one.
type Builder struct {
	name        string
	sharedWords int
	instrs      []Instr
	nextReg     int

	ifStack  []int          // indices of open OpIfBegin
	forStack []forFrame     // open loops
	errs     []error        // deferred construction errors
	names    map[Reg]string // optional register names for disassembly aids

	curLine  int32   // source line stamped on subsequently emitted instructions
	lines    []int32 // per-instruction source lines, parallel to instrs
	anyLines bool    // whether SetLine was ever called with a non-zero line
}

type forFrame struct {
	head    int // index of the loop-condition check (OpSle/OpSlt result test)
	brIndex int // index of the conditional-exit placeholder
	counter Reg
	step    Word
}

// NewBuilder starts a kernel with the given name and per-block shared
// memory allocation in words.
func NewBuilder(name string, sharedWords int) *Builder {
	return &Builder{
		name:        name,
		sharedWords: sharedWords,
		names:       make(map[Reg]string),
	}
}

// Reg allocates a fresh register, optionally recording a debugging name.
func (b *Builder) Reg(name ...string) Reg {
	if b.nextReg >= 256 {
		panic("kernel.Builder: out of registers")
	}
	r := Reg(b.nextReg)
	b.nextReg++
	if len(name) > 0 {
		b.names[r] = name[0]
	}
	return r
}

// Release marks registers as dead. It is deliberately a no-op: reusing a
// register that an enclosing loop's head or a later materialised immediate
// also writes would silently clobber loop-carried values, so the builder
// trades register economy for safety — the 256-register file comfortably
// fits every kernel in this module. The method remains so call sites can
// document lifetimes.
func (b *Builder) Release(rs ...Reg) {}

// SetLine records the source line subsequent instructions lower from, so
// diagnostics can report pseudocode lines instead of raw pcs. Zero (the
// default) marks instructions with no source position; if SetLine is never
// called with a non-zero line, Build omits the line table entirely.
func (b *Builder) SetLine(line int) {
	b.curLine = int32(line)
	if line != 0 {
		b.anyLines = true
	}
}

func (b *Builder) emit(in Instr) int {
	b.instrs = append(b.instrs, in)
	b.lines = append(b.lines, b.curLine)
	return len(b.instrs) - 1
}

// materialise returns a register holding the operand's value, emitting an
// OpConst for immediates. The returned bool reports whether the register is
// a fresh scratch register the caller may release.
func (b *Builder) materialise(o Operand) (Reg, bool) {
	if o.isReg {
		return o.reg, false
	}
	r := b.Reg()
	b.emit(Instr{Op: OpConst, Rd: r, Imm: o.imm})
	return r, true
}

// --- Value producers -------------------------------------------------------

// Const sets rd to the immediate v.
func (b *Builder) Const(rd Reg, v Word) { b.emit(Instr{Op: OpConst, Rd: rd, Imm: v}) }

// Mov copies ra into rd.
func (b *Builder) Mov(rd, ra Reg) { b.emit(Instr{Op: OpMov, Rd: rd, Ra: ra}) }

// LaneID sets rd to the core index j within the multiprocessor.
func (b *Builder) LaneID(rd Reg) { b.emit(Instr{Op: OpLaneID, Rd: rd}) }

// BlockID sets rd to the thread block index.
func (b *Builder) BlockID(rd Reg) { b.emit(Instr{Op: OpBlockID, Rd: rd}) }

// NumBlocks sets rd to the number of thread blocks in the launch.
func (b *Builder) NumBlocks(rd Reg) { b.emit(Instr{Op: OpNumBlocks, Rd: rd}) }

// BlockDim sets rd to b, the warp width.
func (b *Builder) BlockDim(rd Reg) { b.emit(Instr{Op: OpBlockDim, Rd: rd}) }

// --- Arithmetic ------------------------------------------------------------

func (b *Builder) binary(op, opImm Op, rd, ra Reg, o Operand) {
	if o.isReg {
		b.emit(Instr{Op: op, Rd: rd, Ra: ra, Rb: o.reg})
		return
	}
	if opImm != OpNop {
		b.emit(Instr{Op: opImm, Rd: rd, Ra: ra, Imm: o.imm})
		return
	}
	rb, tmp := b.materialise(o)
	b.emit(Instr{Op: op, Rd: rd, Ra: ra, Rb: rb})
	if tmp {
		b.Release(rb)
	}
}

// Add emits rd <- ra + o.
func (b *Builder) Add(rd, ra Reg, o Operand) { b.binary(OpAdd, OpAddI, rd, ra, o) }

// Sub emits rd <- ra - o.
func (b *Builder) Sub(rd, ra Reg, o Operand) {
	if !o.isReg {
		b.emit(Instr{Op: OpAddI, Rd: rd, Ra: ra, Imm: -o.imm})
		return
	}
	b.binary(OpSub, OpNop, rd, ra, o)
}

// Mul emits rd <- ra * o.
func (b *Builder) Mul(rd, ra Reg, o Operand) { b.binary(OpMul, OpMulI, rd, ra, o) }

// Div emits rd <- ra / o.
func (b *Builder) Div(rd, ra Reg, o Operand) { b.binary(OpDiv, OpDivI, rd, ra, o) }

// Mod emits rd <- ra % o.
func (b *Builder) Mod(rd, ra Reg, o Operand) { b.binary(OpMod, OpModI, rd, ra, o) }

// Min emits rd <- min(ra, o).
func (b *Builder) Min(rd, ra Reg, o Operand) { b.binary(OpMin, OpNop, rd, ra, o) }

// Max emits rd <- max(ra, o).
func (b *Builder) Max(rd, ra Reg, o Operand) { b.binary(OpMax, OpNop, rd, ra, o) }

// And emits rd <- ra & o.
func (b *Builder) And(rd, ra Reg, o Operand) { b.binary(OpAnd, OpAndI, rd, ra, o) }

// Or emits rd <- ra | o.
func (b *Builder) Or(rd, ra Reg, o Operand) { b.binary(OpOr, OpNop, rd, ra, o) }

// Xor emits rd <- ra ^ o.
func (b *Builder) Xor(rd, ra Reg, o Operand) { b.binary(OpXor, OpNop, rd, ra, o) }

// Shl emits rd <- ra << o.
func (b *Builder) Shl(rd, ra Reg, o Operand) { b.binary(OpShl, OpShlI, rd, ra, o) }

// Shr emits rd <- ra >> o (arithmetic).
func (b *Builder) Shr(rd, ra Reg, o Operand) { b.binary(OpShr, OpShrI, rd, ra, o) }

// --- Comparisons -----------------------------------------------------------

// Slt emits rd <- (ra < o).
func (b *Builder) Slt(rd, ra Reg, o Operand) { b.binary(OpSlt, OpSltI, rd, ra, o) }

// Sle emits rd <- (ra <= o).
func (b *Builder) Sle(rd, ra Reg, o Operand) { b.binary(OpSle, OpSleI, rd, ra, o) }

// Seq emits rd <- (ra == o).
func (b *Builder) Seq(rd, ra Reg, o Operand) { b.binary(OpSeq, OpSeqI, rd, ra, o) }

// Sne emits rd <- (ra != o).
func (b *Builder) Sne(rd, ra Reg, o Operand) { b.binary(OpSne, OpSneI, rd, ra, o) }

// --- Memory ----------------------------------------------------------------

// LdGlobal emits rd <- global[addr]. This is the "⇐" data movement of the
// paper's pseudocode; the device resolves it as block transactions.
func (b *Builder) LdGlobal(rd, addr Reg) { b.emit(Instr{Op: OpLdGlobal, Rd: rd, Ra: addr}) }

// StGlobal emits global[addr] <- rs.
func (b *Builder) StGlobal(addr, rs Reg) { b.emit(Instr{Op: OpStGlobal, Ra: addr, Rb: rs}) }

// LdShared emits rd <- shared[addr], the paper's "←" operator.
func (b *Builder) LdShared(rd, addr Reg) { b.emit(Instr{Op: OpLdShared, Rd: rd, Ra: addr}) }

// StShared emits shared[addr] <- rs.
func (b *Builder) StShared(addr, rs Reg) { b.emit(Instr{Op: OpStShared, Ra: addr, Rb: rs}) }

// AtomAdd emits the atomic rd <- mem[addr]; mem[addr] <- rd + val in the
// given address space (AtomShared or AtomGlobal). Conflicting lanes
// serialise in ascending lane order.
func (b *Builder) AtomAdd(space Word, rd, addr, val Reg) {
	b.emit(Instr{Op: OpAtomAdd, Rd: rd, Ra: addr, Rb: val, Imm: space})
}

// AtomMax emits the atomic rd <- mem[addr]; mem[addr] <- max(rd, val).
func (b *Builder) AtomMax(space Word, rd, addr, val Reg) {
	b.emit(Instr{Op: OpAtomMax, Rd: rd, Ra: addr, Rb: val, Imm: space})
}

// AtomExch emits the atomic rd <- mem[addr]; mem[addr] <- val.
func (b *Builder) AtomExch(space Word, rd, addr, val Reg) {
	b.emit(Instr{Op: OpAtomExch, Rd: rd, Ra: addr, Rb: val, Imm: space})
}

// AtomCAS emits the atomic compare-and-swap: if mem[addr] == rd (its value
// before the instruction) then mem[addr] <- val; rd always receives the old
// cell value.
func (b *Builder) AtomCAS(space Word, rd, addr, val Reg) {
	b.emit(Instr{Op: OpAtomCAS, Rd: rd, Ra: addr, Rb: val, Imm: space})
}

// Barrier emits a block-wide barrier.
func (b *Builder) Barrier() { b.emit(Instr{Op: OpBarrier}) }

// Nop emits a no-op, useful for padding in scheduling tests.
func (b *Builder) Nop() { b.emit(Instr{Op: OpNop}) }

// --- Structured control flow ------------------------------------------------

// If begins a single-block conditional executed by lanes whose cond register
// is non-zero. Lanes that fail the test are masked until the matching EndIf.
// Per the paper, there is deliberately no Else: "The if-statement allows
// only a single conditional block, in order to reduce diverging execution
// paths."
func (b *Builder) If(cond Reg) {
	idx := b.emit(Instr{Op: OpIfBegin, Ra: cond})
	b.ifStack = append(b.ifStack, idx)
}

// EndIf closes the innermost If.
func (b *Builder) EndIf() {
	if len(b.ifStack) == 0 {
		panic("kernel.Builder: EndIf without If")
	}
	begin := b.ifStack[len(b.ifStack)-1]
	b.ifStack = b.ifStack[:len(b.ifStack)-1]
	end := b.emit(Instr{Op: OpIfEnd})
	b.instrs[begin].Target = int32(end + 1)
}

// IfDo is a convenience wrapper running body inside If(cond)/EndIf.
func (b *Builder) IfDo(cond Reg, body func()) {
	b.If(cond)
	body()
	b.EndIf()
}

// For begins a uniform counted loop: counter starts at start and the body
// runs while counter < limit, incrementing by step after each iteration.
// The loop condition must be warp-uniform; the device traps divergent
// back-edges. Close with EndFor.
func (b *Builder) For(counter Reg, start, limit Operand, step Word) {
	if step == 0 {
		b.errs = append(b.errs, fmt.Errorf("kernel %s: For with zero step", b.name))
		step = 1
	}
	if start.isReg {
		b.Mov(counter, start.reg)
	} else {
		b.Const(counter, start.imm)
	}
	head := len(b.instrs)
	// The condition registers live in the loop head, which re-executes on
	// every back-edge; they must not return to the scratch pool, or body
	// code could claim them for a loop-carried value the head would then
	// clobber each iteration.
	condReg := b.Reg()
	if step > 0 {
		b.Slt(condReg, counter, limit)
	} else {
		// counting down: run while counter > limit
		lim, _ := b.materialise(limit)
		b.emit(Instr{Op: OpSlt, Rd: condReg, Ra: lim, Rb: counter})
	}
	// Exit if the condition is false: invert and branch-if-nonzero to the
	// (yet unknown) loop end.
	inv := b.Reg()
	b.Seq(inv, condReg, Imm(0))
	brIndex := b.emit(Instr{Op: OpBrNZ, Ra: inv})
	b.forStack = append(b.forStack, forFrame{
		head: head, brIndex: brIndex, counter: counter, step: step,
	})
}

// EndFor closes the innermost For, emitting the counter increment and the
// uniform back-edge.
func (b *Builder) EndFor() {
	if len(b.forStack) == 0 {
		panic("kernel.Builder: EndFor without For")
	}
	f := b.forStack[len(b.forStack)-1]
	b.forStack = b.forStack[:len(b.forStack)-1]
	b.Add(f.counter, f.counter, Imm(f.step))
	b.emit(Instr{Op: OpJump, Target: int32(f.head)})
	b.instrs[f.brIndex].Target = int32(len(b.instrs))
}

// ForDo is a convenience wrapper running body inside For/EndFor. The body
// receives the counter register.
func (b *Builder) ForDo(start, limit Operand, step Word, body func(counter Reg)) {
	counter := b.Reg()
	b.For(counter, start, limit, step)
	body(counter)
	b.EndFor()
	b.Release(counter)
}

// --- Finalisation ------------------------------------------------------------

// Build appends the final halt, validates the program, and returns it.
func (b *Builder) Build() (*Program, error) {
	if len(b.ifStack) != 0 {
		return nil, fmt.Errorf("kernel %s: %d unclosed If", b.name, len(b.ifStack))
	}
	if len(b.forStack) != 0 {
		return nil, fmt.Errorf("kernel %s: %d unclosed For", b.name, len(b.forStack))
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	b.emit(Instr{Op: OpHalt})
	p := &Program{
		Name:        b.name,
		Instrs:      b.instrs,
		NumRegs:     b.nextReg,
		SharedWords: b.sharedWords,
	}
	if b.anyLines {
		p.Lines = b.lines
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for statically known-good kernels.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
