package kernel

import "fmt"

// DInstr is one instruction of a decoded program: the operand registers are
// pre-multiplied into register-file column bases for a fixed warp width, so
// the interpreter's hot loop indexes the flattened register file directly
// instead of recomputing int(reg)*width on every issue.
type DInstr struct {
	Op     Op
	D      int32 // Rd column base: int(Rd) * width
	A      int32 // Ra column base
	B      int32 // Rb column base
	Imm    Word
	Target int32
}

// Decoded is the flat execution form of a Program for one warp width. It is
// immutable after Decode and safe to share across launches of the same
// program on the same device.
type Decoded struct {
	Prog  *Program
	Width int
	Ins   []DInstr
}

// Decode lowers p into its flat execution form for warps of the given
// width. The program must already be valid (see Program.Validate); Decode
// only rejects parameters that would make the column bases meaningless.
func Decode(p *Program, width int) (*Decoded, error) {
	if p == nil {
		return nil, fmt.Errorf("kernel: decode of nil program")
	}
	if width <= 0 {
		return nil, fmt.Errorf("kernel: decode width %d", width)
	}
	d := &Decoded{Prog: p, Width: width, Ins: make([]DInstr, len(p.Instrs))}
	for i, in := range p.Instrs {
		d.Ins[i] = DInstr{
			Op:     in.Op,
			D:      int32(int(in.Rd) * width),
			A:      int32(int(in.Ra) * width),
			B:      int32(int(in.Rb) * width),
			Imm:    in.Imm,
			Target: in.Target,
		}
	}
	return d, nil
}
