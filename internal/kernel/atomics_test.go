package kernel

import (
	"errors"
	"testing"
)

func TestAtomicInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAtomAdd, Rd: 1, Ra: 2, Rb: 3, Imm: AtomShared}, "atom.add r1, [shared:r2], r3"},
		{Instr{Op: OpAtomMax, Rd: 4, Ra: 5, Rb: 6, Imm: AtomGlobal}, "atom.max r4, [global:r5], r6"},
		{Instr{Op: OpAtomExch, Rd: 0, Ra: 1, Rb: 2, Imm: AtomShared}, "atom.exch r0, [shared:r1], r2"},
		{Instr{Op: OpAtomCAS, Rd: 7, Ra: 8, Rb: 9, Imm: AtomGlobal}, "atom.cas r7, [global:r8], r9"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Instr.String() = %q, want %q", got, c.want)
		}
	}
}

func TestIsAtomic(t *testing.T) {
	for _, op := range []Op{OpAtomAdd, OpAtomMax, OpAtomExch, OpAtomCAS} {
		if !op.IsAtomic() {
			t.Errorf("%v should be atomic", op)
		}
		// Atomics touch memory but are classified separately: IsMemory is
		// the plain load/store predicate the coalescing analyses key on.
		if op.IsMemory() {
			t.Errorf("%v should not be plain memory", op)
		}
	}
	for _, op := range []Op{OpAdd, OpMax, OpLdGlobal, OpStShared, OpBarrier, OpHalt} {
		if op.IsAtomic() {
			t.Errorf("%v should not be atomic", op)
		}
	}
}

func TestValidateAtomicSpace(t *testing.T) {
	prog := func(space Word) *Program {
		return &Program{
			Name:    "atomspace",
			NumRegs: 4,
			Instrs: []Instr{
				{Op: OpAtomAdd, Rd: 0, Ra: 1, Rb: 2, Imm: space},
				{Op: OpHalt},
			},
		}
	}
	for _, space := range []Word{AtomShared, AtomGlobal} {
		if err := prog(space).Validate(); err != nil {
			t.Errorf("space %d: unexpected validate error: %v", space, err)
		}
	}
	for _, space := range []Word{-1, 2, 99} {
		if err := prog(space).Validate(); !errors.Is(err, ErrBadAtomSpace) {
			t.Errorf("space %d: got %v, want ErrBadAtomSpace", space, err)
		}
	}
	// Register bounds apply to all three operand registers.
	bad := prog(AtomShared)
	bad.Instrs[0].Rb = 200
	if err := bad.Validate(); !errors.Is(err, ErrBadRegister) {
		t.Errorf("out-of-file Rb: got %v, want ErrBadRegister", err)
	}
}

func TestBuilderAtomics(t *testing.T) {
	kb := NewBuilder("atoms", 8)
	rd := kb.Reg("old")
	addr := kb.Reg("addr")
	v := kb.Reg("v")
	kb.Const(addr, 0)
	kb.Const(v, 1)
	kb.AtomAdd(AtomShared, rd, addr, v)
	kb.AtomMax(AtomGlobal, rd, addr, v)
	kb.AtomExch(AtomShared, rd, addr, v)
	kb.AtomCAS(AtomGlobal, rd, addr, v)
	p := kb.MustBuild()

	want := []struct {
		op    Op
		space Word
	}{
		{OpAtomAdd, AtomShared},
		{OpAtomMax, AtomGlobal},
		{OpAtomExch, AtomShared},
		{OpAtomCAS, AtomGlobal},
	}
	var got []Instr
	for _, in := range p.Instrs {
		if in.Op.IsAtomic() {
			got = append(got, in)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d atomics, want %d:\n%s", len(got), len(want), p.Disassemble())
	}
	for i, w := range want {
		in := got[i]
		if in.Op != w.op || in.Imm != w.space {
			t.Errorf("atomic %d = %v imm=%d, want %v imm=%d", i, in.Op, in.Imm, w.op, w.space)
		}
		if in.Rd != rd || in.Ra != addr || in.Rb != v {
			t.Errorf("atomic %d operands (r%d, r%d, r%d), want (r%d, r%d, r%d)",
				i, in.Rd, in.Ra, in.Rb, rd, addr, v)
		}
	}
}
