package kernel

import (
	"errors"
	"fmt"
	"strings"
)

// Program is a complete kernel: a finite instruction list executed by every
// thread of a launch, the number of registers each thread needs, and the
// number of shared-memory words each thread block allocates.
//
// SharedWords is the quantity the paper calls m when computing occupancy:
// a streaming multiprocessor can hold ℓ = min(⌊M/m⌋, H) blocks concurrently.
type Program struct {
	// Name identifies the kernel in traces, stats and error messages.
	Name string
	// Instrs is the instruction list. Execution begins at index 0 and
	// finishes when every lane has retired at an OpHalt.
	Instrs []Instr
	// NumRegs is the per-thread register file size; registers are
	// r0..r(NumRegs-1) and are zero-initialised at launch.
	NumRegs int
	// SharedWords is the per-block shared memory allocation in words.
	SharedWords int
	// Lines is an optional side table mapping each instruction index to the
	// source line it was lowered from (0 = unknown). When present it must be
	// the same length as Instrs; front ends that lower from a textual source
	// (the pseudocode compiler) populate it so diagnostics can point at the
	// offending source line rather than a raw pc.
	Lines []int32
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// Line returns the source line instruction pc was lowered from, or 0 when
// the program carries no line information (or pc is out of range).
func (p *Program) Line(pc int) int {
	if pc < 0 || pc >= len(p.Lines) {
		return 0
	}
	return int(p.Lines[pc])
}

// Disassemble renders the whole program with instruction indices, in the
// style of the paper's pseudocode listings but at the IR level.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s (regs=%d, shared=%d words)\n",
		p.Name, p.NumRegs, p.SharedWords)
	for i, in := range p.Instrs {
		fmt.Fprintf(&sb, "%4d: %s\n", i, in.String())
	}
	return sb.String()
}

// Validation errors returned by Validate.
var (
	ErrEmptyProgram   = errors.New("kernel: empty program")
	ErrNoHalt         = errors.New("kernel: program does not end with halt")
	ErrBadOpcode      = errors.New("kernel: invalid opcode")
	ErrBadRegister    = errors.New("kernel: register index out of range")
	ErrBadTarget      = errors.New("kernel: branch target out of range")
	ErrUnbalancedIf   = errors.New("kernel: unbalanced if.begin/if.end")
	ErrBadIfTarget    = errors.New("kernel: if.begin target must follow its if.end")
	ErrTooManyRegs    = errors.New("kernel: register file exceeds 256 registers")
	ErrNegativeShared = errors.New("kernel: negative shared memory size")
	ErrBadLineTable   = errors.New("kernel: line table length does not match instruction count")
	ErrBadAtomSpace   = errors.New("kernel: atomic address space must be AtomShared or AtomGlobal")
)

// Validate checks the static well-formedness of the program: every opcode
// defined, every register within the declared file, every branch target in
// range, and if.begin/if.end regions properly nested with each if.begin
// jumping just past its matching if.end (the single-conditional-block form
// the paper's pseudocode permits).
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return ErrEmptyProgram
	}
	if p.NumRegs < 0 || p.NumRegs > 256 {
		return ErrTooManyRegs
	}
	if p.SharedWords < 0 {
		return ErrNegativeShared
	}
	if len(p.Lines) != 0 && len(p.Lines) != len(p.Instrs) {
		return fmt.Errorf("%w: %d lines for %d instructions", ErrBadLineTable, len(p.Lines), len(p.Instrs))
	}
	if p.Instrs[len(p.Instrs)-1].Op != OpHalt {
		return ErrNoHalt
	}
	var ifStack []int
	for i, in := range p.Instrs {
		if !in.Op.Valid() {
			return fmt.Errorf("%w: at %d: %d", ErrBadOpcode, i, uint8(in.Op))
		}
		if err := p.checkRegs(i, in); err != nil {
			return err
		}
		switch in.Op {
		case OpJump, OpBrNZ:
			if in.Target < 0 || int(in.Target) >= len(p.Instrs) {
				return fmt.Errorf("%w: at %d: @%d", ErrBadTarget, i, in.Target)
			}
		case OpIfBegin:
			if in.Target < 0 || int(in.Target) > len(p.Instrs) {
				return fmt.Errorf("%w: at %d: @%d", ErrBadTarget, i, in.Target)
			}
			ifStack = append(ifStack, i)
		case OpAtomAdd, OpAtomMax, OpAtomExch, OpAtomCAS:
			if in.Imm != AtomShared && in.Imm != AtomGlobal {
				return fmt.Errorf("%w: at %d: imm=%d", ErrBadAtomSpace, i, in.Imm)
			}
		case OpIfEnd:
			if len(ifStack) == 0 {
				return fmt.Errorf("%w: stray if.end at %d", ErrUnbalancedIf, i)
			}
			begin := ifStack[len(ifStack)-1]
			ifStack = ifStack[:len(ifStack)-1]
			// The skip target of if.begin must be the instruction
			// immediately after this if.end, so that skipping the body
			// and falling through the body reconverge at the same point.
			if int(p.Instrs[begin].Target) != i+1 {
				return fmt.Errorf("%w: if.begin at %d targets @%d, want @%d",
					ErrBadIfTarget, begin, p.Instrs[begin].Target, i+1)
			}
		}
	}
	if len(ifStack) != 0 {
		return fmt.Errorf("%w: %d unclosed if.begin", ErrUnbalancedIf, len(ifStack))
	}
	return nil
}

func (p *Program) checkRegs(i int, in Instr) error {
	bad := func(r Reg) bool { return int(r) >= p.NumRegs }
	check := func(rs ...Reg) error {
		for _, r := range rs {
			if bad(r) {
				return fmt.Errorf("%w: at %d: r%d (file size %d)",
					ErrBadRegister, i, r, p.NumRegs)
			}
		}
		return nil
	}
	switch in.Op {
	case OpNop, OpBarrier, OpHalt, OpJump, OpIfEnd:
		return nil
	case OpConst, OpLaneID, OpBlockID, OpNumBlocks, OpBlockDim:
		return check(in.Rd)
	case OpMov:
		return check(in.Rd, in.Ra)
	case OpAddI, OpMulI, OpDivI, OpModI, OpShlI, OpShrI, OpAndI,
		OpSltI, OpSleI, OpSeqI, OpSneI:
		return check(in.Rd, in.Ra)
	case OpLdGlobal, OpLdShared:
		return check(in.Rd, in.Ra)
	case OpStGlobal, OpStShared:
		return check(in.Ra, in.Rb)
	case OpBrNZ, OpIfBegin:
		return check(in.Ra)
	case OpAtomAdd, OpAtomMax, OpAtomExch, OpAtomCAS:
		return check(in.Rd, in.Ra, in.Rb)
	default: // three-register arithmetic
		return check(in.Rd, in.Ra, in.Rb)
	}
}

// CountStatic returns the number of instructions of each opcode, useful for
// relating a program to the model's operation-count metric tᵢ.
func (p *Program) CountStatic() map[Op]int {
	m := make(map[Op]int)
	for _, in := range p.Instrs {
		m[in.Op]++
	}
	return m
}
