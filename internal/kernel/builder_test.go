package kernel

import (
	"testing"
	"testing/quick"
)

func TestBuilderStraightLine(t *testing.T) {
	b := NewBuilder("sl", 4)
	r0 := b.Reg("a")
	r1 := b.Reg("b")
	b.Const(r0, 5)
	b.Const(r1, 7)
	b.Add(r0, r0, R(r1))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sl" || p.SharedWords != 4 || p.NumRegs != 2 {
		t.Fatalf("program metadata wrong: %+v", p)
	}
	if p.Instrs[len(p.Instrs)-1].Op != OpHalt {
		t.Fatal("Build must append halt")
	}
}

func TestBuilderImmediateForms(t *testing.T) {
	b := NewBuilder("imm", 0)
	r := b.Reg()
	b.Const(r, 1)
	b.Add(r, r, Imm(2)) // addi
	b.Sub(r, r, Imm(3)) // addi -3
	b.Mul(r, r, Imm(4)) // muli
	b.Min(r, r, Imm(5)) // materialised const + min
	b.Slt(r, r, Imm(6)) // slti
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	counts := p.CountStatic()
	if counts[OpAddI] != 2 {
		t.Errorf("AddI count = %d, want 2 (Add imm + Sub imm)", counts[OpAddI])
	}
	if counts[OpMulI] != 1 || counts[OpSltI] != 1 {
		t.Errorf("immediate forms not used: %v", counts)
	}
	if counts[OpMin] != 1 || counts[OpConst] != 2 {
		t.Errorf("Min should materialise a const: %v", counts)
	}
	// Sub by immediate must encode as addi with negated imm.
	found := false
	for _, in := range p.Instrs {
		if in.Op == OpAddI && in.Imm == -3 {
			found = true
		}
	}
	if !found {
		t.Error("Sub(r, r, Imm(3)) should emit addi -3")
	}
}

func TestBuilderIfNesting(t *testing.T) {
	b := NewBuilder("ifs", 0)
	c := b.Reg()
	b.Const(c, 1)
	b.IfDo(c, func() {
		b.IfDo(c, func() {
			b.Nop()
		})
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("nested IfDo produced invalid program: %v", err)
	}
}

func TestBuilderUnclosedIf(t *testing.T) {
	b := NewBuilder("bad", 0)
	c := b.Reg()
	b.Const(c, 1)
	b.If(c)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should reject unclosed If")
	}
}

func TestBuilderUnclosedFor(t *testing.T) {
	b := NewBuilder("bad", 0)
	i := b.Reg()
	b.For(i, Imm(0), Imm(4), 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should reject unclosed For")
	}
}

func TestBuilderEndIfPanicsWithoutIf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EndIf without If should panic")
		}
	}()
	NewBuilder("p", 0).EndIf()
}

func TestBuilderEndForPanicsWithoutFor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EndFor without For should panic")
		}
	}()
	NewBuilder("p", 0).EndFor()
}

func TestBuilderZeroStepFor(t *testing.T) {
	b := NewBuilder("zs", 0)
	i := b.Reg()
	b.For(i, Imm(0), Imm(4), 0)
	b.EndFor()
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should surface the zero-step error")
	}
}

func TestBuilderRegisterExhaustion(t *testing.T) {
	b := NewBuilder("rx", 0)
	for i := 0; i < 256; i++ {
		b.Reg()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("257th Reg should panic")
		}
	}()
	b.Reg()
}

func TestBuilderForStructure(t *testing.T) {
	b := NewBuilder("loop", 0)
	sum := b.Reg("sum")
	b.Const(sum, 0)
	b.ForDo(Imm(0), Imm(10), 1, func(i Reg) {
		b.Add(sum, sum, R(i))
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	counts := p.CountStatic()
	if counts[OpJump] != 1 {
		t.Errorf("loop needs one back-edge jump, got %d", counts[OpJump])
	}
	if counts[OpBrNZ] != 1 {
		t.Errorf("loop needs one conditional exit, got %d", counts[OpBrNZ])
	}
	// The exit branch must target the instruction right after the jump.
	var brTarget, jumpIdx int32 = -1, -1
	for idx, in := range p.Instrs {
		if in.Op == OpBrNZ {
			brTarget = in.Target
		}
		if in.Op == OpJump {
			jumpIdx = int32(idx)
		}
	}
	if brTarget != jumpIdx+1 {
		t.Errorf("exit branch targets @%d, want @%d", brTarget, jumpIdx+1)
	}
}

func TestBuilderDowncountFor(t *testing.T) {
	b := NewBuilder("down", 0)
	i := b.Reg()
	b.For(i, Imm(10), Imm(0), -2)
	b.Nop()
	b.EndFor()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("down-counting loop invalid: %v", err)
	}
}

func TestBuilderMustBuildPanics(t *testing.T) {
	b := NewBuilder("mb", 0)
	c := b.Reg()
	b.If(c)
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on invalid program")
		}
	}()
	b.MustBuild()
}

// TestBuilderAlwaysValid is the structural property: any program assembled
// purely through the builder's structured API validates.
func TestBuilderAlwaysValid(t *testing.T) {
	// Build pseudo-random but structurally legal programs from a byte
	// recipe and check Validate accepts them all.
	f := func(recipe []byte) bool {
		b := NewBuilder("q", 16)
		r := b.Reg()
		b.Const(r, 1)
		depth := 0
		loops := 0
		for _, op := range recipe {
			switch op % 6 {
			case 0:
				b.Add(r, r, Imm(int64(op)))
			case 1:
				b.If(r)
				depth++
			case 2:
				if depth > 0 {
					b.EndIf()
					depth--
				}
			case 3:
				if loops < 3 {
					i := b.Reg()
					b.For(i, Imm(0), Imm(int64(op%5)), 1)
					b.Nop()
					b.EndFor()
					loops++
				}
			case 4:
				b.Barrier()
			case 5:
				b.Slt(r, r, Imm(int64(op)))
			}
		}
		for depth > 0 {
			b.EndIf()
			depth--
		}
		p, err := b.Build()
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
