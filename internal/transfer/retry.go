package transfer

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrRetriesExhausted is returned when a transaction still fails after the
// policy's full retry budget. The engine records the attempts in its stats
// before returning it, so a failed point's retry counts survive into
// reports.
var ErrRetriesExhausted = errors.New("transfer: retries exhausted")

// RetryPolicy bounds and paces the engine's fault recovery. Retries are a
// simulated-timeline phenomenon: every re-attempt pays the Boyer α + βn
// transaction cost again, and every wait pays an exponential backoff with
// deterministic jitter, so resilience shows up in the reported transfer
// time exactly as it would on hardware.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure
	// before ErrRetriesExhausted.
	MaxRetries int
	// Backoff is the delay before the first retry.
	Backoff time.Duration
	// BackoffFactor multiplies the delay per subsequent retry (≥ 1).
	BackoffFactor float64
	// MaxBackoff caps the grown delay (0 = uncapped).
	MaxBackoff time.Duration
	// Jitter spreads each delay by ±Jitter fraction (in [0,1]) so retry
	// storms decorrelate; drawn from a PRNG seeded by Seed, keeping the
	// simulated timeline replayable.
	Jitter float64
	// Seed drives the jitter PRNG.
	Seed int64
}

// DefaultRetryPolicy matches common DMA-driver behaviour: 3 retries,
// 5 µs initial backoff doubling to a 200 µs cap, 10% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries:    3,
		Backoff:       5 * time.Microsecond,
		BackoffFactor: 2,
		MaxBackoff:    200 * time.Microsecond,
		Jitter:        0.1,
		Seed:          1,
	}
}

// Validate checks the policy is usable.
func (p RetryPolicy) Validate() error {
	switch {
	case p.MaxRetries < 0:
		return fmt.Errorf("transfer: negative MaxRetries %d", p.MaxRetries)
	case p.Backoff < 0:
		return fmt.Errorf("transfer: negative Backoff %v", p.Backoff)
	case p.BackoffFactor < 1:
		return fmt.Errorf("transfer: BackoffFactor %g < 1", p.BackoffFactor)
	case p.MaxBackoff < 0:
		return fmt.Errorf("transfer: negative MaxBackoff %v", p.MaxBackoff)
	case p.Jitter < 0 || p.Jitter > 1:
		return fmt.Errorf("transfer: Jitter %g not in [0,1]", p.Jitter)
	}
	return nil
}

// backoff returns the simulated delay before retry number retry (0-based):
// Backoff·BackoffFactor^retry, capped at MaxBackoff, then jittered.
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := float64(p.Backoff)
	for i := 0; i < retry; i++ {
		d *= p.BackoffFactor
	}
	if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
