package transfer

import (
	"sync"
	"testing"

	"atgpu/internal/mem"
)

// These tests exercise the engine's locking under real concurrency — the
// substrate of the parallel sweep runner. They are only meaningful under
// `go test -race`, which CI runs.

// TestEngineConcurrentUse hammers one engine with parallel In/Out/Stats/
// Trace calls and checks the totals balance afterwards.
func TestEngineConcurrentUse(t *testing.T) {
	eng, err := NewEngine(PCIeGen3x8Link(), Pinned)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetTrace(true)

	const (
		goroutines = 8
		rounds     = 25
		words      = 64
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := make([]mem.Word, words)
			gm, err := mem.NewGlobal(words, 32)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < rounds; i++ {
				if _, err := eng.In(gm, 0, src); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := eng.Out(gm, 0, words); err != nil {
					t.Error(err)
					return
				}
				_ = eng.Stats()
				_ = eng.Trace()
			}
		}()
	}
	wg.Wait()

	st := eng.Stats()
	want := goroutines * rounds * words
	if st.InWords != want || st.OutWords != want {
		t.Fatalf("in/out words = %d/%d, want %d each", st.InWords, st.OutWords, want)
	}
	if got := len(eng.Trace()); got != 2*goroutines*rounds {
		t.Fatalf("trace records = %d, want %d", got, 2*goroutines*rounds)
	}
}

// TestTraceReturnsCopy is the aliasing regression test: mutating the
// returned slice must not corrupt the engine's retained records, and the
// engine's later appends must not leak into a previously returned slice.
func TestTraceReturnsCopy(t *testing.T) {
	eng, err := NewEngine(PCIeGen3x8Link(), Pinned)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetTrace(true)
	gm, err := mem.NewGlobal(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]mem.Word, 64)
	if _, err := eng.In(gm, 0, buf); err != nil {
		t.Fatal(err)
	}

	tr := eng.Trace()
	if len(tr) != 1 {
		t.Fatalf("trace = %d records, want 1", len(tr))
	}
	orig := tr[0]
	tr[0].Words = -999
	tr[0].Direction = DeviceToHost

	re := eng.Trace()
	if re[0] != orig {
		t.Fatalf("mutating returned trace corrupted engine state: %+v", re[0])
	}

	// Appending through the engine must not write into tr's backing array.
	if _, _, err := eng.Out(gm, 0, 64); err != nil {
		t.Fatal(err)
	}
	if tr[0].Words != -999 {
		t.Fatal("engine append reached the caller's copy")
	}
	if got := len(eng.Trace()); got != 2 {
		t.Fatalf("trace records = %d, want 2", got)
	}
}

// TestStatsMergeAcrossGoroutines folds per-engine stats from concurrent
// engines — the sweep aggregation discipline — and checks the totals.
func TestStatsMergeAcrossGoroutines(t *testing.T) {
	const engines = 6
	const words = 128
	link := PCIeGen3x8Link()

	partial := make([]Stats, engines)
	var wg sync.WaitGroup
	for g := 0; g < engines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng, err := NewEngine(link, Pageable)
			if err != nil {
				t.Error(err)
				return
			}
			gm, err := mem.NewGlobal(words, 32)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]mem.Word, words)
			for i := 0; i <= g; i++ { // distinct per-engine volumes
				if _, err := eng.In(gm, 0, buf); err != nil {
					t.Error(err)
					return
				}
			}
			partial[g] = eng.Stats()
		}(g)
	}
	wg.Wait()

	var total Stats
	for _, p := range partial {
		total.Merge(p)
	}
	wantIn := words * (engines * (engines + 1) / 2)
	if total.InWords != wantIn {
		t.Fatalf("merged InWords = %d, want %d", total.InWords, wantIn)
	}
	if total.OutWords != 0 || total.Retries != 0 {
		t.Fatalf("merged stats carry unexpected fields: %+v", total)
	}
}
