package transfer

import (
	"fmt"

	"atgpu/internal/mem"
	"atgpu/internal/timeline"
)

// Async transfer entry points: the same verified, retried transactions
// as In/Out/InChunked, but instead of handing the simulated cost back
// to the caller to accumulate, the engine charges it onto a shared
// timeline as an occupancy of the given link resource. The memory
// movement itself happens immediately (simulation state advances in
// program order); only the cost is deferred onto the timeline, where
// same-resource transfers serialize and transfers on other resources
// overlap.
//
// Faulted attempts keep their sync-path semantics: retries and backoff
// waits extend the single scheduled occupancy, so a fault on one
// stream widens that stream's link interval without ever touching
// operations already placed on other resources.
//
// The timeline is not locked by the engine; callers (the simgpu Host)
// must serialize all scheduling onto one timeline from a single
// goroutine, as the timeline package requires.

// InAsync copies src into device global memory at offset and schedules
// the transfer's full cost (retries and backoff included) on res,
// starting no earlier than the events in after. It returns the event
// marking transfer completion.
func (e *Engine) InAsync(tl *timeline.Timeline, res *timeline.Resource, g *mem.Global, offset int, src []mem.Word, after ...timeline.Event) (timeline.Event, error) {
	e.mu.Lock()
	d, err := e.in(g, offset, src)
	e.mu.Unlock()
	if err != nil {
		return timeline.Event{}, err
	}
	return tl.Schedule(res, d, fmt.Sprintf("H2D %d words", len(src)), after...), nil
}

// OutAsync copies length words at offset from device global memory
// back to the host and schedules the transfer's cost on res.
func (e *Engine) OutAsync(tl *timeline.Timeline, res *timeline.Resource, g *mem.Global, offset, length int, after ...timeline.Event) ([]mem.Word, timeline.Event, error) {
	e.mu.Lock()
	dst, d, err := e.out(g, offset, length)
	e.mu.Unlock()
	if err != nil {
		return nil, timeline.Event{}, err
	}
	return dst, tl.Schedule(res, d, fmt.Sprintf("D2H %d words", length), after...), nil
}

// InChunkedAsync is InChunked on the timeline: each chunk is its own
// transaction (paying α) and its own scheduled occupancy, chained so
// chunk i+1 starts no earlier than chunk i completes. The returned
// event marks the last chunk's completion.
func (e *Engine) InChunkedAsync(tl *timeline.Timeline, res *timeline.Resource, g *mem.Global, offset int, src []mem.Word, chunk int, after ...timeline.Event) (timeline.Event, error) {
	if chunk <= 0 {
		return timeline.Event{}, fmt.Errorf("transfer: chunk must be positive, got %d", chunk)
	}
	prev := tl.AfterAll(after...)
	for base := 0; base < len(src); base += chunk {
		end := base + chunk
		if end > len(src) {
			end = len(src)
		}
		e.mu.Lock()
		d, err := e.in(g, offset+base, src[base:end])
		e.mu.Unlock()
		if err != nil {
			return timeline.Event{}, err
		}
		prev = tl.Schedule(res, d, fmt.Sprintf("H2D %d words", end-base), prev)
	}
	return prev, nil
}
