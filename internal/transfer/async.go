package transfer

import (
	"fmt"
	"strconv"
	"time"

	"atgpu/internal/mem"
	"atgpu/internal/obs"
	"atgpu/internal/timeline"
)

// Async transfer entry points: the same verified, retried transactions
// as In/Out/InChunked, but instead of handing the simulated cost back
// to the caller to accumulate, the engine charges it onto a shared
// timeline as an occupancy of the given link resource. The memory
// movement itself happens immediately (simulation state advances in
// program order); only the cost is deferred onto the timeline, where
// same-resource transfers serialize and transfers on other resources
// overlap.
//
// Faulted attempts keep their sync-path semantics: retries and backoff
// waits extend the single scheduled occupancy, so a fault on one
// stream widens that stream's link interval without ever touching
// operations already placed on other resources.
//
// The timeline is not locked by the engine; callers (the simgpu Host)
// must serialize all scheduling onto one timeline from a single
// goroutine, as the timeline package requires.

// InAsync copies src into device global memory at offset and schedules
// the transfer's full cost (retries and backoff included) on res,
// starting no earlier than the events in after. It returns the event
// marking transfer completion.
func (e *Engine) InAsync(tl *timeline.Timeline, res *timeline.Resource, g *mem.Global, offset int, src []mem.Word, after ...timeline.Event) (timeline.Event, error) {
	e.mu.Lock()
	d, rec, err := e.in(g, offset, src)
	e.mu.Unlock()
	if err != nil {
		return timeline.Event{}, err
	}
	ev := tl.Schedule(res, d, fmt.Sprintf("H2D %d words", len(src)), after...)
	e.span(ev, d, rec)
	return ev, nil
}

// OutAsync copies length words at offset from device global memory
// back to the host and schedules the transfer's cost on res.
func (e *Engine) OutAsync(tl *timeline.Timeline, res *timeline.Resource, g *mem.Global, offset, length int, after ...timeline.Event) ([]mem.Word, timeline.Event, error) {
	e.mu.Lock()
	dst, d, rec, err := e.out(g, offset, length)
	e.mu.Unlock()
	if err != nil {
		return nil, timeline.Event{}, err
	}
	ev := tl.Schedule(res, d, fmt.Sprintf("D2H %d words", length), after...)
	e.span(ev, d, rec)
	return dst, ev, nil
}

// InChunkedAsync is InChunked on the timeline: each chunk is its own
// transaction (paying α) and its own scheduled occupancy, chained so
// chunk i+1 starts no earlier than chunk i completes. The returned
// event marks the last chunk's completion.
func (e *Engine) InChunkedAsync(tl *timeline.Timeline, res *timeline.Resource, g *mem.Global, offset int, src []mem.Word, chunk int, after ...timeline.Event) (timeline.Event, error) {
	if chunk <= 0 {
		return timeline.Event{}, fmt.Errorf("transfer: chunk must be positive, got %d", chunk)
	}
	prev := tl.AfterAll(after...)
	for base := 0; base < len(src); base += chunk {
		end := base + chunk
		if end > len(src) {
			end = len(src)
		}
		e.mu.Lock()
		d, rec, err := e.in(g, offset+base, src[base:end])
		e.mu.Unlock()
		if err != nil {
			return timeline.Event{}, err
		}
		prev = tl.Schedule(res, d, fmt.Sprintf("H2D %d words", end-base), prev)
		e.span(prev, d, rec)
	}
	return prev, nil
}

// span emits one completed transaction onto the trace as an occupancy
// of the link ending at ev, annotated with retry detail, plus an
// instant per fault class hit during the transaction. No-op without a
// recorder attached. Reads e.orec without the engine lock: SetObs
// happens during host setup and async issue is single-goroutine per
// the timeline contract.
func (e *Engine) span(ev timeline.Event, d time.Duration, r Record) {
	if e.orec == nil {
		return
	}
	track := r.Direction.String()
	start := ev.Time() - d
	args := []obs.Arg{{Key: "words", Value: strconv.Itoa(r.Words)}}
	if r.Attempts > 1 {
		args = append(args, obs.Arg{Key: "attempts", Value: strconv.Itoa(r.Attempts)})
	}
	if r.Backoff > 0 {
		args = append(args, obs.Arg{Key: "backoff", Value: r.Backoff.String()})
	}
	e.orec.Span("transfer", track, fmt.Sprintf("%s %d words", track, r.Words), start, ev.Time(), args...)
	for _, f := range []struct {
		name  string
		count int
	}{
		{"fault: corrupt", r.Corruptions},
		{"fault: drop", r.Drops},
		{"fault: stall", r.Stalls},
	} {
		if f.count > 0 {
			e.orec.Instant("transfer", track, f.name, start,
				obs.Arg{Key: "count", Value: strconv.Itoa(f.count)})
		}
	}
}
