package transfer

import (
	"testing"
	"time"

	"atgpu/internal/faults"
	"atgpu/internal/mem"
	"atgpu/internal/timeline"
)

// asyncWords builds n deterministic words.
func asyncWords(n int) []mem.Word {
	w := make([]mem.Word, n)
	for i := range w {
		w[i] = mem.Word(i*5 + 1)
	}
	return w
}

// TestInAsyncMatchesSyncCost: the scheduled occupancy equals the cost
// the synchronous path returns, and same-resource transfers chain.
func TestInAsyncMatchesSyncCost(t *testing.T) {
	engSync, gSync := newTestEngine(t)
	engAsync, gAsync := newTestEngine(t)
	src := asyncWords(64)

	want, err := engSync.In(gSync, 0, src)
	if err != nil {
		t.Fatal(err)
	}

	tl := timeline.New()
	link := tl.NewResource("h2d")
	ev1, err := engAsync.InAsync(tl, link, gAsync, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Time() != want {
		t.Fatalf("async completion %v, want sync cost %v", ev1.Time(), want)
	}
	ev2, err := engAsync.InAsync(tl, link, gAsync, 64, src)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Time() != 2*want {
		t.Fatalf("second transfer completes at %v, want serialized %v", ev2.Time(), 2*want)
	}
	if link.BusyTime() != 2*want {
		t.Fatalf("link busy %v, want %v", link.BusyTime(), 2*want)
	}
}

// TestAsyncFaultIsolatedAcrossResources is the streams-fault contract
// at the engine level: a corrupt-then-retry on the H2D link widens
// only the H2D occupancy — an overlapped D2H transfer keeps the exact
// interval it has in a fault-free schedule.
func TestAsyncFaultIsolatedAcrossResources(t *testing.T) {
	run := func(inj faults.Injector) (in, out timeline.Interval, ops []timeline.Op) {
		t.Helper()
		var eng *Engine
		var g *mem.Global
		if inj != nil {
			eng, g = newFaultEngine(t, inj, noJitterPolicy(3))
		} else {
			eng, g = newTestEngine(t)
		}
		// Preload the region the D2H transfer reads.
		if err := g.WriteSlice(128, asyncWords(64)); err != nil {
			t.Fatal(err)
		}
		tl := timeline.New()
		h2d := tl.NewResource("h2d")
		d2h := tl.NewResource("d2h")
		if _, err := eng.InAsync(tl, h2d, g, 0, asyncWords(64)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.OutAsync(tl, d2h, g, 128, 64); err != nil {
			t.Fatal(err)
		}
		return h2d.Intervals()[0], d2h.Intervals()[0], tl.Ops()
	}

	cleanIn, cleanOut, _ := run(nil)
	plan := faults.NewPlan().QueueTransfer(faults.SiteH2D,
		faults.Decision{Kind: faults.Corrupt, WordIndex: 7, Mask: 0xff})
	faultIn, faultOut, _ := run(plan)

	if faultOut != cleanOut {
		t.Fatalf("D2H interval perturbed by H2D fault: %+v vs clean %+v", faultOut, cleanOut)
	}
	// The retried transfer widens its own occupancy by one clean attempt
	// plus the first backoff wait.
	wantIn := 2*cleanIn.Duration() + 10*time.Microsecond
	if faultIn.Duration() != wantIn {
		t.Fatalf("faulted H2D occupancy %v, want %v", faultIn.Duration(), wantIn)
	}
	if faultIn.Start != cleanIn.Start {
		t.Fatalf("faulted H2D start moved: %v vs %v", faultIn.Start, cleanIn.Start)
	}
}

// TestAsyncStallDeterministicReplay: identical seeds and plans yield
// op-for-op identical schedules across runs.
func TestAsyncStallDeterministicReplay(t *testing.T) {
	run := func() []timeline.Op {
		t.Helper()
		plan := faults.NewPlan().
			QueueTransfer(faults.SiteH2D, faults.Decision{Kind: faults.Stall, StallFactor: 3}).
			QueueTransfer(faults.SiteD2H, faults.Decision{Kind: faults.Drop})
		eng, g := newFaultEngine(t, plan, noJitterPolicy(3))
		if err := g.WriteSlice(128, asyncWords(32)); err != nil {
			t.Fatal(err)
		}
		tl := timeline.New()
		h2d := tl.NewResource("h2d")
		d2h := tl.NewResource("d2h")
		if _, err := eng.InAsync(tl, h2d, g, 0, asyncWords(32)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.OutAsync(tl, d2h, g, 128, 32); err != nil {
			t.Fatal(err)
		}
		return tl.Ops()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End || a[i].Resource != b[i].Resource {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestInChunkedAsyncChains: chunks are distinct chained occupancies; a
// fault in one chunk delays later chunks on the same stream but the
// total still matches the synchronous chunked cost.
func TestInChunkedAsyncChains(t *testing.T) {
	plan := func() faults.Injector {
		return faults.NewPlan().QueueTransfer(faults.SiteH2D,
			faults.Decision{Kind: faults.Corrupt, WordIndex: 1, Mask: 2})
	}
	engSync, gSync := newFaultEngine(t, plan(), noJitterPolicy(3))
	src := asyncWords(100)
	want, err := engSync.InChunked(gSync, 0, src, 32)
	if err != nil {
		t.Fatal(err)
	}

	engAsync, gAsync := newFaultEngine(t, plan(), noJitterPolicy(3))
	tl := timeline.New()
	link := tl.NewResource("h2d")
	ev, err := engAsync.InChunkedAsync(tl, link, gAsync, 0, src, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Time() != want {
		t.Fatalf("async chunked completion %v, want sync cost %v", ev.Time(), want)
	}
	if got := len(link.Intervals()); got != 4 {
		t.Fatalf("chunk occupancies = %d, want 4", got)
	}
	if _, err := engAsync.InChunkedAsync(tl, link, gAsync, 0, src, 0); err == nil {
		t.Fatal("chunk=0 accepted by InChunkedAsync")
	}
}
