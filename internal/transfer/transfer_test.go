package transfer

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"atgpu/internal/mem"
)

func TestCostModel(t *testing.T) {
	m := CostModel{Alpha: 1e-5, Beta: 1e-9}
	// TI(i) = Îα + Iβ exactly.
	if got, want := m.Cost(2, 1000), 2e-5+1000e-9; math.Abs(got-want) > 1e-18 {
		t.Fatalf("Cost(2,1000) = %g, want %g", got, want)
	}
	if got := m.Cost(0, 0); got != 0 {
		t.Fatalf("Cost(0,0) = %g, want 0", got)
	}
	if d := m.CostDuration(1, 0); d != 10*time.Microsecond {
		t.Fatalf("CostDuration = %v, want 10µs", d)
	}
	if bw := m.Bandwidth(); math.Abs(bw-1e9) > 1 {
		t.Fatalf("Bandwidth = %g, want 1e9", bw)
	}
	if (CostModel{}).Bandwidth() != 0 {
		t.Fatal("zero beta bandwidth should be 0")
	}
}

func TestCostModelValidate(t *testing.T) {
	if err := (CostModel{Alpha: -1}).Validate(); err == nil {
		t.Error("negative alpha accepted")
	}
	if err := (CostModel{Beta: -1}).Validate(); err == nil {
		t.Error("negative beta accepted")
	}
	if err := (CostModel{Alpha: 1, Beta: 1}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

// Cost is monotone in both transactions and words.
func TestCostMonotoneProperty(t *testing.T) {
	m := CostModel{Alpha: 2e-5, Beta: 3e-9}
	f := func(tx, words uint16, dtx, dw uint8) bool {
		base := m.Cost(int(tx), int(words))
		more := m.Cost(int(tx)+int(dtx), int(words)+int(dw))
		return more >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeString(t *testing.T) {
	if Pageable.String() != "pageable" || Pinned.String() != "pinned" || Mapped.String() != "mapped" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Fatal("unknown scheme should still print")
	}
}

func TestLink(t *testing.T) {
	l := PCIeGen3x8Link()
	pinned, err := l.Model(Pinned)
	if err != nil {
		t.Fatal(err)
	}
	pageable, err := l.Model(Pageable)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Beta >= pageable.Beta {
		t.Fatal("pinned should be faster per word than pageable")
	}
	if _, err := l.Model(Scheme(42)); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unknown scheme: %v", err)
	}
}

func TestNewLinkRejectsBadModel(t *testing.T) {
	if _, err := NewLink(map[Scheme]CostModel{Pinned: {Alpha: -1}}); err == nil {
		t.Fatal("bad model accepted")
	}
}

func newTestEngine(t *testing.T) (*Engine, *mem.Global) {
	t.Helper()
	eng, err := NewEngine(PCIeGen3x8Link(), Pinned)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mem.NewGlobal(1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	return eng, g
}

func TestEngineInOut(t *testing.T) {
	eng, g := newTestEngine(t)
	src := []mem.Word{1, 2, 3, 4, 5}
	d, err := eng.In(g, 10, src)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("transfer cost not positive")
	}
	got, d2, err := eng.Out(g, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= 0 {
		t.Fatal("outward cost not positive")
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("round trip [%d] = %d, want %d", i, got[i], src[i])
		}
	}
	st := eng.Stats()
	if st.InTransactions != 1 || st.InWords != 5 || st.OutTransactions != 1 || st.OutWords != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalWords() != 10 {
		t.Fatalf("TotalWords = %d, want 10", st.TotalWords())
	}
	if st.TotalTime() != d+d2 {
		t.Fatalf("TotalTime = %v, want %v", st.TotalTime(), d+d2)
	}
}

func TestEngineCostMatchesModel(t *testing.T) {
	eng, g := newTestEngine(t)
	src := make([]mem.Word, 100)
	d, err := eng.In(g, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	want := eng.Model().CostDuration(1, 100)
	if d != want {
		t.Fatalf("In cost = %v, want %v (Boyer α+100β)", d, want)
	}
}

func TestEngineErrorsPropagate(t *testing.T) {
	eng, g := newTestEngine(t)
	if _, err := eng.In(g, 1020, make([]mem.Word, 10)); err == nil {
		t.Fatal("overflow In accepted")
	}
	if _, _, err := eng.Out(g, 1020, 10); err == nil {
		t.Fatal("overflow Out accepted")
	}
	// Failed transfers must not pollute stats.
	if st := eng.Stats(); st.InTransactions != 0 || st.OutTransactions != 0 {
		t.Fatalf("failed transfers recorded: %+v", st)
	}
}

func TestEngineChunked(t *testing.T) {
	eng, g := newTestEngine(t)
	src := make([]mem.Word, 100)
	for i := range src {
		src[i] = mem.Word(i)
	}
	d, err := eng.InChunked(g, 0, src, 32)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.InTransactions != 4 { // 32+32+32+4
		t.Fatalf("chunked transactions = %d, want 4", st.InTransactions)
	}
	if st.InWords != 100 {
		t.Fatalf("chunked words = %d, want 100", st.InWords)
	}
	// Cost equals 4 transactions of the Boyer model.
	want := eng.Model().CostDuration(1, 32)*3 + eng.Model().CostDuration(1, 4)
	if d != want {
		t.Fatalf("chunked cost = %v, want %v", d, want)
	}
	got, _, err := eng.Out(g, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("chunked round trip [%d] = %d", i, got[i])
		}
	}
	if _, err := eng.InChunked(g, 0, src, 0); err == nil {
		t.Fatal("zero chunk accepted")
	}
}

func TestEngineTrace(t *testing.T) {
	eng, g := newTestEngine(t)
	eng.SetTrace(true)
	if _, err := eng.In(g, 0, make([]mem.Word, 8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Out(g, 0, 8); err != nil {
		t.Fatal(err)
	}
	tr := eng.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace length = %d, want 2", len(tr))
	}
	if tr[0].Direction != HostToDevice || tr[1].Direction != DeviceToHost {
		t.Fatalf("trace directions wrong: %+v", tr)
	}
	if tr[0].Direction.String() != "H2D" || tr[1].Direction.String() != "D2H" {
		t.Fatal("direction names wrong")
	}
	eng.Reset()
	if len(eng.Trace()) != 0 || eng.Stats().TotalWords() != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, Pinned); err == nil {
		t.Fatal("nil link accepted")
	}
	if _, err := NewEngine(PCIeGen3x8Link(), Scheme(9)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
