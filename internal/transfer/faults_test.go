package transfer

import (
	"errors"
	"testing"
	"time"

	"atgpu/internal/faults"
	"atgpu/internal/mem"
)

// noJitterPolicy gives exactly-predictable backoff charges.
func noJitterPolicy(maxRetries int) RetryPolicy {
	return RetryPolicy{
		MaxRetries:    maxRetries,
		Backoff:       10 * time.Microsecond,
		BackoffFactor: 2,
		MaxBackoff:    time.Millisecond,
		Jitter:        0,
		Seed:          1,
	}
}

func newFaultEngine(t *testing.T, inj faults.Injector, policy RetryPolicy) (*Engine, *mem.Global) {
	t.Helper()
	eng, g := newTestEngine(t)
	if err := eng.SetFaults(inj, policy); err != nil {
		t.Fatal(err)
	}
	return eng, g
}

func TestRetryPolicyValidate(t *testing.T) {
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []RetryPolicy{
		{MaxRetries: -1, BackoffFactor: 2},
		{Backoff: -time.Second, BackoffFactor: 2},
		{BackoffFactor: 0.5},
		{BackoffFactor: 1, MaxBackoff: -1},
		{BackoffFactor: 1, Jitter: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
	}
}

// TestInCorruptRetried: a corrupted inward transfer is detected by the
// checksum, retried once, and charged on the simulated timeline as two
// transactions plus the backoff wait — the Boyer α+βn model paid twice.
func TestInCorruptRetried(t *testing.T) {
	plan := faults.NewPlan().QueueTransfer(faults.SiteH2D, faults.Decision{Kind: faults.Corrupt, WordIndex: 3, Mask: 0xff})
	eng, g := newFaultEngine(t, plan, noJitterPolicy(3))
	src := []mem.Word{1, 2, 3, 4, 5, 6, 7, 8}

	cost, err := eng.In(g, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	clean := eng.Model().CostDuration(1, len(src))
	want := 2*clean + 10*time.Microsecond
	if cost != want {
		t.Fatalf("retried cost = %v, want 2×%v + 10µs = %v", cost, clean, want)
	}
	// The retry landed the true data.
	got, _, err := eng.Out(g, 0, len(src))
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("post-retry word %d = %d, want %d", i, got[i], src[i])
		}
	}
	st := eng.Stats()
	if st.Retries != 1 || st.RetransferredWords != len(src) || st.CorruptionsDetected != 1 {
		t.Fatalf("stats = %+v, want 1 retry / %d re-words / 1 corruption", st, len(src))
	}
	if st.BackoffTime != 10*time.Microsecond {
		t.Fatalf("backoff time = %v, want 10µs", st.BackoffTime)
	}
	// Words are counted once; only the retry counters show the re-send.
	if st.InWords != len(src) || st.InTransactions != 1 {
		t.Fatalf("in totals = %d words / %d txns, want %d / 1", st.InWords, st.InTransactions, len(src))
	}
	if !st.Faulted() {
		t.Fatal("Faulted() = false after a retry")
	}
}

// TestOutCorruptRetried: host-side corruption of an outward transfer is
// caught against the device checksum and the re-read returns clean data.
func TestOutCorruptRetried(t *testing.T) {
	plan := faults.NewPlan().QueueTransfer(faults.SiteD2H, faults.Decision{Kind: faults.Corrupt, WordIndex: 0, Mask: 1})
	eng, g := newFaultEngine(t, plan, noJitterPolicy(2))
	src := []mem.Word{10, 20, 30}
	if _, err := eng.In(g, 32, src); err != nil {
		t.Fatal(err)
	}
	got, cost, err := eng.Out(g, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("word %d = %d, want %d (corruption leaked)", i, got[i], src[i])
		}
	}
	clean := eng.Model().CostDuration(1, 3)
	if cost <= clean {
		t.Fatalf("retried out cost %v not above clean %v", cost, clean)
	}
	if st := eng.Stats(); st.Retries != 1 || st.OutTransactions != 1 || st.OutWords != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDropRetried: a dropped transaction consumes link time, moves no
// data, and the retry completes the transfer.
func TestDropRetried(t *testing.T) {
	plan := faults.NewPlan().QueueTransfer(faults.SiteH2D, faults.Decision{Kind: faults.Drop})
	eng, g := newFaultEngine(t, plan, noJitterPolicy(1))
	src := []mem.Word{5, 6, 7}
	if _, err := eng.In(g, 0, src); err != nil {
		t.Fatal(err)
	}
	got, _, err := eng.Out(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("word %d = %d after dropped-then-retried transfer", i, got[i])
		}
	}
	if st := eng.Stats(); st.DroppedTransactions != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStallSlowsButSucceeds: a stalled transaction costs more but needs no
// retry.
func TestStallSlowsButSucceeds(t *testing.T) {
	plan := faults.NewPlan().QueueTransfer(faults.SiteH2D, faults.Decision{Kind: faults.Stall, StallFactor: 3})
	eng, g := newFaultEngine(t, plan, noJitterPolicy(0))
	src := make([]mem.Word, 16)
	cost, err := eng.In(g, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	clean := eng.Model().CostDuration(1, 16)
	if want := time.Duration(3 * float64(clean)); cost != want {
		t.Fatalf("stalled cost = %v, want 3×%v = %v", cost, clean, want)
	}
	if st := eng.Stats(); st.StallEvents != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRetriesExhausted: persistent corruption exhausts the budget; the
// attempts still land in the stats so a failed run can report them.
func TestRetriesExhausted(t *testing.T) {
	plan := faults.NewPlan().QueueTransfer(faults.SiteH2D,
		faults.Decision{Kind: faults.Corrupt},
		faults.Decision{Kind: faults.Corrupt},
		faults.Decision{Kind: faults.Corrupt},
	)
	eng, g := newFaultEngine(t, plan, noJitterPolicy(2))
	_, err := eng.In(g, 0, []mem.Word{1, 2, 3, 4})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	st := eng.Stats()
	if st.Retries != 2 || st.CorruptionsDetected != 3 {
		t.Fatalf("stats after exhaustion = %+v, want 2 retries / 3 corruptions", st)
	}
}

// TestDeterministicReplay: the same fault seed and operation sequence
// yields bit-identical stats and costs — the property that makes faulted
// experiment sweeps reproducible.
func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, time.Duration) {
		inj, err := faults.NewRate(faults.RateConfig{Seed: 99, TransferRate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		policy := DefaultRetryPolicy()
		policy.MaxRetries = 50 // never exhaust under rate 0.5
		policy.Seed = 99
		eng, g := newFaultEngine(t, inj, policy)
		var total time.Duration
		src := make([]mem.Word, 64)
		for i := range src {
			src[i] = mem.Word(i * 3)
		}
		for op := 0; op < 20; op++ {
			d, err := eng.In(g, 0, src)
			if err != nil {
				t.Fatal(err)
			}
			total += d
			_, d2, err := eng.Out(g, 0, 64)
			if err != nil {
				t.Fatal(err)
			}
			total += d2
		}
		return eng.Stats(), total
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged across replays:\n%+v\n%+v", s1, s2)
	}
	if t1 != t2 {
		t.Fatalf("timelines diverged: %v vs %v", t1, t2)
	}
	if s1.Retries == 0 {
		t.Fatal("rate-0.5 replay saw no retries; test is vacuous")
	}
}

// TestNoInjectorCostUnchanged: without an injector the engine's costs are
// the bare Boyer model — the byte-identical fast path the acceptance
// criteria require at fault rate 0.
func TestNoInjectorCostUnchanged(t *testing.T) {
	eng, g := newTestEngine(t)
	src := make([]mem.Word, 128)
	d, err := eng.In(g, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	if want := eng.Model().CostDuration(1, 128); d != want {
		t.Fatalf("fault-free In cost = %v, want %v", d, want)
	}
	st := eng.Stats()
	if st.Faulted() || st.BackoffTime != 0 {
		t.Fatalf("fault-free engine accumulated resilience stats: %+v", st)
	}
}

// TestTraceRecordsAttempts: the per-transaction trace carries the retry
// account, surfacing resilience in traces.
func TestTraceRecordsAttempts(t *testing.T) {
	plan := faults.NewPlan().QueueTransfer(faults.SiteH2D, faults.Decision{Kind: faults.Drop})
	eng, g := newFaultEngine(t, plan, noJitterPolicy(1))
	eng.SetTrace(true)
	if _, err := eng.In(g, 0, []mem.Word{1, 2}); err != nil {
		t.Fatal(err)
	}
	tr := eng.Trace()
	if len(tr) != 1 {
		t.Fatalf("trace = %d records, want 1", len(tr))
	}
	if tr[0].Attempts != 2 || tr[0].Drops != 1 || tr[0].Backoff == 0 {
		t.Fatalf("trace record = %+v, want 2 attempts / 1 drop / backoff > 0", tr[0])
	}
}

// TestStatsMerge: Merge is field-wise addition, for folding per-sweep
// engines after concurrent runs.
func TestStatsMerge(t *testing.T) {
	a := Stats{InTransactions: 1, InWords: 10, InTime: time.Second, Retries: 2, BackoffTime: time.Millisecond}
	b := Stats{OutTransactions: 3, OutWords: 30, OutTime: 2 * time.Second, Retries: 1, StallEvents: 4}
	a.Merge(b)
	if a.InTransactions != 1 || a.OutTransactions != 3 || a.Retries != 3 || a.StallEvents != 4 {
		t.Fatalf("merged = %+v", a)
	}
	if a.TotalTime() != 3*time.Second {
		t.Fatalf("merged total time = %v", a.TotalTime())
	}
}

// TestEngineConcurrentSafety hammers one engine from several goroutines;
// run under -race this validates the locking contract.
func TestEngineConcurrentSafety(t *testing.T) {
	eng, err := NewEngine(PCIeGen3x8Link(), Pinned)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			g, err := mem.NewGlobal(256, 32)
			if err != nil {
				done <- err
				return
			}
			src := make([]mem.Word, 32)
			for i := 0; i < 50; i++ {
				if _, err := eng.In(g, 0, src); err != nil {
					done <- err
					return
				}
				if _, _, err := eng.Out(g, 0, 32); err != nil {
					done <- err
					return
				}
				eng.Stats()
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.Stats(); st.InTransactions != 200 || st.OutTransactions != 200 {
		t.Fatalf("lost transactions under concurrency: %+v", st)
	}
}
