// Package transfer models host↔device data movement, the component the
// ATGPU paper adds over prior abstract GPU models.
//
// The cost side follows Boyer, Meng and Kumaran ("Improving GPU performance
// prediction with data transfer modeling", IPDPSW'13), which the paper
// adopts: a transfer transaction costs a fixed overhead α plus β per word,
// so round i's inward transfers cost TI(i) = Îᵢ·α + Iᵢ·β and outward
// transfers cost TO(i) = Ôᵢ·α + Oᵢ·β.
//
// The mechanism side is an Engine that moves words between a simulated
// host and the device's global memory on a simulated timeline, with
// selectable schemes (pageable, pinned, unified/zero-copy-like) whose α and
// β differ — mirroring the data-transfer-technique studies (Fujii et al.,
// van Werkhoven et al.) discussed in the paper's related work.
package transfer

import (
	"errors"
	"fmt"
	"time"
)

// CostModel holds the Boyer parameters of one link direction. Alpha is the
// per-transaction overhead; Beta the per-word cost. Both are expressed in
// seconds so costs compose directly with the kernel-side times.
type CostModel struct {
	Alpha float64 // seconds per transaction
	Beta  float64 // seconds per word
}

// Cost returns the predicted time for moving words words in transactions
// transactions: transactions·α + words·β.
func (c CostModel) Cost(transactions, words int) float64 {
	return float64(transactions)*c.Alpha + float64(words)*c.Beta
}

// CostDuration is Cost converted to a time.Duration for timeline use.
func (c CostModel) CostDuration(transactions, words int) time.Duration {
	return time.Duration(c.Cost(transactions, words) * float64(time.Second))
}

// Bandwidth returns the asymptotic bandwidth in words/second implied by β.
func (c CostModel) Bandwidth() float64 {
	if c.Beta <= 0 {
		return 0
	}
	return 1 / c.Beta
}

// Validate reports whether the parameters are usable.
func (c CostModel) Validate() error {
	if c.Alpha < 0 {
		return fmt.Errorf("transfer: negative alpha %g", c.Alpha)
	}
	if c.Beta < 0 {
		return fmt.Errorf("transfer: negative beta %g", c.Beta)
	}
	return nil
}

// Scheme identifies a host↔device transfer technique. Different schemes
// instantiate different (α, β) pairs.
type Scheme int

const (
	// Pageable is the default cudaMemcpy from pageable host memory: an
	// extra staging copy inflates both α and β.
	Pageable Scheme = iota
	// Pinned is cudaMemcpy from page-locked memory: full DMA bandwidth,
	// lower α.
	Pinned
	// Mapped is zero-copy / unified addressing: negligible per-transaction
	// setup but per-word cost paid at access time; modelled here as a
	// transfer with α≈0 and a higher β. Fujii et al. find this wins for
	// large transfers on integrated parts.
	Mapped
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Pageable:
		return "pageable"
	case Pinned:
		return "pinned"
	case Mapped:
		return "mapped"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// ErrUnknownScheme is returned for undefined Scheme values.
var ErrUnknownScheme = errors.New("transfer: unknown scheme")

// Link is a full-duplex host↔device interconnect description: a cost model
// per direction per scheme. Real links are near-symmetric; constructors
// allow asymmetry for experiments.
type Link struct {
	models map[Scheme]CostModel
}

// NewLink builds a link from per-scheme cost models.
func NewLink(models map[Scheme]CostModel) (*Link, error) {
	cp := make(map[Scheme]CostModel, len(models))
	for s, m := range models {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", s, err)
		}
		cp[s] = m
	}
	return &Link{models: cp}, nil
}

// Model returns the cost model for scheme s.
func (l *Link) Model(s Scheme) (CostModel, error) {
	m, ok := l.models[s]
	if !ok {
		return CostModel{}, fmt.Errorf("%w: %s", ErrUnknownScheme, s)
	}
	return m, nil
}

// PCIeGen3x8Link approximates the PCIe link of the paper's GTX 650 testbed
// for 8-byte words: pinned bandwidth ~6 GB/s (β = 8/6e9 s per word,
// α = 10 µs), pageable ~3 GB/s with α = 25 µs, mapped β ~ 1.5× pinned with
// α = 1 µs. These are plausible mid-2010s consumer numbers; EXPERIMENTS.md
// records that only trends, not absolute times, are compared to the paper.
func PCIeGen3x8Link() *Link {
	l, err := NewLink(map[Scheme]CostModel{
		Pageable: {Alpha: 25e-6, Beta: 8.0 / 3e9},
		Pinned:   {Alpha: 10e-6, Beta: 8.0 / 6e9},
		Mapped:   {Alpha: 1e-6, Beta: 8.0 / 4e9},
	})
	if err != nil {
		panic(err) // static parameters; unreachable
	}
	return l
}
