package transfer

import (
	"testing"

	"atgpu/internal/mem"
)

// TestInChunkedRejectsBadChunk: zero and negative chunk sizes are
// programming errors with a clear message, charged nothing.
func TestInChunkedRejectsBadChunk(t *testing.T) {
	eng, g := newTestEngine(t)
	src := make([]mem.Word, 16)
	for _, chunk := range []int{0, -1, -64} {
		if _, err := eng.InChunked(g, 0, src, chunk); err == nil {
			t.Errorf("chunk=%d accepted", chunk)
		}
	}
	if st := eng.Stats(); st.InTransactions != 0 || st.InTime != 0 {
		t.Fatalf("rejected chunked transfer charged stats: %+v", st)
	}
}

// TestInChunkedFinalPartialChunk: a length that does not divide evenly
// ends with a short final transaction; words land intact and the cost
// is the per-chunk sum.
func TestInChunkedFinalPartialChunk(t *testing.T) {
	eng, g := newTestEngine(t)
	src := make([]mem.Word, 100) // 32+32+32+4
	for i := range src {
		src[i] = mem.Word(i + 1)
	}
	cost, err := eng.InChunked(g, 0, src, 32)
	if err != nil {
		t.Fatal(err)
	}
	m := eng.Model()
	want := 3*m.CostDuration(1, 32) + m.CostDuration(1, 4)
	if cost != want {
		t.Fatalf("cost = %v, want 3 full + 1 partial = %v", cost, want)
	}
	st := eng.Stats()
	if st.InTransactions != 4 || st.InWords != 100 {
		t.Fatalf("stats = %+v, want 4 transactions / 100 words", st)
	}
	got, _, err := eng.Out(g, 0, len(src))
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("word %d = %d, want %d", i, got[i], src[i])
		}
	}
}

// TestInChunkedChunkLargerThanSrc: a chunk exceeding len(src) degrades
// to a single transaction, identical to a plain In.
func TestInChunkedChunkLargerThanSrc(t *testing.T) {
	engA, gA := newTestEngine(t)
	engB, gB := newTestEngine(t)
	src := make([]mem.Word, 24)
	for i := range src {
		src[i] = mem.Word(i * 3)
	}
	chunked, err := engA.InChunked(gA, 0, src, 1000)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := engB.In(gB, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	if chunked != plain {
		t.Fatalf("oversized chunk cost %v ≠ plain transfer %v", chunked, plain)
	}
	if st := engA.Stats(); st.InTransactions != 1 || st.InWords != len(src) {
		t.Fatalf("stats = %+v, want single transaction", st)
	}
}

// TestInChunkedEmptySrc: nothing to move, nothing charged, no error.
func TestInChunkedEmptySrc(t *testing.T) {
	eng, g := newTestEngine(t)
	cost, err := eng.InChunked(g, 0, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("empty chunked transfer cost %v", cost)
	}
	if st := eng.Stats(); st.InTransactions != 0 {
		t.Fatalf("empty chunked transfer recorded %+v", st)
	}
}
