package transfer

import (
	"fmt"
	"time"

	"atgpu/internal/mem"
)

// Direction of a transfer relative to the device.
type Direction int

const (
	// HostToDevice is inward transfer (the paper's Iᵢ words, Îᵢ
	// transactions, W operator from a host variable to a global one).
	HostToDevice Direction = iota
	// DeviceToHost is outward transfer (Oᵢ, Ôᵢ).
	DeviceToHost
)

// String names the direction in CUDA-like terms.
func (d Direction) String() string {
	if d == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// Record describes one completed transfer transaction for tracing and for
// auditing the model's Î/Ô counts.
type Record struct {
	Direction Direction
	Scheme    Scheme
	Words     int
	Offset    int // device global-memory offset
	Cost      time.Duration
}

// Stats accumulates per-direction transfer totals; these are exactly the
// quantities the ATGPU data-transfer metric sums: ΣᵢIᵢ, ΣᵢOᵢ and the
// transaction counts behind TI/TO.
type Stats struct {
	InTransactions  int
	InWords         int
	InTime          time.Duration
	OutTransactions int
	OutWords        int
	OutTime         time.Duration
}

// TotalWords returns Σ(Iᵢ+Oᵢ), the paper's total transfer metric.
func (s Stats) TotalWords() int { return s.InWords + s.OutWords }

// TotalTime returns the wall time spent in transfers.
func (s Stats) TotalTime() time.Duration { return s.InTime + s.OutTime }

// Add folds r into the totals.
func (s *Stats) Add(r Record) {
	if r.Direction == HostToDevice {
		s.InTransactions++
		s.InWords += r.Words
		s.InTime += r.Cost
	} else {
		s.OutTransactions++
		s.OutWords += r.Words
		s.OutTime += r.Cost
	}
}

// Engine moves words between host slices and a device global memory,
// charging Boyer costs on a simulated timeline. It is the substrate
// standing in for cudaMemcpy plus the PCIe DMA engines.
type Engine struct {
	link   *Link
	scheme Scheme
	stats  Stats
	trace  []Record
	keep   bool // whether to retain per-record trace
}

// NewEngine creates an engine over link using scheme for all transfers.
func NewEngine(link *Link, scheme Scheme) (*Engine, error) {
	if link == nil {
		return nil, fmt.Errorf("transfer: nil link")
	}
	if _, err := link.Model(scheme); err != nil {
		return nil, err
	}
	return &Engine{link: link, scheme: scheme}, nil
}

// SetTrace toggles retention of per-transaction records.
func (e *Engine) SetTrace(keep bool) { e.keep = keep }

// Scheme returns the engine's transfer scheme.
func (e *Engine) Scheme() Scheme { return e.scheme }

// Model returns the engine's active cost model.
func (e *Engine) Model() CostModel {
	m, err := e.link.Model(e.scheme)
	if err != nil {
		panic(err) // checked in NewEngine; unreachable
	}
	return m
}

// In copies src into device global memory at offset as a single
// transaction, returning the simulated cost.
func (e *Engine) In(g *mem.Global, offset int, src []mem.Word) (time.Duration, error) {
	if err := g.WriteSlice(offset, src); err != nil {
		return 0, err
	}
	cost := e.Model().CostDuration(1, len(src))
	e.record(Record{Direction: HostToDevice, Scheme: e.scheme, Words: len(src), Offset: offset, Cost: cost})
	return cost, nil
}

// Out copies length words from device global memory at offset back to the
// host as a single transaction.
func (e *Engine) Out(g *mem.Global, offset, length int) ([]mem.Word, time.Duration, error) {
	dst, err := g.ReadSlice(offset, length)
	if err != nil {
		return nil, 0, err
	}
	cost := e.Model().CostDuration(1, length)
	e.record(Record{Direction: DeviceToHost, Scheme: e.scheme, Words: length, Offset: offset, Cost: cost})
	return dst, cost, nil
}

// InChunked copies src in ⌈len/chunk⌉ transactions, each paying α. This is
// the partitioned transfer style the paper's future work (§V) raises for
// data that exceeds global memory; the extra α per chunk is what an
// overlap-capable scheme tries to hide.
func (e *Engine) InChunked(g *mem.Global, offset int, src []mem.Word, chunk int) (time.Duration, error) {
	if chunk <= 0 {
		return 0, fmt.Errorf("transfer: chunk must be positive, got %d", chunk)
	}
	var total time.Duration
	for base := 0; base < len(src); base += chunk {
		end := base + chunk
		if end > len(src) {
			end = len(src)
		}
		d, err := e.In(g, offset+base, src[base:end])
		if err != nil {
			return total, err
		}
		total += d
	}
	return total, nil
}

// Stats returns the accumulated totals.
func (e *Engine) Stats() Stats { return e.stats }

// Trace returns retained records (nil unless SetTrace(true)).
func (e *Engine) Trace() []Record { return e.trace }

// Reset clears stats and trace.
func (e *Engine) Reset() {
	e.stats = Stats{}
	e.trace = nil
}

func (e *Engine) record(r Record) {
	e.stats.Add(r)
	if e.keep {
		e.trace = append(e.trace, r)
	}
}
