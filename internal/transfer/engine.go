package transfer

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"atgpu/internal/faults"
	"atgpu/internal/mem"
	"atgpu/internal/obs"
)

// Direction of a transfer relative to the device.
type Direction int

const (
	// HostToDevice is inward transfer (the paper's Iᵢ words, Îᵢ
	// transactions, W operator from a host variable to a global one).
	HostToDevice Direction = iota
	// DeviceToHost is outward transfer (Oᵢ, Ôᵢ).
	DeviceToHost
)

// String names the direction in CUDA-like terms.
func (d Direction) String() string {
	if d == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// site maps a direction onto the fault injector's site space.
func (d Direction) site() faults.Site {
	if d == HostToDevice {
		return faults.SiteH2D
	}
	return faults.SiteD2H
}

// Record describes one completed transfer transaction for tracing and for
// auditing the model's Î/Ô counts. With fault injection active a record
// covers all attempts of the transaction: Cost includes re-transfers and
// backoff waits, and the per-fault counters say what went wrong.
type Record struct {
	Direction Direction
	Scheme    Scheme
	Words     int
	Offset    int           // device global-memory offset
	Cost      time.Duration // total simulated cost including retries

	// Attempts is the number of tries the transaction took (1 = clean).
	Attempts int
	// Backoff is the portion of Cost spent waiting between retries.
	Backoff time.Duration
	// Corruptions, Drops and Stalls count the faults hit across attempts.
	Corruptions int
	Drops       int
	Stalls      int
}

// Stats accumulates per-direction transfer totals; these are exactly the
// quantities the ATGPU data-transfer metric sums: ΣᵢIᵢ, ΣᵢOᵢ and the
// transaction counts behind TI/TO. The resilience counters beneath record
// fault-recovery work: words counted as In/Out moved exactly once; retried
// attempts appear only in Retries/RetransferredWords.
//
// Stats itself is a plain value with no locking; the Engine serialises all
// accumulation behind its own mutex, and Merge supports folding per-sweep
// engines together after concurrent runs.
type Stats struct {
	InTransactions  int
	InWords         int
	InTime          time.Duration
	OutTransactions int
	OutWords        int
	OutTime         time.Duration

	// Retries counts re-attempted transactions (attempts beyond each
	// transaction's first).
	Retries int
	// RetransferredWords is the words moved again by those retries.
	RetransferredWords int
	// CorruptionsDetected counts checksum mismatches caught.
	CorruptionsDetected int
	// DroppedTransactions counts attempts that failed outright.
	DroppedTransactions int
	// StallEvents counts attempts that completed slowed-down.
	StallEvents int
	// BackoffTime is the simulated time spent waiting between retries.
	BackoffTime time.Duration
}

// TotalWords returns Σ(Iᵢ+Oᵢ), the paper's total transfer metric.
func (s Stats) TotalWords() int { return s.InWords + s.OutWords }

// TotalTime returns the wall time spent in transfers.
func (s Stats) TotalTime() time.Duration { return s.InTime + s.OutTime }

// Faulted reports whether any fault-recovery work happened.
func (s Stats) Faulted() bool {
	return s.Retries > 0 || s.CorruptionsDetected > 0 || s.DroppedTransactions > 0 || s.StallEvents > 0
}

// Add folds r into the totals.
func (s *Stats) Add(r Record) {
	if r.Direction == HostToDevice {
		s.InTransactions++
		s.InWords += r.Words
		s.InTime += r.Cost
	} else {
		s.OutTransactions++
		s.OutWords += r.Words
		s.OutTime += r.Cost
	}
	if r.Attempts > 1 {
		s.Retries += r.Attempts - 1
		s.RetransferredWords += (r.Attempts - 1) * r.Words
	}
	s.CorruptionsDetected += r.Corruptions
	s.DroppedTransactions += r.Drops
	s.StallEvents += r.Stalls
	s.BackoffTime += r.Backoff
}

// Merge folds other into s field-wise, for aggregating per-engine totals
// across concurrent sweeps.
func (s *Stats) Merge(other Stats) {
	s.InTransactions += other.InTransactions
	s.InWords += other.InWords
	s.InTime += other.InTime
	s.OutTransactions += other.OutTransactions
	s.OutWords += other.OutWords
	s.OutTime += other.OutTime
	s.Retries += other.Retries
	s.RetransferredWords += other.RetransferredWords
	s.CorruptionsDetected += other.CorruptionsDetected
	s.DroppedTransactions += other.DroppedTransactions
	s.StallEvents += other.StallEvents
	s.BackoffTime += other.BackoffTime
}

// Engine moves words between host slices and a device global memory,
// charging Boyer costs on a simulated timeline. It is the substrate
// standing in for cudaMemcpy plus the PCIe DMA engines.
//
// With a fault injector attached (SetFaults), every transaction is
// checksum-verified end to end and faulted attempts are retried under the
// engine's RetryPolicy; without one, the fast path is byte-identical to
// the fault-free engine. All methods are safe for concurrent use.
type Engine struct {
	mu     sync.Mutex
	link   *Link
	scheme Scheme
	stats  Stats
	trace  []Record
	keep   bool // whether to retain per-record trace

	inj    faults.Injector
	policy RetryPolicy
	jrng   *rand.Rand // backoff jitter source

	orec *obs.Recorder // trace sink (nil = disabled)
	omet *obs.Registry // metrics sink (nil = disabled)
}

// NewEngine creates an engine over link using scheme for all transfers.
func NewEngine(link *Link, scheme Scheme) (*Engine, error) {
	if link == nil {
		return nil, fmt.Errorf("transfer: nil link")
	}
	if _, err := link.Model(scheme); err != nil {
		return nil, err
	}
	return &Engine{link: link, scheme: scheme, policy: DefaultRetryPolicy()}, nil
}

// SetFaults attaches a fault injector and the retry policy governing
// recovery. A nil injector restores fault-free operation (the policy is
// still validated and stored).
func (e *Engine) SetFaults(inj faults.Injector, policy RetryPolicy) error {
	if err := policy.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.inj = inj
	e.policy = policy
	e.jrng = rand.New(rand.NewSource(policy.Seed))
	return nil
}

// SetObs attaches the unified observability sinks: every completed
// transaction mirrors into the registry's atgpu_transfer_* series, and
// the async entry points emit per-transaction spans (with retry and
// fault instants) onto the recorder. Nil sinks disable the respective
// surface; the uninstrumented path stays allocation-free.
func (e *Engine) SetObs(rec *obs.Recorder, met *obs.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.orec = rec
	e.omet = met
}

// SetTrace toggles retention of per-transaction records.
func (e *Engine) SetTrace(keep bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.keep = keep
}

// Scheme returns the engine's transfer scheme.
func (e *Engine) Scheme() Scheme { return e.scheme }

// Model returns the engine's active cost model.
func (e *Engine) Model() CostModel {
	m, err := e.link.Model(e.scheme)
	if err != nil {
		panic(err) // checked in NewEngine; unreachable
	}
	return m
}

// In copies src into device global memory at offset as a single
// transaction, returning the simulated cost. Injected faults are detected
// by checksum verification and retried under the engine's policy; the
// returned cost then includes the re-transfers and backoff waits.
func (e *Engine) In(g *mem.Global, offset int, src []mem.Word) (time.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, _, err := e.in(g, offset, src)
	return d, err
}

// in is In without locking, for use by InChunked and the async entry
// points; it additionally returns the transaction's Record so callers
// can annotate trace spans with retry detail.
func (e *Engine) in(g *mem.Global, offset int, src []mem.Word) (time.Duration, Record, error) {
	// Pre-flight the range so programming errors surface immediately and
	// are never charged, faulted or retried.
	if err := g.CheckWrite(offset, len(src)); err != nil {
		return 0, Record{}, err
	}
	clean := e.Model().CostDuration(1, len(src))
	rec := Record{Direction: HostToDevice, Scheme: e.scheme, Words: len(src), Offset: offset}
	var total time.Duration
	for attempt := 0; ; attempt++ {
		d := e.decide(faults.SiteH2D, attempt, len(src))
		cost := clean
		ok := true
		switch d.Kind {
		case faults.Drop:
			// The aborted DMA consumed link time but landed nothing.
			rec.Drops++
			ok = false
		case faults.Corrupt:
			if err := g.WriteSlice(offset, src); err != nil {
				return 0, Record{}, err
			}
			corruptGlobal(g, offset, len(src), d)
			rec.Corruptions++
			ok = false
		case faults.Stall:
			if err := g.WriteSlice(offset, src); err != nil {
				return 0, Record{}, err
			}
			cost = stalledCost(clean, d)
			rec.Stalls++
		default:
			if err := g.WriteSlice(offset, src); err != nil {
				return 0, Record{}, err
			}
		}
		total += cost
		if ok && e.inj != nil {
			// End-to-end verification: re-hash the landed words against
			// the host-side checksum.
			sum, err := g.ChecksumRange(offset, len(src))
			if err != nil {
				return 0, Record{}, err
			}
			if sum != mem.Checksum(src) {
				rec.Corruptions++
				ok = false
			}
		}
		if done, err := e.finish(&rec, &total, ok, attempt); done {
			return total, rec, err
		}
	}
}

// Out copies length words from device global memory at offset back to the
// host as a single transaction, with the same verify-and-retry behaviour
// as In when a fault injector is attached.
func (e *Engine) Out(g *mem.Global, offset, length int) ([]mem.Word, time.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	dst, d, _, err := e.out(g, offset, length)
	return dst, d, err
}

// out is Out without locking, for use by OutAsync; it additionally
// returns the transaction's Record for trace annotation.
func (e *Engine) out(g *mem.Global, offset, length int) ([]mem.Word, time.Duration, Record, error) {
	if err := g.CheckRead(offset, length); err != nil {
		return nil, 0, Record{}, err
	}
	clean := e.Model().CostDuration(1, length)
	rec := Record{Direction: DeviceToHost, Scheme: e.scheme, Words: length, Offset: offset}
	var total time.Duration
	for attempt := 0; ; attempt++ {
		d := e.decide(faults.SiteD2H, attempt, length)
		cost := clean
		ok := true
		var dst []mem.Word
		switch d.Kind {
		case faults.Drop:
			rec.Drops++
			ok = false
		case faults.Corrupt:
			var err error
			if dst, err = g.ReadSlice(offset, length); err != nil {
				return nil, 0, Record{}, err
			}
			corruptHost(dst, d)
			rec.Corruptions++
			ok = false
		case faults.Stall:
			var err error
			if dst, err = g.ReadSlice(offset, length); err != nil {
				return nil, 0, Record{}, err
			}
			cost = stalledCost(clean, d)
			rec.Stalls++
		default:
			var err error
			if dst, err = g.ReadSlice(offset, length); err != nil {
				return nil, 0, Record{}, err
			}
		}
		total += cost
		if ok && e.inj != nil {
			sum, err := g.ChecksumRange(offset, length)
			if err != nil {
				return nil, 0, Record{}, err
			}
			if mem.Checksum(dst) != sum {
				rec.Corruptions++
				ok = false
			}
		}
		if done, err := e.finish(&rec, &total, ok, attempt); done {
			return dst, total, rec, err
		}
	}
}

// decide consults the injector for one transaction attempt; the fast path
// with no injector attached never allocates or hashes.
func (e *Engine) decide(site faults.Site, attempt, words int) faults.Decision {
	if e.inj == nil {
		return faults.Decision{}
	}
	d := e.inj.Transfer(site, attempt, words)
	if d.Kind == faults.Corrupt && words == 0 {
		// Nothing to corrupt; an empty transaction always verifies.
		d.Kind = faults.None
	}
	return d
}

// finish closes out one attempt: on success or retry exhaustion it records
// the transaction (so retry counts survive even into failures) and reports
// done; otherwise it charges the backoff wait and lets the caller retry.
func (e *Engine) finish(rec *Record, total *time.Duration, ok bool, attempt int) (bool, error) {
	if ok {
		rec.Attempts = attempt + 1
		rec.Cost = *total
		e.record(*rec)
		return true, nil
	}
	if attempt >= e.policy.MaxRetries {
		rec.Attempts = attempt + 1
		rec.Cost = *total
		e.record(*rec)
		return true, fmt.Errorf("%w: %s %d words at %d after %d attempts",
			ErrRetriesExhausted, rec.Direction, rec.Words, rec.Offset, rec.Attempts)
	}
	b := e.policy.backoff(attempt, e.jrng)
	*total += b
	rec.Backoff += b
	return false, nil
}

// corruptGlobal flips bits of one landed word per the decision.
func corruptGlobal(g *mem.Global, offset, length int, d faults.Decision) {
	if length <= 0 {
		return
	}
	idx := offset + absMod(d.WordIndex, length)
	v, err := g.Load(idx)
	if err != nil {
		return // range pre-flighted; unreachable
	}
	g.Store(idx, v^corruptMask(d)) //nolint:errcheck // in-range by construction
}

// corruptHost flips bits of one received word per the decision.
func corruptHost(dst []mem.Word, d faults.Decision) {
	if len(dst) == 0 {
		return
	}
	dst[absMod(d.WordIndex, len(dst))] ^= corruptMask(d)
}

// corruptMask returns the decision's XOR mask, never zero.
func corruptMask(d faults.Decision) mem.Word {
	if d.Mask == 0 {
		return 1
	}
	return mem.Word(d.Mask)
}

// stalledCost applies the decision's stall factor (defaulting to 2×).
func stalledCost(clean time.Duration, d faults.Decision) time.Duration {
	f := d.StallFactor
	if f < 1 {
		f = 2
	}
	return time.Duration(float64(clean) * f)
}

// absMod reduces i into [0, n) for any i.
func absMod(i, n int) int {
	m := i % n
	if m < 0 {
		m += n
	}
	return m
}

// InChunked copies src in ⌈len/chunk⌉ transactions, each paying α. This is
// the partitioned transfer style the paper's future work (§V) raises for
// data that exceeds global memory; the extra α per chunk is what an
// overlap-capable scheme tries to hide.
func (e *Engine) InChunked(g *mem.Global, offset int, src []mem.Word, chunk int) (time.Duration, error) {
	if chunk <= 0 {
		return 0, fmt.Errorf("transfer: chunk must be positive, got %d", chunk)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var total time.Duration
	for base := 0; base < len(src); base += chunk {
		end := base + chunk
		if end > len(src) {
			end = len(src)
		}
		d, _, err := e.in(g, offset+base, src[base:end])
		if err != nil {
			return total, err
		}
		total += d
	}
	return total, nil
}

// Stats returns the accumulated totals.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Trace returns a copy of the retained records (nil unless SetTrace(true)).
// Callers own the returned slice: mutating it cannot corrupt the engine's
// retained trace, and later transfers cannot append into its backing array.
func (e *Engine) Trace() []Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.trace == nil {
		return nil
	}
	return append([]Record(nil), e.trace...)
}

// Reset clears stats and trace; the trace-retention flag, fault injector
// and retry policy persist (Reset and Add/record stay symmetric: every
// field Add touches is zeroed here).
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
	e.trace = nil
}

func (e *Engine) record(r Record) {
	e.stats.Add(r)
	if e.keep {
		e.trace = append(e.trace, r)
	}
	e.mirror(r)
}

// mirror feeds one completed transaction into the metrics registry.
// Called under e.mu like record; a nil registry makes this free.
func (e *Engine) mirror(r Record) {
	if e.omet == nil {
		return
	}
	if r.Direction == HostToDevice {
		e.omet.Add("atgpu_transfer_in_transactions_total", 1)
		e.omet.Add("atgpu_transfer_in_words_total", int64(r.Words))
		e.omet.AddDuration("atgpu_transfer_in_ns_total", r.Cost)
		e.omet.Observe("atgpu_transfer_in_ns", r.Cost)
	} else {
		e.omet.Add("atgpu_transfer_out_transactions_total", 1)
		e.omet.Add("atgpu_transfer_out_words_total", int64(r.Words))
		e.omet.AddDuration("atgpu_transfer_out_ns_total", r.Cost)
		e.omet.Observe("atgpu_transfer_out_ns", r.Cost)
	}
	if r.Attempts > 1 {
		e.omet.Add("atgpu_transfer_retries_total", int64(r.Attempts-1))
	}
	if r.Corruptions > 0 {
		e.omet.Add("atgpu_faults_corrupt_total", int64(r.Corruptions))
	}
	if r.Drops > 0 {
		e.omet.Add("atgpu_faults_drop_total", int64(r.Drops))
	}
	if r.Stalls > 0 {
		e.omet.Add("atgpu_faults_stall_total", int64(r.Stalls))
	}
	if r.Backoff > 0 {
		e.omet.AddDuration("atgpu_transfer_backoff_ns_total", r.Backoff)
	}
}
