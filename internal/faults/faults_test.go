package faults

import (
	"strings"
	"testing"
)

func TestRateDeterministicReplay(t *testing.T) {
	cfg := RateConfig{Seed: 42, TransferRate: 0.5, KernelRate: 0.5}
	a, err := NewRate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		da := a.Transfer(SiteH2D, 0, 64)
		db := b.Transfer(SiteH2D, 0, 64)
		if da != db {
			t.Fatalf("transfer decision %d diverged: %+v vs %+v", i, da, db)
		}
		la := a.Launch(0, 4)
		lb := b.Launch(0, 4)
		if la != lb {
			t.Fatalf("launch decision %d diverged: %+v vs %+v", i, la, lb)
		}
	}
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) {
		t.Fatalf("event logs diverged: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d diverged: %v vs %v", i, ea[i], eb[i])
		}
	}
	if len(ea) == 0 {
		t.Fatal("rate 0.5 injected no faults in 400 decisions")
	}
}

func TestRateZeroNeverFaults(t *testing.T) {
	r, err := NewRate(RateConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d := r.Transfer(SiteD2H, 0, 8); d.Kind != None {
			t.Fatalf("zero-rate injector faulted: %+v", d)
		}
		if d := r.Launch(0, 2); d.Kind != None {
			t.Fatalf("zero-rate injector faulted launch: %+v", d)
		}
	}
	if len(r.Events()) != 0 {
		t.Fatal("zero-rate injector logged events")
	}
}

func TestRateOneAlwaysFaults(t *testing.T) {
	r, err := NewRate(RateConfig{Seed: 7, TransferRate: 1, KernelRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]bool{}
	for i := 0; i < 100; i++ {
		d := r.Transfer(SiteH2D, i, 16)
		if d.Kind == None {
			t.Fatal("rate-1 injector passed a transfer")
		}
		kinds[d.Kind] = true
		if d.Kind == Corrupt && d.Mask == 0 {
			t.Fatal("corrupt decision with zero mask")
		}
		l := r.Launch(i, 4)
		if l.Kind == None {
			t.Fatal("rate-1 injector passed a launch")
		}
		kinds[l.Kind] = true
		if l.Kind == SMFail && (l.Victim < 0 || l.Victim >= 4) {
			t.Fatalf("victim %d out of range", l.Victim)
		}
	}
	for _, k := range []Kind{Corrupt, Stall, Drop, Hang, SMFail} {
		if !kinds[k] {
			t.Errorf("fault kind %s never drawn in 200 decisions", k)
		}
	}
}

func TestRateConfigValidate(t *testing.T) {
	if _, err := NewRate(RateConfig{TransferRate: -0.1}); err == nil {
		t.Error("negative transfer rate accepted")
	}
	if _, err := NewRate(RateConfig{TransferRate: 1.1}); err == nil {
		t.Error("transfer rate > 1 accepted")
	}
	if _, err := NewRate(RateConfig{KernelRate: 2}); err == nil {
		t.Error("kernel rate > 1 accepted")
	}
}

func TestPlanConsumesInOrder(t *testing.T) {
	p := NewPlan().
		QueueTransfer(SiteH2D, Decision{Kind: Corrupt, Mask: 0xff}, Decision{Kind: Drop}).
		QueueLaunch(Decision{Kind: Hang})
	if d := p.Transfer(SiteH2D, 0, 4); d.Kind != Corrupt {
		t.Fatalf("first H2D decision = %s, want corrupt", d.Kind)
	}
	// Other sites are unaffected by the H2D queue.
	if d := p.Transfer(SiteD2H, 0, 4); d.Kind != None {
		t.Fatalf("D2H decision = %s, want none", d.Kind)
	}
	if d := p.Transfer(SiteH2D, 1, 4); d.Kind != Drop {
		t.Fatalf("second H2D decision = %s, want drop", d.Kind)
	}
	// Exhausted queues report None forever.
	if d := p.Transfer(SiteH2D, 2, 4); d.Kind != None {
		t.Fatalf("exhausted H2D decision = %s, want none", d.Kind)
	}
	if d := p.Launch(0, 2); d.Kind != Hang {
		t.Fatalf("launch decision = %s, want hang", d.Kind)
	}
	if d := p.Launch(1, 2); d.Kind != None {
		t.Fatalf("exhausted launch decision = %s, want none", d.Kind)
	}
	// Only the three injected faults appear in the log.
	ev := p.Events()
	if len(ev) != 3 {
		t.Fatalf("event log = %d entries, want 3: %v", len(ev), ev)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 3, Site: SiteH2D, Attempt: 1, Kind: Corrupt, Detail: "(64 words)"}
	s := e.String()
	for _, want := range []string{"#3", "H2D", "attempt=1", "corrupt", "64 words"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestNopAndNames(t *testing.T) {
	var n Nop
	if n.Transfer(SiteH2D, 0, 1).Kind != None || n.Launch(0, 1).Kind != None || n.Events() != nil {
		t.Fatal("Nop injected something")
	}
	if SiteH2D.String() != "H2D" || SiteD2H.String() != "D2H" || SiteKernel.String() != "kernel" {
		t.Fatal("site names wrong")
	}
	if Site(9).String() == "" || Kind(9).String() == "" {
		t.Fatal("unknown site/kind should still print")
	}
	for k, want := range map[Kind]string{None: "none", Corrupt: "corrupt", Stall: "stall", Drop: "drop", Hang: "hang", SMFail: "sm-fail"} {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", int(k), k.String(), want)
		}
	}
}
