// Package faults provides deterministic, seed-driven fault injection for
// the simulated GPU stack. Real measurement campaigns on GPU hardware must
// tolerate noisy, partially-failing runs (transfer glitches, hung kernels,
// disabled multiprocessors); this package lets the simulator reproduce
// those failure modes on demand so the resilience machinery in
// internal/transfer and internal/simgpu can be exercised and regression
// tested.
//
// Two implementations are provided: Rate draws faults from a seeded PRNG
// at configurable per-site rates (the chaos-testing mode of the
// experiment runner), and Plan replays a scripted decision sequence
// (the unit-testing mode). Both log every injected fault so a failed run
// can report exactly what was done to it. The same seed always yields the
// same decision sequence for the same operation sequence, which is what
// makes faulted timelines replayable.
//
// Injector implementations are safe for use from multiple goroutines, but
// determinism is only guaranteed when the operation sequence itself is
// deterministic (a single simulation goroutine, as the Host contract
// requires).
package faults

import (
	"fmt"
	"math/rand"
	"sync"
)

// Site identifies where a fault decision applies.
type Site int

const (
	// SiteH2D is an inward (host-to-device) transfer transaction.
	SiteH2D Site = iota
	// SiteD2H is an outward (device-to-host) transfer transaction.
	SiteD2H
	// SiteKernel is a kernel launch.
	SiteKernel
)

// String names the site in CUDA-like terms.
func (s Site) String() string {
	switch s {
	case SiteH2D:
		return "H2D"
	case SiteD2H:
		return "D2H"
	case SiteKernel:
		return "kernel"
	}
	return fmt.Sprintf("site(%d)", int(s))
}

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// None means the operation proceeds unfaulted.
	None Kind = iota
	// Corrupt flips bits in transferred data; the engine's checksum
	// verification detects it and retries.
	Corrupt
	// Stall multiplies a transaction's cost without failing it (a
	// congested or renegotiating link).
	Stall
	// Drop fails a transaction outright; the link time is consumed but no
	// data moves, and the engine retries.
	Drop
	// Hang makes a kernel launch never complete; the host watchdog fires
	// and relaunches.
	Hang
	// SMFail permanently disables one streaming multiprocessor; the
	// device degrades to fewer SMs with exact results.
	SMFail
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Corrupt:
		return "corrupt"
	case Stall:
		return "stall"
	case Drop:
		return "drop"
	case Hang:
		return "hang"
	case SMFail:
		return "sm-fail"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Decision is one injector verdict. The zero value means "no fault".
type Decision struct {
	// Kind selects the fault class (None for a clean operation).
	Kind Kind
	// Victim is the SM index to disable (SMFail only; consumers reduce it
	// modulo the SM count).
	Victim int
	// WordIndex selects the word to perturb within a transaction (Corrupt
	// only; consumers reduce it modulo the transaction length).
	WordIndex int
	// Mask is the XOR corruption mask (Corrupt only; consumers substitute
	// 1 if zero, so corruption is never a no-op).
	Mask int64
	// StallFactor multiplies the transaction cost (Stall only; consumers
	// substitute 2 if < 1).
	StallFactor float64
}

// Event records one injected fault for the fault log.
type Event struct {
	// Seq is the injector-wide decision sequence number.
	Seq int
	// Site is where the fault was injected.
	Site Site
	// Attempt is the consumer's retry attempt number (0 = first try).
	Attempt int
	// Kind is the injected fault class.
	Kind Kind
	// Detail describes the operation (words moved, victim SM, …).
	Detail string
}

// String renders the event as one fault-log line.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s attempt=%d %s %s", e.Seq, e.Site, e.Attempt, e.Kind, e.Detail)
}

// Injector decides, deterministically from its construction, whether each
// operation is faulted. Consumers call Transfer once per transfer
// transaction attempt and Launch once per kernel launch attempt.
type Injector interface {
	// Transfer decides the fate of one transfer transaction attempt of
	// the given word count.
	Transfer(site Site, attempt, words int) Decision
	// Launch decides the fate of one kernel launch attempt on a device
	// with numSMs multiprocessors.
	Launch(attempt, numSMs int) Decision
	// Events returns a copy of the fault log accumulated so far.
	Events() []Event
}

// recorder is the shared fault log.
type recorder struct {
	mu     sync.Mutex
	seq    int
	events []Event
}

// log appends a non-None decision to the fault log.
func (r *recorder) log(site Site, attempt int, d Decision, detail string) {
	if d.Kind == None {
		r.seq++
		return
	}
	r.events = append(r.events, Event{Seq: r.seq, Site: site, Attempt: attempt, Kind: d.Kind, Detail: detail})
	r.seq++
}

// Events returns a copy of the fault log.
func (r *recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Nop is an injector that never faults. It exists so callers can thread a
// non-nil Injector unconditionally; nil is also accepted everywhere.
type Nop struct{}

// Transfer never faults.
func (Nop) Transfer(Site, int, int) Decision { return Decision{} }

// Launch never faults.
func (Nop) Launch(int, int) Decision { return Decision{} }

// Events returns an empty log.
func (Nop) Events() []Event { return nil }

// RateConfig parameterises a Rate injector.
type RateConfig struct {
	// Seed drives the PRNG; the same seed yields the same decision
	// sequence for the same operation sequence.
	Seed int64
	// TransferRate is the probability in [0,1] that a transfer
	// transaction attempt is faulted (corrupt, stall or drop, equally
	// likely).
	TransferRate float64
	// KernelRate is the probability in [0,1] that a kernel launch attempt
	// is faulted (hang or SM failure, equally likely).
	KernelRate float64
}

// Validate checks the rates are probabilities.
func (c RateConfig) Validate() error {
	if c.TransferRate < 0 || c.TransferRate > 1 {
		return fmt.Errorf("faults: TransferRate=%g not in [0,1]", c.TransferRate)
	}
	if c.KernelRate < 0 || c.KernelRate > 1 {
		return fmt.Errorf("faults: KernelRate=%g not in [0,1]", c.KernelRate)
	}
	return nil
}

// Rate injects faults drawn from a seeded PRNG at the configured rates.
type Rate struct {
	recorder
	cfg RateConfig
	rng *rand.Rand
}

// NewRate builds a rate-based injector.
func NewRate(cfg RateConfig) (*Rate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Rate{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Transfer faults the attempt with probability TransferRate.
func (r *Rate) Transfer(site Site, attempt, words int) Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	var d Decision
	if r.rng.Float64() < r.cfg.TransferRate {
		switch r.rng.Intn(3) {
		case 0:
			d = Decision{
				Kind:      Corrupt,
				WordIndex: r.rng.Intn(1 << 20),
				Mask:      int64(r.rng.Uint64() | 1),
			}
		case 1:
			d = Decision{Kind: Stall, StallFactor: 1.5 + 2*r.rng.Float64()}
		case 2:
			d = Decision{Kind: Drop}
		}
	}
	r.log(site, attempt, d, fmt.Sprintf("(%d words)", words))
	return d
}

// Launch faults the attempt with probability KernelRate.
func (r *Rate) Launch(attempt, numSMs int) Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	var d Decision
	if r.rng.Float64() < r.cfg.KernelRate {
		if r.rng.Intn(2) == 0 {
			d = Decision{Kind: Hang}
		} else {
			n := numSMs
			if n < 1 {
				n = 1
			}
			d = Decision{Kind: SMFail, Victim: r.rng.Intn(n)}
		}
	}
	r.log(SiteKernel, attempt, d, fmt.Sprintf("(SM %d of %d)", d.Victim, numSMs))
	return d
}

// Plan replays a scripted decision sequence: each site consumes its queued
// decisions in order, then reports None forever. Used by tests that need
// exact fault placement.
type Plan struct {
	recorder
	transfers map[Site][]Decision
	launches  []Decision
}

// NewPlan builds an empty plan (never faults until queued).
func NewPlan() *Plan {
	return &Plan{transfers: make(map[Site][]Decision)}
}

// QueueTransfer appends decisions for transfer attempts at site.
func (p *Plan) QueueTransfer(site Site, ds ...Decision) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.transfers[site] = append(p.transfers[site], ds...)
	return p
}

// QueueLaunch appends decisions for kernel launch attempts.
func (p *Plan) QueueLaunch(ds ...Decision) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.launches = append(p.launches, ds...)
	return p
}

// Transfer pops the next queued decision for site.
func (p *Plan) Transfer(site Site, attempt, words int) Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	var d Decision
	if q := p.transfers[site]; len(q) > 0 {
		d, p.transfers[site] = q[0], q[1:]
	}
	p.log(site, attempt, d, fmt.Sprintf("(%d words)", words))
	return d
}

// Launch pops the next queued launch decision.
func (p *Plan) Launch(attempt, numSMs int) Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	var d Decision
	if len(p.launches) > 0 {
		d, p.launches = p.launches[0], p.launches[1:]
	}
	p.log(SiteKernel, attempt, d, fmt.Sprintf("(SM %d of %d)", d.Victim, numSMs))
	return d
}
