// Package vet implements the repo's custom static checks, run by
// cmd/atgpu-vet next to the standard toolchain linters. Five invariants
// are enforced. The first two guard the determinism contract the
// simulator, sweeps and goldens rely on (sweep output must be
// byte-identical for any worker count, and simulated time must never
// observe the wall clock); the third guards the daemon's survival
// contract (a panic in a worker must become a failed job, never a dead
// process); the fourth guards the simulator's per-instruction hot path
// (zero allocation per simulated step); the fifth (opparity, see
// opparity.go) guards the three-way interpreter contract — every opcode
// declared in internal/kernel must be handled by the legacy switch, the
// decoded dispatch, and the analyzer's transfer functions:
//
//   - notime: deterministic packages (timeline, simgpu, transfer,
//     experiments, results) must not read the wall clock (time.Now,
//     time.Since, time.Until) or draw from math/rand's global source.
//     Explicitly seeded generators — rand.New(rand.NewSource(seed)) —
//     stay legal. For results this is what keeps record bodies
//     byte-identical across re-runs: wall-clock only enters through the
//     Env envelope its callers stamp at persist time.
//
//   - maporder: no package may feed output directly from a map iteration
//     (printing, writer or hash calls inside a range over a map); keys
//     must be collected and sorted first, since Go randomises map order.
//
//   - gorecover: in the long-running packages (sched, service) every go
//     statement must launch a function literal whose body visibly
//     contains a recover() call or routes through sched.Protect; naked
//     goroutines would take the whole daemon down on a panic.
//
//   - hotalloc: in the simulator package the interpreter's hot-path
//     functions (exec* and replay*) must not call append or make. These
//     run once per warp step — billions of times per sweep — so even a
//     byte of garbage per call dominates the profile; anything they need
//     must be preallocated at launch setup.
//
//   - opparity: every kernel.Op* constant must be mentioned by the legacy
//     interpreter (simgpu/interp.go), the decoded interpreter
//     (simgpu/exec_decoded.go) and the analyzer's abstract interpreter
//     (analyze/interp.go). Go switches are not exhaustive, so a new
//     opcode missed in one arena compiles cleanly and fails at runtime —
//     or worse, mispredicts silently.
//
// The checks are syntactic: they parse with go/parser only, so they run
// without build metadata and never depend on non-stdlib analysis
// machinery. Map detection is therefore local — range expressions whose
// map-ness is visible in the same file (map literals, make(map...),
// declarations and parameters) — which is exactly the set of cases the
// repo's style produces.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// DeterministicPackages lists the import paths whose non-test files must
// not observe wall-clock time or the global math/rand source.
var DeterministicPackages = []string{
	"atgpu/internal/timeline",
	"atgpu/internal/simgpu",
	"atgpu/internal/transfer",
	"atgpu/internal/experiments",
	"atgpu/internal/results",
}

// RecoverGuardedPackages lists the import paths whose goroutines must be
// panic-guarded: these packages host the daemon's long-lived workers,
// where an unrecovered panic kills the process instead of one job.
var RecoverGuardedPackages = []string{
	"atgpu/internal/sched",
	"atgpu/internal/service",
}

// HotPathPackages lists the import paths whose exec*/replay* functions
// form the simulator's per-step hot path and must stay allocation-free.
var HotPathPackages = []string{
	"atgpu/internal/simgpu",
}

// Diagnostic is one finding: where, which pass, and what.
type Diagnostic struct {
	Pos  token.Position
	Pass string
	Msg  string
}

// String renders "path:line:col: msg [pass]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Msg, d.Pass)
}

// IsDeterministic reports whether importPath is under the notime contract.
func IsDeterministic(importPath string) bool {
	for _, p := range DeterministicPackages {
		if importPath == p {
			return true
		}
	}
	return false
}

// IsRecoverGuarded reports whether importPath is under the gorecover
// contract.
func IsRecoverGuarded(importPath string) bool {
	for _, p := range RecoverGuardedPackages {
		if importPath == p {
			return true
		}
	}
	return false
}

// IsHotPath reports whether importPath is under the hotalloc contract.
func IsHotPath(importPath string) bool {
	for _, p := range HotPathPackages {
		if importPath == p {
			return true
		}
	}
	return false
}

// CheckFile runs every applicable pass over one parsed file. Test files are
// the caller's concern (cmd/atgpu-vet skips them: tests may use the clock
// for timeouts and scratch randomness).
func CheckFile(fset *token.FileSet, f *ast.File, importPath string) []Diagnostic {
	var ds []Diagnostic
	if IsDeterministic(importPath) {
		ds = append(ds, checkNoTime(fset, f)...)
	}
	if IsRecoverGuarded(importPath) {
		ds = append(ds, checkGoRecover(fset, f)...)
	}
	if IsHotPath(importPath) {
		ds = append(ds, checkHotAlloc(fset, f)...)
	}
	ds = append(ds, checkMapOrder(fset, f)...)
	return ds
}

// importName resolves the local name an import path is bound to in f, or ""
// when the file does not import it. A dot or blank import returns "".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

// randAllowed are the math/rand package-level names that carry an explicit
// seed or are plain types — everything else draws from the global source.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// wallClock are the time package functions that read the wall clock.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// checkNoTime flags wall-clock reads and global-source randomness.
func checkNoTime(fset *token.FileSet, f *ast.File) []Diagnostic {
	timeName := importName(f, "time")
	randName := importName(f, "math/rand")
	if timeName == "" && randName == "" {
		return nil
	}
	var ds []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch {
		case timeName != "" && id.Name == timeName && wallClock[sel.Sel.Name]:
			ds = append(ds, Diagnostic{
				Pos:  fset.Position(sel.Pos()),
				Pass: "notime",
				Msg: fmt.Sprintf("%s.%s reads the wall clock in a deterministic package; use the simulated timeline",
					timeName, sel.Sel.Name),
			})
		case randName != "" && id.Name == randName && !randAllowed[sel.Sel.Name]:
			ds = append(ds, Diagnostic{
				Pos:  fset.Position(sel.Pos()),
				Pass: "notime",
				Msg: fmt.Sprintf("%s.%s uses math/rand's global source in a deterministic package; seed a local rand.New(rand.NewSource(seed))",
					randName, sel.Sel.Name),
			})
		}
		return true
	})
	return ds
}

// checkGoRecover flags unguarded goroutine launches. The guard must be
// lexically visible inside the launched function literal: either a
// recover() call (typically in a deferred closure) or a call to Protect /
// sched.Protect, which recovers internally. A go statement on a named
// function is flagged outright — the checker is syntactic and cannot see
// into the callee, so the guard must sit in a literal at the launch site.
func checkGoRecover(fset *token.FileSet, f *ast.File) []Diagnostic {
	var ds []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			ds = append(ds, Diagnostic{
				Pos:  fset.Position(gs.Pos()),
				Pass: "gorecover",
				Msg:  "go statement launches a named function; launch a function literal that defers recover() or wraps the work in sched.Protect",
			})
			return true
		}
		if !guardsPanics(lit.Body) {
			ds = append(ds, Diagnostic{
				Pos:  fset.Position(gs.Pos()),
				Pass: "gorecover",
				Msg:  "goroutine body has no recover() and no sched.Protect call; a panic here kills the daemon instead of failing one job",
			})
		}
		return true
	})
	return ds
}

// guardsPanics reports whether the block lexically contains a recover()
// call or a Protect / sched.Protect call.
func guardsPanics(body *ast.BlockStmt) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "recover" || fun.Name == "Protect" {
				guarded = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Protect" {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

// checkHotAlloc flags append and make calls inside the interpreter's
// hot-path functions — those named exec* or replay* (methods included).
// These run once per warp step; allocating there turns the simulator's
// inner loop into a garbage-collection benchmark. The check is lexical:
// an allocation anywhere inside the function body is flagged, including
// inside function literals, since those run on the same path.
func checkHotAlloc(fset *token.FileSet, f *ast.File) []Diagnostic {
	var ds []Diagnostic
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !isHotPathFunc(fn.Name.Name) {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || (id.Name != "append" && id.Name != "make") {
				return true
			}
			ds = append(ds, Diagnostic{
				Pos:  fset.Position(call.Pos()),
				Pass: "hotalloc",
				Msg: fmt.Sprintf("%s called in hot-path function %s; the per-step interpreter must not allocate — preallocate in launch setup",
					id.Name, fn.Name.Name),
			})
			return true
		})
	}
	return ds
}

// isHotPathFunc reports whether a function name is under the hotalloc
// contract: the exec* interpreter dispatch family and the replay* memo
// replay family.
func isHotPathFunc(name string) bool {
	return strings.HasPrefix(name, "exec") || strings.HasPrefix(name, "replay")
}

// outputCalls are callee names that commit bytes in call order: printing,
// writer methods, and hashing. A range over a map reaching one of these
// emits in randomised order.
var outputCalls = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Sum64": true, "Sum32": true,
}

// checkMapOrder flags map iterations whose body feeds ordered output.
func checkMapOrder(fset *token.FileSet, f *ast.File) []Diagnostic {
	var ds []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		maps := mapIdents(f, fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapExpr(rs.X, maps) {
				return true
			}
			if call, name := firstOutputCall(rs.Body); call != nil {
				ds = append(ds, Diagnostic{
					Pos:  fset.Position(rs.Pos()),
					Pass: "maporder",
					Msg: fmt.Sprintf("map iteration feeds ordered output (%s at line %d); collect and sort the keys first",
						name, fset.Position(call.Pos()).Line),
				})
			}
			return true
		})
		return true
	})
	return ds
}

// mapIdents collects names visibly bound to map values: package-level and
// function-local declarations, assignments from map literals or make, and
// map-typed parameters. Struct fields and call results are out of reach —
// the checker stays local to what the file shows.
func mapIdents(f *ast.File, fn *ast.FuncDecl) map[string]bool {
	maps := make(map[string]bool)
	bind := func(names []*ast.Ident, typ ast.Expr, values []ast.Expr) {
		for i, name := range names {
			isMap := false
			if typ != nil {
				_, isMap = typ.(*ast.MapType)
			}
			if !isMap && i < len(values) {
				isMap = isMapValue(values[i])
			}
			if isMap {
				maps[name.Name] = true
			}
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				bind(vs.Names, vs.Type, vs.Values)
			}
		}
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if _, ok := field.Type.(*ast.MapType); ok {
				for _, name := range field.Names {
					maps[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(s.Rhs) {
					continue
				}
				if isMapValue(s.Rhs[i]) {
					maps[id.Name] = true
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						bind(vs.Names, vs.Type, vs.Values)
					}
				}
			}
		}
		return true
	})
	return maps
}

// isMapValue reports whether e is syntactically a map value: a map literal
// or a make(map[...]...) call.
func isMapValue(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, ok := v.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// isMapExpr reports whether the range expression is visibly a map.
func isMapExpr(e ast.Expr, maps map[string]bool) bool {
	if isMapValue(e) {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && maps[id.Name]
}

// firstOutputCall returns the first output-committing call in the block.
func firstOutputCall(body *ast.BlockStmt) (*ast.CallExpr, string) {
	var found *ast.CallExpr
	var name string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && outputCalls[sel.Sel.Name] {
			found, name = call, sel.Sel.Name
			return false
		}
		return true
	})
	return found, name
}
