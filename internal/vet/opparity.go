package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// The opparity pass guards the repo's three-way interpreter contract: every
// opcode declared in internal/kernel must be handled by the legacy switch
// interpreter, the decoded dispatch, and the static analyzer's transfer
// functions. The three grew together and must stay in lockstep — an opcode
// added to the IR but missed in one arena is a latent trap (simulator) or a
// silently wrong prediction (analyzer) that no compile error catches, since
// Go switches have no exhaustiveness check.
//
// The pass is cross-file, so unlike the single-file passes it accumulates
// state: feed it every non-test file via AddFile, then read Diagnostics.
// Opcode collection is syntactic — exported Op* constants declared in
// internal/kernel — and arena membership is a mention of the constant
// (through the kernel import, any local name) anywhere in the arena's
// dispatch file. A mention is accepted anywhere in the file rather than only
// in case clauses so that grouped cases, table entries and helper calls all
// count; the point is catching the opcode nobody thought about, not policing
// how a file organises its dispatch.

// opArenas maps each dispatch arena to the file that must mention every
// opcode. Keys are "importPath/basename".
var opArenas = map[string]string{
	"atgpu/internal/simgpu/interp.go":       "legacy interpreter (internal/simgpu/interp.go)",
	"atgpu/internal/simgpu/exec_decoded.go": "decoded interpreter (internal/simgpu/exec_decoded.go)",
	"atgpu/internal/analyze/interp.go":      "analyzer transfer functions (internal/analyze/interp.go)",
}

// kernelImportPath is where the opcode universe is declared.
const kernelImportPath = "atgpu/internal/kernel"

// OpParity accumulates opcode declarations and arena mentions across files.
// Zero value is not ready; use NewOpParity.
type OpParity struct {
	// universe maps opcode name to its declaration position.
	universe map[string]token.Position
	// mentions maps arena description to the opcode names its file mentions.
	mentions map[string]map[string]bool
}

// NewOpParity returns an empty accumulator.
func NewOpParity() *OpParity {
	return &OpParity{
		universe: make(map[string]token.Position),
		mentions: make(map[string]map[string]bool),
	}
}

// isOpName reports whether a constant name is an exported opcode: "Op"
// followed by an upper-case letter. The opCount sentinel stays out.
func isOpName(name string) bool {
	return len(name) > 2 && strings.HasPrefix(name, "Op") &&
		name[2] >= 'A' && name[2] <= 'Z'
}

// AddFile feeds one parsed file into the accumulator. Kernel-package files
// contribute opcode declarations; arena files contribute mentions; all other
// files are ignored.
func (p *OpParity) AddFile(fset *token.FileSet, f *ast.File, importPath string) {
	if importPath == kernelImportPath {
		p.addUniverse(fset, f)
		return
	}
	base := filepath.Base(fset.Position(f.Pos()).Filename)
	arena, ok := opArenas[importPath+"/"+base]
	if !ok {
		return
	}
	seen := p.mentions[arena]
	if seen == nil {
		seen = make(map[string]bool)
		p.mentions[arena] = seen
	}
	kernelName := importName(f, kernelImportPath)
	if kernelName == "" {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if ok && id.Name == kernelName && isOpName(sel.Sel.Name) {
			seen[sel.Sel.Name] = true
		}
		return true
	})
}

// addUniverse collects exported Op* constants declared in a kernel file.
func (p *OpParity) addUniverse(fset *token.FileSet, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if isOpName(name.Name) {
					p.universe[name.Name] = fset.Position(name.Pos())
				}
			}
		}
	}
}

// Diagnostics reports every opcode missing from an arena whose file was
// seen. Arenas never fed to AddFile produce no findings, so partial sweeps
// (a single-directory atgpu-vet run) do not false-positive on files outside
// the sweep.
func (p *OpParity) Diagnostics() []Diagnostic {
	ops := make([]string, 0, len(p.universe))
	for op := range p.universe {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	arenas := make([]string, 0, len(p.mentions))
	for arena := range p.mentions {
		arenas = append(arenas, arena)
	}
	sort.Strings(arenas)
	var ds []Diagnostic
	for _, op := range ops {
		for _, arena := range arenas {
			if p.mentions[arena][op] {
				continue
			}
			ds = append(ds, Diagnostic{
				Pos:  p.universe[op],
				Pass: "opparity",
				Msg: fmt.Sprintf("kernel.%s has no handler in the %s; the IR, both interpreters and the analyzer must cover every opcode",
					op, arena),
			})
		}
	}
	return ds
}
