package vet

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// checkSrc parses src and runs CheckFile as if it lived in importPath.
func checkSrc(t *testing.T, importPath, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return CheckFile(fset, f, importPath)
}

// wantDiags asserts the diagnostics hit exactly the given (pass, line)
// pairs, in order.
func wantDiags(t *testing.T, ds []Diagnostic, want ...[2]interface{}) {
	t.Helper()
	if len(ds) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(ds), len(want), ds)
	}
	for i, w := range want {
		if ds[i].Pass != w[0].(string) || ds[i].Pos.Line != w[1].(int) {
			t.Errorf("diagnostic %d = %s at line %d, want %s at line %d",
				i, ds[i].Pass, ds[i].Pos.Line, w[0], w[1])
		}
	}
}

func TestNoTimeFlagsWallClock(t *testing.T) {
	src := `package simgpu

import "time"

func bad() time.Time { return time.Now() }

func alsoBad(start time.Time) time.Duration { return time.Since(start) }

func fine() time.Duration { return 3 * time.Second }
`
	ds := checkSrc(t, "atgpu/internal/simgpu", src)
	wantDiags(t, ds, [2]interface{}{"notime", 5}, [2]interface{}{"notime", 7})
}

func TestNoTimeFlagsGlobalRand(t *testing.T) {
	src := `package transfer

import "math/rand"

func bad() int { return rand.Intn(10) }

func fine() *rand.Rand { return rand.New(rand.NewSource(1)) }

func alsoFine(r *rand.Rand) int { return r.Intn(10) }
`
	ds := checkSrc(t, "atgpu/internal/transfer", src)
	wantDiags(t, ds, [2]interface{}{"notime", 5})
}

func TestNoTimeScopedToDeterministicPackages(t *testing.T) {
	src := `package figures

import (
	"math/rand"
	"time"
)

func allowedHere() (int64, int) { return time.Now().Unix(), rand.Int() }
`
	if ds := checkSrc(t, "atgpu/cmd/atgpu-figures", src); len(ds) != 0 {
		t.Fatalf("non-deterministic package flagged: %v", ds)
	}
}

// The results package holds the canonical record model whose bodies must
// be byte-identical across re-runs, so it sits under the notime contract
// alongside the simulator packages.
func TestNoTimeCoversResultsPackage(t *testing.T) {
	src := `package results

import "time"

func bad() int64 { return time.Now().Unix() }
`
	ds := checkSrc(t, "atgpu/internal/results", src)
	wantDiags(t, ds, [2]interface{}{"notime", 5})
}

func TestNoTimeRespectsImportRename(t *testing.T) {
	src := `package simgpu

import clock "time"

func bad() clock.Time { return clock.Now() }
`
	ds := checkSrc(t, "atgpu/internal/simgpu", src)
	wantDiags(t, ds, [2]interface{}{"notime", 5})
}

func TestMapOrderFlagsDirectPrint(t *testing.T) {
	src := `package any

import "fmt"

func bad(counts map[string]int) {
	for k, v := range counts {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`
	ds := checkSrc(t, "atgpu/internal/obs", src)
	wantDiags(t, ds, [2]interface{}{"maporder", 6})
}

func TestMapOrderFlagsLocalMapIntoBuilder(t *testing.T) {
	src := `package any

import "strings"

func bad() string {
	var sb strings.Builder
	m := make(map[int]string)
	m[1] = "a"
	for _, v := range m {
		sb.WriteString(v)
	}
	return sb.String()
}
`
	ds := checkSrc(t, "atgpu/internal/core", src)
	wantDiags(t, ds, [2]interface{}{"maporder", 9})
}

func TestMapOrderAcceptsSortedKeys(t *testing.T) {
	src := `package any

import (
	"fmt"
	"sort"
)

func fine(counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, counts[k])
	}
}
`
	if ds := checkSrc(t, "atgpu/internal/obs", src); len(ds) != 0 {
		t.Fatalf("sorted-keys pattern flagged: %v", ds)
	}
}

func TestMapOrderAcceptsPureAccumulation(t *testing.T) {
	src := `package any

func fine(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}
`
	if ds := checkSrc(t, "atgpu/internal/simgpu", src); len(ds) != 0 {
		t.Fatalf("order-insensitive accumulation flagged: %v", ds)
	}
}

func TestHotAllocFlagsAppendAndMake(t *testing.T) {
	src := `package simgpu

func (ls *launchState) execFast(w *warp) error {
	buf := make([]int, 8)
	w.pending = append(w.pending, buf[0])
	return nil
}

func replayBlock(w *warp) {
	f := func() { w.scratch = append(w.scratch, 1) }
	f()
}
`
	ds := checkSrc(t, "atgpu/internal/simgpu", src)
	wantDiags(t, ds,
		[2]interface{}{"hotalloc", 4},
		[2]interface{}{"hotalloc", 5},
		[2]interface{}{"hotalloc", 10})
}

func TestHotAllocIgnoresColdFunctions(t *testing.T) {
	src := `package simgpu

func setupLaunch(n int) []int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}

func memoReplay(n int) []int { return make([]int, n) }
`
	if ds := checkSrc(t, "atgpu/internal/simgpu", src); len(ds) != 0 {
		t.Fatalf("cold-path allocation flagged: %v", ds)
	}
}

func TestHotAllocScopedToHotPathPackages(t *testing.T) {
	src := `package analyze

func execPass(n int) []int { return make([]int, n) }
`
	if ds := checkSrc(t, "atgpu/internal/analyze", src); len(ds) != 0 {
		t.Fatalf("non-hot-path package flagged: %v", ds)
	}
}

// TestRepoInvariantsHold runs every pass — the single-file checks and the
// cross-file opparity sweep — over this repository's own non-test sources,
// the same sweep CI performs with atgpu-vet, so a violation fails here
// first, with the diagnostic text in the log.
func TestRepoInvariantsHold(t *testing.T) {
	fset := token.NewFileSet()
	parity := NewOpParity()
	root := "../.."
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "results" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		importPath := "atgpu"
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		for _, d := range CheckFile(fset, f, importPath) {
			t.Errorf("%s", d)
		}
		parity.AddFile(fset, f, importPath)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range parity.Diagnostics() {
		t.Errorf("%s", d)
	}
	// The sweep must actually have seen the universe and all three arenas —
	// a silent rename of a dispatch file would otherwise disarm the pass.
	if got := len(parity.universe); got < 40 {
		t.Errorf("opcode universe has %d entries; the kernel package sweep looks broken", got)
	}
	if got := len(parity.mentions); got != len(opArenas) {
		t.Errorf("opparity saw %d arenas, want %d — a dispatch file moved or was renamed", got, len(opArenas))
	}
}

func TestGoRecoverFlagsNakedGoroutine(t *testing.T) {
	src := `package service

func bad() {
	go func() {
		work()
	}()
}

func work() {}
`
	ds := checkSrc(t, "atgpu/internal/service", src)
	wantDiags(t, ds, [2]interface{}{"gorecover", 4})
}

func TestGoRecoverFlagsNamedFunction(t *testing.T) {
	src := `package sched

func bad() {
	go work()
}

func work() {}
`
	ds := checkSrc(t, "atgpu/internal/sched", src)
	wantDiags(t, ds, [2]interface{}{"gorecover", 4})
}

func TestGoRecoverAcceptsInlineRecover(t *testing.T) {
	src := `package service

func fine() {
	go func() {
		defer func() { _ = recover() }()
		work()
	}()
}

func work() {}
`
	if ds := checkSrc(t, "atgpu/internal/service", src); len(ds) != 0 {
		t.Fatalf("recover-guarded goroutine flagged: %v", ds)
	}
}

func TestGoRecoverAcceptsProtect(t *testing.T) {
	src := `package service

import "atgpu/internal/sched"

func fine() {
	go func() {
		_ = sched.Protect(func() error { work(); return nil })
	}()
}

func alsoFine() {
	go func() {
		_ = Protect(func() error { work(); return nil })
	}()
}

func work() {}
func Protect(fn func() error) error { return fn() }
`
	if ds := checkSrc(t, "atgpu/internal/service", src); len(ds) != 0 {
		t.Fatalf("Protect-guarded goroutine flagged: %v", ds)
	}
}

func TestGoRecoverScopedToGuardedPackages(t *testing.T) {
	src := `package figures

func allowedHere() {
	go work()
}

func work() {}
`
	if ds := checkSrc(t, "atgpu/cmd/atgpu-figures", src); len(ds) != 0 {
		t.Fatalf("unguarded package flagged: %v", ds)
	}
}

func TestGoRecoverFlagsNestedUnguardedLaunch(t *testing.T) {
	src := `package service

func bad() {
	go func() {
		defer func() { _ = recover() }()
		go func() {
			work()
		}()
	}()
}

func work() {}
`
	ds := checkSrc(t, "atgpu/internal/service", src)
	wantDiags(t, ds, [2]interface{}{"gorecover", 6})
}

// parityFromSrcs builds an OpParity from (filename, importPath, src)
// triples, so the cross-file pass can be exercised on synthetic arenas.
func parityFromSrcs(t *testing.T, files []struct{ name, importPath, src string }) *OpParity {
	t.Helper()
	fset := token.NewFileSet()
	p := NewOpParity()
	for _, file := range files {
		f, err := parser.ParseFile(fset, file.name, file.src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		p.AddFile(fset, f, file.importPath)
	}
	return p
}

const opParityKernelSrc = `package kernel

type Op uint8

const (
	OpNop Op = iota
	OpAdd
	OpAtomAdd
	opCount // sentinel; must not enter the universe
)
`

func TestOpParityFlagsMissingHandlers(t *testing.T) {
	p := parityFromSrcs(t, []struct{ name, importPath, src string }{
		{"instr.go", "atgpu/internal/kernel", opParityKernelSrc},
		{"interp.go", "atgpu/internal/simgpu", `package simgpu

import "atgpu/internal/kernel"

func exec(op kernel.Op) {
	switch op {
	case kernel.OpNop, kernel.OpAdd, kernel.OpAtomAdd:
	}
}
`},
		{"exec_decoded.go", "atgpu/internal/simgpu", `package simgpu

import "atgpu/internal/kernel"

func execDec(op kernel.Op) {
	switch op {
	case kernel.OpNop, kernel.OpAdd: // OpAtomAdd missing
	}
}
`},
		{"interp.go", "atgpu/internal/analyze", `package analyze

import "atgpu/internal/kernel"

func run(op kernel.Op) {
	switch op {
	case kernel.OpNop: // OpAdd and OpAtomAdd missing
	}
}
`},
	})
	ds := p.Diagnostics()
	if len(ds) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Pass != "opparity" {
			t.Errorf("pass = %q, want opparity", d.Pass)
		}
	}
	wantMsgs := []string{
		"OpAdd has no handler in the analyzer",
		"OpAtomAdd has no handler in the analyzer",
		"OpAtomAdd has no handler in the decoded",
	}
	for i, want := range wantMsgs {
		if !strings.Contains(ds[i].Msg, want) {
			t.Errorf("diagnostic %d = %q, want it to mention %q", i, ds[i].Msg, want)
		}
	}
	// Diagnostics anchor at the opcode's declaration in the kernel package.
	if ds[0].Pos.Filename != "instr.go" {
		t.Errorf("diagnostic anchored at %s, want instr.go", ds[0].Pos.Filename)
	}
}

func TestOpParityCleanWhenAllArenasCover(t *testing.T) {
	full := `package %s

import "atgpu/internal/kernel"

func dispatch(op kernel.Op) {
	switch op {
	case kernel.OpNop, kernel.OpAdd, kernel.OpAtomAdd:
	}
}
`
	p := parityFromSrcs(t, []struct{ name, importPath, src string }{
		{"instr.go", "atgpu/internal/kernel", opParityKernelSrc},
		{"interp.go", "atgpu/internal/simgpu", fmt.Sprintf(full, "simgpu")},
		{"exec_decoded.go", "atgpu/internal/simgpu", fmt.Sprintf(full, "simgpu")},
		{"interp.go", "atgpu/internal/analyze", fmt.Sprintf(full, "analyze")},
	})
	if ds := p.Diagnostics(); len(ds) != 0 {
		t.Fatalf("full coverage flagged: %v", ds)
	}
}

// TestOpParityIgnoresNonArenaFiles pins the scoping: opcode mentions in
// other files of the same packages do not satisfy the arena requirement,
// and arenas never seen produce no diagnostics (partial sweeps stay quiet).
func TestOpParityIgnoresNonArenaFiles(t *testing.T) {
	p := parityFromSrcs(t, []struct{ name, importPath, src string }{
		{"instr.go", "atgpu/internal/kernel", opParityKernelSrc},
		{"helper.go", "atgpu/internal/simgpu", `package simgpu

import "atgpu/internal/kernel"

func helper(op kernel.Op) bool { return op == kernel.OpAtomAdd }
`},
	})
	if ds := p.Diagnostics(); len(ds) != 0 {
		t.Fatalf("sweep without arena files produced diagnostics: %v", ds)
	}
	if len(p.mentions) != 0 {
		t.Fatalf("non-arena file registered an arena: %v", p.mentions)
	}
}
