package plot

import (
	"strings"
	"testing"

	"atgpu/internal/stats"
)

func mkSeries(t *testing.T, name string, x, y []float64) stats.Series {
	t.Helper()
	s, err := stats.NewSeries(name, x, y)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteCSV(t *testing.T) {
	x := []float64{1, 2, 3}
	a := mkSeries(t, "alpha", x, []float64{10, 20, 30})
	b := mkSeries(t, "beta", x, []float64{1.5, 2.5, 3.5})
	var sb strings.Builder
	if err := WriteCSV(&sb, "n", a, b); err != nil {
		t.Fatal(err)
	}
	want := "n,alpha,beta\n1,10,1.5\n2,20,2.5\n3,30,3.5\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	x := []float64{1}
	s := mkSeries(t, `with,comma "q"`, x, []float64{2})
	var sb strings.Builder
	if err := WriteCSV(&sb, "x", s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"with,comma ""q"""`) {
		t.Fatalf("CSV escaping wrong: %q", sb.String())
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, "x"); err == nil {
		t.Fatal("no series accepted")
	}
	a := mkSeries(t, "a", []float64{1, 2}, []float64{1, 2})
	b := mkSeries(t, "b", []float64{1}, []float64{1})
	if err := WriteCSV(&sb, "x", a, b); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestASCII(t *testing.T) {
	a := mkSeries(t, "up", []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	b := mkSeries(t, "down", []float64{0, 1, 2, 3}, []float64{3, 2, 1, 0})
	out := ASCII("test chart", 40, 10, a, b)
	for _, want := range []string{"test chart", "legend:", "up", "down", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + x labels + legend
	if len(lines) != 1+10+1+1+1 {
		t.Fatalf("ASCII output has %d lines:\n%s", len(lines), out)
	}
}

func TestASCIIEmpty(t *testing.T) {
	out := ASCII("empty", 20, 5)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	s := mkSeries(t, "flat", []float64{1, 2}, []float64{5, 5})
	out := ASCII("flat", 20, 5, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not drawn:\n%s", out)
	}
}

func TestASCIIClampsTinyDimensions(t *testing.T) {
	s := mkSeries(t, "s", []float64{0, 1}, []float64{0, 1})
	out := ASCII("tiny", 1, 1, s)
	if out == "" {
		t.Fatal("tiny chart empty")
	}
}

func TestFormatNum(t *testing.T) {
	if got := formatNum(3); got != "3" {
		t.Fatalf("formatNum(3) = %q", got)
	}
	if got := formatNum(0.25); got != "0.25" {
		t.Fatalf("formatNum(0.25) = %q", got)
	}
	if got := formatNum(1e20); got == "" {
		t.Fatal("huge number should format")
	}
}
