// Package plot renders experiment series as CSV (for external plotting)
// and as ASCII line charts (for terminal inspection), replacing the
// paper's gnuplot figures with textual equivalents carrying the same data.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"atgpu/internal/stats"
)

// WriteCSV emits a header row (x, then one column per series) followed by
// one row per x value. All series must share the same x vector.
func WriteCSV(w io.Writer, xLabel string, series ...stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	n := series[0].Len()
	for _, s := range series {
		if s.Len() != n {
			return fmt.Errorf("plot: series %q has %d points, want %d", s.Name, s.Len(), n)
		}
	}
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, csvEscape(xLabel))
	for _, s := range series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, formatNum(series[0].X[i]))
		for _, s := range series {
			row = append(row, formatNum(s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// markers cycle per series in ASCII charts.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// ASCII renders the series as a fixed-size character chart with a legend,
// y axis labels, and per-series markers. Series may have different y
// scales; all are drawn against the combined range.
func ASCII(title string, width, height int, series ...stats.Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(series) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - xMin) / (xMax - xMin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-yMin)/(yMax-yMin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}

	for r := 0; r < height; r++ {
		yVal := yMax - (yMax-yMin)*float64(r)/float64(height-1)
		fmt.Fprintf(&sb, "%12.4g |%s\n", yVal, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%12s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%12s  %-*.4g%*.4g\n", "", width/2, xMin, width-width/2, xMax)
	sb.WriteString("legend:")
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s", markers[si%len(markers)], s.Name)
	}
	sb.WriteByte('\n')
	return sb.String()
}
