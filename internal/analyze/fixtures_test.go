package analyze_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atgpu/internal/analyze"
	"atgpu/internal/pseudocode"
)

// fixtureMachine is the machine the seeded-bug fixtures are analysed
// against: width 8 (matching their #! lint: width directives).
func fixtureMachine() analyze.Machine {
	return analyze.Machine{
		Width:                8,
		SharedWords:          1024,
		GlobalWords:          4096,
		NumSMs:               2,
		MaxBlocksPerSM:       16,
		BroadcastSharedReads: true,
	}
}

// analyzeFixture compiles a testdata kernel per its #! lint: directives and
// analyses it.
func analyzeFixture(t *testing.T, name string) *analyze.Report {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	dir, err := pseudocode.Directives(string(src))
	if err != nil {
		t.Fatalf("%s: directives: %v", name, err)
	}
	m := fixtureMachine()
	blocks := 1
	params := make(map[string]int64)
	for k, v := range dir {
		switch k {
		case "blocks":
			blocks = int(v)
		case "width":
			if int(v) != m.Width {
				t.Fatalf("%s: fixture wants width %d, machine has %d", name, v, m.Width)
			}
		default:
			params[k] = v
		}
	}
	prog, err := pseudocode.CompileSource(string(src), m.Width, params)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	rep, err := analyze.Program(prog, analyze.Options{Machine: m, Blocks: blocks})
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	return rep
}

// requireFinding asserts exactly one error finding from the given analyzer,
// anchored at the given source line.
func requireFinding(t *testing.T, rep *analyze.Report, analyzer string, line int) analyze.Finding {
	t.Helper()
	var hits []analyze.Finding
	for _, f := range rep.Findings {
		if f.Analyzer == analyzer && f.Severity == analyze.SevError {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly one %s error, got %d: %v", analyzer, len(hits), rep.Findings)
	}
	if hits[0].Line != line {
		t.Fatalf("%s error at line %d, want line %d: %s", analyzer, hits[0].Line, line, hits[0])
	}
	return hits[0]
}

func TestRacyReduceFlagged(t *testing.T) {
	rep := analyzeFixture(t, "racy_reduce.pseudo")
	f := requireFinding(t, rep, analyze.AnalyzerRace, 16)
	if len(f.Lanes) != 2 {
		t.Errorf("race finding carries %d witness lanes, want 2: %s", len(f.Lanes), f)
	}
}

func TestDivergentBarrierFlagged(t *testing.T) {
	rep := analyzeFixture(t, "divergent_barrier.pseudo")
	requireFinding(t, rep, analyze.AnalyzerDivergence, 11)
}

func TestOOBStoreFlagged(t *testing.T) {
	rep := analyzeFixture(t, "oob_store.pseudo")
	f := requireFinding(t, rep, analyze.AnalyzerBounds, 7)
	// The last lane is the one stepping past the allocation.
	if len(f.Lanes) != 1 || f.Lanes[0] != 7 {
		t.Errorf("bounds finding witnesses lanes %v, want [7]: %s", f.Lanes, f)
	}
	if rep.Precise {
		t.Error("a trapping launch must not be reported precise")
	}
}

func TestCleanFixturesPass(t *testing.T) {
	for _, name := range []string{"clean_vecadd.pseudo", "clean_reduce.pseudo"} {
		rep := analyzeFixture(t, name)
		if len(rep.Findings) != 0 {
			t.Errorf("%s: want zero findings, got %d:", name, len(rep.Findings))
			for _, f := range rep.Findings {
				t.Errorf("  %s", f)
			}
		}
		if !rep.Precise {
			t.Errorf("%s: clean parameterised kernel should analyse precisely", name)
		}
	}
}

// TestFixtureDeterminism analyses every fixture twice and demands
// byte-identical reports — verdicts must not depend on map order or any
// other incidental state.
func TestFixtureDeterminism(t *testing.T) {
	names, err := filepath.Glob(filepath.Join("testdata", "*.pseudo"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 5 {
		t.Fatalf("expected at least 5 fixtures, found %d", len(names))
	}
	for _, path := range names {
		name := filepath.Base(path)
		a := analyzeFixture(t, name)
		b := analyzeFixture(t, name)
		aj, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		bj, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aj, bj) {
			t.Errorf("%s: two analyses differ:\n%s\n---\n%s", name, aj, bj)
		}
	}
}

// requireWarning asserts exactly one warning-severity finding from the given
// analyzer, anchored at the given source line.
func requireWarning(t *testing.T, rep *analyze.Report, analyzer string, line int) analyze.Finding {
	t.Helper()
	var hits []analyze.Finding
	for _, f := range rep.Findings {
		if f.Analyzer == analyzer && f.Severity == analyze.SevWarning {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly one %s warning, got %d: %v", analyzer, len(hits), rep.Findings)
	}
	if hits[0].Line != line {
		t.Fatalf("%s warning at line %d, want line %d: %s", analyzer, hits[0].Line, line, hits[0])
	}
	return hits[0]
}

// TestContendedHistogramFlagged pins the atomic classification: the
// data-dependent shared atomadd draws an AnalyzerContention WARNING at its
// exact line, carrying the predicted worst-case factor (all 8 lanes of the
// fixture machine serialising), and no error-severity finding anywhere —
// contention is a performance verdict, not a correctness one.
func TestContendedHistogramFlagged(t *testing.T) {
	rep := analyzeFixture(t, "contended_histogram.pseudo")
	f := requireWarning(t, rep, analyze.AnalyzerContention, 14)
	if !strings.Contains(f.Message, "predicted contention factor 8.0x") {
		t.Errorf("contention warning lacks the predicted factor: %s", f.Message)
	}
	for _, f := range rep.Findings {
		if f.Severity == analyze.SevError {
			t.Errorf("contended histogram drew an error finding: %s", f)
		}
	}
}

// TestPrivatizedHistogramClean is the twin: identical structure, but every
// atomadd targets the lane's own cell (lane-affine addressing the analyzer
// can prove conflict-free), so the report must carry no findings at all.
func TestPrivatizedHistogramClean(t *testing.T) {
	rep := analyzeFixture(t, "privatized_histogram.pseudo")
	if len(rep.Findings) != 0 {
		t.Errorf("privatized histogram should lint clean, got %d findings:", len(rep.Findings))
		for _, f := range rep.Findings {
			t.Errorf("  %s", f)
		}
	}
}

// TestMixedAtomicStoreStillRace guards the boundary of the contention
// classification: a plain store and an atomic update of the same cell with
// no barrier between them is a genuine race and must stay an
// AnalyzerRace ERROR, exactly as if both accesses were plain.
func TestMixedAtomicStoreStillRace(t *testing.T) {
	rep := analyzeFixture(t, "mixed_atomic_store.pseudo")
	f := requireFinding(t, rep, analyze.AnalyzerRace, 12)
	if !strings.Contains(f.Message, "atomically updates") {
		t.Errorf("race finding does not name the atomic side: %s", f.Message)
	}
}
