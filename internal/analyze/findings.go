package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"atgpu/internal/kernel"
)

// Severity ranks findings. Error-level findings describe programs the
// simulator would trap on or that deadlock real hardware; warnings describe
// performance hazards and possible (unproven) bugs; info notes analysis
// limitations.
type Severity int

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String renders the conventional lowercase name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON encodes the severity by name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("analyze: unknown severity %q", name)
	}
	return nil
}

// Analyzer names, used as Finding.Analyzer.
const (
	AnalyzerRace       = "race"       // shared-memory races between lanes
	AnalyzerDivergence = "divergence" // barriers or uniform branches under divergent control
	AnalyzerBounds     = "bounds"     // out-of-range addresses and traps
	AnalyzerMemory     = "memory"     // bank conflicts and uncoalesced access
	AnalyzerCost       = "cost"       // Expression (1)/(2) feasibility
	AnalyzerExec       = "exec"       // abstract-interpretation limitations
	// AnalyzerContention flags atomic serialisation hotspots: conflicting
	// atomic lanes are a performance hazard (warning with the predicted
	// contention factor), not a correctness race.
	AnalyzerContention = "contention"
)

// Finding is one diagnostic: which analyzer produced it, where in the
// kernel, which warp-relative threads witness it, and how bad it is.
type Finding struct {
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	// Line is the pseudocode source line, 0 when the program carries no
	// line table (hand-built IR kernels).
	Line int `json:"line,omitempty"`
	// PC is the IR instruction index the finding anchors to.
	PC int `json:"pc"`
	// Block is the witness thread block.
	Block int `json:"block"`
	// Lanes are witness warp-relative thread ids (e.g. the two racing
	// threads), ascending.
	Lanes   []int  `json:"lanes,omitempty"`
	Message string `json:"message"`
}

// String renders one finding as "severity: kernel.pseudo:12: message
// (analyzer, pc 7, block 0, lanes 1,3)".
func (f Finding) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: ", f.Severity)
	if f.Line > 0 {
		fmt.Fprintf(&sb, "line %d: ", f.Line)
	}
	sb.WriteString(f.Message)
	fmt.Fprintf(&sb, " [%s pc=%d block=%d", f.Analyzer, f.PC, f.Block)
	if len(f.Lanes) > 0 {
		sb.WriteString(" lanes=")
		for i, l := range f.Lanes {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", l)
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// StaticStats is the analyzer's prediction of the simulator's
// scheduling-independent counters for one launch. Field meanings mirror
// simgpu.KernelStats; when Report.Precise is true they are exact, otherwise
// they are conservative estimates.
type StaticStats struct {
	InstructionsIssued  int64 `json:"instructions_issued"`
	LaneOps             int64 `json:"lane_ops"`
	GlobalAccesses      int64 `json:"global_accesses"`
	GlobalTransactions  int64 `json:"global_transactions"`
	UncoalescedAccesses int64 `json:"uncoalesced_accesses"`
	SharedAccesses      int64 `json:"shared_accesses"`
	BankConflicts       int64 `json:"bank_conflicts"`
	MaxConflictDegree   int   `json:"max_conflict_degree"`
	// Atomic counters mirror the simulator's: accesses, Σ(degree−1)
	// serialisations, the worst per-access degree, and the largest
	// per-warp serialisation sum. Omitted from JSON for atomics-free
	// kernels so existing reports are byte-identical.
	AtomicAccesses       int64 `json:"atomic_accesses,omitempty"`
	AtomicSerialisations int64 `json:"atomic_serialisations,omitempty"`
	MaxAtomicDegree      int   `json:"max_atomic_degree,omitempty"`
	MaxWarpAtomicSerial  int64 `json:"max_warp_atomic_serial,omitempty"`
	Barriers             int64 `json:"barriers"`
	DivergentBranches    int64 `json:"divergent_branches"`
	BlocksExecuted       int64 `json:"blocks_executed"`
	MaxWarpInstrs        int64 `json:"max_warp_instrs"`
	OccupancyLimit       int   `json:"occupancy_limit"`
}

// Merge folds other into s the way simgpu.KernelStats.Merge does, for
// multi-launch rounds.
func (s *StaticStats) Merge(other StaticStats) {
	s.InstructionsIssued += other.InstructionsIssued
	s.LaneOps += other.LaneOps
	s.GlobalAccesses += other.GlobalAccesses
	s.GlobalTransactions += other.GlobalTransactions
	s.UncoalescedAccesses += other.UncoalescedAccesses
	s.SharedAccesses += other.SharedAccesses
	s.BankConflicts += other.BankConflicts
	if other.MaxConflictDegree > s.MaxConflictDegree {
		s.MaxConflictDegree = other.MaxConflictDegree
	}
	s.AtomicAccesses += other.AtomicAccesses
	s.AtomicSerialisations += other.AtomicSerialisations
	if other.MaxAtomicDegree > s.MaxAtomicDegree {
		s.MaxAtomicDegree = other.MaxAtomicDegree
	}
	if other.MaxWarpAtomicSerial > s.MaxWarpAtomicSerial {
		s.MaxWarpAtomicSerial = other.MaxWarpAtomicSerial
	}
	s.Barriers += other.Barriers
	s.DivergentBranches += other.DivergentBranches
	s.BlocksExecuted += other.BlocksExecuted
	if other.MaxWarpInstrs > s.MaxWarpInstrs {
		s.MaxWarpInstrs = other.MaxWarpInstrs
	}
	if other.OccupancyLimit > s.OccupancyLimit {
		s.OccupancyLimit = other.OccupancyLimit
	}
}

// Site is the per-access-site memory behaviour prediction: how a single
// load/store instruction performs across the whole launch.
type Site struct {
	PC   int       `json:"pc"`
	Line int       `json:"line,omitempty"`
	Op   kernel.Op `json:"-"`
	// OpName names the opcode in JSON output.
	OpName string `json:"op"`
	// Accesses counts warp-wide executions of this instruction that
	// touched memory (fully-masked executions are skipped, as on the
	// device).
	Accesses int64 `json:"accesses"`
	// Transactions is Σl for global sites (coalescing: l per access).
	Transactions int64 `json:"transactions,omitempty"`
	// Uncoalesced counts global accesses here with l > 1.
	Uncoalesced int64 `json:"uncoalesced,omitempty"`
	// Conflicted counts shared accesses here with bank-conflict degree > 1.
	Conflicted int64 `json:"conflicted,omitempty"`
	// MaxDegree is the worst serialisation seen at this site: the maximum
	// conflict degree for shared sites, the maximum transaction count for
	// global sites.
	MaxDegree int `json:"max_degree,omitempty"`
}

// Report is the full outcome of analysing one kernel launch.
type Report struct {
	Kernel string `json:"kernel"`
	Width  int    `json:"width"`
	Blocks int    `json:"blocks"`
	// Precise reports that every branch decision and memory address was
	// statically known, making Stats/Sites/Cost exact predictions of the
	// simulator rather than estimates.
	Precise  bool          `json:"precise"`
	Findings []Finding     `json:"findings"`
	Stats    StaticStats   `json:"stats"`
	Sites    []Site        `json:"sites,omitempty"`
	Cost     *CostEstimate `json:"cost,omitempty"`
}

// MaxSeverity returns the worst severity present, or -1 with no findings.
func (r *Report) MaxSeverity() Severity {
	max := Severity(-1)
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// ErrorCount counts error-severity findings.
func (r *Report) ErrorCount() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == SevError {
			n++
		}
	}
	return n
}

// sortFindings orders findings worst-first, then by source position.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		return fs[i].PC < fs[j].PC
	})
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Text renders a human-readable multi-line report.
func (r *Report) Text() string {
	var sb strings.Builder
	mode := "precise"
	if !r.Precise {
		mode = "approximate"
	}
	fmt.Fprintf(&sb, "kernel %s: width=%d blocks=%d (%s analysis)\n",
		r.Kernel, r.Width, r.Blocks, mode)
	if len(r.Findings) == 0 {
		sb.WriteString("no findings\n")
	}
	for _, f := range r.Findings {
		sb.WriteString("  ")
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	s := r.Stats
	fmt.Fprintf(&sb, "static: instrs=%d laneOps=%d maxWarpInstrs=%d blocks=%d occLimit=%d\n",
		s.InstructionsIssued, s.LaneOps, s.MaxWarpInstrs, s.BlocksExecuted, s.OccupancyLimit)
	fmt.Fprintf(&sb, "static global: accesses=%d transactions=%d uncoalesced=%d\n",
		s.GlobalAccesses, s.GlobalTransactions, s.UncoalescedAccesses)
	fmt.Fprintf(&sb, "static shared: accesses=%d conflicts=%d maxDegree=%d\n",
		s.SharedAccesses, s.BankConflicts, s.MaxConflictDegree)
	if s.AtomicAccesses > 0 {
		fmt.Fprintf(&sb, "static atomic: accesses=%d serialisations=%d maxDegree=%d maxWarpSerial=%d\n",
			s.AtomicAccesses, s.AtomicSerialisations, s.MaxAtomicDegree, s.MaxWarpAtomicSerial)
	}
	fmt.Fprintf(&sb, "static control: barriers=%d divergent=%d\n",
		s.Barriers, s.DivergentBranches)
	if r.Cost != nil {
		fmt.Fprintf(&sb, "static cost: t=%d q=%d occFactor=%g perfect=%.6gs gpu=%.6gs\n",
			r.Cost.T, r.Cost.Q, r.Cost.OccupancyFactor,
			r.Cost.PerfectSeconds, r.Cost.GPUSeconds)
		if r.Cost.ContentionFactor > 0 {
			fmt.Fprintf(&sb, "static contention: factor=%.4g contended=%.6gs\n",
				r.Cost.ContentionFactor, r.Cost.ContendedSeconds)
		}
	}
	return sb.String()
}
