package analyze

import (
	"atgpu/internal/kernel"
)

// blockRun interprets one thread block abstractly, in lockstep over the
// warp's lanes, mirroring the simulator's issue-by-issue semantics. Lane
// values are intervals (value.go); the SIMT mask is split into a may-active
// and a must-active vector so unknown branch conditions stay sound: a lane
// is counted and checked if it may run, and updates are weakened to joins
// unless it must run. On kernels whose control flow and addresses never
// depend on loaded data the two masks coincide, every value at a decision
// point is known, and the abstract execution reproduces the device's
// counters exactly.
type blockRun struct {
	a       *analysis
	prog    *kernel.Program
	width   int
	blockID int

	regs      []V
	may, must []bool
	mayStack  [][]bool
	mustStack [][]bool
	depth     int

	shared []V
	// Race log since the last barrier: which lanes wrote/read each cell,
	// and the pc of the last write (for witness reporting). amask tracks
	// atomic updates separately: atomic-vs-atomic on one cell serialises
	// (contention, not a race) while atomic-vs-plain in either direction
	// is a race.
	wmask, rmask []uint64
	amask        []uint64
	wpc          []int32

	// atomSer accumulates Σ(degree−1) over this block's atomic accesses,
	// mirroring the simulator's per-warp serialisation counter.
	atomSer int64

	// addrs is the gathered per-lane address vector of a memory access:
	// the concrete address, or laneMasked / laneUnknown.
	addrs []int64

	pc       int
	instrs   int64
	fuel     int64
	brVisits map[int]int
}

const (
	laneMasked  = int64(-1)
	laneUnknown = int64(-2)
)

func newBlockRun(a *analysis, blockID int) *blockRun {
	width := a.opt.Machine.Width
	b := &blockRun{
		a:        a,
		prog:     a.prog,
		width:    width,
		blockID:  blockID,
		regs:     make([]V, a.prog.NumRegs*width),
		may:      make([]bool, width),
		must:     make([]bool, width),
		shared:   make([]V, a.prog.SharedWords),
		wmask:    make([]uint64, a.prog.SharedWords),
		rmask:    make([]uint64, a.prog.SharedWords),
		amask:    make([]uint64, a.prog.SharedWords),
		wpc:      make([]int32, a.prog.SharedWords),
		addrs:    make([]int64, width),
		fuel:     a.opt.fuel(),
		brVisits: make(map[int]int),
	}
	for l := 0; l < width; l++ {
		b.may[l] = true
		b.must[l] = true
	}
	return b
}

// reset prepares the run for another block, reusing storage.
func (b *blockRun) reset(blockID int) {
	b.blockID = blockID
	b.pc = 0
	b.instrs = 0
	b.depth = 0
	b.atomSer = 0
	b.fuel = b.a.opt.fuel()
	for i := range b.regs {
		b.regs[i] = known(0)
	}
	for l := 0; l < b.width; l++ {
		b.may[l] = true
		b.must[l] = true
	}
	for i := range b.shared {
		b.shared[i] = known(0)
		b.wmask[i] = 0
		b.rmask[i] = 0
		b.amask[i] = 0
	}
	if len(b.brVisits) > 0 {
		b.brVisits = make(map[int]int)
	}
}

func (b *blockRun) base(r kernel.Reg) int { return int(r) * b.width }

func (b *blockRun) mayCount() int {
	n := 0
	for _, m := range b.may {
		if m {
			n++
		}
	}
	return n
}

// setLane writes v to a lane's register slot, weakening to a join when the
// lane only may be active (the old value survives if it is not).
func (b *blockRun) setLane(idx, lane int, v V) {
	if b.must[lane] {
		b.regs[idx] = v
	} else {
		b.regs[idx] = join(b.regs[idx], v)
	}
}

func (b *blockRun) pushMask() {
	if b.depth == len(b.mayStack) {
		b.mayStack = append(b.mayStack, make([]bool, b.width))
		b.mustStack = append(b.mustStack, make([]bool, b.width))
	}
	copy(b.mayStack[b.depth], b.may)
	copy(b.mustStack[b.depth], b.must)
	b.depth++
}

func (b *blockRun) popMask() bool {
	if b.depth == 0 {
		return false
	}
	b.depth--
	copy(b.may, b.mayStack[b.depth])
	copy(b.must, b.mustStack[b.depth])
	return true
}

// run interprets the block to completion. It returns false when the whole
// launch analysis must stop (the simulator would trap and fail the launch,
// or the analysis budget ran out).
func (b *blockRun) run() bool {
	a := b.a
	for {
		if b.fuel <= 0 {
			a.reportf(Finding{Analyzer: AnalyzerExec, Severity: SevInfo, PC: b.pc, Block: b.blockID},
				"analysis budget exhausted after %d instructions; results are partial", b.instrs)
			a.precise = false
			return false
		}
		b.fuel--
		if b.pc < 0 || b.pc >= len(b.prog.Instrs) {
			a.reportf(Finding{Analyzer: AnalyzerExec, Severity: SevError, PC: b.pc, Block: b.blockID},
				"program counter out of range")
			return false
		}
		in := b.prog.Instrs[b.pc]
		b.instrs++
		a.stats.InstructionsIssued++
		a.stats.LaneOps += int64(b.mayCount())

		switch in.Op {
		case kernel.OpNop:

		case kernel.OpConst:
			d := b.base(in.Rd)
			for l := 0; l < b.width; l++ {
				if b.may[l] {
					b.setLane(d+l, l, known(in.Imm))
				}
			}

		case kernel.OpMov:
			d, ra := b.base(in.Rd), b.base(in.Ra)
			for l := 0; l < b.width; l++ {
				if b.may[l] {
					b.setLane(d+l, l, b.regs[ra+l])
				}
			}

		case kernel.OpAdd, kernel.OpSub, kernel.OpMul, kernel.OpMin, kernel.OpMax,
			kernel.OpAnd, kernel.OpOr, kernel.OpXor, kernel.OpShl, kernel.OpShr,
			kernel.OpSlt, kernel.OpSle, kernel.OpSeq, kernel.OpSne:
			d, ra, rb := b.base(in.Rd), b.base(in.Ra), b.base(in.Rb)
			for l := 0; l < b.width; l++ {
				if b.may[l] {
					b.setLane(d+l, l, vALU(in.Op, b.regs[ra+l], b.regs[rb+l]))
				}
			}

		case kernel.OpDiv, kernel.OpMod:
			if !b.execDivMod(in) {
				return false
			}

		case kernel.OpAddI, kernel.OpMulI, kernel.OpShlI, kernel.OpShrI, kernel.OpAndI,
			kernel.OpSltI, kernel.OpSleI, kernel.OpSeqI, kernel.OpSneI:
			d, ra := b.base(in.Rd), b.base(in.Ra)
			for l := 0; l < b.width; l++ {
				if b.may[l] {
					b.setLane(d+l, l, vALUImm(in.Op, b.regs[ra+l], in.Imm))
				}
			}

		case kernel.OpDivI, kernel.OpModI:
			// The device traps a zero immediate divisor only on an active
			// lane — masked lanes are exempt, exactly like the
			// register-divisor form handled by execDivMod.
			d, ra := b.base(in.Rd), b.base(in.Ra)
			for l := 0; l < b.width; l++ {
				if !b.may[l] {
					continue
				}
				if in.Imm == 0 {
					if b.must[l] {
						a.reportf(Finding{Analyzer: AnalyzerBounds, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: []int{l}},
							"division by constant zero in lane %d traps the kernel", l)
						return false
					}
					a.precise = false
					a.reportf(Finding{Analyzer: AnalyzerBounds, Severity: SevWarning, PC: b.pc, Block: b.blockID, Lanes: []int{l}},
						"possible division by constant zero (lane %d may be active)", l)
					b.setLane(d+l, l, top)
					continue
				}
				if in.Op == kernel.OpDivI {
					b.setLane(d+l, l, vDiv(b.regs[ra+l], known(in.Imm)))
				} else {
					b.setLane(d+l, l, vMod(b.regs[ra+l], known(in.Imm)))
				}
			}

		case kernel.OpLaneID:
			d := b.base(in.Rd)
			for l := 0; l < b.width; l++ {
				if b.may[l] {
					b.setLane(d+l, l, known(int64(l)))
				}
			}

		case kernel.OpBlockID:
			b.broadcast(in.Rd, known(int64(b.blockID)))

		case kernel.OpNumBlocks:
			b.broadcast(in.Rd, known(int64(b.a.opt.Blocks)))

		case kernel.OpBlockDim:
			b.broadcast(in.Rd, known(int64(b.width)))

		case kernel.OpLdGlobal, kernel.OpStGlobal:
			if !b.execGlobal(in) {
				return false
			}
			continue // pc advanced inside

		case kernel.OpLdShared, kernel.OpStShared:
			if !b.execShared(in) {
				return false
			}
			continue // pc advanced inside

		case kernel.OpAtomAdd, kernel.OpAtomMax, kernel.OpAtomExch, kernel.OpAtomCAS:
			if !b.execAtom(in) {
				return false
			}
			continue // pc advanced inside

		case kernel.OpBarrier:
			a.stats.Barriers++
			b.checkBarrier()
			// A barrier orders every lane's shared accesses: the race log
			// restarts empty.
			for i := range b.wmask {
				b.wmask[i] = 0
				b.rmask[i] = 0
				b.amask[i] = 0
			}

		case kernel.OpJump:
			b.pc = int(in.Target)
			continue

		case kernel.OpBrNZ:
			cont, ok := b.execBrNZ(in)
			if !ok {
				return false
			}
			if cont {
				continue
			}

		case kernel.OpIfBegin:
			if b.execIfBegin(in) {
				continue
			}

		case kernel.OpIfEnd:
			if !b.popMask() {
				a.reportf(Finding{Analyzer: AnalyzerExec, Severity: SevError, PC: b.pc, Block: b.blockID},
					"if.end without saved mask")
				return false
			}

		case kernel.OpHalt:
			a.stats.BlocksExecuted++
			if b.instrs > a.stats.MaxWarpInstrs {
				a.stats.MaxWarpInstrs = b.instrs
			}
			if b.atomSer > a.stats.MaxWarpAtomicSerial {
				a.stats.MaxWarpAtomicSerial = b.atomSer
			}
			return true

		default:
			a.reportf(Finding{Analyzer: AnalyzerExec, Severity: SevError, PC: b.pc, Block: b.blockID},
				"undefined opcode %v", in.Op)
			return false
		}
		b.pc++
	}
}

func (b *blockRun) broadcast(rd kernel.Reg, v V) {
	d := b.base(rd)
	for l := 0; l < b.width; l++ {
		if b.may[l] {
			b.setLane(d+l, l, v)
		}
	}
}

// execDivMod handles three-register division, reporting definite and
// possible zero divisors.
func (b *blockRun) execDivMod(in kernel.Instr) bool {
	a := b.a
	d, ra, rb := b.base(in.Rd), b.base(in.Ra), b.base(in.Rb)
	for l := 0; l < b.width; l++ {
		if !b.may[l] {
			continue
		}
		dv := b.regs[rb+l]
		if dv.contains(0) {
			if dv.IsKnown() && b.must[l] {
				a.reportf(Finding{Analyzer: AnalyzerBounds, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: []int{l}},
					"division by zero in lane %d traps the kernel", l)
				return false
			}
			a.precise = false
			a.reportf(Finding{Analyzer: AnalyzerBounds, Severity: SevWarning, PC: b.pc, Block: b.blockID, Lanes: []int{l}},
				"possible division by zero (lane %d divisor in [%d, %d])", l, dv.Lo, dv.Hi)
			b.setLane(d+l, l, top)
			continue
		}
		if in.Op == kernel.OpDiv {
			b.setLane(d+l, l, vDiv(b.regs[ra+l], dv))
		} else {
			b.setLane(d+l, l, vMod(b.regs[ra+l], dv))
		}
	}
	return true
}

// checkBarrier is the barrier-divergence analyzer: a barrier that executes
// while any lane of the block is masked off deadlocks lockstep hardware
// (the masked lanes can never arrive). The simulator's one-warp blocks
// trivially satisfy barriers, so this is a purely static verdict.
func (b *blockRun) checkBarrier() {
	active := b.mayCount()
	if active != b.width {
		inactive, act := -1, -1
		for l := 0; l < b.width; l++ {
			if b.may[l] && act < 0 {
				act = l
			}
			if !b.may[l] && inactive < 0 {
				inactive = l
			}
		}
		b.a.reportf(Finding{Analyzer: AnalyzerDivergence, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: witness(act, inactive)},
			"barrier under divergent control: %d of %d lanes active (lane %d can never arrive — deadlock on lockstep hardware)",
			active, b.width, inactive)
		return
	}
	mustAll := true
	for l := 0; l < b.width; l++ {
		if !b.must[l] {
			mustAll = false
			break
		}
	}
	if !mustAll {
		b.a.reportf(Finding{Analyzer: AnalyzerDivergence, Severity: SevWarning, PC: b.pc, Block: b.blockID},
			"barrier may execute under divergent control (branch condition not statically known)")
	}
}

func witness(lanes ...int) []int {
	out := make([]int, 0, len(lanes))
	for _, l := range lanes {
		if l >= 0 {
			out = append(out, l)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// execIfBegin mirrors the device's two-pass divergence handling. Returns
// true when pc was redirected (whole-warp skip).
func (b *blockRun) execIfBegin(in kernel.Instr) bool {
	a := b.a
	ra := b.base(in.Ra)
	anyMay := false
	anyKnownTrue, anyKnownFalse, anyUnknown := false, false, false
	for l := 0; l < b.width; l++ {
		if !b.may[l] {
			continue
		}
		anyMay = true
		switch b.regs[ra+l].truth() {
		case truthTrue:
			anyKnownTrue = true
		case truthFalse:
			anyKnownFalse = true
		default:
			anyUnknown = true
		}
	}
	if !anyMay || (!anyKnownTrue && !anyUnknown) {
		// No lane takes the body: jump past it without pushing a mask.
		b.pc = int(in.Target)
		return true
	}
	if anyUnknown {
		a.precise = false
	}
	if anyKnownTrue && anyKnownFalse {
		a.stats.DivergentBranches++
	}
	b.pushMask()
	for l := 0; l < b.width; l++ {
		if !b.may[l] {
			continue
		}
		switch b.regs[ra+l].truth() {
		case truthFalse:
			b.may[l] = false
			b.must[l] = false
		case truthUnknown:
			b.must[l] = false
		}
	}
	return false
}

// execBrNZ mirrors the device's uniform branch. Returns (pcRedirected,
// keepGoing): the divergent and no-active-lane cases trap the launch.
func (b *blockRun) execBrNZ(in kernel.Instr) (bool, bool) {
	a := b.a
	ra := b.base(in.Ra)
	anyLane := false
	anyKnownTrue, anyKnownFalse, anyUnknown := false, false, false
	trueLane, falseLane := -1, -1
	for l := 0; l < b.width; l++ {
		if !b.may[l] {
			continue
		}
		anyLane = true
		switch b.regs[ra+l].truth() {
		case truthTrue:
			anyKnownTrue = true
			if trueLane < 0 {
				trueLane = l
			}
		case truthFalse:
			anyKnownFalse = true
			if falseLane < 0 {
				falseLane = l
			}
		default:
			anyUnknown = true
		}
	}
	if !anyLane {
		a.reportf(Finding{Analyzer: AnalyzerExec, Severity: SevError, PC: b.pc, Block: b.blockID},
			"uniform branch with no active lanes traps the kernel")
		return false, false
	}
	if anyKnownTrue && anyKnownFalse {
		a.reportf(Finding{Analyzer: AnalyzerDivergence, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: witness(trueLane, falseLane)},
			"divergent uniform branch: loop condition differs across lanes (%d vs %d) — the device traps this launch",
			trueLane, falseLane)
		return false, false
	}
	if anyUnknown {
		// Data-dependent trip count: keep looping up to the budget, then
		// force the exit edge so the analysis terminates.
		a.precise = false
		b.brVisits[b.pc]++
		if b.brVisits[b.pc] > a.opt.loopBudget() {
			b.pc = int(in.Target)
			return true, true
		}
		return false, true
	}
	if anyKnownTrue {
		b.pc = int(in.Target)
		return true, true
	}
	return false, true
}
