package analyze

import (
	"math"

	"atgpu/internal/core"
)

// CostParams re-exports the calibrated parameter set Options.Cost takes, so
// analyzer clients need not import core directly.
type CostParams = core.CostParams

// CostEstimate prices one launch in the paper's Expression (1)/(2) terms
// from the statically predicted counters: t is the maximum per-warp
// operation count (the model's tᵢ), q the total global transactions (qᵢ).
//
// PerfectSeconds is the round's kernel term on the perfect GPU,
// (t + λ·q)/γ, and GPUSeconds the occupancy-adjusted Expression (2) term,
// (⌈k/(k'ℓ)⌉·t + λ·q)/γ. Transfer terms TI/TO and the synchronisation cost
// σ belong to the round plan, not the kernel, and are priced by the
// facade's Prediction; the estimate carries the parameters so callers can
// assemble full rounds.
type CostEstimate struct {
	T               int64   `json:"t"`
	Q               int64   `json:"q"`
	Blocks          int     `json:"blocks"`
	Occupancy       int     `json:"occupancy"`
	OccupancyFactor float64 `json:"occupancy_factor"`
	PerfectSeconds  float64 `json:"perfect_seconds"`
	GPUSeconds      float64 `json:"gpu_seconds"`

	// Contention term, per Dong & Pai's utilization model: atomic lanes
	// that conflict replay serially, so an access of degree d costs d
	// issues where a conflict-free one costs 1. ContentionFactor is the
	// launch-wide mean 1 + serialisations/accesses (the inverse of atomic
	// utilization); ContendedSeconds extends GPUSeconds with the worst
	// warp's predicted serialisation cycles. All fields stay zero (and
	// absent from JSON) for atomics-free kernels.
	AtomicAccesses       int64   `json:"atomic_accesses,omitempty"`
	AtomicSerialisations int64   `json:"atomic_serialisations,omitempty"`
	ContentionFactor     float64 `json:"contention_factor,omitempty"`
	ContendedSeconds     float64 `json:"contended_seconds,omitempty"`
}

// costEstimate evaluates the kernel terms of Expressions (1) and (2) from
// static counters.
func costEstimate(cp core.CostParams, m Machine, sharedWords, blocks int, stats StaticStats) *CostEstimate {
	est := &CostEstimate{
		T:         stats.MaxWarpInstrs,
		Q:         stats.GlobalTransactions,
		Blocks:    blocks,
		Occupancy: m.Occupancy(sharedWords),
	}
	if blocks <= 0 || est.Occupancy <= 0 || cp.Validate() != nil {
		return est
	}
	est.OccupancyFactor = math.Ceil(float64(blocks) / float64(cp.KPrime*est.Occupancy))
	t, q := float64(est.T), float64(est.Q)
	est.PerfectSeconds = (t + cp.Lambda*q) / cp.Gamma
	est.GPUSeconds = (est.OccupancyFactor*t + cp.Lambda*q) / cp.Gamma
	if stats.AtomicAccesses > 0 {
		est.AtomicAccesses = stats.AtomicAccesses
		est.AtomicSerialisations = stats.AtomicSerialisations
		est.ContentionFactor = 1 + float64(stats.AtomicSerialisations)/float64(stats.AtomicAccesses)
		lat := m.SharedLatencyCycles
		if lat <= 0 {
			lat = 1
		}
		serCycles := float64(stats.MaxWarpAtomicSerial) * float64(lat)
		est.ContendedSeconds = est.GPUSeconds + est.OccupancyFactor*serCycles/cp.Gamma
	}
	return est
}
