package analyze

import (
	"math"

	"atgpu/internal/core"
)

// CostParams re-exports the calibrated parameter set Options.Cost takes, so
// analyzer clients need not import core directly.
type CostParams = core.CostParams

// CostEstimate prices one launch in the paper's Expression (1)/(2) terms
// from the statically predicted counters: t is the maximum per-warp
// operation count (the model's tᵢ), q the total global transactions (qᵢ).
//
// PerfectSeconds is the round's kernel term on the perfect GPU,
// (t + λ·q)/γ, and GPUSeconds the occupancy-adjusted Expression (2) term,
// (⌈k/(k'ℓ)⌉·t + λ·q)/γ. Transfer terms TI/TO and the synchronisation cost
// σ belong to the round plan, not the kernel, and are priced by the
// facade's Prediction; the estimate carries the parameters so callers can
// assemble full rounds.
type CostEstimate struct {
	T               int64   `json:"t"`
	Q               int64   `json:"q"`
	Blocks          int     `json:"blocks"`
	Occupancy       int     `json:"occupancy"`
	OccupancyFactor float64 `json:"occupancy_factor"`
	PerfectSeconds  float64 `json:"perfect_seconds"`
	GPUSeconds      float64 `json:"gpu_seconds"`
}

// costEstimate evaluates the kernel terms of Expressions (1) and (2) from
// static counters.
func costEstimate(cp core.CostParams, m Machine, sharedWords, blocks int, stats StaticStats) *CostEstimate {
	est := &CostEstimate{
		T:         stats.MaxWarpInstrs,
		Q:         stats.GlobalTransactions,
		Blocks:    blocks,
		Occupancy: m.Occupancy(sharedWords),
	}
	if blocks <= 0 || est.Occupancy <= 0 || cp.Validate() != nil {
		return est
	}
	est.OccupancyFactor = math.Ceil(float64(blocks) / float64(cp.KPrime*est.Occupancy))
	t, q := float64(est.T), float64(est.Q)
	est.PerfectSeconds = (t + cp.Lambda*q) / cp.Gamma
	est.GPUSeconds = (est.OccupancyFactor*t + cp.Lambda*q) / cp.Gamma
	return est
}
