package analyze

import (
	"atgpu/internal/kernel"
)

// This file is the static side of the simulator's atomic serialisation model
// (simgpu/atomics.go): the same per-bank / per-address conflict-degree count
// over the abstract address vector, the same counters and site statistics,
// plus the contention analyzer — conflicting atomic lanes are reported as an
// AnalyzerContention warning with the predicted serialisation factor, not as
// a race. When every address is statically known the predicted degrees equal
// the device's exactly; unknown-address lanes are added to the worst bank or
// address pessimistically (capped at the active lane count), so approximate
// analyses bound the observed serialisation from above.

// execAtom dispatches one warp-wide atomic access on the instruction's
// address space. Returns false on abort; advances pc itself.
func (b *blockRun) execAtom(in kernel.Instr) bool {
	if in.Imm == kernel.AtomGlobal {
		return b.execAtomGlobal(in)
	}
	return b.execAtomShared(in)
}

// atomV is the abstract read-modify-write: the new cell value from the old
// value, the lane operand, and (for CAS) the compare value.
func atomV(op kernel.Op, old, v, cmp V) V {
	switch op {
	case kernel.OpAtomAdd:
		return vAdd(old, v)
	case kernel.OpAtomMax:
		return vMax(old, v)
	case kernel.OpAtomExch:
		return v
	default: // OpAtomCAS
		if old.IsKnown() && cmp.IsKnown() {
			if old.Lo == cmp.Lo {
				return v
			}
			return old
		}
		if old.Hi < cmp.Lo || old.Lo > cmp.Hi {
			// The compare can never match: the cell is untouched.
			return old
		}
		return join(old, v)
	}
}

// execAtomShared mirrors execAtomShared in the simulator: degree is the
// worst per-bank lane count with no broadcast exemption (every conflicting
// lane replays — same-address atomics serialise, unlike reads).
func (b *blockRun) execAtomShared(in kernel.Instr) bool {
	a := b.a
	anyActive := false
	for l := 0; l < b.width; l++ {
		if b.may[l] {
			anyActive = true
			break
		}
	}
	if !anyActive {
		b.pc++
		return true
	}
	if !b.gather(in, b.prog.SharedWords, "shared") {
		return false
	}

	// Per-bank degree over known addresses; unknown lanes pile onto the
	// worst bank.
	var counts [64]int
	var firstLane [64]int
	for i := 0; i < b.width; i++ {
		firstLane[i] = -1
	}
	degree := 0
	unknown := 0
	active := 0
	var lanes []int
	for l := 0; l < b.width; l++ {
		switch b.addrs[l] {
		case laneMasked:
			continue
		case laneUnknown:
			unknown++
			active++
			continue
		}
		active++
		bk := b.addrs[l] % int64(b.width)
		if firstLane[bk] < 0 {
			firstLane[bk] = l
		}
		counts[bk]++
		if counts[bk] > degree {
			degree = counts[bk]
			if counts[bk] == 2 {
				lanes = witness(firstLane[bk], l)
			}
		}
	}
	degree += unknown
	if degree > active {
		degree = active
	}
	if degree < 1 {
		degree = 1
	}

	b.recordAtomic(in, degree, lanes, "shared")

	// Lane-order abstract RMW, exactly the device's deterministic order.
	// The CAS compare value is read from Rd before the old value lands
	// there.
	d, rb := b.base(in.Rd), b.base(in.Rb)
	for l := 0; l < b.width; l++ {
		if b.addrs[l] == laneMasked {
			continue
		}
		if b.addrs[l] == laneUnknown {
			// Address not pinned down: every cell in the possible range may
			// hold a new unknown value; the old value returned is unknown.
			av := b.regs[b.base(in.Ra)+l]
			lo, hi := av.Lo, av.Hi
			if lo < 0 {
				lo = 0
			}
			if hi >= int64(b.prog.SharedWords) {
				hi = int64(b.prog.SharedWords) - 1
			}
			for c := lo; c <= hi; c++ {
				b.shared[c] = join(b.shared[c], top)
			}
			b.regs[d+l] = top
			continue
		}
		c := b.addrs[l]
		// Atomic-vs-plain in either direction is a race; atomic-vs-atomic
		// only serialises (reported above as contention).
		if w := b.wmask[c] &^ laneBit(l); w != 0 {
			wl := lowestLane(w)
			a.reportf(Finding{Analyzer: AnalyzerRace, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: witness(wl, l)},
				"shared memory race: lane %d atomically updates _shared[%d] plainly written by lane %d with no barrier between",
				l, c, wl)
		} else if r := b.rmask[c] &^ laneBit(l); r != 0 {
			rl := lowestLane(r)
			a.reportf(Finding{Analyzer: AnalyzerRace, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: witness(rl, l)},
				"shared memory race: lane %d atomically updates _shared[%d] read by lane %d with no barrier between",
				l, c, rl)
		}
		b.amask[c] |= laneBit(l)
		// Operand and compare value are read before Rd is overwritten with
		// the old value, exactly as the device does (Rb may alias Rd).
		cmp := b.regs[d+l]
		v := b.regs[rb+l]
		old := b.shared[c]
		b.setLane(d+l, l, old)
		b.setSharedLane(c, l, atomV(in.Op, old, v, cmp))
	}
	b.pc++
	return true
}

// execAtomGlobal mirrors the simulator's global atomic: transactions are the
// distinct width-blocks touched (like coalescing) and degree the worst
// same-address lane count. Global contents are unmodeled, so the returned
// old values are top.
func (b *blockRun) execAtomGlobal(in kernel.Instr) bool {
	a := b.a
	if !b.gather(in, a.opt.Machine.GlobalWords, "global") {
		return false
	}

	bs := int64(b.width)
	var blocks [64]int64
	nblocks := 0
	unknown := 0
	active := 0
	degree := 0
	var lanes []int
	for l := 0; l < b.width; l++ {
		switch b.addrs[l] {
		case laneMasked:
			continue
		case laneUnknown:
			unknown++
			active++
			continue
		}
		active++
		blk := b.addrs[l] / bs
		seen := false
		for i := 0; i < nblocks; i++ {
			if blocks[i] == blk {
				seen = true
				break
			}
		}
		if !seen {
			blocks[nblocks] = blk
			nblocks++
		}
		same := 1
		first := -1
		for m := 0; m < l; m++ {
			if b.addrs[m] == b.addrs[l] {
				if first < 0 {
					first = m
				}
				same++
			}
		}
		if same > degree {
			degree = same
			if same == 2 {
				lanes = witness(first, l)
			}
		}
	}
	if active == 0 {
		b.pc++
		return true
	}
	txn := nblocks + unknown
	if txn > active {
		txn = active
	}
	degree += unknown
	if degree > active {
		degree = active
	}
	if degree < 1 {
		degree = 1
	}

	b.recordAtomic(in, degree, lanes, "global")
	site := a.site(b.pc, in.Op)
	site.Transactions += int64(txn)
	if txn > site.MaxDegree {
		site.MaxDegree = txn
	}

	d := b.base(in.Rd)
	for l := 0; l < b.width; l++ {
		if b.addrs[l] != laneMasked {
			b.regs[d+l] = top
		}
	}
	b.pc++
	return true
}

// recordAtomic folds one atomic access of the given serialisation degree
// into the counters, site statistics and (when conflicted) the contention
// analyzer, identically to the simulator's bookkeeping.
func (b *blockRun) recordAtomic(in kernel.Instr, degree int, lanes []int, space string) {
	a := b.a
	a.stats.AtomicAccesses++
	a.stats.AtomicSerialisations += int64(degree - 1)
	if degree > a.stats.MaxAtomicDegree {
		a.stats.MaxAtomicDegree = degree
	}
	b.atomSer += int64(degree - 1)

	site := a.site(b.pc, in.Op)
	site.Accesses++
	if degree > 1 {
		site.Conflicted++
		a.reportf(Finding{Analyzer: AnalyzerContention, Severity: SevWarning, PC: b.pc, Block: b.blockID, Lanes: lanes},
			"%s atomic contention: %d conflicting lanes serialise (predicted contention factor %d.0x at this site)",
			space, degree, degree)
	}
	if degree > site.MaxDegree {
		site.MaxDegree = degree
	}
}
