package analyze

import (
	"atgpu/internal/kernel"
)

// gather collects the per-lane abstract addresses of a memory access into
// b.addrs: the concrete address for may-active lanes with a known in-range
// value, laneMasked for inactive lanes, laneUnknown when the interval is not
// a single point. Bounds violations are reported against size (G or the
// kernel's shared allocation); a violation that must happen aborts the
// analysis like the device trap it mirrors. Returns false on abort.
func (b *blockRun) gather(in kernel.Instr, size int, space string) bool {
	a := b.a
	for l := 0; l < b.width; l++ {
		if !b.may[l] {
			b.addrs[l] = laneMasked
			continue
		}
		av := b.regs[b.base(in.Ra)+l]
		if av.IsKnown() {
			x := av.Lo
			if x < 0 || x >= int64(size) {
				if b.must[l] {
					a.reportf(Finding{Analyzer: AnalyzerBounds, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: []int{l}},
						"%s %s out of bounds: lane %d address %d not in [0, %d) — the device traps this launch",
						space, opKind(in.Op), l, x, size)
					return false
				}
				a.precise = false
				a.reportf(Finding{Analyzer: AnalyzerBounds, Severity: SevWarning, PC: b.pc, Block: b.blockID, Lanes: []int{l}},
					"possible %s %s out of bounds: lane %d address %d not in [0, %d)",
					space, opKind(in.Op), l, x, size)
				b.addrs[l] = laneUnknown
				continue
			}
			b.addrs[l] = x
			continue
		}
		a.precise = false
		b.addrs[l] = laneUnknown
		if av.Lo >= int64(size) || av.Hi < 0 {
			// The whole interval is out of range: the access faults whenever
			// the lane is live.
			if b.must[l] {
				a.reportf(Finding{Analyzer: AnalyzerBounds, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: []int{l}},
					"%s %s out of bounds: lane %d address in [%d, %d], valid range [0, %d) — the device traps this launch",
					space, opKind(in.Op), l, av.Lo, av.Hi, size)
				return false
			}
			a.reportf(Finding{Analyzer: AnalyzerBounds, Severity: SevWarning, PC: b.pc, Block: b.blockID, Lanes: []int{l}},
				"possible %s %s out of bounds: lane %d address in [%d, %d], valid range [0, %d)",
				space, opKind(in.Op), l, av.Lo, av.Hi, size)
		} else if av.Lo < 0 || av.Hi >= int64(size) {
			a.reportf(Finding{Analyzer: AnalyzerBounds, Severity: SevWarning, PC: b.pc, Block: b.blockID, Lanes: []int{l}},
				"possible %s %s out of bounds: lane %d address in [%d, %d], valid range [0, %d)",
				space, opKind(in.Op), l, av.Lo, av.Hi, size)
		}
	}
	return true
}

func opKind(op kernel.Op) string {
	switch op {
	case kernel.OpLdGlobal, kernel.OpLdShared:
		return "load"
	case kernel.OpAtomAdd, kernel.OpAtomMax, kernel.OpAtomExch, kernel.OpAtomCAS:
		return "atomic update"
	default:
		return "store"
	}
}

// execGlobal mirrors the simulator's coalescing count for a warp-wide global
// access and is the static side of the coalescing-degree prediction.
// Returns false on abort; advances pc itself.
func (b *blockRun) execGlobal(in kernel.Instr) bool {
	a := b.a
	if !b.gather(in, a.opt.Machine.GlobalWords, "global") {
		return false
	}

	// Distinct memory blocks over known addresses, exactly as the device
	// counts them; unknown lanes pessimistically add one transaction each.
	bs := int64(b.width)
	var blocks [64]int64
	nblocks := 0
	unknown := 0
	active := 0
	for l := 0; l < b.width; l++ {
		switch b.addrs[l] {
		case laneMasked:
			continue
		case laneUnknown:
			unknown++
			active++
			continue
		}
		active++
		blk := b.addrs[l] / bs
		seen := false
		for i := 0; i < nblocks; i++ {
			if blocks[i] == blk {
				seen = true
				break
			}
		}
		if !seen {
			blocks[nblocks] = blk
			nblocks++
		}
	}
	if active == 0 {
		// Fully masked access: costs the issue slot only.
		b.pc++
		return true
	}
	txn := nblocks + unknown
	if txn > active {
		txn = active
	}

	a.stats.GlobalAccesses++
	a.stats.GlobalTransactions += int64(txn)
	site := a.site(b.pc, in.Op)
	site.Accesses++
	site.Transactions += int64(txn)
	if txn > site.MaxDegree {
		site.MaxDegree = txn
	}
	if txn > 1 {
		a.stats.UncoalescedAccesses++
		site.Uncoalesced++
		a.reportf(Finding{Analyzer: AnalyzerMemory, Severity: SevWarning, PC: b.pc, Block: b.blockID},
			"uncoalesced global %s: %d transactions for one warp access (perfect coalescing is 1)",
			opKind(in.Op), txn)
	}

	if in.Op == kernel.OpLdGlobal {
		// Global contents are unknown data: loads produce top.
		d := b.base(in.Rd)
		for l := 0; l < b.width; l++ {
			if b.addrs[l] != laneMasked {
				b.regs[d+l] = top
			}
		}
	}
	b.pc++
	return true
}

// execShared mirrors the simulator's bank-conflict analysis and runs the
// race detector over the access. Returns false on abort; advances pc itself.
func (b *blockRun) execShared(in kernel.Instr) bool {
	a := b.a
	anyActive := false
	for l := 0; l < b.width; l++ {
		if b.may[l] {
			anyActive = true
			break
		}
	}
	if !anyActive {
		b.pc++
		return true
	}
	if !b.gather(in, b.prog.SharedWords, "shared") {
		return false
	}

	degree, conflictLanes := b.conflictDegree()
	a.stats.SharedAccesses++
	site := a.site(b.pc, in.Op)
	site.Accesses++
	if degree > 1 {
		a.stats.BankConflicts++
		if degree > a.stats.MaxConflictDegree {
			a.stats.MaxConflictDegree = degree
		}
		site.Conflicted++
		a.reportf(Finding{Analyzer: AnalyzerMemory, Severity: SevWarning, PC: b.pc, Block: b.blockID, Lanes: conflictLanes},
			"shared %s bank conflict: degree %d serialisation (lanes hit the same bank)",
			opKind(in.Op), degree)
	}
	if degree > site.MaxDegree {
		site.MaxDegree = degree
	}

	if in.Op == kernel.OpLdShared {
		b.sharedLoad(in)
	} else {
		b.sharedStore(in)
	}
	b.pc++
	return true
}

// conflictDegree mirrors the device's bank serialisation count over the
// known gathered addresses, and returns two witness lanes when conflicted.
// Unknown-address lanes are excluded (the report is already approximate).
func (b *blockRun) conflictDegree() (int, []int) {
	if b.a.opt.Machine.BroadcastSharedReads {
		same := true
		first := int64(-1)
		for l := 0; l < b.width; l++ {
			if b.addrs[l] < 0 {
				continue
			}
			if first < 0 {
				first = b.addrs[l]
			} else if b.addrs[l] != first {
				same = false
				break
			}
		}
		if same {
			return 1, nil
		}
	}
	var counts [64]int
	var firstLane [64]int
	for i := 0; i < b.width; i++ {
		firstLane[i] = -1
	}
	max := 0
	var lanes []int
	for l := 0; l < b.width; l++ {
		if b.addrs[l] < 0 {
			continue
		}
		bk := b.addrs[l] % int64(b.width)
		if firstLane[bk] < 0 {
			firstLane[bk] = l
		}
		counts[bk]++
		if counts[bk] > max {
			max = counts[bk]
			if counts[bk] == 2 {
				lanes = witness(firstLane[bk], l)
			}
		}
	}
	return max, lanes
}

// sharedLoad reads each lane's cell value and checks the read against
// un-barriered writes by other lanes (read-after-write race).
func (b *blockRun) sharedLoad(in kernel.Instr) {
	a := b.a
	d := b.base(in.Rd)
	for l := 0; l < b.width; l++ {
		if b.addrs[l] == laneMasked {
			continue
		}
		if b.addrs[l] == laneUnknown {
			b.regs[d+l] = top
			continue
		}
		c := b.addrs[l]
		if w := b.wmask[c] &^ laneBit(l); w != 0 {
			wl := lowestLane(w)
			a.reportf(Finding{Analyzer: AnalyzerRace, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: witness(wl, l)},
				"shared memory race: lane %d reads _shared[%d] written by lane %d (pc %d, line %d) with no barrier between",
				l, c, wl, b.wpc[c], b.prog.Line(int(b.wpc[c])))
		} else if m := b.amask[c] &^ laneBit(l); m != 0 {
			ml := lowestLane(m)
			a.reportf(Finding{Analyzer: AnalyzerRace, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: witness(ml, l)},
				"shared memory race: lane %d plainly reads _shared[%d] atomically updated by lane %d with no barrier between",
				l, c, ml)
		}
		b.rmask[c] |= laneBit(l)
		b.setLane(d+l, l, b.shared[c])
	}
}

// sharedStore writes each lane's value and checks the write against
// un-barriered reads and writes by other lanes (write-after-read and
// write-after-write races), including two lanes storing to the same cell in
// this very instruction.
func (b *blockRun) sharedStore(in kernel.Instr) {
	a := b.a
	s := b.base(in.Rb)
	for l := 0; l < b.width; l++ {
		if b.addrs[l] == laneMasked {
			continue
		}
		if b.addrs[l] == laneUnknown {
			// Address not pinned down: havoc the possible range.
			av := b.regs[b.base(in.Ra)+l]
			lo, hi := av.Lo, av.Hi
			if lo < 0 {
				lo = 0
			}
			if hi >= int64(b.prog.SharedWords) {
				hi = int64(b.prog.SharedWords) - 1
			}
			for c := lo; c <= hi; c++ {
				b.shared[c] = join(b.shared[c], b.regs[s+l])
			}
			continue
		}
		c := b.addrs[l]
		others := laneBit(l) - 1 // lanes below l already stored this issue
		if w := (b.wmask[c] &^ laneBit(l)) | (b.instrWrites(c, l) & others); w != 0 {
			wl := lowestLane(w)
			a.reportf(Finding{Analyzer: AnalyzerRace, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: witness(wl, l)},
				"shared memory race: lanes %d and %d both write _shared[%d] with no barrier between",
				wl, l, c)
		} else if m := b.amask[c] &^ laneBit(l); m != 0 {
			ml := lowestLane(m)
			a.reportf(Finding{Analyzer: AnalyzerRace, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: witness(ml, l)},
				"shared memory race: lane %d plainly writes _shared[%d] atomically updated by lane %d with no barrier between",
				l, c, ml)
		} else if r := b.rmask[c] &^ laneBit(l); r != 0 {
			rl := lowestLane(r)
			a.reportf(Finding{Analyzer: AnalyzerRace, Severity: SevError, PC: b.pc, Block: b.blockID, Lanes: witness(rl, l)},
				"shared memory race: lane %d writes _shared[%d] read by lane %d with no barrier between",
				l, c, rl)
		}
		b.wmask[c] |= laneBit(l)
		b.wpc[c] = int32(b.pc)
		b.setSharedLane(c, l, b.regs[s+l])
	}
}

// instrWrites returns the mask of lanes below limit that store to cell c in
// the access currently being executed (intra-instruction conflict check).
func (b *blockRun) instrWrites(c int64, limit int) uint64 {
	var m uint64
	for l := 0; l < limit; l++ {
		if b.addrs[l] == c {
			m |= laneBit(l)
		}
	}
	return m
}

// setSharedLane writes v to a shared cell, weakening to a join when the
// writing lane only may be active.
func (b *blockRun) setSharedLane(c int64, lane int, v V) {
	if b.must[lane] {
		b.shared[c] = v
	} else {
		b.shared[c] = join(b.shared[c], v)
	}
}

func laneBit(l int) uint64 { return uint64(1) << uint(l) }

func lowestLane(m uint64) int {
	for l := 0; l < 64; l++ {
		if m&(1<<uint(l)) != 0 {
			return l
		}
	}
	return -1
}
