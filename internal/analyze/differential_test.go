package analyze_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"atgpu/internal/algorithms"
	"atgpu/internal/analyze"
	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// testCostParams is a valid calibrated-shape parameter set; the differential
// cost check is an identity (same formula, same inputs), so the exact values
// only need to be non-degenerate.
func testCostParams(cfg simgpu.Config) core.CostParams {
	return core.CostParams{
		Gamma:  6.61e7,
		Lambda: 0.812,
		Sigma:  5e-5,
		Alpha:  2.5e-5,
		Beta:   2.67e-9,
		KPrime: cfg.NumSMs,
		H:      cfg.MaxBlocksPerSM,
	}
}

func newDiffHost(t testing.TB, cfg simgpu.Config) *simgpu.Host {
	t.Helper()
	dev, err := simgpu.New(cfg)
	if err != nil {
		t.Fatalf("New device: %v", err)
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	h, err := simgpu.NewHost(dev, eng, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return h
}

// attachChecker arms the host so every launch is analysed statically and the
// prediction is compared, counter by counter and site by site, against what
// the device observed. Returns a counter of checked launches.
func attachChecker(t *testing.T, h *simgpu.Host, cfg simgpu.Config) *int {
	return attachCheckerAllowing(t, h, cfg, nil)
}

// attachCheckerAllowing is attachChecker with an allowance for kernels that
// are warp-synchronous by design: raceOK names programs whose race findings
// are expected true positives (they rely on lockstep warp execution instead
// of barriers). Error findings from any other analyzer still fail.
func attachCheckerAllowing(t *testing.T, h *simgpu.Host, cfg simgpu.Config, raceOK func(progName string) bool) *int {
	c, _ := attachCheckerRaces(t, h, cfg, raceOK)
	return c
}

// attachCheckerRaces additionally reports (via the returned flag) whether
// any allowed race finding was actually produced.
func attachCheckerRaces(t *testing.T, h *simgpu.Host, cfg simgpu.Config, raceOK func(progName string) bool) (*int, *bool) {
	t.Helper()
	h.SetCollectSites(true)
	cp := testCostParams(cfg)
	launches := 0
	sawAllowedRace := false
	h.SetLaunchObserver(func(prog *kernel.Program, numBlocks int, res simgpu.KernelResult) {
		launches++
		rep, err := analyze.Program(prog, analyze.Options{
			Machine: analyze.FromConfig(cfg),
			Blocks:  numBlocks,
			Cost:    &cp,
		})
		if err != nil {
			t.Fatalf("%s blocks=%d: analyze: %v", prog.Name, numBlocks, err)
		}
		if !rep.Precise {
			t.Errorf("%s blocks=%d: analysis not precise", prog.Name, numBlocks)
		}
		allowRaces := raceOK != nil && raceOK(prog.Name)
		for _, f := range rep.Findings {
			if f.Severity != analyze.SevError {
				continue
			}
			if allowRaces && f.Analyzer == analyze.AnalyzerRace {
				sawAllowedRace = true
				continue
			}
			t.Errorf("%s blocks=%d: unexpected error finding: %s", prog.Name, numBlocks, f)
		}
		checkStats(t, prog.Name, numBlocks, rep.Stats, res.Stats)
		checkFindingConsistency(t, prog.Name, rep, res.Stats)
		checkSites(t, prog.Name, rep.Sites, res.Sites)
		checkCost(t, prog.Name, cp, rep, res, numBlocks)
	})
	return &launches, &sawAllowedRace
}

// checkStats demands exact equality on every scheduling-independent counter.
func checkStats(t *testing.T, name string, blocks int, st analyze.StaticStats, obs simgpu.KernelStats) {
	t.Helper()
	cases := []struct {
		field     string
		got, want int64
	}{
		{"InstructionsIssued", st.InstructionsIssued, obs.InstructionsIssued},
		{"LaneOps", st.LaneOps, obs.LaneOps},
		{"GlobalAccesses", st.GlobalAccesses, obs.GlobalAccesses},
		{"GlobalTransactions", st.GlobalTransactions, obs.GlobalTransactions},
		{"UncoalescedAccesses", st.UncoalescedAccesses, obs.UncoalescedAccesses},
		{"SharedAccesses", st.SharedAccesses, obs.SharedAccesses},
		{"BankConflicts", st.BankConflicts, obs.BankConflicts},
		{"MaxConflictDegree", int64(st.MaxConflictDegree), int64(obs.MaxConflictDegree)},
		{"AtomicAccesses", st.AtomicAccesses, obs.AtomicAccesses},
		{"AtomicSerialisations", st.AtomicSerialisations, obs.AtomicSerialisations},
		{"MaxAtomicDegree", int64(st.MaxAtomicDegree), int64(obs.MaxAtomicDegree)},
		{"MaxWarpAtomicSerial", st.MaxWarpAtomicSerial, obs.MaxWarpAtomicSerial},
		{"Barriers", st.Barriers, obs.Barriers},
		{"DivergentBranches", st.DivergentBranches, obs.DivergentBranches},
		{"BlocksExecuted", st.BlocksExecuted, obs.BlocksExecuted},
		{"MaxWarpInstrs", st.MaxWarpInstrs, obs.MaxWarpInstrs},
		{"OccupancyLimit", int64(st.OccupancyLimit), int64(obs.OccupancyLimit)},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s blocks=%d: static %s = %d, simulator observed %d",
				name, blocks, c.field, c.got, c.want)
		}
	}
}

// checkFindingConsistency ties the memory analyzer's verdicts to the
// observed counters: a degraded-access warning must appear exactly when the
// device saw degraded accesses.
func checkFindingConsistency(t *testing.T, name string, rep *analyze.Report, obs simgpu.KernelStats) {
	t.Helper()
	warned := false
	for _, f := range rep.Findings {
		if f.Analyzer == analyze.AnalyzerMemory {
			warned = true
		}
	}
	degraded := obs.UncoalescedAccesses > 0 || obs.BankConflicts > 0
	if warned != degraded {
		t.Errorf("%s: memory warnings present=%v but observed uncoalesced=%d conflicts=%d",
			name, warned, obs.UncoalescedAccesses, obs.BankConflicts)
	}
}

// checkSites demands the static per-site prediction match the observed
// per-site counters instruction for instruction.
func checkSites(t *testing.T, name string, st []analyze.Site, obs []simgpu.SiteStat) {
	t.Helper()
	if len(st) != len(obs) {
		t.Errorf("%s: static predicts %d memory sites, simulator observed %d", name, len(st), len(obs))
		return
	}
	for i := range st {
		s, o := st[i], obs[i]
		if s.PC != o.PC || s.Op != o.Op || s.Line != o.Line {
			t.Errorf("%s: site %d identity mismatch: static pc=%d op=%v line=%d, observed pc=%d op=%v line=%d",
				name, i, s.PC, s.Op, s.Line, o.PC, o.Op, o.Line)
			continue
		}
		if s.Accesses != o.Accesses || s.Transactions != o.Transactions ||
			s.Uncoalesced != o.Uncoalesced || s.Conflicted != o.Conflicted ||
			s.MaxDegree != o.MaxDegree {
			t.Errorf("%s: site pc=%d (%v): static acc=%d txn=%d unc=%d conf=%d deg=%d, observed acc=%d txn=%d unc=%d conf=%d deg=%d",
				name, s.PC, s.Op,
				s.Accesses, s.Transactions, s.Uncoalesced, s.Conflicted, s.MaxDegree,
				o.Accesses, o.Transactions, o.Uncoalesced, o.Conflicted, o.MaxDegree)
		}
	}
}

// checkCost verifies the static Expression (2) kernel term equals the same
// expression evaluated from the simulator's observed counters — with the
// counters matching, the two must agree to the last bit.
func checkCost(t *testing.T, name string, cp core.CostParams, rep *analyze.Report, res simgpu.KernelResult, blocks int) {
	t.Helper()
	if rep.Cost == nil {
		t.Errorf("%s: no cost estimate", name)
		return
	}
	if blocks == 0 {
		return
	}
	occ := res.Stats.OccupancyLimit
	f := math.Ceil(float64(blocks) / float64(cp.KPrime*occ))
	tOps := float64(res.Stats.MaxWarpInstrs)
	q := float64(res.Stats.GlobalTransactions)
	wantGPU := (f*tOps + cp.Lambda*q) / cp.Gamma
	wantPerfect := (tOps + cp.Lambda*q) / cp.Gamma
	if rep.Cost.GPUSeconds != wantGPU || rep.Cost.PerfectSeconds != wantPerfect {
		t.Errorf("%s: static cost gpu=%g perfect=%g, from observed counters gpu=%g perfect=%g",
			name, rep.Cost.GPUSeconds, rep.Cost.PerfectSeconds, wantGPU, wantPerfect)
	}
}

func randWords(n int, seed int64) []algorithms.Word {
	rng := rand.New(rand.NewSource(seed))
	w := make([]algorithms.Word, n)
	for i := range w {
		w[i] = algorithms.Word(rng.Intn(2001) - 1000)
	}
	return w
}

// wideConfig is a GTX650-shaped device (width 32, M=6144, H=16) with global
// memory sized to the test's needs rather than the full card.
func wideConfig(globalWords int) simgpu.Config {
	cfg := simgpu.GTX650()
	need := ((globalWords + 63) / 64) * 64
	if need < 1<<16 {
		need = 1 << 16
	}
	cfg.GlobalWords = need
	return cfg
}

func tinyConfig(globalWords int) simgpu.Config {
	cfg := simgpu.Tiny()
	if globalWords > cfg.GlobalWords {
		cfg.GlobalWords = ((globalWords + 63) / 64) * 64
	}
	return cfg
}

// TestDifferentialVecAdd sweeps the standard vecadd sizes on the wide
// device: every launch's static prediction must match the simulator.
func TestDifferentialVecAdd(t *testing.T) {
	for _, n := range []int{100000, 200000, 300000} {
		alg := algorithms.VecAdd{N: n}
		cfg := wideConfig(alg.GlobalWords() + 64)
		h := newDiffHost(t, cfg)
		launches := attachChecker(t, h, cfg)
		a, b := randWords(n, 1), randWords(n, 2)
		if _, err := alg.Run(h, a, b); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if *launches == 0 {
			t.Fatalf("n=%d: no launches observed", n)
		}
	}
}

// TestDifferentialReduce sweeps the standard reduction sizes; the
// multi-round cascade exercises tail blocks and divergent-if masking.
func TestDifferentialReduce(t *testing.T) {
	for _, n := range []int{1 << 16, 1 << 17} {
		alg := algorithms.Reduce{N: n}
		cfg := wideConfig(alg.GlobalWords(32) + 64)
		h := newDiffHost(t, cfg)
		launches := attachChecker(t, h, cfg)
		if _, err := alg.Run(h, randWords(n, int64(n))); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if *launches < 2 {
			t.Fatalf("n=%d: expected a multi-launch cascade, saw %d", n, *launches)
		}
	}
}

// TestDifferentialMatMul sweeps the standard tiled matmul sizes, the
// heaviest shared-memory workload (loops, barriers, broadcast reads).
func TestDifferentialMatMul(t *testing.T) {
	for _, n := range []int{32, 64, 128} {
		alg := algorithms.MatMul{N: n}
		cfg := wideConfig(alg.GlobalWords() + 64)
		h := newDiffHost(t, cfg)
		launches := attachChecker(t, h, cfg)
		a, b := randWords(n*n, 3), randWords(n*n, 4)
		if _, err := alg.Run(h, a, b); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if *launches == 0 {
			t.Fatalf("n=%d: no launches observed", n)
		}
	}
}

// TestDifferentialPipelined runs the chunked multi-stream variants: many
// small launches with distinct base addresses and tail shapes.
func TestDifferentialPipelined(t *testing.T) {
	const n = 1 << 14
	t.Run("vecadd", func(t *testing.T) {
		alg := algorithms.PipelinedVecAdd{N: n, Chunks: 4, Streams: 2}
		gw, err := alg.GlobalWords(32)
		if err != nil {
			t.Fatal(err)
		}
		cfg := wideConfig(gw + 64)
		h := newDiffHost(t, cfg)
		launches := attachChecker(t, h, cfg)
		a, b := randWords(n, 5), randWords(n, 6)
		if _, err := alg.Run(h, a, b); err != nil {
			t.Fatal(err)
		}
		if *launches < 4 {
			t.Fatalf("expected one launch per chunk, saw %d", *launches)
		}
	})
	t.Run("reduce", func(t *testing.T) {
		alg := algorithms.PipelinedReduce{N: n, Chunks: 4, Streams: 2}
		gw, err := alg.GlobalWords(32)
		if err != nil {
			t.Fatal(err)
		}
		cfg := wideConfig(gw + 64)
		h := newDiffHost(t, cfg)
		launches := attachChecker(t, h, cfg)
		if _, err := alg.Run(h, randWords(n, 7)); err != nil {
			t.Fatal(err)
		}
		if *launches < 4 {
			t.Fatalf("expected one launch per chunk, saw %d", *launches)
		}
	})
	t.Run("matmul", func(t *testing.T) {
		alg := algorithms.PipelinedMatMul{N: 64, Chunks: 2, Streams: 2}
		gw, err := alg.GlobalWords(32)
		if err != nil {
			t.Fatal(err)
		}
		cfg := wideConfig(gw + 64)
		h := newDiffHost(t, cfg)
		launches := attachChecker(t, h, cfg)
		a, b := randWords(64*64, 8), randWords(64*64, 9)
		if _, err := alg.Run(h, a, b); err != nil {
			t.Fatal(err)
		}
		if *launches < 2 {
			t.Fatalf("expected one launch per band, saw %d", *launches)
		}
	})
}

// TestDifferentialBreadth covers the remaining built-ins — dot, scan,
// transpose (naive is uncoalesced by design), and every reduce variant
// (interleaved has bank conflicts by design) — on the tiny device, where
// odd sizes produce heavily masked tail blocks. The finding-consistency
// check inside the observer proves warnings appear exactly when the device
// observes degraded accesses.
func TestDifferentialBreadth(t *testing.T) {
	t.Run("dot", func(t *testing.T) {
		for _, n := range []int{16, 100, 1000} {
			alg := algorithms.Dot{N: n}
			cfg := tinyConfig(alg.GlobalWords(4) + 64)
			h := newDiffHost(t, cfg)
			launches := attachChecker(t, h, cfg)
			if _, err := alg.Run(h, randWords(n, 10), randWords(n, 11)); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if *launches == 0 {
				t.Fatalf("n=%d: no launches observed", n)
			}
		}
	})
	t.Run("scan", func(t *testing.T) {
		// The Hillis–Steele scan kernel is warp-synchronous by design: each
		// phase's lanes read neighbours' cells that other lanes rewrite in
		// the same phase, correct only under lockstep warp execution. The
		// race analyzer must flag it (a true positive under the
		// block-parallel model); the downstream add kernel must stay clean.
		raceOK := func(name string) bool { return strings.HasPrefix(name, "scan-n") }
		for _, n := range []int{16, 100, 1000} {
			alg := algorithms.Scan{N: n}
			cfg := tinyConfig(alg.GlobalWords(4) + 64)
			h := newDiffHost(t, cfg)
			launches, sawRace := attachCheckerRaces(t, h, cfg, raceOK)
			if _, err := alg.Run(h, randWords(n, 12)); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if *launches == 0 {
				t.Fatalf("n=%d: no launches observed", n)
			}
			if !*sawRace {
				t.Errorf("n=%d: warp-synchronous scan kernel not flagged by the race analyzer", n)
			}
		}
	})
	t.Run("transpose", func(t *testing.T) {
		for _, tiled := range []bool{false, true} {
			alg := algorithms.Transpose{N: 16, Tiled: tiled}
			cfg := tinyConfig(alg.GlobalWords() + 64)
			h := newDiffHost(t, cfg)
			launches := attachChecker(t, h, cfg)
			if _, err := alg.Run(h, randWords(16*16, 13)); err != nil {
				t.Fatalf("tiled=%v: %v", tiled, err)
			}
			if *launches == 0 {
				t.Fatalf("tiled=%v: no launches observed", tiled)
			}
		}
	})
	t.Run("reduce-variants", func(t *testing.T) {
		for _, s := range algorithms.ReduceStrategies() {
			alg := algorithms.ReduceVariant{N: 1000, Strategy: s}
			cfg := tinyConfig(alg.GlobalWords(4) + 64)
			h := newDiffHost(t, cfg)
			launches := attachChecker(t, h, cfg)
			if _, err := alg.Run(h, randWords(1000, 14)); err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			if *launches == 0 {
				t.Fatalf("%v: no launches observed", s)
			}
		}
	})
}
