package analyze

import (
	"atgpu/internal/core"
	"atgpu/internal/simgpu"
)

// Machine is the abstract machine ATGPU(p, b, M, G) the kernel is analysed
// against: the lane width, per-SM shared capacity, global capacity, and the
// hardware parameters Expression (2) needs.
type Machine struct {
	// Width is b: lanes per warp, words per global block, shared banks.
	Width int
	// SharedWords is M, the per-multiprocessor shared memory in words.
	SharedWords int
	// GlobalWords is G, the global memory size in words.
	GlobalWords int
	// NumSMs is k', the multiprocessor count.
	NumSMs int
	// MaxBlocksPerSM is H, the hardware residency limit.
	MaxBlocksPerSM int
	// BroadcastSharedReads recognises all-lanes-same-word shared reads as
	// conflict-free, matching the device configuration bit.
	BroadcastSharedReads bool
	// SharedLatencyCycles prices one serialised atomic replay in the
	// contention term of the cost estimate (the device's conflict-free
	// shared access cost). 0 defaults to 1 cycle per replay.
	SharedLatencyCycles int
}

// FromConfig derives the abstract machine from a simulator configuration,
// so static predictions target exactly the device a launch would run on.
func FromConfig(cfg simgpu.Config) Machine {
	return Machine{
		Width:                cfg.WarpWidth,
		SharedWords:          cfg.SharedWords,
		GlobalWords:          cfg.GlobalWords,
		NumSMs:               cfg.NumSMs,
		MaxBlocksPerSM:       cfg.MaxBlocksPerSM,
		BroadcastSharedReads: cfg.BroadcastSharedReads,
		SharedLatencyCycles:  cfg.SharedLatencyCycles,
	}
}

// Occupancy returns ℓ = min(⌊M/m⌋, H) for a block using m shared words,
// mirroring simgpu.Config.Occupancy.
func (m Machine) Occupancy(sharedWordsPerBlock int) int {
	if sharedWordsPerBlock < 0 {
		return 0
	}
	if sharedWordsPerBlock == 0 {
		return m.MaxBlocksPerSM
	}
	byShared := m.SharedWords / sharedWordsPerBlock
	if byShared > m.MaxBlocksPerSM {
		return m.MaxBlocksPerSM
	}
	return byShared
}

// Options configures one analysis.
type Options struct {
	// Machine is the target machine; Width must be in 1..64.
	Machine Machine
	// Blocks is k, the number of thread blocks of the launch being
	// analysed.
	Blocks int
	// Cost, when non-nil, enables the static Expression (1)/(2) cost
	// estimate using these calibrated parameters.
	Cost *core.CostParams
	// Fuel caps the abstract instructions interpreted per block; on
	// exhaustion the block's analysis aborts with an info finding and the
	// report is marked approximate. 0 means the default (1<<22).
	Fuel int64
	// LoopBudget caps how many times an unknown-condition uniform branch
	// falls through (continues looping) before the analysis forces the
	// exit edge. 0 means the default (4096).
	LoopBudget int
	// MaxFindings caps recorded findings (deduplicated by analyzer and
	// pc first). 0 means the default (64).
	MaxFindings int
}

func (o Options) fuel() int64 {
	if o.Fuel > 0 {
		return o.Fuel
	}
	return 1 << 22
}

func (o Options) loopBudget() int {
	if o.LoopBudget > 0 {
		return o.LoopBudget
	}
	return 4096
}

func (o Options) maxFindings() int {
	if o.MaxFindings > 0 {
		return o.MaxFindings
	}
	return 64
}
