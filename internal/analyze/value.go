package analyze

import (
	"math"

	"atgpu/internal/kernel"
)

// V is the abstract value of one lane's register: a closed interval
// [Lo, Hi] over kernel.Word. A value is known when Lo == Hi; top (nothing
// known) is the full int64 range. The interpreter runs mostly concretely —
// lane ids, block ids, parameters and loop counters all stay known — and
// intervals only widen where genuinely unknown data (global memory
// contents) flows into a computation.
//
// Known/known operations use the exact wrapping semantics of the
// simulator's ALU so that, on kernels whose control flow and addresses
// never depend on loaded data, the abstract execution is bit-identical to
// the simulated one. Interval/interval operations are conservative: any
// possible overflow collapses to top.
type V struct {
	Lo, Hi int64
}

var top = V{math.MinInt64, math.MaxInt64}

func known(x int64) V { return V{x, x} }

// IsKnown reports whether exactly one concrete value is possible.
func (v V) IsKnown() bool { return v.Lo == v.Hi }

func (v V) isTop() bool { return v.Lo == math.MinInt64 && v.Hi == math.MaxInt64 }

// join returns the smallest interval covering both values.
func join(a, b V) V {
	if b.Lo < a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi > a.Hi {
		a.Hi = b.Hi
	}
	return a
}

// contains reports whether x is a possible value of v.
func (v V) contains(x int64) bool { return v.Lo <= x && x <= v.Hi }

// truth classifies v as a branch condition: known-true, known-false, or
// undecidable.
type truth uint8

const (
	truthUnknown truth = iota
	truthFalse
	truthTrue
)

func (v V) truth() truth {
	if v.IsKnown() {
		if v.Lo != 0 {
			return truthTrue
		}
		return truthFalse
	}
	if !v.contains(0) {
		return truthTrue
	}
	return truthUnknown
}

// --- checked interval arithmetic ---------------------------------------------

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, true
	}
	return s, false
}

func subOv(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, true
	}
	return d, false
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, true
	}
	return p, false
}

func vAdd(a, b V) V {
	if a.IsKnown() && b.IsKnown() {
		return known(a.Lo + b.Lo) // wrapping, exactly like the ALU
	}
	lo, of1 := addOv(a.Lo, b.Lo)
	hi, of2 := addOv(a.Hi, b.Hi)
	if of1 || of2 {
		return top
	}
	return V{lo, hi}
}

func vSub(a, b V) V {
	if a.IsKnown() && b.IsKnown() {
		return known(a.Lo - b.Lo)
	}
	lo, of1 := subOv(a.Lo, b.Hi)
	hi, of2 := subOv(a.Hi, b.Lo)
	if of1 || of2 {
		return top
	}
	return V{lo, hi}
}

func vMul(a, b V) V {
	if a.IsKnown() && b.IsKnown() {
		return known(a.Lo * b.Lo)
	}
	lo := int64(math.MaxInt64)
	hi := int64(math.MinInt64)
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, y := range [2]int64{b.Lo, b.Hi} {
			p, of := mulOv(x, y)
			if of {
				return top
			}
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
	}
	return V{lo, hi}
}

// vDiv assumes the divisor cannot be zero (the interpreter reports possible
// division by zero before calling it and substitutes top on that path).
func vDiv(a, b V) V {
	if a.IsKnown() && b.IsKnown() && b.Lo != 0 {
		return known(a.Lo / b.Lo)
	}
	if b.IsKnown() && b.Lo != 0 {
		// x/d truncates toward zero and is monotone in x for fixed d.
		if b.Lo > 0 {
			return V{a.Lo / b.Lo, a.Hi / b.Lo}
		}
		return V{a.Hi / b.Lo, a.Lo / b.Lo}
	}
	return top
}

func vMod(a, b V) V {
	if a.IsKnown() && b.IsKnown() && b.Lo != 0 {
		return known(a.Lo % b.Lo)
	}
	if b.IsKnown() && b.Lo > 0 {
		m := b.Lo
		if a.Lo >= 0 {
			hi := m - 1
			if a.Hi < hi {
				hi = a.Hi
			}
			return V{0, hi}
		}
		return V{-(m - 1), m - 1}
	}
	return top
}

func vMin(a, b V) V {
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	return V{lo, hi}
}

func vMax(a, b V) V {
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	return V{lo, hi}
}

// bitCeil returns the all-ones mask covering every bit of h (h ≥ 0).
func bitCeil(h int64) int64 {
	m := int64(0)
	for m < h {
		m = m<<1 | 1
	}
	return m
}

func vAnd(a, b V) V {
	if a.IsKnown() && b.IsKnown() {
		return known(a.Lo & b.Lo)
	}
	// x & m with 0 ≤ m bounds the result to [0, m] when x ≥ 0 is not even
	// needed: AND with a non-negative value cannot exceed it, and cannot go
	// negative unless both operands are negative.
	if b.IsKnown() && b.Lo >= 0 {
		return V{0, b.Lo}
	}
	if a.IsKnown() && a.Lo >= 0 {
		return V{0, a.Lo}
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		hi := a.Hi
		if b.Hi < hi {
			hi = b.Hi
		}
		return V{0, hi}
	}
	return top
}

func vOrXor(a, b V) V {
	if a.Lo >= 0 && b.Lo >= 0 {
		h := a.Hi
		if b.Hi > h {
			h = b.Hi
		}
		return V{0, bitCeil(h)}
	}
	return top
}

func vShl(a, b V) V {
	if b.IsKnown() {
		s := uint(b.Lo & 63)
		if a.IsKnown() {
			return known(a.Lo << s)
		}
		lo := a.Lo << s
		hi := a.Hi << s
		if lo>>s == a.Lo && hi>>s == a.Hi && lo <= hi {
			return V{lo, hi}
		}
	}
	return top
}

func vShr(a, b V) V {
	if b.IsKnown() {
		s := uint(b.Lo & 63)
		// Arithmetic right shift is monotone in the shifted value.
		return V{a.Lo >> s, a.Hi >> s}
	}
	return top
}

func b2v(b bool) V {
	if b {
		return known(1)
	}
	return known(0)
}

var vBool = V{0, 1}

func vSlt(a, b V) V {
	if a.Hi < b.Lo {
		return known(1)
	}
	if a.Lo >= b.Hi {
		// every a ≥ every b ⇒ a < b is false
		return known(0)
	}
	return vBool
}

func vSle(a, b V) V {
	if a.Hi <= b.Lo {
		return known(1)
	}
	if a.Lo > b.Hi {
		return known(0)
	}
	return vBool
}

func vSeq(a, b V) V {
	if a.IsKnown() && b.IsKnown() {
		return b2v(a.Lo == b.Lo)
	}
	if a.Hi < b.Lo || b.Hi < a.Lo {
		return known(0)
	}
	return vBool
}

func vSne(a, b V) V {
	s := vSeq(a, b)
	if s.IsKnown() {
		return b2v(s.Lo == 0)
	}
	return vBool
}

// vALU mirrors the simulator's three-register ALU over abstract values.
func vALU(op kernel.Op, a, b V) V {
	switch op {
	case kernel.OpAdd:
		return vAdd(a, b)
	case kernel.OpSub:
		return vSub(a, b)
	case kernel.OpMul:
		return vMul(a, b)
	case kernel.OpMin:
		return vMin(a, b)
	case kernel.OpMax:
		return vMax(a, b)
	case kernel.OpAnd:
		return vAnd(a, b)
	case kernel.OpOr, kernel.OpXor:
		if a.IsKnown() && b.IsKnown() {
			if op == kernel.OpOr {
				return known(a.Lo | b.Lo)
			}
			return known(a.Lo ^ b.Lo)
		}
		return vOrXor(a, b)
	case kernel.OpShl:
		return vShl(a, b)
	case kernel.OpShr:
		return vShr(a, b)
	case kernel.OpSlt:
		return vSlt(a, b)
	case kernel.OpSle:
		return vSle(a, b)
	case kernel.OpSeq:
		return vSeq(a, b)
	case kernel.OpSne:
		return vSne(a, b)
	}
	return top
}

// vALUImm mirrors the simulator's register-immediate ALU.
func vALUImm(op kernel.Op, a V, imm int64) V {
	k := known(imm)
	switch op {
	case kernel.OpAddI:
		return vAdd(a, k)
	case kernel.OpMulI:
		return vMul(a, k)
	case kernel.OpShlI:
		return vShl(a, k)
	case kernel.OpShrI:
		return vShr(a, k)
	case kernel.OpAndI:
		return vAnd(a, k)
	case kernel.OpSltI:
		return vSlt(a, k)
	case kernel.OpSleI:
		return vSle(a, k)
	case kernel.OpSeqI:
		return vSeq(a, k)
	case kernel.OpSneI:
		return vSne(a, k)
	}
	return top
}
