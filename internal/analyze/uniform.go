package analyze

import (
	"errors"
	"fmt"

	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
)

// BlockUniform certification
//
// The prover establishes, by one symbolic pass over the kernel, that every
// thread block of a launch executes the SAME instruction trace with the
// SAME per-position memory-transaction counts and latencies, differing only
// in OpBlockID-derived data, and that the blocks' global writes are
// mutually disjoint (no block reads or writes an address another block
// writes). A launch carrying this certificate is safe to simulate by
// steady-state block memoization (internal/simgpu/memo.go): scheduler
// behaviour becomes a function of relative state only, and elided blocks
// can be data-replayed in any order after the run.
//
// The abstract domain is affine-in-blockID: each lane value is either
// a·k + c (k the block index, exact over all k in [0, blocks)) or Top
// (unknown data, e.g. anything loaded from global memory). Concrete values
// (a = 0) are computed with exactly the device's Go int64 semantics,
// including wraparound, shift masking, and truncating division. Properly
// affine values (a ≠ 0) carry magnitude guards so that a·k + c never
// overflows for any certified k. Anything the domain cannot express
// precisely becomes Top, and Top is REFUSED the moment it could steer the
// trace or timing: control conditions, branch conditions, memory addresses,
// and divisors must never be Top. Refusal is always sound — the launch
// simply runs under full simulation.

// ErrNotUniform is wrapped by every refusal reason.
var ErrNotUniform = errors.New("analyze: kernel is not provably block-uniform")

const (
	// uniformMaxMag bounds |a| and |c| of properly affine values so that
	// endpoint evaluation a·k + c cannot overflow int64.
	uniformMaxMag = int64(1) << 40
	// uniformMaxBlocks bounds the certified launch size for the same reason
	// (2^40 · 2^21 + 2^40 < 2^63).
	uniformMaxBlocks = 1 << 21
	// uniformFuel caps the symbolic trace length.
	uniformFuel = 1 << 20
	// uniformMaxSites caps recorded global address functions for the
	// cross-block disjointness check.
	uniformMaxSites = 4096
)

// UniformCert records what was certified.
type UniformCert struct {
	Blocks int   // launch size the certificate covers
	Width  int   // warp width it was proved at
	Instrs int64 // warp-instructions in the per-block trace
}

// affv is a lane value affine in the block index: a·k + c, or Top.
type affv struct {
	a, c int64
	top  bool
}

func affTop() affv         { return affv{top: true} }
func affCon(v int64) affv  { return affv{c: v} }
func (v affv) isCon() bool { return !v.top && v.a == 0 }

// guarded reports whether v is safe for affine arithmetic and endpoint
// evaluation (concrete values of any magnitude are exact but only small
// ones may be combined with properly affine values).
func (v affv) guarded() bool {
	return !v.top && v.a >= -uniformMaxMag && v.a <= uniformMaxMag &&
		v.c >= -uniformMaxMag && v.c <= uniformMaxMag
}

// at evaluates v at block k. Only valid for guarded or concrete v.
func (v affv) at(k int64) int64 { return v.a*k + v.c }

// gaff builds a·k + c, demoting to Top when the guards fail. A zero stride
// yields an exact concrete value.
func gaff(a, c int64) affv {
	if a == 0 {
		return affCon(c)
	}
	v := affv{a: a, c: c}
	if !v.guarded() {
		return affTop()
	}
	return v
}

// accessRec is one active lane's address function at one dynamic global
// access.
type accessRec struct {
	a, c  int64
	store bool
}

// uniState is the symbolic machine: one representative block with symbolic
// index k.
type uniState struct {
	prog        *kernel.Program
	width       int
	blocks      int64
	globalWords int

	regs      []affv
	shared    []affv
	active    []bool
	maskStack [][]bool
	pc        int
	instrs    int64

	recs []accessRec
}

// BlockUniform proves the certificate for launching blocks thread blocks of
// prog at the given warp width over globalWords words of global memory. A
// nil error means certified; the error otherwise wraps ErrNotUniform with
// the refusal reason.
func BlockUniform(prog *kernel.Program, width, globalWords, blocks int) (*UniformCert, error) {
	if prog == nil {
		return nil, fmt.Errorf("%w: nil program", ErrNotUniform)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotUniform, err)
	}
	if width <= 0 || blocks <= 0 {
		return nil, fmt.Errorf("%w: width %d, blocks %d", ErrNotUniform, width, blocks)
	}
	if blocks > uniformMaxBlocks {
		return nil, fmt.Errorf("%w: %d blocks exceeds certifiable maximum %d", ErrNotUniform, blocks, uniformMaxBlocks)
	}
	u := &uniState{
		prog:        prog,
		width:       width,
		blocks:      int64(blocks),
		globalWords: globalWords,
		regs:        make([]affv, prog.NumRegs*width),
		shared:      make([]affv, prog.SharedWords),
		active:      make([]bool, width),
	}
	for l := range u.active {
		u.active[l] = true
	}
	if err := u.run(); err != nil {
		return nil, err
	}
	if err := u.checkDisjoint(); err != nil {
		return nil, err
	}
	return &UniformCert{Blocks: blocks, Width: width, Instrs: u.instrs}, nil
}

// UniformProver adapts BlockUniform to the simgpu.UniformProver callback
// installed with Device.SetUniformProver.
func UniformProver(prog *kernel.Program, cfg simgpu.Config, blocks int) bool {
	_, err := BlockUniform(prog, cfg.WarpWidth, cfg.GlobalWords, blocks)
	return err == nil
}

func (u *uniState) refusef(format string, args ...interface{}) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("%w: pc %d: %s", ErrNotUniform, u.pc, msg)
}

// run traces the representative block to halt.
func (u *uniState) run() error {
	ins := u.prog.Instrs
	for {
		if u.pc < 0 || u.pc >= len(ins) {
			return u.refusef("pc out of range")
		}
		if u.instrs >= uniformFuel {
			return u.refusef("trace exceeds %d instructions", uniformFuel)
		}
		in := ins[u.pc]
		u.instrs++

		switch in.Op {
		case kernel.OpNop:

		case kernel.OpConst:
			u.setActive(in.Rd, func(int) affv { return affCon(in.Imm) })

		case kernel.OpMov:
			a := u.base(in.Ra)
			u.setActive(in.Rd, func(l int) affv { return u.regs[a+l] })

		case kernel.OpAdd, kernel.OpSub, kernel.OpMul, kernel.OpMin, kernel.OpMax,
			kernel.OpAnd, kernel.OpOr, kernel.OpXor, kernel.OpShl, kernel.OpShr,
			kernel.OpSlt, kernel.OpSle, kernel.OpSeq, kernel.OpSne:
			a, b := u.base(in.Ra), u.base(in.Rb)
			u.setActive(in.Rd, func(l int) affv { return u.affALU(in.Op, u.regs[a+l], u.regs[b+l]) })

		case kernel.OpDiv, kernel.OpMod:
			a, b := u.base(in.Ra), u.base(in.Rb)
			for l := 0; l < u.width; l++ {
				if !u.active[l] {
					continue
				}
				dv := u.regs[b+l]
				if !dv.isCon() {
					return u.refusef("lane %d divisor is not a block-invariant constant", l)
				}
				if dv.c == 0 {
					return u.refusef("lane %d divides by zero", l)
				}
			}
			u.setActive(in.Rd, func(l int) affv {
				x, dv := u.regs[a+l], u.regs[b+l]
				if !x.isCon() {
					return affTop()
				}
				if in.Op == kernel.OpDiv {
					return affCon(x.c / dv.c)
				}
				return affCon(x.c % dv.c)
			})

		case kernel.OpAddI, kernel.OpMulI, kernel.OpShlI, kernel.OpShrI, kernel.OpAndI,
			kernel.OpSltI, kernel.OpSleI, kernel.OpSeqI, kernel.OpSneI:
			a := u.base(in.Ra)
			u.setActive(in.Rd, func(l int) affv { return u.affALUImm(in.Op, u.regs[a+l], in.Imm) })

		case kernel.OpDivI, kernel.OpModI:
			// Masked semantics: a zero immediate only traps on active lanes,
			// and the prover reaches here only with at least the trace's
			// active lanes executing.
			if in.Imm == 0 && u.anyActive() {
				return u.refusef("divides by constant zero")
			}
			a := u.base(in.Ra)
			u.setActive(in.Rd, func(l int) affv {
				x := u.regs[a+l]
				if !x.isCon() {
					return affTop()
				}
				if in.Op == kernel.OpDivI {
					return affCon(x.c / in.Imm)
				}
				return affCon(x.c % in.Imm)
			})

		case kernel.OpLaneID:
			u.setActive(in.Rd, func(l int) affv { return affCon(int64(l)) })

		case kernel.OpBlockID:
			u.setActive(in.Rd, func(int) affv { return affv{a: 1, c: 0} })

		case kernel.OpNumBlocks:
			u.setActive(in.Rd, func(int) affv { return affCon(u.blocks) })

		case kernel.OpBlockDim:
			u.setActive(in.Rd, func(int) affv { return affCon(int64(u.width)) })

		case kernel.OpLdGlobal, kernel.OpStGlobal:
			if err := u.execGlobal(in); err != nil {
				return err
			}

		case kernel.OpLdShared, kernel.OpStShared:
			if err := u.execShared(in); err != nil {
				return err
			}

		case kernel.OpAtomAdd, kernel.OpAtomMax, kernel.OpAtomExch, kernel.OpAtomCAS:
			// Atomics are refused outright. A global atomic makes every block
			// touch a cell other blocks may touch, defeating the disjointness
			// the certificate rests on; a shared atomic's serialisation charge
			// and returned old value depend on which lanes contend, which the
			// affine domain cannot prove identical across blocks once any
			// operand is Top. The launch simply runs under full simulation.
			return u.refusef("atomic %v: read-modify-write effects are not provably block-uniform", in.Op)

		case kernel.OpBarrier:
			// Timing of a barrier is mask-shaped only; the mask is already
			// proven block-invariant.

		case kernel.OpJump:
			u.pc = int(in.Target)
			continue

		case kernel.OpBrNZ:
			taken, err := u.uniformBranch(in.Ra)
			if err != nil {
				return err
			}
			if taken {
				u.pc = int(in.Target)
				continue
			}

		case kernel.OpIfBegin:
			jumped, err := u.ifBegin(in)
			if err != nil {
				return err
			}
			if jumped {
				continue
			}

		case kernel.OpIfEnd:
			if len(u.maskStack) == 0 {
				return u.refusef("if.end without matching if.begin")
			}
			u.active = u.maskStack[len(u.maskStack)-1]
			u.maskStack = u.maskStack[:len(u.maskStack)-1]

		case kernel.OpHalt:
			return nil

		default:
			return u.refusef("unsupported opcode %v", in.Op)
		}
		u.pc++
	}
}

func (u *uniState) base(r kernel.Reg) int { return int(r) * u.width }

func (u *uniState) anyActive() bool {
	for _, a := range u.active {
		if a {
			return true
		}
	}
	return false
}

// setActive writes f(l) into active lanes of destination register rd.
func (u *uniState) setActive(rd kernel.Reg, f func(l int) affv) {
	d := u.base(rd)
	for l := 0; l < u.width; l++ {
		if u.active[l] {
			u.regs[d+l] = f(l)
		}
	}
}

// affALU mirrors the device's alu() over the affine domain.
func (u *uniState) affALU(op kernel.Op, x, y affv) affv {
	if x.isCon() && y.isCon() {
		// Exact: identical Go semantics to the device, wraparound included.
		return affCon(deviceALU(op, x.c, y.c))
	}
	if x.top || y.top {
		return affTop()
	}
	switch op {
	case kernel.OpAdd:
		if x.guarded() && y.guarded() {
			return gaff(x.a+y.a, x.c+y.c)
		}
	case kernel.OpSub:
		if x.guarded() && y.guarded() {
			return gaff(x.a-y.a, x.c-y.c)
		}
	case kernel.OpMul:
		if m, ok := conOf(x, y); ok {
			v, _ := pickAffine(x, y)
			return scaleAff(v, m)
		}
	case kernel.OpShl:
		if y.isCon() && x.guarded() {
			return shiftAff(x, y.c)
		}
	case kernel.OpSlt, kernel.OpSle, kernel.OpSeq, kernel.OpSne:
		return u.affCompare(op, x, y)
	}
	return affTop()
}

// affALUImm mirrors aluImm() over the affine domain.
func (u *uniState) affALUImm(op kernel.Op, x affv, imm int64) affv {
	if x.isCon() {
		return affCon(deviceALUImm(op, x.c, imm))
	}
	if x.top {
		return affTop()
	}
	switch op {
	case kernel.OpAddI:
		if x.guarded() && imm >= -uniformMaxMag && imm <= uniformMaxMag {
			return gaff(x.a, x.c+imm)
		}
	case kernel.OpMulI:
		return scaleAff(x, imm)
	case kernel.OpShlI:
		if x.guarded() {
			return shiftAff(x, imm)
		}
	case kernel.OpSltI, kernel.OpSleI, kernel.OpSeqI, kernel.OpSneI:
		var rel kernel.Op
		switch op {
		case kernel.OpSltI:
			rel = kernel.OpSlt
		case kernel.OpSleI:
			rel = kernel.OpSle
		case kernel.OpSeqI:
			rel = kernel.OpSeq
		default:
			rel = kernel.OpSne
		}
		return u.affCompare(rel, x, affCon(imm))
	}
	return affTop()
}

// conOf extracts the concrete multiplier when exactly one operand is
// concrete.
func conOf(x, y affv) (int64, bool) {
	if x.isCon() {
		return x.c, true
	}
	if y.isCon() {
		return y.c, true
	}
	return 0, false
}

func pickAffine(x, y affv) (affv, bool) {
	if !x.isCon() {
		return x, true
	}
	return y, true
}

// scaleAff multiplies a properly affine value by a concrete m, guarding
// against overflow of the scaled coefficients.
func scaleAff(v affv, m int64) affv {
	if v.top {
		return affTop()
	}
	if m == 0 {
		return affCon(0)
	}
	if !v.guarded() {
		return affTop()
	}
	am := abs64(m)
	if am > uniformMaxMag ||
		abs64(v.a) > uniformMaxMag/am || abs64(v.c) > uniformMaxMag/am {
		return affTop()
	}
	return gaff(v.a*m, v.c*m)
}

// shiftAff is left shift of an affine value: multiplication by 2^s when the
// device's masked shift amount is small enough to guard.
func shiftAff(v affv, s int64) affv {
	sh := uint(s & 63)
	if sh > 40 {
		return affTop()
	}
	return scaleAff(v, int64(1)<<sh)
}

// affCompare resolves a comparison whose operands may depend on k. The
// result must be the SAME for every block, otherwise it is Top (and will be
// refused if it ever reaches control or addressing).
func (u *uniState) affCompare(op kernel.Op, x, y affv) affv {
	if x.isCon() && y.isCon() {
		return affCon(deviceALU(op, x.c, y.c))
	}
	if !x.guarded() || !y.guarded() {
		return affTop()
	}
	da, dc := x.a-y.a, x.c-y.c // diff(k) = da·k + dc, |·| ≤ 2^41: evaluation safe
	if da == 0 {
		return affCon(deviceALU(op, dc, 0))
	}
	last := u.blocks - 1
	switch op {
	case kernel.OpSlt, kernel.OpSle:
		// diff is monotone in k: identical truth at both endpoints means
		// identical truth at every block.
		t0 := deviceALU(op, da*0+dc, 0)
		t1 := deviceALU(op, da*last+dc, 0)
		if t0 == t1 {
			return affCon(t0)
		}
	case kernel.OpSeq, kernel.OpSne:
		// diff(k) = 0 only at the single root k0 = -dc/da (if integral).
		rootIn := dc%da == 0 && -dc/da >= 0 && -dc/da <= last
		if !rootIn {
			if op == kernel.OpSeq {
				return affCon(0)
			}
			return affCon(1)
		}
		if u.blocks == 1 {
			// The root is the only block; the comparison is still uniform.
			if op == kernel.OpSeq {
				return affCon(1)
			}
			return affCon(0)
		}
	}
	return affTop()
}

// deviceALU is the device's alu() for comparisons and exact concrete math.
func deviceALU(op kernel.Op, a, b int64) int64 {
	switch op {
	case kernel.OpAdd:
		return a + b
	case kernel.OpSub:
		return a - b
	case kernel.OpMul:
		return a * b
	case kernel.OpMin:
		if a < b {
			return a
		}
		return b
	case kernel.OpMax:
		if a > b {
			return a
		}
		return b
	case kernel.OpAnd:
		return a & b
	case kernel.OpOr:
		return a | b
	case kernel.OpXor:
		return a ^ b
	case kernel.OpShl:
		return a << uint(b&63)
	case kernel.OpShr:
		return a >> uint(b&63)
	case kernel.OpSlt:
		return b2i(a < b)
	case kernel.OpSle:
		return b2i(a <= b)
	case kernel.OpSeq:
		return b2i(a == b)
	case kernel.OpSne:
		return b2i(a != b)
	}
	return 0
}

func deviceALUImm(op kernel.Op, a, imm int64) int64 {
	switch op {
	case kernel.OpAddI:
		return a + imm
	case kernel.OpMulI:
		return a * imm
	case kernel.OpShlI:
		return a << uint(imm&63)
	case kernel.OpShrI:
		return a >> uint(imm&63)
	case kernel.OpAndI:
		return a & imm
	case kernel.OpSltI:
		return b2i(a < imm)
	case kernel.OpSleI:
		return b2i(a <= imm)
	case kernel.OpSeqI:
		return b2i(a == imm)
	case kernel.OpSneI:
		return b2i(a != imm)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// laneTruth resolves a lane's condition value to a block-invariant boolean,
// or fails.
func (u *uniState) laneTruth(v affv, l int) (bool, error) {
	if v.top {
		return false, u.refusef("lane %d condition depends on loaded data", l)
	}
	if v.isCon() {
		return v.c != 0, nil
	}
	// Properly affine: nonzero except at the single root of a·k + c.
	if v.c%v.a == 0 {
		if k0 := -v.c / v.a; k0 >= 0 && k0 < u.blocks && u.blocks > 1 {
			return false, u.refusef("lane %d condition flips at block %d", l, k0)
		}
	}
	// No root among certified blocks (or a single-block launch): always
	// nonzero, i.e. true — unless the only block IS the root.
	if u.blocks == 1 && v.c == 0 {
		return false, nil
	}
	return true, nil
}

// uniformBranch resolves a brnz condition: every active lane must agree and
// the shared truth must be block-invariant (the device traps on divergence).
func (u *uniState) uniformBranch(ra kernel.Reg) (bool, error) {
	a := u.base(ra)
	taken, seen := false, false
	for l := 0; l < u.width; l++ {
		if !u.active[l] {
			continue
		}
		t, err := u.laneTruth(u.regs[a+l], l)
		if err != nil {
			return false, err
		}
		if !seen {
			taken, seen = t, true
		} else if t != taken {
			return false, u.refusef("brnz condition diverges across lanes")
		}
	}
	if !seen {
		return false, u.refusef("brnz with no active lane")
	}
	return taken, nil
}

// ifBegin mirrors the device: mask off false lanes, jump past if.end when
// no lane is true. Returns whether the pc already moved.
func (u *uniState) ifBegin(in kernel.Instr) (bool, error) {
	a := u.base(in.Ra)
	truth := make([]bool, u.width)
	anyTrue := false
	for l := 0; l < u.width; l++ {
		if !u.active[l] {
			continue
		}
		t, err := u.laneTruth(u.regs[a+l], l)
		if err != nil {
			return false, err
		}
		truth[l] = t
		anyTrue = anyTrue || t
	}
	if !anyTrue {
		u.pc = int(in.Target)
		return true, nil
	}
	saved := make([]bool, u.width)
	copy(saved, u.active)
	u.maskStack = append(u.maskStack, saved)
	for l := 0; l < u.width; l++ {
		if u.active[l] && !truth[l] {
			u.active[l] = false
		}
	}
	return false, nil
}

// execGlobal certifies one global access: every active lane's address must
// be affine and in bounds at both block endpoints, all active lanes must
// share one stride, and that stride must preserve the coalescing pattern
// across blocks (a multiple of the transaction width, or zero, or a single
// active lane). The per-lane address functions are recorded for the final
// cross-block disjointness check.
func (u *uniState) execGlobal(in kernel.Instr) error {
	a := u.base(in.Ra)
	store := in.Op == kernel.OpStGlobal
	stride := int64(0)
	nActive := 0
	strideSet := false
	for l := 0; l < u.width; l++ {
		if !u.active[l] {
			continue
		}
		v := u.regs[a+l]
		if v.top {
			return u.refusef("lane %d global address depends on loaded data", l)
		}
		if !v.guarded() {
			return u.refusef("lane %d global address magnitude exceeds certifiable bounds", l)
		}
		if lo := v.at(0); lo < 0 || lo >= int64(u.globalWords) {
			return u.refusef("lane %d global address %d out of [0,%d) at block 0", l, lo, u.globalWords)
		}
		if hi := v.at(u.blocks - 1); hi < 0 || hi >= int64(u.globalWords) {
			return u.refusef("lane %d global address %d out of [0,%d) at block %d", l, hi, u.globalWords, u.blocks-1)
		}
		if !strideSet {
			stride, strideSet = v.a, true
		} else if v.a != stride {
			return u.refusef("lane %d global stride %d differs from warp stride %d", l, v.a, stride)
		}
		nActive++
	}
	if nActive > 1 && stride != 0 && stride%int64(u.width) != 0 {
		return u.refusef("global stride %d is not a multiple of the transaction width %d", stride, u.width)
	}
	if stride < 0 {
		return u.refusef("negative global stride %d", stride)
	}
	for l := 0; l < u.width; l++ {
		if !u.active[l] {
			continue
		}
		if len(u.recs) >= uniformMaxSites {
			return u.refusef("more than %d recorded global address functions", uniformMaxSites)
		}
		v := u.regs[a+l]
		u.recs = append(u.recs, accessRec{a: v.a, c: v.c, store: store})
	}
	if !store {
		u.setActive(in.Rd, func(int) affv { return affTop() })
	}
	return nil
}

// execShared certifies one shared access: addresses must be concrete (so
// the bank-conflict pattern is trivially block-invariant) and in bounds.
// Shared contents are tracked as affine values — stores land in ascending
// lane order exactly like the device, so later lanes win address conflicts.
func (u *uniState) execShared(in kernel.Instr) error {
	a := u.base(in.Ra)
	size := int64(len(u.shared))
	for l := 0; l < u.width; l++ {
		if !u.active[l] {
			continue
		}
		v := u.regs[a+l]
		if !v.isCon() {
			return u.refusef("lane %d shared address is not a block-invariant constant", l)
		}
		if v.c < 0 || v.c >= size {
			return u.refusef("lane %d shared address %d out of [0,%d)", l, v.c, size)
		}
	}
	if in.Op == kernel.OpStShared {
		s := u.base(in.Rb)
		for l := 0; l < u.width; l++ {
			if u.active[l] {
				u.shared[u.regs[a+l].c] = u.regs[s+l]
			}
		}
		return nil
	}
	d := u.base(in.Rd)
	for l := 0; l < u.width; l++ {
		if u.active[l] {
			u.regs[d+l] = u.shared[u.regs[a+l].c]
		}
	}
	return nil
}

// checkDisjoint proves no block's global stores collide with another
// block's loads or stores. With per-lane address functions a·k + c and all
// nonzero strides equal to one s, block k's address and block k”s address
// coincide exactly when the constants differ by s·(k−k'); the check reduces
// to divisibility of constant differences.
func (u *uniState) checkDisjoint() error {
	var stores, loads []accessRec
	for _, r := range u.recs {
		if r.store {
			stores = append(stores, r)
		} else {
			loads = append(loads, r)
		}
	}
	if len(stores) == 0 {
		return nil // read-only kernels are trivially disjoint
	}
	s := int64(0)
	for _, r := range u.recs {
		if r.a == 0 {
			continue
		}
		if s == 0 {
			s = r.a
		} else if r.a != s {
			return fmt.Errorf("%w: global strides %d and %d differ", ErrNotUniform, s, r.a)
		}
	}
	if u.blocks > 1 {
		for _, r := range stores {
			if r.a == 0 {
				return fmt.Errorf("%w: stride-0 global store at address %d is written by every block", ErrNotUniform, r.c)
			}
		}
	}
	if s == 0 {
		return nil // single block with constant addresses
	}
	h := u.blocks
	// store vs store: blocks k ≠ k' collide iff (c2−c1)/s = k−k' with
	// 1 ≤ |k−k'| ≤ H−1.
	for i := range stores {
		for j := i + 1; j < len(stores); j++ {
			d := stores[j].c - stores[i].c
			if d%s == 0 {
				if q := abs64(d / s); q >= 1 && q <= h-1 {
					return fmt.Errorf("%w: stores at +%d and +%d collide across blocks (offset %d strides)",
						ErrNotUniform, stores[i].c, stores[j].c, q)
				}
			}
		}
	}
	for _, ld := range loads {
		for _, st := range stores {
			d := ld.c - st.c
			if d%s != 0 {
				continue
			}
			q := d / s
			if ld.a == 0 {
				// Every block loads the fixed address; any block storing it
				// races the others.
				if q >= 0 && q <= h-1 {
					return fmt.Errorf("%w: fixed-address load at %d reads block %d's store", ErrNotUniform, ld.c, q)
				}
				continue
			}
			// Strided load of block k hits block k−q's store.
			if aq := abs64(q); aq >= 1 && aq <= h-1 {
				return fmt.Errorf("%w: load at +%d reads another block's store at +%d", ErrNotUniform, ld.c, st.c)
			}
		}
	}
	return nil
}
