package analyze

import (
	"errors"
	"testing"

	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
)

// buildVecAddLike is the canonical certifiable kernel: idx = blk·b + lane,
// guarded by idx < n, staging through shared, disjoint per-block output
// tiles.
func buildVecAddLike(t *testing.T, b, n int) *kernel.Program {
	t.Helper()
	kb := kernel.NewBuilder("uni-vecadd", 3*b)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))
	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(int64(n)))
	addr := kb.Reg("addr")
	val := kb.Reg("val")
	kb.IfDo(inRange, func() {
		kb.LdGlobal(val, idx)
		kb.StShared(j, val)
		kb.LdShared(val, j)
		kb.Add(addr, idx, kernel.Imm(int64(n)))
		kb.StGlobal(addr, val)
	})
	prog, err := kb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

func TestBlockUniformCertifiesVecAdd(t *testing.T) {
	const b, n = 32, 1 << 14
	prog := buildVecAddLike(t, b, n)
	cert, err := BlockUniform(prog, b, 2*n, n/b)
	if err != nil {
		t.Fatalf("BlockUniform refused a uniform kernel: %v", err)
	}
	if cert.Blocks != n/b || cert.Width != b || cert.Instrs == 0 {
		t.Fatalf("bad certificate: %+v", cert)
	}
}

func TestBlockUniformRefusesRaggedTail(t *testing.T) {
	// n not divisible by b: the tail block's guard masks some lanes, so the
	// trace is NOT identical across blocks and the prover must refuse.
	const b = 32
	n := 1<<14 - 7
	prog := buildVecAddLike(t, b, n)
	blocks := (n + b - 1) / b
	if _, err := BlockUniform(prog, b, 1<<16, blocks); !errors.Is(err, ErrNotUniform) {
		t.Fatalf("BlockUniform = %v, want ErrNotUniform", err)
	}
}

func TestBlockUniformRefusesCrossBlockReads(t *testing.T) {
	// Each block reads its right neighbour's output slot: load stride b,
	// constant offset shifted by exactly b → quotient 1 ∈ [1, H-1].
	const b, blocks = 8, 16
	kb := kernel.NewBuilder("uni-neighbour", 0)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	val := kb.Reg("val")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(b))
	kb.Add(idx, idx, kernel.R(j))
	kb.StGlobal(idx, j)
	addr := kb.Reg("addr")
	kb.Add(addr, idx, kernel.Imm(b)) // neighbour block's slot
	kb.LdGlobal(val, addr)
	prog, err := kb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := BlockUniform(prog, b, (blocks+1)*b, blocks); !errors.Is(err, ErrNotUniform) {
		t.Fatalf("BlockUniform = %v, want ErrNotUniform for cross-block read", err)
	}
	// The same kernel IS uniform for a single block.
	if _, err := BlockUniform(prog, b, 2*b, 1); err != nil {
		t.Fatalf("single block should certify: %v", err)
	}
}

func TestBlockUniformRefusesSharedStoreToAllBlocks(t *testing.T) {
	// A fixed global address written by every block: order-dependent.
	kb := kernel.NewBuilder("uni-fixedstore", 0)
	blk := kb.Reg("block")
	kb.BlockID(blk)
	kb.StGlobal(blk, blk) // address = k: stride 1, not a width multiple — also refused
	prog, err := kb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := BlockUniform(prog, 4, 1024, 8); !errors.Is(err, ErrNotUniform) {
		t.Fatalf("BlockUniform = %v, want ErrNotUniform", err)
	}

	kb2 := kernel.NewBuilder("uni-fixedstore2", 0)
	z := kb2.Reg("zero")
	kb2.Const(z, 0)
	kb2.StGlobal(z, z) // every block writes word 0
	prog2, err := kb2.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := BlockUniform(prog2, 4, 1024, 8); !errors.Is(err, ErrNotUniform) {
		t.Fatalf("BlockUniform = %v, want ErrNotUniform for fixed-address store", err)
	}
	// But it is certifiable for one block.
	if _, err := BlockUniform(prog2, 4, 1024, 1); err != nil {
		t.Fatalf("single-block fixed store should certify: %v", err)
	}
}

func TestBlockUniformRefusesDataDependentControl(t *testing.T) {
	// Branching on loaded data can diverge across blocks.
	kb := kernel.NewBuilder("uni-datadep", 0)
	j := kb.Reg("lane")
	v := kb.Reg("v")
	kb.LaneID(j)
	kb.LdGlobal(v, j)
	kb.IfDo(v, func() {
		kb.Add(j, j, kernel.Imm(1))
	})
	prog, err := kb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := BlockUniform(prog, 4, 1024, 64); !errors.Is(err, ErrNotUniform) {
		t.Fatalf("BlockUniform = %v, want ErrNotUniform for data-dependent branch", err)
	}
}

func TestBlockUniformMaskedConstDivide(t *testing.T) {
	// divi #0 under an always-false mask must not refuse certification for
	// the wrong reason (it never executes on an active lane) — the whole
	// if-body is skipped, mirroring the device.
	kb := kernel.NewBuilder("uni-maskeddiv", 0)
	z := kb.Reg("zero")
	v := kb.Reg("v")
	kb.Const(z, 0)
	kb.IfDo(z, func() {
		kb.Div(v, v, kernel.Imm(0))
	})
	prog, err := kb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := BlockUniform(prog, 4, 1024, 64); err != nil {
		t.Fatalf("masked divi #0 should certify: %v", err)
	}
}

// buildAtomicVecAddLike is buildVecAddLike with a single conflict-free
// shared atomadd spliced in — the ONLY difference from the certifiable
// baseline, so a refusal is attributable to the atomic alone.
func buildAtomicVecAddLike(t *testing.T, b, n int) *kernel.Program {
	t.Helper()
	kb := kernel.NewBuilder("uni-vecadd-atomic", 3*b)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))
	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(int64(n)))
	addr := kb.Reg("addr")
	val := kb.Reg("val")
	old := kb.Reg("old")
	kb.IfDo(inRange, func() {
		kb.LdGlobal(val, idx)
		kb.AtomAdd(kernel.AtomShared, old, j, val) // per-lane cells: no conflicts
		kb.LdShared(val, j)
		kb.Add(addr, idx, kernel.Imm(int64(n)))
		kb.StGlobal(addr, val)
	})
	prog, err := kb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

// TestBlockUniformRefusesAtomics pins the certification boundary: the
// vecadd-like baseline certifies (TestBlockUniformCertifiesVecAdd), and the
// same kernel with one shared atomadd — even conflict-free, on per-lane
// cells — must be refused.
func TestBlockUniformRefusesAtomics(t *testing.T) {
	const b, n = 32, 1 << 14
	prog := buildAtomicVecAddLike(t, b, n)
	if _, err := BlockUniform(prog, b, 2*n, n/b); !errors.Is(err, ErrNotUniform) {
		t.Fatalf("BlockUniform = %v, want ErrNotUniform for a kernel with atomics", err)
	}
}

// TestMemoFallsBackToFullSimulationOnAtomics is the end-to-end pin for the
// memoization boundary under the REAL prover: a memoization-eligible kernel
// engages block memoization, its atomic twin does not — it silently falls
// back to full simulation with results byte-identical to a prover-less
// device.
func TestMemoFallsBackToFullSimulationOnAtomics(t *testing.T) {
	const b, blocks = 32, 512
	n := b * blocks
	cfg := simgpu.GTX650()
	cfg.GlobalWords = 2 * n

	run := func(prog *kernel.Program, withProver bool) (simgpu.KernelResult, []kernel.Word, int64) {
		dev, err := simgpu.New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if withProver {
			dev.SetUniformProver(UniformProver)
		}
		raw := dev.Global().Raw()
		for i := 0; i < n; i++ {
			raw[i] = int64(i*5 - 100)
		}
		res, err := dev.Launch(prog, blocks)
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		out := append([]kernel.Word(nil), dev.Global().Raw()...)
		return res, out, dev.MemoSkips()
	}

	// Control: the atomics-free baseline is certified and memoized.
	base := buildVecAddLike(t, b, n)
	if _, _, skips := run(base, true); skips != 1 {
		t.Fatalf("baseline kernel engaged memoization %d times, want 1", skips)
	}

	// Pin: the atomic twin must fall back to full simulation...
	atomic := buildAtomicVecAddLike(t, b, n)
	memoRes, memoMem, skips := run(atomic, true)
	if skips != 0 {
		t.Fatalf("atomic kernel engaged memoization %d times, want full-simulation fallback", skips)
	}
	// ...and be byte-identical to a device that never memoizes.
	fullRes, fullMem, _ := run(atomic, false)
	if memoRes.Stats != fullRes.Stats {
		t.Errorf("stats diverge:\nprover: %+v\nplain:  %+v", memoRes.Stats, fullRes.Stats)
	}
	if memoRes.Time != fullRes.Time {
		t.Errorf("time diverges: prover %v, plain %v", memoRes.Time, fullRes.Time)
	}
	for i := range fullMem {
		if fullMem[i] != memoMem[i] {
			t.Fatalf("global[%d] diverges: prover %d, plain %d", i, memoMem[i], fullMem[i])
		}
	}
}
