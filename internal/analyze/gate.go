package analyze

import (
	"errors"
	"fmt"
	"io"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
)

// Mode selects the pre-flight behaviour of a launch Gate.
type Mode int

const (
	// ModeOff disables the pre-flight entirely.
	ModeOff Mode = iota
	// ModeWarn analyses every kernel and reports findings, but never
	// refuses a launch.
	ModeWarn
	// ModeError additionally refuses launches whose kernels carry
	// error-severity findings, wrapping ErrRefused.
	ModeError
)

// String renders the conventional flag spelling.
func (m Mode) String() string {
	switch m {
	case ModeWarn:
		return "warn"
	case ModeError:
		return "error"
	default:
		return "off"
	}
}

// ParseMode reads a Mode from its flag spelling ("off", "warn", "error";
// "" means off).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "off":
		return ModeOff, nil
	case "warn":
		return ModeWarn, nil
	case "error":
		return ModeError, nil
	}
	return ModeOff, fmt.Errorf("analyze: unknown lint mode %q (want off, warn or error)", s)
}

// ErrRefused is wrapped by Gate errors when ModeError finds an
// error-severity problem in a kernel about to launch.
var ErrRefused = errors.New("launch refused by static analysis")

// Gate builds a pre-launch hook for simgpu.Host.SetPreLaunch: it analyses
// every kernel against the machine before it runs, writes the textual report
// for kernels with findings to w (nil discards it), and under ModeError
// refuses launches with error-severity findings. cost may be nil to skip
// the static cost estimate. Returns nil for ModeOff, so callers can install
// the result unconditionally.
func Gate(m Machine, cost *core.CostParams, mode Mode, w io.Writer) func(*kernel.Program, int) error {
	if mode == ModeOff {
		return nil
	}
	return func(prog *kernel.Program, blocks int) error {
		rep, err := Program(prog, Options{Machine: m, Blocks: blocks, Cost: cost})
		if err != nil {
			return fmt.Errorf("analyze: %s: %w", prog.Name, err)
		}
		if w != nil && len(rep.Findings) > 0 {
			fmt.Fprint(w, rep.Text())
		}
		if mode == ModeError && rep.ErrorCount() > 0 {
			// Findings are sorted worst-first, so [0] names the problem.
			return fmt.Errorf("%w: kernel %s: %d error finding(s), first: %s",
				ErrRefused, prog.Name, rep.ErrorCount(), rep.Findings[0])
		}
		return nil
	}
}
