package analyze_test

import (
	"testing"

	"atgpu/internal/algorithms"
	"atgpu/internal/analyze"
	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
)

// TestDifferentialMonteCarlo proves the atomic transfer functions exact on a
// precise analysis: every address in the kernel (the block accumulator, the
// global result word) is statically known, so the analyzer's conflict degrees
// — b-way on the shared accumulator, block-count-way on the global word —
// must equal the simulator's observed serialisation counter for counter,
// on both the wide and the tiny device.
func TestDifferentialMonteCarlo(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  func(int) simgpu.Config
		n    int
	}{
		{"wide", wideConfig, 1000},
		{"wide-tail", wideConfig, 100},
		{"tiny", tinyConfig, 37},
	} {
		t.Run(tc.name, func(t *testing.T) {
			alg := algorithms.MonteCarlo{N: tc.n, Trials: 8}
			cfg := tc.cfg(alg.GlobalWords() + 64)
			h := newDiffHost(t, cfg)
			launches := attachChecker(t, h, cfg)
			got, err := alg.Run(h)
			if err != nil {
				t.Fatalf("n=%d: %v", tc.n, err)
			}
			want, err := alg.MonteCarloReference()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("n=%d: hits = %d, want %d", tc.n, got, want)
			}
			if *launches == 0 {
				t.Fatalf("n=%d: no launches observed", tc.n)
			}
		})
	}
}

// TestDifferentialTopK covers the global atomic-max cascade: the K slot
// addresses are loop-counter uniform (all active lanes hit the same slot each
// step), the analyzer's worst global-atomic case, and statically precise.
func TestDifferentialTopK(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  func(int) simgpu.Config
		n, k int
	}{
		{"wide", wideConfig, 1000, 8},
		{"wide-tail", wideConfig, 100, 4},
		{"tiny", tinyConfig, 33, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			alg := algorithms.TopK{N: tc.n, K: tc.k}
			cfg := tc.cfg(alg.GlobalWords() + 64)
			h := newDiffHost(t, cfg)
			launches := attachChecker(t, h, cfg)
			if _, err := alg.Run(h, randWords(tc.n, int64(tc.n))); err != nil {
				t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
			}
			if *launches == 0 {
				t.Fatalf("n=%d k=%d: no launches observed", tc.n, tc.k)
			}
		})
	}
}

// attachSoundnessChecker is the harness for workloads whose atomic addresses
// are data-dependent (histogram bins, compaction keep flags): the analysis is
// deliberately imprecise there, so instead of exact equality it must deliver
// a sound worst-case bound — static atomic counters at or above whatever the
// device observes on any input — while the access count, which only depends
// on the (statically known) active masks, stays exact when unconditional.
func attachSoundnessChecker(t *testing.T, h *simgpu.Host, cfg simgpu.Config) *int {
	t.Helper()
	cp := testCostParams(cfg)
	launches := 0
	h.SetLaunchObserver(func(prog *kernel.Program, numBlocks int, res simgpu.KernelResult) {
		launches++
		rep, err := analyze.Program(prog, analyze.Options{
			Machine: analyze.FromConfig(cfg),
			Blocks:  numBlocks,
			Cost:    &cp,
		})
		if err != nil {
			t.Fatalf("%s blocks=%d: analyze: %v", prog.Name, numBlocks, err)
		}
		if rep.Precise {
			t.Errorf("%s blocks=%d: analysis claims precision despite data-dependent atomics", prog.Name, numBlocks)
		}
		for _, f := range rep.Findings {
			if f.Severity == analyze.SevError {
				t.Errorf("%s blocks=%d: unexpected error finding: %s", prog.Name, numBlocks, f)
			}
		}
		st, obs := rep.Stats, res.Stats
		bounds := []struct {
			field     string
			got, want int64
		}{
			{"AtomicAccesses", st.AtomicAccesses, obs.AtomicAccesses},
			{"AtomicSerialisations", st.AtomicSerialisations, obs.AtomicSerialisations},
			{"MaxAtomicDegree", int64(st.MaxAtomicDegree), int64(obs.MaxAtomicDegree)},
			{"MaxWarpAtomicSerial", st.MaxWarpAtomicSerial, obs.MaxWarpAtomicSerial},
		}
		for _, b := range bounds {
			if b.got < b.want {
				t.Errorf("%s blocks=%d: static %s = %d below observed %d — the bound is unsound",
					prog.Name, numBlocks, b.field, b.got, b.want)
			}
		}
		if rep.Cost == nil {
			t.Errorf("%s: no cost estimate", prog.Name)
		} else if rep.Cost.ContentionFactor < 1 {
			t.Errorf("%s: contention factor %v below 1", prog.Name, rep.Cost.ContentionFactor)
		}
	})
	return &launches
}

// TestDifferentialAtomicSoundness runs the data-dependent atomic workloads —
// contended histogram, privatized histogram, stream compaction — under the
// soundness harness on both devices, with inputs chosen to push the observed
// contention toward (skewed histogram) and away from (privatized, sparse
// compaction) the static bound.
func TestDifferentialAtomicSoundness(t *testing.T) {
	run := func(t *testing.T, cfgFor func(int) simgpu.Config) {
		t.Run("histogram-skewed", func(t *testing.T) {
			const n, bins = 256, 8
			alg := algorithms.Histogram{N: n, Bins: bins}
			cfg := cfgFor(alg.GlobalWords() + 64)
			h := newDiffHost(t, cfg)
			launches := attachSoundnessChecker(t, h, cfg)
			in := make([]algorithms.Word, n)
			for i := range in {
				in[i] = 3 // every value lands in one bin: the bound is realised
			}
			got, err := alg.Run(h, in)
			if err != nil {
				t.Fatal(err)
			}
			want, err := algorithms.HistogramReference(in, bins)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bin %d: got %d want %d", i, got[i], want[i])
				}
			}
			if *launches == 0 {
				t.Fatal("no launches observed")
			}
		})
		t.Run("histogram-privatized", func(t *testing.T) {
			const n, bins = 256, 8
			alg := algorithms.Histogram{N: n, Bins: bins, Privatized: true}
			cfg := cfgFor(alg.GlobalWords() + 64)
			h := newDiffHost(t, cfg)
			launches := attachSoundnessChecker(t, h, cfg)
			in := make([]algorithms.Word, n)
			for i := range in {
				in[i] = algorithms.Word(i % bins)
			}
			if _, err := alg.Run(h, in); err != nil {
				t.Fatal(err)
			}
			if *launches == 0 {
				t.Fatal("no launches observed")
			}
		})
		t.Run("compact", func(t *testing.T) {
			const n = 256
			alg := algorithms.Compact{N: n}
			cfg := cfgFor(alg.GlobalWords() + 64)
			h := newDiffHost(t, cfg)
			launches := attachSoundnessChecker(t, h, cfg)
			in := randWords(n, 99)
			for i := 0; i < n; i += 2 {
				in[i] = 0 // half the lanes keep: observed well below the bound
			}
			if _, err := alg.Run(h, in); err != nil {
				t.Fatal(err)
			}
			if *launches == 0 {
				t.Fatal("no launches observed")
			}
		})
	}
	t.Run("wide", func(t *testing.T) { run(t, wideConfig) })
	t.Run("tiny", func(t *testing.T) { run(t, tinyConfig) })
}
