// Package analyze statically checks kernels against the abstract machine
// ATGPU(p, b, M, G) before they run. A shared abstract interpretation —
// per-lane interval values with may/must SIMT masks, executed block by
// block — feeds five analyzers:
//
//   - race: shared-memory conflicts between lanes with no barrier between,
//   - divergence: barriers (and uniform branches) reachable under
//     thread-dependent control flow,
//   - bounds: out-of-range global/shared addresses and division traps,
//   - memory: per-site bank-conflict and coalescing-degree prediction,
//   - cost: the kernel terms of the paper's Expressions (1) and (2)
//     predicted from static counters.
//
// Per-lane interval vectors strictly generalise affine forms in
// (tid, bid, bdim): an affine value a·tid+b is just the vector of its lane
// values, each kept exact, and non-affine thread expressions (tid%k, tid^m)
// stay exact too. On kernels whose branches and addresses never depend on
// loaded data the interpretation is bit-identical to the simulator, so the
// predicted scheduling-independent counters match the device's observed
// ones exactly; Report.Precise records when that guarantee holds.
package analyze

import (
	"errors"
	"fmt"

	"atgpu/internal/kernel"
)

// ErrBadWidth reports a machine width outside the simulator's 1..64 range.
var ErrBadWidth = errors.New("analyze: machine width must be in 1..64")

// ErrBadBlocks reports a negative launch size.
var ErrBadBlocks = errors.New("analyze: negative block count")

// analysis accumulates the whole-launch state shared by every block run.
type analysis struct {
	prog     *kernel.Program
	opt      Options
	stats    StaticStats
	findings []Finding
	seen     map[findKey]struct{}
	sites    []Site
	precise  bool
	aborted  bool
}

type findKey struct {
	analyzer string
	pc       int
}

// reportf records a finding, deduplicated by (analyzer, pc): one diagnostic
// per analyzer per instruction, witnessed by its first occurrence.
func (a *analysis) reportf(f Finding, format string, args ...interface{}) {
	key := findKey{f.Analyzer, f.PC}
	if _, dup := a.seen[key]; dup {
		return
	}
	a.seen[key] = struct{}{}
	if len(a.findings) >= a.opt.maxFindings() {
		return
	}
	f.Message = fmt.Sprintf(format, args...)
	if f.Line == 0 {
		f.Line = a.prog.Line(f.PC)
	}
	a.findings = append(a.findings, f)
}

// site returns the accumulator for a memory instruction, creating it on
// first access.
func (a *analysis) site(pc int, op kernel.Op) *Site {
	s := &a.sites[pc]
	if s.Accesses == 0 {
		s.PC = pc
		s.Line = a.prog.Line(pc)
		s.Op = op
		s.OpName = op.String()
	}
	return s
}

// Program statically analyses one launch of prog with opt.Blocks thread
// blocks on opt.Machine. It returns an error only for malformed inputs (an
// invalid program, width, or block count); everything the analyzers have to
// say about a well-formed program — including conditions the device would
// trap on — comes back as Findings in the Report.
func Program(prog *kernel.Program, opt Options) (*Report, error) {
	if prog == nil {
		return nil, errors.New("analyze: nil program")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if opt.Machine.Width < 1 || opt.Machine.Width > 64 {
		return nil, ErrBadWidth
	}
	if opt.Blocks < 0 {
		return nil, ErrBadBlocks
	}

	a := &analysis{
		prog:    prog,
		opt:     opt,
		seen:    make(map[findKey]struct{}),
		sites:   make([]Site, len(prog.Instrs)),
		precise: true,
	}

	rep := &Report{
		Kernel: prog.Name,
		Width:  opt.Machine.Width,
		Blocks: opt.Blocks,
	}

	// The device records the occupancy bound before deciding whether any
	// block runs, and refuses the launch outright when a block's shared
	// allocation exceeds M.
	occ := opt.Machine.Occupancy(prog.SharedWords)
	a.stats.OccupancyLimit = occ
	if occ == 0 && prog.SharedWords > 0 {
		a.reportf(Finding{Analyzer: AnalyzerCost, Severity: SevError, PC: 0},
			"kernel allocates %d shared words per block but the machine has M=%d: no block fits, the device refuses this launch",
			prog.SharedWords, opt.Machine.SharedWords)
		a.aborted = true
	}

	if !a.aborted {
		br := newBlockRun(a, 0)
		for blk := 0; blk < opt.Blocks; blk++ {
			if blk > 0 {
				br.reset(blk)
			}
			if !br.run() {
				// The device trap (or budget stop) aborts the whole launch;
				// counters from completed blocks stay, mirroring nothing —
				// the launch never reports stats — so mark approximate.
				a.aborted = true
				a.precise = false
				break
			}
		}
	}

	sortFindings(a.findings)
	rep.Findings = a.findings
	rep.Stats = a.stats
	rep.Precise = a.precise && !a.aborted
	for pc := range a.sites {
		if a.sites[pc].Accesses > 0 {
			rep.Sites = append(rep.Sites, a.sites[pc])
		}
	}
	if opt.Cost != nil {
		rep.Cost = costEstimate(*opt.Cost, opt.Machine, prog.SharedWords, opt.Blocks, a.stats)
	}
	return rep, nil
}
