package models

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPRAMCost(t *testing.T) {
	// Brent: max(depth, work/p).
	got, err := PRAMCost(1000, 10, 100)
	if err != nil || got != 10 {
		t.Fatalf("PRAMCost = %g, %v; want 10 (work-bound side: 1000/100)", got, err)
	}
	got, err = PRAMCost(1000, 50, 100)
	if err != nil || got != 50 {
		t.Fatalf("PRAMCost = %g, %v; want 50 (depth-bound)", got, err)
	}
	if _, err := PRAMCost(1, 1, 0); !errors.Is(err, ErrBadModelParams) {
		t.Errorf("p=0: %v", err)
	}
	if _, err := PRAMCost(-1, 1, 1); !errors.Is(err, ErrBadModelParams) {
		t.Errorf("negative work: %v", err)
	}
}

// PRAM property: more processors never slow the computation, and time is
// always at least the critical path.
func TestPRAMCostProperties(t *testing.T) {
	f := func(work, depth uint16, p uint8) bool {
		pp := int(p%64) + 1
		c1, err := PRAMCost(float64(work), float64(depth), pp)
		if err != nil {
			return false
		}
		c2, err := PRAMCost(float64(work), float64(depth), pp+1)
		if err != nil {
			return false
		}
		return c2 <= c1 && c1 >= float64(depth)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBSPCost(t *testing.T) {
	steps := []BSPSuperstep{{W: 100, H: 10}, {W: 50, H: 5}}
	got, err := BSPCost(steps, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := (100.0 + 20 + 7) + (50 + 10 + 7)
	if got != want {
		t.Fatalf("BSPCost = %g, want %g", got, want)
	}
	if _, err := BSPCost(steps, -1, 0); !errors.Is(err, ErrBadModelParams) {
		t.Errorf("negative g: %v", err)
	}
	if _, err := BSPCost([]BSPSuperstep{{W: -1}}, 1, 1); !errors.Is(err, ErrBadModelParams) {
		t.Errorf("negative w: %v", err)
	}
	if got, _ := BSPCost(nil, 1, 1); got != 0 {
		t.Errorf("empty program cost = %g", got)
	}
}

func TestBSPRAMCost(t *testing.T) {
	steps := []BSPRAMSuperstep{{W: 10, M: 4}}
	got, err := BSPRAMCost(steps, 3, 2)
	if err != nil || got != 10+12+2 {
		t.Fatalf("BSPRAMCost = %g, %v", got, err)
	}
	if _, err := BSPRAMCost(steps, 1, -1); !errors.Is(err, ErrBadModelParams) {
		t.Errorf("negative l: %v", err)
	}
	if _, err := BSPRAMCost([]BSPRAMSuperstep{{M: -1}}, 1, 1); !errors.Is(err, ErrBadModelParams) {
		t.Errorf("negative m: %v", err)
	}
}

func TestPEMCost(t *testing.T) {
	got, err := PEMCost(100, 10, 40)
	if err != nil || got != 500 {
		t.Fatalf("PEMCost = %g, %v; want 500", got, err)
	}
	if _, err := PEMCost(-1, 0, 0); !errors.Is(err, ErrBadModelParams) {
		t.Errorf("negative comp: %v", err)
	}
}

func TestPEMScanIOs(t *testing.T) {
	got, err := PEMScanIOs(1000, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got != math.Ceil(1000.0/128) {
		t.Fatalf("PEMScanIOs = %g", got)
	}
	if _, err := PEMScanIOs(1, 0, 1); !errors.Is(err, ErrBadModelParams) {
		t.Errorf("p=0: %v", err)
	}
}

// BSP property: cost is additive over supersteps and monotone in g and l.
func TestBSPCostProperties(t *testing.T) {
	f := func(ws, hs [4]uint8, g, l uint8) bool {
		steps := make([]BSPSuperstep, 4)
		for i := range steps {
			steps[i] = BSPSuperstep{W: float64(ws[i]), H: float64(hs[i])}
		}
		c, err := BSPCost(steps, float64(g), float64(l))
		if err != nil {
			return false
		}
		// Additivity.
		c1, _ := BSPCost(steps[:2], float64(g), float64(l))
		c2, _ := BSPCost(steps[2:], float64(g), float64(l))
		if math.Abs(c-(c1+c2)) > 1e-9 {
			return false
		}
		// Monotone in g.
		cg, _ := BSPCost(steps, float64(g)+1, float64(l))
		return cg >= c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWhyNotGPU(t *testing.T) {
	for _, m := range []Model{PRAM, BSP, BSPRAM, PEM} {
		if WhyNotGPU(m) == "" {
			t.Errorf("%v: missing reason", m)
		}
	}
	if WhyNotGPU(ATGPU) != "" {
		t.Error("ATGPU should have no disqualifier")
	}
}
