package models

import (
	"math"
	"strings"
	"testing"

	"atgpu/internal/core"
)

func testAnalysis() *core.Analysis {
	return &core.Analysis{
		Name:   "t",
		Params: core.Params{P: 128, B: 32, M: 100, G: 10000},
		Rounds: []core.Round{{
			Time: 10, IO: 5, Blocks: 4, SharedWords: 25,
			InWords: 100, InTransactions: 2, OutWords: 50, OutTransactions: 1,
		}},
	}
}

func testCost() core.CostParams {
	return core.CostParams{
		Gamma: 1000, Lambda: 4, Sigma: 0.5,
		Alpha: 0.01, Beta: 0.001, KPrime: 2, H: 4,
	}
}

// TestSWGPUCostIsGPUCostMinusTransfer verifies the paper's §IV methodology
// literally: "the GPU cost function of our model minus the data transfer as
// the SWGPU cost".
func TestSWGPUCostIsGPUCostMinusTransfer(t *testing.T) {
	a := testAnalysis()
	c := testCost()
	gpu, err := core.GPUCost(a, c)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := core.GPUCostBreakdown(a, c)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := SWGPUCost(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sw-(gpu-bd.Transfer())) > 1e-12 {
		t.Fatalf("SWGPU = %g, want GPU-cost %g − transfer %g", sw, gpu, bd.Transfer())
	}
	if sw >= gpu {
		t.Fatal("SWGPU cost should be strictly below ATGPU cost when transfer > 0")
	}
}

func TestSWGPUCostBreakdown(t *testing.T) {
	bd, err := SWGPUCostBreakdown(testAnalysis(), testCost())
	if err != nil {
		t.Fatal(err)
	}
	if bd.TransferIn != 0 || bd.TransferOut != 0 {
		t.Fatalf("SWGPU breakdown keeps transfer: %+v", bd)
	}
	if bd.Compute <= 0 || bd.MemoryIO <= 0 || bd.Sync <= 0 {
		t.Fatalf("SWGPU breakdown missing kernel terms: %+v", bd)
	}
}

func TestSWGPUCostPropagatesErrors(t *testing.T) {
	bad := testCost()
	bad.Gamma = 0
	if _, err := SWGPUCost(testAnalysis(), bad); err == nil {
		t.Error("SWGPUCost accepted bad params")
	}
	if _, err := SWGPUCostBreakdown(testAnalysis(), bad); err == nil {
		t.Error("SWGPUCostBreakdown accepted bad params")
	}
}

func TestCapturedFraction(t *testing.T) {
	if got := CapturedFraction(16, 100); got != 0.16 {
		t.Fatalf("CapturedFraction = %g", got)
	}
	if CapturedFraction(1, 0) != 0 {
		t.Fatal("zero total should give 0")
	}
	if CapturedFraction(-1, 10) != 0 {
		t.Fatal("negative part should clamp to 0")
	}
}

// TestTableIMatchesPaper pins the feature matrix to the paper's Table I
// row by row.
func TestTableIMatchesPaper(t *testing.T) {
	type row struct {
		f            Feature
		agpu, sw, at bool
	}
	rows := []row{
		{FeatPseudocode, true, false, true},
		{FeatTimeComplexity, true, true, true},
		{FeatIOComplexity, true, true, true},
		{FeatSpaceComplexity, true, false, true},
		{FeatSharedMemoryLimit, true, false, true},
		{FeatSynchronisation, false, true, true},
		{FeatCostFunction, false, true, true},
		{FeatGlobalMemoryLimit, false, false, true},
		{FeatHostDeviceTransfer, false, false, true},
	}
	if len(rows) != len(Features()) {
		t.Fatalf("test covers %d features, table has %d", len(rows), len(Features()))
	}
	for _, r := range rows {
		if Has(AGPU, r.f) != r.agpu {
			t.Errorf("AGPU %s = %v, want %v", r.f, Has(AGPU, r.f), r.agpu)
		}
		if Has(SWGPU, r.f) != r.sw {
			t.Errorf("SWGPU %s = %v, want %v", r.f, Has(SWGPU, r.f), r.sw)
		}
		if Has(ATGPU, r.f) != r.at {
			t.Errorf("ATGPU %s = %v, want %v", r.f, Has(ATGPU, r.f), r.at)
		}
	}
}

// TestATGPUDominates: ATGPU has every feature any compared model has —
// the paper's "first abstract model with this comprehensive array".
func TestATGPUDominates(t *testing.T) {
	for _, f := range Features() {
		for _, m := range ComparedModels() {
			if Has(m, f) && !Has(ATGPU, f) {
				t.Errorf("%s has %s but ATGPU does not", m, f)
			}
		}
	}
}

func TestTableIRendering(t *testing.T) {
	out := TableI()
	for _, want := range []string{"Item", "AGPU", "SWGPU", "ATGPU",
		"Host/Device Data Transfer", "Global Memory Limit"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableI missing %q", want)
		}
	}
	// The transfer row must mark only ATGPU.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Host/Device Data Transfer") {
			if strings.Count(line, "x") != 1 {
				t.Errorf("transfer row should have exactly one mark: %q", line)
			}
		}
	}
}

func TestModelStrings(t *testing.T) {
	names := map[Model]string{
		PRAM: "PRAM", BSP: "BSP", BSPRAM: "BSPRAM", PEM: "PEM",
		AGPU: "AGPU", SWGPU: "SWGPU", ATGPU: "ATGPU",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%v.String() = %q", m, m.String())
		}
		if m.Description() == "" {
			t.Errorf("%v has no description", m)
		}
	}
	if Model(99).String() == "" {
		t.Error("unknown model should still print")
	}
	if Model(99).Description() != "" {
		t.Error("unknown model should have empty description")
	}
}

func TestFeatureStrings(t *testing.T) {
	for _, f := range Features() {
		if f.String() == "" || strings.HasPrefix(f.String(), "feature(") {
			t.Errorf("feature %d has no name", f)
		}
	}
	if !strings.HasPrefix(Feature(99).String(), "feature(") {
		t.Error("unknown feature should print its code")
	}
}

func TestAGPUReportString(t *testing.T) {
	r := AGPUReport{Algorithm: "x", TimeComplexity: "O(1)", IOComplexity: "O(k)",
		GlobalComplexity: "O(n)", SharedComplexity: "O(b)"}
	s := r.String()
	for _, want := range []string{"x", "O(1)", "O(k)", "O(n)", "O(b)"} {
		if !strings.Contains(s, want) {
			t.Errorf("AGPUReport missing %q: %s", want, s)
		}
	}
}
