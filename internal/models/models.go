// Package models implements the baseline abstract GPU models that ATGPU is
// compared against — SWGPU (Sitchinava & Weichert) and AGPU (Koike &
// Sadakane) — plus descriptors of the classical parallel models the paper
// surveys (PRAM, BSP, BSPRAM, PEM), and the Table I feature-comparison
// matrix.
//
// Per the paper's evaluation methodology (§IV): "We use the GPU cost
// function of our model as the ATGPU cost, and the GPU cost function of
// our model minus the data transfer as the SWGPU cost." SWGPUCost
// implements exactly that subtraction. AGPU analyses algorithms only
// asymptotically (time, I/O, space) and has no cost function, so the AGPU
// baseline is an asymptotic report type.
package models

import (
	"fmt"
	"strings"

	"atgpu/internal/core"
)

// SWGPUCost evaluates the SWGPU baseline cost of an analysed algorithm:
// the occupancy-aware GPU-cost (Expression 2) with the host↔device data
// transfer terms TI and TO removed — SWGPU models rounds, computation,
// memory requests and synchronisation but not transfer.
func SWGPUCost(a *core.Analysis, c core.CostParams) (float64, error) {
	b, err := core.GPUCostBreakdown(a, c)
	if err != nil {
		return 0, err
	}
	return b.Compute + b.MemoryIO + b.Sync, nil
}

// SWGPUCostBreakdown returns the SWGPU components (transfer zeroed).
func SWGPUCostBreakdown(a *core.Analysis, c core.CostParams) (core.Breakdown, error) {
	b, err := core.GPUCostBreakdown(a, c)
	if err != nil {
		return core.Breakdown{}, err
	}
	b.TransferIn, b.TransferOut = 0, 0
	return b, nil
}

// CapturedFraction returns the share of an observed total running time that
// a predicted cost accounts for, scaled via the observed kernel time: the
// paper reports e.g. "the SWGPU captures on average only 16% of the actual
// running time for the vector addition example". Both arguments are in
// seconds.
func CapturedFraction(predictedOrObservedPart, observedTotal float64) float64 {
	if observedTotal <= 0 {
		return 0
	}
	f := predictedOrObservedPart / observedTotal
	if f < 0 {
		return 0
	}
	return f
}

// AGPUReport is the AGPU-style asymptotic account of an algorithm: time,
// I/O and space complexity plus the occupancy expression, with no cost
// function and no synchronisation or transfer modelling.
type AGPUReport struct {
	Algorithm        string
	TimeComplexity   string // e.g. "O(1)", "O(log b · log n)"
	IOComplexity     string
	GlobalComplexity string
	SharedComplexity string
}

// String renders the report.
func (r AGPUReport) String() string {
	return fmt.Sprintf("AGPU[%s]: time=%s io=%s global=%s shared=%s",
		r.Algorithm, r.TimeComplexity, r.IOComplexity,
		r.GlobalComplexity, r.SharedComplexity)
}

// Model identifies an abstract parallel model discussed in the paper.
type Model int

// The models of the paper's Sections I-B, I-C and Table I.
const (
	PRAM Model = iota
	BSP
	BSPRAM
	PEM
	AGPU
	SWGPU
	ATGPU
)

// String names the model.
func (m Model) String() string {
	switch m {
	case PRAM:
		return "PRAM"
	case BSP:
		return "BSP"
	case BSPRAM:
		return "BSPRAM"
	case PEM:
		return "PEM"
	case AGPU:
		return "AGPU"
	case SWGPU:
		return "SWGPU"
	case ATGPU:
		return "ATGPU"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Description summarises why each classical model falls short of the GPU,
// per the paper's Section I-B.
func (m Model) Description() string {
	switch m {
	case PRAM:
		return "Shared-memory model with asynchronous processors; no memory hierarchy, so it misses components needed to model GPU computation."
	case BSP:
		return "Distributed-memory rounds of compute/communicate/synchronise; no shared memory between processors, so it cannot capture a GPU."
	case BSPRAM:
		return "BSP plus shared memory accessible to all processors; closer to a GPU but has no notion of a warp."
	case PEM:
		return "Private caches plus block-transfer main memory; block transactions resemble global memory access but there is no per-group shared memory and no warp."
	case AGPU:
		return "Abstract GPU model of Koike & Sadakane: asymptotic time/I-O/space analysis, pseudocode, shared memory limit; no synchronisation, cost function, global memory limit or host transfer."
	case SWGPU:
		return "Model of Sitchinava & Weichert: rounds delimited by host synchronisation with a cost function over operations, memory requests and synchronisations; no host transfer or memory limits."
	case ATGPU:
		return "This paper's model: SWGPU/AGPU architecture plus a global memory size constraint, pseudocode with explicit transfer operators, and cost functions including host/device data transfer."
	}
	return ""
}

// Feature is a capability row of Table I.
type Feature int

// The rows of Table I, in paper order.
const (
	FeatPseudocode Feature = iota
	FeatTimeComplexity
	FeatIOComplexity
	FeatSpaceComplexity
	FeatSharedMemoryLimit
	FeatSynchronisation
	FeatCostFunction
	FeatGlobalMemoryLimit
	FeatHostDeviceTransfer
	numFeatures
)

// String names the feature as in Table I.
func (f Feature) String() string {
	switch f {
	case FeatPseudocode:
		return "Pseudocode"
	case FeatTimeComplexity:
		return "Time Complexity"
	case FeatIOComplexity:
		return "I/O Complexity"
	case FeatSpaceComplexity:
		return "Space Complexity"
	case FeatSharedMemoryLimit:
		return "Shared Memory Limit"
	case FeatSynchronisation:
		return "Synchronisation"
	case FeatCostFunction:
		return "Cost Function"
	case FeatGlobalMemoryLimit:
		return "Global Memory Limit"
	case FeatHostDeviceTransfer:
		return "Host/Device Data Transfer"
	}
	return fmt.Sprintf("feature(%d)", int(f))
}

// Features returns all Table I rows in order.
func Features() []Feature {
	fs := make([]Feature, numFeatures)
	for i := range fs {
		fs[i] = Feature(i)
	}
	return fs
}

// featureMatrix encodes Table I of the paper.
var featureMatrix = map[Model]map[Feature]bool{
	AGPU: {
		FeatPseudocode:        true,
		FeatTimeComplexity:    true,
		FeatIOComplexity:      true,
		FeatSpaceComplexity:   true,
		FeatSharedMemoryLimit: true,
	},
	SWGPU: {
		FeatTimeComplexity:  true,
		FeatIOComplexity:    true,
		FeatSynchronisation: true,
		FeatCostFunction:    true,
	},
	ATGPU: {
		FeatPseudocode:         true,
		FeatTimeComplexity:     true,
		FeatIOComplexity:       true,
		FeatSpaceComplexity:    true,
		FeatSharedMemoryLimit:  true,
		FeatSynchronisation:    true,
		FeatCostFunction:       true,
		FeatGlobalMemoryLimit:  true,
		FeatHostDeviceTransfer: true,
	},
}

// Has reports whether model m provides feature f per Table I. Only the
// three GPU models appear in the table; classical models report false for
// every feature.
func Has(m Model, f Feature) bool {
	return featureMatrix[m][f]
}

// ComparedModels returns the Table I columns in paper order.
func ComparedModels() []Model { return []Model{AGPU, SWGPU, ATGPU} }

// TableI renders the comparison table as aligned text, reproducing the
// paper's Table I ("3" marks in the paper's typography become "x").
func TableI() string {
	models := ComparedModels()
	var sb strings.Builder
	row := func(first string, cells func(m Model) string) {
		var line strings.Builder
		fmt.Fprintf(&line, "%-28s", first)
		for _, m := range models {
			fmt.Fprintf(&line, " %-7s", cells(m))
		}
		sb.WriteString(strings.TrimRight(line.String(), " "))
		sb.WriteByte('\n')
	}
	row("Item", func(m Model) string { return m.String() })
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 28+8*len(models)))
	for _, f := range Features() {
		row(f.String(), func(m Model) string {
			if Has(m, f) {
				return "x"
			}
			return ""
		})
	}
	return sb.String()
}
