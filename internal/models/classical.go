package models

import (
	"errors"
	"fmt"
	"math"
)

// Executable cost calculators for the classical parallel models the paper
// surveys in Section I-B. They exist to make the comparison concrete: each
// model prices the same abstract workload with the machinery it has, and
// the gaps Table I tabulates (no memory hierarchy, no shared memory, no
// warp, no transfer) show up as terms the model simply cannot charge.

// ErrBadModelParams reports unusable classical-model parameters.
var ErrBadModelParams = errors.New("models: invalid model parameters")

// PRAMCost prices a PRAM computation: with p processors and work
// (total operations) w on a critical path of depth d, time is
// max(d, w/p) — Brent's bound. The PRAM has no memory hierarchy, so
// memory traffic is free; that freeness is exactly why the paper rules it
// out for GPUs.
func PRAMCost(work, depth float64, p int) (float64, error) {
	if p <= 0 || work < 0 || depth < 0 {
		return 0, fmt.Errorf("%w: work=%g depth=%g p=%d", ErrBadModelParams, work, depth, p)
	}
	return math.Max(depth, work/float64(p)), nil
}

// BSPSuperstep describes one BSP superstep: the longest local computation
// w, the maximum messages sent or received by any processor h (the
// h-relation), priced against machine parameters g (gap, time per word of
// communication) and l (barrier latency).
type BSPSuperstep struct {
	W float64 // max local computation
	H float64 // h-relation size
}

// BSPCost prices a BSP program: Σᵢ (wᵢ + g·hᵢ + l). Valiant's bridging
// model has communication and synchronisation — the two SWGPU inherits —
// but no shared memory, which is why it cannot capture a GPU directly.
func BSPCost(steps []BSPSuperstep, g, l float64) (float64, error) {
	if g < 0 || l < 0 {
		return 0, fmt.Errorf("%w: g=%g l=%g", ErrBadModelParams, g, l)
	}
	total := 0.0
	for i, s := range steps {
		if s.W < 0 || s.H < 0 {
			return 0, fmt.Errorf("%w: step %d: w=%g h=%g", ErrBadModelParams, i, s.W, s.H)
		}
		total += s.W + g*s.H + l
	}
	return total, nil
}

// BSPRAMSuperstep adds shared-memory traffic to a BSP superstep, following
// Tiskin: processors compute locally (w), then read/write the shared
// memory (m words each at gap g'), then synchronise.
type BSPRAMSuperstep struct {
	W float64 // max local computation
	M float64 // max shared-memory words accessed by any processor
}

// BSPRAMCost prices a BSPRAM program: Σᵢ (wᵢ + g·mᵢ + l). Closer to a GPU
// than BSP — shared memory exists — but with no warp notion, per the
// paper.
func BSPRAMCost(steps []BSPRAMSuperstep, g, l float64) (float64, error) {
	if g < 0 || l < 0 {
		return 0, fmt.Errorf("%w: g=%g l=%g", ErrBadModelParams, g, l)
	}
	total := 0.0
	for i, s := range steps {
		if s.W < 0 || s.M < 0 {
			return 0, fmt.Errorf("%w: step %d", ErrBadModelParams, i)
		}
		total += s.W + g*s.M + l
	}
	return total, nil
}

// PEMCost prices a PEM computation by its dominant metric, parallel block
// I/Os: with N items, P processors, block size B and per-processor cache
// of M words, the PEM sorting/scanning bounds are expressed in
// ⌈N/(P·B)⌉-style terms. PEMCost returns the time for a computation that
// performs ios parallel block transactions and comp internal operations,
// with a block transaction costing blockCost operations-equivalents: comp
// + blockCost·ios. Block transfer is the one GPU-relevant feature PEM
// has; it lacks per-group shared memory and the warp.
func PEMCost(comp, ios, blockCost float64) (float64, error) {
	if comp < 0 || ios < 0 || blockCost < 0 {
		return 0, fmt.Errorf("%w: comp=%g ios=%g blockCost=%g", ErrBadModelParams, comp, ios, blockCost)
	}
	return comp + blockCost*ios, nil
}

// PEMScanIOs returns the parallel I/O count of a PEM scan over n items
// with p processors and block size b: ⌈n/(p·b)⌉ — the textbook bound.
func PEMScanIOs(n, p, b int) (float64, error) {
	if n < 0 || p <= 0 || b <= 0 {
		return 0, fmt.Errorf("%w: n=%d p=%d b=%d", ErrBadModelParams, n, p, b)
	}
	return math.Ceil(float64(n) / float64(p*b)), nil
}

// WhyNotGPU returns, for each classical model, the paper's §I-B reason it
// cannot model a GPU — machine-readable companion to Description.
func WhyNotGPU(m Model) string {
	switch m {
	case PRAM:
		return "no memory hierarchy"
	case BSP:
		return "no shared memory between processors"
	case BSPRAM:
		return "no notion of a warp"
	case PEM:
		return "no per-group shared memory and no warp"
	}
	return ""
}
