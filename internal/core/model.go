// Package core implements the ATGPU (Abstract Transferring GPU) model of
// Carroll & Wong: the machine ATGPU(p, b, M, G), the per-round analysis
// metrics of Section III, and the two cost functions — Expression (1), the
// "perfect GPU" cost, and Expression (2), the GPU-cost that simulates a
// machine with k' < k multiprocessors by folding in occupancy.
//
// The model is the paper's contribution; every other package in this module
// is either a substrate it is validated against (simgpu, transfer) or a
// consumer of its analyses (algorithms, experiments).
package core

import (
	"errors"
	"fmt"
)

// Params is an instance ATGPU(p, b, M, G): p cores in total, b cores and
// M words of shared memory per multiprocessor, and G words of global
// memory. The derived quantity k = p/b is the number of multiprocessors.
type Params struct {
	// P is the total number of cores.
	P int
	// B is the number of cores per multiprocessor; also the shared-memory
	// bank count, the global memory block size in words, and the warp
	// width.
	B int
	// M is the shared memory per multiprocessor, in words.
	M int
	// G is the global memory size in words — the capacity constraint
	// ATGPU introduces over SWGPU and AGPU.
	G int
}

// Validation errors.
var (
	ErrBadParams    = errors.New("core: invalid model parameters")
	ErrNotDivisible = errors.New("core: p must be a multiple of b")
)

// Validate checks the machine description.
func (p Params) Validate() error {
	switch {
	case p.P <= 0:
		return fmt.Errorf("%w: p=%d", ErrBadParams, p.P)
	case p.B <= 0:
		return fmt.Errorf("%w: b=%d", ErrBadParams, p.B)
	case p.M < 0:
		return fmt.Errorf("%w: M=%d", ErrBadParams, p.M)
	case p.G < 0:
		return fmt.Errorf("%w: G=%d", ErrBadParams, p.G)
	}
	if p.P%p.B != 0 {
		return fmt.Errorf("%w: p=%d, b=%d", ErrNotDivisible, p.P, p.B)
	}
	return nil
}

// K returns k = p/b, the number of multiprocessors.
func (p Params) K() int { return p.P / p.B }

// String renders the instance in the paper's notation.
func (p Params) String() string {
	return fmt.Sprintf("ATGPU(p=%d, b=%d, M=%d, G=%d)", p.P, p.B, p.M, p.G)
}

// ForProblem returns a "perfect GPU" instance sized so that every one of
// the given thread blocks has its own multiprocessor — the impossible
// machine Expression (1) prices, with k = blocks.
func ForProblem(blocks, b, m, g int) Params {
	if blocks < 1 {
		blocks = 1
	}
	return Params{P: blocks * b, B: b, M: m, G: g}
}

// Round holds the Section III metrics for one round i of an algorithm.
// All counts are exact (not asymptotic) so cost functions evaluate to
// numbers comparable against simulated executions.
type Round struct {
	// Time is tᵢ: "the maximum number of operations across all MPs
	// executed in round i".
	Time float64
	// IO is qᵢ: "the total number of global memory blocks accessed in the
	// round, by all MP".
	IO float64
	// GlobalWords is the global memory space used in round i.
	GlobalWords int
	// SharedWords is the maximum shared memory used per MP in round i —
	// the m of the occupancy bound ℓ = min(⌊M/m⌋, H).
	SharedWords int
	// Blocks is the number of thread blocks the round launches; on the
	// perfect GPU this is the k of the ⌈k/(k'ℓ)⌉ occupancy factor.
	Blocks int

	// InWords is Iᵢ, words transferred host→device at the round start.
	InWords int
	// InTransactions is Îᵢ, the number of inward transfer transactions.
	InTransactions int
	// OutWords is Oᵢ, words transferred device→host at the round end.
	OutWords int
	// OutTransactions is Ôᵢ.
	OutTransactions int
}

// Analysis is a complete per-round account of an algorithm on the model.
type Analysis struct {
	// Name labels the analysed algorithm.
	Name string
	// Params is the machine instance analysed against.
	Params Params
	// Rounds holds one entry per round, in execution order.
	Rounds []Round
}

// R returns the number of rounds.
func (a *Analysis) R() int { return len(a.Rounds) }

// TotalTransferWords returns Σᵢ(Iᵢ+Oᵢ), the paper's data-transfer metric.
func (a *Analysis) TotalTransferWords() int {
	total := 0
	for _, r := range a.Rounds {
		total += r.InWords + r.OutWords
	}
	return total
}

// TotalIO returns Σᵢqᵢ.
func (a *Analysis) TotalIO() float64 {
	total := 0.0
	for _, r := range a.Rounds {
		total += r.IO
	}
	return total
}

// TotalTime returns Σᵢtᵢ.
func (a *Analysis) TotalTime() float64 {
	total := 0.0
	for _, r := range a.Rounds {
		total += r.Time
	}
	return total
}

// MaxGlobalWords returns the peak global-space metric: "If there is
// difference between rounds, then the largest value is taken."
func (a *Analysis) MaxGlobalWords() int {
	max := 0
	for _, r := range a.Rounds {
		if r.GlobalWords > max {
			max = r.GlobalWords
		}
	}
	return max
}

// MaxSharedWords returns the peak per-MP shared-space metric.
func (a *Analysis) MaxSharedWords() int {
	max := 0
	for _, r := range a.Rounds {
		if r.SharedWords > max {
			max = r.SharedWords
		}
	}
	return max
}

// Feasibility errors.
var (
	// ErrGlobalExceeded signals that global space used exceeds G: "If this
	// is greater than G, the algorithm cannot be run on our model."
	ErrGlobalExceeded = errors.New("core: global memory space used exceeds G")
	// ErrSharedExceeded signals that shared space used exceeds M.
	ErrSharedExceeded = errors.New("core: shared memory space used exceeds M")
)

// CheckFeasible verifies the algorithm fits the machine: peak global usage
// within G and peak shared usage within M.
func (a *Analysis) CheckFeasible() error {
	if g := a.MaxGlobalWords(); g > a.Params.G {
		return fmt.Errorf("%w: need %d, G=%d", ErrGlobalExceeded, g, a.Params.G)
	}
	if s := a.MaxSharedWords(); s > a.Params.M {
		return fmt.Errorf("%w: need %d, M=%d", ErrSharedExceeded, s, a.Params.M)
	}
	return nil
}
