package core

import (
	"errors"
	"fmt"
	"math"
)

// CostParams instantiates the model's cost function for a particular GPU,
// per Section III: operation rate γ, global memory latency λ, fixed
// synchronisation cost σ, and the Boyer transfer parameters α and β.
// KPrime and H configure the GPU-cost (Expression 2) simulation of a real
// machine with k' multiprocessors and a hardware residency limit H.
//
// Units: γ is operations per second (it "corresponds to the clock rate of
// the GPU"); λ is in cycles, so λ·qᵢ/γ is seconds; α, β and σ are seconds.
// Cost function results are therefore in seconds and directly comparable
// with simulated running times.
type CostParams struct {
	// Gamma is γ, the operation rate (operations/second).
	Gamma float64
	// Lambda is λ, cycles to access one global memory block. The paper
	// cites 400–800 on real GPUs.
	Lambda float64
	// Sigma is σ, the fixed synchronisation cost per round (seconds):
	// device resets, de/re-allocation, queue clearing.
	Sigma float64
	// Alpha is α, the fixed overhead per transfer transaction (seconds).
	Alpha float64
	// Beta is β, the cost per transferred word (seconds).
	Beta float64
	// KPrime is k', the number of multiprocessors of the simulated real
	// GPU in Expression (2).
	KPrime int
	// H is the hardware limit on blocks concurrently resident per
	// multiprocessor.
	H int
}

// ErrBadCostParams reports unusable cost parameters.
var ErrBadCostParams = errors.New("core: invalid cost parameters")

// Validate checks the cost parameters.
func (c CostParams) Validate() error {
	switch {
	case c.Gamma <= 0 || math.IsNaN(c.Gamma) || math.IsInf(c.Gamma, 0):
		return fmt.Errorf("%w: gamma=%g", ErrBadCostParams, c.Gamma)
	case c.Lambda < 0:
		return fmt.Errorf("%w: lambda=%g", ErrBadCostParams, c.Lambda)
	case c.Sigma < 0:
		return fmt.Errorf("%w: sigma=%g", ErrBadCostParams, c.Sigma)
	case c.Alpha < 0:
		return fmt.Errorf("%w: alpha=%g", ErrBadCostParams, c.Alpha)
	case c.Beta < 0:
		return fmt.Errorf("%w: beta=%g", ErrBadCostParams, c.Beta)
	case c.KPrime <= 0:
		return fmt.Errorf("%w: k'=%d", ErrBadCostParams, c.KPrime)
	case c.H <= 0:
		return fmt.Errorf("%w: H=%d", ErrBadCostParams, c.H)
	}
	return nil
}

// TI returns the inward transfer cost of a round: TI(i) = Îᵢα + Iᵢβ.
func (c CostParams) TI(r Round) float64 {
	return float64(r.InTransactions)*c.Alpha + float64(r.InWords)*c.Beta
}

// TO returns the outward transfer cost of a round: TO(i) = Ôᵢα + Oᵢβ.
func (c CostParams) TO(r Round) float64 {
	return float64(r.OutTransactions)*c.Alpha + float64(r.OutWords)*c.Beta
}

// Occupancy returns ℓ = min(⌊M/m⌋, H) for a round's shared usage m on
// machine p. A round that uses no shared memory is limited only by H; a
// round whose m exceeds M yields 0 (infeasible).
func (c CostParams) Occupancy(p Params, r Round) int {
	m := r.SharedWords
	if m < 0 {
		return 0
	}
	if m == 0 {
		return c.H
	}
	byShared := p.M / m
	if byShared > c.H {
		return c.H
	}
	return byShared
}

// occupancyFactor returns ⌈k/(k'·ℓ)⌉ for a round, the serialisation of the
// round's k blocks over the real machine's k'·ℓ concurrent block slots.
func (c CostParams) occupancyFactor(p Params, r Round) (float64, error) {
	l := c.Occupancy(p, r)
	if l == 0 {
		return 0, fmt.Errorf("%w: round shared usage %d exceeds M=%d",
			ErrSharedExceeded, r.SharedWords, p.M)
	}
	k := r.Blocks
	if k <= 0 {
		k = p.K()
	}
	return math.Ceil(float64(k) / float64(c.KPrime*l)), nil
}

// PerfectCost evaluates Expression (1), the cost on a "perfect GPU" with
// sufficient multiprocessors to run every thread block concurrently:
//
//	Σᵢ ( TI(i) + (tᵢ + λ·qᵢ)/γ + TO(i) + σ )
func PerfectCost(a *Analysis, c CostParams) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	total := 0.0
	for _, r := range a.Rounds {
		total += c.TI(r) + (r.Time+c.Lambda*r.IO)/c.Gamma + c.TO(r) + c.Sigma
	}
	return total, nil
}

// GPUCost evaluates Expression (2), simulating a GPU with k' < k
// multiprocessors, "which captures the concept of occupancy":
//
//	Σᵢ ( TI(i) + (⌈k/(k'ℓ)⌉·tᵢ + λ·qᵢ)/γ + TO(i) + σ )
func GPUCost(a *Analysis, c CostParams) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	total := 0.0
	for _, r := range a.Rounds {
		f, err := c.occupancyFactor(a.Params, r)
		if err != nil {
			return 0, err
		}
		total += c.TI(r) + (f*r.Time+c.Lambda*r.IO)/c.Gamma + c.TO(r) + c.Sigma
	}
	return total, nil
}

// Breakdown decomposes a cost-function evaluation into its components, for
// Figure 6's Δ proportions and for diagnostics.
type Breakdown struct {
	// TransferIn is Σᵢ TI(i); TransferOut is Σᵢ TO(i).
	TransferIn, TransferOut float64
	// Compute is Σᵢ fᵢ·tᵢ/γ with fᵢ the occupancy factor (1 on the
	// perfect GPU).
	Compute float64
	// MemoryIO is Σᵢ λ·qᵢ/γ.
	MemoryIO float64
	// Sync is R·σ.
	Sync float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.TransferIn + b.TransferOut + b.Compute + b.MemoryIO + b.Sync
}

// Transfer sums the transfer components.
func (b Breakdown) Transfer() float64 { return b.TransferIn + b.TransferOut }

// TransferFraction is Δ_T, the predicted proportion of cost allocated to
// data transfer (paper Figure 6).
func (b Breakdown) TransferFraction() float64 {
	t := b.Total()
	if t <= 0 {
		return 0
	}
	return b.Transfer() / t
}

// GPUCostBreakdown evaluates Expression (2) componentwise.
func GPUCostBreakdown(a *Analysis, c CostParams) (Breakdown, error) {
	if err := c.Validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	for _, r := range a.Rounds {
		f, err := c.occupancyFactor(a.Params, r)
		if err != nil {
			return Breakdown{}, err
		}
		b.TransferIn += c.TI(r)
		b.TransferOut += c.TO(r)
		b.Compute += f * r.Time / c.Gamma
		b.MemoryIO += c.Lambda * r.IO / c.Gamma
		b.Sync += c.Sigma
	}
	return b, nil
}

// PerfectCostBreakdown evaluates Expression (1) componentwise.
func PerfectCostBreakdown(a *Analysis, c CostParams) (Breakdown, error) {
	if err := c.Validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	for _, r := range a.Rounds {
		b.TransferIn += c.TI(r)
		b.TransferOut += c.TO(r)
		b.Compute += r.Time / c.Gamma
		b.MemoryIO += c.Lambda * r.IO / c.Gamma
		b.Sync += c.Sigma
	}
	return b, nil
}
