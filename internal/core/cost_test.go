package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// testCost is a simple parameter set with hand-friendly numbers.
func testCost() CostParams {
	return CostParams{
		Gamma:  1000, // 1000 ops/s
		Lambda: 4,    // 4 cycles per block transaction
		Sigma:  0.5,
		Alpha:  0.01,
		Beta:   0.001,
		KPrime: 2,
		H:      4,
	}
}

func TestCostParamsValidate(t *testing.T) {
	if err := testCost().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	muts := []func(*CostParams){
		func(c *CostParams) { c.Gamma = 0 },
		func(c *CostParams) { c.Gamma = math.NaN() },
		func(c *CostParams) { c.Gamma = math.Inf(1) },
		func(c *CostParams) { c.Lambda = -1 },
		func(c *CostParams) { c.Sigma = -1 },
		func(c *CostParams) { c.Alpha = -1 },
		func(c *CostParams) { c.Beta = -1 },
		func(c *CostParams) { c.KPrime = 0 },
		func(c *CostParams) { c.H = 0 },
	}
	for i, mut := range muts {
		c := testCost()
		mut(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadCostParams) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestTransferCostFunctions(t *testing.T) {
	c := testCost()
	r := Round{InWords: 100, InTransactions: 2, OutWords: 50, OutTransactions: 1}
	// TI(i) = Îᵢα + Iᵢβ = 2·0.01 + 100·0.001 = 0.12
	if got := c.TI(r); math.Abs(got-0.12) > 1e-12 {
		t.Fatalf("TI = %g, want 0.12", got)
	}
	// TO(i) = Ôᵢα + Oᵢβ = 0.01 + 0.05 = 0.06
	if got := c.TO(r); math.Abs(got-0.06) > 1e-12 {
		t.Fatalf("TO = %g, want 0.06", got)
	}
}

func TestOccupancyRule(t *testing.T) {
	c := testCost()
	p := Params{P: 64, B: 32, M: 100, G: 1000}
	// ℓ = min(⌊M/m⌋, H)
	cases := []struct {
		m, want int
	}{
		{0, 4},   // no shared usage → H
		{10, 4},  // ⌊100/10⌋=10 capped at H=4
		{30, 3},  // ⌊100/30⌋=3
		{100, 1}, // exact fit
		{101, 0}, // infeasible
	}
	for _, cse := range cases {
		if got := c.Occupancy(p, Round{SharedWords: cse.m}); got != cse.want {
			t.Errorf("Occupancy(m=%d) = %d, want %d", cse.m, got, cse.want)
		}
	}
}

// TestPerfectCostByHand checks Expression (1) against a hand computation.
func TestPerfectCostByHand(t *testing.T) {
	c := testCost()
	a := &Analysis{
		Params: Params{P: 128, B: 32, M: 100, G: 10000},
		Rounds: []Round{{
			Time: 10, IO: 5, Blocks: 4,
			InWords: 100, InTransactions: 2, OutWords: 50, OutTransactions: 1,
		}},
	}
	// TI + (t + λq)/γ + TO + σ = 0.12 + (10+20)/1000 + 0.06 + 0.5 = 0.71
	got, err := PerfectCost(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.71) > 1e-12 {
		t.Fatalf("PerfectCost = %g, want 0.71", got)
	}
}

// TestGPUCostByHand checks Expression (2): the occupancy factor ⌈k/(k'ℓ)⌉
// multiplies only the time term.
func TestGPUCostByHand(t *testing.T) {
	c := testCost()
	a := &Analysis{
		Params: Params{P: 128, B: 32, M: 100, G: 10000},
		Rounds: []Round{{
			Time: 10, IO: 5, Blocks: 40, SharedWords: 30,
			InWords: 100, InTransactions: 2, OutWords: 50, OutTransactions: 1,
		}},
	}
	// ℓ = min(⌊100/30⌋, 4) = 3; factor = ⌈40/(2·3)⌉ = 7
	// cost = 0.12 + (7·10 + 4·5)/1000 + 0.06 + 0.5 = 0.77
	got, err := GPUCost(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.77) > 1e-12 {
		t.Fatalf("GPUCost = %g, want 0.77", got)
	}
}

func TestGPUCostUsesParamsKWhenBlocksUnset(t *testing.T) {
	c := testCost()
	a := &Analysis{
		Params: Params{P: 320, B: 32, M: 100, G: 10000}, // k = 10
		Rounds: []Round{{Time: 10, IO: 0, SharedWords: 0}},
	}
	// ℓ = H = 4; factor = ⌈10/8⌉ = 2 → cost = 2·10/1000 + σ
	got, err := GPUCost(a, c)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.02 + c.Sigma
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("GPUCost = %g, want %g", got, want)
	}
}

func TestGPUCostInfeasibleShared(t *testing.T) {
	c := testCost()
	a := &Analysis{
		Params: Params{P: 64, B: 32, M: 100, G: 1000},
		Rounds: []Round{{Time: 1, SharedWords: 101, Blocks: 1}},
	}
	if _, err := GPUCost(a, c); !errors.Is(err, ErrSharedExceeded) {
		t.Fatalf("GPUCost = %v, want ErrSharedExceeded", err)
	}
	if _, err := GPUCostBreakdown(a, c); !errors.Is(err, ErrSharedExceeded) {
		t.Fatalf("GPUCostBreakdown = %v, want ErrSharedExceeded", err)
	}
}

func TestCostRejectsBadParams(t *testing.T) {
	a := testAnalysis()
	bad := testCost()
	bad.Gamma = 0
	if _, err := PerfectCost(a, bad); err == nil {
		t.Error("PerfectCost accepted bad params")
	}
	if _, err := GPUCost(a, bad); err == nil {
		t.Error("GPUCost accepted bad params")
	}
	if _, err := PerfectCostBreakdown(a, bad); err == nil {
		t.Error("PerfectCostBreakdown accepted bad params")
	}
	if _, err := GPUCostBreakdown(a, bad); err == nil {
		t.Error("GPUCostBreakdown accepted bad params")
	}
}

// TestBreakdownConsistency: the componentwise decomposition must sum to the
// scalar cost for both expressions.
func TestBreakdownConsistency(t *testing.T) {
	c := testCost()
	a := testAnalysis()
	g, err := GPUCost(a, c)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := GPUCostBreakdown(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-gb.Total()) > 1e-12 {
		t.Fatalf("GPUCost %g ≠ breakdown total %g", g, gb.Total())
	}
	p, err := PerfectCost(a, c)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := PerfectCostBreakdown(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-pb.Total()) > 1e-12 {
		t.Fatalf("PerfectCost %g ≠ breakdown total %g", p, pb.Total())
	}
	if gb.Transfer() != gb.TransferIn+gb.TransferOut {
		t.Fatal("Transfer() inconsistent")
	}
	frac := gb.TransferFraction()
	if frac <= 0 || frac >= 1 {
		t.Fatalf("transfer fraction = %g, want in (0,1)", frac)
	}
}

func TestBreakdownZeroTotal(t *testing.T) {
	if (Breakdown{}).TransferFraction() != 0 {
		t.Fatal("zero breakdown fraction should be 0")
	}
}

// Properties: the perfect cost never exceeds the GPU-cost (the occupancy
// factor is ≥ 1), and both are monotone in every round metric.
func TestCostProperties(t *testing.T) {
	c := testCost()
	mk := func(time, io, blocks, in, out uint8) *Analysis {
		return &Analysis{
			Params: Params{P: 64, B: 32, M: 100, G: 100000},
			Rounds: []Round{{
				Time:            float64(time),
				IO:              float64(io),
				Blocks:          int(blocks)%50 + 1,
				SharedWords:     25,
				InWords:         int(in),
				InTransactions:  1,
				OutWords:        int(out),
				OutTransactions: 1,
			}},
		}
	}
	f := func(time, io, blocks, in, out uint8) bool {
		a := mk(time, io, blocks, in, out)
		perfect, err := PerfectCost(a, c)
		if err != nil {
			return false
		}
		gpu, err := GPUCost(a, c)
		if err != nil {
			return false
		}
		if perfect > gpu+1e-12 {
			return false
		}
		// Monotonicity: adding work can only increase both costs.
		b := mk(time, io, blocks, in, out)
		b.Rounds[0].Time++
		b.Rounds[0].IO++
		b.Rounds[0].InWords++
		p2, err := PerfectCost(b, c)
		if err != nil {
			return false
		}
		g2, err := GPUCost(b, c)
		if err != nil {
			return false
		}
		return p2 >= perfect && g2 >= gpu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
