package core

// Overlapped-cost modeling: Expression (2) with rounds pipelined across
// the machine's three independent resources — the H2D half of the PCIe
// link, the SM array, and the D2H half — instead of summed back to back.
//
// The schedule mirrors the simulator's stream semantics exactly: within
// a round, inward transfer → compute → outward transfer chain on each
// other; across rounds, each resource serves rounds in order, and a
// stage starts at the earliest instant compatible with both rules
// (greedy, no backfilling). Synchronisation happens once, after the
// pipeline drains, so the predicted saving isolates overlap and is not
// confounded by σ-count differences between the two schedules.
//
// For R identical rounds the makespan has the classic closed form
//
//	TI + C + TO + (R−1)·max(TI, C, TO)
//
// — per-round max(transfer, compute) pipelining — versus the sequential
// R·(TI + C + TO).

// PipelinedCost is the overlapped-cost evaluation of an analysis.
type PipelinedCost struct {
	// Sequential is the same components run back to back with a single
	// final synchronisation: Σᵢ(TI(i) + Cᵢ + TO(i)) + σ. It differs from
	// GPUCost only in charging σ once rather than per round, so the
	// Sequential−Pipelined gap measures overlap alone.
	Sequential float64
	// Pipelined is the three-resource pipeline makespan plus the final σ.
	Pipelined float64
	// Rounds is the number of pipelined rounds (chunks).
	Rounds int
	// Breakdown holds the component sums shared by both schedules
	// (Sync is the single final σ); Breakdown.Total() == Sequential.
	Breakdown Breakdown
}

// Saving is the absolute predicted time hidden by overlap.
func (p PipelinedCost) Saving() float64 { return p.Sequential - p.Pipelined }

// SavingFraction is the predicted saving as a share of the sequential
// cost. Degenerate (zero or negative) sequential costs yield 0.
func (p PipelinedCost) SavingFraction() float64 {
	if p.Sequential <= 0 {
		return 0
	}
	return p.Saving() / p.Sequential
}

// GPUCostPipelined evaluates the overlapped variant of Expression (2):
// each round's TI(i), (⌈k/(k'ℓ)⌉·tᵢ + λ·qᵢ)/γ and TO(i) are placed on
// the H2D, compute and D2H resources under the pipeline rules above.
// An analysis with no rounds costs zero under both schedules.
func GPUCostPipelined(a *Analysis, c CostParams) (PipelinedCost, error) {
	if err := c.Validate(); err != nil {
		return PipelinedCost{}, err
	}
	if len(a.Rounds) == 0 {
		return PipelinedCost{}, nil
	}
	var (
		h2dFree, compFree, d2hFree float64
		b                          Breakdown
	)
	for _, r := range a.Rounds {
		f, err := c.occupancyFactor(a.Params, r)
		if err != nil {
			return PipelinedCost{}, err
		}
		ti := c.TI(r)
		comp := (f*r.Time + c.Lambda*r.IO) / c.Gamma
		to := c.TO(r)

		h2dFree += ti
		compFree = max2(compFree, h2dFree) + comp
		d2hFree = max2(d2hFree, compFree) + to

		b.TransferIn += ti
		b.TransferOut += to
		b.Compute += f * r.Time / c.Gamma
		b.MemoryIO += c.Lambda * r.IO / c.Gamma
	}
	b.Sync = c.Sigma
	makespan := max2(h2dFree, max2(compFree, d2hFree))
	return PipelinedCost{
		Sequential: b.Total(),
		Pipelined:  makespan + c.Sigma,
		Rounds:     len(a.Rounds),
		Breakdown:  b,
	}, nil
}

// max2 is math.Max without the NaN/signed-zero machinery.
func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
