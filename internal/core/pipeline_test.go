package core

import (
	"errors"
	"math"
	"testing"
)

// pipeRound is an occupancy-neutral round (f = 1 under testCost) with
// hand-friendly costs: TI = 0.11, C = 0.01, TO = 0.06.
func pipeRound() Round {
	return Round{
		Time:            10,
		Blocks:          4,
		InWords:         100,
		InTransactions:  1,
		OutWords:        50,
		OutTransactions: 1,
	}
}

func pipeAnalysis(rounds int) *Analysis {
	a := &Analysis{Params: Params{P: 128, B: 32, M: 100, G: 10000}}
	for i := 0; i < rounds; i++ {
		a.Rounds = append(a.Rounds, pipeRound())
	}
	return a
}

func TestPipelinedClosedForm(t *testing.T) {
	// For R identical rounds the pipeline makespan is
	// TI + C + TO + (R−1)·max(TI, C, TO).
	c := testCost()
	const ti, comp, to = 0.11, 0.01, 0.06
	for _, rounds := range []int{1, 2, 4, 7} {
		p, err := GPUCostPipelined(pipeAnalysis(rounds), c)
		if err != nil {
			t.Fatal(err)
		}
		wantSeq := float64(rounds)*(ti+comp+to) + c.Sigma
		wantPipe := ti + comp + to + float64(rounds-1)*ti + c.Sigma
		if math.Abs(p.Sequential-wantSeq) > 1e-12 {
			t.Errorf("R=%d: sequential = %g, want %g", rounds, p.Sequential, wantSeq)
		}
		if math.Abs(p.Pipelined-wantPipe) > 1e-12 {
			t.Errorf("R=%d: pipelined = %g, want %g", rounds, p.Pipelined, wantPipe)
		}
		if p.Rounds != rounds {
			t.Errorf("R=%d: rounds = %d", rounds, p.Rounds)
		}
	}
}

func TestPipelinedNeverWorse(t *testing.T) {
	c := testCost()
	a := pipeAnalysis(3)
	// Heterogeneous rounds: vary every component.
	a.Rounds[1].Time = 200
	a.Rounds[1].InWords = 10
	a.Rounds[2].OutWords = 500
	a.Rounds[2].IO = 7
	p, err := GPUCostPipelined(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pipelined > p.Sequential {
		t.Fatalf("pipelined %g > sequential %g", p.Pipelined, p.Sequential)
	}
	if p.Saving() < 0 {
		t.Fatalf("negative saving %g", p.Saving())
	}
	if f := p.SavingFraction(); f < 0 || f >= 1 {
		t.Fatalf("saving fraction %g outside [0,1)", f)
	}
}

func TestPipelinedSingleRoundEqualsSequential(t *testing.T) {
	p, err := GPUCostPipelined(pipeAnalysis(1), testCost())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Pipelined-p.Sequential) > 1e-12 {
		t.Fatalf("single round: pipelined %g ≠ sequential %g", p.Pipelined, p.Sequential)
	}
	if math.Abs(p.Saving()) > 1e-12 {
		t.Fatalf("single round saving = %g, want 0", p.Saving())
	}
}

func TestPipelinedEmptyAnalysis(t *testing.T) {
	p, err := GPUCostPipelined(pipeAnalysis(0), testCost())
	if err != nil {
		t.Fatal(err)
	}
	if p.Sequential != 0 || p.Pipelined != 0 || p.Rounds != 0 {
		t.Fatalf("empty analysis priced: %+v", p)
	}
	if p.SavingFraction() != 0 {
		t.Fatalf("empty analysis saving fraction = %g", p.SavingFraction())
	}
}

func TestPipelinedValidation(t *testing.T) {
	bad := testCost()
	bad.Gamma = 0
	if _, err := GPUCostPipelined(pipeAnalysis(1), bad); !errors.Is(err, ErrBadCostParams) {
		t.Fatalf("bad params: %v", err)
	}
	a := pipeAnalysis(1)
	a.Rounds[0].SharedWords = a.Params.M + 1
	if _, err := GPUCostPipelined(a, testCost()); !errors.Is(err, ErrSharedExceeded) {
		t.Fatalf("infeasible round: %v", err)
	}
}

func TestPipelinedBreakdownConsistency(t *testing.T) {
	c := testCost()
	p, err := GPUCostPipelined(pipeAnalysis(5), c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Breakdown.Total()-p.Sequential) > 1e-12 {
		t.Fatalf("breakdown total %g ≠ sequential %g", p.Breakdown.Total(), p.Sequential)
	}
	if p.Breakdown.Sync != c.Sigma {
		t.Fatalf("breakdown sync = %g, want single σ = %g", p.Breakdown.Sync, c.Sigma)
	}
	// The pipelined makespan can never beat its slowest resource.
	floor := max2(p.Breakdown.TransferIn,
		max2(p.Breakdown.Compute+p.Breakdown.MemoryIO, p.Breakdown.TransferOut)) + c.Sigma
	if p.Pipelined < floor-1e-12 {
		t.Fatalf("pipelined %g below resource floor %g", p.Pipelined, floor)
	}
}

// TestBreakdownTransferFractionDegenerate pins the guard satellite: a
// degenerate breakdown must yield 0, never NaN or ±Inf.
func TestBreakdownTransferFractionDegenerate(t *testing.T) {
	cases := []struct {
		name string
		b    Breakdown
		want float64
	}{
		{"zero", Breakdown{}, 0},
		{"negative total", Breakdown{Compute: -1}, 0},
		{"transfer cancels compute", Breakdown{TransferIn: 1, Compute: -1}, 0},
		{"healthy", Breakdown{TransferIn: 1, TransferOut: 1, Compute: 2}, 0.5},
	}
	for _, tc := range cases {
		got := tc.b.TransferFraction()
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: non-finite fraction %g", tc.name, got)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: fraction = %g, want %g", tc.name, got, tc.want)
		}
	}
}

// TestSavingFractionDegenerate mirrors the guard for PipelinedCost.
func TestSavingFractionDegenerate(t *testing.T) {
	for _, p := range []PipelinedCost{
		{},
		{Sequential: -1, Pipelined: -2},
	} {
		if f := p.SavingFraction(); f != 0 {
			t.Errorf("degenerate %+v: saving fraction = %g, want 0", p, f)
		}
	}
}
