package core

import (
	"errors"
	"strings"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	good := Params{P: 64, B: 32, M: 1024, G: 4096}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []Params{
		{P: 0, B: 32, M: 1, G: 1},
		{P: 64, B: 0, M: 1, G: 1},
		{P: 64, B: 32, M: -1, G: 1},
		{P: 64, B: 32, M: 1, G: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	if err := (Params{P: 65, B: 32, M: 1, G: 1}).Validate(); !errors.Is(err, ErrNotDivisible) {
		t.Error("p not multiple of b accepted")
	}
}

func TestParamsK(t *testing.T) {
	p := Params{P: 96, B: 32, M: 1, G: 1}
	if p.K() != 3 {
		t.Fatalf("K = %d, want 3", p.K())
	}
}

func TestParamsString(t *testing.T) {
	s := Params{P: 64, B: 32, M: 10, G: 20}.String()
	if !strings.Contains(s, "p=64") || !strings.Contains(s, "G=20") {
		t.Fatalf("String = %q", s)
	}
}

func TestForProblem(t *testing.T) {
	p := ForProblem(10, 32, 100, 1000)
	if p.K() != 10 || p.B != 32 || p.M != 100 || p.G != 1000 {
		t.Fatalf("ForProblem = %+v", p)
	}
	if ForProblem(0, 32, 1, 1).K() != 1 {
		t.Fatal("ForProblem should clamp blocks to 1")
	}
}

func testAnalysis() *Analysis {
	return &Analysis{
		Name:   "t",
		Params: Params{P: 128, B: 32, M: 100, G: 1000},
		Rounds: []Round{
			{Time: 10, IO: 5, GlobalWords: 500, SharedWords: 50, Blocks: 4,
				InWords: 100, InTransactions: 2},
			{Time: 20, IO: 7, GlobalWords: 700, SharedWords: 30, Blocks: 2,
				OutWords: 10, OutTransactions: 1},
		},
	}
}

func TestAnalysisTotals(t *testing.T) {
	a := testAnalysis()
	if a.R() != 2 {
		t.Fatalf("R = %d", a.R())
	}
	if got := a.TotalTransferWords(); got != 110 {
		t.Fatalf("TotalTransferWords = %d, want 110 (Σ Iᵢ+Oᵢ)", got)
	}
	if got := a.TotalIO(); got != 12 {
		t.Fatalf("TotalIO = %g, want 12", got)
	}
	if got := a.TotalTime(); got != 30 {
		t.Fatalf("TotalTime = %g, want 30", got)
	}
	if got := a.MaxGlobalWords(); got != 700 {
		t.Fatalf("MaxGlobalWords = %d, want 700 (largest round)", got)
	}
	if got := a.MaxSharedWords(); got != 50 {
		t.Fatalf("MaxSharedWords = %d, want 50", got)
	}
}

func TestCheckFeasible(t *testing.T) {
	a := testAnalysis()
	if err := a.CheckFeasible(); err != nil {
		t.Fatalf("feasible analysis rejected: %v", err)
	}
	// "If this is greater than G, the algorithm cannot be run on our
	// model."
	a.Rounds[1].GlobalWords = 1001
	if err := a.CheckFeasible(); !errors.Is(err, ErrGlobalExceeded) {
		t.Fatalf("global overflow: %v", err)
	}
	a = testAnalysis()
	a.Rounds[0].SharedWords = 101
	if err := a.CheckFeasible(); !errors.Is(err, ErrSharedExceeded) {
		t.Fatalf("shared overflow: %v", err)
	}
}
