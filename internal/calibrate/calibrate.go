// Package calibrate instantiates the ATGPU cost parameters for a concrete
// device, mirroring how the paper's Section III fixes γ ("can be set to a
// value corresponding to a particular GPU"), λ, σ, α and β for its GTX 650.
//
// Transfer parameters are fitted the way Boyer et al. fit real links:
// measure transfers of increasing size and regress time on words — the
// slope is β̂, the intercept α̂.
//
// Kernel-side parameters are fitted from two microkernels run on the
// simulated device:
//
//   - a compute-bound kernel (straight-line arithmetic, no memory): the
//     regression of observed time on the model's occupancy-adjusted
//     operation count ⌈k/(k'ℓ)⌉·t yields 1/γ̂;
//   - a memory-bound kernel (coalesced global loads): the regression of
//     the residual time on the transaction count q yields λ̂/γ̂, hence λ̂.
//
// Fitting effective values rather than copying raw datasheet numbers is
// what lets the abstract cost function absorb latency hiding: a resident
// set of ℓ warps services global transactions far faster than one λ per
// transaction serially, and the paper's single-number λ must stand for the
// achieved, not architectural, latency.
package calibrate

import (
	"errors"
	"fmt"
	"math"
	"time"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
	"atgpu/internal/stats"
	"atgpu/internal/transfer"
)

// Result carries the fitted cost parameters and fit diagnostics.
type Result struct {
	// Params is ready for core.PerfectCost / core.GPUCost.
	Params core.CostParams
	// TransferFit is the regression behind α̂ and β̂.
	TransferFit stats.LinearFit
	// ComputeFit is the regression behind γ̂ (seconds per adjusted op).
	ComputeFit stats.LinearFit
	// MemoryFit is the regression behind λ̂ (seconds per transaction).
	MemoryFit stats.LinearFit
}

// ErrCalibration reports an unusable fit.
var ErrCalibration = errors.New("calibrate: fit failed")

// Run calibrates cost parameters for the device/engine pair. syncCost
// passes through as σ. The device's global memory must hold at least
// 64·b·warpWidth words (a few KiB on any realistic preset).
func Run(dev *simgpu.Device, eng *transfer.Engine, syncCost time.Duration) (Result, error) {
	if dev == nil || eng == nil {
		return Result{}, fmt.Errorf("%w: nil device or engine", ErrCalibration)
	}
	cfg := dev.Config()

	tf, alpha, beta, err := fitTransfer(eng)
	if err != nil {
		return Result{}, err
	}
	cf, gamma, err := fitCompute(dev)
	if err != nil {
		return Result{}, err
	}
	mf, lambdaSec, err := fitMemory(dev)
	if err != nil {
		return Result{}, err
	}

	p := core.CostParams{
		Gamma:  gamma,
		Lambda: lambdaSec * gamma, // λ in "cycles" of the fitted γ
		Sigma:  syncCost.Seconds(),
		Alpha:  alpha,
		Beta:   beta,
		KPrime: cfg.NumSMs,
		H:      cfg.MaxBlocksPerSM,
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrCalibration, err)
	}
	return Result{Params: p, TransferFit: tf, ComputeFit: cf, MemoryFit: mf}, nil
}

// fitTransfer regresses engine cost on words moved. The engine's cost
// model is exactly affine, so the fit recovers α and β to rounding.
func fitTransfer(eng *transfer.Engine) (stats.LinearFit, float64, float64, error) {
	m := eng.Model()
	var xs, ys []float64
	for _, words := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20} {
		xs = append(xs, float64(words))
		ys = append(ys, m.Cost(1, words))
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return fit, 0, 0, fmt.Errorf("%w: transfer: %v", ErrCalibration, err)
	}
	alpha := fit.Intercept
	if alpha < 0 {
		alpha = 0
	}
	beta := fit.Slope
	if beta < 0 || math.IsNaN(beta) {
		return fit, 0, 0, fmt.Errorf("%w: transfer slope %g", ErrCalibration, beta)
	}
	return fit, alpha, beta, nil
}

// computeKernel emits ops dependent adds with no memory traffic.
func computeKernel(ops int) *kernel.Program {
	kb := kernel.NewBuilder(fmt.Sprintf("cal-compute-%d", ops), 0)
	r := kb.Reg("acc")
	kb.Const(r, 1)
	for i := 0; i < ops; i++ {
		kb.Add(r, r, kernel.Imm(1))
	}
	return kb.MustBuild()
}

// fitCompute launches compute kernels with varying per-block op counts at a
// fixed block count, regressing time on the occupancy-adjusted operation
// count ⌈k/(k'ℓ)⌉·t; the slope is 1/γ̂.
func fitCompute(dev *simgpu.Device) (stats.LinearFit, float64, error) {
	cfg := dev.Config()
	blocks := cfg.NumSMs * cfg.MaxBlocksPerSM * 8
	occ := cfg.Occupancy(0)
	factor := math.Ceil(float64(blocks) / float64(cfg.NumSMs*occ))

	var xs, ys []float64
	for _, ops := range []int{32, 64, 128, 256, 512} {
		prog := computeKernel(ops)
		res, err := dev.Launch(prog, blocks)
		if err != nil {
			return stats.LinearFit{}, 0, fmt.Errorf("%w: compute kernel: %v", ErrCalibration, err)
		}
		adjusted := factor * float64(prog.Len())
		xs = append(xs, adjusted)
		ys = append(ys, res.Time.Seconds())
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return fit, 0, fmt.Errorf("%w: compute: %v", ErrCalibration, err)
	}
	if fit.Slope <= 0 {
		return fit, 0, fmt.Errorf("%w: compute slope %g", ErrCalibration, fit.Slope)
	}
	return fit, 1 / fit.Slope, nil
}

// memoryKernel emits loads coalesced global reads of distinct blocks.
func memoryKernel(loads, b int) *kernel.Program {
	kb := kernel.NewBuilder(fmt.Sprintf("cal-memory-%d", loads), 0)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	addr := kb.Reg("addr")
	val := kb.Reg("val")
	kb.LaneID(j)
	kb.BlockID(blk)
	// Each iteration reads one distinct b-word memory block: block i of
	// the launch reads global blocks i·loads … i·loads+loads-1.
	kb.Mul(addr, blk, kernel.Imm(int64(loads*b)))
	kb.Add(addr, addr, kernel.R(j))
	for i := 0; i < loads; i++ {
		kb.LdGlobal(val, addr)
		kb.Add(addr, addr, kernel.Imm(int64(b)))
	}
	return kb.MustBuild()
}

// fitMemory launches memory kernels with varying per-block load counts,
// regressing the time remaining after the fitted compute share on the
// total transaction count q; the slope is λ̂ in seconds per transaction.
func fitMemory(dev *simgpu.Device) (stats.LinearFit, float64, error) {
	cfg := dev.Config()
	// Keep the footprint within global memory.
	maxLoads := 64
	blocks := cfg.NumSMs * cfg.MaxBlocksPerSM * 8
	for blocks*maxLoads*cfg.WarpWidth > cfg.GlobalWords && blocks > cfg.NumSMs {
		blocks /= 2
	}
	if blocks*maxLoads*cfg.WarpWidth > cfg.GlobalWords {
		return stats.LinearFit{}, 0, fmt.Errorf("%w: device global memory too small", ErrCalibration)
	}

	var xs, ys []float64
	for _, loads := range []int{4, 8, 16, 32, maxLoads} {
		prog := memoryKernel(loads, cfg.WarpWidth)
		res, err := dev.Launch(prog, blocks)
		if err != nil {
			return stats.LinearFit{}, 0, fmt.Errorf("%w: memory kernel: %v", ErrCalibration, err)
		}
		q := float64(res.Stats.GlobalTransactions)
		xs = append(xs, q)
		ys = append(ys, res.Time.Seconds())
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return fit, 0, fmt.Errorf("%w: memory: %v", ErrCalibration, err)
	}
	if fit.Slope <= 0 {
		return fit, 0, fmt.Errorf("%w: memory slope %g", ErrCalibration, fit.Slope)
	}
	return fit, fit.Slope, nil
}

// Datasheet returns uncalibrated cost parameters read directly off the
// device configuration and transfer model — γ from the clock, λ from the
// architectural latency. Used by the calibration ablation to show why the
// paper's "set to a particular GPU" instantiation needs fitted effective
// values once latency hiding exists.
func Datasheet(cfg simgpu.Config, m transfer.CostModel, syncCost time.Duration) core.CostParams {
	return core.CostParams{
		Gamma:  cfg.ClockHz,
		Lambda: float64(cfg.GlobalLatencyCycles),
		Sigma:  syncCost.Seconds(),
		Alpha:  m.Alpha,
		Beta:   m.Beta,
		KPrime: cfg.NumSMs,
		H:      cfg.MaxBlocksPerSM,
	}
}
