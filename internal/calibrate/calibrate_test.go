package calibrate

import (
	"math"
	"testing"
	"time"

	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

func newPair(t *testing.T, cfg simgpu.Config, scheme transfer.Scheme) (*simgpu.Device, *transfer.Engine) {
	t.Helper()
	dev, err := simgpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), scheme)
	if err != nil {
		t.Fatal(err)
	}
	return dev, eng
}

func TestRunProducesValidParams(t *testing.T) {
	cfg := simgpu.GTX650()
	cfg.GlobalWords = 1 << 22
	dev, eng := newPair(t, cfg, transfer.Pinned)
	res, err := Run(dev, eng, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Params
	if err := p.Validate(); err != nil {
		t.Fatalf("calibrated params invalid: %v", err)
	}
	if p.KPrime != cfg.NumSMs || p.H != cfg.MaxBlocksPerSM {
		t.Fatalf("k'=%d H=%d, want %d/%d", p.KPrime, p.H, cfg.NumSMs, cfg.MaxBlocksPerSM)
	}
	if p.Sigma != 50e-6 {
		t.Fatalf("sigma = %g, want 5e-5", p.Sigma)
	}
}

// TestTransferFitRecoversLinkExactly: the engine's cost model is affine, so
// the regression must recover α and β to floating-point accuracy.
func TestTransferFitRecoversLinkExactly(t *testing.T) {
	cfg := simgpu.GTX650()
	cfg.GlobalWords = 1 << 22
	dev, eng := newPair(t, cfg, transfer.Pageable)
	res, err := Run(dev, eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := eng.Model()
	if rel := math.Abs(res.Params.Alpha-want.Alpha) / want.Alpha; rel > 1e-6 {
		t.Fatalf("alpha = %g, want %g", res.Params.Alpha, want.Alpha)
	}
	if rel := math.Abs(res.Params.Beta-want.Beta) / want.Beta; rel > 1e-6 {
		t.Fatalf("beta = %g, want %g", res.Params.Beta, want.Beta)
	}
	if res.TransferFit.R2 < 0.999999 {
		t.Fatalf("transfer fit R2 = %g", res.TransferFit.R2)
	}
}

// TestKernelFitsExplainTheDevice: the compute and memory fits must be
// near-perfect on the deterministic simulator, and the fitted γ̂ must be
// within an order of magnitude of the issue-rate bound clock·k'/factor
// intuition — loose bounds that still catch unit errors (ms vs s, cycles
// vs seconds).
func TestKernelFitsExplainTheDevice(t *testing.T) {
	cfg := simgpu.GTX650()
	cfg.GlobalWords = 1 << 22
	dev, eng := newPair(t, cfg, transfer.Pinned)
	res, err := Run(dev, eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputeFit.R2 < 0.99 {
		t.Fatalf("compute fit R2 = %g", res.ComputeFit.R2)
	}
	if res.MemoryFit.R2 < 0.95 {
		t.Fatalf("memory fit R2 = %g", res.MemoryFit.R2)
	}
	gamma := res.Params.Gamma
	if gamma < cfg.ClockHz/100 || gamma > cfg.ClockHz*100 {
		t.Fatalf("gamma = %g, implausible against clock %g", gamma, cfg.ClockHz)
	}
	if res.Params.Lambda <= 0 {
		t.Fatalf("lambda = %g, want positive", res.Params.Lambda)
	}
}

// TestCalibratedLambdaReflectsLatencyHiding: with many warps hiding
// latency, the effective per-transaction cost must be well below the
// architectural λ of a single isolated access.
func TestCalibratedLambdaReflectsLatencyHiding(t *testing.T) {
	cfg := simgpu.GTX650()
	cfg.GlobalWords = 1 << 22
	dev, eng := newPair(t, cfg, transfer.Pinned)
	res, err := Run(dev, eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	// λ̂ is in cycles of the fitted γ̂: convert to seconds per transaction
	// and compare with the architectural 400-cycle stall at device clock.
	effSecPerTxn := res.Params.Lambda / res.Params.Gamma
	archSecPerTxn := float64(cfg.GlobalLatencyCycles) / cfg.ClockHz
	if effSecPerTxn >= archSecPerTxn {
		t.Fatalf("effective transaction cost %g s not below architectural %g s — latency hiding missing",
			effSecPerTxn, archSecPerTxn)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, nil, 0); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestDatasheet(t *testing.T) {
	cfg := simgpu.GTX650()
	m := transfer.CostModel{Alpha: 1e-5, Beta: 1e-9}
	p := Datasheet(cfg, m, time.Millisecond)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Gamma != cfg.ClockHz || p.Lambda != float64(cfg.GlobalLatencyCycles) {
		t.Fatalf("datasheet params wrong: %+v", p)
	}
	if p.Alpha != 1e-5 || p.Beta != 1e-9 || p.Sigma != 1e-3 {
		t.Fatalf("datasheet transfer params wrong: %+v", p)
	}
}

func TestCalibrationDeterminism(t *testing.T) {
	cfg := simgpu.Tiny()
	d1, e1 := newPair(t, cfg, transfer.Pinned)
	r1, err := Run(d1, e1, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, e2 := newPair(t, cfg, transfer.Pinned)
	r2, err := Run(d2, e2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Params != r2.Params {
		t.Fatalf("calibration not deterministic:\n%+v\nvs\n%+v", r1.Params, r2.Params)
	}
}
