package simgpu

import (
	"errors"
	"testing"
	"time"

	"atgpu/internal/faults"
	"atgpu/internal/kernel"
)

// squareKernel stores (blockID*width+lane)² per thread, enough work to
// exercise scheduling across SMs with a verifiable output.
func squareKernel() *kernel.Program {
	return storePerLane("square", 0, func(kb *kernel.Builder, out kernel.Reg) {
		l := kb.Reg()
		kb.LaneID(l)
		blk := kb.Reg()
		kb.BlockID(blk)
		wdim := kb.Reg()
		kb.BlockDim(wdim)
		kb.Mul(out, blk, kernel.R(wdim))
		kb.Add(out, out, kernel.R(l))
		kb.Mul(out, out, kernel.R(out))
	})
}

func TestDeviceFailSM(t *testing.T) {
	d := newTiny(t) // 2 SMs
	if d.ActiveSMs() != 2 || d.FailedSMs() != nil {
		t.Fatalf("fresh device: active=%d failed=%v", d.ActiveSMs(), d.FailedSMs())
	}
	if err := d.FailSM(2); err == nil {
		t.Error("out-of-range SM index accepted")
	}
	if err := d.FailSM(-1); err == nil {
		t.Error("negative SM index accepted")
	}
	if err := d.FailSM(1); err != nil {
		t.Fatal(err)
	}
	if err := d.FailSM(1); err != nil {
		t.Errorf("re-failing a failed SM should be a no-op: %v", err)
	}
	if d.ActiveSMs() != 1 {
		t.Fatalf("active SMs = %d, want 1", d.ActiveSMs())
	}
	if got := d.FailedSMs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("failed SMs = %v, want [1]", got)
	}
	// The degradation floor: the last active SM cannot be failed.
	if err := d.FailSM(0); !errors.Is(err, ErrLastActiveSM) {
		t.Fatalf("last-SM failure: %v, want ErrLastActiveSM", err)
	}
	d.RestoreSMs()
	if d.ActiveSMs() != 2 || d.FailedSMs() != nil {
		t.Fatal("RestoreSMs left residue")
	}
}

// TestDegradedLaunchExactResults is the degraded-SM correctness test: a
// launch on a device with a failed multiprocessor produces bitwise-equal
// kernel output, just more slowly.
func TestDegradedLaunchExactResults(t *testing.T) {
	const blocks, n = 8, 32 // Tiny: width 4, so 8 blocks fill 32 words

	healthy := newTiny(t)
	prog := squareKernel()
	resHealthy, err := healthy.Launch(prog, blocks)
	if err != nil {
		t.Fatal(err)
	}
	wantOut := runAndRead(t, healthy, prog, 0, n) // re-read memory (0-block launch is a no-op)

	degraded := newTiny(t)
	if err := degraded.FailSM(0); err != nil {
		t.Fatal(err)
	}
	resDegraded, err := degraded.Launch(prog, blocks)
	if err != nil {
		t.Fatal(err)
	}
	gotOut, err := degraded.Global().ReadSlice(0, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("degraded output [%d] = %d, want %d (results must stay exact)", i, gotOut[i], wantOut[i])
		}
	}
	if resDegraded.Time <= resHealthy.Time {
		t.Fatalf("degraded launch (%v) not slower than healthy (%v)", resDegraded.Time, resHealthy.Time)
	}
	if resDegraded.Stats.BlocksExecuted != int64(blocks) {
		t.Fatalf("degraded launch executed %d blocks, want %d", resDegraded.Stats.BlocksExecuted, blocks)
	}
}

// TestDegradedTraceUsesPhysicalIDs: with SM 0 failed, all scheduling
// events must report the surviving physical SM.
func TestDegradedTraceUsesPhysicalIDs(t *testing.T) {
	d := newTiny(t)
	if err := d.FailSM(0); err != nil {
		t.Fatal(err)
	}
	tr := &Tracer{}
	if _, err := d.LaunchTraced(squareKernel(), 4, tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks()) == 0 {
		t.Fatal("no blocks traced")
	}
	for _, sp := range tr.Blocks() {
		if sp.SM != 1 {
			t.Fatalf("block on SM %d, want physical SM 1 (SM 0 is failed)", sp.SM)
		}
	}
}

func TestHostSetFaultsValidation(t *testing.T) {
	h := newHostPair(t, 0)
	if err := h.SetFaults(faults.Nop{}, -time.Second, 1); err == nil {
		t.Error("negative watchdog accepted")
	}
	if err := h.SetFaults(faults.Nop{}, 0, -1); err == nil {
		t.Error("negative relaunch budget accepted")
	}
	if err := h.SetFaults(faults.Nop{}, 0, 0); err != nil {
		t.Errorf("defaulted SetFaults rejected: %v", err)
	}
}

// TestWatchdogRelaunch: a hung launch burns the watchdog timeout on the
// kernel clock and is retried; the retry succeeds.
func TestWatchdogRelaunch(t *testing.T) {
	const wd = 2 * time.Millisecond
	h := newHostPair(t, 0)
	plan := faults.NewPlan().QueueLaunch(
		faults.Decision{Kind: faults.Hang},
		faults.Decision{Kind: faults.Hang},
	)
	if err := h.SetFaults(plan, wd, 3); err != nil {
		t.Fatal(err)
	}
	kb := kernel.NewBuilder("noop", 0)
	kb.Nop()
	if _, err := h.Launch(kb.MustBuild(), 2); err != nil {
		t.Fatal(err)
	}
	r := h.Resilience()
	if r.WatchdogFires != 2 || r.Relaunches != 2 {
		t.Fatalf("resilience = %+v, want 2 fires / 2 relaunches", r)
	}
	if r.WatchdogTime != 2*wd {
		t.Fatalf("watchdog time = %v, want %v", r.WatchdogTime, 2*wd)
	}
	if h.KernelTime() < 2*wd {
		t.Fatalf("kernel clock %v does not include watchdog charges %v", h.KernelTime(), 2*wd)
	}
	if h.Launches() != 1 {
		t.Fatalf("launches = %d, want 1 (hung attempts are not completions)", h.Launches())
	}
	if !r.Degraded() {
		t.Fatal("Degraded() = false after watchdog activity")
	}
	if rep := h.Report(); rep.Resilience != r {
		t.Fatalf("report resilience %+v != host resilience %+v", rep.Resilience, r)
	}
}

// TestWatchdogExhausted: hangs past the relaunch budget fail the launch
// with ErrWatchdogExhausted.
func TestWatchdogExhausted(t *testing.T) {
	h := newHostPair(t, 0)
	plan := faults.NewPlan().QueueLaunch(
		faults.Decision{Kind: faults.Hang},
		faults.Decision{Kind: faults.Hang},
	)
	if err := h.SetFaults(plan, time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	kb := kernel.NewBuilder("noop", 0)
	kb.Nop()
	if _, err := h.Launch(kb.MustBuild(), 1); !errors.Is(err, ErrWatchdogExhausted) {
		t.Fatalf("err = %v, want ErrWatchdogExhausted", err)
	}
	if r := h.Resilience(); r.WatchdogFires != 2 {
		t.Fatalf("resilience = %+v, want 2 fires", r)
	}
}

// TestHostSMFailDegradesGracefully: an injected SM failure marks the SM
// failed, the launch proceeds degraded, and results match the healthy run.
func TestHostSMFailDegradesGracefully(t *testing.T) {
	const blocks, n = 8, 32
	prog := squareKernel()

	healthy := newHostPair(t, 0)
	if _, err := healthy.Launch(prog, blocks); err != nil {
		t.Fatal(err)
	}
	want, err := healthy.Device().Global().ReadSlice(0, n)
	if err != nil {
		t.Fatal(err)
	}

	faulted := newHostPair(t, 0)
	plan := faults.NewPlan().QueueLaunch(faults.Decision{Kind: faults.SMFail, Victim: 1})
	if err := faulted.SetFaults(plan, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := faulted.Launch(prog, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := faulted.Device().Global().ReadSlice(0, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degraded host output [%d] = %d, want %d", i, got[i], want[i])
		}
	}
	r := faulted.Resilience()
	if r.FailedSMs != 1 || r.DegradedLaunches != 1 {
		t.Fatalf("resilience = %+v, want 1 failed SM / 1 degraded launch", r)
	}
	if faulted.Device().ActiveSMs() != 1 {
		t.Fatalf("active SMs = %d, want 1", faulted.Device().ActiveSMs())
	}
	if faulted.KernelTime() <= healthy.KernelTime() {
		t.Fatalf("degraded kernel clock %v not above healthy %v", faulted.KernelTime(), healthy.KernelTime())
	}
	// The shared fault log surfaces through the host.
	if ev := faulted.FaultEvents(); len(ev) != 1 || ev[0].Kind != faults.SMFail {
		t.Fatalf("fault log = %v, want one sm-fail event", ev)
	}
}

// TestSMFailFloorKeepsRunning: injected failures can never take out the
// last SM — the launch continues at minimum capacity instead of dying.
func TestSMFailFloorKeepsRunning(t *testing.T) {
	h := newHostPair(t, 0) // Tiny: 2 SMs
	plan := faults.NewPlan().QueueLaunch(
		faults.Decision{Kind: faults.SMFail, Victim: 0},
	).QueueLaunch(
		faults.Decision{Kind: faults.SMFail, Victim: 1},
	)
	if err := h.SetFaults(plan, 0, 0); err != nil {
		t.Fatal(err)
	}
	prog := squareKernel()
	if _, err := h.Launch(prog, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Launch(prog, 4); err != nil {
		t.Fatal(err)
	}
	r := h.Resilience()
	if r.FailedSMs != 1 {
		t.Fatalf("failed SMs = %d, want 1 (floor refused the second)", r.FailedSMs)
	}
	if h.Device().ActiveSMs() != 1 {
		t.Fatalf("active SMs = %d, want 1", h.Device().ActiveSMs())
	}
	if r.DegradedLaunches != 2 {
		t.Fatalf("degraded launches = %d, want 2", r.DegradedLaunches)
	}
}

// TestResetClocksResilience: ResetClocks zeroes resilience counters but
// keeps SM health (hardware state, not round state).
func TestResetClocksResilience(t *testing.T) {
	h := newHostPair(t, 0)
	plan := faults.NewPlan().QueueLaunch(faults.Decision{Kind: faults.SMFail, Victim: 0})
	if err := h.SetFaults(plan, 0, 0); err != nil {
		t.Fatal(err)
	}
	kb := kernel.NewBuilder("noop", 0)
	kb.Nop()
	if _, err := h.Launch(kb.MustBuild(), 1); err != nil {
		t.Fatal(err)
	}
	h.ResetClocks()
	if h.Resilience() != (ResilienceStats{}) {
		t.Fatalf("ResetClocks left resilience residue: %+v", h.Resilience())
	}
	if h.Device().ActiveSMs() != 1 {
		t.Fatal("ResetClocks must not restore failed SMs")
	}
}

func TestResilienceMerge(t *testing.T) {
	a := ResilienceStats{Relaunches: 1, WatchdogFires: 2, WatchdogTime: time.Second}
	b := ResilienceStats{DegradedLaunches: 3, FailedSMs: 1, WatchdogTime: time.Second}
	a.Merge(b)
	want := ResilienceStats{Relaunches: 1, WatchdogFires: 2, WatchdogTime: 2 * time.Second, DegradedLaunches: 3, FailedSMs: 1}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
	if (ResilienceStats{}).Degraded() {
		t.Fatal("zero resilience reports degraded")
	}
}
