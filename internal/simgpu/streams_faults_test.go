package simgpu

import (
	"testing"
	"time"

	"atgpu/internal/faults"
	"atgpu/internal/mem"
	"atgpu/internal/timeline"
	"atgpu/internal/transfer"
)

// streamFaultRun drives one overlapped two-stream round: stream "in"
// moves data to the device while stream "run" launches a kernel and
// reads back an untouched region. It returns the host plus the
// round-trip data for verification.
func streamFaultRun(t *testing.T, inj faults.Injector) (*Host, int, []mem.Word, []mem.Word) {
	t.Helper()
	h := newHostPair(t, 0)
	if inj != nil {
		eng := h.Engine()
		if err := eng.SetFaults(inj, noJitterHostPolicy(3)); err != nil {
			t.Fatal(err)
		}
		if err := h.SetFaults(inj, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	base, err := h.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	// Preload the region stream "run" reads back, on the default stream.
	preload := seqWords(64)
	if err := h.TransferIn(base+128, preload); err != nil {
		t.Fatal(err)
	}
	h.Sync()

	sIn := h.NewStream("in")
	sRun := h.NewStream("run")
	data := seqWords(128)
	if err := h.AsyncTransferIn(sIn, base, data); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AsyncLaunch(sRun, squareKernel(), 4); err != nil {
		t.Fatal(err)
	}
	out, err := h.AsyncTransferOut(sRun, base+128, 64)
	if err != nil {
		t.Fatal(err)
	}
	h.EndRound()
	return h, base, data, out
}

// noJitterHostPolicy mirrors transfer's test policy for exact charges.
func noJitterHostPolicy(maxRetries int) transfer.RetryPolicy {
	return transfer.RetryPolicy{
		MaxRetries:    maxRetries,
		Backoff:       10 * time.Microsecond,
		BackoffFactor: 2,
		MaxBackoff:    time.Millisecond,
		Jitter:        0,
		Seed:          1,
	}
}

// opsOn filters a schedule down to one resource.
func opsOn(ops []timeline.Op, resource string) []timeline.Op {
	var out []timeline.Op
	for _, op := range ops {
		if op.Resource == resource {
			out = append(out, op)
		}
	}
	return out
}

// TestStreamFaultDoesNotPerturbOtherStream: a corrupt-retried transfer
// on one stream must widen only its own link occupancy; the concurrent
// stream's kernel and D2H intervals stay exactly where the fault-free
// schedule put them, and the retried data still lands intact.
func TestStreamFaultDoesNotPerturbOtherStream(t *testing.T) {
	clean, _, cleanData, cleanOut := streamFaultRun(t, nil)

	// The preload is the first H2D transaction; fault the overlapped one
	// (second H2D decision) and leave everything else clean.
	plan := faults.NewPlan().
		QueueTransfer(faults.SiteH2D, faults.Decision{}).
		QueueTransfer(faults.SiteH2D, faults.Decision{Kind: faults.Corrupt, WordIndex: 9, Mask: 0xf0})
	faulted, faultedBase, faultedData, faultedOut := streamFaultRun(t, plan)

	if st := faulted.TransferStats(); st.Retries != 1 || st.CorruptionsDetected != 1 {
		t.Fatalf("expected exactly one retried corruption, got %+v", st)
	}

	// The other stream's events are untouched, interval for interval.
	cleanOps, faultedOps := clean.Timeline().Ops(), faulted.Timeline().Ops()
	for _, resource := range []string{"compute", "d2h"} {
		a, b := opsOn(cleanOps, resource), opsOn(faultedOps, resource)
		if len(a) != len(b) {
			t.Fatalf("%s op count changed: %d vs %d", resource, len(a), len(b))
		}
		for i := range a {
			if a[i].Start != b[i].Start || a[i].End != b[i].End {
				t.Fatalf("%s op %d moved under fault: %+v vs %+v", resource, i, b[i], a[i])
			}
		}
	}

	// The faulted stream's link occupancy widened by retry + backoff.
	if faulted.TransferTime() <= clean.TransferTime() {
		t.Fatalf("faulted transfer time %v not larger than clean %v",
			faulted.TransferTime(), clean.TransferTime())
	}

	// Data correctness: device memory is bit-identical to the fault-free
	// run (the kernel overwrites the first words, so compare run to run),
	// and the words past the kernel's output are the retried input.
	landed, err := faulted.Device().Global().ReadSlice(faultedBase, len(faultedData))
	if err != nil {
		t.Fatal(err)
	}
	cleanLanded, err := clean.Device().Global().ReadSlice(faultedBase, len(cleanData))
	if err != nil {
		t.Fatal(err)
	}
	for i := range landed {
		if landed[i] != cleanLanded[i] {
			t.Fatalf("landed word %d = %d, clean run has %d", i, landed[i], cleanLanded[i])
		}
	}
	const kernelWords = 16 // 4 blocks × Tiny width 4 land at offset 0
	for i := kernelWords; i < len(faultedData); i++ {
		if landed[i] != faultedData[i] {
			t.Fatalf("retried word %d = %d, want %d", i, landed[i], faultedData[i])
		}
	}
	for i := range cleanOut {
		if faultedOut[i] != cleanOut[i] {
			t.Fatalf("readback word %d = %d, want %d", i, faultedOut[i], cleanOut[i])
		}
	}
}

// TestStreamFaultDeterministicReplay: the same plan replays to an
// op-for-op identical overlapped schedule.
func TestStreamFaultDeterministicReplay(t *testing.T) {
	plan := func() faults.Injector {
		return faults.NewPlan().
			QueueTransfer(faults.SiteH2D, faults.Decision{Kind: faults.Stall, StallFactor: 4}).
			QueueTransfer(faults.SiteH2D, faults.Decision{Kind: faults.Drop})
	}
	h1, _, _, _ := streamFaultRun(t, plan())
	h2, _, _, _ := streamFaultRun(t, plan())
	a, b := h1.Timeline().Ops(), h2.Timeline().Ops()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End || a[i].Resource != b[i].Resource {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if h1.TotalTime() != h2.TotalTime() {
		t.Fatalf("makespans differ: %v vs %v", h1.TotalTime(), h2.TotalTime())
	}
}

// TestStreamWatchdogChargesInStream: a hung launch on an explicit
// stream burns the watchdog on the compute resource in stream order,
// leaving a concurrent stream's transfer where it was.
func TestStreamWatchdogChargesInStream(t *testing.T) {
	plan := faults.NewPlan().QueueLaunch(faults.Decision{Kind: faults.Hang})
	h := newHostPair(t, 0)
	if err := h.SetFaults(plan, time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	base, err := h.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	sIn := h.NewStream("in")
	sRun := h.NewStream("run")
	if err := h.AsyncTransferIn(sIn, base, seqWords(128)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AsyncLaunch(sRun, squareKernel(), 2); err != nil {
		t.Fatal(err)
	}
	res := h.Resilience()
	if res.WatchdogFires != 1 || res.Relaunches != 1 {
		t.Fatalf("resilience = %+v, want one fire and one relaunch", res)
	}
	compute := opsOn(h.Timeline().Ops(), "compute")
	if len(compute) != 2 {
		t.Fatalf("compute ops = %d, want watchdog + relaunch", len(compute))
	}
	if compute[0].End != time.Millisecond {
		t.Fatalf("watchdog occupancy ends at %v, want 1ms", compute[0].End)
	}
	if compute[1].Start != compute[0].End {
		t.Fatalf("relaunch starts at %v, want chained after watchdog %v",
			compute[1].Start, compute[0].End)
	}
	if h.KernelTime() <= time.Millisecond {
		t.Fatal("kernel clock missing the watchdog charge")
	}
}
