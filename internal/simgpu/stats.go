package simgpu

import (
	"fmt"
	"strings"
	"time"

	"atgpu/internal/kernel"
)

// KernelStats aggregates everything the device observed during one launch.
// Several fields correspond one-to-one with ATGPU metrics, noted below, so
// analyses can be audited against executions.
type KernelStats struct {
	// Cycles is the total device cycles from launch to last warp
	// retirement.
	Cycles int64
	// InstructionsIssued counts warp-instructions issued (each counts
	// once regardless of active lane count).
	InstructionsIssued int64
	// LaneOps counts lane-instructions executed (instructions × active
	// lanes); the model's per-round operation count tᵢ corresponds to the
	// longest per-MP instruction stream, reported separately.
	LaneOps int64

	// GlobalAccesses counts warp-wide global memory instructions.
	GlobalAccesses int64
	// GlobalTransactions is Σl over those accesses — the model's I/O
	// metric qᵢ for the round this launch implements.
	GlobalTransactions int64
	// UncoalescedAccesses counts warp accesses with l > 1.
	UncoalescedAccesses int64

	// SharedAccesses counts warp-wide shared memory instructions.
	SharedAccesses int64
	// BankConflicts counts warp accesses with conflict degree > 1.
	BankConflicts int64
	// MaxConflictDegree is the worst serialisation factor seen.
	MaxConflictDegree int

	// AtomicAccesses counts warp-wide atomic instructions that touched
	// memory (shared or global); atomics are tracked separately from the
	// plain load/store counters so the model's qᵢ metric is unchanged.
	AtomicAccesses int64
	// AtomicSerialisations is Σ(degree−1) over atomic accesses: the extra
	// serialised replays conflicting lanes cost beyond a conflict-free
	// access (per bank for shared atomics, per address for global ones).
	AtomicSerialisations int64
	// MaxAtomicDegree is the worst per-access atomic serialisation factor.
	MaxAtomicDegree int
	// MaxWarpAtomicSerial is the largest per-warp Σ(degree−1) across all
	// blocks — the scheduling-independent serialisation term the static
	// contention model predicts.
	MaxWarpAtomicSerial int64

	// Barriers counts barrier instructions executed.
	Barriers int64
	// DivergentBranches counts if.begin executions where the warp split
	// (some active lanes took the body, some did not).
	DivergentBranches int64

	// StallCycles counts cycles where an SM had resident warps but none
	// ready (memory latency not hidden).
	StallCycles int64
	// IdleCycles counts SM-cycles with no resident block.
	IdleCycles int64

	// BlocksExecuted is the number of thread blocks retired.
	BlocksExecuted int64
	// MaxResidentBlocks is the peak per-SM residency achieved (≤ ℓ).
	MaxResidentBlocks int
	// OccupancyLimit is ℓ = min(⌊M/m⌋, H) for the launched program.
	OccupancyLimit int
	// MaxWarpInstrs is the longest single-warp instruction stream — the
	// empirical analogue of the model's tᵢ ("maximum number of operations
	// across all MPs").
	MaxWarpInstrs int64
}

// Merge folds other into s, used when a logical round spans several
// launches.
func (s *KernelStats) Merge(other KernelStats) {
	s.Cycles += other.Cycles
	s.InstructionsIssued += other.InstructionsIssued
	s.LaneOps += other.LaneOps
	s.GlobalAccesses += other.GlobalAccesses
	s.GlobalTransactions += other.GlobalTransactions
	s.UncoalescedAccesses += other.UncoalescedAccesses
	s.SharedAccesses += other.SharedAccesses
	s.BankConflicts += other.BankConflicts
	if other.MaxConflictDegree > s.MaxConflictDegree {
		s.MaxConflictDegree = other.MaxConflictDegree
	}
	s.AtomicAccesses += other.AtomicAccesses
	s.AtomicSerialisations += other.AtomicSerialisations
	if other.MaxAtomicDegree > s.MaxAtomicDegree {
		s.MaxAtomicDegree = other.MaxAtomicDegree
	}
	if other.MaxWarpAtomicSerial > s.MaxWarpAtomicSerial {
		s.MaxWarpAtomicSerial = other.MaxWarpAtomicSerial
	}
	s.Barriers += other.Barriers
	s.DivergentBranches += other.DivergentBranches
	s.StallCycles += other.StallCycles
	s.IdleCycles += other.IdleCycles
	s.BlocksExecuted += other.BlocksExecuted
	if other.MaxResidentBlocks > s.MaxResidentBlocks {
		s.MaxResidentBlocks = other.MaxResidentBlocks
	}
	if other.OccupancyLimit > s.OccupancyLimit {
		s.OccupancyLimit = other.OccupancyLimit
	}
	if other.MaxWarpInstrs > s.MaxWarpInstrs {
		s.MaxWarpInstrs = other.MaxWarpInstrs
	}
}

// String renders a compact multi-line report.
func (s KernelStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles=%d instrs=%d laneOps=%d\n", s.Cycles, s.InstructionsIssued, s.LaneOps)
	fmt.Fprintf(&sb, "global: accesses=%d transactions=%d uncoalesced=%d\n",
		s.GlobalAccesses, s.GlobalTransactions, s.UncoalescedAccesses)
	fmt.Fprintf(&sb, "shared: accesses=%d conflicts=%d maxDegree=%d\n",
		s.SharedAccesses, s.BankConflicts, s.MaxConflictDegree)
	if s.AtomicAccesses > 0 {
		fmt.Fprintf(&sb, "atomic: accesses=%d serialisations=%d maxDegree=%d maxWarpSerial=%d\n",
			s.AtomicAccesses, s.AtomicSerialisations, s.MaxAtomicDegree, s.MaxWarpAtomicSerial)
	}
	fmt.Fprintf(&sb, "control: barriers=%d divergent=%d\n", s.Barriers, s.DivergentBranches)
	fmt.Fprintf(&sb, "sched: stall=%d idle=%d blocks=%d maxResident=%d occLimit=%d maxWarpInstrs=%d",
		s.StallCycles, s.IdleCycles, s.BlocksExecuted, s.MaxResidentBlocks, s.OccupancyLimit, s.MaxWarpInstrs)
	return sb.String()
}

// SiteStat is the observed memory behaviour of one load/store instruction
// over a whole launch: how often the site executed (fully-masked executions
// are skipped) and how well it coalesced or banked. Collected only when the
// device's site collection is enabled (Device.SetCollectSites), since the
// per-instruction table costs a little on every access.
type SiteStat struct {
	// PC is the instruction index within the program.
	PC int
	// Line is the pseudocode source line (0 without a line table).
	Line int
	// Op is the memory opcode at the site.
	Op kernel.Op
	// Accesses counts warp-wide executions that touched memory.
	Accesses int64
	// Transactions is Σl over the site's global accesses.
	Transactions int64
	// Uncoalesced counts global accesses here with l > 1.
	Uncoalesced int64
	// Conflicted counts shared accesses here with conflict degree > 1.
	Conflicted int64
	// MaxDegree is the worst serialisation at the site: max transaction
	// count for global sites, max conflict degree for shared sites.
	MaxDegree int
}

// KernelResult is the outcome of one launch.
type KernelResult struct {
	// Time is the simulated wall time of the kernel (cycles / clock).
	Time time.Duration
	// Stats holds the detailed counters.
	Stats KernelStats
	// Sites holds per-access-site counters, ascending by PC, when site
	// collection is enabled; nil otherwise.
	Sites []SiteStat
}
