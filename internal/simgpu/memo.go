package simgpu

import (
	"fmt"
	"hash/maphash"

	"atgpu/internal/kernel"
)

// Block memoization
//
// For a kernel carrying the analyzer's BlockUniform certificate, every
// thread block issues the same instruction trace with the same per-position
// transaction counts and latencies, and the blocks' global writes are
// mutually disjoint. Under those guarantees the scheduler — warp states,
// round-robin pointers, the shared memory-controller horizon — is a
// deterministic function of its *relative* state: each warp's trace
// position, its readiness offset from the current cycle, and its block's
// offset from the refill frontier. Absolute block IDs and register contents
// cannot influence it.
//
// The device exploits this by fingerprinting the relative scheduler state
// at block-retire boundaries. When a fingerprint recurs, the launch has
// entered a steady state with period T cycles and d blocks: every further T
// cycles the scheduler returns to the same relative state having placed d
// more blocks and accrued the same statistics delta. Instead of simulating
// all K remaining repetitions, the launch (a) shrinks the scheduler's block
// budget by K*d so the simulation proceeds — unmodified, on real data —
// through the warmup, one remaining stretch of periods, and the exact same
// drain tail, and (b) afterwards adds K*T cycles and K times the period's
// additive statistics, and (c) replays the K*d elided blocks through a
// data-only interpreter so global memory ends byte-identical (certificate
// disjointness makes the replay order irrelevant). Timing, counters, and
// memory match full simulation exactly; the differential tests pin this.
//
// Memoization never engages when a tracer is attached (traces carry
// per-block detail), when site collection is on, when a fault injector is
// armed, when the program is not certified, or when the launch is too small
// to have a steady state worth skipping.

const (
	// memoMinBlocks is the smallest launch worth fingerprinting.
	memoMinBlocks = 64
	// memoMaxSnaps bounds the stored fingerprint set; exotic schedules
	// that never recur within the budget give up and simulate fully.
	memoMaxSnaps = 4096
)

// memoSnap is one recorded scheduler fingerprint.
type memoSnap struct {
	state     []int64
	cycle     int64
	nextBlock int
	stats     KernelStats
}

// memoState carries period detection for one launch.
type memoState struct {
	snaps map[uint64][]memoSnap
	seed  maphash.Seed
	enc   []int64
	count int
	off   bool

	// Applied skip, consumed by finishMemo.
	applied      bool
	periods      int64
	periodCycles int64
	delta        KernelStats
	replayFrom   int
}

// observe fingerprints the scheduler's relative state at a retire boundary
// and applies a period skip when the state recurs.
func (m *memoState) observe(ls *launchState) {
	if m.off || m.applied {
		return
	}
	remaining := ls.schedBlocks - ls.nextBlock
	if remaining <= 0 {
		return
	}
	if m.count >= memoMaxSnaps {
		m.off = true
		return
	}
	m.enc = encodeRelState(ls, m.enc[:0])
	if m.snaps == nil {
		m.snaps = make(map[uint64][]memoSnap)
		m.seed = maphash.MakeSeed()
	}
	var h maphash.Hash
	h.SetSeed(m.seed)
	for _, v := range m.enc {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	key := h.Sum64()
	for _, s := range m.snaps[key] {
		if !equalStates(s.state, m.enc) {
			continue
		}
		d := ls.nextBlock - s.nextBlock
		if d <= 0 {
			continue
		}
		// Skip as many whole periods as possible while leaving at least
		// two periods' worth of blocks so the remaining simulation still
		// walks through a full period and the genuine drain tail.
		k := int64(remaining)/int64(d) - 2
		if k < 1 {
			continue
		}
		m.applied = true
		m.periods = k
		m.periodCycles = ls.cycle - s.cycle
		m.delta = diffAdditive(ls.stats, s.stats)
		ls.schedBlocks -= int(k) * d
		m.replayFrom = ls.schedBlocks
		ls.d.memoSkips++
		return
	}
	snap := memoSnap{
		state:     append([]int64(nil), m.enc...),
		cycle:     ls.cycle,
		nextBlock: ls.nextBlock,
		stats:     ls.stats,
	}
	m.snaps[key] = append(m.snaps[key], snap)
	m.count++
}

// encodeRelState flattens everything the scheduler's future behaviour can
// depend on, relative to the current cycle and refill frontier: per-SM
// round-robin pointers and resident warps (block offset, trace position,
// state, readiness offset) plus the memory-controller horizon. Register
// contents and absolute block IDs are deliberately excluded — the
// BlockUniform certificate proves they cannot steer scheduling.
func encodeRelState(ls *launchState, enc []int64) []int64 {
	memRel := ls.memFree - ls.cycle
	if memRel < 0 {
		// A drained controller behaves identically at any offset ≤ 0.
		memRel = 0
	}
	enc = append(enc, memRel)
	for _, sm := range ls.sms {
		enc = append(enc, int64(sm.rr), int64(len(sm.resident)))
		for _, w := range sm.resident {
			rel := int64(0)
			if w.state == wWaiting {
				rel = w.readyAt - ls.cycle
			}
			enc = append(enc,
				int64(w.blockID-ls.nextBlock),
				int64(w.pc),
				w.instrs,
				int64(w.state),
				rel)
		}
	}
	return enc
}

func equalStates(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffAdditive returns cur-prev over the additive KernelStats fields.
// Max/occupancy fields are excluded: within a steady-state period they are
// already achieved by the remaining simulation.
func diffAdditive(cur, prev KernelStats) KernelStats {
	return KernelStats{
		InstructionsIssued:  cur.InstructionsIssued - prev.InstructionsIssued,
		LaneOps:             cur.LaneOps - prev.LaneOps,
		GlobalAccesses:      cur.GlobalAccesses - prev.GlobalAccesses,
		GlobalTransactions:  cur.GlobalTransactions - prev.GlobalTransactions,
		UncoalescedAccesses: cur.UncoalescedAccesses - prev.UncoalescedAccesses,
		SharedAccesses:      cur.SharedAccesses - prev.SharedAccesses,
		BankConflicts:       cur.BankConflicts - prev.BankConflicts,
		Barriers:            cur.Barriers - prev.Barriers,
		DivergentBranches:   cur.DivergentBranches - prev.DivergentBranches,
		StallCycles:         cur.StallCycles - prev.StallCycles,
		IdleCycles:          cur.IdleCycles - prev.IdleCycles,
		BlocksExecuted:      cur.BlocksExecuted - prev.BlocksExecuted,
	}
}

// addScaled folds k repetitions of the additive delta into s.
func (s *KernelStats) addScaled(d KernelStats, k int64) {
	s.InstructionsIssued += k * d.InstructionsIssued
	s.LaneOps += k * d.LaneOps
	s.GlobalAccesses += k * d.GlobalAccesses
	s.GlobalTransactions += k * d.GlobalTransactions
	s.UncoalescedAccesses += k * d.UncoalescedAccesses
	s.SharedAccesses += k * d.SharedAccesses
	s.BankConflicts += k * d.BankConflicts
	s.Barriers += k * d.Barriers
	s.DivergentBranches += k * d.DivergentBranches
	s.StallCycles += k * d.StallCycles
	s.IdleCycles += k * d.IdleCycles
	s.BlocksExecuted += k * d.BlocksExecuted
}

// finishMemo applies a recorded period skip after the (shrunken) simulation
// completes: scale in the skipped periods' time and counters, then replay
// the elided blocks' data effects.
func (ls *launchState) finishMemo() error {
	m := ls.memo
	if m == nil || !m.applied {
		return nil
	}
	ls.cycle += m.periods * m.periodCycles
	ls.stats.addScaled(m.delta, m.periods)
	return ls.memoReplay(m.replayFrom, ls.numBlocks)
}

// memoReplay runs blocks [from, to) through the data-only interpreter so
// their register-file-to-memory effects land exactly as full simulation
// would have produced them. The certificate guarantees the blocks' global
// writes are disjoint from each other and from the simulated blocks', so
// replay order is irrelevant.
func (ls *launchState) memoReplay(from, to int) error {
	w, err := ls.acquire()
	if err != nil {
		return err
	}
	for blk := from; blk < to; blk++ {
		w.reset(blk)
		if err := ls.replayBlock(w); err != nil {
			return fmt.Errorf("%w: kernel %s block %d pc %d (memo replay): %w",
				ErrKernelTrap, ls.prog.Name, blk, w.pc, err)
		}
	}
	ls.freeWarps = append(ls.freeWarps, w)
	return nil
}

// replayBlock executes one block's decoded trace for data effects only: no
// statistics, no latencies, no scheduling. Control flow, traps and memory
// bounds behave exactly as in execDec. The instruction budget is bounded by
// the longest trace the real simulation observed — the certificate proves
// all blocks trace identically, so exceeding it means the certificate was
// wrong and the launch fails loudly rather than diverge silently.
func (ls *launchState) replayBlock(w *warp) error {
	ins := ls.dec.Ins
	budget := ls.stats.MaxWarpInstrs
	gsize := ls.d.global.Size()
	graw := ls.d.global.Raw()
	width := ls.width
	regs := w.regs
	pc := 0
	var instrs int64
	for {
		if pc < 0 || pc >= len(ins) {
			w.pc = pc
			return errPCRange
		}
		if instrs >= budget {
			w.pc = pc
			return fmt.Errorf("memo replay exceeded %d instructions (certificate violated)", budget)
		}
		in := &ins[pc]
		instrs++

		switch in.Op {
		case kernel.OpLdGlobal:
			a, d := int(in.A), int(in.D)
			if w.activeN == width {
				ac := regs[a : a+width : a+width]
				for l := 0; l < width; l++ {
					addr := ac[l]
					if uint64(addr) >= uint64(gsize) {
						w.pc = pc
						return fmt.Errorf("%w: global %s lane %d addr %d (G=%d)",
							errAddrRange, in.Op, l, addr, gsize)
					}
					regs[d+l] = graw[addr]
				}
			} else {
				for l := 0; l < width; l++ {
					if !w.active[l] {
						continue
					}
					addr := regs[a+l]
					if uint64(addr) >= uint64(gsize) {
						w.pc = pc
						return fmt.Errorf("%w: global %s lane %d addr %d (G=%d)",
							errAddrRange, in.Op, l, addr, gsize)
					}
					regs[d+l] = graw[addr]
				}
			}

		case kernel.OpStGlobal:
			a, s := int(in.A), int(in.B)
			if w.activeN == width {
				ac := regs[a : a+width : a+width]
				sc := regs[s : s+width : s+width]
				for l := 0; l < width; l++ {
					addr := ac[l]
					if uint64(addr) >= uint64(gsize) {
						w.pc = pc
						return fmt.Errorf("%w: global %s lane %d addr %d (G=%d)",
							errAddrRange, in.Op, l, addr, gsize)
					}
					graw[addr] = sc[l]
				}
			} else {
				for l := 0; l < width; l++ {
					if !w.active[l] {
						continue
					}
					addr := regs[a+l]
					if uint64(addr) >= uint64(gsize) {
						w.pc = pc
						return fmt.Errorf("%w: global %s lane %d addr %d (G=%d)",
							errAddrRange, in.Op, l, addr, gsize)
					}
					graw[addr] = regs[s+l]
				}
			}

		case kernel.OpLdShared:
			a, d := int(in.A), int(in.D)
			sraw := w.shared.Raw()
			ssize := w.shared.Size()
			for l := 0; l < width; l++ {
				if !w.active[l] {
					continue
				}
				addr := regs[a+l]
				if uint64(addr) >= uint64(ssize) {
					w.pc = pc
					return fmt.Errorf("%w: shared %s lane %d addr %d (M-alloc=%d)",
						errAddrRange, in.Op, l, addr, ssize)
				}
				regs[d+l] = sraw[addr]
			}

		case kernel.OpStShared:
			a, s := int(in.A), int(in.B)
			sraw := w.shared.Raw()
			ssize := w.shared.Size()
			for l := 0; l < width; l++ {
				if !w.active[l] {
					continue
				}
				addr := regs[a+l]
				if uint64(addr) >= uint64(ssize) {
					w.pc = pc
					return fmt.Errorf("%w: shared %s lane %d addr %d (M-alloc=%d)",
						errAddrRange, in.Op, l, addr, ssize)
				}
				sraw[addr] = regs[s+l]
			}

		case kernel.OpBarrier:
			// data-free

		case kernel.OpJump:
			pc = int(in.Target)
			continue

		case kernel.OpBrNZ:
			taken, uniform, any := w.uniformCond(int(in.A))
			if !any {
				w.pc = pc
				return errNoActiveBr
			}
			if !uniform {
				w.pc = pc
				return ErrDivergentLoop
			}
			if taken {
				pc = int(in.Target)
				continue
			}

		case kernel.OpIfBegin:
			a := int(in.A)
			anyTrue := false
			for l := 0; l < width; l++ {
				if w.active[l] && regs[a+l] != 0 {
					anyTrue = true
					break
				}
			}
			if !anyTrue {
				pc = int(in.Target)
				continue
			}
			w.pushMask()
			for l := 0; l < width; l++ {
				if w.active[l] && regs[a+l] == 0 {
					w.active[l] = false
					w.activeN--
				}
			}

		case kernel.OpIfEnd:
			if !w.popMask() {
				w.pc = pc
				return errMaskPop
			}

		case kernel.OpHalt:
			return nil

		default:
			if err := ls.execALU(w, in); err != nil {
				w.pc = pc
				return err
			}
		}
		pc++
	}
}
