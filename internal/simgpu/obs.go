package simgpu

import (
	"fmt"
	"strconv"
	"time"

	"atgpu/internal/obs"
	"atgpu/internal/timeline"
)

// Host-side observability wiring: one recorder and one registry are
// attached with SetObs and every layer below feeds them on the shared
// simulated clock. The timeline observer mirrors each scheduled op as a
// "host" resource-occupancy span (tracks h2d/d2h/compute/sync) and,
// when the op was issued by a stream, as a "streams" per-stream span;
// the transfer engine adds "transfer" transaction spans with retry
// detail (its SetObs is forwarded to); kernel launches embed the device
// Tracer's block spans as "device" SM-slot slices, with device cycles
// converted onto the simulated-time axis at the device clock.

// SetObs attaches the unified observability sinks to the host and
// forwards them to its transfer engine. Nil sinks disable the
// respective surface (and cost the hot paths exactly one nil check);
// attaching mid-run starts recording from that point.
//
// Device block spans additionally require a Tracer (SetTracer): without
// one, kernel launches still emit compute-occupancy and stream spans
// but no per-block slices.
func (h *Host) SetObs(rec *obs.Recorder, met *obs.Registry) {
	h.orec = rec
	h.omet = met
	h.engine.SetObs(rec, met)
	if rec == nil && met == nil {
		h.tl.SetObserver(nil)
		return
	}
	h.tl.SetObserver(h.observeOp)
}

// observeOp mirrors one scheduled timeline op into the trace and
// metrics. Runs synchronously inside Schedule, on the host goroutine.
func (h *Host) observeOp(op timeline.Op) {
	h.orec.Span("host", op.Resource, op.Label, op.Start, op.End)
	if h.obsStream != "" {
		h.orec.Span("streams", "stream "+h.obsStream, op.Label, op.Start, op.End)
	}
	if h.omet == nil {
		return
	}
	d := op.End - op.Start
	switch op.Resource {
	case "h2d":
		h.omet.AddDuration("atgpu_host_h2d_busy_ns_total", d)
	case "d2h":
		h.omet.AddDuration("atgpu_host_d2h_busy_ns_total", d)
	case "compute":
		h.omet.AddDuration("atgpu_host_compute_busy_ns_total", d)
	case "sync":
		h.omet.AddDuration("atgpu_host_sync_busy_ns_total", d)
	}
}

// enterStream / leaveStream bracket an async issue so the observer can
// tag the scheduled ops with the issuing stream. Split into two plain
// methods (rather than a returned closure) to keep the disabled path
// free of allocations.
func (h *Host) enterStream(s *Stream) {
	if h.orec != nil {
		h.obsStream = s.name
	}
}

func (h *Host) leaveStream() { h.obsStream = "" }

// cyclesToDuration maps device cycles onto the simulated-time axis at
// the device clock, mirroring the Time conversion of KernelResult.
func (h *Host) cyclesToDuration(c int64) time.Duration {
	return time.Duration(h.dev.Config().CyclesToSeconds(c) * float64(time.Second))
}

// emitBlockSpans embeds the block spans the Tracer captured for one
// launch (those recorded at index ≥ first) into the trace as "device"
// process slices, shifted so cycle 0 lands at the kernel op's start on
// the compute resource. Blocks overlap on an SM (occupancy > 1), and
// the trace format forbids overlapping slices on one track, so blocks
// are packed into per-SM residency slots by a greedy interval
// partition: a block takes the first slot of its SM that is free at its
// schedule cycle. Slot count therefore equals the launch's peak
// residency per SM.
func (h *Host) emitBlockSpans(prog string, first int, kernelStart time.Duration) {
	blocks := h.tracer.blocks[first:]
	// slotFree[sm] holds the retire cycle of the last block packed into
	// each of sm's slots; blocks arrive in schedule-cycle order.
	slotFree := map[int][]int64{}
	for _, b := range blocks {
		end := b.Retired
		if end < 0 {
			end = b.Scheduled
		}
		slot := -1
		for i, free := range slotFree[b.SM] {
			if free <= b.Scheduled {
				slot = i
				break
			}
		}
		if slot < 0 {
			slot = len(slotFree[b.SM])
			slotFree[b.SM] = append(slotFree[b.SM], 0)
		}
		slotFree[b.SM][slot] = end
		h.orec.Span("device",
			fmt.Sprintf("SM%02d.%d", b.SM, slot),
			fmt.Sprintf("%s block %d", prog, b.Block),
			kernelStart+h.cyclesToDuration(b.Scheduled),
			kernelStart+h.cyclesToDuration(end),
			obs.Arg{Key: "instrs", Value: strconv.FormatInt(b.Instrs, 10)},
		)
	}
}

// SnapshotObs finalises run-level gauges (totals the per-op counters
// cannot express, like the overlapped makespan) and bundles the trace
// with a metrics snapshot. Returns nil when no sink is attached.
func (h *Host) SnapshotObs() *obs.Report {
	if h.orec == nil && h.omet == nil {
		return nil
	}
	// A truncated device Tracer means embedded block spans are missing,
	// so the trace as a whole is incomplete.
	if h.orec != nil && h.tracer != nil && h.tracer.Truncated {
		h.orec.Truncated = true
	}
	if h.omet != nil {
		h.omet.Set("atgpu_host_total_ns", float64(h.TotalTime().Nanoseconds()))
		h.omet.Set("atgpu_host_overlap_saved_ns", float64(h.OverlapSaved().Nanoseconds()))
		h.omet.Set("atgpu_host_transfer_fraction", h.Report().TransferFraction())
	}
	return &obs.Report{Trace: h.orec, Metrics: h.omet.Snapshot()}
}
