package simgpu

import (
	"errors"
	"fmt"
	"time"

	"atgpu/internal/faults"
	"atgpu/internal/kernel"
	"atgpu/internal/mem"
	"atgpu/internal/obs"
	"atgpu/internal/timeline"
	"atgpu/internal/transfer"
)

// DefaultWatchdog is the kernel watchdog timeout used when SetFaults is
// given zero: generous against every simulated kernel in the suite while
// keeping a hung sweep point cheap.
const DefaultWatchdog = 10 * time.Millisecond

// DefaultMaxRelaunches bounds watchdog-triggered kernel relaunches.
const DefaultMaxRelaunches = 3

// ErrWatchdogExhausted is returned when a kernel still hangs after the
// host's full relaunch budget.
var ErrWatchdogExhausted = errors.New("simgpu: watchdog relaunch budget exhausted")

// ResilienceStats counts the host's fault-recovery work. All fields stay
// zero without an injector attached.
type ResilienceStats struct {
	// Relaunches counts watchdog-triggered kernel relaunches.
	Relaunches int
	// WatchdogFires counts hung launches detected.
	WatchdogFires int
	// WatchdogTime is the simulated time lost to hung launches.
	WatchdogTime time.Duration
	// DegradedLaunches counts launches run with at least one failed SM.
	DegradedLaunches int
	// FailedSMs counts multiprocessors taken out of service.
	FailedSMs int
}

// Degraded reports whether any fault-recovery work happened.
func (r ResilienceStats) Degraded() bool {
	return r.Relaunches > 0 || r.WatchdogFires > 0 || r.DegradedLaunches > 0 || r.FailedSMs > 0
}

// Merge folds other into r, for aggregating hosts across sweeps.
func (r *ResilienceStats) Merge(other ResilienceStats) {
	r.Relaunches += other.Relaunches
	r.WatchdogFires += other.WatchdogFires
	r.WatchdogTime += other.WatchdogTime
	r.DegradedLaunches += other.DegradedLaunches
	r.FailedSMs += other.FailedSMs
}

// Host drives the device through the ATGPU round structure on a shared
// simulated timeline: "A round begins by the host transferring data to the
// device global memory. The kernel is then ran ... The round ends with
// output data being transferred from global memory to the host.
// Synchronisation operations occur, and the subsequent round commences."
//
// All costs — transfers, kernels, σ — are charged as occupancies of
// timeline resources: the H2D and D2H halves of the PCIe link, the SM
// array, and the host sync path. The synchronous TransferIn / Launch /
// TransferOut methods issue onto a single default stream, where every
// operation chains on the previous one and elapsed time degenerates to the
// plain sum kernel + transfer + sync; the Async* stream API (stream.go)
// lets operations in different streams overlap on the same resources.
//
// Concurrency contract: a Host (and its Device and timeline) is
// single-goroutine — the simulated timeline is one sequential program. Run
// concurrent sweeps on separate Host/Device pairs; the transfer.Engine and
// fault injector are internally locked, and Stats/ResilienceStats values
// can be folded across hosts with their Merge methods afterwards.
type Host struct {
	dev    *Device
	engine *transfer.Engine

	// SyncCost is the fixed per-synchronisation charge, the model's σ.
	SyncCost time.Duration

	tl         *timeline.Timeline
	resH2D     *timeline.Resource // host-to-device half of the PCIe link
	resD2H     *timeline.Resource // device-to-host half of the PCIe link
	resCompute *timeline.Resource // the SM array
	resSync    *timeline.Resource // host-side synchronisation path
	def        *Stream
	streams    []*Stream
	barrier    timeline.Event // where newly created streams start

	rounds      int
	kernelStats KernelStats
	launches    int
	tracer      *Tracer

	inj           faults.Injector
	watchdog      time.Duration
	maxRelaunches int
	resil         ResilienceStats

	orec      *obs.Recorder // trace sink (nil = disabled)
	omet      *obs.Registry // metrics sink (nil = disabled)
	obsStream string        // stream currently issuing, for span tagging

	preLaunch func(*kernel.Program, int) error
	launchObs func(*kernel.Program, int, KernelResult)
}

// NewHost pairs a device with a transfer engine. syncCost instantiates σ.
func NewHost(dev *Device, engine *transfer.Engine, syncCost time.Duration) (*Host, error) {
	if dev == nil {
		return nil, fmt.Errorf("simgpu: nil device")
	}
	if engine == nil {
		return nil, fmt.Errorf("simgpu: nil transfer engine")
	}
	if syncCost < 0 {
		return nil, fmt.Errorf("simgpu: negative sync cost %v", syncCost)
	}
	h := &Host{dev: dev, engine: engine, SyncCost: syncCost}
	h.tl = timeline.New()
	h.resH2D = h.tl.NewResource("h2d")
	h.resD2H = h.tl.NewResource("d2h")
	h.resCompute = h.tl.NewResource("compute")
	h.resSync = h.tl.NewResource("sync")
	h.def = h.NewStream("default")
	return h, nil
}

// Device returns the underlying device.
func (h *Host) Device() *Device { return h.dev }

// Engine returns the transfer engine.
func (h *Host) Engine() *transfer.Engine { return h.engine }

// Timeline returns the host's shared simulated timeline, for inspecting
// the schedule (per-resource busy intervals, op dependency edges).
func (h *Host) Timeline() *timeline.Timeline { return h.tl }

// Malloc allocates size words of device global memory aligned to a block
// boundary and returns the base address, enforcing the G constraint.
func (h *Host) Malloc(size int) (int, error) {
	return h.dev.Arena().AllocAligned(size)
}

// TransferIn moves data from the host to device global memory at offset on
// the default stream (the W operator, host-to-device direction).
func (h *Host) TransferIn(offset int, data []mem.Word) error {
	return h.AsyncTransferIn(h.def, offset, data)
}

// TransferInChunked moves data in fixed-size chunks on the default stream,
// paying the Boyer α per chunk — the partitioned transfer of the paper's
// future-work discussion.
func (h *Host) TransferInChunked(offset int, data []mem.Word, chunk int) error {
	return h.AsyncTransferInChunked(h.def, offset, data, chunk)
}

// TransferOut moves length words at offset from device global memory back
// to the host on the default stream (the W operator, device-to-host
// direction).
func (h *Host) TransferOut(offset, length int) ([]mem.Word, error) {
	return h.AsyncTransferOut(h.def, offset, length)
}

// SetTracer attaches a scheduling tracer recording every subsequent
// launch (nil detaches).
func (h *Host) SetTracer(tr *Tracer) { h.tracer = tr }

// SetFaults attaches a kernel-fault injector plus the watchdog timeout and
// relaunch budget governing recovery. Zero watchdog/maxRelaunches select
// DefaultWatchdog/DefaultMaxRelaunches; a nil injector restores fault-free
// launches. Attach the same injector to the transfer engine (its SetFaults)
// for whole-stack injection with one shared fault log.
func (h *Host) SetFaults(inj faults.Injector, watchdog time.Duration, maxRelaunches int) error {
	if watchdog < 0 {
		return fmt.Errorf("simgpu: negative watchdog timeout %v", watchdog)
	}
	if maxRelaunches < 0 {
		return fmt.Errorf("simgpu: negative relaunch budget %d", maxRelaunches)
	}
	if watchdog == 0 {
		watchdog = DefaultWatchdog
	}
	if maxRelaunches == 0 {
		maxRelaunches = DefaultMaxRelaunches
	}
	h.inj = inj
	h.watchdog = watchdog
	h.maxRelaunches = maxRelaunches
	// Faults must observe every block's real execution, so an armed injector
	// switches block memoization off device-wide (and a disarmed one, inj ==
	// nil, switches it back on).
	h.dev.memoDisabled = inj != nil
	return nil
}

// SetPreLaunch installs a gate run before every launch (sync or async) with
// the program and block count about to execute. A non-nil error refuses the
// launch without touching the device — the hook point for static-analysis
// pre-flight. Nil removes the gate.
func (h *Host) SetPreLaunch(gate func(prog *kernel.Program, numBlocks int) error) {
	h.preLaunch = gate
}

// SetLaunchObserver installs a callback invoked after every successful
// launch with the program, block count, and the launch's KernelResult —
// the hook point for differential checking of predictions against observed
// counters. Nil removes the observer.
func (h *Host) SetLaunchObserver(obs func(prog *kernel.Program, numBlocks int, res KernelResult)) {
	h.launchObs = obs
}

// SetCollectSites toggles the device's per-access-site counters for
// subsequent launches (see Device.SetCollectSites).
func (h *Host) SetCollectSites(on bool) { h.dev.SetCollectSites(on) }

// Launch runs the kernel on the default stream, folding the launch's
// statistics into the host totals.
//
// With a fault injector attached, a hung launch burns the watchdog timeout
// on the compute resource and is relaunched (up to the relaunch budget,
// then ErrWatchdogExhausted), and an SM failure takes the victim out of
// service before the launch proceeds degraded on the surviving
// multiprocessors — occupancy is recomputed by the device and results stay
// exact.
func (h *Host) Launch(prog *kernel.Program, numBlocks int) (KernelResult, error) {
	return h.AsyncLaunch(h.def, prog, numBlocks)
}

// EndRound closes a round: σ is charged on the sync path after every
// stream's outstanding work, all streams resume after it (a device-wide
// barrier), and the round counter advances.
func (h *Host) EndRound() {
	evs := make([]timeline.Event, 0, len(h.streams))
	for _, s := range h.streams {
		evs = append(evs, s.frontier)
	}
	sync := h.tl.Schedule(h.resSync, h.SyncCost, "sync", h.tl.AfterAll(evs...))
	for _, s := range h.streams {
		s.frontier = sync
	}
	h.barrier = sync
	h.rounds++
	h.omet.Add("atgpu_host_rounds_total", 1)
}

// KernelTime returns the total time the SM array was occupied (including
// watchdog charges from hung launches).
func (h *Host) KernelTime() time.Duration { return h.resCompute.BusyTime() }

// TransferTime returns the total time the PCIe link was occupied in
// either direction.
func (h *Host) TransferTime() time.Duration {
	return h.resH2D.BusyTime() + h.resD2H.BusyTime()
}

// SyncTime returns accumulated synchronisation (σ) time.
func (h *Host) SyncTime() time.Duration { return h.resSync.BusyTime() }

// TotalTime returns the full simulated wall time — the timeline makespan.
// On the default stream alone every operation chains on the previous one,
// so this equals kernel + transfer + sync exactly as in the sequential
// model; with overlapping streams it is strictly the schedule's critical
// path. This is the "Total" series of the paper's observed figures.
func (h *Host) TotalTime() time.Duration { return h.tl.Makespan() }

// OverlapSaved reports how much time stream overlap hid relative to
// running every charged cost back to back: (kernel + transfer + sync) −
// makespan. Zero for purely sequential (default-stream) execution.
func (h *Host) OverlapSaved() time.Duration {
	return h.KernelTime() + h.TransferTime() + h.SyncTime() - h.TotalTime()
}

// Rounds returns the number of completed rounds R.
func (h *Host) Rounds() int { return h.rounds }

// Launches returns the number of kernel launches.
func (h *Host) Launches() int { return h.launches }

// KernelStats returns merged statistics across all launches.
func (h *Host) KernelStats() KernelStats { return h.kernelStats }

// TransferStats returns the engine's transfer totals.
func (h *Host) TransferStats() transfer.Stats { return h.engine.Stats() }

// Resilience returns the host's fault-recovery counters.
func (h *Host) Resilience() ResilienceStats { return h.resil }

// FaultEvents returns the attached injector's fault log (nil without one).
func (h *Host) FaultEvents() []faults.Event {
	if h.inj == nil {
		return nil
	}
	return h.inj.Events()
}

// ResetClocks rewinds the timeline and counters while keeping device
// memory contents, for back-to-back measurements on one device. Every
// existing stream (default included) rejoins the origin and stays usable;
// events recorded before the reset must not be waited on afterwards.
// Resilience counters reset too; SM health does not (use
// Device.RestoreSMs), since a failed multiprocessor stays failed across
// measurements.
func (h *Host) ResetClocks() {
	h.tl.Reset()
	for _, s := range h.streams {
		s.frontier = timeline.Event{}
	}
	h.barrier = timeline.Event{}
	h.rounds, h.launches = 0, 0
	h.kernelStats = KernelStats{}
	h.resil = ResilienceStats{}
	h.engine.Reset()
}

// RunReport summarises a finished run.
type RunReport struct {
	Kernel    time.Duration
	Transfer  time.Duration
	Sync      time.Duration
	Total     time.Duration
	Rounds    int
	Stats     KernelStats
	Transfers transfer.Stats
	// Resilience counts fault-recovery work (all zero in fault-free runs).
	Resilience ResilienceStats
}

// Report snapshots the host's accumulated timing.
func (h *Host) Report() RunReport {
	return RunReport{
		Kernel:     h.KernelTime(),
		Transfer:   h.TransferTime(),
		Sync:       h.SyncTime(),
		Total:      h.TotalTime(),
		Rounds:     h.rounds,
		Stats:      h.kernelStats,
		Transfers:  h.engine.Stats(),
		Resilience: h.resil,
	}
}

// OverlapSaved reports the time stream overlap hid: component sum minus
// the scheduled total. Zero for sequential runs; never negative.
func (r RunReport) OverlapSaved() time.Duration {
	return r.Kernel + r.Transfer + r.Sync - r.Total
}

// TransferFraction returns the share of total time spent in transfers —
// the observed Δ_E of the paper's Figure 6. Degenerate reports (zero or
// negative total) yield 0, never NaN or ±Inf.
func (r RunReport) TransferFraction() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.Transfer) / float64(r.Total)
}
