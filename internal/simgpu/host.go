package simgpu

import (
	"errors"
	"fmt"
	"time"

	"atgpu/internal/faults"
	"atgpu/internal/kernel"
	"atgpu/internal/mem"
	"atgpu/internal/transfer"
)

// DefaultWatchdog is the kernel watchdog timeout used when SetFaults is
// given zero: generous against every simulated kernel in the suite while
// keeping a hung sweep point cheap.
const DefaultWatchdog = 10 * time.Millisecond

// DefaultMaxRelaunches bounds watchdog-triggered kernel relaunches.
const DefaultMaxRelaunches = 3

// ErrWatchdogExhausted is returned when a kernel still hangs after the
// host's full relaunch budget.
var ErrWatchdogExhausted = errors.New("simgpu: watchdog relaunch budget exhausted")

// ResilienceStats counts the host's fault-recovery work. All fields stay
// zero without an injector attached.
type ResilienceStats struct {
	// Relaunches counts watchdog-triggered kernel relaunches.
	Relaunches int
	// WatchdogFires counts hung launches detected.
	WatchdogFires int
	// WatchdogTime is the simulated time lost to hung launches.
	WatchdogTime time.Duration
	// DegradedLaunches counts launches run with at least one failed SM.
	DegradedLaunches int
	// FailedSMs counts multiprocessors taken out of service.
	FailedSMs int
}

// Degraded reports whether any fault-recovery work happened.
func (r ResilienceStats) Degraded() bool {
	return r.Relaunches > 0 || r.WatchdogFires > 0 || r.DegradedLaunches > 0 || r.FailedSMs > 0
}

// Merge folds other into r, for aggregating hosts across sweeps.
func (r *ResilienceStats) Merge(other ResilienceStats) {
	r.Relaunches += other.Relaunches
	r.WatchdogFires += other.WatchdogFires
	r.WatchdogTime += other.WatchdogTime
	r.DegradedLaunches += other.DegradedLaunches
	r.FailedSMs += other.FailedSMs
}

// Host drives the device through the ATGPU round structure on a simulated
// timeline: "A round begins by the host transferring data to the device
// global memory. The kernel is then ran ... The round ends with output data
// being transferred from global memory to the host. Synchronisation
// operations occur, and the subsequent round commences."
//
// The Host splits elapsed simulated time into kernel time, transfer time
// and synchronisation time so experiments can report both the "Kernel" and
// "Total" series of the paper's observed-results figures.
//
// Concurrency contract: a Host (and its Device) is single-goroutine — the
// simulated timeline is one sequential program. Run concurrent sweeps on
// separate Host/Device pairs; the transfer.Engine and fault injector are
// internally locked, and Stats/ResilienceStats values can be folded across
// hosts with their Merge methods afterwards.
type Host struct {
	dev    *Device
	engine *transfer.Engine

	// SyncCost is the fixed per-synchronisation charge, the model's σ.
	SyncCost time.Duration

	kernelTime   time.Duration
	transferTime time.Duration
	syncTime     time.Duration
	rounds       int
	kernelStats  KernelStats
	launches     int
	tracer       *Tracer

	inj           faults.Injector
	watchdog      time.Duration
	maxRelaunches int
	resil         ResilienceStats
}

// NewHost pairs a device with a transfer engine. syncCost instantiates σ.
func NewHost(dev *Device, engine *transfer.Engine, syncCost time.Duration) (*Host, error) {
	if dev == nil {
		return nil, fmt.Errorf("simgpu: nil device")
	}
	if engine == nil {
		return nil, fmt.Errorf("simgpu: nil transfer engine")
	}
	if syncCost < 0 {
		return nil, fmt.Errorf("simgpu: negative sync cost %v", syncCost)
	}
	return &Host{dev: dev, engine: engine, SyncCost: syncCost}, nil
}

// Device returns the underlying device.
func (h *Host) Device() *Device { return h.dev }

// Engine returns the transfer engine.
func (h *Host) Engine() *transfer.Engine { return h.engine }

// Malloc allocates size words of device global memory aligned to a block
// boundary and returns the base address, enforcing the G constraint.
func (h *Host) Malloc(size int) (int, error) {
	return h.dev.Arena().AllocAligned(size)
}

// TransferIn moves data from the host to device global memory at offset,
// advancing the transfer clock (the W operator, host-to-device direction).
func (h *Host) TransferIn(offset int, data []mem.Word) error {
	d, err := h.engine.In(h.dev.Global(), offset, data)
	if err != nil {
		return err
	}
	h.transferTime += d
	return nil
}

// TransferInChunked moves data in fixed-size chunks, paying the Boyer α per
// chunk — the partitioned transfer of the paper's future-work discussion.
func (h *Host) TransferInChunked(offset int, data []mem.Word, chunk int) error {
	d, err := h.engine.InChunked(h.dev.Global(), offset, data, chunk)
	if err != nil {
		return err
	}
	h.transferTime += d
	return nil
}

// TransferOut moves length words at offset from device global memory back
// to the host (the W operator, device-to-host direction).
func (h *Host) TransferOut(offset, length int) ([]mem.Word, error) {
	data, d, err := h.engine.Out(h.dev.Global(), offset, length)
	if err != nil {
		return nil, err
	}
	h.transferTime += d
	return data, nil
}

// SetTracer attaches a scheduling tracer recording every subsequent
// launch (nil detaches).
func (h *Host) SetTracer(tr *Tracer) { h.tracer = tr }

// SetFaults attaches a kernel-fault injector plus the watchdog timeout and
// relaunch budget governing recovery. Zero watchdog/maxRelaunches select
// DefaultWatchdog/DefaultMaxRelaunches; a nil injector restores fault-free
// launches. Attach the same injector to the transfer engine (its SetFaults)
// for whole-stack injection with one shared fault log.
func (h *Host) SetFaults(inj faults.Injector, watchdog time.Duration, maxRelaunches int) error {
	if watchdog < 0 {
		return fmt.Errorf("simgpu: negative watchdog timeout %v", watchdog)
	}
	if maxRelaunches < 0 {
		return fmt.Errorf("simgpu: negative relaunch budget %d", maxRelaunches)
	}
	if watchdog == 0 {
		watchdog = DefaultWatchdog
	}
	if maxRelaunches == 0 {
		maxRelaunches = DefaultMaxRelaunches
	}
	h.inj = inj
	h.watchdog = watchdog
	h.maxRelaunches = maxRelaunches
	return nil
}

// Launch runs the kernel, advancing the kernel clock and folding the
// launch's statistics into the host totals.
//
// With a fault injector attached, a hung launch burns the watchdog timeout
// on the kernel clock and is relaunched (up to the relaunch budget, then
// ErrWatchdogExhausted), and an SM failure takes the victim out of service
// before the launch proceeds degraded on the surviving multiprocessors —
// occupancy is recomputed by the device and results stay exact.
func (h *Host) Launch(prog *kernel.Program, numBlocks int) (KernelResult, error) {
	for attempt := 0; ; attempt++ {
		if h.inj != nil {
			d := h.inj.Launch(attempt, h.dev.Config().NumSMs)
			switch d.Kind {
			case faults.Hang:
				h.kernelTime += h.watchdog
				h.resil.WatchdogFires++
				h.resil.WatchdogTime += h.watchdog
				if attempt >= h.maxRelaunches {
					return KernelResult{}, fmt.Errorf("%w: kernel %s hung %d times",
						ErrWatchdogExhausted, prog.Name, attempt+1)
				}
				h.resil.Relaunches++
				continue
			case faults.SMFail:
				n := h.dev.Config().NumSMs
				victim := ((d.Victim % n) + n) % n
				// Graceful floor: failing the last active SM is refused
				// and the launch proceeds at current capacity.
				if err := h.dev.FailSM(victim); err == nil {
					h.resil.FailedSMs++
				}
			}
		}
		res, err := h.dev.LaunchTraced(prog, numBlocks, h.tracer)
		if err != nil {
			return res, err
		}
		if h.dev.ActiveSMs() < h.dev.Config().NumSMs {
			h.resil.DegradedLaunches++
		}
		h.kernelTime += res.Time
		h.kernelStats.Merge(res.Stats)
		h.launches++
		return res, nil
	}
}

// EndRound charges σ and increments the round counter.
func (h *Host) EndRound() {
	h.syncTime += h.SyncCost
	h.rounds++
}

// KernelTime returns accumulated kernel execution time.
func (h *Host) KernelTime() time.Duration { return h.kernelTime }

// TransferTime returns accumulated host↔device transfer time.
func (h *Host) TransferTime() time.Duration { return h.transferTime }

// SyncTime returns accumulated synchronisation (σ) time.
func (h *Host) SyncTime() time.Duration { return h.syncTime }

// TotalTime returns the full simulated wall time: kernel + transfer + sync.
// This is the "Total" series of the paper's observed figures.
func (h *Host) TotalTime() time.Duration {
	return h.kernelTime + h.transferTime + h.syncTime
}

// Rounds returns the number of completed rounds R.
func (h *Host) Rounds() int { return h.rounds }

// Launches returns the number of kernel launches.
func (h *Host) Launches() int { return h.launches }

// KernelStats returns merged statistics across all launches.
func (h *Host) KernelStats() KernelStats { return h.kernelStats }

// TransferStats returns the engine's transfer totals.
func (h *Host) TransferStats() transfer.Stats { return h.engine.Stats() }

// Resilience returns the host's fault-recovery counters.
func (h *Host) Resilience() ResilienceStats { return h.resil }

// FaultEvents returns the attached injector's fault log (nil without one).
func (h *Host) FaultEvents() []faults.Event {
	if h.inj == nil {
		return nil
	}
	return h.inj.Events()
}

// ResetClocks zeroes the timeline and counters while keeping device memory
// contents, for back-to-back measurements on one device. Resilience
// counters reset too; SM health does not (use Device.RestoreSMs), since a
// failed multiprocessor stays failed across measurements.
func (h *Host) ResetClocks() {
	h.kernelTime, h.transferTime, h.syncTime = 0, 0, 0
	h.rounds, h.launches = 0, 0
	h.kernelStats = KernelStats{}
	h.resil = ResilienceStats{}
	h.engine.Reset()
}

// RunReport summarises a finished run.
type RunReport struct {
	Kernel    time.Duration
	Transfer  time.Duration
	Sync      time.Duration
	Total     time.Duration
	Rounds    int
	Stats     KernelStats
	Transfers transfer.Stats
	// Resilience counts fault-recovery work (all zero in fault-free runs).
	Resilience ResilienceStats
}

// Report snapshots the host's accumulated timing.
func (h *Host) Report() RunReport {
	return RunReport{
		Kernel:     h.kernelTime,
		Transfer:   h.transferTime,
		Sync:       h.syncTime,
		Total:      h.TotalTime(),
		Rounds:     h.rounds,
		Stats:      h.kernelStats,
		Transfers:  h.engine.Stats(),
		Resilience: h.resil,
	}
}

// TransferFraction returns the share of total time spent in transfers —
// the observed Δ_E of the paper's Figure 6.
func (r RunReport) TransferFraction() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.Transfer) / float64(r.Total)
}
