// External test package: exercising concurrent hosts through a real
// workload needs internal/algorithms, which itself imports simgpu.
package simgpu_test

import (
	"sync"
	"testing"

	"atgpu/internal/algorithms"
	"atgpu/internal/faults"
	"atgpu/internal/mem"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// TestConcurrentHostsWithFaults runs several independent Host/Device pairs
// in parallel — the sweep runner's isolation discipline — each with its own
// seeded injector, then folds their ResilienceStats and transfer.Stats via
// Merge and compares against the same runs executed sequentially. Run
// under `go test -race` this also proves the pairs share no mutable state.
func TestConcurrentHostsWithFaults(t *testing.T) {
	const pairs = 6
	const n = 512

	type result struct {
		tf  transfer.Stats
		rs  simgpu.ResilienceStats
		sum mem.Word
	}

	runOne := func(seed int64) (res result) {
		cfg := simgpu.Tiny()
		cfg.GlobalWords = 3*n + 4*cfg.WarpWidth
		dev, err := simgpu.New(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
		if err != nil {
			t.Error(err)
			return
		}
		h, err := simgpu.NewHost(dev, eng, 0)
		if err != nil {
			t.Error(err)
			return
		}
		inj, err := faults.NewRate(faults.RateConfig{Seed: seed, TransferRate: 0.3, KernelRate: 0.1})
		if err != nil {
			t.Error(err)
			return
		}
		policy := transfer.DefaultRetryPolicy()
		policy.Seed = seed + 1
		if err := eng.SetFaults(inj, policy); err != nil {
			t.Error(err)
			return
		}
		if err := h.SetFaults(inj, 0, 0); err != nil {
			t.Error(err)
			return
		}

		in := make([]mem.Word, n)
		for i := range in {
			in[i] = mem.Word(i & 1)
		}
		sum, err := (algorithms.Reduce{N: n}).Run(h, in)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return
		}
		rep := h.Report()
		return result{tf: rep.Transfers, rs: rep.Resilience, sum: sum}
	}

	// Sequential reference.
	var seq [pairs]result
	for i := range seq {
		seq[i] = runOne(int64(100 + i))
	}

	// Concurrent replay with identical seeds.
	var conc [pairs]result
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc[i] = runOne(int64(100 + i))
		}(i)
	}
	wg.Wait()

	in := make([]mem.Word, n)
	for i := range in {
		in[i] = mem.Word(i & 1)
	}
	want := algorithms.ReduceReference(in)

	var seqTF, concTF transfer.Stats
	var seqRS, concRS simgpu.ResilienceStats
	for i := 0; i < pairs; i++ {
		if conc[i] != seq[i] {
			t.Fatalf("pair %d diverged between sequential and concurrent runs:\n%+v\nvs\n%+v",
				i, conc[i], seq[i])
		}
		if conc[i].sum != want {
			t.Fatalf("pair %d: sum %d, want %d (faults corrupted the result)", i, conc[i].sum, want)
		}
		seqTF.Merge(seq[i].tf)
		seqRS.Merge(seq[i].rs)
		concTF.Merge(conc[i].tf)
		concRS.Merge(conc[i].rs)
	}
	if concTF != seqTF || concRS != seqRS {
		t.Fatalf("merged aggregates diverged: %+v/%+v vs %+v/%+v", concTF, concRS, seqTF, seqRS)
	}
	if concTF.InWords == 0 {
		t.Fatal("aggregate carries no transfer volume; test is vacuous")
	}
}
