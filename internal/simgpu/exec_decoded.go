package simgpu

import (
	"fmt"

	"atgpu/internal/kernel"
)

// This file is the decoded-IR fast path: the per-launch hot loop over
// kernel.Decoded instructions. Semantics are byte-identical to the legacy
// switch interpreter in interp.go (pinned by the interpreter differential
// tests); the speed comes from per-instruction precomputed register-column
// bases, opcode-specialised inner loops with an all-lanes-active fast path
// (no per-lane mask check, no per-lane opcode dispatch), and zero per-step
// allocation — the atgpu-vet hotalloc pass forbids append/make in every
// exec*/replay* function of this package.

// execDec issues exactly one warp-instruction for w from the decoded
// program, mirroring launchState.exec.
func (ls *launchState) execDec(w *warp) error {
	ins := ls.dec.Ins
	if w.pc < 0 || w.pc >= len(ins) {
		return errPCRange
	}
	in := &ins[w.pc]
	w.instrs++
	ls.stats.InstructionsIssued++
	ls.stats.LaneOps += int64(w.activeN)

	switch in.Op {
	case kernel.OpLdGlobal, kernel.OpStGlobal:
		// advances pc itself on every path
		return ls.execGlobal(w, in.Op, int(in.D), int(in.A), int(in.B))

	case kernel.OpLdShared, kernel.OpStShared:
		// advances pc itself on every path
		return ls.execShared(w, in.Op, int(in.D), int(in.A), int(in.B))

	case kernel.OpAtomAdd, kernel.OpAtomMax, kernel.OpAtomExch, kernel.OpAtomCAS:
		// both advance pc themselves on every path
		if in.Imm == kernel.AtomGlobal {
			return ls.execAtomGlobal(w, in.Op, int(in.D), int(in.A), int(in.B))
		}
		return ls.execAtomShared(w, in.Op, int(in.D), int(in.A), int(in.B))

	case kernel.OpBarrier:
		ls.stats.Barriers++

	case kernel.OpJump:
		w.pc = int(in.Target)
		return nil

	case kernel.OpBrNZ:
		taken, uniform, any := w.uniformCond(int(in.A))
		if !any {
			return errNoActiveBr
		}
		if !uniform {
			return ErrDivergentLoop
		}
		if taken {
			w.pc = int(in.Target)
			return nil
		}

	case kernel.OpIfBegin:
		regs := w.regs
		a := int(in.A)
		width := ls.width
		divergent := false
		anyTrue := false
		for l := 0; l < width; l++ {
			if !w.active[l] {
				continue
			}
			if regs[a+l] != 0 {
				anyTrue = true
			} else {
				divergent = true
			}
		}
		if anyTrue && divergent {
			ls.stats.DivergentBranches++
		}
		if !anyTrue {
			w.pc = int(in.Target)
			return nil
		}
		w.pushMask()
		for l := 0; l < width; l++ {
			if w.active[l] && regs[a+l] == 0 {
				w.active[l] = false
				w.activeN--
			}
		}

	case kernel.OpIfEnd:
		if !w.popMask() {
			return errMaskPop
		}

	case kernel.OpHalt:
		w.state = wDone
		return nil

	default:
		if err := ls.execALU(w, in); err != nil {
			return err
		}
	}

	w.pc++
	return nil
}

// execALU evaluates one decoded compute instruction (everything that only
// touches the register file). Each opcode gets a dense inner loop when all
// lanes are active; partially-masked warps fall back to per-lane masked
// loops with the same results. Shared by the hot path (execDec) and the
// memoization data replayer (replayBlock).
func (ls *launchState) execALU(w *warp, in *kernel.DInstr) error {
	width := ls.width
	regs := w.regs
	all := w.activeN == width

	switch in.Op {
	case kernel.OpNop:

	case kernel.OpConst:
		d, v := int(in.D), in.Imm
		if all {
			col := regs[d : d+width]
			for l := range col {
				col[l] = v
			}
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = v
				}
			}
		}

	case kernel.OpMov:
		d, a := int(in.D), int(in.A)
		if all {
			copy(regs[d:d+width], regs[a:a+width])
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = regs[a+l]
				}
			}
		}

	case kernel.OpAdd:
		d, a, b := int(in.D), int(in.A), int(in.B)
		if all {
			dc, ac, bc := regs[d:d+width], regs[a:a+width:a+width], regs[b:b+width:b+width]
			for l := range dc {
				dc[l] = ac[l] + bc[l]
			}
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = regs[a+l] + regs[b+l]
				}
			}
		}

	case kernel.OpSub:
		d, a, b := int(in.D), int(in.A), int(in.B)
		if all {
			dc, ac, bc := regs[d:d+width], regs[a:a+width:a+width], regs[b:b+width:b+width]
			for l := range dc {
				dc[l] = ac[l] - bc[l]
			}
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = regs[a+l] - regs[b+l]
				}
			}
		}

	case kernel.OpMul:
		d, a, b := int(in.D), int(in.A), int(in.B)
		if all {
			dc, ac, bc := regs[d:d+width], regs[a:a+width:a+width], regs[b:b+width:b+width]
			for l := range dc {
				dc[l] = ac[l] * bc[l]
			}
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = regs[a+l] * regs[b+l]
				}
			}
		}

	case kernel.OpDiv, kernel.OpMod:
		d, a, b := int(in.D), int(in.A), int(in.B)
		for l := 0; l < width; l++ {
			if w.active[l] {
				if regs[b+l] == 0 {
					return fmt.Errorf("%w: lane %d", errDivByZero, l)
				}
				if in.Op == kernel.OpDiv {
					regs[d+l] = regs[a+l] / regs[b+l]
				} else {
					regs[d+l] = regs[a+l] % regs[b+l]
				}
			}
		}

	case kernel.OpMin, kernel.OpMax, kernel.OpAnd, kernel.OpOr, kernel.OpXor,
		kernel.OpShl, kernel.OpShr, kernel.OpSlt, kernel.OpSle, kernel.OpSeq, kernel.OpSne:
		d, a, b := int(in.D), int(in.A), int(in.B)
		if all {
			dc, ac, bc := regs[d:d+width], regs[a:a+width:a+width], regs[b:b+width:b+width]
			for l := range dc {
				dc[l] = alu(in.Op, ac[l], bc[l])
			}
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = alu(in.Op, regs[a+l], regs[b+l])
				}
			}
		}

	case kernel.OpAddI:
		d, a, v := int(in.D), int(in.A), in.Imm
		if all {
			dc, ac := regs[d:d+width], regs[a:a+width:a+width]
			for l := range dc {
				dc[l] = ac[l] + v
			}
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = regs[a+l] + v
				}
			}
		}

	case kernel.OpMulI:
		d, a, v := int(in.D), int(in.A), in.Imm
		if all {
			dc, ac := regs[d:d+width], regs[a:a+width:a+width]
			for l := range dc {
				dc[l] = ac[l] * v
			}
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = regs[a+l] * v
				}
			}
		}

	case kernel.OpDivI, kernel.OpModI:
		// Zero immediate divisors trap only on an active lane, matching
		// the legacy interpreter's masked semantics.
		d, a := int(in.D), int(in.A)
		for l := 0; l < width; l++ {
			if w.active[l] {
				if in.Imm == 0 {
					return fmt.Errorf("%w: lane %d", errDivByZero, l)
				}
				if in.Op == kernel.OpDivI {
					regs[d+l] = regs[a+l] / in.Imm
				} else {
					regs[d+l] = regs[a+l] % in.Imm
				}
			}
		}

	case kernel.OpShlI, kernel.OpShrI, kernel.OpAndI,
		kernel.OpSltI, kernel.OpSleI, kernel.OpSeqI, kernel.OpSneI:
		d, a := int(in.D), int(in.A)
		if all {
			dc, ac := regs[d:d+width], regs[a:a+width:a+width]
			for l := range dc {
				dc[l] = aluImm(in.Op, ac[l], in.Imm)
			}
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = aluImm(in.Op, regs[a+l], in.Imm)
				}
			}
		}

	case kernel.OpLaneID:
		d := int(in.D)
		if all {
			col := regs[d : d+width]
			for l := range col {
				col[l] = kernel.Word(l)
			}
		} else {
			for l := 0; l < width; l++ {
				if w.active[l] {
					regs[d+l] = kernel.Word(l)
				}
			}
		}

	case kernel.OpBlockID:
		ls.broadcastDec(w, int(in.D), kernel.Word(w.blockID), all)

	case kernel.OpNumBlocks:
		ls.broadcastDec(w, int(in.D), kernel.Word(ls.numBlocks), all)

	case kernel.OpBlockDim:
		ls.broadcastDec(w, int(in.D), kernel.Word(width), all)

	default:
		return fmt.Errorf("%w: %v", errBadOpcode, in.Op)
	}
	return nil
}

// broadcastDec writes v into every active lane of column base d.
func (ls *launchState) broadcastDec(w *warp, d int, v kernel.Word, all bool) {
	width := ls.width
	regs := w.regs
	if all {
		col := regs[d : d+width]
		for l := range col {
			col[l] = v
		}
		return
	}
	for l := 0; l < width; l++ {
		if w.active[l] {
			regs[d+l] = v
		}
	}
}
