package simgpu

import (
	"fmt"
	"strconv"
	"time"

	"atgpu/internal/faults"
	"atgpu/internal/kernel"
	"atgpu/internal/mem"
	"atgpu/internal/obs"
	"atgpu/internal/timeline"
)

// Stream is a CUDA-stream-like command queue on the host's shared
// timeline. Operations issued to one stream execute in issue order
// (each starts no earlier than the stream's previous operation
// completed); operations in different streams are unordered and
// overlap freely, bounded only by the hardware resources they occupy:
// the H2D and D2H halves of the PCIe link and the SM array are
// distinct timeline resources, so same-direction transfers serialize
// while a transfer overlaps compute and the opposite direction.
//
// Simulation state (device memory, kernel effects) advances in program
// order at issue time; the stream machinery models *timing* only.
// Cross-stream data dependencies must therefore be expressed with
// Record/Wait so the simulated schedule matches the program-order
// semantics the data actually saw.
//
// Like the Host, streams are single-goroutine: issue all work on one
// host from one goroutine.
type Stream struct {
	h        *Host
	name     string
	frontier timeline.Event
}

// Name returns the stream's label.
func (s *Stream) Name() string { return s.name }

// Record returns an event marking the completion of all work issued to
// the stream so far (cudaEventRecord).
func (s *Stream) Record() timeline.Event { return s.frontier }

// Wait makes all subsequently issued work on the stream start no
// earlier than ev completes (cudaStreamWaitEvent).
func (s *Stream) Wait(ev timeline.Event) {
	s.frontier = s.h.tl.AfterAll(s.frontier, ev)
}

// Sync reports the simulated instant at which all work issued to this
// stream completes (cudaStreamSynchronize).
func (s *Stream) Sync() time.Duration { return s.frontier.Time() }

// NewStream creates a named stream starting at the current barrier
// point (the origin on a fresh host).
func (h *Host) NewStream(name string) *Stream {
	s := &Stream{h: h, name: name, frontier: h.barrier}
	h.streams = append(h.streams, s)
	return s
}

// DefaultStream returns the stream the synchronous TransferIn / Launch
// / TransferOut wrappers issue onto.
func (h *Host) DefaultStream() *Stream { return h.def }

// stream resolves nil to the default stream and rejects foreign ones.
func (h *Host) stream(s *Stream) *Stream {
	if s == nil {
		return h.def
	}
	if s.h != h {
		panic(fmt.Sprintf("simgpu: stream %q belongs to a different host", s.name))
	}
	return s
}

// AsyncTransferIn issues a host-to-device transfer on s. The words
// land immediately (program order); the cost occupies the H2D link
// after the stream's prior work.
func (h *Host) AsyncTransferIn(s *Stream, offset int, data []mem.Word) error {
	s = h.stream(s)
	h.enterStream(s)
	defer h.leaveStream()
	ev, err := h.engine.InAsync(h.tl, h.resH2D, h.dev.Global(), offset, data, s.frontier)
	if err != nil {
		return err
	}
	s.frontier = ev
	return nil
}

// AsyncTransferInChunked issues a chunked host-to-device transfer on
// s: one α-paying transaction per chunk, chained in stream order.
func (h *Host) AsyncTransferInChunked(s *Stream, offset int, data []mem.Word, chunk int) error {
	s = h.stream(s)
	h.enterStream(s)
	defer h.leaveStream()
	ev, err := h.engine.InChunkedAsync(h.tl, h.resH2D, h.dev.Global(), offset, data, chunk, s.frontier)
	if err != nil {
		return err
	}
	s.frontier = ev
	return nil
}

// AsyncTransferOut issues a device-to-host transfer on s, occupying
// the D2H link. The returned slice holds the device words as of issue
// time (program order).
func (h *Host) AsyncTransferOut(s *Stream, offset, length int) ([]mem.Word, error) {
	s = h.stream(s)
	h.enterStream(s)
	defer h.leaveStream()
	data, ev, err := h.engine.OutAsync(h.tl, h.resD2H, h.dev.Global(), offset, length, s.frontier)
	if err != nil {
		return nil, err
	}
	s.frontier = ev
	return data, nil
}

// AsyncLaunch issues a kernel launch on s, occupying the SM array
// after the stream's prior work. Fault handling matches the
// synchronous Launch: hung launches burn the watchdog timeout on the
// compute resource in stream order before relaunching.
func (h *Host) AsyncLaunch(s *Stream, prog *kernel.Program, numBlocks int) (KernelResult, error) {
	s = h.stream(s)
	h.enterStream(s)
	defer h.leaveStream()
	if h.preLaunch != nil {
		if err := h.preLaunch(prog, numBlocks); err != nil {
			return KernelResult{}, err
		}
	}
	for attempt := 0; ; attempt++ {
		if h.inj != nil {
			d := h.inj.Launch(attempt, h.dev.Config().NumSMs)
			switch d.Kind {
			case faults.Hang:
				s.frontier = h.tl.Schedule(h.resCompute, h.watchdog, "watchdog "+prog.Name, s.frontier)
				h.resil.WatchdogFires++
				h.resil.WatchdogTime += h.watchdog
				h.orec.Instant("faults", "kernel", "watchdog "+prog.Name, s.frontier.Time(),
					obs.Arg{Key: "attempt", Value: strconv.Itoa(attempt + 1)})
				h.omet.Add("atgpu_faults_hang_total", 1)
				if attempt >= h.maxRelaunches {
					return KernelResult{}, fmt.Errorf("%w: kernel %s hung %d times",
						ErrWatchdogExhausted, prog.Name, attempt+1)
				}
				h.resil.Relaunches++
				h.omet.Add("atgpu_host_relaunches_total", 1)
				continue
			case faults.SMFail:
				n := h.dev.Config().NumSMs
				victim := ((d.Victim % n) + n) % n
				// Graceful floor: failing the last active SM is refused
				// and the launch proceeds at current capacity.
				if err := h.dev.FailSM(victim); err == nil {
					h.resil.FailedSMs++
					h.orec.Instant("faults", "kernel", "SM failure", s.frontier.Time(),
						obs.Arg{Key: "sm", Value: strconv.Itoa(victim)})
					h.omet.Add("atgpu_faults_smfail_total", 1)
				}
			}
		}
		blocksBefore := 0
		if h.tracer != nil {
			blocksBefore = len(h.tracer.blocks)
		}
		res, err := h.dev.LaunchTraced(prog, numBlocks, h.tracer)
		if err != nil {
			return res, err
		}
		if h.dev.ActiveSMs() < h.dev.Config().NumSMs {
			h.resil.DegradedLaunches++
		}
		s.frontier = h.tl.Schedule(h.resCompute, res.Time, "kernel "+prog.Name, s.frontier)
		if h.orec != nil && h.tracer != nil {
			h.emitBlockSpans(prog.Name, blocksBefore, s.frontier.Time()-res.Time)
		}
		h.omet.Add("atgpu_host_launches_total", 1)
		h.kernelStats.Merge(res.Stats)
		h.launches++
		if h.launchObs != nil {
			h.launchObs(prog, numBlocks, res)
		}
		return res, nil
	}
}

// Sync is a device-wide barrier (cudaDeviceSynchronize): it joins
// every stream's outstanding work — subsequent operations on any
// stream start no earlier than all current work completes — and
// reports the simulated instant of that join. Unlike EndRound it
// charges no σ and ends no round.
func (h *Host) Sync() time.Duration {
	evs := make([]timeline.Event, 0, len(h.streams))
	for _, s := range h.streams {
		evs = append(evs, s.frontier)
	}
	join := h.tl.AfterAll(evs...)
	for _, s := range h.streams {
		s.frontier = join
	}
	h.barrier = join
	return join.Time()
}
