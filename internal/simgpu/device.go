package simgpu

import (
	"errors"
	"fmt"
	"math"
	"time"

	"atgpu/internal/kernel"
	"atgpu/internal/mem"
)

// Device is the simulated GPU: k' multiprocessors over one global memory.
// Multiprocessors can be marked failed (FailSM), after which launches
// degrade gracefully to the surviving SMs with exact results — blocks
// simply schedule over fewer multiprocessors.
type Device struct {
	cfg       Config
	global    *mem.Global
	arena     *mem.Arena
	failedSMs []bool
	numFailed int
	// collectSites enables per-access-site counters on launches
	// (KernelResult.Sites); off by default.
	collectSites bool

	// decCache holds the decoded execution form of each program launched
	// on this device (the warp width is fixed per device, so one decode
	// per program suffices).
	decCache map[*kernel.Program]*kernel.Decoded

	// uniformProver, when set, certifies that every block of a program
	// provably executes the same instruction trace modulo OpBlockID-derived
	// addressing with cross-block-disjoint global writes (the BlockUniform
	// certificate from internal/analyze, injected here as a callback
	// because analyze imports simgpu). Certified launches are eligible for
	// steady-state block memoization; see memo.go.
	uniformProver UniformProver
	// proverVerdicts caches certificate decisions per (program, blocks).
	proverVerdicts map[proverKey]bool
	// memoDisabled turns memoization off device-wide; the Host sets it
	// while a fault injector is armed, since faults must observe every
	// block individually.
	memoDisabled bool
	// memoSkips counts launches on which block memoization engaged.
	memoSkips int64
}

// UniformProver is the certificate callback consulted before enabling block
// memoization: it must return true only when every one of blocks thread
// blocks of prog provably executes the same instruction trace on cfg, with
// identical per-position transaction counts and latencies and mutually
// disjoint global writes. analyze.UniformProver is the canonical
// implementation.
type UniformProver func(prog *kernel.Program, cfg Config, blocks int) bool

type proverKey struct {
	prog   *kernel.Program
	blocks int
}

// SetUniformProver installs the BlockUniform certificate callback that
// gates block memoization. A nil prover (the default) disables memoization
// entirely; launches are then always fully simulated.
func (d *Device) SetUniformProver(p UniformProver) { d.uniformProver = p }

// MemoSkips reports how many launches on this device engaged block
// memoization (used by tests and benches to prove engagement, or the lack
// of it under fault injection).
func (d *Device) MemoSkips() int64 { return d.memoSkips }

// decoded returns the cached decoded form of prog, decoding on first use.
func (d *Device) decoded(prog *kernel.Program) (*kernel.Decoded, error) {
	if dec, ok := d.decCache[prog]; ok {
		return dec, nil
	}
	dec, err := kernel.Decode(prog, d.cfg.WarpWidth)
	if err != nil {
		return nil, err
	}
	if d.decCache == nil {
		d.decCache = make(map[*kernel.Program]*kernel.Decoded)
	}
	d.decCache[prog] = dec
	return dec, nil
}

// certified consults (and caches) the uniform prover's verdict.
func (d *Device) certified(prog *kernel.Program, blocks int) bool {
	k := proverKey{prog, blocks}
	if v, ok := d.proverVerdicts[k]; ok {
		return v
	}
	v := d.uniformProver(prog, d.cfg, blocks)
	if d.proverVerdicts == nil {
		d.proverVerdicts = make(map[proverKey]bool)
	}
	d.proverVerdicts[k] = v
	return v
}

// SetCollectSites toggles per-access-site memory counters on subsequent
// launches. Enabled, each KernelResult carries a SiteStat per load/store
// instruction that executed, for auditing static predictions site by site.
func (d *Device) SetCollectSites(on bool) { d.collectSites = on }

// Launch errors.
var (
	ErrSharedExceeded = errors.New("simgpu: block shared memory exceeds M")
	ErrDivergentLoop  = errors.New("simgpu: divergent uniform branch (loop condition differs across active lanes)")
	ErrKernelTrap     = errors.New("simgpu: kernel trap")
	ErrDeadlock       = errors.New("simgpu: scheduler deadlock (no warp ready or waiting)")
	// ErrLastActiveSM guards the degradation floor: the device refuses to
	// fail its last working multiprocessor.
	ErrLastActiveSM = errors.New("simgpu: cannot fail the last active SM")
)

// New creates a device with cfg's global memory allocated.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := mem.NewGlobal(cfg.GlobalWords, cfg.WarpWidth)
	if err != nil {
		return nil, err
	}
	return &Device{cfg: cfg, global: g, arena: mem.NewArena(g), failedSMs: make([]bool, cfg.NumSMs)}, nil
}

// FailSM marks multiprocessor i as failed; subsequent launches run
// degraded on the remaining SMs. Failing an already-failed SM is a no-op;
// failing the last active SM is refused with ErrLastActiveSM so the device
// always retains a degradation floor of one multiprocessor.
func (d *Device) FailSM(i int) error {
	if i < 0 || i >= d.cfg.NumSMs {
		return fmt.Errorf("simgpu: SM index %d out of range [0,%d)", i, d.cfg.NumSMs)
	}
	if d.failedSMs[i] {
		return nil
	}
	if d.ActiveSMs() <= 1 {
		return ErrLastActiveSM
	}
	d.failedSMs[i] = true
	d.numFailed++
	return nil
}

// RestoreSMs returns all failed multiprocessors to service (a device
// reset/replacement between studies). Reset deliberately does NOT do this:
// SM health is hardware state, not round state.
func (d *Device) RestoreSMs() {
	for i := range d.failedSMs {
		d.failedSMs[i] = false
	}
	d.numFailed = 0
}

// ActiveSMs returns the number of working multiprocessors (≥ 1).
func (d *Device) ActiveSMs() int { return d.cfg.NumSMs - d.numFailed }

// FailedSMs lists the failed multiprocessor indices, ascending.
func (d *Device) FailedSMs() []int {
	if d.numFailed == 0 {
		return nil
	}
	out := make([]int, 0, d.numFailed)
	for i, f := range d.failedSMs {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Global returns the device global memory.
func (d *Device) Global() *mem.Global { return d.global }

// Arena returns the device's global-memory allocator.
func (d *Device) Arena() *mem.Arena { return d.arena }

// Reset clears global memory contents and the allocator, modelling the
// device reset portion of the model's σ synchronisation cost.
func (d *Device) Reset() {
	d.arena.Reset()
	raw := d.global.Raw()
	for i := range raw {
		raw[i] = 0
	}
}

// smState is one streaming multiprocessor's runtime state during a launch.
type smState struct {
	resident []*warp
	rr       int // round-robin issue pointer
}

// launchState carries the per-launch machinery.
type launchState struct {
	d     *Device
	prog  *kernel.Program
	width int
	// numBlocks is H, the logical launch size (what OpNumBlocks reads).
	// schedBlocks is how many blocks the scheduler actually simulates; it
	// starts equal to numBlocks and is reduced when a steady-state period
	// skip is applied (memo.go), with the elided blocks' statistics scaled
	// in and their data effects replayed after the run.
	numBlocks   int
	schedBlocks int
	nextBlock   int
	sms         []*smState
	// smIDs maps launch-state SM slots to physical SM indices; with
	// failed SMs the slots cover only the active multiprocessors, so
	// trace and warp bookkeeping still report hardware indices.
	smIDs     []int
	freeWarps []*warp
	cycle     int64
	stats     KernelStats

	// memFree is the cycle at which the device-wide memory controller can
	// accept the next transaction (bandwidth modelling; see
	// Config.MemServiceCycles).
	memFree int64

	// tracer records scheduling events when non-nil.
	tracer *Tracer

	// bankCounts is scratch for shared-memory conflict analysis;
	// blockScratch is scratch for global coalescing analysis. Both are
	// sized from the launch width.
	bankCounts   []int
	blockScratch []int

	// sites holds per-instruction memory counters when site collection is
	// enabled (indexed by pc; nil otherwise).
	sites []SiteStat

	// dec is the decoded execution form; nil routes the launch through
	// the legacy switch interpreter (Config.LegacyInterp).
	dec *kernel.Decoded

	// memo holds steady-state period detection for analyzer-certified
	// uniform launches; nil when memoization is not eligible.
	memo *memoState
}

// step issues one warp-instruction through whichever interpreter the
// launch selected.
func (ls *launchState) step(w *warp) error {
	if ls.dec != nil {
		return ls.execDec(w)
	}
	return ls.exec(w)
}

// Launch runs numBlocks thread blocks of prog to completion and returns the
// simulated time and statistics. Global memory contents are mutated in
// place. The launch fails if the program is invalid, if a block's shared
// allocation exceeds M (the model forbids such algorithms), or if the
// kernel traps (bad address, division by zero, divergent uniform branch).
func (d *Device) Launch(prog *kernel.Program, numBlocks int) (KernelResult, error) {
	return d.LaunchTraced(prog, numBlocks, nil)
}

// LaunchTraced is Launch with scheduling events recorded into tr (may be
// nil for no tracing). Results are identical; only observability differs.
func (d *Device) LaunchTraced(prog *kernel.Program, numBlocks int, tr *Tracer) (KernelResult, error) {
	if err := prog.Validate(); err != nil {
		return KernelResult{}, err
	}
	if numBlocks < 0 {
		return KernelResult{}, fmt.Errorf("simgpu: negative block count %d", numBlocks)
	}
	occ := d.cfg.Occupancy(prog.SharedWords)
	if occ == 0 {
		return KernelResult{}, fmt.Errorf("%w: kernel %s wants %d words, M=%d",
			ErrSharedExceeded, prog.Name, prog.SharedWords, d.cfg.SharedWords)
	}
	ls := &launchState{
		d:            d,
		prog:         prog,
		width:        d.cfg.WarpWidth,
		numBlocks:    numBlocks,
		schedBlocks:  numBlocks,
		sms:          make([]*smState, 0, d.ActiveSMs()),
		smIDs:        make([]int, 0, d.ActiveSMs()),
		bankCounts:   make([]int, d.cfg.WarpWidth),
		blockScratch: make([]int, d.cfg.WarpWidth),
		tracer:       tr,
	}
	if !d.cfg.LegacyInterp {
		dec, err := d.decoded(prog)
		if err != nil {
			return KernelResult{}, err
		}
		ls.dec = dec
	}
	for i := 0; i < d.cfg.NumSMs; i++ {
		if d.failedSMs[i] {
			continue
		}
		ls.sms = append(ls.sms, &smState{})
		ls.smIDs = append(ls.smIDs, i)
	}
	ls.stats.OccupancyLimit = occ
	if d.collectSites {
		ls.sites = make([]SiteStat, len(prog.Instrs))
	}

	if numBlocks == 0 {
		return KernelResult{Time: 0, Stats: ls.stats}, nil
	}
	// Block memoization: only for decoded, untraced, site-free launches of
	// analyzer-certified kernels, and never while faults are armed. Every
	// disable condition falls back to plain full simulation.
	if ls.dec != nil && tr == nil && !d.collectSites && !d.memoDisabled &&
		numBlocks >= memoMinBlocks && d.uniformProver != nil &&
		d.certified(prog, numBlocks) {
		ls.memo = &memoState{}
	}
	if err := ls.run(occ); err != nil {
		return KernelResult{}, err
	}
	if err := ls.finishMemo(); err != nil {
		return KernelResult{}, err
	}
	ls.stats.Cycles = ls.cycle
	secs := d.cfg.CyclesToSeconds(ls.cycle)
	return KernelResult{
		Time:  time.Duration(secs * float64(time.Second)),
		Stats: ls.stats,
		Sites: ls.collectedSites(),
	}, nil
}

// collectedSites compacts the per-pc site table into the touched sites,
// ascending by pc, filling in opcode and source line.
func (ls *launchState) collectedSites() []SiteStat {
	if ls.sites == nil {
		return nil
	}
	var out []SiteStat
	for pc := range ls.sites {
		if ls.sites[pc].Accesses == 0 {
			continue
		}
		s := ls.sites[pc]
		s.PC = pc
		s.Line = ls.prog.Line(pc)
		s.Op = ls.prog.Instrs[pc].Op
		out = append(out, s)
	}
	return out
}

// run drives the cycle loop until all blocks retire.
func (ls *launchState) run(occ int) error {
	retired := false
	for {
		if retired && ls.memo != nil {
			// A block completed since the last fingerprint: the scheduler
			// is at a retire boundary, the natural place to look for a
			// steady-state period (memo.go).
			ls.memo.observe(ls)
			retired = false
		}
		ls.refill(occ)
		done := true
		for _, sm := range ls.sms {
			if len(sm.resident) > 0 {
				done = false
				break
			}
		}
		if done {
			if ls.nextBlock >= ls.schedBlocks {
				return nil
			}
			continue // refill will place more blocks next iteration
		}

		issuedAny := false
		for _, sm := range ls.sms {
			if len(sm.resident) == 0 {
				if ls.nextBlock >= ls.schedBlocks {
					ls.stats.IdleCycles++
				}
				continue
			}
			w := sm.pickReady(ls.cycle)
			if w == nil {
				ls.stats.StallCycles++
				continue
			}
			issuedAny = true
			if err := ls.step(w); err != nil {
				return fmt.Errorf("%w: kernel %s block %d pc %d: %w",
					ErrKernelTrap, ls.prog.Name, w.blockID, w.pc, err)
			}
			if w.state == wDone {
				sm.retire(w)
				ls.recycle(w)
				retired = true
			}
		}

		if issuedAny {
			ls.cycle++
			continue
		}
		// No SM could issue: event-driven skip to the earliest memory
		// completion instead of spinning cycle by cycle.
		next := int64(math.MaxInt64)
		for _, sm := range ls.sms {
			for _, w := range sm.resident {
				if w.state == wWaiting && w.readyAt < next {
					next = w.readyAt
				}
			}
		}
		if next == math.MaxInt64 {
			return ErrDeadlock
		}
		if ls.d.cfg.DisableEventSkip {
			// Ablation mode: naive per-cycle stepping.
			next = ls.cycle + 1
		}
		if next <= ls.cycle {
			next = ls.cycle + 1
		}
		for _, sm := range ls.sms {
			if len(sm.resident) > 0 {
				ls.stats.StallCycles += next - ls.cycle - 1
			}
		}
		ls.cycle = next
	}
}

// refill tops every SM up to the occupancy limit from the pending block
// queue, assigning blocks round-robin across SMs the way a grid scheduler
// balances load.
func (ls *launchState) refill(occ int) {
	for {
		placed := false
		for smIdx, sm := range ls.sms {
			if ls.nextBlock >= ls.schedBlocks {
				return
			}
			if len(sm.resident) >= occ {
				continue
			}
			w, err := ls.acquire()
			if err != nil {
				// Allocation of warp scaffolding cannot fail for a
				// validated config; treat defensively as full.
				return
			}
			w.reset(ls.nextBlock)
			w.smIdx = ls.smIDs[smIdx]
			w.traceIdx = -1
			if ls.tracer != nil {
				w.traceIdx = ls.tracer.onSchedule(ls.nextBlock, w.smIdx, ls.cycle)
			}
			ls.nextBlock++
			sm.resident = append(sm.resident, w)
			if len(sm.resident) > ls.stats.MaxResidentBlocks {
				ls.stats.MaxResidentBlocks = len(sm.resident)
			}
			placed = true
		}
		if !placed {
			return
		}
	}
}

func (ls *launchState) acquire() (*warp, error) {
	if n := len(ls.freeWarps); n > 0 {
		w := ls.freeWarps[n-1]
		ls.freeWarps = ls.freeWarps[:n-1]
		return w, nil
	}
	return newWarp(ls.width, ls.prog.NumRegs, ls.prog.SharedWords)
}

func (ls *launchState) recycle(w *warp) {
	ls.stats.BlocksExecuted++
	if w.instrs > ls.stats.MaxWarpInstrs {
		ls.stats.MaxWarpInstrs = w.instrs
	}
	if w.atomSer > ls.stats.MaxWarpAtomicSerial {
		ls.stats.MaxWarpAtomicSerial = w.atomSer
	}
	if ls.tracer != nil {
		ls.tracer.onRetire(w.traceIdx, ls.cycle, w.instrs)
	}
	ls.freeWarps = append(ls.freeWarps, w)
}

// pickReady returns the next issuable warp after waking any whose memory
// request has completed, scanning round-robin from the last issue point.
func (sm *smState) pickReady(cycle int64) *warp {
	n := len(sm.resident)
	for i := 0; i < n; i++ {
		idx := (sm.rr + i) % n
		w := sm.resident[idx]
		if w.state == wWaiting && w.readyAt <= cycle {
			w.state = wReady
		}
		if w.state == wReady {
			sm.rr = (idx + 1) % n
			return w
		}
	}
	return nil
}

// retire removes w from the SM.
func (sm *smState) retire(w *warp) {
	for i, r := range sm.resident {
		if r == w {
			sm.resident = append(sm.resident[:i], sm.resident[i+1:]...)
			if sm.rr > i {
				sm.rr--
			}
			if len(sm.resident) > 0 {
				sm.rr %= len(sm.resident)
			} else {
				sm.rr = 0
			}
			return
		}
	}
}
