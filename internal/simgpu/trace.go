package simgpu

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Tracer records block-granularity scheduling events of one launch:
// when each thread block became resident on which SM, when it retired, and
// (optionally) each of its global-memory accesses. Traces export to the
// Chrome trace-event JSON format (chrome://tracing, Perfetto) and to a
// textual occupancy timeline.
//
// Tracing is opt-in per launch via Device.LaunchTraced; the default Launch
// path carries no tracing overhead.
type Tracer struct {
	// MaxEvents caps recorded events (0 means DefaultMaxEvents); beyond
	// the cap the tracer sets Truncated and drops further events, so
	// tracing a million-block launch degrades gracefully.
	MaxEvents int
	// CaptureMemory records an event per warp-wide global access.
	CaptureMemory bool

	blocks    []BlockSpan
	memEvents []MemEvent
	// Truncated reports whether the cap was hit.
	Truncated bool
}

// DefaultMaxEvents bounds trace growth unless overridden.
const DefaultMaxEvents = 1 << 20

// BlockSpan is one thread block's residency on an SM.
type BlockSpan struct {
	Block     int
	SM        int
	Scheduled int64 // cycle the block became resident
	Retired   int64 // cycle the block retired (-1 while running)
	Instrs    int64 // warp-instructions issued by the block
}

// MemEvent is one warp-wide global memory access.
type MemEvent struct {
	Block        int
	SM           int
	Cycle        int64
	Transactions int
	Store        bool
}

func (tr *Tracer) cap() int {
	if tr.MaxEvents > 0 {
		return tr.MaxEvents
	}
	return DefaultMaxEvents
}

func (tr *Tracer) onSchedule(block, sm int, cycle int64) int {
	if len(tr.blocks) >= tr.cap() {
		tr.Truncated = true
		return -1
	}
	tr.blocks = append(tr.blocks, BlockSpan{Block: block, SM: sm, Scheduled: cycle, Retired: -1})
	return len(tr.blocks) - 1
}

func (tr *Tracer) onRetire(idx int, cycle, instrs int64) {
	if idx < 0 || idx >= len(tr.blocks) {
		return
	}
	tr.blocks[idx].Retired = cycle
	tr.blocks[idx].Instrs = instrs
}

func (tr *Tracer) onMem(block, sm int, cycle int64, txns int, store bool) {
	if !tr.CaptureMemory {
		return
	}
	if len(tr.memEvents) >= tr.cap() {
		tr.Truncated = true
		return
	}
	tr.memEvents = append(tr.memEvents, MemEvent{
		Block: block, SM: sm, Cycle: cycle, Transactions: txns, Store: store,
	})
}

// Blocks returns the recorded block spans.
func (tr *Tracer) Blocks() []BlockSpan { return tr.blocks }

// MemEvents returns the recorded memory events.
func (tr *Tracer) MemEvents() []MemEvent { return tr.memEvents }

// chromeEvent is the trace-event JSON schema subset we emit.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace emits the trace in Chrome trace-event JSON. Cycles map
// to microsecond timestamps one-to-one; SMs become processes, resident
// blocks become threads.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(tr.blocks)+len(tr.memEvents))
	for _, b := range tr.blocks {
		end := b.Retired
		if end < 0 {
			end = b.Scheduled
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("block %d", b.Block),
			Ph:   "X",
			Ts:   b.Scheduled,
			Dur:  end - b.Scheduled,
			Pid:  b.SM,
			Tid:  b.Block,
			Args: map[string]string{"instrs": fmt.Sprint(b.Instrs)},
		})
	}
	for _, m := range tr.memEvents {
		kind := "load"
		if m.Store {
			kind = "store"
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("gmem %s (%d txn)", kind, m.Transactions),
			Ph:   "i",
			Ts:   m.Cycle,
			Pid:  m.SM,
			Tid:  m.Block,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// OccupancyTimeline renders per-SM resident-block counts sampled at
// buckets intervals across the launch, as rows of digits — a quick look at
// how well the grid kept the machine busy.
func (tr *Tracer) OccupancyTimeline(buckets int) string {
	if buckets <= 0 {
		buckets = 40
	}
	var endCycle int64
	numSMs := 0
	for _, b := range tr.blocks {
		if b.Retired > endCycle {
			endCycle = b.Retired
		}
		if b.SM+1 > numSMs {
			numSMs = b.SM + 1
		}
	}
	if endCycle == 0 || numSMs == 0 {
		return "(empty trace)\n"
	}
	var sb strings.Builder
	for sm := 0; sm < numSMs; sm++ {
		fmt.Fprintf(&sb, "SM%-2d |", sm)
		for bk := 0; bk < buckets; bk++ {
			at := endCycle * int64(bk) / int64(buckets)
			resident := 0
			for _, b := range tr.blocks {
				if b.SM == sm && b.Scheduled <= at && (b.Retired < 0 || b.Retired > at) {
					resident++
				}
			}
			switch {
			case resident == 0:
				sb.WriteByte('.')
			case resident > 9:
				sb.WriteByte('+')
			default:
				sb.WriteByte(byte('0' + resident))
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "      0%*d cycles\n", buckets-1, endCycle)
	return sb.String()
}

// Summary returns aggregate trace statistics: blocks traced, mean
// residency duration, and per-SM block counts.
func (tr *Tracer) Summary() string {
	if len(tr.blocks) == 0 {
		return "trace: empty"
	}
	perSM := map[int]int{}
	var total int64
	done := 0
	for _, b := range tr.blocks {
		perSM[b.SM]++
		if b.Retired >= 0 {
			total += b.Retired - b.Scheduled
			done++
		}
	}
	sms := make([]int, 0, len(perSM))
	for sm := range perSM {
		sms = append(sms, sm)
	}
	sort.Ints(sms)
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d blocks", len(tr.blocks))
	if done > 0 {
		fmt.Fprintf(&sb, ", mean residency %.1f cycles", float64(total)/float64(done))
	}
	if tr.Truncated {
		sb.WriteString(" (truncated)")
	}
	sb.WriteByte('\n')
	for _, sm := range sms {
		fmt.Fprintf(&sb, "  SM%d: %d blocks\n", sm, perSM[sm])
	}
	return sb.String()
}
