package simgpu

import (
	"testing"
	"testing/quick"

	"atgpu/internal/kernel"
)

// TestDifferentialRandomPrograms generates random straight-line arithmetic
// programs from a byte recipe, runs them on the simulated device, and
// compares every lane's final register state against a direct per-lane
// evaluation in Go. Any divergence between the device interpreter and Go
// semantics — operand routing, masking, immediate handling — fails the
// property.
func TestDifferentialRandomPrograms(t *testing.T) {
	const (
		regs  = 6
		width = 4
	)

	// buildAndEval constructs the kernel and, in lockstep, evaluates the
	// expected register file for each lane.
	buildAndEval := func(recipe []byte) (*kernel.Program, [][]int64) {
		kb := kernel.NewBuilder("diff", 0)
		var regIDs [regs]kernel.Reg
		for i := range regIDs {
			regIDs[i] = kb.Reg()
		}
		expect := make([][]int64, width)
		for l := range expect {
			expect[l] = make([]int64, regs)
		}

		// Seed registers with lane-dependent values.
		for i := range regIDs {
			kb.LaneID(regIDs[i])
			kb.Add(regIDs[i], regIDs[i], kernel.Imm(int64(i*3+1)))
			for l := 0; l < width; l++ {
				expect[l][i] = int64(l) + int64(i*3+1)
			}
		}

		for pos := 0; pos+2 < len(recipe); pos += 3 {
			op := recipe[pos] % 12
			rd := int(recipe[pos+1]) % regs
			rs := int(recipe[pos+2]) % regs
			imm := int64(recipe[pos+2]%7) + 1
			switch op {
			case 0:
				kb.Add(regIDs[rd], regIDs[rd], kernel.R(regIDs[rs]))
				for l := 0; l < width; l++ {
					expect[l][rd] += expect[l][rs]
				}
			case 1:
				kb.Sub(regIDs[rd], regIDs[rd], kernel.R(regIDs[rs]))
				for l := 0; l < width; l++ {
					expect[l][rd] -= expect[l][rs]
				}
			case 2:
				kb.Mul(regIDs[rd], regIDs[rd], kernel.R(regIDs[rs]))
				for l := 0; l < width; l++ {
					expect[l][rd] *= expect[l][rs]
				}
			case 3:
				kb.Add(regIDs[rd], regIDs[rd], kernel.Imm(imm))
				for l := 0; l < width; l++ {
					expect[l][rd] += imm
				}
			case 4:
				kb.Mul(regIDs[rd], regIDs[rd], kernel.Imm(imm))
				for l := 0; l < width; l++ {
					expect[l][rd] *= imm
				}
			case 5:
				kb.Div(regIDs[rd], regIDs[rd], kernel.Imm(imm))
				for l := 0; l < width; l++ {
					expect[l][rd] /= imm
				}
			case 6:
				kb.Mod(regIDs[rd], regIDs[rd], kernel.Imm(imm))
				for l := 0; l < width; l++ {
					expect[l][rd] %= imm
				}
			case 7:
				kb.Min(regIDs[rd], regIDs[rd], kernel.R(regIDs[rs]))
				for l := 0; l < width; l++ {
					if expect[l][rs] < expect[l][rd] {
						expect[l][rd] = expect[l][rs]
					}
				}
			case 8:
				kb.Max(regIDs[rd], regIDs[rd], kernel.R(regIDs[rs]))
				for l := 0; l < width; l++ {
					if expect[l][rs] > expect[l][rd] {
						expect[l][rd] = expect[l][rs]
					}
				}
			case 9:
				kb.Xor(regIDs[rd], regIDs[rd], kernel.R(regIDs[rs]))
				for l := 0; l < width; l++ {
					expect[l][rd] ^= expect[l][rs]
				}
			case 10:
				kb.And(regIDs[rd], regIDs[rd], kernel.Imm(imm))
				for l := 0; l < width; l++ {
					expect[l][rd] &= imm
				}
			case 11:
				kb.Slt(regIDs[rd], regIDs[rd], kernel.R(regIDs[rs]))
				for l := 0; l < width; l++ {
					if expect[l][rd] < expect[l][rs] {
						expect[l][rd] = 1
					} else {
						expect[l][rd] = 0
					}
				}
			}
		}

		// Spill every register to global: r i of lane l at i*width+l.
		addr := kb.Reg()
		lane := kb.Reg()
		kb.LaneID(lane)
		for i := range regIDs {
			kb.Const(addr, int64(i*width))
			kb.Add(addr, addr, kernel.R(lane))
			kb.StGlobal(addr, regIDs[i])
		}
		return kb.MustBuild(), expect
	}

	f := func(recipe []byte) bool {
		prog, expect := buildAndEval(recipe)
		d, err := New(Tiny())
		if err != nil {
			return false
		}
		if _, err := d.Launch(prog, 1); err != nil {
			return false
		}
		got, err := d.Global().ReadSlice(0, regs*width)
		if err != nil {
			return false
		}
		for i := 0; i < regs; i++ {
			for l := 0; l < width; l++ {
				if got[i*width+l] != expect[l][i] {
					t.Logf("reg %d lane %d: device %d, reference %d",
						i, l, got[i*width+l], expect[l][i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialDivergentIf extends the differential check to masked
// execution: random single-block ifs guarded by lane comparisons.
func TestDifferentialDivergentIf(t *testing.T) {
	const width = 4
	f := func(thresholds []byte, deltas []byte) bool {
		n := len(thresholds)
		if len(deltas) < n {
			n = len(deltas)
		}
		if n > 12 {
			n = 12
		}
		kb := kernel.NewBuilder("diffif", 0)
		acc := kb.Reg()
		lane := kb.Reg()
		cond := kb.Reg()
		kb.Const(acc, 0)
		kb.LaneID(lane)

		expect := make([]int64, width)
		for i := 0; i < n; i++ {
			thr := int64(thresholds[i] % (width + 1))
			delta := int64(deltas[i]%9) - 4
			kb.Slt(cond, lane, kernel.Imm(thr))
			kb.IfDo(cond, func() {
				kb.Add(acc, acc, kernel.Imm(delta))
			})
			for l := 0; l < width; l++ {
				if int64(l) < thr {
					expect[l] += delta
				}
			}
		}
		kb.StGlobal(lane, acc)
		prog := kb.MustBuild()

		d, err := New(Tiny())
		if err != nil {
			return false
		}
		if _, err := d.Launch(prog, 1); err != nil {
			return false
		}
		got, err := d.Global().ReadSlice(0, width)
		if err != nil {
			return false
		}
		for l := 0; l < width; l++ {
			if got[l] != expect[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
