package simgpu

import (
	"atgpu/internal/kernel"
	"atgpu/internal/mem"
)

// wState is the scheduling state of a warp.
type wState uint8

const (
	wReady   wState = iota // can issue this cycle
	wWaiting               // blocked on a memory request until readyAt
	wDone                  // retired at halt
)

// warp is one resident thread block's execution state. In the ATGPU model a
// thread block is exactly one warp: the b cores Cᵢ of a multiprocessor
// executing "the same set of instructions at the same time (in lockstep)".
type warp struct {
	blockID int
	pc      int
	state   wState
	readyAt int64 // cycle at which a waiting warp becomes ready
	instrs  int64 // warp-instructions issued by this block
	atomSer int64 // Σ(degree−1) over this block's atomic accesses

	// smIdx is the hosting SM; traceIdx links to the Tracer's span for
	// this residency (-1 when untraced).
	smIdx    int
	traceIdx int

	// regs is the flattened per-lane register file: register r of lane l
	// is regs[int(r)*width + l].
	regs []kernel.Word
	// active is the SIMT mask; lanes masked off by an if.begin stay
	// inactive until the matching if.end. activeN caches the number of
	// true entries — it is maintained by reset/popMask and by the if.begin
	// handlers, the only places the mask changes.
	active  []bool
	activeN int
	// maskStack saves outer masks across nested if regions; maskDepth is
	// the live depth (entries above it are reusable storage).
	maskStack [][]bool
	maskDepth int

	// shared is the block's shared-memory allocation.
	shared *mem.Shared

	// addrs is scratch for gathering a warp-wide address vector.
	addrs []int
}

func newWarp(width, numRegs, sharedWords int) (*warp, error) {
	sh, err := mem.NewShared(sharedWords, width)
	if err != nil {
		return nil, err
	}
	return &warp{
		regs:   make([]kernel.Word, numRegs*width),
		active: make([]bool, width),
		shared: sh,
		addrs:  make([]int, width),
	}, nil
}

// reset prepares the warp to run block blockID from a clean state:
// zeroed registers and shared memory, full mask, pc 0.
func (w *warp) reset(blockID int) {
	w.blockID = blockID
	w.pc = 0
	w.state = wReady
	w.readyAt = 0
	w.instrs = 0
	w.atomSer = 0
	for i := range w.regs {
		w.regs[i] = 0
	}
	for i := range w.active {
		w.active[i] = true
	}
	w.activeN = len(w.active)
	w.maskDepth = 0
	w.shared.Zero()
}

// pushMask saves the current mask, reusing stack storage when available.
func (w *warp) pushMask() {
	if w.maskDepth == len(w.maskStack) {
		w.maskStack = append(w.maskStack, make([]bool, len(w.active)))
	}
	copy(w.maskStack[w.maskDepth], w.active)
	w.maskDepth++
}

// popMask restores the most recently saved mask. Returns false on
// underflow (a malformed program that Validate should have rejected).
func (w *warp) popMask() bool {
	if w.maskDepth == 0 {
		return false
	}
	w.maskDepth--
	copy(w.active, w.maskStack[w.maskDepth])
	n := 0
	for _, a := range w.active {
		if a {
			n++
		}
	}
	w.activeN = n
	return true
}

// anyActive reports whether any lane is active.
func (w *warp) anyActive() bool {
	for _, a := range w.active {
		if a {
			return true
		}
	}
	return false
}

// activeCount returns the number of active lanes.
func (w *warp) activeCount() int {
	n := 0
	for _, a := range w.active {
		if a {
			n++
		}
	}
	return n
}
