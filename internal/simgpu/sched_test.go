package simgpu

import (
	"testing"

	"atgpu/internal/kernel"
)

// loadKernel builds a kernel where each lane loads from base + lane*stride,
// exposing coalesced (stride 1) vs scattered (stride ≥ b) global accesses.
func loadKernel(name string, loads int, stride int64) *kernel.Program {
	kb := kernel.NewBuilder(name, 0)
	j := kb.Reg()
	addr := kb.Reg()
	v := kb.Reg()
	kb.LaneID(j)
	kb.Mul(addr, j, kernel.Imm(stride))
	for i := 0; i < loads; i++ {
		kb.LdGlobal(v, addr)
	}
	return kb.MustBuild()
}

func TestCoalescedTransactionCount(t *testing.T) {
	d := newTiny(t) // width 4, block size 4
	res, err := d.Launch(loadKernel("coal", 10, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GlobalAccesses != 10 {
		t.Fatalf("accesses = %d, want 10", res.Stats.GlobalAccesses)
	}
	if res.Stats.GlobalTransactions != 10 {
		t.Fatalf("coalesced transactions = %d, want 10 (1 per access)", res.Stats.GlobalTransactions)
	}
	if res.Stats.UncoalescedAccesses != 0 {
		t.Fatalf("uncoalesced = %d, want 0", res.Stats.UncoalescedAccesses)
	}
}

func TestScatteredTransactionCount(t *testing.T) {
	d := newTiny(t)
	res, err := d.Launch(loadKernel("scat", 10, 4), 1) // stride = block size
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GlobalTransactions != 40 {
		t.Fatalf("scattered transactions = %d, want 40 (4 per access)", res.Stats.GlobalTransactions)
	}
	if res.Stats.UncoalescedAccesses != 10 {
		t.Fatalf("uncoalesced = %d, want 10", res.Stats.UncoalescedAccesses)
	}
}

func TestScatteredCostsMoreCycles(t *testing.T) {
	d1 := newTiny(t)
	r1, err := d1.Launch(loadKernel("coal", 20, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := newTiny(t)
	r2, err := d2.Launch(loadKernel("scat", 20, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Cycles <= r1.Stats.Cycles {
		t.Fatalf("scattered (%d cycles) should cost more than coalesced (%d cycles)",
			r2.Stats.Cycles, r1.Stats.Cycles)
	}
	// With ExtraTransactionCycles=5 and 3 extra transactions per access,
	// the difference should be about 20 accesses × 15 cycles.
	wantDelta := int64(20 * 3 * Tiny().ExtraTransactionCycles)
	delta := r2.Stats.Cycles - r1.Stats.Cycles
	if delta != wantDelta {
		t.Fatalf("cycle delta = %d, want %d", delta, wantDelta)
	}
}

// sharedKernel builds a kernel with one shared store per lane at
// lane*stride, then a load, exposing bank conflicts (stride = banks).
func sharedKernel(name string, accesses int, stride int64, shared int) *kernel.Program {
	kb := kernel.NewBuilder(name, shared)
	j := kb.Reg()
	addr := kb.Reg()
	v := kb.Reg()
	kb.LaneID(j)
	kb.Mul(addr, j, kernel.Imm(stride))
	kb.Const(v, 7)
	for i := 0; i < accesses; i++ {
		kb.StShared(addr, v)
	}
	return kb.MustBuild()
}

func TestBankConflictDetection(t *testing.T) {
	d := newTiny(t) // 4 banks
	res, err := d.Launch(sharedKernel("conflict", 5, 4, 16), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BankConflicts != 5 {
		t.Fatalf("bank conflicts = %d, want 5", res.Stats.BankConflicts)
	}
	if res.Stats.MaxConflictDegree != 4 {
		t.Fatalf("max degree = %d, want 4", res.Stats.MaxConflictDegree)
	}
}

func TestBankConflictFree(t *testing.T) {
	d := newTiny(t)
	res, err := d.Launch(sharedKernel("clean", 5, 1, 16), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BankConflicts != 0 {
		t.Fatalf("bank conflicts = %d, want 0", res.Stats.BankConflicts)
	}
}

func TestBankConflictSerialisationCost(t *testing.T) {
	cfgOn := Tiny()
	cfgOn.SerialiseBankConflicts = true
	cfgOff := Tiny()
	cfgOff.SerialiseBankConflicts = false

	dOn, err := New(cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	dOff, err := New(cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	prog := sharedKernel("conflict", 10, 4, 16)
	rOn, err := dOn.Launch(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := dOff.Launch(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rOn.Stats.Cycles <= rOff.Stats.Cycles {
		t.Fatalf("serialised conflicts (%d cycles) should cost more than ignored (%d)",
			rOn.Stats.Cycles, rOff.Stats.Cycles)
	}
}

func TestBroadcastSharedRead(t *testing.T) {
	// All lanes reading one address: degree 1 with broadcast, degree b
	// without.
	build := func() *kernel.Program {
		kb := kernel.NewBuilder("bcast", 8)
		addr := kb.Reg()
		v := kb.Reg()
		kb.Const(addr, 3)
		kb.LdShared(v, addr)
		return kb.MustBuild()
	}
	cfg := Tiny()
	cfg.BroadcastSharedReads = true
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Launch(build(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BankConflicts != 0 {
		t.Fatalf("broadcast read flagged as conflict: %d", res.Stats.BankConflicts)
	}

	cfg.BroadcastSharedReads = false
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := d2.Launch(build(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.BankConflicts != 1 {
		t.Fatalf("same-word access without broadcast should conflict: %d", res2.Stats.BankConflicts)
	}
}

// TestLatencyHiding is the paper's §I-A mechanism: "Whilst a warp waits for
// a memory request, other warps execute on the cores of the streaming
// multiprocessor". Running W memory-bound blocks on one SM must take far
// less than W times one block's latency once W > 1.
func TestLatencyHiding(t *testing.T) {
	cfg := Tiny()
	cfg.NumSMs = 1
	cfg.MaxBlocksPerSM = 8
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := loadKernel("lat", 8, 1)
	r1, err := d1.Launch(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := d8.Launch(prog, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Stats.Cycles >= 8*r1.Stats.Cycles {
		t.Fatalf("no latency hiding: 8 blocks took %d cycles vs %d for one",
			r8.Stats.Cycles, r1.Stats.Cycles)
	}
	// With 8 resident warps hiding each other's 20-cycle latency, the
	// 8-block run should cost well under 4× the single block.
	if r8.Stats.Cycles > 4*r1.Stats.Cycles {
		t.Fatalf("weak latency hiding: 8 blocks took %d cycles vs %d for one",
			r8.Stats.Cycles, r1.Stats.Cycles)
	}
}

// TestOccupancyLimitsResidency: a kernel whose shared usage allows only one
// block per SM must never have two resident.
func TestOccupancyLimitsResidency(t *testing.T) {
	d := newTiny(t) // M = 64
	kb := kernel.NewBuilder("fat", 64)
	j := kb.Reg()
	v := kb.Reg()
	kb.LaneID(j)
	kb.LdShared(v, j)
	prog := kb.MustBuild()
	res, err := d.Launch(prog, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OccupancyLimit != 1 {
		t.Fatalf("occupancy limit = %d, want 1", res.Stats.OccupancyLimit)
	}
	if res.Stats.MaxResidentBlocks != 1 {
		t.Fatalf("max resident = %d, want 1", res.Stats.MaxResidentBlocks)
	}
	if res.Stats.BlocksExecuted != 6 {
		t.Fatalf("blocks executed = %d, want 6", res.Stats.BlocksExecuted)
	}
}

// TestOccupancySpeedsUpMemoryBoundKernels: the same grid of memory-bound
// blocks finishes sooner when more blocks may be resident.
func TestOccupancySpeedsUpMemoryBoundKernels(t *testing.T) {
	lowCfg := Tiny()
	lowCfg.NumSMs = 1
	lowCfg.MaxBlocksPerSM = 1
	highCfg := lowCfg
	highCfg.MaxBlocksPerSM = 8

	prog := loadKernel("occ", 8, 1)
	dl, err := New(lowCfg)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := dl.Launch(prog, 16)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := New(highCfg)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := dh.Launch(prog, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Stats.Cycles >= rl.Stats.Cycles {
		t.Fatalf("higher occupancy (%d cycles) not faster than lower (%d)",
			rh.Stats.Cycles, rl.Stats.Cycles)
	}
}

// TestMultipleSMsSplitWork: doubling SMs roughly halves a compute-bound
// launch.
func TestMultipleSMsSplitWork(t *testing.T) {
	build := func() *kernel.Program {
		kb := kernel.NewBuilder("cpu", 0)
		r := kb.Reg()
		kb.Const(r, 0)
		for i := 0; i < 64; i++ {
			kb.Add(r, r, kernel.Imm(1))
		}
		return kb.MustBuild()
	}
	one := Tiny()
	one.NumSMs = 1
	two := Tiny()
	two.NumSMs = 2

	d1, err := New(one)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d1.Launch(build(), 8)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(two)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Launch(build(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r1.Stats.Cycles) / float64(r2.Stats.Cycles)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("2 SMs speedup = %.2fx, want ≈2x (%d vs %d cycles)",
			ratio, r1.Stats.Cycles, r2.Stats.Cycles)
	}
}

// TestDeterminism: identical launches produce identical cycle counts and
// stats — required for reproducible experiments.
func TestDeterminism(t *testing.T) {
	prog := loadKernel("det", 6, 4)
	var first KernelResult
	for i := 0; i < 3; i++ {
		d := newTiny(t)
		res, err := d.Launch(prog, 7)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.Stats != first.Stats || res.Time != first.Time {
			t.Fatalf("run %d differs:\n%+v\nvs\n%+v", i, res.Stats, first.Stats)
		}
	}
}

// TestMaxWarpInstrs tracks the longest per-block instruction stream, the
// empirical analogue of the model's tᵢ.
func TestMaxWarpInstrs(t *testing.T) {
	d := newTiny(t)
	kb := kernel.NewBuilder("count", 0)
	r := kb.Reg()
	kb.Const(r, 0)
	kb.Add(r, r, kernel.Imm(1))
	kb.Add(r, r, kernel.Imm(1))
	prog := kb.MustBuild() // 4 instructions including halt
	res, err := d.Launch(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxWarpInstrs != int64(prog.Len()) {
		t.Fatalf("MaxWarpInstrs = %d, want %d", res.Stats.MaxWarpInstrs, prog.Len())
	}
}

func TestStatsMerge(t *testing.T) {
	a := KernelStats{Cycles: 10, GlobalTransactions: 5, MaxConflictDegree: 2, MaxWarpInstrs: 7, OccupancyLimit: 4}
	b := KernelStats{Cycles: 20, GlobalTransactions: 3, MaxConflictDegree: 3, MaxWarpInstrs: 5, OccupancyLimit: 2}
	a.Merge(b)
	if a.Cycles != 30 || a.GlobalTransactions != 8 {
		t.Fatalf("additive fields wrong: %+v", a)
	}
	if a.MaxConflictDegree != 3 || a.MaxWarpInstrs != 7 || a.OccupancyLimit != 4 {
		t.Fatalf("max fields wrong: %+v", a)
	}
}

// TestEventSkipEquivalence: the event-driven clock jump is purely an
// implementation speedup — per-cycle stepping must produce identical
// cycle counts and statistics.
func TestEventSkipEquivalence(t *testing.T) {
	progs := []*kernel.Program{
		loadKernel("eq-mem", 10, 4),
		sharedKernel("eq-shared", 6, 4, 16),
	}
	for _, prog := range progs {
		fast := Tiny()
		slow := Tiny()
		slow.DisableEventSkip = true
		df, err := New(fast)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := New(slow)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := df.Launch(prog, 5)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ds.Launch(prog, 5)
		if err != nil {
			t.Fatal(err)
		}
		if rf.Stats.Cycles != rs.Stats.Cycles {
			t.Fatalf("%s: cycles differ: skip=%d step=%d", prog.Name, rf.Stats.Cycles, rs.Stats.Cycles)
		}
		if rf.Stats.GlobalTransactions != rs.Stats.GlobalTransactions ||
			rf.Stats.InstructionsIssued != rs.Stats.InstructionsIssued {
			t.Fatalf("%s: stats differ:\n%+v\nvs\n%+v", prog.Name, rf.Stats, rs.Stats)
		}
	}
}

// TestMemoryBandwidthWall: with a device-wide service rate, doubling the
// per-warp transaction count of a saturating launch roughly doubles the
// cycle count, regardless of concurrency.
func TestMemoryBandwidthWall(t *testing.T) {
	cfg := Tiny()
	cfg.MemServiceCycles = 4
	cfg.MaxBlocksPerSM = 2 // plenty of warps to hide latency
	run := func(loads int) int64 {
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Launch(loadKernel("bw", loads, 4), 64)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	c1 := run(8)
	c2 := run(16)
	ratio := float64(c2) / float64(c1)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("bandwidth wall missing: 2x transactions → %.2fx cycles (%d vs %d)", ratio, c2, c1)
	}
	// Disabling bandwidth modelling must let concurrency hide the cost:
	// same workloads complete in fewer cycles.
	cfgFree := cfg
	cfgFree.MemServiceCycles = 0
	d, err := New(cfgFree)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Launch(loadKernel("bw", 16, 4), 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles >= c2 {
		t.Fatalf("infinite bandwidth (%d cycles) not faster than limited (%d)", res.Stats.Cycles, c2)
	}
}
