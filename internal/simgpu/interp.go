package simgpu

import (
	"errors"
	"fmt"

	"atgpu/internal/kernel"
)

// Interpreter errors.
var (
	errDivByZero  = errors.New("division by zero")
	errAddrRange  = errors.New("address out of range")
	errMaskPop    = errors.New("if.end without saved mask")
	errBadOpcode  = errors.New("undefined opcode")
	errPCRange    = errors.New("program counter out of range")
	errNoActiveBr = errors.New("uniform branch with no active lanes")
)

// exec issues exactly one warp-instruction for w, updating registers,
// memories, statistics and the warp's scheduling state. All active lanes
// execute the instruction in lockstep; control flow manipulates the mask
// per the SIMT rules described in the package comment.
func (ls *launchState) exec(w *warp) error {
	if w.pc < 0 || w.pc >= len(ls.prog.Instrs) {
		return errPCRange
	}
	in := ls.prog.Instrs[w.pc]
	width := ls.width
	w.instrs++
	ls.stats.InstructionsIssued++
	ls.stats.LaneOps += int64(w.activeCount())

	regs := w.regs
	base := func(r kernel.Reg) int { return int(r) * width }

	switch in.Op {
	case kernel.OpNop:
		// nothing

	case kernel.OpConst:
		d := base(in.Rd)
		for l := 0; l < width; l++ {
			if w.active[l] {
				regs[d+l] = in.Imm
			}
		}

	case kernel.OpMov:
		d, a := base(in.Rd), base(in.Ra)
		for l := 0; l < width; l++ {
			if w.active[l] {
				regs[d+l] = regs[a+l]
			}
		}

	case kernel.OpAdd, kernel.OpSub, kernel.OpMul, kernel.OpMin, kernel.OpMax,
		kernel.OpAnd, kernel.OpOr, kernel.OpXor, kernel.OpShl, kernel.OpShr,
		kernel.OpSlt, kernel.OpSle, kernel.OpSeq, kernel.OpSne:
		d, a, b := base(in.Rd), base(in.Ra), base(in.Rb)
		for l := 0; l < width; l++ {
			if w.active[l] {
				regs[d+l] = alu(in.Op, regs[a+l], regs[b+l])
			}
		}

	case kernel.OpDiv, kernel.OpMod:
		d, a, b := base(in.Rd), base(in.Ra), base(in.Rb)
		for l := 0; l < width; l++ {
			if w.active[l] {
				if regs[b+l] == 0 {
					return fmt.Errorf("%w: lane %d", errDivByZero, l)
				}
				if in.Op == kernel.OpDiv {
					regs[d+l] = regs[a+l] / regs[b+l]
				} else {
					regs[d+l] = regs[a+l] % regs[b+l]
				}
			}
		}

	case kernel.OpAddI, kernel.OpMulI, kernel.OpShlI, kernel.OpShrI, kernel.OpAndI,
		kernel.OpSltI, kernel.OpSleI, kernel.OpSeqI, kernel.OpSneI:
		d, a := base(in.Rd), base(in.Ra)
		for l := 0; l < width; l++ {
			if w.active[l] {
				regs[d+l] = aluImm(in.Op, regs[a+l], in.Imm)
			}
		}

	case kernel.OpDivI, kernel.OpModI:
		// A zero immediate divisor traps only if a lane actually executes
		// it, matching the masked semantics of register-operand div/mod.
		d, a := base(in.Rd), base(in.Ra)
		for l := 0; l < width; l++ {
			if w.active[l] {
				if in.Imm == 0 {
					return fmt.Errorf("%w: lane %d", errDivByZero, l)
				}
				if in.Op == kernel.OpDivI {
					regs[d+l] = regs[a+l] / in.Imm
				} else {
					regs[d+l] = regs[a+l] % in.Imm
				}
			}
		}

	case kernel.OpLaneID:
		d := base(in.Rd)
		for l := 0; l < width; l++ {
			if w.active[l] {
				regs[d+l] = kernel.Word(l)
			}
		}

	case kernel.OpBlockID:
		d := base(in.Rd)
		v := kernel.Word(w.blockID)
		for l := 0; l < width; l++ {
			if w.active[l] {
				regs[d+l] = v
			}
		}

	case kernel.OpNumBlocks:
		d := base(in.Rd)
		v := kernel.Word(ls.numBlocks)
		for l := 0; l < width; l++ {
			if w.active[l] {
				regs[d+l] = v
			}
		}

	case kernel.OpBlockDim:
		d := base(in.Rd)
		v := kernel.Word(width)
		for l := 0; l < width; l++ {
			if w.active[l] {
				regs[d+l] = v
			}
		}

	case kernel.OpLdGlobal, kernel.OpStGlobal:
		// execGlobal advances pc itself on every path.
		return ls.execGlobal(w, in.Op, base(in.Rd), base(in.Ra), base(in.Rb))

	case kernel.OpLdShared, kernel.OpStShared:
		// execShared advances pc itself on every path.
		return ls.execShared(w, in.Op, base(in.Rd), base(in.Ra), base(in.Rb))

	case kernel.OpAtomAdd, kernel.OpAtomMax, kernel.OpAtomExch, kernel.OpAtomCAS:
		// Both advance pc themselves on every path.
		if in.Imm == kernel.AtomGlobal {
			return ls.execAtomGlobal(w, in.Op, base(in.Rd), base(in.Ra), base(in.Rb))
		}
		return ls.execAtomShared(w, in.Op, base(in.Rd), base(in.Ra), base(in.Rb))

	case kernel.OpBarrier:
		// One warp per block: the barrier is trivially satisfied but
		// still consumes an issue slot, as on hardware.
		ls.stats.Barriers++

	case kernel.OpJump:
		w.pc = int(in.Target)
		return nil

	case kernel.OpBrNZ:
		// Uniform branch: all active lanes must agree, per the model's
		// uniform wrapper loops.
		taken, uniform, any := w.uniformCond(base(in.Ra))
		if !any {
			return errNoActiveBr
		}
		if !uniform {
			return ErrDivergentLoop
		}
		if taken {
			w.pc = int(in.Target)
			return nil
		}

	case kernel.OpIfBegin:
		a := base(in.Ra)
		divergent := false
		anyTrue := false
		// First pass: classify without mutating, to detect divergence.
		for l := 0; l < width; l++ {
			if !w.active[l] {
				continue
			}
			if regs[a+l] != 0 {
				anyTrue = true
			} else {
				divergent = true
			}
		}
		if anyTrue && divergent {
			ls.stats.DivergentBranches++
		}
		if !anyTrue {
			// Whole warp skips the body; mask unchanged.
			w.pc = int(in.Target)
			return nil
		}
		w.pushMask()
		for l := 0; l < width; l++ {
			if w.active[l] && regs[a+l] == 0 {
				w.active[l] = false
				w.activeN--
			}
		}

	case kernel.OpIfEnd:
		if !w.popMask() {
			return errMaskPop
		}

	case kernel.OpHalt:
		w.state = wDone
		return nil

	default:
		return fmt.Errorf("%w: %v", errBadOpcode, in.Op)
	}

	w.pc++
	return nil
}

// uniformCond inspects register column a across active lanes, returning the
// common truth value, whether the lanes agree, and whether any lane was
// active.
func (w *warp) uniformCond(a int) (taken, uniform, any bool) {
	uniform = true
	for l := 0; l < len(w.active); l++ {
		if !w.active[l] {
			continue
		}
		v := w.regs[a+l] != 0
		if !any {
			taken = v
			any = true
		} else if v != taken {
			uniform = false
		}
	}
	return taken, uniform, any
}

// execGlobal performs a warp-wide global memory access: gathers active
// lanes' addresses, counts coalesced transactions, moves the data, and puts
// the warp to sleep for the transaction latency. The register columns are
// passed as precomputed flat bases so the legacy and decoded interpreters
// share one implementation.
func (ls *launchState) execGlobal(w *warp, op kernel.Op, dBase, aBase, sBase int) error {
	width := ls.width
	regs := w.regs
	g := ls.d.global
	gsize := g.Size()

	// Gather and range-check addresses.
	for l := 0; l < width; l++ {
		if !w.active[l] {
			w.addrs[l] = -1
			continue
		}
		addr := regs[aBase+l]
		if addr < 0 || addr >= kernel.Word(gsize) {
			return fmt.Errorf("%w: global %s lane %d addr %d (G=%d)",
				errAddrRange, op, l, addr, gsize)
		}
		w.addrs[l] = int(addr)
	}

	// Count distinct memory blocks (l transactions). Warps are small;
	// linear scan over collected blocks avoids allocation. The scratch is
	// sized from the launch width (a warp touches at most width blocks).
	bs := ls.width // block size equals warp width in the model
	blocks := ls.blockScratch
	nblocks := 0
	for l := 0; l < width; l++ {
		if w.addrs[l] < 0 {
			continue
		}
		blk := w.addrs[l] / bs
		seen := false
		for i := 0; i < nblocks; i++ {
			if blocks[i] == blk {
				seen = true
				break
			}
		}
		if !seen {
			blocks[nblocks] = blk
			nblocks++
		}
	}
	if nblocks == 0 {
		// Fully masked access: costs the issue slot only.
		w.pc++
		return nil
	}

	ls.stats.GlobalAccesses++
	ls.stats.GlobalTransactions += int64(nblocks)
	if nblocks > 1 {
		ls.stats.UncoalescedAccesses++
	}
	if ls.sites != nil {
		s := &ls.sites[w.pc]
		s.Accesses++
		s.Transactions += int64(nblocks)
		if nblocks > 1 {
			s.Uncoalesced++
		}
		if nblocks > s.MaxDegree {
			s.MaxDegree = nblocks
		}
	}
	if ls.tracer != nil {
		ls.tracer.onMem(w.blockID, w.smIdx, ls.cycle, nblocks, op == kernel.OpStGlobal)
	}

	raw := g.Raw()
	if op == kernel.OpLdGlobal {
		for l := 0; l < width; l++ {
			if w.addrs[l] >= 0 {
				regs[dBase+l] = raw[w.addrs[l]]
			}
		}
	} else {
		for l := 0; l < width; l++ {
			if w.addrs[l] >= 0 {
				raw[w.addrs[l]] = regs[sBase+l]
			}
		}
	}

	lat := int64(ls.d.cfg.GlobalLatencyCycles) +
		int64(nblocks-1)*int64(ls.d.cfg.ExtraTransactionCycles)
	w.state = wWaiting
	w.readyAt = ls.cycle + lat
	// Bandwidth: the device-wide controller serialises transactions at
	// MemServiceCycles apiece; a warp's request completes no earlier than
	// the controller drains it, so saturated DRAM backs up into warp
	// stalls that concurrency cannot hide.
	if svc := int64(ls.d.cfg.MemServiceCycles); svc > 0 {
		start := ls.memFree
		if ls.cycle > start {
			start = ls.cycle
		}
		ls.memFree = start + int64(nblocks)*svc
		if ls.memFree > w.readyAt {
			w.readyAt = ls.memFree
		}
	}
	w.pc++
	return nil
}

// execShared performs a warp-wide shared memory access with bank-conflict
// analysis and optional serialisation. Register columns arrive as
// precomputed flat bases, shared with the decoded interpreter.
func (ls *launchState) execShared(w *warp, op kernel.Op, dBase, aBase, sBase int) error {
	width := ls.width
	regs := w.regs
	sh := w.shared
	ssize := sh.Size()

	anyActive := false
	for l := 0; l < width; l++ {
		if !w.active[l] {
			w.addrs[l] = -1
			continue
		}
		anyActive = true
		addr := regs[aBase+l]
		if addr < 0 || addr >= kernel.Word(ssize) {
			return fmt.Errorf("%w: shared %s lane %d addr %d (M-alloc=%d)",
				errAddrRange, op, l, addr, ssize)
		}
		w.addrs[l] = int(addr)
	}
	if !anyActive {
		w.pc++
		return nil
	}

	degree := ls.conflictDegree(w)
	ls.stats.SharedAccesses++
	if degree > 1 {
		ls.stats.BankConflicts++
		if degree > ls.stats.MaxConflictDegree {
			ls.stats.MaxConflictDegree = degree
		}
	}
	if ls.sites != nil {
		s := &ls.sites[w.pc]
		s.Accesses++
		if degree > 1 {
			s.Conflicted++
		}
		if degree > s.MaxDegree {
			s.MaxDegree = degree
		}
	}

	raw := sh.Raw()
	if op == kernel.OpLdShared {
		for l := 0; l < width; l++ {
			if w.addrs[l] >= 0 {
				regs[dBase+l] = raw[w.addrs[l]]
			}
		}
	} else {
		for l := 0; l < width; l++ {
			if w.addrs[l] >= 0 {
				raw[w.addrs[l]] = regs[sBase+l]
			}
		}
	}

	lat := int64(ls.d.cfg.SharedLatencyCycles)
	if ls.d.cfg.SerialiseBankConflicts && degree > 1 {
		lat *= int64(degree)
	}
	w.state = wWaiting
	w.readyAt = ls.cycle + lat
	w.pc++
	return nil
}

// conflictDegree computes the serialisation factor of the gathered shared
// access in w.addrs. With BroadcastSharedReads, the common case of all
// active lanes hitting one identical word is recognised as degree 1;
// otherwise the degree is the maximum per-bank request count.
func (ls *launchState) conflictDegree(w *warp) int {
	width := ls.width
	if ls.d.cfg.BroadcastSharedReads {
		same := true
		first := -1
		for l := 0; l < width; l++ {
			if w.addrs[l] < 0 {
				continue
			}
			if first < 0 {
				first = w.addrs[l]
			} else if w.addrs[l] != first {
				same = false
				break
			}
		}
		if same {
			return 1
		}
	}
	counts := ls.bankCounts
	for i := range counts {
		counts[i] = 0
	}
	max := 0
	for l := 0; l < width; l++ {
		if w.addrs[l] < 0 {
			continue
		}
		bk := w.addrs[l] % width
		counts[bk]++
		if counts[bk] > max {
			max = counts[bk]
		}
	}
	return max
}

// alu evaluates a three-register arithmetic or comparison op.
func alu(op kernel.Op, a, b kernel.Word) kernel.Word {
	switch op {
	case kernel.OpAdd:
		return a + b
	case kernel.OpSub:
		return a - b
	case kernel.OpMul:
		return a * b
	case kernel.OpMin:
		if a < b {
			return a
		}
		return b
	case kernel.OpMax:
		if a > b {
			return a
		}
		return b
	case kernel.OpAnd:
		return a & b
	case kernel.OpOr:
		return a | b
	case kernel.OpXor:
		return a ^ b
	case kernel.OpShl:
		return a << uint(b&63)
	case kernel.OpShr:
		return a >> uint(b&63)
	case kernel.OpSlt:
		return b2w(a < b)
	case kernel.OpSle:
		return b2w(a <= b)
	case kernel.OpSeq:
		return b2w(a == b)
	case kernel.OpSne:
		return b2w(a != b)
	}
	return 0
}

// aluImm evaluates a register-immediate arithmetic or comparison op.
func aluImm(op kernel.Op, a, imm kernel.Word) kernel.Word {
	switch op {
	case kernel.OpAddI:
		return a + imm
	case kernel.OpMulI:
		return a * imm
	case kernel.OpShlI:
		return a << uint(imm&63)
	case kernel.OpShrI:
		return a >> uint(imm&63)
	case kernel.OpAndI:
		return a & imm
	case kernel.OpSltI:
		return b2w(a < imm)
	case kernel.OpSleI:
		return b2w(a <= imm)
	case kernel.OpSeqI:
		return b2w(a == imm)
	case kernel.OpSneI:
		return b2w(a != imm)
	}
	return 0
}

func b2w(b bool) kernel.Word {
	if b {
		return 1
	}
	return 0
}
