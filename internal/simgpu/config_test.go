package simgpu

import (
	"errors"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := Tiny()
	if err := good.Validate(); err != nil {
		t.Fatalf("Tiny invalid: %v", err)
	}
	if err := GTX650().Validate(); err != nil {
		t.Fatalf("GTX650 invalid: %v", err)
	}

	cases := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.WarpWidth = 0 },
		func(c *Config) { c.WarpWidth = MaxWarpWidth + 1 },
		func(c *Config) { c.SharedWords = -1 },
		func(c *Config) { c.GlobalWords = -1 },
		func(c *Config) { c.MaxBlocksPerSM = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.GlobalLatencyCycles = -1 },
		func(c *Config) { c.ExtraTransactionCycles = -1 },
		func(c *Config) { c.SharedLatencyCycles = -1 },
	}
	for i, mut := range cases {
		c := Tiny()
		mut(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: Validate() = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestOccupancy(t *testing.T) {
	c := Tiny() // M=64, H=2
	cases := []struct {
		shared int
		want   int
	}{
		{0, 2},  // no shared usage: H-limited
		{16, 2}, // 64/16 = 4, capped at H = 2
		{32, 2}, // 64/32 = 2
		{33, 1}, // 64/33 = 1
		{64, 1}, // exact fit
		{65, 0}, // does not fit
		{-1, 0}, // invalid
	}
	for _, cse := range cases {
		if got := c.Occupancy(cse.shared); got != cse.want {
			t.Errorf("Occupancy(%d) = %d, want %d", cse.shared, got, cse.want)
		}
	}
}

// Occupancy must implement ℓ = min(⌊M/m⌋, H) exactly.
func TestOccupancyFormula(t *testing.T) {
	c := GTX650()
	for m := 1; m <= c.SharedWords+10; m += 7 {
		want := c.SharedWords / m
		if want > c.MaxBlocksPerSM {
			want = c.MaxBlocksPerSM
		}
		if got := c.Occupancy(m); got != want {
			t.Fatalf("Occupancy(%d) = %d, want min(⌊M/m⌋,H) = %d", m, got, want)
		}
	}
}

func TestCyclesToSeconds(t *testing.T) {
	c := Tiny() // 1 MHz
	if got := c.CyclesToSeconds(1_000_000); got != 1.0 {
		t.Fatalf("1e6 cycles at 1MHz = %g s, want 1", got)
	}
}

func TestPerfectGPU(t *testing.T) {
	c := PerfectGPU(100)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumSMs != 100 || c.MaxBlocksPerSM != 1 {
		t.Fatalf("PerfectGPU(100) = %d SMs, H=%d", c.NumSMs, c.MaxBlocksPerSM)
	}
	if PerfectGPU(0).NumSMs != 1 {
		t.Fatal("PerfectGPU(0) should clamp to 1 SM")
	}
}
