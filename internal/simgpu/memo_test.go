package simgpu

import (
	"errors"
	"testing"

	"atgpu/internal/kernel"
)

// uniformKernel builds idx = blk·b + lane; out[base+idx] <- in[idx] + idx,
// the canonical block-uniform shape (disjoint per-block tiles, stride b).
func uniformKernel(t *testing.T, b, n int) *kernel.Program {
	t.Helper()
	kb := kernel.NewBuilder("memo-uniform", 0)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	val := kb.Reg("val")
	addr := kb.Reg("addr")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))
	kb.LdGlobal(val, idx)
	kb.Add(val, val, kernel.R(idx))
	kb.Add(addr, idx, kernel.Imm(int64(n)))
	kb.StGlobal(addr, val)
	prog, err := kb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

// alwaysUniform stands in for the analyzer's certificate in package-internal
// tests (the kernels used here are uniform by construction).
func alwaysUniform(*kernel.Program, Config, int) bool { return true }

func memoConfig(n int) Config {
	cfg := GTX650()
	cfg.GlobalWords = 2 * n
	return cfg
}

// launchPair runs the same kernel on a memoizing and a plain device and
// returns both (result, global memory) pairs for comparison.
func TestMemoMatchesFullSimulation(t *testing.T) {
	const b, blocks = 32, 512
	n := b * blocks
	prog := uniformKernel(t, b, n)

	run := func(withProver bool) (KernelResult, []kernel.Word, int64) {
		dev, err := New(memoConfig(n))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if withProver {
			dev.SetUniformProver(alwaysUniform)
		}
		raw := dev.Global().Raw()
		for i := 0; i < n; i++ {
			raw[i] = int64(i * 3)
		}
		res, err := dev.Launch(prog, blocks)
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		out := append([]kernel.Word(nil), dev.Global().Raw()...)
		return res, out, dev.MemoSkips()
	}

	full, fullMem, fullSkips := run(false)
	memo, memoMem, memoSkips := run(true)

	if fullSkips != 0 {
		t.Fatalf("prover-less device memoized %d launches", fullSkips)
	}
	if memoSkips != 1 {
		t.Fatalf("memoizing device engaged %d times, want 1", memoSkips)
	}
	if full.Stats != memo.Stats {
		t.Errorf("stats diverge:\nfull: %+v\nmemo: %+v", full.Stats, memo.Stats)
	}
	if full.Time != memo.Time {
		t.Errorf("time diverges: full %v, memo %v", full.Time, memo.Time)
	}
	for i := range fullMem {
		if fullMem[i] != memoMem[i] {
			t.Fatalf("global[%d] diverges: full %d, memo %d", i, fullMem[i], memoMem[i])
		}
	}
}

func TestMemoDisabledByTracerSitesAndLegacy(t *testing.T) {
	const b, blocks = 32, 512
	n := b * blocks
	prog := uniformKernel(t, b, n)

	cases := []struct {
		name string
		prep func(dev *Device) (trace *Tracer)
	}{
		{"tracer", func(dev *Device) *Tracer { return &Tracer{} }},
		{"sites", func(dev *Device) *Tracer { dev.SetCollectSites(true); return nil }},
		{"fault-armed", func(dev *Device) *Tracer { dev.memoDisabled = true; return nil }},
	}
	for _, tc := range cases {
		dev, err := New(memoConfig(n))
		if err != nil {
			t.Fatalf("%s: New: %v", tc.name, err)
		}
		dev.SetUniformProver(alwaysUniform)
		tr := tc.prep(dev)
		if _, err := dev.LaunchTraced(prog, blocks, tr); err != nil {
			t.Fatalf("%s: launch: %v", tc.name, err)
		}
		if got := dev.MemoSkips(); got != 0 {
			t.Errorf("%s: memoization engaged (%d), want disabled", tc.name, got)
		}
	}

	// LegacyInterp routes around the decoded path and therefore memoization.
	cfg := memoConfig(n)
	cfg.LegacyInterp = true
	dev, err := New(cfg)
	if err != nil {
		t.Fatalf("legacy: New: %v", err)
	}
	dev.SetUniformProver(alwaysUniform)
	if _, err := dev.Launch(prog, blocks); err != nil {
		t.Fatalf("legacy: launch: %v", err)
	}
	if got := dev.MemoSkips(); got != 0 {
		t.Errorf("legacy: memoization engaged (%d), want disabled", got)
	}
}

func TestMemoSmallLaunchNotEligible(t *testing.T) {
	const b = 32
	blocks := memoMinBlocks - 1
	n := b * blocks
	prog := uniformKernel(t, b, n)
	dev, err := New(memoConfig(n))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dev.SetUniformProver(alwaysUniform)
	if _, err := dev.Launch(prog, blocks); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if got := dev.MemoSkips(); got != 0 {
		t.Errorf("memoization engaged on %d blocks (min %d)", blocks, memoMinBlocks)
	}
}

// TestWideWarpGlobalAccess is the regression test for the execGlobal
// coalescing scratch: at warp widths beyond 64 the old fixed [64]int
// overflowed as soon as more than 64 distinct memory blocks were touched by
// one warp access.
func TestWideWarpGlobalAccess(t *testing.T) {
	const width = 128
	cfg := Tiny()
	cfg.WarpWidth = width
	// One word per memory block from each lane: addresses l*width are all
	// in distinct blocks, so the access needs 128 scratch slots.
	cfg.GlobalWords = width * width
	dev, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	kb := kernel.NewBuilder("wide", 0)
	j := kb.Reg("lane")
	addr := kb.Reg("addr")
	val := kb.Reg("val")
	kb.LaneID(j)
	kb.Mul(addr, j, kernel.Imm(width))
	kb.LdGlobal(val, addr)
	kb.StGlobal(addr, val)
	prog, err := kb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := dev.Launch(prog, 1)
	if err != nil {
		t.Fatalf("launch at width %d: %v", width, err)
	}
	// 128 lanes hitting 128 distinct blocks: maximally uncoalesced.
	if res.Stats.GlobalTransactions != 2*width {
		t.Errorf("GlobalTransactions = %d, want %d", res.Stats.GlobalTransactions, 2*width)
	}

	// The legacy interpreter shares the scratch fix.
	cfg.LegacyInterp = true
	ldev, err := New(cfg)
	if err != nil {
		t.Fatalf("New legacy: %v", err)
	}
	lres, err := ldev.Launch(prog, 1)
	if err != nil {
		t.Fatalf("legacy launch at width %d: %v", width, err)
	}
	if lres.Stats != res.Stats {
		t.Errorf("legacy stats diverge:\ndecoded: %+v\nlegacy:  %+v", res.Stats, lres.Stats)
	}
}

// TestMaskedImmediateDivideByZero pins satellite semantics: divi/modi with a
// zero immediate only traps when an active lane executes it, in both
// interpreters.
func TestMaskedImmediateDivideByZero(t *testing.T) {
	build := func(masked bool) *kernel.Program {
		kb := kernel.NewBuilder("divi0", 0)
		cond := kb.Reg("cond")
		v := kb.Reg("v")
		if masked {
			kb.Const(cond, 0) // all lanes false: body never executes
		} else {
			kb.Const(cond, 1)
		}
		kb.IfDo(cond, func() {
			kb.Div(v, v, kernel.Imm(0))
		})
		prog, err := kb.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return prog
	}

	for _, legacy := range []bool{false, true} {
		cfg := Tiny()
		cfg.LegacyInterp = legacy
		dev, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := dev.Launch(build(true), 1); err != nil {
			t.Errorf("legacy=%v: masked divi #0 trapped: %v", legacy, err)
		}
		if _, err := dev.Launch(build(false), 1); !errors.Is(err, ErrKernelTrap) {
			t.Errorf("legacy=%v: active divi #0 = %v, want ErrKernelTrap", legacy, err)
		}
	}
}

// TestDecodedMatchesLegacyStats is a package-internal spot check; the broad
// differential sweep lives in internal/algorithms.
func TestDecodedMatchesLegacyStats(t *testing.T) {
	const b, blocks = 32, 96
	n := b * blocks
	prog := uniformKernel(t, b, n)
	run := func(legacy bool) (KernelResult, []kernel.Word) {
		cfg := memoConfig(n)
		cfg.LegacyInterp = legacy
		dev, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		raw := dev.Global().Raw()
		for i := 0; i < n; i++ {
			raw[i] = int64(7 * i)
		}
		res, err := dev.Launch(prog, blocks)
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		return res, append([]kernel.Word(nil), dev.Global().Raw()...)
	}
	dres, dmem := run(false)
	lres, lmem := run(true)
	if dres.Stats != lres.Stats {
		t.Errorf("stats diverge:\ndecoded: %+v\nlegacy:  %+v", dres.Stats, lres.Stats)
	}
	for i := range dmem {
		if dmem[i] != lmem[i] {
			t.Fatalf("global[%d]: decoded %d, legacy %d", i, dmem[i], lmem[i])
		}
	}
}
