package simgpu

import (
	"errors"
	"testing"

	"atgpu/internal/kernel"
)

// atomOnePerLane builds a kernel where every lane issues one atomic with
// operand f(lane) at address addr(lane), then stores the returned old value
// at global[blockID*width + lane].
func atomOnePerLane(name string, shared int, body func(kb *kernel.Builder, lane, old kernel.Reg)) *kernel.Program {
	return storePerLane(name, shared, func(kb *kernel.Builder, out kernel.Reg) {
		lane := kb.Reg("l")
		kb.LaneID(lane)
		body(kb, lane, out)
	})
}

// TestAtomAddSharedContended points every lane of one warp at the same
// shared cell: lane l must observe the partial sum of lanes 0..l-1 (lane
// order), the final cell value is the full sum, and the stats must record
// one access fully serialised across the warp.
func TestAtomAddSharedContended(t *testing.T) {
	d := newTiny(t) // width 4
	prog := atomOnePerLane("atomadd-hot", 1, func(kb *kernel.Builder, lane, old kernel.Reg) {
		addr := kb.Reg("a")
		v := kb.Reg("v")
		kb.Const(addr, 0)
		kb.Add(v, lane, kernel.Imm(1)) // operand lane+1 -> sum 1+2+3+4 = 10
		kb.AtomAdd(kernel.AtomShared, old, addr, v)
		// Lane 3 republishes the final cell value to global[width].
		last := kb.Reg("last")
		kb.Seq(last, lane, kernel.Imm(3))
		kb.IfDo(last, func() {
			fin := kb.Reg("fin")
			kb.LdShared(fin, addr)
			dst := kb.Reg("dst")
			kb.Const(dst, 4)
			kb.StGlobal(dst, fin)
		})
	})
	res, err := d.Launch(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Global().ReadSlice(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Old values are the lane-order prefix sums 0, 1, 3, 6; final cell 10.
	want := []kernel.Word{0, 1, 3, 6, 10}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("word %d = %d, want %d (lane-order serialisation)", i, got[i], w)
		}
	}
	s := res.Stats
	if s.AtomicAccesses != 1 || s.AtomicSerialisations != 3 || s.MaxAtomicDegree != 4 {
		t.Errorf("stats = acc %d ser %d deg %d, want 1/3/4",
			s.AtomicAccesses, s.AtomicSerialisations, s.MaxAtomicDegree)
	}
	if s.MaxWarpAtomicSerial != 3 {
		t.Errorf("MaxWarpAtomicSerial = %d, want 3", s.MaxWarpAtomicSerial)
	}
}

// TestAtomAddSharedConflictFree sends each lane to its own bank: no
// serialisation is charged even though every lane is atomic, and the
// contended variant of the same kernel must take strictly longer.
func TestAtomAddSharedConflictFree(t *testing.T) {
	d := newTiny(t)
	free := atomOnePerLane("atomadd-free", 4, func(kb *kernel.Builder, lane, old kernel.Reg) {
		v := kb.Reg("v")
		kb.Const(v, 1)
		kb.AtomAdd(kernel.AtomShared, old, lane, v) // addr = lane -> distinct banks
	})
	resFree, err := d.Launch(free, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := resFree.Stats
	if s.AtomicAccesses != 1 || s.AtomicSerialisations != 0 || s.MaxAtomicDegree != 1 {
		t.Errorf("conflict-free stats = acc %d ser %d deg %d, want 1/0/1",
			s.AtomicAccesses, s.AtomicSerialisations, s.MaxAtomicDegree)
	}

	hot := atomOnePerLane("atomadd-hot2", 1, func(kb *kernel.Builder, lane, old kernel.Reg) {
		addr := kb.Reg("a")
		v := kb.Reg("v")
		kb.Const(addr, 0)
		kb.Const(v, 1)
		kb.AtomAdd(kernel.AtomShared, old, addr, v)
	})
	resHot, err := d.Launch(hot, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resHot.Stats.Cycles <= resFree.Stats.Cycles {
		t.Errorf("contended atomics took %d cycles, conflict-free %d; want strictly more",
			resHot.Stats.Cycles, resFree.Stats.Cycles)
	}
}

// TestAtomMaxGlobalAcrossBlocks has every thread of several blocks atommax
// its thread id into one global cell; the cell must end at the global max
// regardless of block scheduling order.
func TestAtomMaxGlobalAcrossBlocks(t *testing.T) {
	d := newTiny(t)
	prog := atomOnePerLane("atommax-global", 0, func(kb *kernel.Builder, lane, old kernel.Reg) {
		blk := kb.Reg("b")
		kb.BlockID(blk)
		tid := kb.Reg("t")
		kb.Mul(tid, blk, kernel.Imm(4))
		kb.Add(tid, tid, kernel.R(lane))
		addr := kb.Reg("a")
		kb.Const(addr, 30)
		kb.AtomMax(kernel.AtomGlobal, old, addr, tid)
	})
	res, err := d.Launch(prog, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Global().ReadSlice(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 19 { // 5 blocks * 4 lanes -> max tid 19
		t.Errorf("global max = %d, want 19", got[0])
	}
	s := res.Stats
	if s.AtomicAccesses != 5 {
		t.Errorf("AtomicAccesses = %d, want 5 (one warp-wide atomic per block)", s.AtomicAccesses)
	}
	// All four lanes of each warp hit the same address: degree 4 each.
	if s.AtomicSerialisations != 15 || s.MaxAtomicDegree != 4 {
		t.Errorf("ser %d deg %d, want 15/4", s.AtomicSerialisations, s.MaxAtomicDegree)
	}
}

// TestAtomCASGlobalElectsOneLane is the classic lock-elect: every lane CASes
// 0 -> tid+1 on one cell; exactly lane 0 of the first-served warp wins and
// every other lane reads back a non-zero old value.
func TestAtomCASGlobalElectsOneLane(t *testing.T) {
	d := newTiny(t)
	prog := atomOnePerLane("atomcas-elect", 0, func(kb *kernel.Builder, lane, old kernel.Reg) {
		addr := kb.Reg("a")
		kb.Const(addr, 20)
		v := kb.Reg("v")
		kb.Add(v, lane, kernel.Imm(1))
		// old (Rd) is freshly allocated: compare value 0.
		kb.Const(old, 0)
		kb.AtomCAS(kernel.AtomGlobal, old, addr, v)
	})
	if _, err := d.Launch(prog, 1); err != nil {
		t.Fatal(err)
	}
	got, err := d.Global().ReadSlice(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Lane 0 wins (old 0); lanes 1..3 observe the winner's value 1.
	want := []kernel.Word{0, 1, 1, 1}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("lane %d old = %d, want %d", i, got[i], w)
		}
	}
	cell, err := d.Global().ReadSlice(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cell[0] != 1 {
		t.Errorf("cell = %d, want 1 (only the electing CAS writes)", cell[0])
	}
}

// TestAtomExchInactiveLanesDoNotParticipate masks half the warp off and
// checks that inactive lanes neither count toward the serialisation degree
// nor perform their exchange.
func TestAtomExchInactiveLanesDoNotParticipate(t *testing.T) {
	d := newTiny(t)
	prog := atomOnePerLane("atomexch-mask", 1, func(kb *kernel.Builder, lane, old kernel.Reg) {
		even := kb.Reg("e")
		kb.Mod(even, lane, kernel.Imm(2))
		kb.Seq(even, even, kernel.Imm(0))
		kb.IfDo(even, func() {
			addr := kb.Reg("a")
			v := kb.Reg("v")
			kb.Const(addr, 0)
			kb.Add(v, lane, kernel.Imm(100))
			kb.AtomExch(kernel.AtomShared, old, addr, v)
		})
	})
	res, err := d.Launch(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Global().ReadSlice(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Lanes 0 and 2 exchange in lane order: lane 0 sees 0, lane 2 sees 100.
	// Odd lanes keep their zero-initialised out register.
	want := []kernel.Word{0, 0, 100, 0}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("lane %d old = %d, want %d", i, got[i], w)
		}
	}
	s := res.Stats
	if s.AtomicAccesses != 1 || s.AtomicSerialisations != 1 || s.MaxAtomicDegree != 2 {
		t.Errorf("stats = acc %d ser %d deg %d, want 1/1/2 (two active lanes)",
			s.AtomicAccesses, s.AtomicSerialisations, s.MaxAtomicDegree)
	}
}

// TestAtomicAddressFaults checks both spaces reject out-of-range addresses.
func TestAtomicAddressFaults(t *testing.T) {
	d := newTiny(t)
	shared := atomOnePerLane("atomadd-oob-shared", 1, func(kb *kernel.Builder, lane, old kernel.Reg) {
		addr := kb.Reg("a")
		kb.Const(addr, 99) // M-alloc is 1 word
		kb.AtomAdd(kernel.AtomShared, old, addr, lane)
	})
	if _, err := d.Launch(shared, 1); !errors.Is(err, errAddrRange) {
		t.Errorf("shared oob: got %v, want errAddrRange", err)
	}
	global := atomOnePerLane("atomadd-oob-global", 0, func(kb *kernel.Builder, lane, old kernel.Reg) {
		addr := kb.Reg("a")
		kb.Const(addr, -1)
		kb.AtomAdd(kernel.AtomGlobal, old, addr, lane)
	})
	if _, err := d.Launch(global, 1); !errors.Is(err, errAddrRange) {
		t.Errorf("global negative: got %v, want errAddrRange", err)
	}
}
