package simgpu

import (
	"testing"

	"atgpu/internal/kernel"
)

// BenchmarkInterpreterALU measures raw warp-instruction throughput on a
// compute-only kernel (the simulator's hot loop).
func BenchmarkInterpreterALU(b *testing.B) {
	kb := kernel.NewBuilder("alu", 0)
	r := kb.Reg()
	kb.Const(r, 1)
	for i := 0; i < 512; i++ {
		kb.Add(r, r, kernel.Imm(1))
	}
	prog := kb.MustBuild()
	cfg := GTX650()
	cfg.GlobalWords = 1 << 12
	d, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const blocks = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(prog, blocks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(prog.Len()*blocks), "warp-instrs/op")
}

// BenchmarkInterpreterMemory measures throughput on a memory-heavy kernel
// (coalesced loads with latency hiding and bandwidth accounting).
func BenchmarkInterpreterMemory(b *testing.B) {
	kb := kernel.NewBuilder("membench", 0)
	j := kb.Reg()
	addr := kb.Reg()
	v := kb.Reg()
	kb.LaneID(j)
	kb.Mov(addr, j)
	for i := 0; i < 64; i++ {
		kb.LdGlobal(v, addr)
	}
	prog := kb.MustBuild()
	cfg := GTX650()
	cfg.GlobalWords = 1 << 12
	d, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(prog, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchOverhead measures the fixed cost of an (almost) empty
// launch: validation, occupancy, scheduling scaffolding.
func BenchmarkLaunchOverhead(b *testing.B) {
	kb := kernel.NewBuilder("empty", 0)
	kb.Nop()
	prog := kb.MustBuild()
	d, err := New(Tiny())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(prog, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracedLaunch quantifies tracing overhead against the untraced
// path on the same kernel.
func BenchmarkTracedLaunch(b *testing.B) {
	kb := kernel.NewBuilder("traced", 0)
	j := kb.Reg()
	v := kb.Reg()
	kb.LaneID(j)
	kb.LdGlobal(v, j)
	prog := kb.MustBuild()

	b.Run("untraced", func(b *testing.B) {
		d, err := New(Tiny())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := d.Launch(prog, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		d, err := New(Tiny())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			tr := &Tracer{CaptureMemory: true}
			if _, err := d.LaunchTraced(prog, 8, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}
