package simgpu

import (
	"math"
	"testing"
	"time"

	"atgpu/internal/kernel"
	"atgpu/internal/mem"
	"atgpu/internal/transfer"
)

func newHostPair(t *testing.T, sync time.Duration) *Host {
	t.Helper()
	d, err := New(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(d, eng, sync)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHostValidation(t *testing.T) {
	d, err := New(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHost(nil, eng, 0); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewHost(d, nil, 0); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewHost(d, eng, -time.Second); err == nil {
		t.Error("negative sync cost accepted")
	}
}

func TestHostRoundTimeline(t *testing.T) {
	const sigma = 100 * time.Microsecond
	h := newHostPair(t, sigma)

	base, err := h.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]mem.Word, 16)
	for i := range data {
		data[i] = mem.Word(i)
	}
	if err := h.TransferIn(base, data); err != nil {
		t.Fatal(err)
	}
	if h.TransferTime() <= 0 {
		t.Fatal("inward transfer did not advance the transfer clock")
	}

	kb := kernel.NewBuilder("noop", 0)
	kb.Nop()
	if _, err := h.Launch(kb.MustBuild(), 2); err != nil {
		t.Fatal(err)
	}
	if h.KernelTime() <= 0 {
		t.Fatal("launch did not advance the kernel clock")
	}

	out, err := h.TransferOut(base, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("round-trip [%d] = %d, want %d", i, out[i], data[i])
		}
	}

	h.EndRound()
	if h.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", h.Rounds())
	}
	if h.SyncTime() != sigma {
		t.Fatalf("sync time = %v, want %v", h.SyncTime(), sigma)
	}
	if total := h.TotalTime(); total != h.KernelTime()+h.TransferTime()+h.SyncTime() {
		t.Fatalf("total %v ≠ kernel %v + transfer %v + sync %v",
			total, h.KernelTime(), h.TransferTime(), h.SyncTime())
	}
	if h.Launches() != 1 {
		t.Fatalf("launches = %d, want 1", h.Launches())
	}

	rep := h.Report()
	if rep.Total != h.TotalTime() || rep.Rounds != 1 {
		t.Fatalf("report inconsistent: %+v", rep)
	}
	if rep.Transfers.InWords != 16 || rep.Transfers.OutWords != 16 {
		t.Fatalf("transfer stats wrong: %+v", rep.Transfers)
	}
	if f := rep.TransferFraction(); f <= 0 || f >= 1 {
		t.Fatalf("transfer fraction = %g, want in (0,1)", f)
	}

	h.ResetClocks()
	if h.TotalTime() != 0 || h.Rounds() != 0 || h.Launches() != 0 {
		t.Fatal("ResetClocks left residue")
	}
	if h.TransferStats().InWords != 0 {
		t.Fatal("ResetClocks should reset engine stats")
	}
}

func TestHostChunkedTransfer(t *testing.T) {
	h := newHostPair(t, 0)
	base, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]mem.Word, 64)
	for i := range data {
		data[i] = mem.Word(i * i)
	}
	if err := h.TransferInChunked(base, data, 16); err != nil {
		t.Fatal(err)
	}
	if got := h.TransferStats().InTransactions; got != 4 {
		t.Fatalf("chunked transfer transactions = %d, want 4", got)
	}
	out, err := h.TransferOut(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("chunked round-trip [%d] = %d, want %d", i, out[i], data[i])
		}
	}
}

func TestHostChunkedCostsMoreAlpha(t *testing.T) {
	// Same words, more transactions → more time (α per transaction).
	h1 := newHostPair(t, 0)
	h2 := newHostPair(t, 0)
	data := make([]mem.Word, 256)
	b1, err := h1.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := h2.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.TransferIn(b1, data); err != nil {
		t.Fatal(err)
	}
	if err := h2.TransferInChunked(b2, data, 16); err != nil {
		t.Fatal(err)
	}
	if h2.TransferTime() <= h1.TransferTime() {
		t.Fatalf("chunked (%v) should cost more than single (%v)",
			h2.TransferTime(), h1.TransferTime())
	}
}

func TestHostMallocRespectsG(t *testing.T) {
	h := newHostPair(t, 0) // G = 4096
	if _, err := h.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Malloc(1); err == nil {
		t.Fatal("allocation beyond G accepted")
	}
}

// newTestEngine builds a pinned-scheme engine for host tests.
func newTestEngine() (*transfer.Engine, error) {
	return transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
}

// TestHostChunkedValidation: non-positive chunks surface the engine's
// error and charge nothing.
func TestHostChunkedValidation(t *testing.T) {
	h := newHostPair(t, 0)
	base, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]mem.Word, 64)
	for _, chunk := range []int{0, -5} {
		if err := h.TransferInChunked(base, data, chunk); err == nil {
			t.Errorf("chunk=%d accepted", chunk)
		}
	}
	if h.TransferTime() != 0 || h.TotalTime() != 0 {
		t.Fatal("rejected chunked transfer charged time")
	}
}

// TestHostChunkedPartialFinalChunk: 64 words in chunks of 24 end with a
// 16-word transaction.
func TestHostChunkedPartialFinalChunk(t *testing.T) {
	h := newHostPair(t, 0)
	base, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]mem.Word, 64)
	for i := range data {
		data[i] = mem.Word(i + 11)
	}
	if err := h.TransferInChunked(base, data, 24); err != nil {
		t.Fatal(err)
	}
	if got := h.TransferStats().InTransactions; got != 3 {
		t.Fatalf("transactions = %d, want 3 (24+24+16)", got)
	}
	out, err := h.TransferOut(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("word %d = %d, want %d", i, out[i], data[i])
		}
	}
}

// TestHostChunkedChunkBeyondLen: a chunk larger than the data is one
// plain transaction.
func TestHostChunkedChunkBeyondLen(t *testing.T) {
	h := newHostPair(t, 0)
	base, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.TransferInChunked(base, make([]mem.Word, 40), 4096); err != nil {
		t.Fatal(err)
	}
	if got := h.TransferStats().InTransactions; got != 1 {
		t.Fatalf("transactions = %d, want 1", got)
	}
}

// TestRunReportTransferFractionDegenerate pins the guard satellite on
// the simulated side: degenerate reports yield 0, never NaN/±Inf.
func TestRunReportTransferFractionDegenerate(t *testing.T) {
	cases := []struct {
		name string
		rep  RunReport
		want float64
	}{
		{"zero", RunReport{}, 0},
		{"negative total", RunReport{Total: -time.Second, Transfer: time.Second}, 0},
		{"transfer only", RunReport{Total: time.Second, Transfer: time.Second}, 1},
		{"half", RunReport{Total: 2 * time.Second, Transfer: time.Second}, 0.5},
	}
	for _, tc := range cases {
		got := tc.rep.TransferFraction()
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: non-finite fraction %g", tc.name, got)
		}
		if got != tc.want {
			t.Errorf("%s: fraction = %g, want %g", tc.name, got, tc.want)
		}
	}
	// OverlapSaved on a degenerate report stays well-defined too.
	if s := (RunReport{}).OverlapSaved(); s != 0 {
		t.Errorf("zero report overlap = %v", s)
	}
}
