package simgpu

import (
	"errors"
	"testing"

	"atgpu/internal/kernel"
)

// newTiny builds a Tiny device or fails the test.
func newTiny(t *testing.T) *Device {
	t.Helper()
	d, err := New(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// storePerLane builds a kernel computing f into r and storing it at
// global[blockID*width + lane], so tests can read one word per thread.
func storePerLane(name string, shared int, body func(b *kernel.Builder, out kernel.Reg)) *kernel.Program {
	kb := kernel.NewBuilder(name, shared)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	addr := kb.Reg("addr")
	out := kb.Reg("out")
	kb.LaneID(j)
	kb.BlockID(blk)
	wdim := kb.Reg("wdim")
	kb.BlockDim(wdim)
	kb.Mul(addr, blk, kernel.R(wdim))
	kb.Add(addr, addr, kernel.R(j))
	body(kb, out)
	kb.StGlobal(addr, out)
	return kb.MustBuild()
}

// runAndRead launches prog and returns the first n global words.
func runAndRead(t *testing.T, d *Device, prog *kernel.Program, blocks, n int) []kernel.Word {
	t.Helper()
	if _, err := d.Launch(prog, blocks); err != nil {
		t.Fatalf("launch %s: %v", prog.Name, err)
	}
	out, err := d.Global().ReadSlice(0, n)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLaunchGeometryOps(t *testing.T) {
	d := newTiny(t) // width 4
	prog := storePerLane("geom", 0, func(kb *kernel.Builder, out kernel.Reg) {
		// out = blockID*1000 + lane*10 + numBlocks
		b := kb.Reg()
		kb.BlockID(b)
		kb.Mul(out, b, kernel.Imm(1000))
		l := kb.Reg()
		kb.LaneID(l)
		kb.Mul(l, l, kernel.Imm(10))
		kb.Add(out, out, kernel.R(l))
		nb := kb.Reg()
		kb.NumBlocks(nb)
		kb.Add(out, out, kernel.R(nb))
	})
	got := runAndRead(t, d, prog, 3, 12)
	for blk := 0; blk < 3; blk++ {
		for lane := 0; lane < 4; lane++ {
			want := kernel.Word(blk*1000 + lane*10 + 3)
			if got[blk*4+lane] != want {
				t.Fatalf("block %d lane %d = %d, want %d", blk, lane, got[blk*4+lane], want)
			}
		}
	}
}

func TestArithmeticOps(t *testing.T) {
	// Each case computes f(a, b) per lane with a = lane+5, b = 3.
	cases := []struct {
		name string
		emit func(kb *kernel.Builder, out, a, b kernel.Reg)
		want func(a, b kernel.Word) kernel.Word
	}{
		{"add", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Add(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a + b }},
		{"sub", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Sub(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a - b }},
		{"mul", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Mul(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a * b }},
		{"div", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Div(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a / b }},
		{"mod", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Mod(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a % b }},
		{"min", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Min(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word {
				if a < b {
					return a
				}
				return b
			}},
		{"max", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Max(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word {
				if a > b {
					return a
				}
				return b
			}},
		{"and", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.And(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a & b }},
		{"or", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Or(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a | b }},
		{"xor", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Xor(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a ^ b }},
		{"shl", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Shl(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a << uint(b) }},
		{"shr", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Shr(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word { return a >> uint(b) }},
		{"slt", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Slt(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word {
				if a < b {
					return 1
				}
				return 0
			}},
		{"sle", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Sle(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word {
				if a <= b {
					return 1
				}
				return 0
			}},
		{"seq", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Seq(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word {
				if a == b {
					return 1
				}
				return 0
			}},
		{"sne", func(kb *kernel.Builder, out, a, b kernel.Reg) { kb.Sne(out, a, kernel.R(b)) },
			func(a, b kernel.Word) kernel.Word {
				if a != b {
					return 1
				}
				return 0
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := newTiny(t)
			prog := storePerLane(c.name, 0, func(kb *kernel.Builder, out kernel.Reg) {
				a := kb.Reg()
				b := kb.Reg()
				kb.LaneID(a)
				kb.Add(a, a, kernel.Imm(5)) // a = lane+5, so -3 < a-b range varies
				kb.Const(b, 3)
				c.emit(kb, out, a, b)
			})
			got := runAndRead(t, d, prog, 1, 4)
			for lane := 0; lane < 4; lane++ {
				a, b := kernel.Word(lane+5), kernel.Word(3)
				if want := c.want(a, b); got[lane] != want {
					t.Fatalf("lane %d: %s(%d,%d) = %d, want %d", lane, c.name, a, b, got[lane], want)
				}
			}
		})
	}
}

func TestImmediateOps(t *testing.T) {
	d := newTiny(t)
	prog := storePerLane("imm", 0, func(kb *kernel.Builder, out kernel.Reg) {
		kb.LaneID(out)
		kb.Add(out, out, kernel.Imm(10))  // lane+10
		kb.Mul(out, out, kernel.Imm(3))   // 3(lane+10)
		kb.Div(out, out, kernel.Imm(2))   // 3(lane+10)/2
		kb.Mod(out, out, kernel.Imm(7))   // mod 7
		kb.Shl(out, out, kernel.Imm(2))   // ×4
		kb.Shr(out, out, kernel.Imm(1))   // ÷2
		kb.And(out, out, kernel.Imm(255)) // mask
	})
	got := runAndRead(t, d, prog, 1, 4)
	for lane := 0; lane < 4; lane++ {
		v := kernel.Word(lane + 10)
		v = v * 3 / 2 % 7 << 2 >> 1 & 255
		if got[lane] != v {
			t.Fatalf("lane %d = %d, want %d", lane, got[lane], v)
		}
	}
}

func TestDivergentIf(t *testing.T) {
	d := newTiny(t)
	// Lanes 0,1 take the if; lanes 2,3 keep the fall-through value.
	prog := storePerLane("div", 0, func(kb *kernel.Builder, out kernel.Reg) {
		kb.Const(out, 100)
		l := kb.Reg()
		kb.LaneID(l)
		cond := kb.Reg()
		kb.Slt(cond, l, kernel.Imm(2))
		kb.IfDo(cond, func() {
			kb.Const(out, 200)
		})
	})
	res, err := d.Launch(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.Global().ReadSlice(0, 4)
	want := []kernel.Word{200, 200, 100, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d = %d, want %d", i, got[i], want[i])
		}
	}
	if res.Stats.DivergentBranches != 1 {
		t.Errorf("DivergentBranches = %d, want 1", res.Stats.DivergentBranches)
	}
}

func TestIfAllFalseSkips(t *testing.T) {
	d := newTiny(t)
	prog := storePerLane("skip", 0, func(kb *kernel.Builder, out kernel.Reg) {
		kb.Const(out, 1)
		c := kb.Reg()
		kb.Const(c, 0)
		kb.IfDo(c, func() {
			kb.Const(out, 2)
		})
	})
	res, err := d.Launch(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.Global().ReadSlice(0, 4)
	for i := range got {
		if got[i] != 1 {
			t.Fatalf("lane %d = %d, want 1 (body skipped)", i, got[i])
		}
	}
	if res.Stats.DivergentBranches != 0 {
		t.Errorf("uniformly false if counted as divergent: %d", res.Stats.DivergentBranches)
	}
}

func TestIfAllTrueNotDivergent(t *testing.T) {
	d := newTiny(t)
	prog := storePerLane("alltrue", 0, func(kb *kernel.Builder, out kernel.Reg) {
		c := kb.Reg()
		kb.Const(c, 1)
		kb.IfDo(c, func() {
			kb.Const(out, 7)
		})
	})
	res, err := d.Launch(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DivergentBranches != 0 {
		t.Errorf("uniformly true if counted as divergent: %d", res.Stats.DivergentBranches)
	}
	got, _ := d.Global().ReadSlice(0, 4)
	for i := range got {
		if got[i] != 7 {
			t.Fatalf("lane %d = %d, want 7", i, got[i])
		}
	}
}

func TestNestedDivergence(t *testing.T) {
	d := newTiny(t)
	// Outer if: lanes 1..3; inner if: lanes 2..3; innermost write.
	prog := storePerLane("nest", 0, func(kb *kernel.Builder, out kernel.Reg) {
		l := kb.Reg()
		kb.LaneID(l)
		kb.Const(out, 0)
		c1 := kb.Reg()
		kb.Slt(c1, kernel.Reg(l), kernel.Imm(99)) // placeholder to reuse pattern
		kb.Seq(c1, l, kernel.Imm(0))
		kb.Sne(c1, c1, kernel.Imm(1)) // c1 = lane != 0
		kb.IfDo(c1, func() {
			kb.Add(out, out, kernel.Imm(1))
			c2 := kb.Reg()
			kb.Slt(c2, l, kernel.Imm(2))
			kb.Sne(c2, c2, kernel.Imm(1)) // c2 = lane >= 2
			kb.IfDo(c2, func() {
				kb.Add(out, out, kernel.Imm(10))
			})
		})
	})
	got := runAndRead(t, d, prog, 1, 4)
	want := []kernel.Word{0, 1, 11, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUniformLoop(t *testing.T) {
	d := newTiny(t)
	prog := storePerLane("loop", 0, func(kb *kernel.Builder, out kernel.Reg) {
		kb.Const(out, 0)
		kb.ForDo(kernel.Imm(0), kernel.Imm(5), 1, func(i kernel.Reg) {
			kb.Add(out, out, kernel.R(i))
		})
	})
	got := runAndRead(t, d, prog, 1, 4)
	for lane := 0; lane < 4; lane++ {
		if got[lane] != 10 {
			t.Fatalf("lane %d = %d, want 10 (0+1+2+3+4)", lane, got[lane])
		}
	}
}

func TestDivergentLoopTraps(t *testing.T) {
	d := newTiny(t)
	// Loop bound depends on lane → non-uniform back-edge must trap.
	kb := kernel.NewBuilder("divloop", 0)
	l := kb.Reg()
	kb.LaneID(l)
	i := kb.Reg()
	kb.For(i, kernel.Imm(0), kernel.R(l), 1)
	kb.Nop()
	kb.EndFor()
	prog := kb.MustBuild()
	_, err := d.Launch(prog, 1)
	if !errors.Is(err, ErrDivergentLoop) {
		t.Fatalf("Launch = %v, want ErrDivergentLoop", err)
	}
}

func TestKernelTraps(t *testing.T) {
	cases := []struct {
		name string
		emit func(kb *kernel.Builder)
	}{
		{"div by zero", func(kb *kernel.Builder) {
			a := kb.Reg()
			z := kb.Reg()
			kb.Const(a, 1)
			kb.Const(z, 0)
			kb.Div(a, a, kernel.R(z))
		}},
		{"divi by zero", func(kb *kernel.Builder) {
			a := kb.Reg()
			kb.Const(a, 1)
			kb.Div(a, a, kernel.Imm(0))
		}},
		{"global oob", func(kb *kernel.Builder) {
			a := kb.Reg()
			v := kb.Reg()
			kb.Const(a, 1<<40)
			kb.LdGlobal(v, a)
		}},
		{"global negative", func(kb *kernel.Builder) {
			a := kb.Reg()
			v := kb.Reg()
			kb.Const(a, -1)
			kb.LdGlobal(v, a)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := newTiny(t)
			kb := kernel.NewBuilder("trap", 0)
			c.emit(kb)
			if _, err := d.Launch(kb.MustBuild(), 1); !errors.Is(err, ErrKernelTrap) {
				t.Fatalf("Launch = %v, want ErrKernelTrap", err)
			}
		})
	}
}

func TestSharedOutOfRangeTraps(t *testing.T) {
	d := newTiny(t)
	kb := kernel.NewBuilder("shtrap", 8)
	a := kb.Reg()
	v := kb.Reg()
	kb.Const(a, 8) // shared allocation is 8 words: index 8 is out of range
	kb.LdShared(v, a)
	if _, err := d.Launch(kb.MustBuild(), 1); !errors.Is(err, ErrKernelTrap) {
		t.Fatalf("Launch = %v, want ErrKernelTrap", err)
	}
}

func TestSharedExceedsM(t *testing.T) {
	d := newTiny(t) // M = 64
	kb := kernel.NewBuilder("big", 65)
	kb.Nop()
	if _, err := d.Launch(kb.MustBuild(), 1); !errors.Is(err, ErrSharedExceeded) {
		t.Fatalf("Launch = %v, want ErrSharedExceeded", err)
	}
}

func TestLaunchValidation(t *testing.T) {
	d := newTiny(t)
	kb := kernel.NewBuilder("ok", 0)
	kb.Nop()
	prog := kb.MustBuild()
	if _, err := d.Launch(prog, -1); err == nil {
		t.Fatal("negative block count accepted")
	}
	res, err := d.Launch(prog, 0)
	if err != nil {
		t.Fatalf("zero blocks should be a no-op: %v", err)
	}
	if res.Stats.BlocksExecuted != 0 || res.Time != 0 {
		t.Fatalf("zero-block launch did work: %+v", res)
	}
	bad := &kernel.Program{Name: "bad"}
	if _, err := d.Launch(bad, 1); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestSharedMemoryIsPerBlock(t *testing.T) {
	d := newTiny(t)
	// Each block writes blockID into shared[lane] then reads it back;
	// with per-block shared memory no cross-talk is possible.
	prog := storePerLane("pvt", 4, func(kb *kernel.Builder, out kernel.Reg) {
		j := kb.Reg()
		blk := kb.Reg()
		kb.LaneID(j)
		kb.BlockID(blk)
		kb.StShared(j, blk)
		kb.Barrier()
		kb.LdShared(out, j)
	})
	got := runAndRead(t, d, prog, 4, 16)
	for blk := 0; blk < 4; blk++ {
		for lane := 0; lane < 4; lane++ {
			if got[blk*4+lane] != kernel.Word(blk) {
				t.Fatalf("block %d lane %d read %d from shared, want %d",
					blk, lane, got[blk*4+lane], blk)
			}
		}
	}
}

func TestSharedZeroedPerBlock(t *testing.T) {
	d := newTiny(t)
	// More blocks than can be resident, so warp objects are recycled;
	// shared memory must still read as zero for every fresh block.
	prog := storePerLane("zeroed", 4, func(kb *kernel.Builder, out kernel.Reg) {
		j := kb.Reg()
		kb.LaneID(j)
		kb.LdShared(out, j) // must be 0
		one := kb.Reg()
		kb.Const(one, 99)
		kb.StShared(j, one) // dirty it for the next occupant, if any
	})
	got := runAndRead(t, d, prog, 16, 64)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("thread %d saw dirty shared memory: %d", i, v)
		}
	}
}

func TestDeviceReset(t *testing.T) {
	d := newTiny(t)
	if _, err := d.Arena().Alloc(10); err != nil {
		t.Fatal(err)
	}
	if err := d.Global().Store(5, 42); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	if d.Arena().Used() != 0 {
		t.Error("Reset should clear the arena")
	}
	if v, _ := d.Global().Load(5); v != 0 {
		t.Error("Reset should clear global memory")
	}
}
