// Package simgpu is a cycle-approximate simulator of a CUDA-like GPU, the
// substrate standing in for the paper's GTX 650 testbed. It executes
// kernel.Program launches over mem.Global/mem.Shared memories with:
//
//   - lockstep warps of b lanes (the model's cores Cᵢ of a multiprocessor),
//   - SIMT divergence for the single-block if construct ("If execution
//     paths diverge, all paths are executed"),
//   - coalescing: a warp's global access costs l transactions for l
//     distinct memory blocks,
//   - shared-memory bank conflicts (optionally serialised),
//   - latency hiding: while a warp waits on memory, other resident warps
//     issue ("the wait time is hidden by operations of other warps"),
//   - occupancy: each SM holds ℓ = min(⌊M/m⌋, H) blocks concurrently.
//
// The Host type adds the simulated timeline around kernels: inward
// transfer, launch, outward transfer, synchronisation — the round
// structure of the ATGPU model — so experiments can observe both "kernel
// time" and "total time" exactly as the paper's Figures 3b/4b/5b do.
package simgpu

import (
	"errors"
	"fmt"
)

// Config describes the simulated device.
type Config struct {
	// Name labels the preset in reports.
	Name string

	// NumSMs is k', the number of streaming multiprocessors.
	NumSMs int
	// WarpWidth is b: cores per multiprocessor, lanes per warp, words per
	// global memory block, and shared memory banks.
	WarpWidth int
	// SharedWords is M, the shared memory per multiprocessor in words.
	SharedWords int
	// GlobalWords is G, the global memory size in words — the capacity
	// constraint ATGPU adds over prior models.
	GlobalWords int
	// MaxBlocksPerSM is H, the hardware limit on concurrently resident
	// thread blocks per multiprocessor.
	MaxBlocksPerSM int

	// ClockHz converts cycles to seconds; it instantiates the model's
	// operation rate γ for this device.
	ClockHz float64
	// GlobalLatencyCycles is λ: cycles for a global-memory transaction.
	// The paper cites 400–800 cycles on real parts.
	GlobalLatencyCycles int
	// ExtraTransactionCycles is the additional serialisation charged per
	// transaction beyond the first of an uncoalesced warp access.
	ExtraTransactionCycles int
	// SharedLatencyCycles is the cost of a conflict-free shared access;
	// the paper cites ~4 cycles.
	SharedLatencyCycles int
	// MemServiceCycles is the device-wide DRAM service time per block
	// transaction: the memory controller completes at most one
	// transaction every MemServiceCycles cycles, so uncoalesced access
	// patterns saturate bandwidth rather than hiding behind concurrency.
	// 0 disables bandwidth modelling (infinite DRAM throughput).
	MemServiceCycles int
	// SerialiseBankConflicts enables charging (degree-1) extra shared
	// latencies on bank conflicts. The ATGPU model assumes conflict-free
	// kernels; the device can still enforce the cost for ablations.
	SerialiseBankConflicts bool
	// BroadcastSharedReads enables the hardware same-word broadcast when
	// computing conflict degree.
	BroadcastSharedReads bool
	// DisableEventSkip forces the scheduler to step the clock one cycle
	// at a time when no warp can issue, instead of jumping to the next
	// memory-completion event. Results are identical; simulation is much
	// slower. Exists for the clock-skip ablation bench.
	DisableEventSkip bool
	// LegacyInterp routes launches through the original tree-walking
	// switch interpreter instead of the decoded-IR fast path (which also
	// disables block memoization, since the memo replayer is built on the
	// decoded form). Results are identical; simulation is slower. Exists
	// as the reference arm of the interpreter differential tests and the
	// simspeed ablation bench.
	LegacyInterp bool
}

// MaxWarpWidth is the largest warp width Config.Validate accepts. The
// simulator itself only needs per-lane vectors, which scale to any width;
// the cap bounds per-warp memory and keeps launch parameters sane. Note
// that package analyze tracks lane sets in 64-bit masks, so static
// analysis (and hence lint gating and the BlockUniform memoization
// certificate) is only available for widths up to 64.
const MaxWarpWidth = 1024

// Errors from configuration validation.
var (
	ErrBadConfig = errors.New("simgpu: invalid config")
)

// Validate checks the configuration for usability.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("%w: NumSMs=%d", ErrBadConfig, c.NumSMs)
	case c.WarpWidth <= 0 || c.WarpWidth > MaxWarpWidth:
		return fmt.Errorf("%w: WarpWidth=%d (want 1..%d)", ErrBadConfig, c.WarpWidth, MaxWarpWidth)
	case c.SharedWords < 0:
		return fmt.Errorf("%w: SharedWords=%d", ErrBadConfig, c.SharedWords)
	case c.GlobalWords < 0:
		return fmt.Errorf("%w: GlobalWords=%d", ErrBadConfig, c.GlobalWords)
	case c.MaxBlocksPerSM <= 0:
		return fmt.Errorf("%w: MaxBlocksPerSM=%d", ErrBadConfig, c.MaxBlocksPerSM)
	case c.ClockHz <= 0:
		return fmt.Errorf("%w: ClockHz=%g", ErrBadConfig, c.ClockHz)
	case c.GlobalLatencyCycles < 0:
		return fmt.Errorf("%w: GlobalLatencyCycles=%d", ErrBadConfig, c.GlobalLatencyCycles)
	case c.ExtraTransactionCycles < 0:
		return fmt.Errorf("%w: ExtraTransactionCycles=%d", ErrBadConfig, c.ExtraTransactionCycles)
	case c.SharedLatencyCycles < 0:
		return fmt.Errorf("%w: SharedLatencyCycles=%d", ErrBadConfig, c.SharedLatencyCycles)
	case c.MemServiceCycles < 0:
		return fmt.Errorf("%w: MemServiceCycles=%d", ErrBadConfig, c.MemServiceCycles)
	}
	return nil
}

// Occupancy returns ℓ = min(⌊M/m⌋, H) for a block using m shared words.
// A block that uses no shared memory is limited only by H. A block whose m
// exceeds M cannot run at all and yields 0.
func (c Config) Occupancy(sharedWordsPerBlock int) int {
	if sharedWordsPerBlock < 0 {
		return 0
	}
	if sharedWordsPerBlock == 0 {
		return c.MaxBlocksPerSM
	}
	byShared := c.SharedWords / sharedWordsPerBlock
	if byShared > c.MaxBlocksPerSM {
		return c.MaxBlocksPerSM
	}
	return byShared
}

// CyclesToSeconds converts a cycle count to seconds at the device clock.
func (c Config) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / c.ClockHz
}

// GTX650 approximates the paper's test GPU at the granularity the model
// cares about: 2 SMs, 32-lane warps, 48 KiB shared memory per SM
// (6144 8-byte words), ~1 GHz clock, 400-cycle global latency, 4-cycle
// shared latency, up to 16 resident blocks per SM. Global memory defaults
// to 2^27 words (1 GiB of 8-byte words); large-input experiments may reduce
// n or raise G explicitly.
func GTX650() Config {
	return Config{
		Name:                   "sim-gtx650",
		NumSMs:                 2,
		WarpWidth:              32,
		SharedWords:            6144,
		GlobalWords:            1 << 27,
		MaxBlocksPerSM:         16,
		ClockHz:                1.058e9,
		GlobalLatencyCycles:    400,
		ExtraTransactionCycles: 100,
		SharedLatencyCycles:    4,
		// GDDR5 at ~80 GB/s against a ~1 GHz core clock moves a 32-word
		// (256-byte) block in roughly 3 cycles.
		MemServiceCycles:       3,
		SerialiseBankConflicts: true,
		BroadcastSharedReads:   true,
	}
}

// GTX1080 approximates a Pascal-class part: 20 SMs, ~1.6 GHz, higher
// memory bandwidth (320 GB/s ≈ a 256-byte block per cycle), deeper
// residency. Used by the cross-device verification experiment the paper's
// future work calls for ("verify the model using other GPUs").
func GTX1080() Config {
	return Config{
		Name:                   "sim-gtx1080",
		NumSMs:                 20,
		WarpWidth:              32,
		SharedWords:            12288, // 96 KiB of 8-byte words
		GlobalWords:            1 << 27,
		MaxBlocksPerSM:         32,
		ClockHz:                1.607e9,
		GlobalLatencyCycles:    350,
		ExtraTransactionCycles: 80,
		SharedLatencyCycles:    4,
		MemServiceCycles:       1,
		SerialiseBankConflicts: true,
		BroadcastSharedReads:   true,
	}
}

// TeslaK40 approximates a Kepler-class compute part: 15 SMs, ~745 MHz,
// 288 GB/s memory.
func TeslaK40() Config {
	return Config{
		Name:                   "sim-k40",
		NumSMs:                 15,
		WarpWidth:              32,
		SharedWords:            6144,
		GlobalWords:            1 << 27,
		MaxBlocksPerSM:         16,
		ClockHz:                0.745e9,
		GlobalLatencyCycles:    450,
		ExtraTransactionCycles: 110,
		SharedLatencyCycles:    5,
		MemServiceCycles:       1,
		SerialiseBankConflicts: true,
		BroadcastSharedReads:   true,
	}
}

// Presets returns the named device presets available to experiments.
func Presets() []Config {
	return []Config{GTX650(), GTX1080(), TeslaK40()}
}

// Tiny returns a small device handy for unit tests: 2 SMs, 4-lane warps,
// 64-word shared memory, 4096-word global memory, H=2.
func Tiny() Config {
	return Config{
		Name:                   "sim-tiny",
		NumSMs:                 2,
		WarpWidth:              4,
		SharedWords:            64,
		GlobalWords:            4096,
		MaxBlocksPerSM:         2,
		ClockHz:                1e6,
		GlobalLatencyCycles:    20,
		ExtraTransactionCycles: 5,
		SharedLatencyCycles:    2,
		MemServiceCycles:       2,
		SerialiseBankConflicts: true,
		BroadcastSharedReads:   true,
	}
}

// PerfectGPU returns a configuration approximating the paper's "perfect
// GPU": enough multiprocessors and residency that every thread block of a
// launch runs concurrently (bounded by the given blocks). Global latency
// and clock match GTX650 so only parallelism differs; used by the
// occupancy ablation.
func PerfectGPU(blocks int) Config {
	c := GTX650()
	c.Name = "sim-perfect"
	if blocks < 1 {
		blocks = 1
	}
	c.NumSMs = blocks
	c.MaxBlocksPerSM = 1
	return c
}
