package simgpu

import (
	"encoding/json"
	"strings"
	"testing"

	"atgpu/internal/kernel"
)

func traceKernel() *kernel.Program {
	kb := kernel.NewBuilder("traceme", 0)
	j := kb.Reg()
	v := kb.Reg()
	kb.LaneID(j)
	kb.LdGlobal(v, j)
	kb.StGlobal(j, v)
	return kb.MustBuild()
}

func TestLaunchTracedRecordsBlocks(t *testing.T) {
	d := newTiny(t)
	tr := &Tracer{CaptureMemory: true}
	res, err := d.LaunchTraced(traceKernel(), 5, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks()) != 5 {
		t.Fatalf("traced %d blocks, want 5", len(tr.Blocks()))
	}
	for _, b := range tr.Blocks() {
		if b.Retired < b.Scheduled {
			t.Fatalf("block %d retired %d before scheduled %d", b.Block, b.Retired, b.Scheduled)
		}
		if b.Instrs != int64(traceKernel().Len()) {
			t.Fatalf("block %d instrs = %d, want %d", b.Block, b.Instrs, traceKernel().Len())
		}
		if b.SM < 0 || b.SM >= 2 {
			t.Fatalf("block %d on SM %d", b.Block, b.SM)
		}
	}
	// 2 global accesses per block.
	if got := len(tr.MemEvents()); got != 10 {
		t.Fatalf("traced %d memory events, want 10", got)
	}
	if tr.Truncated {
		t.Fatal("unexpected truncation")
	}
	// Tracing must not change results.
	d2 := newTiny(t)
	res2, err := d2.Launch(traceKernel(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != res2.Stats {
		t.Fatalf("tracing changed stats:\n%+v\nvs\n%+v", res.Stats, res2.Stats)
	}
}

func TestTracerMemoryOffByDefault(t *testing.T) {
	d := newTiny(t)
	tr := &Tracer{}
	if _, err := d.LaunchTraced(traceKernel(), 3, tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.MemEvents()) != 0 {
		t.Fatalf("memory events recorded without CaptureMemory: %d", len(tr.MemEvents()))
	}
}

func TestTracerTruncation(t *testing.T) {
	d := newTiny(t)
	tr := &Tracer{MaxEvents: 3}
	if _, err := d.LaunchTraced(traceKernel(), 10, tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks()) != 3 {
		t.Fatalf("cap ignored: %d blocks", len(tr.Blocks()))
	}
	if !tr.Truncated {
		t.Fatal("Truncated not set")
	}
}

func TestChromeTraceExport(t *testing.T) {
	d := newTiny(t)
	tr := &Tracer{CaptureMemory: true}
	if _, err := d.LaunchTraced(traceKernel(), 4, tr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4+8 {
		t.Fatalf("exported %d events, want 12 (4 spans + 8 instants)", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["X"] != 4 || phases["i"] != 8 {
		t.Fatalf("phases = %v", phases)
	}
}

func TestOccupancyTimeline(t *testing.T) {
	d := newTiny(t)
	tr := &Tracer{}
	if _, err := d.LaunchTraced(traceKernel(), 8, tr); err != nil {
		t.Fatal(err)
	}
	out := tr.OccupancyTimeline(20)
	if !strings.Contains(out, "SM0") || !strings.Contains(out, "SM1") {
		t.Fatalf("timeline missing SMs:\n%s", out)
	}
	if !strings.Contains(out, "cycles") {
		t.Fatalf("timeline missing axis:\n%s", out)
	}
	if (&Tracer{}).OccupancyTimeline(10) != "(empty trace)\n" {
		t.Fatal("empty tracer timeline wrong")
	}
}

func TestTracerSummary(t *testing.T) {
	d := newTiny(t)
	tr := &Tracer{}
	if _, err := d.LaunchTraced(traceKernel(), 6, tr); err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	for _, want := range []string{"6 blocks", "mean residency", "SM0", "SM1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	if (&Tracer{}).Summary() != "trace: empty" {
		t.Fatal("empty tracer summary wrong")
	}
}

func TestHostSetTracer(t *testing.T) {
	d := newTiny(t)
	eng, err := newTestEngine()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(d, eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Tracer{}
	h.SetTracer(tr)
	if _, err := h.Launch(traceKernel(), 4); err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks()) != 4 {
		t.Fatalf("host-attached tracer saw %d blocks, want 4", len(tr.Blocks()))
	}
	// Detach: subsequent launches must not grow the trace.
	h.SetTracer(nil)
	if _, err := h.Launch(traceKernel(), 4); err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks()) != 4 {
		t.Fatalf("detached tracer still recording: %d blocks", len(tr.Blocks()))
	}
}
