package simgpu

import (
	"fmt"

	"atgpu/internal/kernel"
)

// This file implements the atomic read-modify-write instructions for both
// interpreters (the legacy switch and the decoded fast path both delegate
// here with precomputed register-column bases). Conflicting lanes serialise
// in ascending lane order — per shared-memory bank for shared atomics, per
// address for global atomics — making results deterministic and the
// serialisation cost observable on the timeline. All functions are on the
// hot path: no append/make (enforced by the atgpu-vet hotalloc pass).

// atomRMW applies one lane's read-modify-write: given the old cell value,
// the lane operand v and (for CAS) the lane's incoming Rd value cmp, it
// returns the new cell value.
func atomRMW(op kernel.Op, old, v, cmp kernel.Word) kernel.Word {
	switch op {
	case kernel.OpAtomAdd:
		return old + v
	case kernel.OpAtomMax:
		if v > old {
			return v
		}
		return old
	case kernel.OpAtomExch:
		return v
	default: // OpAtomCAS
		if old == cmp {
			return v
		}
		return old
	}
}

// execAtomShared performs a warp-wide shared-memory atomic. The
// serialisation degree is the maximum per-bank request count — atomics get
// no broadcast exemption: even lanes hitting the same word must replay the
// bank sequentially — and the access always costs degree shared latencies.
// Advances pc itself on every path.
func (ls *launchState) execAtomShared(w *warp, op kernel.Op, dBase, aBase, bBase int) error {
	width := ls.width
	regs := w.regs
	sh := w.shared
	ssize := sh.Size()

	anyActive := false
	for l := 0; l < width; l++ {
		if !w.active[l] {
			w.addrs[l] = -1
			continue
		}
		anyActive = true
		addr := regs[aBase+l]
		if addr < 0 || addr >= kernel.Word(ssize) {
			return fmt.Errorf("%w: shared %s lane %d addr %d (M-alloc=%d)",
				errAddrRange, op, l, addr, ssize)
		}
		w.addrs[l] = int(addr)
	}
	if !anyActive {
		w.pc++
		return nil
	}

	// Per-bank request counts; no broadcast exemption for atomics.
	counts := ls.bankCounts
	for i := range counts {
		counts[i] = 0
	}
	degree := 0
	for l := 0; l < width; l++ {
		if w.addrs[l] < 0 {
			continue
		}
		bk := w.addrs[l] % width
		counts[bk]++
		if counts[bk] > degree {
			degree = counts[bk]
		}
	}

	ls.stats.AtomicAccesses++
	ls.stats.AtomicSerialisations += int64(degree - 1)
	if degree > ls.stats.MaxAtomicDegree {
		ls.stats.MaxAtomicDegree = degree
	}
	w.atomSer += int64(degree - 1)
	if ls.sites != nil {
		s := &ls.sites[w.pc]
		s.Accesses++
		if degree > 1 {
			s.Conflicted++
		}
		if degree > s.MaxDegree {
			s.MaxDegree = degree
		}
	}

	// Lane-order sequential read-modify-write: lane l observes the effects
	// of all lower-numbered lanes on the same cell.
	raw := sh.Raw()
	for l := 0; l < width; l++ {
		if w.addrs[l] < 0 {
			continue
		}
		old := raw[w.addrs[l]]
		raw[w.addrs[l]] = atomRMW(op, old, regs[bBase+l], regs[dBase+l])
		regs[dBase+l] = old
	}

	w.state = wWaiting
	w.readyAt = ls.cycle + int64(ls.d.cfg.SharedLatencyCycles)*int64(degree)
	w.pc++
	return nil
}

// execAtomGlobal performs a warp-wide global-memory atomic. Coalescing
// still applies (distinct width-word blocks cost transactions), and on top
// of it conflicting lanes targeting the same address serialise: the access
// costs (degree−1) extra transaction serialisations. Advances pc itself on
// every path.
func (ls *launchState) execAtomGlobal(w *warp, op kernel.Op, dBase, aBase, bBase int) error {
	width := ls.width
	regs := w.regs
	g := ls.d.global
	gsize := g.Size()

	anyActive := false
	for l := 0; l < width; l++ {
		if !w.active[l] {
			w.addrs[l] = -1
			continue
		}
		anyActive = true
		addr := regs[aBase+l]
		if addr < 0 || addr >= kernel.Word(gsize) {
			return fmt.Errorf("%w: global %s lane %d addr %d (G=%d)",
				errAddrRange, op, l, addr, gsize)
		}
		w.addrs[l] = int(addr)
	}
	if !anyActive {
		w.pc++
		return nil
	}

	// Distinct memory blocks, exactly as execGlobal counts them.
	bs := width
	blocks := ls.blockScratch
	nblocks := 0
	for l := 0; l < width; l++ {
		if w.addrs[l] < 0 {
			continue
		}
		blk := w.addrs[l] / bs
		seen := false
		for i := 0; i < nblocks; i++ {
			if blocks[i] == blk {
				seen = true
				break
			}
		}
		if !seen {
			blocks[nblocks] = blk
			nblocks++
		}
	}

	// Serialisation degree: the maximum same-address request count.
	degree := 0
	for l := 0; l < width; l++ {
		if w.addrs[l] < 0 {
			continue
		}
		c := 0
		for m := 0; m < width; m++ {
			if w.addrs[m] == w.addrs[l] {
				c++
			}
		}
		if c > degree {
			degree = c
		}
	}

	ls.stats.AtomicAccesses++
	ls.stats.AtomicSerialisations += int64(degree - 1)
	if degree > ls.stats.MaxAtomicDegree {
		ls.stats.MaxAtomicDegree = degree
	}
	w.atomSer += int64(degree - 1)
	if ls.sites != nil {
		s := &ls.sites[w.pc]
		s.Accesses++
		s.Transactions += int64(nblocks)
		if degree > 1 {
			s.Conflicted++
		}
		md := nblocks
		if degree > md {
			md = degree
		}
		if md > s.MaxDegree {
			s.MaxDegree = md
		}
	}
	if ls.tracer != nil {
		ls.tracer.onMem(w.blockID, w.smIdx, ls.cycle, nblocks, true)
	}

	raw := g.Raw()
	for l := 0; l < width; l++ {
		if w.addrs[l] < 0 {
			continue
		}
		old := raw[w.addrs[l]]
		raw[w.addrs[l]] = atomRMW(op, old, regs[bBase+l], regs[dBase+l])
		regs[dBase+l] = old
	}

	lat := int64(ls.d.cfg.GlobalLatencyCycles) +
		int64(nblocks-1)*int64(ls.d.cfg.ExtraTransactionCycles) +
		int64(degree-1)*int64(ls.d.cfg.ExtraTransactionCycles)
	w.state = wWaiting
	w.readyAt = ls.cycle + lat
	if svc := int64(ls.d.cfg.MemServiceCycles); svc > 0 {
		start := ls.memFree
		if ls.cycle > start {
			start = ls.cycle
		}
		ls.memFree = start + int64(nblocks)*svc
		if ls.memFree > w.readyAt {
			w.readyAt = ls.memFree
		}
	}
	w.pc++
	return nil
}
