package simgpu

import (
	"testing"
	"time"

	"atgpu/internal/mem"
)

// seqWords builds n deterministic words.
func seqWords(n int) []mem.Word {
	w := make([]mem.Word, n)
	for i := range w {
		w[i] = mem.Word(i*7 + 3)
	}
	return w
}

// TestDefaultStreamDifferentialIdentity is the refactor's acceptance
// differential: driving the Host's synchronous API must produce, round
// by round, exactly the kernel/transfer/sync times obtained by driving
// the engine and device directly and summing durations — the
// pre-timeline accounting.
func TestDefaultStreamDifferentialIdentity(t *testing.T) {
	const sigma = 75 * time.Microsecond
	h := newHostPair(t, sigma)

	// Reference stack: an identical device and engine driven directly.
	refDev, err := New(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := newTestEngine()
	if err != nil {
		t.Fatal(err)
	}

	prog := squareKernel()
	var kSum, tSum, sSum time.Duration
	for round := 1; round <= 3; round++ {
		n := 8 * round // vary the transfer size per round
		data := seqWords(n)

		base, err := h.Malloc(n)
		if err != nil {
			t.Fatal(err)
		}
		refBase, err := refDev.Arena().AllocAligned(n)
		if err != nil {
			t.Fatal(err)
		}
		if base != refBase {
			t.Fatalf("allocator divergence: %d vs %d", base, refBase)
		}

		if err := h.TransferIn(base, data); err != nil {
			t.Fatal(err)
		}
		d, err := refEng.In(refDev.Global(), refBase, data)
		if err != nil {
			t.Fatal(err)
		}
		tSum += d

		if _, err := h.Launch(prog, round); err != nil {
			t.Fatal(err)
		}
		res, err := refDev.Launch(prog, round)
		if err != nil {
			t.Fatal(err)
		}
		kSum += res.Time

		if _, err := h.TransferOut(base, n); err != nil {
			t.Fatal(err)
		}
		_, d, err = refEng.Out(refDev.Global(), refBase, n)
		if err != nil {
			t.Fatal(err)
		}
		tSum += d

		h.EndRound()
		sSum += sigma

		if h.KernelTime() != kSum {
			t.Fatalf("round %d: kernel %v, want %v", round, h.KernelTime(), kSum)
		}
		if h.TransferTime() != tSum {
			t.Fatalf("round %d: transfer %v, want %v", round, h.TransferTime(), tSum)
		}
		if h.SyncTime() != sSum {
			t.Fatalf("round %d: sync %v, want %v", round, h.SyncTime(), sSum)
		}
		if h.TotalTime() != kSum+tSum+sSum {
			t.Fatalf("round %d: total %v ≠ kernel+transfer+sync %v",
				round, h.TotalTime(), kSum+tSum+sSum)
		}
		if h.OverlapSaved() != 0 {
			t.Fatalf("round %d: sequential run reports overlap %v", round, h.OverlapSaved())
		}
	}
}

// TestStreamsOverlapTransferCompute: a transfer on one stream and a
// kernel on another occupy distinct resources and overlap fully.
func TestStreamsOverlapTransferCompute(t *testing.T) {
	h := newHostPair(t, 0)
	base, err := h.Malloc(512)
	if err != nil {
		t.Fatal(err)
	}
	sIn := h.NewStream("in")
	sRun := h.NewStream("run")

	if err := h.AsyncTransferIn(sIn, base, seqWords(512)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AsyncLaunch(sRun, squareKernel(), 4); err != nil {
		t.Fatal(err)
	}

	xfer, kern := sIn.Sync(), sRun.Sync()
	if xfer <= 0 || kern <= 0 {
		t.Fatalf("ops cost nothing: xfer=%v kernel=%v", xfer, kern)
	}
	want := xfer
	if kern > want {
		want = kern
	}
	if h.TotalTime() != want {
		t.Fatalf("total %v, want max(%v, %v) — transfer must overlap compute",
			h.TotalTime(), xfer, kern)
	}
	if h.OverlapSaved() <= 0 {
		t.Fatal("no overlap recorded")
	}
}

// TestSameDirectionTransfersSerialize: H2D transfers on two different
// streams share the inward link and execute back to back.
func TestSameDirectionTransfersSerialize(t *testing.T) {
	h := newHostPair(t, 0)
	base, err := h.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	s1 := h.NewStream("s1")
	s2 := h.NewStream("s2")
	if err := h.AsyncTransferIn(s1, base, seqWords(128)); err != nil {
		t.Fatal(err)
	}
	if err := h.AsyncTransferIn(s2, base+128, seqWords(128)); err != nil {
		t.Fatal(err)
	}
	if h.TotalTime() != h.TransferTime() {
		t.Fatalf("total %v ≠ summed link time %v — same-direction transfers must serialize",
			h.TotalTime(), h.TransferTime())
	}
	if h.OverlapSaved() != 0 {
		t.Fatalf("same-direction transfers reported overlap %v", h.OverlapSaved())
	}
}

// TestOppositeDirectionTransfersOverlap: H2D and D2H are distinct link
// resources (full duplex) and overlap.
func TestOppositeDirectionTransfersOverlap(t *testing.T) {
	h := newHostPair(t, 0)
	base, err := h.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.TransferIn(base, seqWords(256)); err != nil {
		t.Fatal(err)
	}
	h.ResetClocks()

	sIn := h.NewStream("in")
	sOut := h.NewStream("out")
	if err := h.AsyncTransferIn(sIn, base, seqWords(128)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AsyncTransferOut(sOut, base+128, 128); err != nil {
		t.Fatal(err)
	}
	in, out := sIn.Sync(), sOut.Sync()
	want := in
	if out > want {
		want = out
	}
	if h.TotalTime() != want {
		t.Fatalf("total %v, want max(%v, %v) — opposite directions must overlap",
			h.TotalTime(), in, out)
	}
}

// TestRecordWaitOrdering: a stream waiting on another's event starts
// its next op no earlier than that event.
func TestRecordWaitOrdering(t *testing.T) {
	h := newHostPair(t, 0)
	base, err := h.Malloc(512)
	if err != nil {
		t.Fatal(err)
	}
	sIn := h.NewStream("in")
	sRun := h.NewStream("run")

	if err := h.AsyncTransferIn(sIn, base, seqWords(512)); err != nil {
		t.Fatal(err)
	}
	ev := sIn.Record()
	sRun.Wait(ev)
	if _, err := h.AsyncLaunch(sRun, squareKernel(), 4); err != nil {
		t.Fatal(err)
	}

	var found bool
	for _, op := range h.Timeline().Ops() {
		if op.Resource == "compute" {
			found = true
			if op.Start != ev.Time() {
				t.Fatalf("kernel starts at %v, want %v (after waited event)", op.Start, ev.Time())
			}
		}
	}
	if !found {
		t.Fatal("no compute op scheduled")
	}
	if h.OverlapSaved() != 0 {
		t.Fatalf("dependent ops reported overlap %v", h.OverlapSaved())
	}
}

// TestHostSyncBarrier: Sync joins all streams; later work starts after
// everything issued before it, and newly created streams start there.
func TestHostSyncBarrier(t *testing.T) {
	h := newHostPair(t, 0)
	base, err := h.Malloc(512)
	if err != nil {
		t.Fatal(err)
	}
	s1 := h.NewStream("s1")
	if err := h.AsyncTransferIn(s1, base, seqWords(512)); err != nil {
		t.Fatal(err)
	}
	at := h.Sync()
	if at != h.TotalTime() {
		t.Fatalf("Sync returned %v, want makespan %v", at, h.TotalTime())
	}
	if got := h.DefaultStream().Sync(); got != at {
		t.Fatalf("default stream frontier %v, want barrier %v", got, at)
	}
	late := h.NewStream("late")
	if _, err := h.AsyncLaunch(late, squareKernel(), 2); err != nil {
		t.Fatal(err)
	}
	for _, op := range h.Timeline().Ops() {
		if op.Resource == "compute" && op.Start < at {
			t.Fatalf("post-barrier kernel starts at %v, before barrier %v", op.Start, at)
		}
	}
}

// TestResetClocksStreams: after a reset every stream (default and
// explicit) rejoins the origin and stays usable.
func TestResetClocksStreams(t *testing.T) {
	h := newHostPair(t, time.Microsecond)
	base, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	s := h.NewStream("s")
	if err := h.AsyncTransferIn(s, base, seqWords(64)); err != nil {
		t.Fatal(err)
	}
	h.EndRound()
	h.ResetClocks()
	if h.TotalTime() != 0 || h.SyncTime() != 0 || len(h.Timeline().Ops()) != 0 {
		t.Fatal("ResetClocks left timeline residue")
	}
	if s.Sync() != 0 || h.DefaultStream().Sync() != 0 {
		t.Fatal("ResetClocks left stream frontiers")
	}
	if err := h.AsyncTransferIn(s, base, seqWords(64)); err != nil {
		t.Fatal(err)
	}
	if h.TotalTime() != h.TransferTime() {
		t.Fatalf("post-reset schedule inconsistent: total %v, transfer %v",
			h.TotalTime(), h.TransferTime())
	}
}

// TestForeignStreamPanics: issuing on another host's stream is a
// programming error.
func TestForeignStreamPanics(t *testing.T) {
	h1 := newHostPair(t, 0)
	h2 := newHostPair(t, 0)
	s := h2.NewStream("other")
	defer func() {
		if recover() == nil {
			t.Fatal("foreign stream accepted")
		}
	}()
	_ = h1.AsyncTransferIn(s, 0, seqWords(4))
}
