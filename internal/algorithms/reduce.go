package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// Reduce is the paper's second workload (§IV-B): sum an n-vector with the
// tree-based reduction of Harris's "Optimizing parallel reduction in CUDA",
// adapted to the model's one-warp thread blocks. Each round every block
// loads b elements into shared memory, tree-reduces them in log₂b steps,
// and writes one partial sum; rounds repeat on the shrinking output
// ("each round using the output from the previous round as input") until a
// single value remains — R = ⌈log_b n⌉ rounds.
type Reduce struct {
	// N is the input length.
	N int
}

// Name identifies the workload.
func (r Reduce) Name() string { return "reduce" }

// RoundSizes returns the element count entering each round: n, ⌈n/b⌉, …
// down to the round that outputs a single value.
func (r Reduce) RoundSizes(b int) []int {
	var sizes []int
	for n := r.N; n > 1; n = ceilDiv(n, b) {
		sizes = append(sizes, n)
	}
	if r.N == 1 {
		sizes = []int{1}
	}
	return sizes
}

// Rounds returns R = ⌈log_b n⌉ (at least 1).
func (r Reduce) Rounds(b int) int { return len(r.RoundSizes(b)) }

// GlobalWords returns the footprint: the input buffer plus a ping-pong
// partials buffer of ⌈n/b⌉ words.
func (r Reduce) GlobalWords(b int) int { return r.N + ceilDiv(r.N, b) }

// reduceOps returns the per-thread straight-line operation count of one
// round's kernel: constant setup plus log₂b tree steps (each step runs both
// paths of its divergent if, per the model's "all paths are executed").
func reduceOps(b int) float64 { return float64(14 + 9*log2(b)) }

// Analyze returns the exact ATGPU account of §IV-B. Round i over nᵢ
// elements launches kᵢ = ⌈nᵢ/b⌉ blocks, performs 2kᵢ block transactions
// (one coalesced load, one single-word store per block), uses b shared
// words per block; the first round transfers the n inputs in (Î₁ = 1),
// the last transfers the answer out (Ô_R = 1). Summed over rounds the I/O
// is the geometric series (n/b)·(1-(1/b)^R)/(1-1/b) of the paper.
func (r Reduce) Analyze(p core.Params) (*core.Analysis, error) {
	if r.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, r.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !isPow2(p.B) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, p.B)
	}
	sizes := r.RoundSizes(p.B)
	a := &core.Analysis{Name: r.Name(), Params: p}
	for i, n := range sizes {
		k := ceilDiv(n, p.B)
		round := core.Round{
			Time:        reduceOps(p.B),
			IO:          float64(2 * k),
			GlobalWords: r.GlobalWords(p.B),
			SharedWords: p.B,
			Blocks:      k,
		}
		if i == 0 {
			round.InWords = r.N
			round.InTransactions = 1
		}
		if i == len(sizes)-1 {
			round.OutWords = 1
			round.OutTransactions = 1
		}
		a.Rounds = append(a.Rounds, round)
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report the AGPU baseline would give.
func (r Reduce) AGPU() models.AGPUReport {
	return models.AGPUReport{
		Algorithm:        r.Name(),
		TimeComplexity:   "O(log b) per round, O(log b · log n) total",
		IOComplexity:     "O((n/b)·(1-(1/b)^log n)/(1-1/b))",
		GlobalComplexity: "O(n)",
		SharedComplexity: "O(b)",
	}
}

// Kernel builds one round's reduction kernel over count elements at inBase,
// writing ⌈count/b⌉ partial sums at outBase. b must be a power of two; the
// tree is unrolled at build time, each stride guarded by the divergent
// single-block if of the model.
func (r Reduce) Kernel(b int, inBase, outBase, count int) (*kernel.Program, error) {
	if count <= 0 {
		return nil, fmt.Errorf("%w: count=%d", ErrBadSize, count)
	}
	if !isPow2(b) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, b)
	}
	kb := kernel.NewBuilder(fmt.Sprintf("reduce-n%d", count), b)

	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	// _s[j] ← 0, then overwrite with the input when in range, so tail
	// lanes contribute the identity without reading out of bounds.
	zero := kb.Reg("zero")
	kb.Const(zero, 0)
	kb.StShared(j, zero)
	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(int64(count)))
	val := kb.Reg("val")
	addr := kb.Reg("addr")
	kb.IfDo(inRange, func() {
		kb.Add(addr, idx, kernel.Imm(int64(inBase)))
		kb.LdGlobal(val, addr)
		kb.StShared(j, val)
	})
	kb.Barrier()

	// Tree reduction, strides b/2 … 1, unrolled at build time.
	lt := kb.Reg("lt")
	other := kb.Reg("other")
	sum := kb.Reg("sum")
	for stride := b / 2; stride >= 1; stride /= 2 {
		kb.Slt(lt, j, kernel.Imm(int64(stride)))
		kb.IfDo(lt, func() {
			kb.Add(other, j, kernel.Imm(int64(stride)))
			kb.LdShared(val, j)
			kb.LdShared(sum, other)
			kb.Add(val, val, kernel.R(sum))
			kb.StShared(j, val)
		})
		kb.Barrier()
	}

	// Lane 0 writes the block's partial sum.
	isZero := kb.Reg("isZero")
	kb.Seq(isZero, j, kernel.Imm(0))
	kb.IfDo(isZero, func() {
		kb.LdShared(val, j)
		kb.Add(addr, blk, kernel.Imm(int64(outBase)))
		kb.StGlobal(addr, val)
	})
	return kb.Build()
}

// Run executes the full multi-round plan: transfer the input once, launch
// one kernel per round ping-ponging between the input buffer and a
// partials buffer, then transfer the single answer out. Matches the
// paper's "Reduction" pseudocode (one inward transfer, R kernel
// executions, one outward transfer).
func (r Reduce) Run(h *simgpu.Host, input []Word) (Word, error) {
	if err := checkLen("input", len(input), r.N); err != nil {
		return 0, err
	}
	if r.N == 0 {
		return 0, fmt.Errorf("%w: empty input", ErrBadSize)
	}
	width := h.Device().Config().WarpWidth
	if !isPow2(width) {
		return 0, fmt.Errorf("%w: device warp width %d", ErrNotPow2, width)
	}

	bufA, err := h.Malloc(r.N)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	bufB, err := h.Malloc(ceilDiv(r.N, width))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}

	if err := h.TransferIn(bufA, input); err != nil {
		return 0, err
	}

	in, out := bufA, bufB
	count := r.N
	for count > 1 {
		prog, err := r.Kernel(width, in, out, count)
		if err != nil {
			return 0, err
		}
		if _, err := h.Launch(prog, ceilDiv(count, width)); err != nil {
			return 0, err
		}
		// Each kernel execution is one model round, host-synchronised:
		// the analysis charges σ·R = σ·⌈log_b n⌉.
		h.EndRound()
		count = ceilDiv(count, width)
		in, out = out, in
	}

	ans, err := h.TransferOut(in, 1)
	if err != nil {
		return 0, err
	}
	return ans[0], nil
}

// ReduceReference sums the input on the CPU.
func ReduceReference(input []Word) Word {
	var s Word
	for _, v := range input {
		s += v
	}
	return s
}
