package algorithms

import (
	"errors"
	"testing"
	"testing/quick"

	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

func TestTransposeSmoke(t *testing.T) {
	for _, tiled := range []bool{false, true} {
		for _, n := range []int{4, 8, 16} {
			alg := Transpose{N: n, Tiled: tiled}
			h := newTestHost(t, alg.GlobalWords()+64)
			a := randWords(n*n, int64(n))
			got, err := alg.Run(h, a)
			if err != nil {
				t.Fatalf("%s n=%d: %v", alg.Name(), n, err)
			}
			want, err := TransposeReference(a, n)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d: out[%d] = %d, want %d", alg.Name(), n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTransposeCoalescingContrast is the point of the workload: identical
// data movement, radically different transaction counts — the naive
// variant's scattered writes cost b transactions per warp store while the
// tiled variant coalesces everything, and the simulator charges cycles
// accordingly.
func TestTransposeCoalescingContrast(t *testing.T) {
	// A realistic warp width is needed for the contrast: with b lanes the
	// scattered store costs b transactions, and the device-wide memory
	// controller turns that into a bandwidth wall. The 4-lane Tiny device
	// is too narrow for the penalty to beat the tiled variant's loop
	// overhead, so this test runs on the GTX650 preset (b = 32).
	gtxHost := func() *simgpu.Host {
		cfg := simgpu.GTX650()
		cfg.GlobalWords = 1 << 18
		dev, err := simgpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
		if err != nil {
			t.Fatal(err)
		}
		h, err := simgpu.NewHost(dev, eng, 0)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	n := 256
	a := randWords(n*n, 7)

	hn := gtxHost()
	if _, err := (Transpose{N: n}).Run(hn, a); err != nil {
		t.Fatal(err)
	}
	naive := hn.KernelStats()

	ht := gtxHost()
	if _, err := (Transpose{N: n, Tiled: true}).Run(ht, a); err != nil {
		t.Fatal(err)
	}
	tiled := ht.KernelStats()

	if naive.GlobalTransactions <= tiled.GlobalTransactions {
		t.Fatalf("naive q=%d should exceed tiled q=%d",
			naive.GlobalTransactions, tiled.GlobalTransactions)
	}
	if naive.UncoalescedAccesses == 0 {
		t.Fatal("naive transpose should have uncoalesced accesses")
	}
	if tiled.UncoalescedAccesses != 0 {
		t.Fatalf("tiled transpose has %d uncoalesced accesses", tiled.UncoalescedAccesses)
	}
	if tiled.BankConflicts != 0 {
		t.Fatalf("padded tiled transpose has %d bank conflicts", tiled.BankConflicts)
	}
	if hn.KernelTime() <= ht.KernelTime() {
		t.Fatalf("naive kernel (%v) should be slower than tiled (%v)",
			hn.KernelTime(), ht.KernelTime())
	}
}

func TestTransposeAnalysisMatchesSimulator(t *testing.T) {
	for _, tiled := range []bool{false, true} {
		n := 16
		alg := Transpose{N: n, Tiled: tiled}
		h := newTestHost(t, alg.GlobalWords()+64)
		width := h.Device().Config().WarpWidth

		analysis, err := alg.Analyze(tinyParams(alg.Blocks(width)))
		if err != nil {
			t.Fatal(err)
		}
		a := randWords(n*n, 8)
		if _, err := alg.Run(h, a); err != nil {
			t.Fatal(err)
		}
		ks := h.KernelStats()
		if got, want := float64(ks.GlobalTransactions), analysis.TotalIO(); got != want {
			t.Errorf("%s: observed q = %g, analysis %g", alg.Name(), got, want)
		}
		ts := h.TransferStats()
		r := analysis.Rounds[0]
		if ts.InWords != r.InWords || ts.OutWords != r.OutWords {
			t.Errorf("%s: transfer words = %d/%d, analysis %d/%d",
				alg.Name(), ts.InWords, ts.OutWords, r.InWords, r.OutWords)
		}
	}
}

// TestTransposeModelPredictsCoalescingGap: the model's q difference must
// predict the observed cycle difference direction — the I/O metric is
// doing its job when analysis ordering matches execution ordering.
func TestTransposeModelPredictsCoalescingGap(t *testing.T) {
	n := 16
	p := tinyParams((n * n) / 4)
	an, err := (Transpose{N: n}).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	at, err := (Transpose{N: n, Tiled: true}).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if an.TotalIO() <= at.TotalIO() {
		t.Fatalf("analysis: naive q=%g should exceed tiled q=%g", an.TotalIO(), at.TotalIO())
	}
	// b+1-fold ratio per the closed forms: (1+b)/2 with b=4 → 2.5.
	ratio := an.TotalIO() / at.TotalIO()
	if ratio < 2 || ratio > 3 {
		t.Fatalf("q ratio = %g, want (1+b)/2 = 2.5 for b=4", ratio)
	}
}

func TestTransposeValidation(t *testing.T) {
	if _, err := (Transpose{N: 0}).Analyze(tinyParams(1)); !errors.Is(err, ErrBadSize) {
		t.Errorf("n=0: %v", err)
	}
	if _, err := (Transpose{N: 6}).Analyze(tinyParams(1)); !errors.Is(err, ErrBadShape) {
		t.Errorf("n not multiple of b: %v", err)
	}
	h := newTestHost(t, 1024)
	if _, err := (Transpose{N: 4}).Run(h, make([]Word, 3)); !errors.Is(err, ErrBadShape) {
		t.Errorf("bad length: %v", err)
	}
	if _, err := (Transpose{N: 6}).Run(h, make([]Word, 36)); !errors.Is(err, ErrBadShape) {
		t.Errorf("n not multiple of warp: %v", err)
	}
	if _, err := TransposeReference(make([]Word, 3), 2); !errors.Is(err, ErrBadShape) {
		t.Errorf("reference shape: %v", err)
	}
}

// Property: transpose is an involution — running it twice returns the
// original matrix (checked via the CPU reference composed with the
// simulated kernel).
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64, tiled bool) bool {
		n := 8
		a := randWords(n*n, seed)
		alg := Transpose{N: n, Tiled: tiled}
		h := newTestHost(t, alg.GlobalWords()+64)
		once, err := alg.Run(h, a)
		if err != nil {
			return false
		}
		h2 := newTestHost(t, alg.GlobalWords()+64)
		twice, err := alg.Run(h2, once)
		if err != nil {
			return false
		}
		for i := range a {
			if twice[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
