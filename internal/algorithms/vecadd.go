package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// VecAdd is the paper's first workload (§IV-A): C = A + B elementwise, "an
// embarrassingly parallel problem" with one thread per element. The kernel
// follows the paper's pseudocode: stage both inputs from global into shared
// memory, add in shared memory, and write the result back through shared
// memory — one round, coalesced throughout.
type VecAdd struct {
	// N is the vector length.
	N int
}

// Name identifies the workload.
func (v VecAdd) Name() string { return "vecadd" }

// Blocks returns k, the thread blocks launched: one warp per b elements.
func (v VecAdd) Blocks(b int) int { return ceilDiv(v.N, b) }

// SharedWordsPerBlock returns the per-block shared allocation m = 3b
// (one b-word strip for each of a, b and c).
func (v VecAdd) SharedWordsPerBlock(b int) int { return 3 * b }

// GlobalWords returns the device footprint: the three vectors.
func (v VecAdd) GlobalWords() int { return 3 * v.N }

// vecAddOpsPerThread is the straight-line operation count of one thread,
// the model's tᵢ for the single round. The paper uses the constant 13 for
// its hand-written pseudocode; ours is derived from the IR kernel (address
// arithmetic included) and differs only by a constant factor, which the
// cost trend is insensitive to.
const vecAddOpsPerThread = 20

// Analyze returns the exact ATGPU account of §IV-A: R = 1, t = Θ(1),
// q = 3k, global = 3n, shared = 3b, I = 2n in 2 transactions, O = n in 1.
// The paper's cost α·3 + β·3n + (13 + λ·3k)/γ + σ follows from these counts.
func (v VecAdd) Analyze(p core.Params) (*core.Analysis, error) {
	if v.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, v.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := v.Blocks(p.B)
	a := &core.Analysis{
		Name:   v.Name(),
		Params: p,
		Rounds: []core.Round{{
			Time:            vecAddOpsPerThread,
			IO:              float64(3 * k),
			GlobalWords:     v.GlobalWords(),
			SharedWords:     v.SharedWordsPerBlock(p.B),
			Blocks:          k,
			InWords:         2 * v.N,
			InTransactions:  2,
			OutWords:        v.N,
			OutTransactions: 1,
		}},
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report the AGPU baseline would give.
func (v VecAdd) AGPU() models.AGPUReport {
	return models.AGPUReport{
		Algorithm:        v.Name(),
		TimeComplexity:   "O(1)",
		IOComplexity:     "O(k)",
		GlobalComplexity: "O(n)",
		SharedComplexity: "O(b)",
	}
}

// Kernel builds the vector-addition kernel for element count n over device
// arrays at baseA, baseB, baseC. Shared layout: [0,b) staged a, [b,2b)
// staged b, [2b,3b) staged c. Threads beyond n are masked by a single-block
// if, the paper's only divergence construct.
func (v VecAdd) Kernel(b int, baseA, baseB, baseC int) (*kernel.Program, error) {
	if v.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, v.N)
	}
	kb := kernel.NewBuilder(fmt.Sprintf("vecadd-n%d", v.N), 3*b)

	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(int64(v.N)))

	addr := kb.Reg("addr")
	val := kb.Reg("val")
	sOff := kb.Reg("sOff")

	kb.IfDo(inRange, func() {
		// a[j] ⇐ a[i·b + j] : global stage of A into shared strip 0.
		kb.Add(addr, idx, kernel.Imm(int64(baseA)))
		kb.LdGlobal(val, addr)
		kb.StShared(j, val)
		// b[j] ⇐ b[i·b + j] : stage B into shared strip 1.
		kb.Add(addr, idx, kernel.Imm(int64(baseB)))
		kb.LdGlobal(val, addr)
		kb.Add(sOff, j, kernel.Imm(int64(b)))
		kb.StShared(sOff, val)

		// c[j] ← a[j] + b[j] : add within shared memory.
		va := kb.Reg("va")
		vb := kb.Reg("vb")
		kb.LdShared(va, j)
		kb.LdShared(vb, sOff)
		kb.Add(va, va, kernel.R(vb))
		kb.Add(sOff, j, kernel.Imm(int64(2*b)))
		kb.StShared(sOff, va)

		// c[i·b + j] ⇐ c[j] : write result tile back to global.
		kb.LdShared(val, sOff)
		kb.Add(addr, idx, kernel.Imm(int64(baseC)))
		kb.StGlobal(addr, val)
		kb.Release(va, vb)
	})
	return kb.Build()
}

// Run executes the full round plan on the host: transfer A and B in, launch
// the kernel, transfer C out, synchronise. It returns the result vector.
// Timing accumulates on the host's simulated clocks.
func (v VecAdd) Run(h *simgpu.Host, a, b []Word) ([]Word, error) {
	if err := checkLen("a", len(a), v.N); err != nil {
		return nil, err
	}
	if err := checkLen("b", len(b), v.N); err != nil {
		return nil, err
	}
	width := h.Device().Config().WarpWidth

	baseA, err := h.Malloc(v.N)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	baseB, err := h.Malloc(v.N)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	baseC, err := h.Malloc(v.N)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}

	prog, err := v.Kernel(width, baseA, baseB, baseC)
	if err != nil {
		return nil, err
	}

	if err := h.TransferIn(baseA, a); err != nil {
		return nil, err
	}
	if err := h.TransferIn(baseB, b); err != nil {
		return nil, err
	}
	if _, err := h.Launch(prog, v.Blocks(width)); err != nil {
		return nil, err
	}
	c, err := h.TransferOut(baseC, v.N)
	if err != nil {
		return nil, err
	}
	h.EndRound()
	return c, nil
}

// Reference computes A+B on the CPU.
func VecAddReference(a, b []Word) ([]Word, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: len(a)=%d len(b)=%d", ErrBadShape, len(a), len(b))
	}
	c := make([]Word, len(a))
	for i := range a {
		c[i] = a[i] + b[i]
	}
	return c, nil
}
