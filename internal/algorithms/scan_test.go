package algorithms

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestScanSmoke(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 16, 17, 64, 100, 1000} {
		alg := Scan{N: n}
		h := newTestHost(t, alg.GlobalWords(4)+64)
		in := randWords(n, int64(n))
		got, err := alg.Run(h, in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := ScanReference(in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: scan[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestScanAnalysisMatchesSimulator(t *testing.T) {
	for _, n := range []int{4, 5, 16, 17, 64, 1000} {
		alg := Scan{N: n}
		h := newTestHost(t, alg.GlobalWords(4)+64)
		width := h.Device().Config().WarpWidth

		analysis, err := alg.Analyze(tinyParams((n + width - 1) / width))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		in := randWords(n, 9)
		if _, err := alg.Run(h, in); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}

		if h.Rounds() != analysis.R() {
			t.Errorf("n=%d: rounds = %d, analysis %d", n, h.Rounds(), analysis.R())
		}
		ks := h.KernelStats()
		if got, want := float64(ks.GlobalTransactions), analysis.TotalIO(); got != want {
			t.Errorf("n=%d: observed q = %g, analysis %g", n, got, want)
		}
		ts := h.TransferStats()
		if got, want := ts.TotalWords(), analysis.TotalTransferWords(); got != want {
			t.Errorf("n=%d: transfer words = %d, analysis %d", n, got, want)
		}
		if ks.BankConflicts != 0 {
			t.Errorf("n=%d: %d bank conflicts in scan kernels", n, ks.BankConflicts)
		}
	}
}

func TestScanLevelSizes(t *testing.T) {
	s := Scan{N: 100}
	got := s.LevelSizes(4)
	want := []int{100, 25, 7, 2}
	if len(got) != len(want) {
		t.Fatalf("LevelSizes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LevelSizes = %v, want %v", got, want)
		}
	}
	if got := (Scan{N: 3}).LevelSizes(4); len(got) != 1 {
		t.Fatalf("single level expected for n<=b: %v", got)
	}
}

func TestScanValidation(t *testing.T) {
	if _, err := (Scan{N: 0}).Analyze(tinyParams(1)); !errors.Is(err, ErrBadSize) {
		t.Errorf("n=0: %v", err)
	}
	h := newTestHost(t, 1024)
	if _, err := (Scan{N: 5}).Run(h, make([]Word, 4)); !errors.Is(err, ErrBadShape) {
		t.Errorf("length mismatch: %v", err)
	}
}

// Property: simulated scan equals the reference for arbitrary inputs, and
// its last element equals the reduction of the input.
func TestScanAgreesWithReferenceProperty(t *testing.T) {
	f := func(raw []int16) bool {
		n := len(raw) + 1
		in := make([]Word, n)
		for i := 0; i < len(raw); i++ {
			in[i] = Word(raw[i])
		}
		in[n-1] = -5
		alg := Scan{N: n}
		h := newTestHost(t, alg.GlobalWords(4)+64)
		got, err := alg.Run(h, in)
		if err != nil {
			return false
		}
		want := ScanReference(in)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return got[n-1] == ReduceReference(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScanReference(t *testing.T) {
	got := ScanReference([]Word{3, -1, 4, 1, -5})
	want := []Word{3, 2, 6, 7, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanReference = %v, want %v", got, want)
		}
	}
	if len(ScanReference(nil)) != 0 {
		t.Fatal("empty scan should be empty")
	}
}
