package algorithms

import (
	"testing"

	"atgpu/internal/core"
	"atgpu/internal/simgpu"
)

// pipeHost builds a host roomy enough for pipelined buffer sets.
func pipeHost(t testing.TB, globalWords int) *simgpu.Host {
	t.Helper()
	return newTestHost(t, globalWords)
}

func TestPipelinedVecAddCorrectness(t *testing.T) {
	for _, tc := range []struct{ n, chunks, streams int }{
		{100, 4, 2},
		{100, 4, 1},
		{100, 7, 3}, // uneven chunks, final partial
		{5, 8, 2},   // more chunks than elements
		{64, 1, 2},  // single chunk degenerates to one stream
		{33, 4, 0},  // default stream count
	} {
		v := PipelinedVecAdd{N: tc.n, Chunks: tc.chunks, Streams: tc.streams}
		words, err := v.GlobalWords(4)
		if err != nil {
			t.Fatalf("%+v: GlobalWords: %v", tc, err)
		}
		h := pipeHost(t, words+64)
		a, b := randWords(tc.n, 10), randWords(tc.n, 11)
		got, err := v.Run(h, a, b)
		if err != nil {
			t.Fatalf("%+v: Run: %v", tc, err)
		}
		want, err := VecAddReference(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: c[%d] = %d, want %d", tc, i, got[i], want[i])
			}
		}
	}
}

func TestPipelinedReduceCorrectness(t *testing.T) {
	for _, tc := range []struct{ n, chunks, streams int }{
		{256, 4, 2},
		{100, 4, 2}, // partial final chunk, non-pow2 chunk sizes
		{100, 3, 1},
		{7, 16, 2},
		{1, 4, 2},
	} {
		r := PipelinedReduce{N: tc.n, Chunks: tc.chunks, Streams: tc.streams}
		words, err := r.GlobalWords(4) // Tiny warp width
		if err != nil {
			t.Fatalf("%+v: GlobalWords: %v", tc, err)
		}
		h := pipeHost(t, words+64)
		in := randWords(tc.n, 20)
		got, err := r.Run(h, in)
		if err != nil {
			t.Fatalf("%+v: Run: %v", tc, err)
		}
		if want := ReduceReference(in); got != want {
			t.Fatalf("%+v: sum = %d, want %d", tc, got, want)
		}
	}
}

func TestPipelinedMatMulCorrectness(t *testing.T) {
	for _, tc := range []struct{ n, chunks, streams int }{
		{16, 4, 2}, // 4 tile rows, one per band
		{16, 2, 2},
		{12, 2, 1}, // 3 tile rows in 2 bands: partial final band
		{8, 5, 2},  // more bands requested than tile rows
	} {
		m := PipelinedMatMul{N: tc.n, Chunks: tc.chunks, Streams: tc.streams}
		words, err := m.GlobalWords(4)
		if err != nil {
			t.Fatalf("%+v: GlobalWords: %v", tc, err)
		}
		h := pipeHost(t, words+64)
		a, b := randWords(tc.n*tc.n, 30), randWords(tc.n*tc.n, 31)
		got, err := m.Run(h, a, b)
		if err != nil {
			t.Fatalf("%+v: Run: %v", tc, err)
		}
		want, err := MatMulReference(a, b, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: c[%d] = %d, want %d", tc, i, got[i], want[i])
			}
		}
	}
}

// TestPipelinedBeatsSequential is the tentpole's acceptance criterion: with
// ≥4 chunks, the multi-stream schedule finishes strictly earlier than the
// single-stream chunked baseline on identical inputs, and the saving equals
// the makespan gap the timeline reports.
func TestPipelinedBeatsSequential(t *testing.T) {
	const n, chunks = 512, 4
	a, b := randWords(n, 40), randWords(n, 41)

	run := func(streams int) *simgpu.Host {
		v := PipelinedVecAdd{N: n, Chunks: chunks, Streams: streams}
		words, err := v.GlobalWords(4)
		if err != nil {
			t.Fatal(err)
		}
		h := pipeHost(t, words+64)
		if _, err := v.Run(h, a, b); err != nil {
			t.Fatal(err)
		}
		return h
	}

	seq, pipe := run(1), run(2)
	if seq.OverlapSaved() != 0 {
		t.Fatalf("single-stream run reports overlap %v", seq.OverlapSaved())
	}
	if pipe.OverlapSaved() <= 0 {
		t.Fatal("multi-stream run reports no overlap")
	}
	if pipe.TotalTime() >= seq.TotalTime() {
		t.Fatalf("pipelined total %v not less than sequential %v",
			pipe.TotalTime(), seq.TotalTime())
	}
	// Work content is identical; only the schedule differs.
	if pipe.KernelTime() != seq.KernelTime() {
		t.Fatalf("kernel busy differs: %v vs %v", pipe.KernelTime(), seq.KernelTime())
	}
	if pipe.TransferTime() != seq.TransferTime() {
		t.Fatalf("link busy differs: %v vs %v", pipe.TransferTime(), seq.TransferTime())
	}
}

// TestPipelinedDeterministicReplay: identical inputs replay to identical
// overlapped schedules and identical makespans.
func TestPipelinedDeterministicReplay(t *testing.T) {
	run := func() *simgpu.Host {
		v := PipelinedVecAdd{N: 256, Chunks: 4, Streams: 2}
		words, err := v.GlobalWords(4)
		if err != nil {
			t.Fatal(err)
		}
		h := pipeHost(t, words+64)
		if _, err := v.Run(h, randWords(256, 50), randWords(256, 51)); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h2 := run(), run()
	a, b := h1.Timeline().Ops(), h2.Timeline().Ops()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End || a[i].Resource != b[i].Resource {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if h1.TotalTime() != h2.TotalTime() {
		t.Fatalf("makespans differ: %v vs %v", h1.TotalTime(), h2.TotalTime())
	}
}

// TestPipelinedAnalyzeConservation: the chunked accounts move the same
// words as the monolithic ones and predict a pipelined cost no worse than
// sequential via core.GPUCostPipelined.
func TestPipelinedAnalyzeConservation(t *testing.T) {
	p := core.Params{P: 64, B: 4, M: 64, G: 100000}

	va := PipelinedVecAdd{N: 100, Chunks: 4, Streams: 2}
	aa, err := va.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	var in, out int
	for _, r := range aa.Rounds {
		in += r.InWords
		out += r.OutWords
	}
	if in != 2*va.N || out != va.N {
		t.Fatalf("vecadd words moved: in=%d out=%d, want %d/%d", in, out, 2*va.N, va.N)
	}
	cost := core.CostParams{
		Gamma: 1e6, Lambda: 4, Sigma: 1e-4,
		Alpha: 1e-5, Beta: 1e-6, KPrime: 2, H: 2,
	}
	pc, err := core.GPUCostPipelined(aa, cost)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Pipelined > pc.Sequential {
		t.Fatalf("predicted pipelined %g worse than sequential %g", pc.Pipelined, pc.Sequential)
	}
	if pc.Saving() <= 0 {
		t.Fatalf("4-chunk vecadd predicts no overlap saving: %+v", pc)
	}

	rd := PipelinedReduce{N: 256, Chunks: 4, Streams: 2}
	ra, err := rd.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	in, out = 0, 0
	for _, r := range ra.Rounds {
		in += r.InWords
		out += r.OutWords
	}
	if in != rd.N || out != 4 {
		t.Fatalf("reduce words moved: in=%d out=%d, want %d/4", in, out, rd.N)
	}

	mm := PipelinedMatMul{N: 16, Chunks: 4, Streams: 2}
	ma, err := mm.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	in, out = 0, 0
	for _, r := range ma.Rounds {
		in += r.InWords
		out += r.OutWords
	}
	if in != 2*mm.N*mm.N || out != mm.N*mm.N {
		t.Fatalf("matmul words moved: in=%d out=%d, want %d/%d", in, out, 2*mm.N*mm.N, mm.N*mm.N)
	}
}

func TestPipelinedValidationErrors(t *testing.T) {
	if _, err := (PipelinedVecAdd{N: 0, Chunks: 4}).GlobalWords(4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := (PipelinedVecAdd{N: 8, Chunks: 0}).GlobalWords(4); err == nil {
		t.Error("chunks=0 accepted")
	}
	if _, err := (PipelinedVecAdd{N: 8, Chunks: 2, Streams: -1}).GlobalWords(4); err == nil {
		t.Error("negative streams accepted")
	}
	h := pipeHost(t, 4096)
	if _, err := (PipelinedVecAdd{N: 8, Chunks: 2}).Run(h, make([]Word, 7), make([]Word, 8)); err == nil {
		t.Error("short input accepted")
	}
	if _, err := (PipelinedMatMul{N: 6, Chunks: 2}).Run(h, make([]Word, 36), make([]Word, 36)); err == nil {
		t.Error("n not multiple of warp width accepted")
	}
}
