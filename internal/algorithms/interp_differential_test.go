package algorithms

import (
	"reflect"
	"testing"

	"atgpu/internal/analyze"
	"atgpu/internal/faults"
	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// The decoded-IR interpreter and the analyzer-gated block memoization must
// be invisible: byte-identical results, statistics, per-site counters,
// simulated times, and traces versus the legacy switch interpreter, across
// workloads, presets and fault seeds. These tests pin that equivalence.

// armConfig selects one interpreter arm.
type armConfig struct {
	legacy    bool
	sites     bool
	prover    bool
	faultSeed int64 // 0 = no injector
}

// armOutcome is everything observable from one arm's run.
type armOutcome struct {
	out       []Word
	results   []simgpu.KernelResult
	kernelT   int64
	totalT    int64
	faults    int
	memoSkips int64
}

func runArm(t *testing.T, base simgpu.Config, globalWords int, arm armConfig,
	workload func(h *simgpu.Host) ([]Word, error)) armOutcome {
	t.Helper()
	cfg := base
	cfg.LegacyInterp = arm.legacy
	if globalWords > cfg.GlobalWords {
		cfg.GlobalWords = globalWords
	}
	dev, err := simgpu.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if arm.prover {
		dev.SetUniformProver(analyze.UniformProver)
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	h, err := simgpu.NewHost(dev, eng, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	if arm.sites {
		h.SetCollectSites(true)
	}
	if arm.faultSeed != 0 {
		inj, err := faults.NewRate(faults.RateConfig{Seed: arm.faultSeed, TransferRate: 0.02, KernelRate: 0.05})
		if err != nil {
			t.Fatalf("NewRate: %v", err)
		}
		if err := h.SetFaults(inj, 0, 0); err != nil {
			t.Fatalf("SetFaults: %v", err)
		}
	}
	var results []simgpu.KernelResult
	h.SetLaunchObserver(func(_ *kernel.Program, _ int, res simgpu.KernelResult) {
		results = append(results, res)
	})
	out, err := workload(h)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return armOutcome{
		out:       out,
		results:   results,
		kernelT:   int64(h.KernelTime()),
		totalT:    int64(h.TotalTime()),
		faults:    len(h.FaultEvents()),
		memoSkips: dev.MemoSkips(),
	}
}

func compareArms(t *testing.T, label string, want, got armOutcome) {
	t.Helper()
	if !reflect.DeepEqual(want.out, got.out) {
		t.Errorf("%s: outputs diverge", label)
	}
	if len(want.results) != len(got.results) {
		t.Fatalf("%s: %d vs %d launches", label, len(want.results), len(got.results))
	}
	for i := range want.results {
		if !reflect.DeepEqual(want.results[i], got.results[i]) {
			t.Errorf("%s: launch %d result diverges:\nwant %+v\ngot  %+v",
				label, i, want.results[i], got.results[i])
		}
	}
	if want.kernelT != got.kernelT || want.totalT != got.totalT {
		t.Errorf("%s: times diverge: kernel %d vs %d, total %d vs %d",
			label, want.kernelT, got.kernelT, want.totalT, got.totalT)
	}
	if want.faults != got.faults {
		t.Errorf("%s: fault event counts diverge: %d vs %d", label, want.faults, got.faults)
	}
}

func TestDecodedMatchesLegacyAcrossWorkloads(t *testing.T) {
	presets := []simgpu.Config{simgpu.Tiny(), simgpu.GTX650()}
	type wl struct {
		name  string
		words int
		run   func(h *simgpu.Host) ([]Word, error)
	}
	mkWorkloads := func(n int) []wl {
		a, b := randWords(n, 11), randWords(n, 13)
		return []wl{
			{"vecadd", 3*n + 256, func(h *simgpu.Host) ([]Word, error) {
				return VecAdd{N: n}.Run(h, a, b)
			}},
			{"reduce", 2*n + 256, func(h *simgpu.Host) ([]Word, error) {
				s, err := Reduce{N: n}.Run(h, a)
				return []Word{s}, err
			}},
			{"dot", 3*n + 256, func(h *simgpu.Host) ([]Word, error) {
				s, err := Dot{N: n}.Run(h, a, b)
				return []Word{s}, err
			}},
		}
	}
	for _, preset := range presets {
		for _, n := range []int{64, 100, 1 << 12} {
			for _, w := range mkWorkloads(n) {
				for _, sites := range []bool{false, true} {
					for _, seed := range []int64{0, 7} {
						if seed != 0 && (sites || n > 100) {
							// Faulted relaunches are slow; one fault arm per
							// workload/preset covers the injector path.
							continue
						}
						arm := armConfig{sites: sites, faultSeed: seed}
						legacyArm := arm
						legacyArm.legacy = true
						want := runArm(t, preset, w.words, legacyArm, w.run)
						got := runArm(t, preset, w.words, arm, w.run)
						label := preset.Name + "/" + w.name
						compareArms(t, label, want, got)
					}
				}
			}
		}
	}
}

// TestDecodedMatchesLegacyAtomicWorkloads extends the equivalence pin to
// every atomic builtin: histogram (contended AND privatized — atomadd under
// heavy and zero conflict), compact (atomadd offset reservation), top-k
// (atommax/atomcas slot updates), and montecarlo (atomadd global tally),
// across presets, site collection, and fault seeds. The serialisation
// charges feed the timeline, so Time/Stats equality here proves the two
// interpreters agree on lane-order RMW semantics and on the cost model.
func TestDecodedMatchesLegacyAtomicWorkloads(t *testing.T) {
	presets := []simgpu.Config{simgpu.Tiny(), simgpu.GTX650()}
	type wl struct {
		name  string
		words int
		run   func(h *simgpu.Host) ([]Word, error)
	}
	mkWorkloads := func(n int) []wl {
		// Histogram inputs must be non-negative; skew most values into one
		// bin so the contended variant actually serialises whole warps.
		in := make([]Word, n)
		for i := range in {
			if i%4 != 0 {
				in[i] = 3
			} else {
				in[i] = Word(i % 23)
			}
		}
		keep := randWords(n, 19) // roughly half zero-crossing: compact keeps v > 0
		return []wl{
			{"histogram", 3*n + 256, func(h *simgpu.Host) ([]Word, error) {
				return Histogram{N: n, Bins: 8}.Run(h, in)
			}},
			{"histogram-priv", 3*n + 256, func(h *simgpu.Host) ([]Word, error) {
				return Histogram{N: n, Bins: 8, Privatized: true}.Run(h, in)
			}},
			{"compact", 3*n + 256, func(h *simgpu.Host) ([]Word, error) {
				return Compact{N: n}.Run(h, keep)
			}},
			{"topk", 3*n + 256, func(h *simgpu.Host) ([]Word, error) {
				return TopK{N: n, K: 4}.Run(h, keep)
			}},
			{"montecarlo", n + 256, func(h *simgpu.Host) ([]Word, error) {
				s, err := MonteCarlo{N: n, Trials: 6}.Run(h)
				return []Word{s}, err
			}},
		}
	}
	for _, preset := range presets {
		for _, n := range []int{64, 100, 1 << 12} {
			for _, w := range mkWorkloads(n) {
				for _, sites := range []bool{false, true} {
					for _, seed := range []int64{0, 23} {
						if seed != 0 && (sites || n > 100) {
							// One fault arm per workload/preset, as above.
							continue
						}
						arm := armConfig{sites: sites, faultSeed: seed}
						legacyArm := arm
						legacyArm.legacy = true
						want := runArm(t, preset, w.words, legacyArm, w.run)
						got := runArm(t, preset, w.words, arm, w.run)
						label := preset.Name + "/" + w.name
						compareArms(t, label, want, got)
					}
				}
			}
		}
	}
}

// TestMemoizedVecAddMatchesFullSimulation drives a certified launch big
// enough for steady-state memoization to engage and requires exact
// equality with the legacy interpreter (the pristine reference arm).
func TestMemoizedVecAddMatchesFullSimulation(t *testing.T) {
	const n = 1 << 16 // H = 2048 blocks on GTX650's b=32
	a, b := randWords(n, 3), randWords(n, 5)
	run := func(h *simgpu.Host) ([]Word, error) { return VecAdd{N: n}.Run(h, a, b) }

	full := runArm(t, simgpu.GTX650(), 3*n+256, armConfig{legacy: true}, run)
	memo := runArm(t, simgpu.GTX650(), 3*n+256, armConfig{prover: true}, run)

	if memo.memoSkips == 0 {
		t.Fatalf("memoization did not engage on a certified %d-block launch", n/32)
	}
	compareArms(t, "vecadd-memo", full, memo)

	want, err := VecAddReference(a, b)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if !reflect.DeepEqual(memo.out, want) {
		t.Errorf("memoized output wrong")
	}
}

// TestMemoDisabledUnderFaultInjection proves the armed injector turns
// memoization off even for certified kernels.
func TestMemoDisabledUnderFaultInjection(t *testing.T) {
	const n = 1 << 16
	a, b := randWords(n, 3), randWords(n, 5)
	run := func(h *simgpu.Host) ([]Word, error) { return VecAdd{N: n}.Run(h, a, b) }
	got := runArm(t, simgpu.GTX650(), 3*n+256, armConfig{prover: true, faultSeed: 17}, run)
	if got.memoSkips != 0 {
		t.Fatalf("memoization engaged %d times under fault injection", got.memoSkips)
	}
}

// TestTracedLaunchDisablesMemoExactly: with a tracer attached memoization
// must switch itself off, and the trace must equal the prover-less trace.
func TestTracedLaunchDisablesMemoExactly(t *testing.T) {
	const n = 1 << 16
	a, b := randWords(n, 3), randWords(n, 5)

	runTraced := func(prover bool) (*simgpu.Tracer, int64, []Word) {
		cfg := simgpu.GTX650()
		cfg.GlobalWords = 3*n + 256
		dev, err := simgpu.New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if prover {
			dev.SetUniformProver(analyze.UniformProver)
		}
		eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		h, err := simgpu.NewHost(dev, eng, 0)
		if err != nil {
			t.Fatalf("NewHost: %v", err)
		}
		tr := &simgpu.Tracer{CaptureMemory: true}
		h.SetTracer(tr)
		out, err := VecAdd{N: n}.Run(h, a, b)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return tr, dev.MemoSkips(), out
	}

	trFull, _, outFull := runTraced(false)
	trMemo, skips, outMemo := runTraced(true)
	if skips != 0 {
		t.Fatalf("memoization engaged %d times on a traced launch", skips)
	}
	if !reflect.DeepEqual(trFull, trMemo) {
		t.Errorf("traces diverge between prover-less and prover-armed traced runs")
	}
	if !reflect.DeepEqual(outFull, outMemo) {
		t.Errorf("outputs diverge on traced runs")
	}
}
