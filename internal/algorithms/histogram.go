package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// Histogram bins n input values into Bins counters with atomic increments —
// the canonical contention workload. Two kernel strategies share the same
// interface:
//
//   - contended (Privatized=false): one shared counter array per block; every
//     lane atomically increments the bin its value hashes to, so lanes whose
//     values collide on a bin (or a bank) serialise. Skewed inputs drive the
//     contention factor toward b.
//   - privatized (Privatized=true): each lane owns a private copy of the
//     histogram in shared memory, laid out at an odd stride so both the
//     update and the reduction phases are conflict-free; copies are reduced
//     and flushed with one global atomic per bin per block.
//
// Both flush block-local counts into the global result with global atomadd,
// so cross-block accumulation is exercised either way.
type Histogram struct {
	// N is the input length.
	N int
	// Bins is the number of histogram buckets; values are binned by v mod
	// Bins (inputs are non-negative). Must be at least 1.
	Bins int
	// Privatized selects the per-lane private-copy strategy.
	Privatized bool
}

// Name identifies the workload variant.
func (hg Histogram) Name() string {
	if hg.Privatized {
		return "histogram-priv"
	}
	return "histogram"
}

// Blocks returns k: one warp per b input elements.
func (hg Histogram) Blocks(b int) int { return ceilDiv(hg.N, b) }

// stride is the padded row length of the privatized layout: the smallest odd
// value ≥ Bins, so that lane rows start at coprime offsets to the b banks
// (b is a power of two) and both phases are bank-conflict-free.
func (hg Histogram) stride() int {
	if hg.Bins%2 == 0 {
		return hg.Bins + 1
	}
	return hg.Bins
}

// SharedWordsPerBlock returns m: the shared histogram (contended) or b
// padded private copies (privatized). Privatization trades occupancy for
// contention — visible directly in the cost estimate's ℓ.
func (hg Histogram) SharedWordsPerBlock(b int) int {
	if hg.Privatized {
		return b * hg.stride()
	}
	return hg.Bins
}

// GlobalWords returns the device footprint: input plus result bins.
func (hg Histogram) GlobalWords() int { return hg.N + hg.Bins }

// histOpsPerThread approximates the straight-line per-thread operation count
// of the binning phase (address arithmetic included).
const histOpsPerThread = 12

// Analyze returns the ATGPU account: one round, t = Θ(Bins/b) for the
// zero/flush loops plus Θ(1) binning, q = k input transactions plus the
// flush traffic, I = n, O = Bins. The contended variant's atomic
// serialisation is NOT in these counts — it is the contention term the
// static analyzer adds on top (CostEstimate.ContendedSeconds), which is the
// point of the workload.
func (hg Histogram) Analyze(p core.Params) (*core.Analysis, error) {
	if hg.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, hg.N)
	}
	if hg.Bins <= 0 {
		return nil, fmt.Errorf("%w: bins=%d", ErrBadSize, hg.Bins)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := hg.Blocks(p.B)
	binLoops := ceilDiv(hg.Bins, p.B)
	a := &core.Analysis{
		Name:   hg.Name(),
		Params: p,
		Rounds: []core.Round{{
			Time:            float64(histOpsPerThread + 6*binLoops),
			IO:              float64(k * (1 + binLoops)),
			GlobalWords:     hg.GlobalWords(),
			SharedWords:     hg.SharedWordsPerBlock(p.B),
			Blocks:          k,
			InWords:         hg.N,
			InTransactions:  1,
			OutWords:        hg.Bins,
			OutTransactions: 1,
		}},
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report the AGPU baseline would give.
func (hg Histogram) AGPU() models.AGPUReport {
	return models.AGPUReport{
		Algorithm:        hg.Name(),
		TimeComplexity:   "O(Bins/b)",
		IOComplexity:     "O(k·Bins/b)",
		GlobalComplexity: "O(n + Bins)",
		SharedComplexity: "O(Bins)",
	}
}

// Kernel builds the histogram kernel for input at baseIn and result bins at
// baseOut. Requires b to be a power of two for the privatized layout's
// conflict-freedom argument.
func (hg Histogram) Kernel(b int, baseIn, baseOut int) (*kernel.Program, error) {
	if hg.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, hg.N)
	}
	if hg.Bins <= 0 {
		return nil, fmt.Errorf("%w: bins=%d", ErrBadSize, hg.Bins)
	}
	if hg.Privatized && !isPow2(b) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, b)
	}
	kb := kernel.NewBuilder(fmt.Sprintf("%s-n%d-bins%d", hg.Name(), hg.N, hg.Bins),
		hg.SharedWordsPerBlock(b))

	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	zero := kb.Reg("zero")
	kb.Const(zero, 0)
	addr := kb.Reg("addr")
	one := kb.Reg("one")
	kb.Const(one, 1)

	if hg.Privatized {
		stride := int64(hg.stride())
		rowBase := kb.Reg("rowBase")
		kb.Mul(rowBase, j, kernel.Imm(stride))
		// Zero this lane's private row.
		kb.ForDo(kernel.Imm(0), kernel.Imm(int64(hg.Bins)), 1, func(i kernel.Reg) {
			kb.Add(addr, rowBase, kernel.R(i))
			kb.StShared(addr, zero)
		})
		kb.Barrier()

		// Bin: each lane increments its own copy — conflict-free.
		inRange := kb.Reg("inRange")
		kb.Slt(inRange, idx, kernel.Imm(int64(hg.N)))
		v := kb.Reg("v")
		bin := kb.Reg("bin")
		old := kb.Reg("old")
		kb.IfDo(inRange, func() {
			kb.Add(addr, idx, kernel.Imm(int64(baseIn)))
			kb.LdGlobal(v, addr)
			kb.Mod(bin, v, kernel.Imm(int64(hg.Bins)))
			kb.Add(addr, rowBase, kernel.R(bin))
			kb.AtomAdd(kernel.AtomShared, old, addr, one)
		})
		kb.Barrier()

		// Reduce: lane j sums bin j, j+b, … across all b private rows and
		// flushes with one global atomic per bin. Loops must be warp-uniform,
		// so the lane stride is an if-guarded uniform loop over ⌈Bins/b⌉
		// rounds. The inner loads hit distinct banks across lanes thanks to
		// the odd stride.
		sum := kb.Reg("sum")
		t := kb.Reg("t")
		bn := kb.Reg("bn")
		inBins := kb.Reg("inBins")
		kb.ForDo(kernel.Imm(0), kernel.Imm(int64(ceilDiv(hg.Bins, b))), 1, func(r kernel.Reg) {
			kb.Mul(bn, r, kernel.Imm(int64(b)))
			kb.Add(bn, bn, kernel.R(j))
			kb.Slt(inBins, bn, kernel.Imm(int64(hg.Bins)))
			kb.Const(sum, 0)
			kb.ForDo(kernel.Imm(0), kernel.Imm(int64(b)), 1, func(l kernel.Reg) {
				kb.Mul(addr, l, kernel.Imm(stride))
				kb.Add(addr, addr, kernel.R(bn))
				kb.IfDo(inBins, func() {
					kb.LdShared(t, addr)
					kb.Add(sum, sum, kernel.R(t))
				})
			})
			kb.IfDo(inBins, func() {
				kb.Add(addr, bn, kernel.Imm(int64(baseOut)))
				kb.AtomAdd(kernel.AtomGlobal, old, addr, sum)
			})
		})
		kb.Release(inRange, v, bin, old, sum, t, bn, inBins, rowBase)
		return kb.Build()
	}

	// Contended: one shared histogram, atomically shared by all lanes. Lane
	// strides are if-guarded uniform loops (the device traps divergent loop
	// conditions).
	pos := kb.Reg("pos")
	inBins := kb.Reg("inBins")
	binRounds := int64(ceilDiv(hg.Bins, b))
	kb.ForDo(kernel.Imm(0), kernel.Imm(binRounds), 1, func(r kernel.Reg) {
		kb.Mul(pos, r, kernel.Imm(int64(b)))
		kb.Add(pos, pos, kernel.R(j))
		kb.Slt(inBins, pos, kernel.Imm(int64(hg.Bins)))
		kb.IfDo(inBins, func() {
			kb.StShared(pos, zero)
		})
	})
	kb.Barrier()

	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(int64(hg.N)))
	v := kb.Reg("v")
	bin := kb.Reg("bin")
	old := kb.Reg("old")
	kb.IfDo(inRange, func() {
		kb.Add(addr, idx, kernel.Imm(int64(baseIn)))
		kb.LdGlobal(v, addr)
		kb.Mod(bin, v, kernel.Imm(int64(hg.Bins)))
		kb.AtomAdd(kernel.AtomShared, old, bin, one)
	})
	kb.Barrier()

	// Flush block-local counts into the global bins.
	cnt := kb.Reg("cnt")
	kb.ForDo(kernel.Imm(0), kernel.Imm(binRounds), 1, func(r kernel.Reg) {
		kb.Mul(pos, r, kernel.Imm(int64(b)))
		kb.Add(pos, pos, kernel.R(j))
		kb.Slt(inBins, pos, kernel.Imm(int64(hg.Bins)))
		kb.IfDo(inBins, func() {
			kb.LdShared(cnt, pos)
			kb.Add(addr, pos, kernel.Imm(int64(baseOut)))
			kb.AtomAdd(kernel.AtomGlobal, old, addr, cnt)
		})
	})
	kb.Release(inRange, v, bin, old, cnt, pos, inBins)
	return kb.Build()
}

// Run executes the round plan: transfer the input in, zero the bins, launch,
// transfer the bins out. Inputs must be non-negative (binned by v mod Bins).
func (hg Histogram) Run(h *simgpu.Host, in []Word) ([]Word, error) {
	if err := checkLen("in", len(in), hg.N); err != nil {
		return nil, err
	}
	for i, v := range in {
		if v < 0 {
			return nil, fmt.Errorf("%w: in[%d] = %d is negative", ErrBadShape, i, v)
		}
	}
	width := h.Device().Config().WarpWidth

	baseIn, err := h.Malloc(hg.N)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	baseOut, err := h.Malloc(hg.Bins)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}

	prog, err := hg.Kernel(width, baseIn, baseOut)
	if err != nil {
		return nil, err
	}

	if err := h.TransferIn(baseIn, in); err != nil {
		return nil, err
	}
	if err := h.TransferIn(baseOut, make([]Word, hg.Bins)); err != nil {
		return nil, err
	}
	if _, err := h.Launch(prog, hg.Blocks(width)); err != nil {
		return nil, err
	}
	out, err := h.TransferOut(baseOut, hg.Bins)
	if err != nil {
		return nil, err
	}
	h.EndRound()
	return out, nil
}

// HistogramReference computes the histogram on the CPU.
func HistogramReference(in []Word, bins int) ([]Word, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("%w: bins=%d", ErrBadSize, bins)
	}
	out := make([]Word, bins)
	for i, v := range in {
		if v < 0 {
			return nil, fmt.Errorf("%w: in[%d] = %d is negative", ErrBadShape, i, v)
		}
		out[v%Word(bins)]++
	}
	return out, nil
}
