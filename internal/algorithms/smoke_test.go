package algorithms

import (
	"math/rand"
	"testing"

	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// newTestHost builds a host over the Tiny device with enough global memory
// for the requested words.
func newTestHost(t testing.TB, globalWords int) *simgpu.Host {
	t.Helper()
	cfg := simgpu.Tiny()
	if globalWords > cfg.GlobalWords {
		cfg.GlobalWords = globalWords
	}
	dev, err := simgpu.New(cfg)
	if err != nil {
		t.Fatalf("New device: %v", err)
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	h, err := simgpu.NewHost(dev, eng, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return h
}

func randWords(n int, seed int64) []Word {
	rng := rand.New(rand.NewSource(seed))
	w := make([]Word, n)
	for i := range w {
		w[i] = Word(rng.Intn(2001) - 1000)
	}
	return w
}

func TestVecAddSmoke(t *testing.T) {
	for _, n := range []int{1, 3, 4, 5, 16, 33, 100} {
		h := newTestHost(t, 3*n+64)
		a := randWords(n, 1)
		b := randWords(n, 2)
		got, err := VecAdd{N: n}.Run(h, a, b)
		if err != nil {
			t.Fatalf("n=%d: Run: %v", n, err)
		}
		want, err := VecAddReference(a, b)
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: c[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		if h.TotalTime() <= 0 {
			t.Errorf("n=%d: total time not positive: %v", n, h.TotalTime())
		}
		if h.KernelTime() <= 0 {
			t.Errorf("n=%d: kernel time not positive: %v", n, h.KernelTime())
		}
	}
}

func TestReduceSmoke(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 16, 17, 64, 100, 1000} {
		h := newTestHost(t, 2*n+64)
		in := randWords(n, int64(n))
		got, err := Reduce{N: n}.Run(h, in)
		if err != nil {
			t.Fatalf("n=%d: Run: %v", n, err)
		}
		want := ReduceReference(in)
		if got != want {
			t.Fatalf("n=%d: sum = %d, want %d", n, got, want)
		}
	}
}

func TestMatMulSmoke(t *testing.T) {
	for _, n := range []int{4, 8, 16} { // Tiny warp width is 4
		h := newTestHost(t, 3*n*n+64)
		a := randWords(n*n, int64(n))
		b := randWords(n*n, int64(n)+100)
		got, err := MatMul{N: n}.Run(h, a, b)
		if err != nil {
			t.Fatalf("n=%d: Run: %v", n, err)
		}
		want, err := MatMulReference(a, b, n)
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: c[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}
