package algorithms

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestDotSmoke(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 16, 17, 100, 1000} {
		alg := Dot{N: n}
		h := newTestHost(t, alg.GlobalWords(4)+64)
		x := randWords(n, int64(n))
		y := randWords(n, int64(n)+99)
		got, err := alg.Run(h, x, y)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := DotReference(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d: dot = %d, want %d", n, got, want)
		}
	}
}

func TestDotAnalysisMatchesSimulator(t *testing.T) {
	for _, n := range []int{4, 5, 16, 100, 1000} {
		alg := Dot{N: n}
		h := newTestHost(t, alg.GlobalWords(4)+64)
		width := h.Device().Config().WarpWidth

		analysis, err := alg.Analyze(tinyParams((n + width - 1) / width))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := randWords(n, 13)
		y := randWords(n, 14)
		if _, err := alg.Run(h, x, y); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if h.Rounds() != analysis.R() {
			t.Errorf("n=%d: rounds = %d, analysis %d", n, h.Rounds(), analysis.R())
		}
		ks := h.KernelStats()
		if got, want := float64(ks.GlobalTransactions), analysis.TotalIO(); got != want {
			t.Errorf("n=%d: observed q = %g, analysis %g", n, got, want)
		}
		ts := h.TransferStats()
		if got, want := ts.TotalWords(), analysis.TotalTransferWords(); got != want {
			t.Errorf("n=%d: transfer words = %d, analysis %d", n, got, want)
		}
		if ts.InTransactions != 2 {
			t.Errorf("n=%d: inward transactions = %d, want 2 (two vectors)", n, ts.InTransactions)
		}
	}
}

// Dot's transfer share must exceed plain reduction's at the same n: twice
// the inward words for near-identical kernel work.
func TestDotTransfersMoreThanReduce(t *testing.T) {
	n := 4096
	hd := newTestHost(t, (Dot{N: n}).GlobalWords(4)+64)
	if _, err := (Dot{N: n}).Run(hd, randWords(n, 1), randWords(n, 2)); err != nil {
		t.Fatal(err)
	}
	hr := newTestHost(t, (Reduce{N: n}).GlobalWords(4)+64)
	if _, err := (Reduce{N: n}).Run(hr, randWords(n, 1)); err != nil {
		t.Fatal(err)
	}
	dDot := hd.Report().TransferFraction()
	dRed := hr.Report().TransferFraction()
	if dDot <= dRed {
		t.Fatalf("dot ΔE %.3f should exceed reduce ΔE %.3f", dDot, dRed)
	}
}

func TestDotValidation(t *testing.T) {
	if _, err := (Dot{N: 0}).Analyze(tinyParams(1)); !errors.Is(err, ErrBadSize) {
		t.Errorf("n=0: %v", err)
	}
	h := newTestHost(t, 1024)
	if _, err := (Dot{N: 4}).Run(h, make([]Word, 4), make([]Word, 3)); !errors.Is(err, ErrBadShape) {
		t.Errorf("length mismatch: %v", err)
	}
	if _, err := DotReference(make([]Word, 2), make([]Word, 3)); !errors.Is(err, ErrBadShape) {
		t.Errorf("reference mismatch: %v", err)
	}
}

// Property: the simulated dot product matches the reference, and is
// symmetric in its arguments.
func TestDotAgreesWithReferenceProperty(t *testing.T) {
	f := func(raw []int16) bool {
		n := len(raw) + 1
		x := make([]Word, n)
		y := make([]Word, n)
		for i := 0; i < len(raw); i++ {
			x[i] = Word(raw[i])
			y[i] = Word(raw[len(raw)-1-i])
		}
		x[n-1], y[n-1] = 3, -4
		alg := Dot{N: n}
		h := newTestHost(t, alg.GlobalWords(4)+64)
		got, err := alg.Run(h, x, y)
		if err != nil {
			return false
		}
		want, err := DotReference(x, y)
		if err != nil {
			return false
		}
		h2 := newTestHost(t, alg.GlobalWords(4)+64)
		sym, err := alg.Run(h2, y, x)
		if err != nil {
			return false
		}
		return got == want && sym == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
