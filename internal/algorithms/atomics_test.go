package algorithms

import (
	"sort"
	"testing"

	"atgpu/internal/core"
	"atgpu/internal/simgpu"
)

// sortedCopy returns a sorted copy for multiset comparisons of workloads
// whose output order is schedule-dependent.
func sortedCopy(w []Word) []Word {
	s := make([]Word, len(w))
	copy(s, w)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func equalWords(a, b []Word) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nonNegWords returns deterministic pseudo-random non-negative inputs.
func nonNegWords(n int, seed int64) []Word {
	w := randWords(n, seed)
	for i := range w {
		if w[i] < 0 {
			w[i] = -w[i]
		}
	}
	return w
}

func TestHistogramSmoke(t *testing.T) {
	for _, priv := range []bool{false, true} {
		for _, tc := range []struct{ n, bins int }{
			{1, 1}, {4, 2}, {5, 3}, {16, 7}, {33, 8}, {100, 5}, {64, 1},
		} {
			hg := Histogram{N: tc.n, Bins: tc.bins, Privatized: priv}
			h := newTestHost(t, hg.GlobalWords()+64)
			in := nonNegWords(tc.n, int64(tc.n+tc.bins))
			got, err := hg.Run(h, in)
			if err != nil {
				t.Fatalf("%s n=%d bins=%d: Run: %v", hg.Name(), tc.n, tc.bins, err)
			}
			want, err := HistogramReference(in, tc.bins)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			if !equalWords(got, want) {
				t.Fatalf("%s n=%d bins=%d: got %v want %v", hg.Name(), tc.n, tc.bins, got, want)
			}
		}
	}
}

// TestHistogramContentionStats pins the contention counters: a fully skewed
// input (every value in one bin) serialises all active lanes of each warp,
// while the privatized kernel's binning phase stays conflict-free.
func TestHistogramContentionStats(t *testing.T) {
	const n, bins = 64, 8
	skew := make([]Word, n)
	for i := range skew {
		skew[i] = 3 // every element lands in bin 3
	}

	hg := Histogram{N: n, Bins: bins}
	h := newTestHost(t, hg.GlobalWords()+64)
	width := h.Device().Config().WarpWidth
	if _, err := hg.Run(h, skew); err != nil {
		t.Fatalf("contended Run: %v", err)
	}
	st := h.KernelStats()
	if st.AtomicAccesses == 0 {
		t.Fatalf("contended: no atomic accesses recorded: %+v", st)
	}
	if st.MaxAtomicDegree != width {
		t.Errorf("contended: MaxAtomicDegree = %d, want %d (fully skewed warp)",
			st.MaxAtomicDegree, width)
	}
	if st.AtomicSerialisations == 0 {
		t.Errorf("contended: no serialisations on a fully skewed input: %+v", st)
	}

	hp := Histogram{N: n, Bins: bins, Privatized: true}
	h2 := newTestHost(t, hp.GlobalWords()+64)
	if _, err := hp.Run(h2, skew); err != nil {
		t.Fatalf("privatized Run: %v", err)
	}
	st2 := h2.KernelStats()
	if st2.AtomicAccesses == 0 {
		t.Fatalf("privatized: no atomic accesses recorded: %+v", st2)
	}
	// The shared-phase updates are conflict-free by layout; only the global
	// flush may serialise across lanes, and it targets distinct bins, so the
	// shared-atomic degree must be 1. Serialisation therefore must be strictly
	// lower than the contended twin's.
	if st2.AtomicSerialisations >= st.AtomicSerialisations {
		t.Errorf("privatized serialisations %d not below contended %d",
			st2.AtomicSerialisations, st.AtomicSerialisations)
	}
	// The observed contention factor 1 + Ser/Acc must be strictly lower for
	// the privatized kernel. (Wall clock need not be: at Tiny's warp width
	// the privatization overhead outweighs the 4-way serialisation it
	// removes, which is exactly the trade-off the cost model exposes.)
	factor := func(s simgpu.KernelStats) float64 {
		return 1 + float64(s.AtomicSerialisations)/float64(s.AtomicAccesses)
	}
	if factor(st2) >= factor(st) {
		t.Errorf("privatized contention factor %.3f not below contended %.3f",
			factor(st2), factor(st))
	}
}

func TestCompactSmoke(t *testing.T) {
	for _, n := range []int{1, 3, 4, 5, 16, 33, 100} {
		c := Compact{N: n}
		h := newTestHost(t, c.GlobalWords()+64)
		in := randWords(n, int64(n))
		// Force some zeros so both branches of the keep test are exercised.
		for i := 0; i < n; i += 3 {
			in[i] = 0
		}
		got, err := c.Run(h, in)
		if err != nil {
			t.Fatalf("n=%d: Run: %v", n, err)
		}
		want := CompactReference(in)
		if !equalWords(sortedCopy(got), sortedCopy(want)) {
			t.Fatalf("n=%d: got multiset %v want %v", n, sortedCopy(got), sortedCopy(want))
		}
	}
}

func TestCompactAllAndNone(t *testing.T) {
	const n = 20
	c := Compact{N: n}

	h := newTestHost(t, c.GlobalWords()+64)
	all := make([]Word, n)
	for i := range all {
		all[i] = Word(i + 1)
	}
	got, err := c.Run(h, all)
	if err != nil {
		t.Fatalf("all-keep Run: %v", err)
	}
	if len(got) != n {
		t.Fatalf("all-keep: %d survivors, want %d", len(got), n)
	}

	h2 := newTestHost(t, c.GlobalWords()+64)
	got, err = c.Run(h2, make([]Word, n))
	if err != nil {
		t.Fatalf("none-keep Run: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("none-keep: %d survivors, want 0", len(got))
	}
}

func TestTopKSmoke(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {4, 2}, {5, 4}, {16, 3}, {33, 8}, {100, 4}, {3, 5},
	} {
		tk := TopK{N: tc.n, K: tc.k}
		h := newTestHost(t, tk.GlobalWords()+64)
		in := randWords(tc.n, int64(tc.n*7+tc.k))
		got, err := tk.Run(h, in)
		if err != nil {
			t.Fatalf("n=%d k=%d: Run: %v", tc.n, tc.k, err)
		}
		want, err := TopKReference(in, tc.k)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if !equalWords(sortedCopy(got), sortedCopy(want)) {
			t.Fatalf("n=%d k=%d: got multiset %v want %v",
				tc.n, tc.k, sortedCopy(got), sortedCopy(want))
		}
	}
}

// TestTopKDuplicates pins the multiset argument: duplicated maxima must
// appear in the slots with their multiplicity.
func TestTopKDuplicates(t *testing.T) {
	in := []Word{7, 7, 7, 1, 2, 7, 3, 7}
	tk := TopK{N: len(in), K: 4}
	h := newTestHost(t, tk.GlobalWords()+64)
	got, err := tk.Run(h, in)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Word{7, 7, 7, 7}
	if !equalWords(sortedCopy(got), want) {
		t.Fatalf("got multiset %v want %v", sortedCopy(got), want)
	}
}

func TestMonteCarloSmoke(t *testing.T) {
	for _, tc := range []struct{ n, trials int }{
		{1, 1}, {4, 8}, {5, 3}, {16, 16}, {33, 5},
	} {
		mc := MonteCarlo{N: tc.n, Trials: tc.trials}
		h := newTestHost(t, 64)
		got, err := mc.Run(h)
		if err != nil {
			t.Fatalf("n=%d trials=%d: Run: %v", tc.n, tc.trials, err)
		}
		want, err := mc.MonteCarloReference()
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if got != want {
			t.Fatalf("n=%d trials=%d: hits = %d, want %d", tc.n, tc.trials, got, want)
		}
		if got < 0 || got > Word(tc.n*tc.trials) {
			t.Fatalf("hits %d outside [0, %d]", got, tc.n*tc.trials)
		}
	}
}

// TestAtomicWorkloadAnalyses checks every new workload produces a feasible
// ATGPU analysis on a Tiny-like parameter set.
func TestAtomicWorkloadAnalyses(t *testing.T) {
	p := core.Params{P: 4, B: 4, M: 64, G: 1 << 20}
	checks := []struct {
		name string
		run  func() error
	}{
		{"histogram", func() error { _, err := Histogram{N: 64, Bins: 8}.Analyze(p); return err }},
		{"histogram-priv", func() error {
			_, err := Histogram{N: 64, Bins: 8, Privatized: true}.Analyze(p)
			return err
		}},
		{"compact", func() error { _, err := Compact{N: 64}.Analyze(p); return err }},
		{"topk", func() error { _, err := TopK{N: 64, K: 4}.Analyze(p); return err }},
		{"montecarlo", func() error { _, err := MonteCarlo{N: 64, Trials: 8}.Analyze(p); return err }},
	}
	for _, c := range checks {
		if err := c.run(); err != nil {
			t.Errorf("%s: Analyze: %v", c.name, err)
		}
	}
}

func TestBuiltinKernelAtomics(t *testing.T) {
	for _, alg := range []string{"histogram", "histogram-priv", "compact", "topk", "montecarlo"} {
		prog, blocks, err := BuiltinKernel(alg, 32, 4)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if prog == nil || blocks <= 0 {
			t.Fatalf("%s: prog=%v blocks=%d", alg, prog, blocks)
		}
	}
}
