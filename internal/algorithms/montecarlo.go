package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// LCG parameters (glibc constants) and derived draw geometry. State is
// masked to 31 bits so every product stays far inside int64.
const (
	mcMulA  = 1103515245
	mcAddC  = 12345
	mcMask  = 1<<31 - 1
	mcCoord = 1023                          // coordinate mask: x, y ∈ [0, 1023]
	mcR2    = (mcCoord + 1) * (mcCoord + 1) // radius² of the quarter circle
)

// MonteCarlo estimates π/4 by dart-throwing: each thread runs Trials LCG
// draws, counts lattice hits inside the quarter circle in a register, and
// folds its count with a single shared atomadd — the warp-replicated
// contention pattern where all b lanes target one cell, the analyzer's
// worst shared-atomic case. Lane 0 then folds the block total into the
// one-word global result with a global atomadd. The LCG is seeded by thread
// index, so a CPU replay reproduces the count exactly.
type MonteCarlo struct {
	// N is the number of threads (total streams).
	N int
	// Trials is the number of draws per thread.
	Trials int
}

// Name identifies the workload.
func (mc MonteCarlo) Name() string { return "montecarlo" }

// Blocks returns k: one warp per b threads.
func (mc MonteCarlo) Blocks(b int) int { return ceilDiv(mc.N, b) }

// SharedWordsPerBlock returns m = 1: the block accumulator every lane
// atomically updates.
func (mc MonteCarlo) SharedWordsPerBlock(int) int { return 1 }

// GlobalWords returns the device footprint: the one-word result.
func (mc MonteCarlo) GlobalWords() int { return 1 }

// mcOpsPerTrial approximates the straight-line operations of one draw.
const mcOpsPerTrial = 10

// Analyze returns the ATGPU account: one round, t = Θ(Trials), q = k (one
// result transaction per block), no input transfer, O = 1. The b-way
// serialisation on the block accumulator is the contention term.
func (mc MonteCarlo) Analyze(p core.Params) (*core.Analysis, error) {
	if mc.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, mc.N)
	}
	if mc.Trials <= 0 {
		return nil, fmt.Errorf("%w: trials=%d", ErrBadSize, mc.Trials)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := mc.Blocks(p.B)
	a := &core.Analysis{
		Name:   mc.Name(),
		Params: p,
		Rounds: []core.Round{{
			Time:            float64(8 + mcOpsPerTrial*mc.Trials),
			IO:              float64(k),
			GlobalWords:     1,
			SharedWords:     1,
			Blocks:          k,
			InWords:         1,
			InTransactions:  1,
			OutWords:        1,
			OutTransactions: 1,
		}},
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report the AGPU baseline would give.
func (mc MonteCarlo) AGPU() models.AGPUReport {
	return models.AGPUReport{
		Algorithm:        mc.Name(),
		TimeComplexity:   "O(Trials)",
		IOComplexity:     "O(k)",
		GlobalComplexity: "O(1)",
		SharedComplexity: "O(1)",
	}
}

// Kernel builds the estimator kernel with the one-word result at baseOut.
// The trial loop runs on every lane (uniform); out-of-range lanes simply do
// not contribute their count.
func (mc MonteCarlo) Kernel(b int, baseOut int) (*kernel.Program, error) {
	if mc.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, mc.N)
	}
	if mc.Trials <= 0 {
		return nil, fmt.Errorf("%w: trials=%d", ErrBadSize, mc.Trials)
	}
	kb := kernel.NewBuilder(fmt.Sprintf("montecarlo-n%d-t%d", mc.N, mc.Trials), 1)

	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	// Lane 0 zeroes the block accumulator.
	isLane0 := kb.Reg("isLane0")
	zero := kb.Reg("zero")
	acc := kb.Reg("accAddr")
	kb.Seq(isLane0, j, kernel.Imm(0))
	kb.Const(zero, 0)
	kb.Const(acc, 0)
	kb.IfDo(isLane0, func() {
		kb.StShared(acc, zero)
	})
	kb.Barrier()

	// Per-thread LCG stream seeded by thread index (offset so lane 0 does
	// not start at the fixed point of the zero seed).
	seed := kb.Reg("seed")
	kb.Add(seed, idx, kernel.Imm(1))
	kb.Mul(seed, seed, kernel.Imm(2654435761))
	kb.And(seed, seed, kernel.Imm(mcMask))

	hits := kb.Reg("hits")
	x := kb.Reg("x")
	y := kb.Reg("y")
	d := kb.Reg("d")
	in := kb.Reg("in")
	kb.Const(hits, 0)
	kb.ForDo(kernel.Imm(0), kernel.Imm(int64(mc.Trials)), 1, func(kernel.Reg) {
		kb.Mul(seed, seed, kernel.Imm(mcMulA))
		kb.Add(seed, seed, kernel.Imm(mcAddC))
		kb.And(seed, seed, kernel.Imm(mcMask))
		kb.And(x, seed, kernel.Imm(mcCoord))
		kb.Shr(y, seed, kernel.Imm(10))
		kb.And(y, y, kernel.Imm(mcCoord))
		kb.Mul(x, x, kernel.R(x))
		kb.Mul(y, y, kernel.R(y))
		kb.Add(d, x, kernel.R(y))
		kb.Slt(in, d, kernel.Imm(mcR2))
		kb.Add(hits, hits, kernel.R(in))
	})

	// Fold: every in-range lane atomically adds its count to the block
	// accumulator (b-way contention by construction), then lane 0 folds the
	// block total into the global result.
	inRange := kb.Reg("inRange")
	old := kb.Reg("old")
	kb.Slt(inRange, idx, kernel.Imm(int64(mc.N)))
	kb.IfDo(inRange, func() {
		kb.AtomAdd(kernel.AtomShared, old, acc, hits)
	})
	kb.Barrier()
	total := kb.Reg("total")
	addr := kb.Reg("addr")
	kb.IfDo(isLane0, func() {
		kb.LdShared(total, acc)
		kb.Const(addr, int64(baseOut))
		kb.AtomAdd(kernel.AtomGlobal, old, addr, total)
	})
	kb.Release(isLane0, zero, seed, hits, x, y, d, in, inRange, old, total, addr)
	return kb.Build()
}

// Run executes the round plan and returns the total hit count.
func (mc MonteCarlo) Run(h *simgpu.Host) (Word, error) {
	width := h.Device().Config().WarpWidth

	baseOut, err := h.Malloc(1)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	prog, err := mc.Kernel(width, baseOut)
	if err != nil {
		return 0, err
	}
	if err := h.TransferIn(baseOut, []Word{0}); err != nil {
		return 0, err
	}
	if _, err := h.Launch(prog, mc.Blocks(width)); err != nil {
		return 0, err
	}
	out, err := h.TransferOut(baseOut, 1)
	if err != nil {
		return 0, err
	}
	h.EndRound()
	return out[0], nil
}

// MonteCarloReference replays every thread's LCG stream on the CPU and
// returns the exact hit count the device must produce.
func (mc MonteCarlo) MonteCarloReference() (Word, error) {
	if mc.N <= 0 {
		return 0, fmt.Errorf("%w: n=%d", ErrBadSize, mc.N)
	}
	if mc.Trials <= 0 {
		return 0, fmt.Errorf("%w: trials=%d", ErrBadSize, mc.Trials)
	}
	var hits Word
	for t := 0; t < mc.N; t++ {
		seed := ((int64(t) + 1) * 2654435761) & mcMask
		for i := 0; i < mc.Trials; i++ {
			seed = (seed*mcMulA + mcAddC) & mcMask
			x := seed & mcCoord
			y := (seed >> 10) & mcCoord
			if x*x+y*y < mcR2 {
				hits++
			}
		}
	}
	return hits, nil
}
