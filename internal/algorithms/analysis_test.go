package algorithms

import (
	"errors"
	"testing"

	"atgpu/internal/core"
	"atgpu/internal/simgpu"
)

// tinyParams returns a perfect-GPU model instance matching the Tiny device
// geometry for blocks thread blocks.
func tinyParams(blocks int) core.Params {
	cfg := simgpu.Tiny()
	return core.ForProblem(blocks, cfg.WarpWidth, cfg.SharedWords, 1<<30)
}

// TestVecAddAnalysisMatchesSimulator cross-validates the §IV-A closed forms
// against the executed kernel: the analysis' qᵢ must equal the device's
// observed global transactions, and Iᵢ/Oᵢ must equal the transfer engine's
// word counts. This is the strongest form of "the model describes the
// machine".
func TestVecAddAnalysisMatchesSimulator(t *testing.T) {
	for _, n := range []int{4, 16, 64, 100} {
		alg := VecAdd{N: n}
		h := newTestHost(t, alg.GlobalWords()+64)
		width := h.Device().Config().WarpWidth

		analysis, err := alg.Analyze(tinyParams(alg.Blocks(width)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		a := randWords(n, 1)
		b := randWords(n, 2)
		if _, err := alg.Run(h, a, b); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}

		ks := h.KernelStats()
		if got, want := float64(ks.GlobalTransactions), analysis.TotalIO(); got != want {
			t.Errorf("n=%d: observed q = %g, analysis says %g", n, got, want)
		}
		ts := h.TransferStats()
		r := analysis.Rounds[0]
		if ts.InWords != r.InWords || ts.OutWords != r.OutWords {
			t.Errorf("n=%d: transfer words in/out = %d/%d, analysis %d/%d",
				n, ts.InWords, ts.OutWords, r.InWords, r.OutWords)
		}
		if ts.InTransactions != r.InTransactions || ts.OutTransactions != r.OutTransactions {
			t.Errorf("n=%d: transfer txns in/out = %d/%d, analysis %d/%d",
				n, ts.InTransactions, ts.OutTransactions, r.InTransactions, r.OutTransactions)
		}
		if h.Rounds() != analysis.R() {
			t.Errorf("n=%d: rounds = %d, analysis %d", n, h.Rounds(), analysis.R())
		}
		// The kernel must be fully coalesced and conflict-free, as the
		// analysis assumes.
		if ks.UncoalescedAccesses != 0 {
			t.Errorf("n=%d: %d uncoalesced accesses", n, ks.UncoalescedAccesses)
		}
		if ks.BankConflicts != 0 {
			t.Errorf("n=%d: %d bank conflicts", n, ks.BankConflicts)
		}
	}
}

// TestReduceAnalysisMatchesSimulator does the same for the multi-round
// reduction: per-round block counts, total q, transfer totals and R.
func TestReduceAnalysisMatchesSimulator(t *testing.T) {
	for _, n := range []int{4, 5, 16, 17, 64, 1000} {
		alg := Reduce{N: n}
		h := newTestHost(t, alg.GlobalWords(4)+64)
		width := h.Device().Config().WarpWidth

		analysis, err := alg.Analyze(tinyParams((n + width - 1) / width))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		in := randWords(n, int64(n))
		if _, err := alg.Run(h, in); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}

		if h.Rounds() != analysis.R() {
			t.Errorf("n=%d: rounds = %d, analysis %d", n, h.Rounds(), analysis.R())
		}
		ks := h.KernelStats()
		if got, want := float64(ks.GlobalTransactions), analysis.TotalIO(); got != want {
			t.Errorf("n=%d: observed q = %g, analysis %g", n, got, want)
		}
		ts := h.TransferStats()
		if got, want := ts.TotalWords(), analysis.TotalTransferWords(); got != want {
			t.Errorf("n=%d: transfer words = %d, analysis %d", n, got, want)
		}
		blocks := int64(0)
		for _, r := range analysis.Rounds {
			blocks += int64(r.Blocks)
		}
		if ks.BlocksExecuted != blocks {
			t.Errorf("n=%d: blocks executed = %d, analysis %d", n, ks.BlocksExecuted, blocks)
		}
		if ks.BankConflicts != 0 {
			t.Errorf("n=%d: %d bank conflicts (kernel should be conflict-free)", n, ks.BankConflicts)
		}
	}
}

// TestMatMulAnalysisMatchesSimulator validates q = (n/b)²(2n+b) and the
// transfer counts against execution.
func TestMatMulAnalysisMatchesSimulator(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		alg := MatMul{N: n}
		h := newTestHost(t, alg.GlobalWords()+64)
		width := h.Device().Config().WarpWidth

		analysis, err := alg.Analyze(tinyParams(alg.Blocks(width)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		a := randWords(n*n, 3)
		b := randWords(n*n, 4)
		if _, err := alg.Run(h, a, b); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}

		ks := h.KernelStats()
		if got, want := float64(ks.GlobalTransactions), analysis.TotalIO(); got != want {
			t.Errorf("n=%d: observed q = %g, analysis %g ((n/b)²(2n+b))", n, got, want)
		}
		ts := h.TransferStats()
		r := analysis.Rounds[0]
		if ts.InWords != r.InWords || ts.OutWords != r.OutWords {
			t.Errorf("n=%d: transfer words = %d/%d, analysis %d/%d",
				n, ts.InWords, ts.OutWords, r.InWords, r.OutWords)
		}
		if ks.UncoalescedAccesses != 0 {
			t.Errorf("n=%d: %d uncoalesced accesses", n, ks.UncoalescedAccesses)
		}
		if ks.BankConflicts != 0 {
			t.Errorf("n=%d: %d bank conflicts", n, ks.BankConflicts)
		}
	}
}

// TestAnalysisOpsCountsApproximateKernel: the model's tᵢ (operations per
// thread) must be within 2× of the executed per-warp instruction stream —
// constants may differ slightly, asymptotics may not.
func TestAnalysisOpsCountsApproximateKernel(t *testing.T) {
	check := func(name string, analysisOps float64, observed int64) {
		t.Helper()
		if analysisOps <= 0 || observed <= 0 {
			t.Fatalf("%s: degenerate ops (analysis %g, observed %d)", name, analysisOps, observed)
		}
		ratio := analysisOps / float64(observed)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: analysis t=%g vs observed max warp instrs %d (ratio %.2f)",
				name, analysisOps, observed, ratio)
		}
	}

	// VecAdd.
	{
		alg := VecAdd{N: 64}
		h := newTestHost(t, 3*64+64)
		analysis, err := alg.Analyze(tinyParams(alg.Blocks(4)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := alg.Run(h, randWords(64, 1), randWords(64, 2)); err != nil {
			t.Fatal(err)
		}
		check("vecadd", analysis.Rounds[0].Time, h.KernelStats().MaxWarpInstrs)
	}
	// Reduce (per-round kernels are identical in shape).
	{
		alg := Reduce{N: 64}
		h := newTestHost(t, 2*64+64)
		analysis, err := alg.Analyze(tinyParams(16))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := alg.Run(h, randWords(64, 3)); err != nil {
			t.Fatal(err)
		}
		check("reduce", analysis.Rounds[0].Time, h.KernelStats().MaxWarpInstrs)
	}
	// MatMul.
	{
		alg := MatMul{N: 16}
		h := newTestHost(t, 3*256+64)
		analysis, err := alg.Analyze(tinyParams(alg.Blocks(4)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := alg.Run(h, randWords(256, 5), randWords(256, 6)); err != nil {
			t.Fatal(err)
		}
		check("matmul", analysis.Rounds[0].Time, h.KernelStats().MaxWarpInstrs)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	p := tinyParams(4)
	if _, err := (VecAdd{N: 0}).Analyze(p); !errors.Is(err, ErrBadSize) {
		t.Errorf("vecadd n=0: %v", err)
	}
	if _, err := (Reduce{N: -1}).Analyze(p); !errors.Is(err, ErrBadSize) {
		t.Errorf("reduce n=-1: %v", err)
	}
	if _, err := (MatMul{N: 0}).Analyze(p); !errors.Is(err, ErrBadSize) {
		t.Errorf("matmul n=0: %v", err)
	}
	if _, err := (MatMul{N: 6}).Analyze(p); !errors.Is(err, ErrBadShape) {
		t.Errorf("matmul n not multiple of b: %v", err)
	}
	badB := core.Params{P: 6, B: 3, M: 64, G: 1 << 20}
	if _, err := (Reduce{N: 16}).Analyze(badB); !errors.Is(err, ErrNotPow2) {
		t.Errorf("reduce non-pow2 b: %v", err)
	}
	// Infeasible G.
	small := core.Params{P: 4, B: 4, M: 64, G: 10}
	if _, err := (VecAdd{N: 100}).Analyze(small); err == nil {
		t.Error("vecadd exceeding G accepted")
	}
}

func TestReduceRoundSizes(t *testing.T) {
	r := Reduce{N: 100}
	sizes := r.RoundSizes(4)
	want := []int{100, 25, 7, 2}
	if len(sizes) != len(want) {
		t.Fatalf("RoundSizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("RoundSizes = %v, want %v", sizes, want)
		}
	}
	if r.Rounds(4) != 4 {
		t.Fatalf("Rounds = %d, want 4", r.Rounds(4))
	}
	if got := (Reduce{N: 1}).RoundSizes(4); len(got) != 1 || got[0] != 1 {
		t.Fatalf("RoundSizes(n=1) = %v", got)
	}
}

func TestAGPUReports(t *testing.T) {
	for _, r := range []struct {
		name string
		rep  string
	}{
		{"vecadd", VecAdd{N: 8}.AGPU().String()},
		{"reduce", Reduce{N: 8}.AGPU().String()},
		{"matmul", MatMul{N: 8}.AGPU().String()},
	} {
		if r.rep == "" {
			t.Errorf("%s: empty AGPU report", r.name)
		}
	}
}
