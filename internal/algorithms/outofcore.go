package algorithms

import (
	"fmt"
	"time"

	"atgpu/internal/core"
	"atgpu/internal/simgpu"
)

// OutOfCoreReduce realises the paper's future-work direction (§V): "analyse
// different approaches where the data does not fit on the global memory,
// thereby requiring some sort of partitioning, and it is hoped that
// differences could be illustrated in approaches with differing host device
// communication requirements."
//
// The input of n words is processed in partitions of ChunkWords ≤ usable
// global memory. Each partition is transferred in, reduced on-device to a
// single partial (reusing the in-core Reduce kernels), and the partials are
// combined. Two host-communication disciplines are compared:
//
//   - Serial: transfer chunk i, then reduce chunk i, then transfer chunk
//     i+1 — the naive schedule, R = #chunks rounds each paying full
//     transfer plus kernel latency.
//   - Overlapped: double-buffered streams — while chunk i reduces, chunk
//     i+1 transfers. Per-step cost is max(transfer, kernel) after the
//     pipeline fills, the standard stream-overlap schedule whose benefit
//     the data-transfer literature the paper cites (Fujii et al., van
//     Werkhoven et al.) quantifies on real links.
//
// Both disciplines move identical words; only the schedule differs, so the
// comparison isolates exactly the communication-requirement effect the
// paper hoped to illustrate.
type OutOfCoreReduce struct {
	// N is the total input length (may exceed device global memory).
	N int
	// ChunkWords is the partition size; it must fit the device's usable
	// global memory alongside the partials buffer.
	ChunkWords int
}

// Name identifies the workload.
func (o OutOfCoreReduce) Name() string { return "oocreduce" }

// Chunks returns the partition count.
func (o OutOfCoreReduce) Chunks() int { return ceilDiv(o.N, o.ChunkWords) }

// OutOfCoreResult reports both schedules over identical work.
type OutOfCoreResult struct {
	// Sum is the reduction result (identical under both schedules).
	Sum Word
	// SerialTime is the end-to-end simulated time of the serial schedule.
	SerialTime time.Duration
	// OverlappedTime is the end-to-end time with transfer/compute
	// overlap.
	OverlappedTime time.Duration
	// TransferTime and KernelTime decompose the serial schedule.
	TransferTime, KernelTime time.Duration
	// Chunks is the partition count used.
	Chunks int
}

// Speedup returns SerialTime/OverlappedTime.
func (r OutOfCoreResult) Speedup() float64 {
	if r.OverlappedTime <= 0 {
		return 0
	}
	return float64(r.SerialTime) / float64(r.OverlappedTime)
}

// Run executes the partitioned reduction on the host's device. The device
// needs 2·ChunkWords (double buffer) plus partial-buffer space; Run
// returns ErrDoesNotFit otherwise. Input chunks are reduced with the
// in-core Reduce round plan; per-chunk transfer and kernel durations are
// measured individually so both schedules can be assembled exactly.
func (o OutOfCoreReduce) Run(h *simgpu.Host, input []Word) (OutOfCoreResult, error) {
	var res OutOfCoreResult
	if err := checkLen("input", len(input), o.N); err != nil {
		return res, err
	}
	if o.ChunkWords <= 0 {
		return res, fmt.Errorf("%w: chunk=%d", ErrBadSize, o.ChunkWords)
	}
	width := h.Device().Config().WarpWidth
	if !isPow2(width) {
		return res, fmt.Errorf("%w: device warp width %d", ErrNotPow2, width)
	}

	// Layout: two chunk buffers (ping-pong for overlap) and a partials
	// buffer sized for one chunk's first reduction round.
	bufA, err := h.Malloc(o.ChunkWords)
	if err != nil {
		return res, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	bufB, err := h.Malloc(o.ChunkWords)
	if err != nil {
		return res, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	partials, err := h.Malloc(ceilDiv(o.ChunkWords, width))
	if err != nil {
		return res, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}

	chunks := o.Chunks()
	res.Chunks = chunks
	transferDur := make([]time.Duration, chunks)
	kernelDur := make([]time.Duration, chunks)
	var sum Word

	buffers := [2]int{bufA, bufB}
	for c := 0; c < chunks; c++ {
		lo := c * o.ChunkWords
		hi := lo + o.ChunkWords
		if hi > o.N {
			hi = o.N
		}
		chunk := input[lo:hi]
		buf := buffers[c%2]

		t0, k0 := h.TransferTime(), h.KernelTime()
		if err := h.TransferIn(buf, chunk); err != nil {
			return res, err
		}

		// Reduce the chunk in place: rounds ping-pong between the chunk
		// buffer and the partials buffer.
		in, out := buf, partials
		count := len(chunk)
		for count > 1 {
			prog, err := (Reduce{N: count}).Kernel(width, in, out, count)
			if err != nil {
				return res, err
			}
			if _, err := h.Launch(prog, ceilDiv(count, width)); err != nil {
				return res, err
			}
			h.EndRound()
			count = ceilDiv(count, width)
			in, out = out, in
		}
		kernelDur[c] = h.KernelTime() - k0

		part, err := h.TransferOut(in, 1)
		if err != nil {
			return res, err
		}
		transferDur[c] = h.TransferTime() - t0
		sum += part[0]
	}

	res.Sum = sum
	res.TransferTime = h.TransferTime()
	res.KernelTime = h.KernelTime()
	res.SerialTime = h.TotalTime()
	res.OverlappedTime = overlapSchedule(transferDur, kernelDur) + h.SyncTime()
	return res, nil
}

// overlapSchedule computes the makespan of the two-stage pipeline where
// chunk c's transfer must precede its kernel, transfers are serial on the
// link, kernels are serial on the device, and transfer c+1 may proceed
// while kernel c runs (double buffering limits lookahead to one chunk).
func overlapSchedule(transfers, kernels []time.Duration) time.Duration {
	var linkFree, devFree time.Duration
	var kernelEnd []time.Duration
	for c := range transfers {
		start := linkFree
		// Double buffering: transfer c may not start before kernel c-2
		// has freed its buffer.
		if c >= 2 && kernelEnd[c-2] > start {
			start = kernelEnd[c-2]
		}
		tEnd := start + transfers[c]
		linkFree = tEnd
		kStart := tEnd
		if devFree > kStart {
			kStart = devFree
		}
		kEnd := kStart + kernels[c]
		devFree = kEnd
		kernelEnd = append(kernelEnd, kEnd)
	}
	return devFree
}

// AnalyzeSerial returns the ATGPU account of the serial schedule: each
// chunk contributes its transfer-in, its ⌈log_b chunk⌉ reduction rounds and
// its one-word transfer-out. This is a direct multi-round composition of
// the in-core analysis — the model needs no new machinery to price
// out-of-core execution, which is the point of the G constraint.
func (o OutOfCoreReduce) AnalyzeSerial(p core.Params) (*core.Analysis, error) {
	if o.N <= 0 || o.ChunkWords <= 0 {
		return nil, fmt.Errorf("%w: n=%d chunk=%d", ErrBadSize, o.N, o.ChunkWords)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !isPow2(p.B) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, p.B)
	}
	a := &core.Analysis{Name: o.Name(), Params: p}
	footprint := 2*o.ChunkWords + ceilDiv(o.ChunkWords, p.B)
	for c := 0; c < o.Chunks(); c++ {
		lo := c * o.ChunkWords
		hi := lo + o.ChunkWords
		if hi > o.N {
			hi = o.N
		}
		size := hi - lo
		sub, err := (Reduce{N: size}).Analyze(core.Params{
			P: p.P, B: p.B, M: p.M, G: p.G,
		})
		if err != nil {
			return nil, err
		}
		for i := range sub.Rounds {
			sub.Rounds[i].GlobalWords = footprint
		}
		a.Rounds = append(a.Rounds, sub.Rounds...)
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}
