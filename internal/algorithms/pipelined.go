package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/simgpu"
)

// Pipelined workload variants: each paper workload re-expressed as a
// chunked pipeline over the host's stream API. The input is split into
// chunks; chunk c is issued on stream c mod Streams, so while one
// chunk's kernel runs, the next chunk's inward transfer proceeds on
// the H2D link and the previous chunk's result drains on the D2H link.
// Buffer sets are per stream: stream serialization is exactly the
// double-buffering constraint (a chunk reuses its stream's buffers
// only after the stream's previous chunk fully drained).
//
// Both the pipelined run (Streams ≥ 2) and the sequential-chunked
// baseline (Streams = 1) synchronise once, at the end, so their time
// difference isolates the overlap itself — mirroring
// core.GPUCostPipelined, whose Sequential/Pipelined pair charges a
// single σ on both sides.

// pipeShape normalises (n, chunks, streams) and returns the chunk
// length, chunk count and stream count actually used.
func pipeShape(n, chunks, streams int) (chunkLen, numChunks, numStreams int, err error) {
	if n <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: n=%d", ErrBadSize, n)
	}
	if chunks <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: chunks=%d", ErrBadSize, chunks)
	}
	if streams < 0 {
		return 0, 0, 0, fmt.Errorf("%w: streams=%d", ErrBadSize, streams)
	}
	if chunks > n {
		chunks = n
	}
	chunkLen = ceilDiv(n, chunks)
	numChunks = ceilDiv(n, chunkLen)
	numStreams = streams
	if numStreams == 0 {
		numStreams = 2
	}
	if numStreams > numChunks {
		numStreams = numChunks
	}
	return chunkLen, numChunks, numStreams, nil
}

// alignWords rounds size up to a multiple of the transaction width b —
// the padding AllocAligned inserts before each buffer, which the
// pipelined footprints must budget for since they allocate one buffer
// set per stream.
func alignWords(size, b int) int { return ceilDiv(size, b) * b }

// PipelinedVecAdd computes C = A + B in Chunks chunks across Streams
// concurrent streams (0 selects 2; 1 gives the sequential-chunked
// baseline on a single stream).
type PipelinedVecAdd struct {
	N       int
	Chunks  int
	Streams int
}

// Name identifies the workload.
func (v PipelinedVecAdd) Name() string { return "vecadd-pipelined" }

// GlobalWords returns the device footprint for transaction width b: one
// (a, b, c) buffer set of one chunk each per stream, aligned per buffer.
func (v PipelinedVecAdd) GlobalWords(b int) (int, error) {
	if b <= 0 {
		return 0, fmt.Errorf("%w: b=%d", ErrBadSize, b)
	}
	chunkLen, _, streams, err := pipeShape(v.N, v.Chunks, v.Streams)
	if err != nil {
		return 0, err
	}
	return 3 * streams * alignWords(chunkLen, b), nil
}

// Analyze returns the chunked ATGPU account: one model round per chunk,
// each a VecAdd round over that chunk's elements. Feed the result to
// core.GPUCostPipelined for the predicted sequential and overlapped
// costs.
func (v PipelinedVecAdd) Analyze(p core.Params) (*core.Analysis, error) {
	chunkLen, numChunks, _, err := pipeShape(v.N, v.Chunks, v.Streams)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	global, err := v.GlobalWords(p.B)
	if err != nil {
		return nil, err
	}
	a := &core.Analysis{Name: v.Name(), Params: p}
	for c := 0; c < numChunks; c++ {
		cn := chunkLen
		if last := v.N - c*chunkLen; last < cn {
			cn = last
		}
		k := ceilDiv(cn, p.B)
		a.Rounds = append(a.Rounds, core.Round{
			Time:            vecAddOpsPerThread,
			IO:              float64(3 * k),
			GlobalWords:     global,
			SharedWords:     3 * p.B,
			Blocks:          k,
			InWords:         2 * cn,
			InTransactions:  2,
			OutWords:        cn,
			OutTransactions: 1,
		})
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// Run executes the chunked plan on h and returns the result vector.
// One σ is charged at the end (chunks are sub-steps of a single round).
func (v PipelinedVecAdd) Run(h *simgpu.Host, a, b []Word) ([]Word, error) {
	if err := checkLen("a", len(a), v.N); err != nil {
		return nil, err
	}
	if err := checkLen("b", len(b), v.N); err != nil {
		return nil, err
	}
	chunkLen, numChunks, numStreams, err := pipeShape(v.N, v.Chunks, v.Streams)
	if err != nil {
		return nil, err
	}
	width := h.Device().Config().WarpWidth

	type bufs struct{ a, b, c int }
	streams := make([]*simgpu.Stream, numStreams)
	sets := make([]bufs, numStreams)
	for s := range streams {
		streams[s] = h.NewStream(fmt.Sprintf("vecadd-%d", s))
		if sets[s].a, err = h.Malloc(chunkLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
		}
		if sets[s].b, err = h.Malloc(chunkLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
		}
		if sets[s].c, err = h.Malloc(chunkLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
		}
	}

	out := make([]Word, v.N)
	for c := 0; c < numChunks; c++ {
		lo := c * chunkLen
		hi := lo + chunkLen
		if hi > v.N {
			hi = v.N
		}
		cn := hi - lo
		s, set := streams[c%numStreams], sets[c%numStreams]
		alg := VecAdd{N: cn}
		prog, err := alg.Kernel(width, set.a, set.b, set.c)
		if err != nil {
			return nil, err
		}
		if err := h.AsyncTransferIn(s, set.a, a[lo:hi]); err != nil {
			return nil, err
		}
		if err := h.AsyncTransferIn(s, set.b, b[lo:hi]); err != nil {
			return nil, err
		}
		if _, err := h.AsyncLaunch(s, prog, alg.Blocks(width)); err != nil {
			return nil, err
		}
		chunkOut, err := h.AsyncTransferOut(s, set.c, cn)
		if err != nil {
			return nil, err
		}
		copy(out[lo:hi], chunkOut)
	}
	h.EndRound()
	return out, nil
}

// PipelinedReduce sums an n-vector by reducing Chunks chunks across
// Streams streams; per-chunk partial sums are combined on the host.
type PipelinedReduce struct {
	N       int
	Chunks  int
	Streams int
}

// Name identifies the workload.
func (r PipelinedReduce) Name() string { return "reduce-pipelined" }

// GlobalWords returns the footprint: per stream, a chunk buffer plus a
// partials ping-pong buffer, each aligned to the transaction width b.
func (r PipelinedReduce) GlobalWords(b int) (int, error) {
	if b <= 0 {
		return 0, fmt.Errorf("%w: b=%d", ErrBadSize, b)
	}
	chunkLen, _, streams, err := pipeShape(r.N, r.Chunks, r.Streams)
	if err != nil {
		return 0, err
	}
	return streams * (alignWords(chunkLen, b) + alignWords(ceilDiv(chunkLen, b), b)), nil
}

// Analyze returns the chunked account: each chunk contributes its own
// ⌈log_b chunk⌉ reduction rounds, transferring the chunk in before its
// first round and one partial out after its last.
func (r PipelinedReduce) Analyze(p core.Params) (*core.Analysis, error) {
	chunkLen, numChunks, _, err := pipeShape(r.N, r.Chunks, r.Streams)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !isPow2(p.B) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, p.B)
	}
	global, err := r.GlobalWords(p.B)
	if err != nil {
		return nil, err
	}
	a := &core.Analysis{Name: r.Name(), Params: p}
	for c := 0; c < numChunks; c++ {
		cn := chunkLen
		if last := r.N - c*chunkLen; last < cn {
			cn = last
		}
		sizes := (Reduce{N: cn}).RoundSizes(p.B)
		for i, n := range sizes {
			k := ceilDiv(n, p.B)
			round := core.Round{
				Time:        reduceOps(p.B),
				IO:          float64(2 * k),
				GlobalWords: global,
				SharedWords: p.B,
				Blocks:      k,
			}
			if i == 0 {
				round.InWords = cn
				round.InTransactions = 1
			}
			if i == len(sizes)-1 {
				round.OutWords = 1
				round.OutTransactions = 1
			}
			a.Rounds = append(a.Rounds, round)
		}
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// Run executes the chunked reduction on h and returns the total.
func (r PipelinedReduce) Run(h *simgpu.Host, input []Word) (Word, error) {
	if err := checkLen("input", len(input), r.N); err != nil {
		return 0, err
	}
	chunkLen, numChunks, numStreams, err := pipeShape(r.N, r.Chunks, r.Streams)
	if err != nil {
		return 0, err
	}
	width := h.Device().Config().WarpWidth
	if !isPow2(width) {
		return 0, fmt.Errorf("%w: device warp width %d", ErrNotPow2, width)
	}

	type bufs struct{ in, part int }
	streams := make([]*simgpu.Stream, numStreams)
	sets := make([]bufs, numStreams)
	for s := range streams {
		streams[s] = h.NewStream(fmt.Sprintf("reduce-%d", s))
		if sets[s].in, err = h.Malloc(chunkLen); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
		}
		if sets[s].part, err = h.Malloc(ceilDiv(chunkLen, width)); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
		}
	}

	var total Word
	for c := 0; c < numChunks; c++ {
		lo := c * chunkLen
		hi := lo + chunkLen
		if hi > r.N {
			hi = r.N
		}
		cn := hi - lo
		s, set := streams[c%numStreams], sets[c%numStreams]
		if err := h.AsyncTransferIn(s, set.in, input[lo:hi]); err != nil {
			return 0, err
		}
		in, out := set.in, set.part
		count := cn
		for count > 1 {
			prog, err := (Reduce{N: cn}).Kernel(width, in, out, count)
			if err != nil {
				return 0, err
			}
			if _, err := h.AsyncLaunch(s, prog, ceilDiv(count, width)); err != nil {
				return 0, err
			}
			count = ceilDiv(count, width)
			in, out = out, in
		}
		part, err := h.AsyncTransferOut(s, in, 1)
		if err != nil {
			return 0, err
		}
		total += part[0]
	}
	h.EndRound()
	return total, nil
}

// PipelinedMatMul computes C = A×B by row bands: B is transferred once,
// then each band of A's rows streams in, multiplies against B, and its
// C band streams out. Chunks selects the band count (clamped to the
// tile-row count).
type PipelinedMatMul struct {
	N       int
	Chunks  int
	Streams int
}

// Name identifies the workload.
func (m PipelinedMatMul) Name() string { return "matmul-pipelined" }

// bands returns the tile-row banding: tile rows per band and band count.
func (m PipelinedMatMul) bands(b int) (bandTiles, numBands, numStreams int, err error) {
	return pipeShape(m.N/b, m.Chunks, m.Streams)
}

// GlobalWords returns the footprint: full B plus per-stream A and C
// band buffers.
func (m PipelinedMatMul) GlobalWords(b int) (int, error) {
	if m.N <= 0 || b <= 0 || m.N%b != 0 {
		return 0, fmt.Errorf("%w: n=%d b=%d", ErrBadShape, m.N, b)
	}
	bandTiles, _, streams, err := m.bands(b)
	if err != nil {
		return 0, err
	}
	return m.N*m.N + 2*streams*bandTiles*b*m.N, nil
}

// Analyze returns the banded account: one round per band. The first
// round carries B's full inward transfer alongside its A band; each
// round's blocks are the band's tile rows times the column tiles.
func (m PipelinedMatMul) Analyze(p core.Params) (*core.Analysis, error) {
	if m.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, m.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m.N%p.B != 0 {
		return nil, fmt.Errorf("%w: n=%d not a multiple of b=%d", ErrBadShape, m.N, p.B)
	}
	bandTiles, numBands, _, err := m.bands(p.B)
	if err != nil {
		return nil, err
	}
	global, err := m.GlobalWords(p.B)
	if err != nil {
		return nil, err
	}
	tiles := m.N / p.B
	tileRows := tiles
	a := &core.Analysis{Name: m.Name(), Params: p}
	for band := 0; band < numBands; band++ {
		bt := bandTiles
		if last := tileRows - band*bandTiles; last < bt {
			bt = last
		}
		rows := bt * p.B
		k := bt * tiles
		round := core.Round{
			Time:            matMulOps(m.N, p.B),
			IO:              float64(k * (2*m.N + p.B)),
			GlobalWords:     global,
			SharedWords:     3 * p.B * p.B,
			Blocks:          k,
			InWords:         rows * m.N,
			InTransactions:  1,
			OutWords:        rows * m.N,
			OutTransactions: 1,
		}
		if band == 0 {
			round.InWords += m.N * m.N
			round.InTransactions++
		}
		a.Rounds = append(a.Rounds, round)
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// Run executes the banded plan on h and returns C (row-major n×n).
func (m PipelinedMatMul) Run(h *simgpu.Host, a, b []Word) ([]Word, error) {
	nn := m.N * m.N
	if err := checkLen("a", len(a), nn); err != nil {
		return nil, err
	}
	if err := checkLen("b", len(b), nn); err != nil {
		return nil, err
	}
	width := h.Device().Config().WarpWidth
	if m.N%width != 0 {
		return nil, fmt.Errorf("%w: n=%d not a multiple of warp width %d", ErrBadShape, m.N, width)
	}
	bandTiles, numBands, numStreams, err := m.bands(width)
	if err != nil {
		return nil, err
	}
	bandRows := bandTiles * width
	tiles := m.N / width

	baseB, err := h.Malloc(nn)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	// B moves once, up front; every band stream waits for it.
	if err := h.TransferIn(baseB, b); err != nil {
		return nil, err
	}
	evB := h.DefaultStream().Record()

	type bufs struct{ a, c int }
	streams := make([]*simgpu.Stream, numStreams)
	sets := make([]bufs, numStreams)
	for s := range streams {
		streams[s] = h.NewStream(fmt.Sprintf("matmul-%d", s))
		streams[s].Wait(evB)
		if sets[s].a, err = h.Malloc(bandRows * m.N); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
		}
		if sets[s].c, err = h.Malloc(bandRows * m.N); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
		}
	}

	out := make([]Word, nn)
	for band := 0; band < numBands; band++ {
		bt := bandTiles
		if last := tiles - band*bandTiles; last < bt {
			bt = last
		}
		rows := bt * width
		rowLo := band * bandRows
		s, set := streams[band%numStreams], sets[band%numStreams]
		// The kernel's block row index is band-local, so the full-matrix
		// program computes exactly this band when launched with bt·tiles
		// blocks over the band buffers.
		prog, err := (MatMul{N: m.N}).Kernel(width, set.a, baseB, set.c)
		if err != nil {
			return nil, err
		}
		if err := h.AsyncTransferIn(s, set.a, a[rowLo*m.N:(rowLo+rows)*m.N]); err != nil {
			return nil, err
		}
		if _, err := h.AsyncLaunch(s, prog, bt*tiles); err != nil {
			return nil, err
		}
		bandOut, err := h.AsyncTransferOut(s, set.c, rows*m.N)
		if err != nil {
			return nil, err
		}
		copy(out[rowLo*m.N:(rowLo+rows)*m.N], bandOut)
	}
	h.EndRound()
	return out, nil
}
