package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// Transpose computes B = Aᵀ for an n×n matrix, in two variants that bracket
// the model's I/O metric:
//
//   - Naive: thread (blk, j) reads A row-wise (coalesced) and writes B
//     column-wise — every warp store scatters across b memory blocks, so
//     q = k·(1+b) and the model predicts the slowdown the simulator then
//     exhibits.
//   - Tiled: each block stages a b×b tile through shared memory and writes
//     the transposed tile row-wise, so both directions coalesce and
//     q = 3k (b-row tile load + b-row tile store per tile... accounted per
//     warp access below).
//
// The pair exercises exactly the coalescing rule the ATGPU model inherits
// from AGPU/SWGPU ("if requested words are in l separate memory blocks,
// l separate transactions occur") and provides the coalescing ablation
// workload.
type Transpose struct {
	// N is the matrix side; must be a multiple of the warp width.
	N int
	// Tiled selects the shared-memory variant.
	Tiled bool
}

// Name identifies the workload.
func (t Transpose) Name() string {
	if t.Tiled {
		return "transpose-tiled"
	}
	return "transpose-naive"
}

// Blocks returns the launch size: one warp per row strip (naive) or per
// b×b tile (tiled).
func (t Transpose) Blocks(b int) int {
	if t.Tiled {
		s := ceilDiv(t.N, b)
		return s * s
	}
	return ceilDiv(t.N*t.N, b)
}

// GlobalWords returns the footprint: input plus output matrices.
func (t Transpose) GlobalWords() int { return 2 * t.N * t.N }

// Analyze returns the exact ATGPU account. Both variants move 2n² words
// across the link in one round; they differ only in q:
//
//	naive:  every warp's read coalesces (1 txn) and its write scatters
//	        over b blocks (b txns): q = (n²/b)·(1+b).
//	tiled:  per tile, b coalesced row reads and b coalesced row writes:
//	        q = (n/b)²·2b = 2n²/b.
func (t Transpose) Analyze(p core.Params) (*core.Analysis, error) {
	if t.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, t.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if t.N%p.B != 0 {
		return nil, fmt.Errorf("%w: n=%d not a multiple of b=%d", ErrBadShape, t.N, p.B)
	}
	var q float64
	var tOps float64
	var shared int
	if t.Tiled {
		tiles := t.N / p.B
		q = float64(tiles * tiles * 2 * p.B)
		tOps = float64(10 + p.B*16)
		shared = p.B * (p.B + 1) // +1 padding stride avoids bank conflicts
	} else {
		warps := t.N * t.N / p.B
		q = float64(warps * (1 + p.B))
		tOps = 14
		shared = 1
	}
	a := &core.Analysis{
		Name:   t.Name(),
		Params: p,
		Rounds: []core.Round{{
			Time:            tOps,
			IO:              q,
			GlobalWords:     t.GlobalWords(),
			SharedWords:     shared,
			Blocks:          t.Blocks(p.B),
			InWords:         t.N * t.N,
			InTransactions:  1,
			OutWords:        t.N * t.N,
			OutTransactions: 1,
		}},
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report.
func (t Transpose) AGPU() models.AGPUReport {
	io := "O(n²)" // tiled: n²/b · b... = coalesced
	if !t.Tiled {
		io = "O(n²)" // same order, but a b× larger constant
	}
	return models.AGPUReport{
		Algorithm:        t.Name(),
		TimeComplexity:   "O(b) per tile row",
		IOComplexity:     io,
		GlobalComplexity: "O(n²)",
		SharedComplexity: map[bool]string{true: "O(b²)", false: "O(1)"}[t.Tiled],
	}
}

// Kernel builds the selected variant for matrices at baseA (input) and
// baseB (output).
func (t Transpose) Kernel(b, baseA, baseB int) (*kernel.Program, error) {
	if t.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, t.N)
	}
	if t.N%b != 0 {
		return nil, fmt.Errorf("%w: n=%d not a multiple of b=%d", ErrBadShape, t.N, b)
	}
	if t.Tiled {
		return t.tiledKernel(b, baseA, baseB)
	}
	return t.naiveKernel(b, baseA, baseB)
}

// naiveKernel: thread idx handles element (row, col) = (idx/n, idx%n),
// reading A[row][col] (coalesced: consecutive idx share a row) and writing
// B[col][row] (scattered: consecutive idx write a column).
func (t Transpose) naiveKernel(b, baseA, baseB int) (*kernel.Program, error) {
	n := t.N
	kb := kernel.NewBuilder(fmt.Sprintf("transpose-naive-n%d", n), 1)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	row := kb.Reg("row")
	col := kb.Reg("col")
	kb.Div(row, idx, kernel.Imm(int64(n)))
	kb.Mod(col, idx, kernel.Imm(int64(n)))

	addr := kb.Reg("addr")
	val := kb.Reg("val")
	kb.Add(addr, idx, kernel.Imm(int64(baseA)))
	kb.LdGlobal(val, addr)
	// B[col][row] = val — the scattered write.
	kb.Mul(addr, col, kernel.Imm(int64(n)))
	kb.Add(addr, addr, kernel.R(row))
	kb.Add(addr, addr, kernel.Imm(int64(baseB)))
	kb.StGlobal(addr, val)
	return kb.Build()
}

// tiledKernel: block (bi, bj) stages tile A[bi][bj] into shared memory,
// then writes the transposed tile to B[bj][bi] row by row — both global
// access directions coalesce. The tile is stored transposed with a +1
// padding stride (the classic trick): lane j stores its element at
// _tile[j·(b+1) + r], whose bank (j + r) mod b is distinct per lane, so
// both the staging stores and the row-wise write-back reads are
// conflict-free, as the model requires.
func (t Transpose) tiledKernel(b, baseA, baseB int) (*kernel.Program, error) {
	n := t.N
	tiles := n / b
	kb := kernel.NewBuilder(fmt.Sprintf("transpose-tiled-n%d", n), b*(b+1))
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	bi := kb.Reg("tileRow")
	bj := kb.Reg("tileCol")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Div(bi, blk, kernel.Imm(int64(tiles)))
	kb.Mod(bj, blk, kernel.Imm(int64(tiles)))

	addr := kb.Reg("addr")
	val := kb.Reg("val")
	sAddr := kb.Reg("sAddr")

	// Load: row r of tile (bi,bj) is A[(bi·b+r)·n + bj·b + j]; store it
	// transposed into shared as _tile[j·b + r].
	kb.ForDo(kernel.Imm(0), kernel.Imm(int64(b)), 1, func(r kernel.Reg) {
		kb.Mul(addr, bi, kernel.Imm(int64(b*n)))
		rowOff := kb.Reg("rowOff")
		kb.Mul(rowOff, r, kernel.Imm(int64(n)))
		kb.Add(addr, addr, kernel.R(rowOff))
		colOff := kb.Reg("colOff")
		kb.Mul(colOff, bj, kernel.Imm(int64(b)))
		kb.Add(addr, addr, kernel.R(colOff))
		kb.Add(addr, addr, kernel.R(j))
		kb.Add(addr, addr, kernel.Imm(int64(baseA)))
		kb.LdGlobal(val, addr)
		kb.Mul(sAddr, j, kernel.Imm(int64(b+1)))
		kb.Add(sAddr, sAddr, kernel.R(r))
		kb.StShared(sAddr, val)
	})
	kb.Barrier()

	// Write-back: row r of the output tile at B[(bj·b+r)·n + bi·b + j]
	// comes from _tile[r·(b+1) + j] (padded row read, conflict-free).
	kb.ForDo(kernel.Imm(0), kernel.Imm(int64(b)), 1, func(r kernel.Reg) {
		kb.Mul(sAddr, r, kernel.Imm(int64(b+1)))
		kb.Add(sAddr, sAddr, kernel.R(j))
		kb.LdShared(val, sAddr)
		kb.Mul(addr, bj, kernel.Imm(int64(b*n)))
		rowOff := kb.Reg("rowOff2")
		kb.Mul(rowOff, r, kernel.Imm(int64(n)))
		kb.Add(addr, addr, kernel.R(rowOff))
		colOff := kb.Reg("colOff2")
		kb.Mul(colOff, bi, kernel.Imm(int64(b)))
		kb.Add(addr, addr, kernel.R(colOff))
		kb.Add(addr, addr, kernel.R(j))
		kb.Add(addr, addr, kernel.Imm(int64(baseB)))
		kb.StGlobal(addr, val)
	})
	return kb.Build()
}

// Run executes the single-round plan and returns Bᵀ row-major.
func (t Transpose) Run(h *simgpu.Host, a []Word) ([]Word, error) {
	nn := t.N * t.N
	if err := checkLen("a", len(a), nn); err != nil {
		return nil, err
	}
	width := h.Device().Config().WarpWidth
	if t.N%width != 0 {
		return nil, fmt.Errorf("%w: n=%d not a multiple of warp width %d", ErrBadShape, t.N, width)
	}
	baseA, err := h.Malloc(nn)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	baseB, err := h.Malloc(nn)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	prog, err := t.Kernel(width, baseA, baseB)
	if err != nil {
		return nil, err
	}
	if err := h.TransferIn(baseA, a); err != nil {
		return nil, err
	}
	if _, err := h.Launch(prog, t.Blocks(width)); err != nil {
		return nil, err
	}
	out, err := h.TransferOut(baseB, nn)
	if err != nil {
		return nil, err
	}
	h.EndRound()
	return out, nil
}

// TransposeReference computes Aᵀ on the CPU.
func TransposeReference(a []Word, n int) ([]Word, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("%w: len=%d n=%d", ErrBadShape, len(a), n)
	}
	out := make([]Word, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			out[c*n+r] = a[r*n+c]
		}
	}
	return out, nil
}
