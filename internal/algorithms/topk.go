package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// TopKSentinel initialises the K result slots; it must be smaller than any
// input value. It is far from the int64 boundaries so the atomics never sit
// on overflow edges.
const TopKSentinel Word = -(1 << 62)

// TopK finds the K largest input values with an atomic-max cascade over K
// global slots: every thread carries its value down the slot array, at each
// slot exchanging its carry for the slot's old value when the carry is
// larger (old = atommax(slot, v); v = min(v, old)). Each step conserves the
// multiset {slot, carry} while slots only grow, which makes the final slot
// contents exactly the top-K multiset under ANY interleaving — but also
// makes every thread hammer the same K addresses, the worst-case global
// atomic contention pattern the analyzer must price.
type TopK struct {
	// N is the input length.
	N int
	// K is the number of maxima to keep (1 ≤ K, and small: cost is Θ(K)
	// serialised global atomics per thread).
	K int
}

// Name identifies the workload.
func (t TopK) Name() string { return "topk" }

// Blocks returns k: one warp per b input elements.
func (t TopK) Blocks(b int) int { return ceilDiv(t.N, b) }

// SharedWordsPerBlock returns m = 0: the cascade lives entirely in registers
// and global slots.
func (t TopK) SharedWordsPerBlock(int) int { return 0 }

// GlobalWords returns the device footprint: input plus the K slots.
func (t TopK) GlobalWords() int { return t.N + t.K }

// topKOpsPerThread approximates the straight-line per-thread operations
// outside the cascade loop; each cascade iteration adds a handful more.
const topKOpsPerThread = 8

// Analyze returns the ATGPU account: one round, t = Θ(K), q = k + K·k (the
// cascade's global atomics are transactions too), I = n, O = K. The n-way
// serialisation on the slots is the contention term.
func (t TopK) Analyze(p core.Params) (*core.Analysis, error) {
	if t.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, t.N)
	}
	if t.K <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadSize, t.K)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := t.Blocks(p.B)
	a := &core.Analysis{
		Name:   t.Name(),
		Params: p,
		Rounds: []core.Round{{
			Time:            float64(topKOpsPerThread + 5*t.K),
			IO:              float64(k * (1 + t.K)),
			GlobalWords:     t.GlobalWords(),
			SharedWords:     0,
			Blocks:          k,
			InWords:         t.N + t.K,
			InTransactions:  2,
			OutWords:        t.K,
			OutTransactions: 1,
		}},
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report the AGPU baseline would give.
func (t TopK) AGPU() models.AGPUReport {
	return models.AGPUReport{
		Algorithm:        t.Name(),
		TimeComplexity:   "O(K)",
		IOComplexity:     "O(K·k)",
		GlobalComplexity: "O(n + K)",
		SharedComplexity: "O(1)",
	}
}

// Kernel builds the cascade kernel: input at baseIn, the K slots at
// baseSlots (caller initialises them to TopKSentinel). Out-of-range lanes
// carry the sentinel, which never displaces a slot, so the kernel needs no
// divergence at all.
func (t TopK) Kernel(b int, baseIn, baseSlots int) (*kernel.Program, error) {
	if t.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, t.N)
	}
	if t.K <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadSize, t.K)
	}
	kb := kernel.NewBuilder(fmt.Sprintf("topk-n%d-k%d", t.N, t.K), 0)

	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	v := kb.Reg("v")
	inRange := kb.Reg("inRange")
	addr := kb.Reg("addr")
	kb.Const(v, TopKSentinel)
	kb.Slt(inRange, idx, kernel.Imm(int64(t.N)))
	kb.IfDo(inRange, func() {
		kb.Add(addr, idx, kernel.Imm(int64(baseIn)))
		kb.LdGlobal(v, addr)
	})

	// The cascade: old = atommax(slot[s], v); v = min(v, old).
	old := kb.Reg("old")
	kb.ForDo(kernel.Imm(0), kernel.Imm(int64(t.K)), 1, func(s kernel.Reg) {
		kb.Add(addr, s, kernel.Imm(int64(baseSlots)))
		kb.AtomMax(kernel.AtomGlobal, old, addr, v)
		kb.Min(v, v, kernel.R(old))
	})
	kb.Release(v, inRange, old)
	return kb.Build()
}

// Run executes the round plan and returns the K slots (descending is not
// guaranteed — compare as a multiset against TopKReference). Inputs must be
// larger than TopKSentinel.
func (t TopK) Run(h *simgpu.Host, in []Word) ([]Word, error) {
	if err := checkLen("in", len(in), t.N); err != nil {
		return nil, err
	}
	for i, v := range in {
		if v <= TopKSentinel {
			return nil, fmt.Errorf("%w: in[%d] = %d not above sentinel", ErrBadShape, i, v)
		}
	}
	width := h.Device().Config().WarpWidth

	baseIn, err := h.Malloc(t.N)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	baseSlots, err := h.Malloc(t.K)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}

	prog, err := t.Kernel(width, baseIn, baseSlots)
	if err != nil {
		return nil, err
	}

	if err := h.TransferIn(baseIn, in); err != nil {
		return nil, err
	}
	slots := make([]Word, t.K)
	for i := range slots {
		slots[i] = TopKSentinel
	}
	if err := h.TransferIn(baseSlots, slots); err != nil {
		return nil, err
	}
	if _, err := h.Launch(prog, t.Blocks(width)); err != nil {
		return nil, err
	}
	out, err := h.TransferOut(baseSlots, t.K)
	if err != nil {
		return nil, err
	}
	h.EndRound()
	return out, nil
}

// TopKReference returns the K largest values of in (with multiplicity) in
// descending order; when K > len(in) the tail is TopKSentinel, matching the
// device's untouched slots.
func TopKReference(in []Word, k int) ([]Word, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadSize, k)
	}
	sorted := make([]Word, len(in))
	copy(sorted, in)
	// Insertion sort descending; reference inputs are small.
	for i := 1; i < len(sorted); i++ {
		for p := i; p > 0 && sorted[p] > sorted[p-1]; p-- {
			sorted[p], sorted[p-1] = sorted[p-1], sorted[p]
		}
	}
	out := make([]Word, k)
	for i := range out {
		if i < len(sorted) {
			out[i] = sorted[i]
		} else {
			out[i] = TopKSentinel
		}
	}
	return out, nil
}
