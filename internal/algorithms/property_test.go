package algorithms

import (
	"testing"
	"testing/quick"
)

// Property: the simulated vector addition agrees with the CPU reference on
// arbitrary inputs (random lengths and values).
func TestVecAddAgreesWithReferenceProperty(t *testing.T) {
	f := func(raw []int16, pad uint8) bool {
		n := len(raw) + 1 // never empty
		a := make([]Word, n)
		b := make([]Word, n)
		for i := 0; i < len(raw); i++ {
			a[i] = Word(raw[i])
			b[i] = Word(raw[len(raw)-1-i]) * 3
		}
		a[n-1], b[n-1] = Word(pad), -Word(pad)

		h := newTestHost(t, 3*n+64)
		got, err := VecAdd{N: n}.Run(h, a, b)
		if err != nil {
			return false
		}
		want, err := VecAddReference(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the simulated reduction equals the sequential sum for arbitrary
// inputs, including negative values and non-power-of-two lengths.
func TestReduceAgreesWithReferenceProperty(t *testing.T) {
	f := func(raw []int16) bool {
		n := len(raw) + 1
		in := make([]Word, n)
		for i := 0; i < len(raw); i++ {
			in[i] = Word(raw[i])
		}
		in[n-1] = 7
		h := newTestHost(t, 2*n+64)
		got, err := Reduce{N: n}.Run(h, in)
		if err != nil {
			return false
		}
		return got == ReduceReference(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulated matmul equals the CPU reference for random square
// matrices whose side is a multiple of the warp width.
func TestMatMulAgreesWithReferenceProperty(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		n := 4 * (int(sizeSel)%3 + 1) // 4, 8, 12
		a := randWords(n*n, seed)
		b := randWords(n*n, seed+1)
		h := newTestHost(t, 3*n*n+64)
		got, err := MatMul{N: n}.Run(h, a, b)
		if err != nil {
			return false
		}
		want, err := MatMulReference(a, b, n)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: reduction analyses are feasibility-monotone — if n words fit,
// every smaller input fits, and costs only shrink.
func TestReduceAnalysisMonotoneProperty(t *testing.T) {
	p := tinyParams(64)
	f := func(nRaw uint16) bool {
		n := int(nRaw)%1000 + 2
		big, err := Reduce{N: n}.Analyze(p)
		if err != nil {
			return false
		}
		small, err := Reduce{N: n / 2}.Analyze(p)
		if err != nil {
			return false
		}
		return small.TotalIO() <= big.TotalIO() &&
			small.TotalTransferWords() <= big.TotalTransferWords() &&
			small.R() <= big.R()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: reduction round sizes decay by exactly ⌈nᵢ/b⌉ and end at ≤ b.
func TestReduceRoundSizesProperty(t *testing.T) {
	f := func(nRaw uint32) bool {
		n := int(nRaw)%100000 + 1
		sizes := Reduce{N: n}.RoundSizes(4)
		if len(sizes) == 0 || sizes[0] != n {
			return false
		}
		for i := 1; i < len(sizes); i++ {
			if sizes[i] != (sizes[i-1]+3)/4 {
				return false
			}
		}
		last := sizes[len(sizes)-1]
		return n == 1 || (last > 1 && (last+3)/4 == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: VecAddReference is commutative and length-checked.
func TestVecAddReferenceProperties(t *testing.T) {
	f := func(a, b []int16) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		aw := make([]Word, n)
		bw := make([]Word, n)
		for i := 0; i < n; i++ {
			aw[i], bw[i] = Word(a[i]), Word(b[i])
		}
		ab, err := VecAddReference(aw, bw)
		if err != nil {
			return n == 0 && err == nil || err == nil
		}
		ba, err := VecAddReference(bw, aw)
		if err != nil {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := VecAddReference(make([]Word, 2), make([]Word, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
