package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// MatMul is the paper's third workload (§IV-C): C = A×B for n×n matrices,
// using "a well known GPU method for matrix multiplication in shared
// memory (introduced in CUDA Programming Guide), modified for the single
// warp per multiprocessor of our model".
//
// Each thread block owns one b×b tile of C. Lane j owns column j of the
// tile. The block sweeps the n/b tile phases: it stages the phase's A and
// B tiles into shared memory row by row (coalesced), accumulates the
// partial products into a C tile kept in shared memory, and finally writes
// its C tile back to global memory. One round: the data transfer is a
// single staging of A and B inward and C outward, which is why this is the
// paper's example where transfer does not dominate and "our model is not
// useful" beyond what SWGPU already captures.
type MatMul struct {
	// N is the matrix side length; must be a multiple of the warp width
	// for the tiling to be exact.
	N int
}

// Name identifies the workload.
func (m MatMul) Name() string { return "matmul" }

// Tiles returns n/b, the tiles per side.
func (m MatMul) Tiles(b int) int { return ceilDiv(m.N, b) }

// Blocks returns k = (n/b)².
func (m MatMul) Blocks(b int) int { t := m.Tiles(b); return t * t }

// SharedWordsPerBlock returns m = 3b² (A tile, B tile, C tile).
func (m MatMul) SharedWordsPerBlock(b int) int { return 3 * b * b }

// GlobalWords returns the footprint 3n².
func (m MatMul) GlobalWords() int { return 3 * m.N * m.N }

// matMulOps returns the per-thread straight-line operation count for one
// block: per phase, 2 staging loops of b rows (~7 ops each) plus a compute
// loop of b rows, each row doing b unrolled multiply-accumulates (~4 ops)
// plus shared C read/update (~8); then b write-back rows. Θ(n·b) total,
// the paper's parallel time complexity.
func matMulOps(n, b int) float64 {
	phases := ceilDiv(n, b)
	perPhase := 2*(7*b+4) + b*(4*b+12) + 4
	writeBack := 9*b + 4
	return float64(10 + phases*perPhase + writeBack)
}

// Analyze returns the exact ATGPU account of §IV-C: R = 1, t = Θ(nb),
// q = (n/b)²·(2n+b) (per block: 2b block-loads per phase × n/b phases plus
// b write-back transactions — the paper's O((n/b)²(n+b))), global = 3n²,
// shared = 3b², I = 2n² in 2 transactions, O = n² in 1.
func (m MatMul) Analyze(p core.Params) (*core.Analysis, error) {
	if m.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, m.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m.N%p.B != 0 {
		return nil, fmt.Errorf("%w: n=%d not a multiple of b=%d", ErrBadShape, m.N, p.B)
	}
	k := m.Blocks(p.B)
	perBlockIO := 2*m.N + p.B
	a := &core.Analysis{
		Name:   m.Name(),
		Params: p,
		Rounds: []core.Round{{
			Time:            matMulOps(m.N, p.B),
			IO:              float64(k * perBlockIO),
			GlobalWords:     m.GlobalWords(),
			SharedWords:     m.SharedWordsPerBlock(p.B),
			Blocks:          k,
			InWords:         2 * m.N * m.N,
			InTransactions:  2,
			OutWords:        m.N * m.N,
			OutTransactions: 1,
		}},
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report the AGPU baseline would give.
func (m MatMul) AGPU() models.AGPUReport {
	return models.AGPUReport{
		Algorithm:        m.Name(),
		TimeComplexity:   "O(n·b)",
		IOComplexity:     "O((n/b)²·(n+b))",
		GlobalComplexity: "O(n²)",
		SharedComplexity: "O(b²)",
	}
}

// Kernel builds the tiled kernel for matrices at baseA, baseB, baseC.
// Shared layout: [0, b²) A tile, [b², 2b²) B tile, [2b², 3b²) C tile, all
// row-major. The inner multiply-accumulate over the tile dimension is
// unrolled at build time; row loops remain uniform runtime loops.
func (m MatMul) Kernel(b int, baseA, baseB, baseC int) (*kernel.Program, error) {
	if m.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, m.N)
	}
	if m.N%b != 0 {
		return nil, fmt.Errorf("%w: n=%d not a multiple of b=%d", ErrBadShape, m.N, b)
	}
	n := m.N
	tiles := n / b
	bb := b * b
	kb := kernel.NewBuilder(fmt.Sprintf("matmul-n%d", n), 3*bb)

	j := kb.Reg("lane")
	blk := kb.Reg("block")
	bi := kb.Reg("tileRow")
	bj := kb.Reg("tileCol")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Div(bi, blk, kernel.Imm(int64(tiles)))
	kb.Mod(bj, blk, kernel.Imm(int64(tiles)))

	// rowBase = bi·b·n : global row offset of this tile's first row.
	rowBase := kb.Reg("rowBase")
	kb.Mul(rowBase, bi, kernel.Imm(int64(b*n)))
	// colBase = bj·b : global column offset.
	colBase := kb.Reg("colBase")
	kb.Mul(colBase, bj, kernel.Imm(int64(b)))

	addr := kb.Reg("addr")
	val := kb.Reg("val")
	sAddr := kb.Reg("sAddr")
	tmp := kb.Reg("tmp")

	// Zero the C tile: lane j clears column j of each row.
	zero := kb.Reg("zero")
	kb.Const(zero, 0)
	kb.ForDo(kernel.Imm(0), kernel.Imm(int64(b)), 1, func(r kernel.Reg) {
		kb.Mul(sAddr, r, kernel.Imm(int64(b)))
		kb.Add(sAddr, sAddr, kernel.R(j))
		kb.Add(sAddr, sAddr, kernel.Imm(int64(2*bb)))
		kb.StShared(sAddr, zero)
	})
	kb.Barrier()

	// Phase loop over the n/b tile strips.
	kb.ForDo(kernel.Imm(0), kernel.Imm(int64(tiles)), 1, func(p kernel.Reg) {
		// pOff = p·b : the strip offset along the shared dimension.
		pOff := kb.Reg("pOff")
		kb.Mul(pOff, p, kernel.Imm(int64(b)))

		// Stage A tile: row r of the tile is A[(bi·b+r)·n + p·b + j].
		kb.ForDo(kernel.Imm(0), kernel.Imm(int64(b)), 1, func(r kernel.Reg) {
			kb.Mul(addr, r, kernel.Imm(int64(n)))
			kb.Add(addr, addr, kernel.R(rowBase))
			kb.Add(addr, addr, kernel.R(pOff))
			kb.Add(addr, addr, kernel.R(j))
			kb.Add(addr, addr, kernel.Imm(int64(baseA)))
			kb.LdGlobal(val, addr)
			kb.Mul(sAddr, r, kernel.Imm(int64(b)))
			kb.Add(sAddr, sAddr, kernel.R(j))
			kb.StShared(sAddr, val)
		})
		// Stage B tile: row r is B[(p·b+r)·n + bj·b + j].
		kb.ForDo(kernel.Imm(0), kernel.Imm(int64(b)), 1, func(r kernel.Reg) {
			kb.Add(addr, pOff, kernel.R(r))
			kb.Mul(addr, addr, kernel.Imm(int64(n)))
			kb.Add(addr, addr, kernel.R(colBase))
			kb.Add(addr, addr, kernel.R(j))
			kb.Add(addr, addr, kernel.Imm(int64(baseB)))
			kb.LdGlobal(val, addr)
			kb.Mul(sAddr, r, kernel.Imm(int64(b)))
			kb.Add(sAddr, sAddr, kernel.R(j))
			kb.Add(sAddr, sAddr, kernel.Imm(int64(bb)))
			kb.StShared(sAddr, val)
		})
		kb.Barrier()

		// Accumulate: for each tile row r, lane j updates
		// C[r][j] += Σ_m A[r][m]·B[m][j]; the m loop is unrolled.
		acc := kb.Reg("acc")
		av := kb.Reg("av")
		bv := kb.Reg("bv")
		rowOff := kb.Reg("rowOff")
		kb.ForDo(kernel.Imm(0), kernel.Imm(int64(b)), 1, func(r kernel.Reg) {
			kb.Mul(rowOff, r, kernel.Imm(int64(b)))
			// acc ← C tile[r][j]
			kb.Add(sAddr, rowOff, kernel.R(j))
			kb.Add(sAddr, sAddr, kernel.Imm(int64(2*bb)))
			kb.LdShared(acc, sAddr)
			for mm := 0; mm < b; mm++ {
				// av ← A tile[r][mm] (uniform address: broadcast)
				kb.Add(tmp, rowOff, kernel.Imm(int64(mm)))
				kb.LdShared(av, tmp)
				// bv ← B tile[mm][j] (conflict-free)
				kb.Add(tmp, j, kernel.Imm(int64(bb+mm*b)))
				kb.LdShared(bv, tmp)
				kb.Mul(av, av, kernel.R(bv))
				kb.Add(acc, acc, kernel.R(av))
			}
			kb.Add(sAddr, rowOff, kernel.R(j))
			kb.Add(sAddr, sAddr, kernel.Imm(int64(2*bb)))
			kb.StShared(sAddr, acc)
		})
		kb.Barrier()
		kb.Release(acc, av, bv, rowOff, pOff)
	})

	// Write back the C tile: row r goes to C[(bi·b+r)·n + bj·b + j].
	kb.ForDo(kernel.Imm(0), kernel.Imm(int64(b)), 1, func(r kernel.Reg) {
		kb.Mul(sAddr, r, kernel.Imm(int64(b)))
		kb.Add(sAddr, sAddr, kernel.R(j))
		kb.Add(sAddr, sAddr, kernel.Imm(int64(2*bb)))
		kb.LdShared(val, sAddr)
		kb.Mul(addr, r, kernel.Imm(int64(n)))
		kb.Add(addr, addr, kernel.R(rowBase))
		kb.Add(addr, addr, kernel.R(colBase))
		kb.Add(addr, addr, kernel.R(j))
		kb.Add(addr, addr, kernel.Imm(int64(baseC)))
		kb.StGlobal(addr, val)
	})
	return kb.Build()
}

// Run executes the single-round plan: transfer A and B in, launch, transfer
// C out, synchronise. Matrices are row-major n×n slices.
func (m MatMul) Run(h *simgpu.Host, a, b []Word) ([]Word, error) {
	nn := m.N * m.N
	if err := checkLen("a", len(a), nn); err != nil {
		return nil, err
	}
	if err := checkLen("b", len(b), nn); err != nil {
		return nil, err
	}
	width := h.Device().Config().WarpWidth
	if m.N%width != 0 {
		return nil, fmt.Errorf("%w: n=%d not a multiple of warp width %d", ErrBadShape, m.N, width)
	}

	baseA, err := h.Malloc(nn)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	baseB, err := h.Malloc(nn)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	baseC, err := h.Malloc(nn)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}

	prog, err := m.Kernel(width, baseA, baseB, baseC)
	if err != nil {
		return nil, err
	}
	if err := h.TransferIn(baseA, a); err != nil {
		return nil, err
	}
	if err := h.TransferIn(baseB, b); err != nil {
		return nil, err
	}
	if _, err := h.Launch(prog, m.Blocks(width)); err != nil {
		return nil, err
	}
	c, err := h.TransferOut(baseC, nn)
	if err != nil {
		return nil, err
	}
	h.EndRound()
	return c, nil
}

// MatMulReference computes A×B on the CPU (row-major n×n).
func MatMulReference(a, b []Word, n int) ([]Word, error) {
	if len(a) != n*n || len(b) != n*n {
		return nil, fmt.Errorf("%w: len(a)=%d len(b)=%d n=%d", ErrBadShape, len(a), len(b), n)
	}
	c := make([]Word, n*n)
	for i := 0; i < n; i++ {
		for kk := 0; kk < n; kk++ {
			av := a[i*n+kk]
			if av == 0 {
				continue
			}
			row := b[kk*n:]
			out := c[i*n:]
			for j := 0; j < n; j++ {
				out[j] += av * row[j]
			}
		}
	}
	return c, nil
}
