package algorithms

import (
	"testing"
	"testing/quick"
)

func TestReduceVariantsCorrectness(t *testing.T) {
	for _, strat := range ReduceStrategies() {
		for _, n := range []int{1, 2, 4, 5, 16, 17, 64, 100, 1000} {
			alg := ReduceVariant{N: n, Strategy: strat}
			h := newTestHost(t, alg.GlobalWords(4)+64)
			in := randWords(n, int64(n)*7)
			got, err := alg.Run(h, in)
			if err != nil {
				t.Fatalf("%s n=%d: %v", strat, n, err)
			}
			if want := ReduceReference(in); got != want {
				t.Fatalf("%s n=%d: sum = %d, want %d", strat, n, got, want)
			}
		}
	}
}

func TestReduceVariantsAnalysisMatchesSimulator(t *testing.T) {
	for _, strat := range ReduceStrategies() {
		for _, n := range []int{16, 100, 1000} {
			alg := ReduceVariant{N: n, Strategy: strat}
			h := newTestHost(t, alg.GlobalWords(4)+64)
			width := h.Device().Config().WarpWidth

			analysis, err := alg.Analyze(tinyParams((n + width - 1) / width))
			if err != nil {
				t.Fatalf("%s n=%d: %v", strat, n, err)
			}
			in := randWords(n, 11)
			if _, err := alg.Run(h, in); err != nil {
				t.Fatalf("%s n=%d: %v", strat, n, err)
			}
			if h.Rounds() != analysis.R() {
				t.Errorf("%s n=%d: rounds = %d, analysis %d", strat, n, h.Rounds(), analysis.R())
			}
			ks := h.KernelStats()
			if got, want := float64(ks.GlobalTransactions), analysis.TotalIO(); got != want {
				t.Errorf("%s n=%d: observed q = %g, analysis %g", strat, n, got, want)
			}
			ts := h.TransferStats()
			if got, want := ts.TotalWords(), analysis.TotalTransferWords(); got != want {
				t.Errorf("%s n=%d: transfer words = %d, analysis %d", strat, n, got, want)
			}
		}
	}
}

// TestStrategyStructure: the designs must differ the way Harris says they
// do — interleaved diverges more than sequential; first-add halves the
// block count; grid-stride cuts rounds.
func TestStrategyStructure(t *testing.T) {
	n := 4096
	run := func(strat ReduceStrategy) (rounds int, blocks, instrs int64) {
		alg := ReduceVariant{N: n, Strategy: strat}
		h := newTestHost(t, alg.GlobalWords(4)+64)
		if _, err := alg.Run(h, randWords(n, 3)); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		ks := h.KernelStats()
		return h.Rounds(), ks.BlocksExecuted, ks.InstructionsIssued
	}

	seqRounds, seqBlocks, seqInstr := run(StrategySequential)
	intRounds, intBlocks, intInstr := run(StrategyInterleaved)
	faRounds, faBlocks, _ := run(StrategyFirstAdd)
	gsRounds, gsBlocks, _ := run(StrategyGridStride)

	if intRounds != seqRounds || intBlocks != seqBlocks {
		t.Errorf("interleaved should match sequential structure: rounds %d/%d blocks %d/%d",
			intRounds, seqRounds, intBlocks, seqBlocks)
	}
	// With one warp per block both trees diverge at every step; the
	// interleaved penalty the model prices is the extra modulo work
	// executed by every lane ("all paths are executed").
	if intInstr <= seqInstr {
		t.Errorf("interleaved instructions %d should exceed sequential %d", intInstr, seqInstr)
	}
	if faBlocks >= seqBlocks {
		t.Errorf("first-add blocks %d should be below sequential %d", faBlocks, seqBlocks)
	}
	if faRounds > seqRounds {
		t.Errorf("first-add rounds %d should not exceed sequential %d", faRounds, seqRounds)
	}
	if gsRounds >= seqRounds {
		t.Errorf("grid-stride rounds %d should be below sequential %d", gsRounds, seqRounds)
	}
	if gsBlocks >= faBlocks {
		t.Errorf("grid-stride blocks %d should be below first-add %d", gsBlocks, faBlocks)
	}
}

// TestStrategyModelOrdersKernelTime: the ATGPU cost (kernel side only, via
// SWGPU-style pricing without transfer) must order interleaved as more
// expensive than sequential, matching the simulator — the model "sees"
// divergence through the all-paths operation count.
func TestStrategyModelOrdersKernelTime(t *testing.T) {
	n := 4096
	p := tinyParams((n + 3) / 4)

	seq, err := (ReduceVariant{N: n, Strategy: StrategySequential}).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := (ReduceVariant{N: n, Strategy: StrategyInterleaved}).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if inter.TotalTime() <= seq.TotalTime() {
		t.Errorf("model: interleaved t=%g should exceed sequential t=%g",
			inter.TotalTime(), seq.TotalTime())
	}

	hSeq := newTestHost(t, 2*n+64)
	if _, err := (ReduceVariant{N: n, Strategy: StrategySequential}).Run(hSeq, randWords(n, 5)); err != nil {
		t.Fatal(err)
	}
	hInt := newTestHost(t, 2*n+64)
	if _, err := (ReduceVariant{N: n, Strategy: StrategyInterleaved}).Run(hInt, randWords(n, 5)); err != nil {
		t.Fatal(err)
	}
	if hInt.KernelTime() <= hSeq.KernelTime() {
		t.Errorf("device: interleaved %v should be slower than sequential %v",
			hInt.KernelTime(), hSeq.KernelTime())
	}
}

// TestCascadingReducesTotalTime: grid-stride should beat the baseline on
// kernel time for large inputs (fewer rounds, fewer barriers, more work
// per thread) — the point of algorithm cascading.
func TestCascadingReducesTotalTime(t *testing.T) {
	n := 1 << 14
	hSeq := newTestHost(t, 2*n+64)
	if _, err := (ReduceVariant{N: n, Strategy: StrategySequential}).Run(hSeq, randWords(n, 6)); err != nil {
		t.Fatal(err)
	}
	hGS := newTestHost(t, 2*n+64)
	if _, err := (ReduceVariant{N: n, Strategy: StrategyGridStride}).Run(hGS, randWords(n, 6)); err != nil {
		t.Fatal(err)
	}
	if hGS.KernelTime() >= hSeq.KernelTime() {
		t.Errorf("grid-stride %v should beat sequential %v at n=%d",
			hGS.KernelTime(), hSeq.KernelTime(), n)
	}
}

func TestReduceVariantValidation(t *testing.T) {
	p := tinyParams(4)
	if _, err := (ReduceVariant{N: 0}).Analyze(p); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := (ReduceVariant{N: 4, Strategy: StrategySequential}).Kernel(3, 0, 4, 4); err == nil {
		t.Error("non-pow2 b accepted")
	}
	if (ReduceStrategy(99)).String() == "" {
		t.Error("unknown strategy should print")
	}
}

// Property: every strategy computes the same sum on arbitrary inputs.
func TestStrategiesAgreeProperty(t *testing.T) {
	f := func(raw []int16, stratSel uint8) bool {
		n := len(raw) + 1
		in := make([]Word, n)
		for i := 0; i < len(raw); i++ {
			in[i] = Word(raw[i])
		}
		in[n-1] = 42
		strat := ReduceStrategies()[int(stratSel)%4]
		alg := ReduceVariant{N: n, Strategy: strat}
		h := newTestHost(t, alg.GlobalWords(4)+64)
		got, err := alg.Run(h, in)
		if err != nil {
			return false
		}
		return got == ReduceReference(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
