package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// Scan computes the inclusive prefix sum of an n-vector, the follow-on
// computational problem the paper's future work calls for ("carry out
// further experiments on other computational problems to verify our
// model"). The algorithm is the classic three-phase block scan:
//
//  1. every block loads b elements into shared memory, performs a
//     Hillis–Steele inclusive scan in log₂b warp-synchronous steps, writes
//     the scanned block back and its block total into a sums array;
//  2. the sums array is scanned recursively (levels shrink by b);
//  3. every block (except the first at each level) adds the exclusive
//     scanned sum of the preceding blocks to its elements.
//
// Like reduction it is multi-round with one inward and one outward
// transfer, so transfer cost amortises with depth — a mid-point between
// vector addition and matrix multiplication on the paper's spectrum.
type Scan struct {
	// N is the input length.
	N int
}

// Name identifies the workload.
func (s Scan) Name() string { return "scan" }

// LevelSizes returns the element count at each recursion level: n, ⌈n/b⌉,
// … down to 1 block's worth.
func (s Scan) LevelSizes(b int) []int {
	var sizes []int
	for n := s.N; ; n = ceilDiv(n, b) {
		sizes = append(sizes, n)
		if n <= b {
			break
		}
	}
	return sizes
}

// GlobalWords returns the device footprint: the data buffer plus the sums
// pyramid.
func (s Scan) GlobalWords(b int) int {
	total := 0
	for _, n := range s.LevelSizes(b) {
		total += n
	}
	return total
}

// scanOps is the per-thread operation count of the scan kernel: setup plus
// log₂b Hillis–Steele steps (each with both paths of the divergent if).
func scanOps(b int) float64 { return float64(16 + 10*log2(b)) }

// addOps is the per-thread operation count of the offset-add kernel.
const addOps = 12

// Analyze returns the exact ATGPU account: for each level i with nᵢ
// elements and kᵢ = ⌈nᵢ/b⌉ blocks there is one scan round (q = 3kᵢ: load
// block, store scanned block, store sum) and — for every level except the
// last — one offset round later (q = 3kᵢ: load element, load offset, store
// element). Transfers: n words in before the first round, n words out
// after the last.
func (s Scan) Analyze(p core.Params) (*core.Analysis, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, s.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !isPow2(p.B) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, p.B)
	}
	levels := s.LevelSizes(p.B)
	footprint := s.GlobalWords(p.B)
	a := &core.Analysis{Name: s.Name(), Params: p}

	// Scan rounds, top-down.
	for i, n := range levels {
		k := ceilDiv(n, p.B)
		r := core.Round{
			Time:        scanOps(p.B),
			IO:          float64(3 * k),
			GlobalWords: footprint,
			SharedWords: p.B,
			Blocks:      k,
		}
		if i == 0 {
			r.InWords = s.N
			r.InTransactions = 1
		}
		a.Rounds = append(a.Rounds, r)
	}
	// Offset rounds, bottom-up (levels shallower than the deepest). Every
	// block loads its offset (k transactions); blocks 1..k-1 additionally
	// read-modify-write their elements (2(k-1) transactions).
	for i := len(levels) - 2; i >= 0; i-- {
		k := ceilDiv(levels[i], p.B)
		a.Rounds = append(a.Rounds, core.Round{
			Time:        addOps,
			IO:          float64(3*k - 2),
			GlobalWords: footprint,
			SharedWords: 1,
			Blocks:      k,
		})
	}
	last := len(a.Rounds) - 1
	a.Rounds[last].OutWords = s.N
	a.Rounds[last].OutTransactions = 1
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report.
func (s Scan) AGPU() models.AGPUReport {
	return models.AGPUReport{
		Algorithm:        s.Name(),
		TimeComplexity:   "O(log b · log n)",
		IOComplexity:     "O((n/b)·(1-(1/b)^log n)/(1-1/b))",
		GlobalComplexity: "O(n)",
		SharedComplexity: "O(b)",
	}
}

// scanKernel scans blocks of count elements at dataBase in place, writing
// each block's total to sumsBase+blockID. b must be a power of two. The
// Hillis–Steele steps are warp-synchronous: within a lockstep warp the
// loads of step d complete for every lane before the stores, so no double
// buffer is needed.
// Kernel exposes the first-level scan kernel for external analysis (the
// later levels are the same program on smaller counts). dataBase and
// sumsBase follow the Run layout: data at 0, sums pyramid after it.
func (s Scan) Kernel(b, dataBase, sumsBase, count int) (*kernel.Program, error) {
	return s.scanKernel(b, dataBase, sumsBase, count)
}

// Blocks returns the first-level launch width: one block per b elements.
func (s Scan) Blocks(b int) int { return ceilDiv(s.N, b) }

func (s Scan) scanKernel(b, dataBase, sumsBase, count int) (*kernel.Program, error) {
	if !isPow2(b) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, b)
	}
	kb := kernel.NewBuilder(fmt.Sprintf("scan-n%d", count), b)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	zero := kb.Reg("zero")
	kb.Const(zero, 0)
	kb.StShared(j, zero)
	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(int64(count)))
	val := kb.Reg("val")
	addr := kb.Reg("addr")
	kb.IfDo(inRange, func() {
		kb.Add(addr, idx, kernel.Imm(int64(dataBase)))
		kb.LdGlobal(val, addr)
		kb.StShared(j, val)
	})
	kb.Barrier()

	// Hillis–Steele: for d = 1, 2, …, b/2: s[j] += s[j-d] when j ≥ d.
	ge := kb.Reg("ge")
	prev := kb.Reg("prev")
	cur := kb.Reg("cur")
	src := kb.Reg("src")
	for d := 1; d < b; d *= 2 {
		// ge = j >= d  ⇔  (j < d) == 0
		kb.Slt(ge, j, kernel.Imm(int64(d)))
		kb.Seq(ge, ge, kernel.Imm(0))
		kb.IfDo(ge, func() {
			kb.Add(src, j, kernel.Imm(int64(-d)))
			kb.LdShared(prev, src)
			kb.LdShared(cur, j)
			kb.Add(cur, cur, kernel.R(prev))
			kb.StShared(j, cur)
		})
		kb.Barrier()
	}

	// Write the scanned block back.
	kb.IfDo(inRange, func() {
		kb.LdShared(val, j)
		kb.Add(addr, idx, kernel.Imm(int64(dataBase)))
		kb.StGlobal(addr, val)
	})
	// Lane 0 writes the block total (shared[b-1]).
	isZero := kb.Reg("isZero")
	kb.Seq(isZero, j, kernel.Imm(0))
	kb.IfDo(isZero, func() {
		lastIdx := kb.Reg("lastIdx")
		kb.Const(lastIdx, int64(b-1))
		kb.LdShared(val, lastIdx)
		kb.Add(addr, blk, kernel.Imm(int64(sumsBase)))
		kb.StGlobal(addr, val)
	})
	return kb.Build()
}

// addKernel adds the exclusive scanned block offset (sums[blk-1]) to every
// element of block blk, for blk ≥ 1.
func (s Scan) addKernel(b, dataBase, sumsBase, count int) (*kernel.Program, error) {
	kb := kernel.NewBuilder(fmt.Sprintf("scan-add-n%d", count), 1)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	// Lane 0 stages the offset through shared memory so the warp reads it
	// as a broadcast.
	isZero := kb.Reg("isZero")
	kb.Seq(isZero, j, kernel.Imm(0))
	off := kb.Reg("off")
	addr := kb.Reg("addr")
	kb.IfDo(isZero, func() {
		kb.Add(addr, blk, kernel.Imm(int64(sumsBase-1)))
		kb.LdGlobal(off, addr)
		zeroAddr := kb.Reg("zeroAddr")
		kb.Const(zeroAddr, 0)
		kb.StShared(zeroAddr, off)
	})
	kb.Barrier()

	cond := kb.Reg("cond")
	// blk ≥ 1 and idx < count.
	kb.Sne(cond, blk, kernel.Imm(0))
	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(int64(count)))
	kb.And(cond, cond, kernel.R(inRange))
	val := kb.Reg("val")
	kb.IfDo(cond, func() {
		sAddr := kb.Reg("sAddr")
		kb.Const(sAddr, 0)
		kb.LdShared(off, sAddr)
		kb.Add(addr, idx, kernel.Imm(int64(dataBase)))
		kb.LdGlobal(val, addr)
		kb.Add(val, val, kernel.R(off))
		kb.StGlobal(addr, val)
	})
	return kb.Build()
}

// Run executes the full multi-level plan on the host and returns the
// inclusive prefix sums.
func (s Scan) Run(h *simgpu.Host, input []Word) ([]Word, error) {
	if err := checkLen("input", len(input), s.N); err != nil {
		return nil, err
	}
	width := h.Device().Config().WarpWidth
	if !isPow2(width) {
		return nil, fmt.Errorf("%w: device warp width %d", ErrNotPow2, width)
	}

	levels := s.LevelSizes(width)
	bases := make([]int, len(levels))
	for i, n := range levels {
		base, err := h.Malloc(n)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
		}
		bases[i] = base
	}
	// The deepest level still needs somewhere to write its (single)
	// block total; reuse a one-word scratch allocation.
	scratch, err := h.Malloc(1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}

	if err := h.TransferIn(bases[0], input); err != nil {
		return nil, err
	}

	// Phase 1: scan every level top-down, producing the next level's
	// input (block sums).
	for i, n := range levels {
		sums := scratch
		if i+1 < len(levels) {
			sums = bases[i+1]
		}
		prog, err := s.scanKernel(width, bases[i], sums, n)
		if err != nil {
			return nil, err
		}
		if _, err := h.Launch(prog, ceilDiv(n, width)); err != nil {
			return nil, err
		}
		h.EndRound()
	}
	// Phase 2: propagate offsets bottom-up.
	for i := len(levels) - 2; i >= 0; i-- {
		prog, err := s.addKernel(width, bases[i], bases[i+1], levels[i])
		if err != nil {
			return nil, err
		}
		if _, err := h.Launch(prog, ceilDiv(levels[i], width)); err != nil {
			return nil, err
		}
		h.EndRound()
	}

	return h.TransferOut(bases[0], s.N)
}

// ScanReference computes the inclusive prefix sum on the CPU.
func ScanReference(input []Word) []Word {
	out := make([]Word, len(input))
	var acc Word
	for i, v := range input {
		acc += v
		out[i] = acc
	}
	return out
}
