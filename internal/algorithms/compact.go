package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// Compact implements stream compaction: copy the non-zero elements of the
// input to a dense prefix of the output, in a single pass, using atomics for
// both the intra-block reservation (a shared counter every keeper increments)
// and the inter-block reservation (one global counter per launch). The
// relative order of survivors is schedule-dependent — the price of the
// atomic single-pass formulation over a scan-based one — so results are
// verified as a multiset.
type Compact struct {
	// N is the input length.
	N int
}

// Name identifies the workload.
func (c Compact) Name() string { return "compact" }

// Blocks returns k: one warp per b input elements.
func (c Compact) Blocks(b int) int { return ceilDiv(c.N, b) }

// Shared layout: [0] keeper count for the block, [1] the block's base offset
// in the output, reserved by lane 0 from the global counter.
const (
	compactSharedCount = 0
	compactSharedBase  = 1
	compactSharedWords = 2
)

// SharedWordsPerBlock returns m = 2: the block's counter and its output base.
func (c Compact) SharedWordsPerBlock(int) int { return compactSharedWords }

// GlobalWords returns the device footprint: input, output, and the one-word
// survivor counter.
func (c Compact) GlobalWords() int { return 2*c.N + 1 }

// compactOpsPerThread approximates the straight-line per-thread operation
// count (address arithmetic included).
const compactOpsPerThread = 18

// Analyze returns the ATGPU account: one round, t = Θ(1), q = k loads plus
// the reservation and scatter traffic, I = n, O = n+1. The shared-counter
// contention (up to b-way when every element survives) is the analyzer's
// contention term, not part of these counts.
func (c Compact) Analyze(p core.Params) (*core.Analysis, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, c.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := c.Blocks(p.B)
	a := &core.Analysis{
		Name:   c.Name(),
		Params: p,
		Rounds: []core.Round{{
			Time:            compactOpsPerThread,
			IO:              float64(3 * k),
			GlobalWords:     c.GlobalWords(),
			SharedWords:     compactSharedWords,
			Blocks:          k,
			InWords:         c.N,
			InTransactions:  1,
			OutWords:        c.N + 1,
			OutTransactions: 2,
		}},
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report the AGPU baseline would give.
func (c Compact) AGPU() models.AGPUReport {
	return models.AGPUReport{
		Algorithm:        c.Name(),
		TimeComplexity:   "O(1)",
		IOComplexity:     "O(k)",
		GlobalComplexity: "O(n)",
		SharedComplexity: "O(1)",
	}
}

// Kernel builds the compaction kernel: input at baseIn, dense output at
// baseOut, the global survivor counter at baseCnt.
func (c Compact) Kernel(b int, baseIn, baseOut, baseCnt int) (*kernel.Program, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, c.N)
	}
	kb := kernel.NewBuilder(fmt.Sprintf("compact-n%d", c.N), compactSharedWords)

	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	// Lane 0 zeroes the block's keeper counter.
	isLane0 := kb.Reg("isLane0")
	zero := kb.Reg("zero")
	addr := kb.Reg("addr")
	kb.Const(zero, 0)
	kb.Seq(isLane0, j, kernel.Imm(0))
	kb.IfDo(isLane0, func() {
		kb.Const(addr, compactSharedCount)
		kb.StShared(addr, zero)
	})
	kb.Barrier()

	// Load; keepers reserve a slot in the block's counter. v stays 0 for
	// out-of-range lanes so their keep flag is deterministically false.
	inRange := kb.Reg("inRange")
	v := kb.Reg("v")
	keep := kb.Reg("keep")
	pos := kb.Reg("pos")
	one := kb.Reg("one")
	kb.Const(v, 0)
	kb.Const(one, 1)
	kb.Slt(inRange, idx, kernel.Imm(int64(c.N)))
	kb.IfDo(inRange, func() {
		kb.Add(addr, idx, kernel.Imm(int64(baseIn)))
		kb.LdGlobal(v, addr)
	})
	kb.Sne(keep, v, kernel.Imm(0))
	kb.IfDo(keep, func() {
		kb.Const(addr, compactSharedCount)
		kb.AtomAdd(kernel.AtomShared, pos, addr, one)
	})
	kb.Barrier()

	// Lane 0 reserves the block's span in the output from the global
	// counter and publishes the base for the whole block.
	cnt := kb.Reg("cnt")
	base := kb.Reg("base")
	kb.IfDo(isLane0, func() {
		kb.Const(addr, compactSharedCount)
		kb.LdShared(cnt, addr)
		kb.Const(addr, int64(baseCnt))
		kb.AtomAdd(kernel.AtomGlobal, base, addr, cnt)
		kb.Const(addr, compactSharedBase)
		kb.StShared(addr, base)
	})
	kb.Barrier()

	// Keepers scatter into their reserved slots.
	kb.IfDo(keep, func() {
		kb.Const(addr, compactSharedBase)
		kb.LdShared(base, addr)
		kb.Add(addr, base, kernel.R(pos))
		kb.Add(addr, addr, kernel.Imm(int64(baseOut)))
		kb.StGlobal(addr, v)
	})
	kb.Release(isLane0, zero, inRange, v, keep, pos, one, cnt, base)
	return kb.Build()
}

// Run executes the round plan and returns the dense survivors (length = the
// global counter's final value, in schedule order) — compare as a multiset.
func (c Compact) Run(h *simgpu.Host, in []Word) ([]Word, error) {
	if err := checkLen("in", len(in), c.N); err != nil {
		return nil, err
	}
	width := h.Device().Config().WarpWidth

	baseIn, err := h.Malloc(c.N)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	baseOut, err := h.Malloc(c.N)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	baseCnt, err := h.Malloc(1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}

	prog, err := c.Kernel(width, baseIn, baseOut, baseCnt)
	if err != nil {
		return nil, err
	}

	if err := h.TransferIn(baseIn, in); err != nil {
		return nil, err
	}
	if err := h.TransferIn(baseCnt, []Word{0}); err != nil {
		return nil, err
	}
	if _, err := h.Launch(prog, c.Blocks(width)); err != nil {
		return nil, err
	}
	cnt, err := h.TransferOut(baseCnt, 1)
	if err != nil {
		return nil, err
	}
	if cnt[0] < 0 || cnt[0] > Word(c.N) {
		return nil, fmt.Errorf("%w: survivor count %d out of [0,%d]", ErrVerifyFail, cnt[0], c.N)
	}
	var out []Word
	if cnt[0] > 0 {
		out, err = h.TransferOut(baseOut, int(cnt[0]))
		if err != nil {
			return nil, err
		}
	}
	h.EndRound()
	return out, nil
}

// CompactReference returns the non-zero elements of in, preserving input
// order (the device result is the same multiset in a different order).
func CompactReference(in []Word) []Word {
	out := make([]Word, 0, len(in))
	for _, v := range in {
		if v != 0 {
			out = append(out, v)
		}
	}
	return out
}
