package algorithms

import (
	"fmt"

	"atgpu/internal/kernel"
)

// BuiltinKernel builds the named workload's kernel and launch block count
// for warp width b, mirroring how the runners launch it: the buffer
// layout matches the sweep runs, and for multi-round workloads (reduce,
// scan) the first — largest — round is used, since later rounds run the
// same kernel on fewer blocks. It is shared by `atgpu lint`'s builtin
// mode and by atgpud's lint jobs, and its disassembly is the kernel
// component of the service's content-addressed cache key.
func BuiltinKernel(alg string, n, b int) (*kernel.Program, int, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("non-positive n %d", n)
	}
	switch alg {
	case "vecadd":
		a := VecAdd{N: n}
		prog, err := a.Kernel(b, 0, n, 2*n)
		return prog, a.Blocks(b), err
	case "reduce":
		a := Reduce{N: n}
		prog, err := a.Kernel(b, 0, n, n)
		return prog, (n + b - 1) / b, err
	case "scan":
		// First (largest) level; data at 0, block sums after it.
		a := Scan{N: n}
		prog, err := a.Kernel(b, 0, n, n)
		return prog, a.Blocks(b), err
	case "matmul":
		if n%b != 0 {
			return nil, 0, fmt.Errorf("matmul n=%d must be a multiple of warp width %d", n, b)
		}
		a := MatMul{N: n}
		prog, err := a.Kernel(b, 0, n*n, 2*n*n)
		return prog, a.Blocks(b), err
	case "histogram":
		a := Histogram{N: n, Bins: builtinBins(n)}
		prog, err := a.Kernel(b, 0, n)
		return prog, a.Blocks(b), err
	case "histogram-priv":
		a := Histogram{N: n, Bins: builtinBins(n), Privatized: true}
		prog, err := a.Kernel(b, 0, n)
		return prog, a.Blocks(b), err
	case "compact":
		a := Compact{N: n}
		prog, err := a.Kernel(b, 0, n, 2*n)
		return prog, a.Blocks(b), err
	case "topk":
		a := TopK{N: n, K: builtinTopK(n)}
		prog, err := a.Kernel(b, 0, n)
		return prog, a.Blocks(b), err
	case "montecarlo":
		a := MonteCarlo{N: n, Trials: 16}
		prog, err := a.Kernel(b, 0)
		return prog, a.Blocks(b), err
	}
	return nil, 0, fmt.Errorf("unknown algorithm %q", alg)
}

// builtinBins fixes the histogram bucket count the builtin mode uses: 16, or
// n when the input is smaller, so tiny lint runs stay feasible.
func builtinBins(n int) int {
	if n < 16 {
		return n
	}
	return 16
}

// builtinTopK fixes K for the builtin top-k: 4, or n when smaller.
func builtinTopK(n int) int {
	if n < 4 {
		return n
	}
	return 4
}
