package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// Dot computes ⟨x, y⟩ = Σ xᵢ·yᵢ, another verification workload in the
// spirit of the paper's future work. Its first round fuses the elementwise
// multiply with the first reduction level (each block loads b elements of
// both vectors, multiplies into shared memory and tree-reduces); later
// rounds are plain reductions over the partials. Compared with reduction
// it doubles the inward transfer (two vectors) for the same kernel-side
// asymptotics, shifting the transfer share up — a data point between
// vecadd and reduce on the paper's spectrum.
type Dot struct {
	// N is the vector length.
	N int
}

// Name identifies the workload.
func (d Dot) Name() string { return "dot" }

// Rounds returns ⌈log_b n⌉ (at least 1).
func (d Dot) Rounds(b int) int { return Reduce{N: d.N}.Rounds(b) }

// GlobalWords returns the footprint: two inputs plus a partials buffer.
func (d Dot) GlobalWords(b int) int { return 2*d.N + ceilDiv(d.N, b) }

// dotOps is the first-round per-thread operation count: reduce's plus the
// second load and the multiply.
func dotOps(b int) float64 { return reduceOps(b) + 6 }

// Analyze returns the exact ATGPU account: like reduction, but round 1
// loads two vectors (q₁ = 3k₁: two coalesced loads plus the partial
// store) and transfers 2n words inward in 2 transactions.
func (d Dot) Analyze(p core.Params) (*core.Analysis, error) {
	if d.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, d.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !isPow2(p.B) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, p.B)
	}
	sizes := Reduce{N: d.N}.RoundSizes(p.B)
	a := &core.Analysis{Name: d.Name(), Params: p}
	for i, n := range sizes {
		k := ceilDiv(n, p.B)
		round := core.Round{
			Time:        reduceOps(p.B),
			IO:          float64(2 * k),
			GlobalWords: d.GlobalWords(p.B),
			SharedWords: p.B,
			Blocks:      k,
		}
		if i == 0 {
			round.Time = dotOps(p.B)
			round.IO = float64(3 * k)
			round.InWords = 2 * d.N
			round.InTransactions = 2
		}
		if i == len(sizes)-1 {
			round.OutWords = 1
			round.OutTransactions = 1
		}
		a.Rounds = append(a.Rounds, round)
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// AGPU returns the asymptotic report.
func (d Dot) AGPU() models.AGPUReport {
	return models.AGPUReport{
		Algorithm:        d.Name(),
		TimeComplexity:   "O(log b · log n)",
		IOComplexity:     "O((n/b)·(1-(1/b)^log n)/(1-1/b))",
		GlobalComplexity: "O(n)",
		SharedComplexity: "O(b)",
	}
}

// fusedKernel builds the first-round kernel: _s[j] ← x[idx]·y[idx] (zero
// when out of range), tree-reduce, write one partial per block.
func (d Dot) fusedKernel(b, xBase, yBase, outBase, count int) (*kernel.Program, error) {
	if !isPow2(b) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, b)
	}
	kb := kernel.NewBuilder(fmt.Sprintf("dot-n%d", count), b)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	zero := kb.Reg("zero")
	kb.Const(zero, 0)
	kb.StShared(j, zero)
	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(int64(count)))
	xv := kb.Reg("xv")
	yv := kb.Reg("yv")
	addr := kb.Reg("addr")
	kb.IfDo(inRange, func() {
		kb.Add(addr, idx, kernel.Imm(int64(xBase)))
		kb.LdGlobal(xv, addr)
		kb.Add(addr, idx, kernel.Imm(int64(yBase)))
		kb.LdGlobal(yv, addr)
		kb.Mul(xv, xv, kernel.R(yv))
		kb.StShared(j, xv)
	})
	kb.Barrier()

	val := kb.Reg("val")
	sequentialTree(kb, b, j, val)
	writeResult(kb, j, blk, val, addr, outBase)
	return kb.Build()
}

// Run executes the fused first round then plain reduction rounds.
func (d Dot) Run(h *simgpu.Host, x, y []Word) (Word, error) {
	if err := checkLen("x", len(x), d.N); err != nil {
		return 0, err
	}
	if err := checkLen("y", len(y), d.N); err != nil {
		return 0, err
	}
	width := h.Device().Config().WarpWidth
	if !isPow2(width) {
		return 0, fmt.Errorf("%w: device warp width %d", ErrNotPow2, width)
	}

	xBase, err := h.Malloc(d.N)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	yBase, err := h.Malloc(d.N)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	partials, err := h.Malloc(ceilDiv(d.N, width))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}

	if err := h.TransferIn(xBase, x); err != nil {
		return 0, err
	}
	if err := h.TransferIn(yBase, y); err != nil {
		return 0, err
	}

	prog, err := d.fusedKernel(width, xBase, yBase, partials, d.N)
	if err != nil {
		return 0, err
	}
	if _, err := h.Launch(prog, ceilDiv(d.N, width)); err != nil {
		return 0, err
	}
	h.EndRound()

	// Remaining rounds: plain reduction over the partials, ping-ponging
	// with the x buffer (its contents are dead now).
	in, out := partials, xBase
	count := ceilDiv(d.N, width)
	for count > 1 {
		prog, err := (Reduce{N: count}).Kernel(width, in, out, count)
		if err != nil {
			return 0, err
		}
		if _, err := h.Launch(prog, ceilDiv(count, width)); err != nil {
			return 0, err
		}
		h.EndRound()
		count = ceilDiv(count, width)
		in, out = out, in
	}
	ans, err := h.TransferOut(in, 1)
	if err != nil {
		return 0, err
	}
	return ans[0], nil
}

// DotReference computes the dot product on the CPU.
func DotReference(x, y []Word) (Word, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: len(x)=%d len(y)=%d", ErrBadShape, len(x), len(y))
	}
	var s Word
	for i := range x {
		s += x[i] * y[i]
	}
	return s, nil
}
