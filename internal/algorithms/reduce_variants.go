package algorithms

import (
	"fmt"

	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
)

// ReduceStrategy selects one of the classic reduction kernel designs from
// Harris's "Optimizing parallel reduction in CUDA", the study the paper's
// future work asks for ("further investigation of reduction algorithms on
// the ATGPU"). All strategies compute the same sum; they differ in
// divergence, addressing and per-thread work — exactly the levers the
// ATGPU metrics (tᵢ, qᵢ, R) price differently.
type ReduceStrategy int

const (
	// StrategySequential is the baseline used by Reduce: tree reduction
	// with sequential addressing (stride halving), divergence confined to
	// a shrinking prefix of lanes.
	StrategySequential ReduceStrategy = iota
	// StrategyInterleaved is Harris's kernel 1: interleaved addressing
	// with a modulo test (core % (2·stride) == 0), maximal divergence —
	// on the ATGPU model "all paths are executed", so the extra paths
	// cost real operations.
	StrategyInterleaved
	// StrategyFirstAdd is Harris's kernel 4: each block loads and adds
	// *two* elements during the global load, halving the number of blocks
	// and rounds (factor 2b per round instead of b).
	StrategyFirstAdd
	// StrategyGridStride gives each block Elements/b input elements to
	// accumulate serially in registers before one tree reduction —
	// algorithm cascading. Fewer blocks, fewer rounds, better work per
	// synchronisation; the classic recipe for reductions.
	StrategyGridStride
)

// String names the strategy.
func (s ReduceStrategy) String() string {
	switch s {
	case StrategySequential:
		return "sequential"
	case StrategyInterleaved:
		return "interleaved"
	case StrategyFirstAdd:
		return "first-add"
	case StrategyGridStride:
		return "grid-stride"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ReduceVariant is a reduction with a selectable kernel strategy.
type ReduceVariant struct {
	// N is the input length.
	N int
	// Strategy selects the kernel design.
	Strategy ReduceStrategy
	// GridStrideFactor is how many elements each thread accumulates in
	// the grid-stride strategy (ignored otherwise); 0 means 8.
	GridStrideFactor int
}

// factor returns the per-round shrink factor: each block consumes
// factor·... elements and emits one partial.
func (r ReduceVariant) perBlockElements(b int) int {
	switch r.Strategy {
	case StrategyFirstAdd:
		return 2 * b
	case StrategyGridStride:
		f := r.GridStrideFactor
		if f <= 0 {
			f = 8
		}
		return f * b
	default:
		return b
	}
}

// RoundSizes returns the element count entering each round.
func (r ReduceVariant) RoundSizes(b int) []int {
	per := r.perBlockElements(b)
	var sizes []int
	for n := r.N; n > 1; n = ceilDiv(n, per) {
		sizes = append(sizes, n)
	}
	if r.N == 1 {
		sizes = []int{1}
	}
	return sizes
}

// GlobalWords returns the footprint: input plus a partials buffer.
func (r ReduceVariant) GlobalWords(b int) int {
	return r.N + ceilDiv(r.N, r.perBlockElements(b))
}

// opsPerThread estimates the straight-line operation count of one round's
// kernel per the strategy. Interleaved pays every tree level twice (both
// paths of the divergent if execute); grid-stride adds the serial
// accumulation loop.
func (r ReduceVariant) opsPerThread(b int) float64 {
	treeSteps := log2(b)
	switch r.Strategy {
	case StrategyInterleaved:
		// Modulo test + both paths at each step.
		return float64(14 + 13*treeSteps)
	case StrategyFirstAdd:
		return float64(20 + 9*treeSteps)
	case StrategyGridStride:
		f := r.GridStrideFactor
		if f <= 0 {
			f = 8
		}
		return float64(14 + 8*f + 9*treeSteps)
	default:
		return reduceOps(b)
	}
}

// Analyze returns the exact ATGPU account of the variant. Per round over
// nᵢ elements: kᵢ = ⌈nᵢ/per⌉ blocks, each loading ⌈per/b⌉ coalesced block
// transactions plus one store.
func (r ReduceVariant) Analyze(p core.Params) (*core.Analysis, error) {
	if r.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, r.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !isPow2(p.B) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, p.B)
	}
	per := r.perBlockElements(p.B)
	loadsPerBlock := per / p.B
	a := &core.Analysis{Name: "reduce-" + r.Strategy.String(), Params: p}
	sizes := r.RoundSizes(p.B)
	for i, n := range sizes {
		k := ceilDiv(n, per)
		// Coalesced loads: only the blocks' in-range strips are fetched;
		// exact transaction count is the number of non-empty b-strips,
		// which is ⌈n/b⌉ across the whole round, plus one store each.
		strips := ceilDiv(n, p.B)
		if strips > k*loadsPerBlock {
			strips = k * loadsPerBlock
		}
		round := core.Round{
			Time:        r.opsPerThread(p.B),
			IO:          float64(strips + k),
			GlobalWords: r.GlobalWords(p.B),
			SharedWords: p.B,
			Blocks:      k,
		}
		if i == 0 {
			round.InWords = r.N
			round.InTransactions = 1
		}
		if i == len(sizes)-1 {
			round.OutWords = 1
			round.OutTransactions = 1
		}
		a.Rounds = append(a.Rounds, round)
	}
	if err := a.CheckFeasible(); err != nil {
		return nil, err
	}
	return a, nil
}

// Kernel builds one round's kernel for count elements at inBase, writing
// ⌈count/per⌉ partials at outBase.
func (r ReduceVariant) Kernel(b, inBase, outBase, count int) (*kernel.Program, error) {
	if count <= 0 {
		return nil, fmt.Errorf("%w: count=%d", ErrBadSize, count)
	}
	if !isPow2(b) {
		return nil, fmt.Errorf("%w: b=%d", ErrNotPow2, b)
	}
	switch r.Strategy {
	case StrategyInterleaved:
		return r.interleavedKernel(b, inBase, outBase, count)
	case StrategyFirstAdd:
		return r.firstAddKernel(b, inBase, outBase, count)
	case StrategyGridStride:
		return r.gridStrideKernel(b, inBase, outBase, count)
	default:
		return Reduce{N: count}.Kernel(b, inBase, outBase, count)
	}
}

// loadPrologue emits the common index computation and the guarded load of
// element inBase+idx into shared[j] (zero when out of range), with idx =
// blk·per + j + offset.
func loadPrologue(kb *kernel.Builder, b, per, inBase, count, offset int) (j, blk, val, addr kernel.Reg) {
	j = kb.Reg("lane")
	blk = kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(per)))
	kb.Add(idx, idx, kernel.R(j))
	if offset != 0 {
		kb.Add(idx, idx, kernel.Imm(int64(offset)))
	}
	zero := kb.Reg("zero")
	kb.Const(zero, 0)
	kb.StShared(j, zero)
	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(int64(count)))
	val = kb.Reg("val")
	addr = kb.Reg("addr")
	kb.IfDo(inRange, func() {
		kb.Add(addr, idx, kernel.Imm(int64(inBase)))
		kb.LdGlobal(val, addr)
		kb.StShared(j, val)
	})
	kb.Barrier()
	return j, blk, val, addr
}

// writeResult emits the lane-0 store of shared[0] to outBase+blk.
func writeResult(kb *kernel.Builder, j, blk, val, addr kernel.Reg, outBase int) {
	isZero := kb.Reg("isZero")
	kb.Seq(isZero, j, kernel.Imm(0))
	kb.IfDo(isZero, func() {
		zAddr := kb.Reg("zAddr")
		kb.Const(zAddr, 0)
		kb.LdShared(val, zAddr)
		kb.Add(addr, blk, kernel.Imm(int64(outBase)))
		kb.StGlobal(addr, val)
	})
}

// sequentialTree emits the stride-halving tree on shared[0..b).
func sequentialTree(kb *kernel.Builder, b int, j, val kernel.Reg) {
	lt := kb.Reg("lt")
	other := kb.Reg("other")
	sum := kb.Reg("sum")
	for stride := b / 2; stride >= 1; stride /= 2 {
		kb.Slt(lt, j, kernel.Imm(int64(stride)))
		kb.IfDo(lt, func() {
			kb.Add(other, j, kernel.Imm(int64(stride)))
			kb.LdShared(val, j)
			kb.LdShared(sum, other)
			kb.Add(val, val, kernel.R(sum))
			kb.StShared(j, val)
		})
		kb.Barrier()
	}
}

// interleavedKernel is Harris kernel 1: at step s the active lanes are
// those with core % (2s) == 0, each adding shared[core+s] — highly
// divergent, which the ATGPU model charges via all-paths execution.
func (r ReduceVariant) interleavedKernel(b, inBase, outBase, count int) (*kernel.Program, error) {
	kb := kernel.NewBuilder(fmt.Sprintf("reduce-interleaved-n%d", count), b)
	j, blk, val, addr := loadPrologue(kb, b, b, inBase, count, 0)

	modr := kb.Reg("modr")
	isOwner := kb.Reg("isOwner")
	other := kb.Reg("other")
	sum := kb.Reg("sum")
	for stride := 1; stride < b; stride *= 2 {
		kb.Mod(modr, j, kernel.Imm(int64(2*stride)))
		kb.Seq(isOwner, modr, kernel.Imm(0))
		kb.IfDo(isOwner, func() {
			kb.Add(other, j, kernel.Imm(int64(stride)))
			kb.LdShared(val, j)
			kb.LdShared(sum, other)
			kb.Add(val, val, kernel.R(sum))
			kb.StShared(j, val)
		})
		kb.Barrier()
	}
	writeResult(kb, j, blk, val, addr, outBase)
	return kb.Build()
}

// firstAddKernel is Harris kernel 4: lane j loads elements blk·2b+j and
// blk·2b+b+j, adds them during the load, then runs the sequential tree.
func (r ReduceVariant) firstAddKernel(b, inBase, outBase, count int) (*kernel.Program, error) {
	kb := kernel.NewBuilder(fmt.Sprintf("reduce-firstadd-n%d", count), b)
	per := 2 * b
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(per)))
	kb.Add(idx, idx, kernel.R(j))

	zero := kb.Reg("zero")
	kb.Const(zero, 0)
	kb.StShared(j, zero)
	acc := kb.Reg("acc")
	kb.Const(acc, 0)
	val := kb.Reg("val")
	addr := kb.Reg("addr")
	inRange := kb.Reg("inRange")
	// First element.
	kb.Slt(inRange, idx, kernel.Imm(int64(count)))
	kb.IfDo(inRange, func() {
		kb.Add(addr, idx, kernel.Imm(int64(inBase)))
		kb.LdGlobal(val, addr)
		kb.Add(acc, acc, kernel.R(val))
	})
	// Second element at +b (first add during load).
	idx2 := kb.Reg("idx2")
	kb.Add(idx2, idx, kernel.Imm(int64(b)))
	kb.Slt(inRange, idx2, kernel.Imm(int64(count)))
	kb.IfDo(inRange, func() {
		kb.Add(addr, idx2, kernel.Imm(int64(inBase)))
		kb.LdGlobal(val, addr)
		kb.Add(acc, acc, kernel.R(val))
	})
	kb.StShared(j, acc)
	kb.Barrier()

	sequentialTree(kb, b, j, val)
	writeResult(kb, j, blk, val, addr, outBase)
	return kb.Build()
}

// gridStrideKernel: lane j of block blk serially accumulates elements
// blk·f·b + i·b + j for i = 0..f-1 (each pass coalesced), then tree-reduces.
func (r ReduceVariant) gridStrideKernel(b, inBase, outBase, count int) (*kernel.Program, error) {
	f := r.GridStrideFactor
	if f <= 0 {
		f = 8
	}
	per := f * b
	kb := kernel.NewBuilder(fmt.Sprintf("reduce-gridstride-n%d", count), b)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	base := kb.Reg("base")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(base, blk, kernel.Imm(int64(per)))
	kb.Add(base, base, kernel.R(j))

	acc := kb.Reg("acc")
	kb.Const(acc, 0)
	val := kb.Reg("val")
	addr := kb.Reg("addr")
	idx := kb.Reg("idx")
	inRange := kb.Reg("inRange")
	kb.ForDo(kernel.Imm(0), kernel.Imm(int64(f)), 1, func(i kernel.Reg) {
		kb.Mul(idx, i, kernel.Imm(int64(b)))
		kb.Add(idx, idx, kernel.R(base))
		kb.Slt(inRange, idx, kernel.Imm(int64(count)))
		kb.IfDo(inRange, func() {
			kb.Add(addr, idx, kernel.Imm(int64(inBase)))
			kb.LdGlobal(val, addr)
			kb.Add(acc, acc, kernel.R(val))
		})
	})
	kb.StShared(j, acc)
	kb.Barrier()

	sequentialTree(kb, b, j, val)
	writeResult(kb, j, blk, val, addr, outBase)
	return kb.Build()
}

// Run executes the multi-round plan with the selected strategy.
func (r ReduceVariant) Run(h *simgpu.Host, input []Word) (Word, error) {
	if err := checkLen("input", len(input), r.N); err != nil {
		return 0, err
	}
	width := h.Device().Config().WarpWidth
	if !isPow2(width) {
		return 0, fmt.Errorf("%w: device warp width %d", ErrNotPow2, width)
	}
	per := r.perBlockElements(width)

	bufA, err := h.Malloc(r.N)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	bufB, err := h.Malloc(ceilDiv(r.N, per))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDoesNotFit, err)
	}
	if err := h.TransferIn(bufA, input); err != nil {
		return 0, err
	}

	in, out := bufA, bufB
	count := r.N
	for count > 1 {
		prog, err := r.Kernel(width, in, out, count)
		if err != nil {
			return 0, err
		}
		if _, err := h.Launch(prog, ceilDiv(count, per)); err != nil {
			return 0, err
		}
		h.EndRound()
		count = ceilDiv(count, per)
		in, out = out, in
	}
	ans, err := h.TransferOut(in, 1)
	if err != nil {
		return 0, err
	}
	return ans[0], nil
}

// ReduceStrategies lists all implemented strategies.
func ReduceStrategies() []ReduceStrategy {
	return []ReduceStrategy{
		StrategySequential, StrategyInterleaved, StrategyFirstAdd, StrategyGridStride,
	}
}
