package algorithms

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestOutOfCoreReduceCorrectness(t *testing.T) {
	for _, tc := range []struct{ n, chunk int }{
		{100, 16},
		{128, 32},
		{1000, 64},
		{1000, 1000},  // single chunk
		{1000, 10000}, // chunk larger than input
		{17, 4},
	} {
		h := newTestHost(t, 3*tc.chunk+64)
		in := randWords(tc.n, int64(tc.n))
		alg := OutOfCoreReduce{N: tc.n, ChunkWords: tc.chunk}
		res, err := alg.Run(h, in)
		if err != nil {
			t.Fatalf("n=%d chunk=%d: %v", tc.n, tc.chunk, err)
		}
		if want := ReduceReference(in); res.Sum != want {
			t.Fatalf("n=%d chunk=%d: sum = %d, want %d", tc.n, tc.chunk, res.Sum, want)
		}
		wantChunks := (tc.n + tc.chunk - 1) / tc.chunk
		if res.Chunks != wantChunks {
			t.Fatalf("n=%d chunk=%d: chunks = %d, want %d", tc.n, tc.chunk, res.Chunks, wantChunks)
		}
	}
}

// The overlapped schedule can never be slower than serial, and never
// faster than the larger of total-transfer and total-kernel time (the
// pipeline's critical resource).
func TestOverlapScheduleBounds(t *testing.T) {
	h := newTestHost(t, 3*64+64)
	in := randWords(1000, 5)
	res, err := OutOfCoreReduce{N: 1000, ChunkWords: 64}.Run(h, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverlappedTime > res.SerialTime {
		t.Fatalf("overlapped %v slower than serial %v", res.OverlappedTime, res.SerialTime)
	}
	lower := res.TransferTime
	if res.KernelTime > lower {
		lower = res.KernelTime
	}
	if res.OverlappedTime < lower {
		t.Fatalf("overlapped %v beats the critical resource bound %v", res.OverlappedTime, lower)
	}
	if s := res.Speedup(); s < 1 {
		t.Fatalf("speedup = %g, want ≥ 1", s)
	}
}

func TestOutOfCoreValidation(t *testing.T) {
	h := newTestHost(t, 1024)
	if _, err := (OutOfCoreReduce{N: 10, ChunkWords: 0}).Run(h, make([]Word, 10)); !errors.Is(err, ErrBadSize) {
		t.Errorf("zero chunk: %v", err)
	}
	if _, err := (OutOfCoreReduce{N: 10, ChunkWords: 4}).Run(h, make([]Word, 5)); !errors.Is(err, ErrBadShape) {
		t.Errorf("length mismatch: %v", err)
	}
	// Chunk too large for the device.
	h2 := newTestHost(t, 256)
	if _, err := (OutOfCoreReduce{N: 10000, ChunkWords: 100000}).Run(h2, make([]Word, 10000)); !errors.Is(err, ErrDoesNotFit) {
		t.Errorf("oversized chunk: %v", err)
	}
}

func TestAnalyzeSerialComposition(t *testing.T) {
	// The out-of-core analysis must be the concatenation of per-chunk
	// in-core analyses: same total transfer, R = Σ per-chunk rounds.
	alg := OutOfCoreReduce{N: 1000, ChunkWords: 256}
	p := tinyParams(64)
	a, err := alg.AnalyzeSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := 0
	wantTransfer := 0
	for c := 0; c < alg.Chunks(); c++ {
		size := 256
		if c == alg.Chunks()-1 {
			size = 1000 - 3*256
		}
		sub, err := (Reduce{N: size}).Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		wantRounds += sub.R()
		wantTransfer += sub.TotalTransferWords()
	}
	if a.R() != wantRounds {
		t.Fatalf("R = %d, want %d", a.R(), wantRounds)
	}
	if a.TotalTransferWords() != wantTransfer {
		t.Fatalf("transfer = %d, want %d", a.TotalTransferWords(), wantTransfer)
	}
	// Every chunk's input words eventually cross the link: Σ Iᵢ = n.
	inWords := 0
	for _, r := range a.Rounds {
		inWords += r.InWords
	}
	if inWords != 1000 {
		t.Fatalf("Σ Iᵢ = %d, want n = 1000", inWords)
	}
}

func TestAnalyzeSerialValidation(t *testing.T) {
	p := tinyParams(4)
	if _, err := (OutOfCoreReduce{N: 0, ChunkWords: 4}).AnalyzeSerial(p); !errors.Is(err, ErrBadSize) {
		t.Errorf("n=0: %v", err)
	}
	if _, err := (OutOfCoreReduce{N: 4, ChunkWords: 0}).AnalyzeSerial(p); !errors.Is(err, ErrBadSize) {
		t.Errorf("chunk=0: %v", err)
	}
}

// Property: out-of-core and in-core reductions agree for any chunking.
func TestOutOfCoreMatchesInCoreProperty(t *testing.T) {
	f := func(seed int64, nRaw, chunkRaw uint8) bool {
		n := int(nRaw)%200 + 2
		chunk := int(chunkRaw)%64 + 4
		in := randWords(n, seed)
		h := newTestHost(t, 3*chunk+64)
		res, err := OutOfCoreReduce{N: n, ChunkWords: chunk}.Run(h, in)
		if err != nil {
			return false
		}
		return res.Sum == ReduceReference(in) && res.OverlappedTime <= res.SerialTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// overlapSchedule unit tests: hand-checked pipelines.
func TestOverlapScheduleHandCases(t *testing.T) {
	// Equal stages: t=[2,2,2], k=[3,3,3]:
	// T1 ends 2, K1 ends 5; T2 ends 4, K2 starts 5 ends 8; T3 ends 6
	// (buffer of chunk 1 free after K1 at 5 → start max(4, ...)): with
	// double buffering transfer 3 waits for kernel 1 (ends 5)? transfer 3
	// may start when link free (4) and buffer(c-2=1) freed at kernel end 5
	// → ends 5+2=7; K3 starts max(7, 8) = 8, ends 11.
	got := overlapSchedule(durs(2, 2, 2), durs(3, 3, 3))
	if got != 11 {
		t.Fatalf("makespan = %v, want 11", got)
	}
	// Transfer-dominated: t=[10,10], k=[1,1] → 10, 20, kernel ends 21.
	if got := overlapSchedule(durs(10, 10), durs(1, 1)); got != 21 {
		t.Fatalf("transfer-bound makespan = %v, want 21", got)
	}
	// Kernel-dominated: t=[1,1], k=[10,10] → K1 1..11, T2 done at 2,
	// K2 11..21.
	if got := overlapSchedule(durs(1, 1), durs(10, 10)); got != 21 {
		t.Fatalf("kernel-bound makespan = %v, want 21", got)
	}
	// Single chunk: no overlap possible.
	if got := overlapSchedule(durs(5), durs(7)); got != 12 {
		t.Fatalf("single-chunk makespan = %v, want 12", got)
	}
}

func durs(vs ...int) []time.Duration {
	out := make([]time.Duration, len(vs))
	for i, v := range vs {
		out[i] = time.Duration(v)
	}
	return out
}
