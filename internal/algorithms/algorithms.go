// Package algorithms implements the computational problems the paper
// evaluates the ATGPU model on — vector addition, reduction and matrix
// multiplication — plus future-work variants (§V): out-of-core reduction
// under the global memory constraint with differing host-device
// communication schemes.
//
// Each workload supplies three coordinated artefacts:
//
//   - an exact ATGPU analysis (core.Analysis) whose per-round counts follow
//     the closed forms of the paper's Section IV,
//   - executable kernels (kernel.Program) run on the simulated device via a
//     host round plan, faithful to the paper's pseudocode (global→shared
//     staging, lockstep warps, single-block ifs),
//   - a CPU reference for correctness checking.
//
// The analysis and the kernels are deliberately derived from the same
// parameters so that predicted cost trends and simulated running times can
// be compared the way the paper compares predictions against GTX 650
// measurements.
package algorithms

import (
	"errors"
	"fmt"

	"atgpu/internal/mem"
)

// Word re-exports the machine word for callers.
type Word = mem.Word

// Common errors.
var (
	ErrBadSize    = errors.New("algorithms: size must be positive")
	ErrBadShape   = errors.New("algorithms: input shape mismatch")
	ErrNotPow2    = errors.New("algorithms: warp width must be a power of two")
	ErrDoesNotFit = errors.New("algorithms: problem does not fit in global memory")
	ErrVerifyFail = errors.New("algorithms: output does not match reference")
)

// ceilDiv returns ⌈a/d⌉ for positive d.
func ceilDiv(a, d int) int { return (a + d - 1) / d }

// isPow2 reports whether v is a positive power of two.
func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// log2 returns ⌊log₂ v⌋ for v ≥ 1.
func log2(v int) int {
	l := 0
	for v > 1 {
		v >>= 1
		l++
	}
	return l
}

// checkLen verifies a slice length.
func checkLen(name string, got, want int) error {
	if got != want {
		return fmt.Errorf("%w: %s has %d words, want %d", ErrBadShape, name, got, want)
	}
	return nil
}
