package service

import (
	"context"
	"sync"
)

// Cache is the content-addressed result cache: completed job results
// keyed by the FNV-1a request key (see Request.CacheKey), with
// single-flight deduplication — concurrent jobs with the same key share
// one computation — and bounded FIFO eviction.
//
// Only completed computations are cached. A computation that aborts
// (timeout, cancellation, executor error) removes its entry, and any
// coalesced waiters retry: the first retrier computes, so an aborted
// leader never poisons followers. Since everything inside a job is
// deterministic, a cached entry's bytes are exactly what a fresh run
// would produce — the property the identity tests pin down.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[uint64]*cacheEntry
	// order holds completed keys oldest-first for FIFO eviction;
	// in-flight entries are not evictable and stay out of it.
	order []uint64

	hits, misses, coalesced, evicted int64
}

// cacheEntry is one key's slot: in-flight (done open) or completed
// (done closed, result set). The stored *Artifacts is immutable: every
// hit shares it, which is what makes a cached trace byte-identical to
// the fresh run's.
type cacheEntry struct {
	done   chan struct{}
	result *Artifacts
}

// NewCache returns a cache holding at most max completed results
// (max <= 0 means unbounded).
func NewCache(max int) *Cache {
	return &Cache{max: max, entries: make(map[uint64]*cacheEntry)}
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	// Entries is the number of completed results held.
	Entries int `json:"entries"`
	// Hits counts lookups served from a completed entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to compute.
	Misses int64 `json:"misses"`
	// Coalesced counts lookups that waited on another caller's
	// in-flight computation instead of starting their own.
	Coalesced int64 `json:"coalesced"`
	// Evicted counts completed entries dropped by the FIFO bound.
	Evicted int64 `json:"evicted"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.order),
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evicted:   c.evicted,
	}
}

// Do returns the cached result for key, computing it via compute on a
// miss. Concurrent callers with the same key coalesce onto one
// computation; if that computation aborts (compute returns an error),
// waiters retry from the top rather than inheriting the failure — an
// error from Do is always the caller's own. hit reports whether the
// result came from the cache (including a coalesced wait), which the
// manifest records as CacheHit.
func (c *Cache) Do(ctx context.Context, key uint64, compute func() (*Artifacts, error)) (result *Artifacts, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			select {
			case <-e.done:
				// Completed entry: a hit.
				c.hits++
				c.mu.Unlock()
				return e.result, true, nil
			default:
			}
			// In flight: wait for the leader, then re-check — the
			// entry is gone if the leader aborted.
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-e.done:
				c.mu.Lock()
				if cur, ok := c.entries[key]; ok && cur == e {
					c.mu.Unlock()
					return e.result, true, nil
				}
				// Leader aborted; loop and try to become the leader.
				c.mu.Unlock()
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		// Miss: become the leader.
		e := &cacheEntry{done: make(chan struct{})}
		c.entries[key] = e
		c.misses++
		c.mu.Unlock()

		result, err = compute()
		c.mu.Lock()
		if err != nil {
			// Aborted: remove the entry so waiters retry; nothing
			// non-deterministic (timeouts, cancels) is ever cached.
			delete(c.entries, key)
			close(e.done)
			c.mu.Unlock()
			return nil, false, err
		}
		e.result = result
		close(e.done)
		c.order = append(c.order, key)
		for c.max > 0 && len(c.order) > c.max {
			old := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, old)
			c.evicted++
		}
		c.mu.Unlock()
		return result, false, nil
	}
}
