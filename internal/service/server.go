package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"atgpu/internal/experiments"
	"atgpu/internal/obs"
	"atgpu/internal/results"
	"atgpu/internal/sched"
)

// ServerConfig sizes the daemon's robustness envelope.
type ServerConfig struct {
	// Workers is the job worker pool size (default 4).
	Workers int
	// QueueSize bounds the admission queue; a full queue answers 429
	// (default 64).
	QueueSize int
	// PerClient caps one client's non-terminal jobs (default 16;
	// negative disables the cap).
	PerClient int
	// DefaultTimeout bounds jobs that do not set timeout_ms
	// (default 2 minutes).
	DefaultTimeout time.Duration
	// DrainTimeout is how long graceful shutdown waits for running jobs
	// before cancelling them (default 10 seconds).
	DrainTimeout time.Duration
	// ManifestPath, when set, receives the persisted manifest on
	// shutdown.
	ManifestPath string
	// ResultsPath, when set, opens the canonical result store there:
	// every successful job's records are appended, stamped with the job
	// ID, so the daemon's history is queryable with `atgpu results`.
	ResultsPath string
	// CacheEntries bounds the result cache (default 256).
	CacheEntries int
	// Warm lists device presets to pre-calibrate at boot.
	Warm []string
	// LogWriter receives the structured (JSON) log stream; nil discards
	// it. The daemon binary points this at stderr.
	LogWriter io.Writer
	// TraceRing bounds how many completed jobs' trace/metrics artifact
	// sets are retained for GET /v1/jobs/{id}/trace (default 256).
	TraceRing int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.PerClient == 0 {
		c.PerClient = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	return c
}

// Server is the atgpud daemon core: manifest, cache, executor, worker
// pool and the HTTP API over them. Create with NewServer, serve
// Handler(), stop with Shutdown.
type Server struct {
	cfg      ServerConfig
	manifest *Manifest
	cache    *Cache
	exec     *Executor
	store    *results.Store
	git      string

	// mu guards draining and serialises queue sends, so the
	// length-check-then-send admission is race-free (workers only ever
	// receive).
	mu       sync.Mutex
	draining bool
	rejected int64

	queue   chan string
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// tel is the wall-clock telemetry plane: operational metrics,
	// structured logs, request IDs and the per-job artifact ring.
	tel *Telemetry
}

// NewServer builds the daemon core: it pre-calibrates the Warm presets
// and starts the worker pool. The caller owns serving Handler() and
// calling Shutdown.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		manifest: NewManifest(),
		cache:    NewCache(cfg.CacheEntries),
		exec:     NewExecutor(),
		queue:    make(chan string, cfg.QueueSize),
		tel:      newTelemetry(cfg.LogWriter, cfg.TraceRing),
	}
	s.manifest.SetObserver(s.tel.onTransition)
	s.exec.Sched = s.tel
	if err := s.exec.Warm(cfg.Warm...); err != nil {
		return nil, err
	}
	if cfg.ResultsPath != "" {
		store, err := results.Open(cfg.ResultsPath)
		if err != nil {
			return nil, fmt.Errorf("service: open result store: %w", err)
		}
		s.store = store
		s.git = results.GitDescribe("")
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func(id int) {
			defer s.wg.Done()
			for {
				select {
				case <-s.baseCtx.Done():
					return
				case jobID, ok := <-s.queue:
					if !ok {
						return
					}
					// Protect keeps the worker alive across service
					// bugs; job panics are recovered deeper (on the
					// exec goroutine) and recorded on the job itself.
					// A panic that does land here still must not leak
					// the job in a non-terminal state.
					if err := sched.Protect(func() error {
						s.runJob(id, jobID)
						return nil
					}); err != nil {
						var pe *sched.PanicError
						if errors.As(err, &pe) {
							s.failNonTerminal(jobID, "worker panic: "+pe.Error(), string(pe.Stack))
						}
					}
				}
			}
		}(w)
	}
	return s, nil
}

// Manifest exposes the job table (for tests and the daemon binary).
func (s *Server) Manifest() *Manifest { return s.manifest }

// Telemetry exposes the telemetry plane (for the daemon binary's
// logger and for tests).
func (s *Server) Telemetry() *Telemetry { return s.tel }

// failNonTerminal forces a job to failed unless it already finished —
// the backstop that keeps even a buggy worker from leaking a running
// job.
func (s *Server) failNonTerminal(id, msg, stack string) {
	if j, ok := s.manifest.Get(id); ok && !j.State.Terminal() {
		s.manifest.finish(id, StateFailed, msg, stack, nil, false)
	}
}

// testExecHook, when non-nil, runs on the exec goroutine before a job
// executes — tests use it to inject panics into the execution path and
// prove they surface as failed manifest entries, not dead workers. Atomic
// because workers from an earlier test's still-draining server may read it
// while the next test installs its hook.
var testExecHook atomic.Pointer[func(Request)]

// jobOutcome is what the exec goroutine hands back to its worker.
type jobOutcome struct {
	art *Artifacts
	hit bool
	err error
}

// runJob executes one queued job end to end: transition to running,
// execute under the job deadline with panic recovery, record the
// terminal state. The execution runs on a child goroutine so an expired
// deadline releases the worker immediately; the detached child stops at
// the next point boundary (the runner watches the same context) and its
// result is discarded.
func (s *Server) runJob(worker int, id string) {
	job, ok := s.manifest.Get(id)
	if !ok {
		return
	}
	timeout := s.cfg.DefaultTimeout
	if job.Request.TimeoutMs > 0 {
		timeout = time.Duration(job.Request.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	if !s.manifest.start(id, worker, cancel) {
		// Cancelled while queued; already terminal.
		return
	}

	ch := make(chan jobOutcome, 1)
	go func() {
		var out jobOutcome
		execStart := time.Now()
		out.err = sched.Protect(func() error {
			if hook := testExecHook.Load(); hook != nil {
				(*hook)(job.Request)
			}
			var err error
			out.art, out.hit, err = s.execute(ctx, job.Request)
			return err
		})
		s.tel.reg.Observe(obs.Name(MetricExecNs,
			obs.Label{Key: "kind", Value: job.Request.Kind}), time.Since(execStart))
		ch <- out
	}()

	select {
	case out := <-ch:
		s.record(id, ctx, out)
	case <-ctx.Done():
		s.record(id, ctx, jobOutcome{err: ctx.Err()})
	}
}

// execute resolves a job through the cache (unless bypassed).
func (s *Server) execute(ctx context.Context, req Request) (*Artifacts, bool, error) {
	if req.NoCache {
		art, err := s.exec.Execute(ctx, req)
		return art, false, err
	}
	key, err := req.CacheKey()
	if err != nil {
		return nil, false, err
	}
	return s.cache.Do(ctx, key, func() (*Artifacts, error) {
		return s.exec.Execute(ctx, req)
	})
}

// record maps an execution outcome onto the job's terminal state:
// success, failed (with stack for panics), or — for interrupted work —
// cancelled when the stop was asked for (client cancel or shutdown) and
// timeout when the deadline expired on its own. First transition wins,
// so a job whose natural completion races its cancellation stays
// consistent.
func (s *Server) record(id string, ctx context.Context, out jobOutcome) {
	var pe *sched.PanicError
	switch {
	case out.err == nil:
		job, _ := s.manifest.Get(id)
		if out.art != nil && (job.Request.Trace || job.Request.Metrics) {
			// Retain the artifact set — cache hits share the leader's
			// immutable *Artifacts, preserving byte-identity.
			s.tel.ring.Put(id, out.art)
		}
		s.manifest.finish(id, StateSuccess, "", "", out.art.Result, out.hit)
		s.persistRecords(id, out.art.Result)
	case errors.As(out.err, &pe):
		s.manifest.finish(id, StateFailed, pe.Error(), string(pe.Stack), nil, false)
	case errors.Is(out.err, experiments.ErrCancelled),
		errors.Is(out.err, context.Canceled),
		errors.Is(out.err, context.DeadlineExceeded):
		switch {
		case s.manifest.cancelRequestedFor(id):
			s.manifest.finish(id, StateCancelled, "cancelled by client", "", nil, false)
		case s.baseCtx.Err() != nil:
			s.manifest.finish(id, StateCancelled, "daemon shutting down", "", nil, false)
		default:
			s.manifest.finish(id, StateTimeout,
				fmt.Sprintf("deadline exceeded: %v", out.err), "", nil, false)
		}
	default:
		s.manifest.finish(id, StateFailed, out.err.Error(), "", nil, false)
	}
}

// persistRecords appends a successful job's canonical records to the
// result store (when configured): the deterministic record body comes
// straight out of the result document — cache hits included — and the
// envelope carries the wall time, host and job ID. Append failures are
// logged on the job's manifest entry as an event, never failed: the
// result itself is already recorded.
func (s *Server) persistRecords(id string, data []byte) {
	if s.store == nil {
		return
	}
	var doc struct {
		Records []results.Record `json:"records"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || len(doc.Records) == 0 {
		return
	}
	host, _ := os.Hostname()
	env := &results.Env{
		SavedUnix: time.Now().Unix(),
		Host:      host,
		Note:      "job " + id,
	}
	for _, rec := range doc.Records {
		rec.Run = id
		rec.Git = s.git
		if err := s.store.Append(rec, env); err != nil {
			s.manifest.appendEvent(id, "result store append failed: "+err.Error())
			return
		}
	}
}

// Submit admits one job: validation, overload and per-client checks,
// manifest entry, queue. It returns the pending job view, or an
// AdmissionError telling the transport layer which status to answer.
// The job's trace ID is minted at admission; submissions arriving over
// HTTP carry their request ID instead (see handleSubmit).
func (s *Server) Submit(client string, req Request) (Job, error) {
	return s.submitTraced(client, s.tel.nextRequestID(), req)
}

// submitTraced is Submit with an explicit admission-assigned trace ID.
func (s *Server) submitTraced(client, traceID string, req Request) (Job, error) {
	norm, err := req.Normalize()
	if err != nil {
		return Job{}, &AdmissionError{Status: http.StatusBadRequest, Msg: err.Error()}
	}
	// Key computation doubles as deep validation (e.g. matmul sizes not
	// divisible by the warp width fail here, before queueing).
	if _, err := norm.CacheKey(); err != nil {
		return Job{}, &AdmissionError{Status: http.StatusBadRequest, Msg: err.Error()}
	}
	if s.cfg.PerClient > 0 && s.manifest.InFlight(client) >= s.cfg.PerClient {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		s.tel.rejected("per_client", client)
		return Job{}, &AdmissionError{
			Status: http.StatusTooManyRequests,
			Msg:    fmt.Sprintf("client %q has %d jobs in flight (cap %d)", client, s.cfg.PerClient, s.cfg.PerClient),
			Retry:  true,
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.tel.rejected("draining", client)
		return Job{}, &AdmissionError{Status: http.StatusServiceUnavailable, Msg: "daemon draining", Retry: true}
	}
	if len(s.queue) == cap(s.queue) {
		s.rejected++
		s.mu.Unlock()
		s.tel.rejected("queue_full", client)
		return Job{}, &AdmissionError{Status: http.StatusTooManyRequests, Msg: "admission queue full", Retry: true}
	}
	job := s.manifest.Add(client, traceID, norm)
	// Cannot block: length < capacity above, and every sender holds mu.
	s.queue <- job.ID
	s.mu.Unlock()
	return job, nil
}

// AdmissionError is a rejected submission: an HTTP status, a message,
// and whether the client should retry later (429/503 carry Retry-After).
type AdmissionError struct {
	Status int
	Msg    string
	Retry  bool
}

func (e *AdmissionError) Error() string { return e.Msg }

// Shutdown drains the daemon: admission stops, queued jobs are
// cancelled, running jobs get up to DrainTimeout (bounded further by
// ctx) to finish, stragglers are cancelled, and the manifest is
// persisted when configured. After Shutdown no job is left in a
// non-terminal state.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already shut down")
	}
	s.draining = true
	close(s.queue) // safe: senders hold mu and check draining first
	s.mu.Unlock()

	// Queued-but-unstarted jobs are cancelled, racing the workers for
	// the channel; jobs a worker wins are already running and covered by
	// the drain deadline below.
	for id := range s.queue {
		s.manifest.RequestCancel(id, "daemon shutting down")
	}

	deadline := time.NewTimer(s.cfg.DrainTimeout)
	defer deadline.Stop()
	done := waitDone(&s.wg)
	drained := true
	select {
	case <-done:
	case <-deadline.C:
		drained = false
	case <-ctx.Done():
		drained = false
	}
	// Cancel stragglers (no-op when drained: workers already exited).
	s.stop()
	<-done
	// Workers are gone; nothing can transition jobs anymore. Sweep any
	// job the cancel raced past into a terminal state.
	for _, id := range s.manifest.NonTerminal() {
		s.manifest.RequestCancel(id, "daemon shutting down")
		s.failNonTerminal(id, "daemon shutting down", "")
	}

	var err error
	if s.store != nil {
		err = s.store.Close()
	}
	if s.cfg.ManifestPath != "" {
		if serr := s.manifest.Save(s.cfg.ManifestPath); err == nil {
			err = serr
		}
	}
	if !drained && err == nil {
		err = fmt.Errorf("service: drain deadline expired; running jobs were cancelled")
	}
	return err
}

// waitDone adapts a WaitGroup to a channel for use in select.
func waitDone(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		defer func() {
			// Satisfies the gorecover contract; Wait only panics on
			// WaitGroup misuse, which close(ch) must still survive.
			_ = recover()
		}()
		wg.Wait()
	}()
	return ch
}

// ServerStats is the /v1/stats document.
type ServerStats struct {
	States       map[State]int `json:"states"`
	QueueDepth   int           `json:"queue_depth"`
	QueueCap     int           `json:"queue_cap"`
	Draining     bool          `json:"draining"`
	Rejected     int64         `json:"rejected"`
	NonTerminal  int           `json:"non_terminal"`
	Cache        CacheStats    `json:"cache"`
	Calibrations int           `json:"calibrations"`
}

// Stats snapshots the daemon.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	draining, rejected, depth := s.draining, s.rejected, len(s.queue)
	s.mu.Unlock()
	return ServerStats{
		States:       s.manifest.CountByState(),
		QueueDepth:   depth,
		QueueCap:     s.cfg.QueueSize,
		Draining:     draining,
		Rejected:     rejected,
		NonTerminal:  len(s.manifest.NonTerminal()),
		Cache:        s.cache.Stats(),
		Calibrations: s.exec.CalibrationsWarmed(),
	}
}

// Ready reports whether the daemon should accept new work: not
// draining, and the queue under 80% occupancy (load balancers back off
// on /readyz before hard 429s start).
func (s *Server) Ready() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, "draining"
	}
	if 5*len(s.queue) >= 4*cap(s.queue) {
		return false, fmt.Sprintf("queue at %d/%d", len(s.queue), cap(s.queue))
	}
	return true, "ok"
}

// handle registers pattern on mux with the route marked for telemetry
// (metrics route label, request log) before the handler runs.
func (s *Server) handle(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		markRoute(w, pattern)
		h(w, r)
	})
}

// Handler returns the HTTP API:
//
//	POST   /v1/jobs              submit (202; ?wait via request field)
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         one job view
//	DELETE /v1/jobs/{id}         request cancellation
//	GET    /v1/jobs/{id}/result  the raw result document (success only)
//	GET    /v1/jobs/{id}/events  the append-only event log
//	GET    /v1/jobs/{id}/trace   the job's simulated-time Perfetto trace
//	GET    /v1/jobs/{id}/metrics the job's simulated-time metrics (Prometheus text)
//	GET    /v1/stats             counters
//	GET    /metrics              operational metrics (Prometheus text exposition)
//	GET    /metrics.json         the same snapshot as JSON
//	GET    /metrics.otlp         the same snapshot as OTLP/JSON
//	GET    /tracez               wall-clock service timeline (Perfetto)
//	GET    /healthz              process liveness (always 200)
//	GET    /readyz               load acceptance (503 when overloaded)
//
// Every request gets an X-Request-ID; every non-2xx response is a JSON
// body carrying it, and 429/503 always carry Retry-After.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.handle(mux, "POST /v1/jobs", s.handleSubmit)
	s.handle(mux, "GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.manifest.List())
	})
	s.handle(mux, "GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if job, ok := s.manifest.Get(r.PathValue("id")); ok {
			writeJSON(w, http.StatusOK, job)
			return
		}
		httpError(w, r, http.StatusNotFound, "no such job")
	})
	s.handle(mux, "DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := s.manifest.RequestCancel(id, "cancelled by client"); !ok {
			httpError(w, r, http.StatusNotFound, "no such job")
			return
		}
		job, _ := s.manifest.Get(id)
		writeJSON(w, http.StatusOK, job)
	})
	s.handle(mux, "GET /v1/jobs/{id}/result", s.handleResult)
	s.handle(mux, "GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		if job, ok := s.manifest.Get(r.PathValue("id")); ok {
			writeJSON(w, http.StatusOK, job.Events)
			return
		}
		httpError(w, r, http.StatusNotFound, "no such job")
	})
	s.handle(mux, "GET /v1/jobs/{id}/trace", s.handleJobArtifact(func(a *Artifacts) []byte { return a.Trace }, "trace"))
	s.handle(mux, "GET /v1/jobs/{id}/metrics", s.handleJobArtifact(func(a *Artifacts) []byte { return a.Metrics }, "metrics"))
	s.handle(mux, "GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	s.handle(mux, "GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.MetricsSnapshot().WritePrometheus(w); err != nil {
			s.tel.log.Error("metrics exposition failed", "error", err.Error())
		}
	})
	s.handle(mux, "GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.MetricsSnapshot().WriteJSON(w); err != nil {
			s.tel.log.Error("metrics JSON failed", "error", err.Error())
		}
	})
	s.handle(mux, "GET /metrics.otlp", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.MetricsSnapshot().WriteOTLP(w, "atgpud", time.Now().UnixNano()); err != nil {
			s.tel.log.Error("metrics OTLP failed", "error", err.Error())
		}
	})
	s.handle(mux, "GET /tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.writeTracez(w); err != nil {
			s.tel.log.Error("tracez failed", "error", err.Error())
		}
	})
	s.handle(mux, "GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.handle(mux, "GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, why := s.Ready()
		if !ready {
			httpError(w, r, http.StatusServiceUnavailable, why)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, why)
	})
	return s.tel.middleware(mux)
}

// handleJobArtifact serves one retained per-job artifact (trace or
// metrics): 404 for unknown jobs or jobs that did not request the
// artifact, 202 while running, 410 when the ring evicted it.
func (s *Server) handleJobArtifact(pick func(*Artifacts) []byte, what string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		job, ok := s.manifest.Get(id)
		if !ok {
			httpError(w, r, http.StatusNotFound, "no such job")
			return
		}
		wants := job.Request.Trace
		if what == "metrics" {
			wants = job.Request.Metrics
		}
		if !wants {
			httpError(w, r, http.StatusNotFound, "job did not request "+what+" collection")
			return
		}
		if !job.State.Terminal() {
			w.Header().Set("Retry-After", "1")
			httpError(w, r, http.StatusAccepted, "job still "+string(job.State))
			return
		}
		if job.State != StateSuccess {
			httpError(w, r, http.StatusConflict, fmt.Sprintf("job %s: %s", job.State, job.Error))
			return
		}
		art, ok := s.tel.ring.Get(id)
		if !ok {
			httpError(w, r, http.StatusGone, what+" evicted from the trace ring")
			return
		}
		if what == "metrics" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "application/json")
		}
		if job.CacheHit {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		w.Write(pick(art))
	}
}

// handleSubmit decodes, admits and (optionally) waits for one job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, r, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// The HTTP request ID doubles as the job's trace ID, so one
	// identifier follows the job from admission through the logs.
	job, err := s.submitTraced(clientID(r), requestID(r), req)
	if err != nil {
		var adm *AdmissionError
		if errors.As(err, &adm) {
			if adm.Retry {
				w.Header().Set("Retry-After", "1")
			}
			httpError(w, r, adm.Status, adm.Msg)
			return
		}
		httpError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	select {
	case <-s.manifest.Done(job.ID):
		final, _ := s.manifest.Get(job.ID)
		writeJSON(w, http.StatusOK, final)
	case <-r.Context().Done():
		// Client gave up waiting; the job keeps running.
		httpError(w, r, http.StatusRequestTimeout, "client disconnected while waiting; job "+job.ID+" continues")
	}
}

// handleResult serves a finished job's raw result bytes: exactly what
// the executor produced (or the cache stored — byte-identical by
// contract), with X-Cache reporting which.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manifest.Get(r.PathValue("id"))
	switch {
	case !ok:
		httpError(w, r, http.StatusNotFound, "no such job")
	case !job.State.Terminal():
		w.Header().Set("Retry-After", "1")
		httpError(w, r, http.StatusAccepted, "job still "+string(job.State))
	case job.State != StateSuccess:
		httpError(w, r, http.StatusConflict,
			fmt.Sprintf("job %s: %s", job.State, job.Error))
	default:
		w.Header().Set("Content-Type", "application/json")
		if job.CacheHit {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		w.Write(job.Result)
	}
}

// clientID identifies the caller for per-client caps: the X-Client-ID
// header when present, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeJSON writes v as an indented JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		httpError(w, nil, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// httpError writes the JSON error envelope, always carrying the
// middleware-assigned request ID (r may be nil in internal fallbacks;
// the envelope then reports an empty ID).
func httpError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	id := ""
	if r != nil {
		id = requestID(r)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\n  \"error\": %s,\n  \"request_id\": %s\n}\n", strconv.Quote(msg), strconv.Quote(id))
}
