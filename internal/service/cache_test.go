package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(2)
	ctx := context.Background()
	compute := func(v string) func() (*Artifacts, error) {
		return func() (*Artifacts, error) { return &Artifacts{Result: []byte(v)}, nil }
	}

	got, hit, err := c.Do(ctx, 1, compute("one"))
	if err != nil || hit || string(got.Result) != "one" {
		t.Fatalf("first Do = %q hit=%v err=%v", got.Result, hit, err)
	}
	got, hit, err = c.Do(ctx, 1, compute("IGNORED"))
	if err != nil || !hit || string(got.Result) != "one" {
		t.Fatalf("second Do = %q hit=%v err=%v", got.Result, hit, err)
	}

	c.Do(ctx, 2, compute("two"))
	c.Do(ctx, 3, compute("three")) // evicts key 1 (FIFO)
	if _, hit, _ := c.Do(ctx, 1, compute("one again")); hit {
		t.Fatal("evicted key still hit")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Hits != 1 || st.Evicted != 2 || st.Misses != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheSingleFlightCoalesces(t *testing.T) {
	c := NewCache(0)
	ctx := context.Background()
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	var computes int

	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(ctx, 7, func() (*Artifacts, error) {
			computes++
			close(leaderIn)
			<-release
			return &Artifacts{Result: []byte("shared")}, nil
		})
	}()
	<-leaderIn

	// Followers arrive while the leader computes; they must coalesce.
	results := make([]*Artifacts, 3)
	hits := make([]bool, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], hits[i], _ = c.Do(ctx, 7, func() (*Artifacts, error) {
				t.Error("follower computed despite in-flight leader")
				return nil, nil
			})
		}(i)
	}
	// Give the followers a moment to block on the in-flight entry, then
	// release the leader. (Timing only affects whether they coalesce or
	// hit the completed entry — both acceptable, both computed once.)
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	for i := range results {
		if string(results[i].Result) != "shared" || !hits[i] {
			t.Fatalf("follower %d got %q hit=%v", i, results[i].Result, hits[i])
		}
	}
}

func TestCacheAbortedLeaderDoesNotPoisonWaiters(t *testing.T) {
	c := NewCache(0)
	ctx := context.Background()
	leaderIn := make(chan struct{})
	abort := make(chan struct{})
	boom := errors.New("leader timed out")

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(ctx, 9, func() (*Artifacts, error) {
			close(leaderIn)
			<-abort
			return nil, boom
		})
	}()
	<-leaderIn

	waiterDone := make(chan struct{})
	var got *Artifacts
	var hit bool
	var err error
	go func() {
		defer close(waiterDone)
		got, hit, err = c.Do(ctx, 9, func() (*Artifacts, error) {
			// The waiter becomes the new leader after the abort and
			// computes its own (successful) result.
			return &Artifacts{Result: []byte("recovered")}, nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	close(abort)
	wg.Wait()
	<-waiterDone

	if !errors.Is(leaderErr, boom) {
		t.Fatalf("leader error = %v, want its own abort", leaderErr)
	}
	if err != nil || string(got.Result) != "recovered" {
		t.Fatalf("waiter got %q hit=%v err=%v — poisoned by the leader's abort", got.Result, hit, err)
	}
	// Nothing non-deterministic was cached before the recovery.
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats = %+v, want exactly the recovered entry", st)
	}
}

func TestCacheWaiterHonoursContext(t *testing.T) {
	c := NewCache(0)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), 5, func() (*Artifacts, error) {
			close(leaderIn)
			<-release
			return &Artifacts{Result: []byte("late")}, nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, 5, func() (*Artifacts, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(64)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := []byte(fmt.Sprintf("v%d", i%8))
			got, _, err := c.Do(ctx, uint64(i%8), func() (*Artifacts, error) {
				return &Artifacts{Result: want}, nil
			})
			if err != nil || !bytes.Equal(got.Result, want) {
				t.Errorf("key %d: got %q err=%v", i%8, got.Result, err)
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 8 || st.Misses != 8 {
		t.Fatalf("stats = %+v, want 8 entries from 8 computes", st)
	}
}
