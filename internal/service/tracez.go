package service

import (
	"fmt"
	"io"
	"time"

	"atgpu/internal/obs"
)

// /tracez: the aggregate wall-clock service timeline. Where a per-job
// trace shows simulated time inside one job, tracez stitches every
// job's lifecycle (queued → assigned → running → terminal) onto the
// daemon's wall clock — one Perfetto view of what the queue and the
// worker pool were actually doing. Built from the manifest on demand;
// timestamps are nanoseconds since the daemon booted.

// writeTracez renders the service timeline as Perfetto/Chrome trace
// JSON: a "queue" track holding each job's pending span and one track
// per worker holding its running spans, plus instants for cancel
// requests surfaced in the event log.
func (s *Server) writeTracez(w io.Writer) error {
	t := s.tel
	now := time.Now()
	// Relative clock: the recorder speaks durations, so anchor every
	// wall instant to boot (clamped — jobs cannot predate the daemon).
	rel := func(at time.Time) time.Duration {
		d := at.Sub(t.start)
		if d < 0 {
			d = 0
		}
		return d
	}
	rec := obs.NewRecorder(0)
	for _, job := range s.manifest.List() {
		args := []obs.Arg{
			{Key: "job", Value: job.ID},
			{Key: "trace_id", Value: job.TraceID},
			{Key: "kind", Value: job.Request.Kind},
			{Key: "state", Value: string(job.State)},
			{Key: "client", Value: job.Client},
		}
		if job.CacheHit {
			args = append(args, obs.Arg{Key: "cache_hit", Value: "true"})
		}
		if job.Error != "" {
			args = append(args, obs.Arg{Key: "error", Value: job.Error})
		}
		// Pending span: submission until worker assignment (or terminal
		// for jobs cancelled while queued; "now" for still-queued jobs).
		queueEnd := now
		switch {
		case !job.Started.IsZero():
			queueEnd = job.Started
		case !job.Finished.IsZero():
			queueEnd = job.Finished
		}
		rec.Span("atgpud", "queue", job.ID+" queued", rel(job.Created), rel(queueEnd), args...)
		// Running span on the worker's own track.
		if !job.Started.IsZero() {
			runEnd := now
			if !job.Finished.IsZero() {
				runEnd = job.Finished
			}
			track := fmt.Sprintf("worker %02d", job.Worker)
			rec.Span("atgpud", track, job.ID+" "+job.Request.Kind, rel(job.Started), rel(runEnd), args...)
		}
		// Terminal instant, so the outcome is visible even at zoom-out.
		if !job.Finished.IsZero() {
			rec.Instant("atgpud", "queue", job.ID+" "+string(job.State), rel(job.Finished), args...)
		}
	}
	return rec.WriteTrace(w)
}
