package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"atgpu/internal/results"
)

// newTestServer starts a full daemon core (workers running) and tears it
// down with the test.
func newTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.Warm == nil {
		cfg.Warm = []string{"tiny"}
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) // double-shutdown from tests that shut down themselves is reported, not fatal
	})
	return s
}

// newIdleServer builds the daemon core with no workers: jobs queue and
// never start, which makes admission behaviour fully deterministic.
func newIdleServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		manifest: NewManifest(),
		cache:    NewCache(cfg.CacheEntries),
		exec:     NewExecutor(),
		queue:    make(chan string, cfg.QueueSize),
		tel:      newTelemetry(nil, 0),
	}
	s.manifest.SetObserver(s.tel.onTransition)
	s.exec.Sched = s.tel
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	return s
}

func waitTerminal(t *testing.T, s *Server, id string) Job {
	t.Helper()
	select {
	case <-s.manifest.Done(id):
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", id)
	}
	job, ok := s.manifest.Get(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	return job
}

func TestServerRunJobSuccess(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 2})
	job, err := s.Submit("t", Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateSuccess || final.CacheHit {
		t.Fatalf("job = state=%s cachehit=%v err=%q", final.State, final.CacheHit, final.Error)
	}
	if final.Worker < 0 || final.Started.IsZero() || final.Finished.IsZero() {
		t.Fatalf("lifecycle stamps missing: %+v", final)
	}
	var doc Result
	if err := json.Unmarshal(final.Result, &doc); err != nil || doc.Point == nil || doc.Point.N != 64 {
		t.Fatalf("result doc = %s (err %v)", final.Result, err)
	}
	states := []State{}
	for _, ev := range final.Events {
		if ev.State != "" {
			states = append(states, ev.State)
		}
	}
	want := []State{StatePending, StateRunning, StateSuccess}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("event states = %v, want %v", states, want)
	}
}

// TestServerCacheIdentity is the tentpole acceptance: a cache hit must
// be byte-identical to a fresh simulation, including under injected
// faults.
func TestServerCacheIdentity(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 2})
	req := Request{Kind: "run", Workload: "reduce", N: 512, Device: "tiny",
		Seed: 7, FaultRate: 0.05, FaultSeed: 13}

	first, err := s.Submit("t", req)
	if err != nil {
		t.Fatal(err)
	}
	a := waitTerminal(t, s, first.ID)
	if a.State != StateSuccess || a.CacheHit {
		t.Fatalf("fresh job = %s cachehit=%v err=%q", a.State, a.CacheHit, a.Error)
	}

	second, err := s.Submit("t", req)
	if err != nil {
		t.Fatal(err)
	}
	b := waitTerminal(t, s, second.ID)
	if b.State != StateSuccess || !b.CacheHit {
		t.Fatalf("repeat job = %s cachehit=%v", b.State, b.CacheHit)
	}

	bypassReq := req
	bypassReq.NoCache = true
	third, err := s.Submit("t", bypassReq)
	if err != nil {
		t.Fatal(err)
	}
	c := waitTerminal(t, s, third.ID)
	if c.State != StateSuccess || c.CacheHit {
		t.Fatalf("no-cache job = %s cachehit=%v", c.State, c.CacheHit)
	}

	if !bytes.Equal(a.Result, b.Result) {
		t.Errorf("cache hit differs from the fresh run:\n%s\nvs\n%s", a.Result, b.Result)
	}
	if !bytes.Equal(a.Result, c.Result) {
		t.Errorf("cache-bypassed rerun differs from the original:\n%s\nvs\n%s", a.Result, c.Result)
	}
	if st := s.cache.Stats(); st.Hits+st.Coalesced < 1 {
		t.Errorf("cache stats = %+v, want the repeat served by the cache", st)
	}
}

func TestServerExecutorErrorFailsJob(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 1})
	// vecadd n too large for tiny's 4096-word global memory: a real
	// executor error, surfaced as a failed job — not a dead worker.
	job, err := s.Submit("t", Request{Kind: "run", Workload: "vecadd", N: 4000,
		Device: "tiny", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "exceeds") {
		t.Fatalf("job = %s err=%q", final.State, final.Error)
	}
	// The worker survived: the next job still runs.
	ok, err := s.Submit("t", Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, s, ok.ID); final.State != StateSuccess {
		t.Fatalf("follow-up job = %s err=%q", final.State, final.Error)
	}
}

func TestServerTimeoutState(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 1, Warm: []string{"gtx650"}})
	// A reduce over 2^22 words on the gtx650 simulator takes far longer
	// than 1 ms, so the deadline always wins.
	job, err := s.Submit("t", Request{Kind: "run", Workload: "reduce", N: 1 << 22,
		TimeoutMs: 1, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateTimeout || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("job = %s err=%q", final.State, final.Error)
	}
}

func TestServerCancelRunning(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 1, Warm: []string{"gtx650"}})
	job, err := s.Submit("t", Request{Kind: "run", Workload: "reduce", N: 1 << 22,
		NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := s.manifest.Get(job.ID)
		if j.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", j.State)
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := s.manifest.RequestCancel(job.ID, "cancelled by client"); !ok {
		t.Fatal("cancel refused")
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateCancelled || final.Error != "cancelled by client" {
		t.Fatalf("job = %s err=%q", final.State, final.Error)
	}
}

// TestServerPanicBecomesFailedJob injects a panic into the execution
// path and asserts the contract: the job fails with the stack attached,
// the worker survives and keeps serving.
func TestServerPanicBecomesFailedJob(t *testing.T) {
	const marker = int64(424242)
	hook := func(req Request) {
		if req.Seed == marker {
			panic("injected service crash")
		}
	}
	testExecHook.Store(&hook)
	t.Cleanup(func() { testExecHook.Store(nil) })
	s := newTestServer(t, ServerConfig{Workers: 1})

	job, err := s.Submit("t", Request{Kind: "run", Workload: "vecadd", N: 64,
		Device: "tiny", Seed: marker, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "injected service crash") {
		t.Fatalf("panicked job = %s err=%q", final.State, final.Error)
	}
	if !strings.Contains(final.Stack, "goroutine") {
		t.Fatalf("stack not attached: %q", final.Stack)
	}

	// The worker is still alive: an untainted job runs to success.
	ok, err := s.Submit("t", Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, s, ok.ID); final.State != StateSuccess {
		t.Fatalf("follow-up job = %s err=%q", final.State, final.Error)
	}

	s.failNonTerminal(ok.ID, "late panic", "stack") // must be a no-op on terminal jobs
	if again, _ := s.manifest.Get(ok.ID); again.State != StateSuccess {
		t.Fatalf("failNonTerminal overwrote a terminal job: %s", again.State)
	}
}

func TestServerBackpressure(t *testing.T) {
	s := newIdleServer(ServerConfig{QueueSize: 2, PerClient: -1})
	if _, err := s.Submit("c", testRequest()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("c", testRequest()); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit("c", testRequest())
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Status != http.StatusTooManyRequests || !adm.Retry {
		t.Fatalf("overflow submit: %v", err)
	}
	if ready, why := s.Ready(); ready {
		t.Fatalf("full queue reported ready (%s)", why)
	}
	if st := s.Stats(); st.Rejected != 1 || st.QueueDepth != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerPerClientCap(t *testing.T) {
	s := newIdleServer(ServerConfig{QueueSize: 64, PerClient: 2})
	s.Submit("greedy", testRequest())
	s.Submit("greedy", testRequest())
	_, err := s.Submit("greedy", testRequest())
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Status != http.StatusTooManyRequests {
		t.Fatalf("capped submit: %v", err)
	}
	if _, err := s.Submit("patient", testRequest()); err != nil {
		t.Fatalf("other client blocked by greedy's cap: %v", err)
	}
}

func TestServerBadRequestRejectedAtAdmission(t *testing.T) {
	s := newIdleServer(ServerConfig{})
	for _, req := range []Request{
		{Kind: "nope", Workload: "vecadd", N: 8},
		{Kind: "run", Workload: "matmul", N: 37, Device: "tiny"}, // CacheKey-level validation
	} {
		_, err := s.Submit("c", req)
		var adm *AdmissionError
		if !errors.As(err, &adm) || adm.Status != http.StatusBadRequest {
			t.Errorf("bad request %+v: %v", req, err)
		}
	}
	if got := len(s.manifest.List()); got != 0 {
		t.Fatalf("%d jobs admitted from invalid requests", got)
	}
}

func TestServerShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	s := newTestServer(t, ServerConfig{Workers: 2, ManifestPath: path,
		DrainTimeout: 30 * time.Second})
	var ids []string
	for i := 0; i < 8; i++ {
		job, err := s.Submit("t", Request{Kind: "run", Workload: "vecadd",
			N: 64 + i, Device: "tiny"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if leaked := s.manifest.NonTerminal(); len(leaked) != 0 {
		t.Fatalf("non-terminal jobs after shutdown: %v", leaked)
	}
	for _, id := range ids {
		j, _ := s.manifest.Get(id)
		if j.State != StateSuccess && j.State != StateCancelled {
			t.Errorf("job %s ended %s (%s)", id, j.State, j.Error)
		}
	}
	snap, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("persisted manifest unreadable: %v", err)
	}
	if len(snap.Jobs) != len(ids) {
		t.Fatalf("persisted %d jobs, want %d", len(snap.Jobs), len(ids))
	}
	// Submissions after shutdown are refused.
	_, err = s.Submit("t", testRequest())
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Status != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: %v", err)
	}
}

func TestHTTPAPI(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	if resp, body := get("/healthz"); resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}
	if resp, _ := get("/v1/jobs/j-999999"); resp.StatusCode != 404 {
		t.Fatalf("unknown job = %d", resp.StatusCode)
	}

	// Submit with wait: one round trip to a terminal job.
	reqBody := `{"kind":"run","workload":"vecadd","n":64,"device":"tiny","wait":true}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("wait submit = %d %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil || job.State != StateSuccess {
		t.Fatalf("waited job = %+v (err %v)", job, err)
	}

	// Result endpoint: fresh = miss, repeat = hit, raw bytes identical.
	fresh, freshBody := get("/v1/jobs/" + job.ID + "/result")
	if fresh.StatusCode != 200 || fresh.Header.Get("X-Cache") != "miss" || !json.Valid(freshBody) {
		t.Fatalf("result = %d X-Cache=%q", fresh.StatusCode, fresh.Header.Get("X-Cache"))
	}
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var job2 Job
	json.Unmarshal(body2, &job2)
	if rresp, rbody := get("/v1/jobs/" + job2.ID + "/result"); rresp.Header.Get("X-Cache") != "hit" ||
		!bytes.Equal(rbody, freshBody) {
		t.Fatalf("repeat result: X-Cache=%q identical=%v",
			rresp.Header.Get("X-Cache"), bytes.Equal(rbody, freshBody))
	}

	// Events, list, stats.
	if resp, body := get("/v1/jobs/" + job.ID + "/events"); resp.StatusCode != 200 ||
		!strings.Contains(string(body), "running") {
		t.Fatalf("events = %d %s", resp.StatusCode, body)
	}
	if resp, body := get("/v1/jobs"); resp.StatusCode != 200 ||
		!strings.Contains(string(body), job.ID) {
		t.Fatalf("list = %d", resp.StatusCode)
	}
	var stats ServerStats
	if _, body := get("/v1/stats"); json.Unmarshal(body, &stats) != nil ||
		stats.States[StateSuccess] < 2 {
		t.Fatalf("stats = %s", body)
	}

	// Malformed submissions: 400, not a manifest entry.
	for _, bad := range []string{`{"kind":`, `{"kind":"run","workload":"vecadd","n":64,"bogus":1}`, `{"kind":"warp"}`} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("bad body %q = %d", bad, resp.StatusCode)
		}
	}

	// DELETE on a terminal job is a no-op answer, not an error.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	dresp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Fatalf("delete terminal job = %d", dresp.StatusCode)
	}
}

// TestServerResultStore: with ResultsPath configured, every successful
// job's canonical records land in the store stamped with the job ID —
// cache hits included — and the store survives daemon shutdown.
func TestServerResultStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s := newTestServer(t, ServerConfig{Workers: 2, ResultsPath: path})
	req := Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny"}

	first, err := s.Submit("t", req)
	if err != nil {
		t.Fatal(err)
	}
	a := waitTerminal(t, s, first.ID)
	second, err := s.Submit("t", req)
	if err != nil {
		t.Fatal(err)
	}
	b := waitTerminal(t, s, second.ID)
	if a.State != StateSuccess || b.State != StateSuccess || !b.CacheHit {
		t.Fatalf("jobs = %s/%s cachehit=%v", a.State, b.State, b.CacheHit)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	store, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != 2 {
		t.Fatalf("store has %d entries, want 2 (fresh + cache hit)", store.Len())
	}
	for i, id := range []string{a.ID, b.ID} {
		entry, ok := store.Latest(results.Filter{Run: id})
		if !ok {
			t.Fatalf("no stored record for job %s", id)
		}
		rec := entry.Record
		if rec.Kind != "run" || rec.Workload != "vecadd" || rec.N != 64 {
			t.Fatalf("record %d = kind=%q workload=%q n=%d", i, rec.Kind, rec.Workload, rec.N)
		}
		if rec.Machine == nil || rec.Machine.Device.Name == "" {
			t.Fatalf("record %d missing machine identity: %+v", i, rec)
		}
		if entry.Env == nil || entry.Env.Note != "job "+id {
			t.Fatalf("record %d envelope = %+v, want job note", i, entry.Env)
		}
	}
	// The two jobs produced the same simulation: identical record bodies,
	// distinguished only by the Run stamp and envelope.
	ea, _ := store.Latest(results.Filter{Run: a.ID})
	eb, _ := store.Latest(results.Filter{Run: b.ID})
	ea.Record.Run, eb.Record.Run = "", ""
	ja, _ := json.Marshal(ea.Record)
	jb, _ := json.Marshal(eb.Record)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("fresh vs cached record bodies differ:\n%s\nvs\n%s", ja, jb)
	}
}
