// Package service implements atgpud: a long-running, fault-tolerant
// simulation service exposing the repo's run / sweep / pipeline / lint /
// analyze capabilities as a JSON HTTP API over a pool of warmed
// (pre-calibrated) systems.
//
// Robustness is the organising principle:
//
//   - every job is tracked in a manifest with an explicit state machine
//     (pending → running → success|failed|timeout|cancelled) and an
//     append-only event log;
//   - every job runs isolated — its own Host/Device/Engine via the
//     experiments runner, a context deadline, and panic recovery (the
//     internal/sched contract) that turns a crashing job into a failed
//     manifest entry with the stack attached instead of a dead daemon;
//   - admission is bounded — a full queue answers 429 with Retry-After,
//     per-client in-flight caps stop one client starving the rest, and
//     /readyz degrades to 503 under overload so load balancers back off
//     before the queue does;
//   - results are content-addressed — an FNV-1a key over (kernel hash,
//     machine parameters, sizes, seeds, chunks, fault plan) with
//     single-flight deduplication, so identical requests never
//     re-simulate and a cache hit is byte-identical to a fresh run;
//   - shutdown drains: running jobs get a deadline to finish, the rest
//     are cancelled, and the manifest is persisted.
//
// The package is deliberately not under the determinism (notime) vet
// contract: job timestamps are wall-clock observability data. Everything
// inside a job — the simulation itself — remains fully deterministic,
// which is what makes the result cache sound.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State string

// The manifest state machine: pending → running → one of the four
// terminal states; pending may also go straight to cancelled (cancelled
// while queued) or failed (rejected by the executor before start).
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateSuccess   State = "success"
	StateFailed    State = "failed"
	StateTimeout   State = "timeout"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state is finished for good.
func (s State) Terminal() bool {
	switch s {
	case StateSuccess, StateFailed, StateTimeout, StateCancelled:
		return true
	}
	return false
}

// legalTransitions enumerates the permitted state changes. Anything else
// is a programming error surfaced loudly rather than silently recorded.
var legalTransitions = map[State][]State{
	StatePending: {StateRunning, StateCancelled, StateFailed},
	StateRunning: {StateSuccess, StateFailed, StateTimeout, StateCancelled},
}

func transitionLegal(from, to State) bool {
	for _, t := range legalTransitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// Event is one append-only job-log entry.
type Event struct {
	// Time is the wall-clock instant the event was recorded.
	Time time.Time `json:"time"`
	// State is the state entered, when the event is a transition ("" for
	// informational events such as "cancel requested").
	State State `json:"state,omitempty"`
	// Msg explains the event.
	Msg string `json:"msg,omitempty"`
}

// Job is one manifest entry. The exported fields marshal into the
// persisted manifest and the API's job views; synchronisation lives in
// the Manifest, never in the Job.
type Job struct {
	// ID is the manifest-assigned identifier ("j-000042").
	ID string `json:"id"`
	// Client identifies the submitting client (per-client caps key).
	Client string `json:"client,omitempty"`
	// TraceID is the request/trace identifier assigned at admission
	// (the HTTP request ID for jobs submitted over the API), threaded
	// through the manifest, event log and structured logs so one job
	// can be followed across the plane.
	TraceID string `json:"trace_id,omitempty"`
	// Request is the submitted job request.
	Request Request `json:"request"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Worker is the id of the worker that ran the job (-1 = never
	// assigned).
	Worker int `json:"worker"`
	// Created, Started and Finished are wall-clock lifecycle stamps
	// (zero until reached).
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	// CacheHit marks a job served from the content-addressed cache
	// (including coalesced single-flight waiters).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error is the failure/timeout/cancellation message for non-success
	// terminal states.
	Error string `json:"error,omitempty"`
	// Stack is the recovered goroutine stack when the job panicked.
	Stack string `json:"stack,omitempty"`
	// Result is the job's deterministic result document (nil unless
	// success, or a fault-induced deterministic failure that still
	// produced a partial result).
	Result json.RawMessage `json:"result,omitempty"`
	// Events is the append-only event log.
	Events []Event `json:"events"`

	// cancel, when non-nil, cancels the running job's context. Guarded
	// by the manifest lock.
	cancel func()
	// cancelRequested marks a cancel arriving while running, so the
	// worker can distinguish cancellation from deadline expiry.
	cancelRequested bool
	// done is closed when the job reaches a terminal state.
	done chan struct{}
}

// clone returns a deep-enough copy for handing outside the lock: shared
// slices are never mutated after being set, so shallow copies of Result
// and Events are safe; the unexported coordination fields stay behind.
func (j *Job) clone() Job {
	c := *j
	c.cancel = nil
	c.done = nil
	return c
}

// Manifest is the synchronised job table: assignment, transitions, event
// appends, snapshots and persistence all pass through it.
type Manifest struct {
	mu   sync.Mutex
	jobs map[string]*Job
	// order holds job IDs in creation order, so listings and the
	// persisted manifest are deterministic.
	order []string
	seq   int
	// observer, when non-nil, is called after every state transition
	// (from "" on Add) with a job view — outside the manifest lock, so
	// it may call back into the manifest.
	observer TransitionObserver
}

// TransitionObserver receives manifest state transitions: from is the
// previous state ("" when the job is first added as pending). Called
// synchronously but outside the manifest lock; job is a detached view.
// The telemetry plane counts jobs by kind×state and logs transitions
// through this hook.
type TransitionObserver func(job Job, from, to State)

// SetObserver installs the transition observer (nil disables). Install
// before jobs flow; transitions racing an install may be unobserved.
func (m *Manifest) SetObserver(fn TransitionObserver) {
	m.mu.Lock()
	m.observer = fn
	m.mu.Unlock()
}

// NewManifest returns an empty manifest.
func NewManifest() *Manifest {
	return &Manifest{jobs: make(map[string]*Job)}
}

// Add registers a new pending job for the request and returns its view.
// traceID is the admission-assigned trace/request identifier ("" lets
// callers without one leave it unset).
func (m *Manifest) Add(client, traceID string, req Request) Job {
	m.mu.Lock()
	m.seq++
	j := &Job{
		ID:      fmt.Sprintf("j-%06d", m.seq),
		Client:  client,
		TraceID: traceID,
		Request: req,
		State:   StatePending,
		Worker:  -1,
		Created: time.Now(),
		done:    make(chan struct{}),
	}
	j.Events = append(j.Events, Event{Time: j.Created, State: StatePending, Msg: "submitted"})
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	view, obs := j.clone(), m.observer
	m.mu.Unlock()
	if obs != nil {
		obs(view, "", StatePending)
	}
	return view
}

// Get returns a job view by ID.
func (m *Manifest) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.clone(), true
}

// List returns all job views in creation order.
func (m *Manifest) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].clone())
	}
	return out
}

// CountByState tallies jobs per state.
func (m *Manifest) CountByState() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := make(map[State]int)
	for _, j := range m.jobs {
		counts[j.State]++
	}
	return counts
}

// NonTerminal returns the IDs of jobs not yet in a terminal state, in
// creation order — the leak check the chaos suite and the load harness's
// drain gate assert against.
func (m *Manifest) NonTerminal() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []string
	for _, id := range m.order {
		if !m.jobs[id].State.Terminal() {
			ids = append(ids, id)
		}
	}
	return ids
}

// InFlight counts a client's non-terminal jobs (the per-client cap).
func (m *Manifest) InFlight(client string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if j.Client == client && !j.State.Terminal() {
			n++
		}
	}
	return n
}

// InFlightByClient tallies non-terminal jobs per client — the live
// per-client gauge the telemetry plane exports.
func (m *Manifest) InFlightByClient() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := make(map[string]int)
	for _, j := range m.jobs {
		if !j.State.Terminal() {
			counts[j.Client]++
		}
	}
	return counts
}

// start transitions a pending job to running on the given worker. A
// false return means the job is no longer pending (cancelled while
// queued) and must not run.
func (m *Manifest) start(id string, worker int, cancel func()) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.State != StatePending {
		m.mu.Unlock()
		return false
	}
	j.State = StateRunning
	j.Worker = worker
	j.Started = time.Now()
	j.cancel = cancel
	j.Events = append(j.Events, Event{Time: j.Started, State: StateRunning,
		Msg: fmt.Sprintf("assigned to worker %d", worker)})
	view, obs := j.clone(), m.observer
	m.mu.Unlock()
	if obs != nil {
		obs(view, StatePending, StateRunning)
	}
	return true
}

// finish moves a job to a terminal state, recording outcome fields. It
// enforces the state machine: finishing an already-terminal job is a
// no-op returning false (first transition wins — e.g. a cancel racing a
// natural completion), and an illegal transition panics, because it can
// only be a service bug.
func (m *Manifest) finish(id string, to State, errMsg, stack string, result json.RawMessage, cacheHit bool) bool {
	if !to.Terminal() {
		panic(fmt.Sprintf("service: finish to non-terminal state %q", to))
	}
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	if j.State.Terminal() {
		m.mu.Unlock()
		return false
	}
	if !transitionLegal(j.State, to) {
		m.mu.Unlock()
		panic(fmt.Sprintf("service: illegal transition %s → %s for %s", j.State, to, id))
	}
	from := j.State
	j.State = to
	j.Finished = time.Now()
	j.Error = errMsg
	j.Stack = stack
	j.Result = result
	j.CacheHit = cacheHit
	j.cancel = nil
	msg := "finished"
	if errMsg != "" {
		msg = errMsg
	}
	j.Events = append(j.Events, Event{Time: j.Finished, State: to, Msg: msg})
	if j.done != nil {
		close(j.done)
	}
	view, obs := j.clone(), m.observer
	m.mu.Unlock()
	if obs != nil {
		obs(view, from, to)
	}
	return true
}

// RequestCancel asks a job to stop: a pending job is cancelled on the
// spot; a running job has its context cancelled and is marked so the
// worker records cancelled rather than timeout. Returns the job's state
// after the request and whether the job exists.
func (m *Manifest) RequestCancel(id, reason string) (State, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return "", false
	}
	switch j.State {
	case StatePending:
		// Terminal transition inline; the worker will skip it on pop.
		j.State = StateCancelled
		j.Finished = time.Now()
		j.Error = reason
		j.Events = append(j.Events, Event{Time: j.Finished, State: StateCancelled, Msg: reason})
		if j.done != nil {
			close(j.done)
		}
		view, obs := j.clone(), m.observer
		m.mu.Unlock()
		if obs != nil {
			obs(view, StatePending, StateCancelled)
		}
		return StateCancelled, true
	case StateRunning:
		j.cancelRequested = true
		cancel := j.cancel
		j.Events = append(j.Events, Event{Time: time.Now(), Msg: "cancel requested: " + reason})
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return StateRunning, true
	default:
		st := j.State
		m.mu.Unlock()
		return st, true
	}
}

// cancelRequestedFor reports whether a cancel was requested while the
// job ran (distinguishes cancellation from deadline expiry).
func (m *Manifest) cancelRequestedFor(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return ok && j.cancelRequested
}

// Done returns the job's completion channel (closed at terminal state),
// or nil if the job does not exist.
func (m *Manifest) Done(id string) <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j.done
	}
	return nil
}

// appendEvent records an informational (non-transition) event.
func (m *Manifest) appendEvent(id, msg string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.Events = append(j.Events, Event{Time: time.Now(), Msg: msg})
	}
}

// PersistedManifest is the on-disk shape: a versioned, ordered job list.
type PersistedManifest struct {
	Version int   `json:"version"`
	Saved   int64 `json:"saved_unix"`
	Jobs    []Job `json:"jobs"`
}

// Save writes the manifest as JSON, atomically (write temp + rename), in
// creation order. Called on graceful shutdown so a restarted daemon (or
// an operator) can audit exactly what was in flight.
func (m *Manifest) Save(path string) error {
	snap := PersistedManifest{Version: 1, Saved: time.Now().Unix(), Jobs: m.List()}
	sort.SliceStable(snap.Jobs, func(i, k int) bool { return snap.Jobs[i].ID < snap.Jobs[k].ID })
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadManifest reads a persisted manifest for inspection (the daemon
// itself always starts empty; history is an audit artifact, not state).
func LoadManifest(path string) (PersistedManifest, error) {
	var snap PersistedManifest
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, err
	}
	return snap, nil
}
