package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"testing"
	"time"
)

// TestChaosStorm is the robustness acceptance gate: a 1000-job storm of
// mixed traffic — healthy runs, fault-injected runs, instant-deadline
// jobs, client cancellations, duplicate submissions hammering the
// single-flight cache — driven through a small worker pool under the
// race detector. Afterwards: every job is in a terminal state (nothing
// stuck in running), the daemon still serves, cached results are
// byte-identical to fresh ones, and shutdown drains cleanly.
func TestChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm takes a while; skipped in -short")
	}
	const storm = 1000

	dir := t.TempDir()
	s := newTestServer(t, ServerConfig{
		Workers:        8,
		QueueSize:      32,
		PerClient:      -1, // the storm is one logical client; the cap has its own test
		DefaultTimeout: 30 * time.Second,
		ManifestPath:   filepath.Join(dir, "manifest.json"),
		DrainTimeout:   60 * time.Second,
	})

	// Deterministic mixed traffic. Seeds cycle so the cache sees heavy
	// duplication (the single-flight path) while fault plans and sizes
	// keep real simulation in the mix.
	makeReq := func(i int) Request {
		req := Request{Kind: "run", Workload: "vecadd", N: 64 + 32*(i%4),
			Device: "tiny", Seed: int64(i % 11)}
		switch i % 5 {
		case 1: // fault-injected: deterministic retries/failures
			req.Workload = "reduce"
			req.N = 256
			req.FaultRate = 0.05
			req.FaultSeed = int64(i % 7)
		case 2: // sweep with duplication across jobs
			req = Request{Kind: "sweep", Workload: "vecadd", Device: "tiny",
				Sizes: []int{32, 64, 128}, Seed: int64(i % 3)}
		case 3: // model-only, cheap, heavily duplicated
			req = Request{Kind: "analyze", Workload: "matmul", N: 32, Device: "tiny",
				Seed: int64(i % 2)}
		case 4: // instant deadline: timeout/success race, either is legal
			req.TimeoutMs = 1
			req.Seed = int64(i) // distinct, so timeouts don't poison the cache
		}
		return req
	}

	ids := make([]string, 0, storm)
	var faultedID string
	var faultedReq Request
	for i := 0; i < storm; i++ {
		req := makeReq(i)
		var job Job
		for {
			var err error
			job, err = s.Submit("storm", req)
			if err == nil {
				break
			}
			var adm *AdmissionError
			if errors.As(err, &adm) && adm.Status == http.StatusTooManyRequests {
				// Backpressure working; yield and retry.
				time.Sleep(2 * time.Millisecond)
				continue
			}
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, job.ID)
		if faultedID == "" && i%5 == 1 {
			faultedID, faultedReq = job.ID, req
		}
		// Cancel a deterministic slice of the storm at submit time:
		// some are still pending, some already running, some done.
		if i%13 == 6 {
			s.manifest.RequestCancel(job.ID, "chaos cancel")
		}
	}

	deadline := time.After(4 * time.Minute)
	for _, id := range ids {
		select {
		case <-s.manifest.Done(id):
		case <-deadline:
			j, _ := s.manifest.Get(id)
			t.Fatalf("job %s stuck in %s after the storm", id, j.State)
		}
	}
	if leaked := s.manifest.NonTerminal(); len(leaked) != 0 {
		t.Fatalf("non-terminal jobs after the storm: %v", leaked)
	}

	counts := s.manifest.CountByState()
	for state := range counts {
		if !state.Terminal() {
			t.Fatalf("state census has non-terminal %s: %v", state, counts)
		}
	}
	if counts[StateSuccess] == 0 {
		t.Fatalf("storm produced no successes: %v", counts)
	}
	// Errors must only be the injected kinds: anything failed that is
	// not a chaos-cancelled job means the machinery broke.
	for _, id := range ids {
		j, _ := s.manifest.Get(id)
		if j.State == StateFailed {
			t.Errorf("job %s failed: %s", id, j.Error)
		}
	}

	// The daemon still serves after the storm.
	after, err := s.Submit("storm", Request{Kind: "run", Workload: "vecadd",
		N: 64, Device: "tiny", Seed: 999})
	if err != nil {
		t.Fatalf("post-storm submit: %v", err)
	}
	if final := waitTerminal(t, s, after.ID); final.State != StateSuccess {
		t.Fatalf("post-storm job = %s err=%q", final.State, final.Error)
	}

	// Cache identity under faults, end to end through the storm's own
	// traffic: rerun the first faulted request with the cache bypassed
	// and compare bytes against what the storm recorded.
	faulted, _ := s.manifest.Get(faultedID)
	if faulted.State == StateSuccess {
		bypass := faultedReq
		bypass.NoCache = true
		fresh, err := s.Submit("storm", bypass)
		if err != nil {
			t.Fatal(err)
		}
		final := waitTerminal(t, s, fresh.ID)
		if final.State != StateSuccess {
			t.Fatalf("bypass rerun = %s err=%q", final.State, final.Error)
		}
		if !bytes.Equal(faulted.Result, final.Result) {
			t.Errorf("cached faulted result differs from fresh simulation:\n%s\nvs\n%s",
				faulted.Result, final.Result)
		}
	}

	st := s.cache.Stats()
	if st.Hits+st.Coalesced == 0 {
		t.Errorf("storm of duplicated requests produced no cache reuse: %+v", st)
	}

	// Graceful end: drain, persist, verify nothing non-terminal in the
	// persisted audit trail either.
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after storm: %v", err)
	}
	snap, err := LoadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) < storm {
		t.Fatalf("persisted %d jobs, want >= %d", len(snap.Jobs), storm)
	}
	for _, j := range snap.Jobs {
		if !j.State.Terminal() {
			t.Errorf("persisted job %s non-terminal: %s", j.ID, j.State)
		}
	}
}
