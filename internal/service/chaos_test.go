package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atgpu/internal/obs"
)

// TestChaosStorm is the robustness acceptance gate: a 1000-job storm of
// mixed traffic — healthy runs, fault-injected runs, instant-deadline
// jobs, client cancellations, duplicate submissions hammering the
// single-flight cache — driven through a small worker pool under the
// race detector, while scraper goroutines hammer GET /metrics the whole
// time. Afterwards: every job is in a terminal state (nothing stuck in
// running), every scrape parsed and counters never went backwards, the
// daemon still serves, cached results are byte-identical to fresh ones,
// a faulted job's daemon-served trace matches a standalone run byte for
// byte, the live gauges read zero once drained, and shutdown is clean.
func TestChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm takes a while; skipped in -short")
	}
	const storm = 1000

	dir := t.TempDir()
	s := newTestServer(t, ServerConfig{
		Workers:        8,
		QueueSize:      32,
		PerClient:      -1, // the storm is one logical client; the cap has its own test
		DefaultTimeout: 30 * time.Second,
		ManifestPath:   filepath.Join(dir, "manifest.json"),
		DrainTimeout:   60 * time.Second,
		TraceRing:      2048, // retain every traced storm job
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The telemetry half of the storm: concurrent scrapers that validate
	// every /metrics exposition with the strict parser and check that no
	// counter family ever decreases between two of their own scrapes.
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	var scrapes atomic.Int64
	for g := 0; g < 3; g++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			prev := map[string]float64{}
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				exp, err := obs.ParsePrometheus(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("mid-storm exposition invalid: %v", err)
					return
				}
				for _, f := range exp.Families {
					if f.Type != "counter" {
						continue
					}
					total, _ := exp.CounterTotal(f.Name)
					if total < prev[f.Name] {
						t.Errorf("counter %s went backwards: %v -> %v", f.Name, prev[f.Name], total)
					}
					prev[f.Name] = total
				}
				scrapes.Add(1)
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	// Deterministic mixed traffic. Seeds cycle so the cache sees heavy
	// duplication (the single-flight path) while fault plans and sizes
	// keep real simulation in the mix.
	makeReq := func(i int) Request {
		req := Request{Kind: "run", Workload: "vecadd", N: 64 + 32*(i%4),
			Device: "tiny", Seed: int64(i % 11)}
		switch i % 5 {
		case 1: // fault-injected: deterministic retries/failures, traced
			req.Workload = "reduce"
			req.N = 256
			req.FaultRate = 0.05
			req.FaultSeed = int64(i % 7)
			req.Trace = true
			req.Metrics = true
		case 2: // sweep with duplication across jobs
			req = Request{Kind: "sweep", Workload: "vecadd", Device: "tiny",
				Sizes: []int{32, 64, 128}, Seed: int64(i % 3)}
		case 3: // model-only, cheap, heavily duplicated
			req = Request{Kind: "analyze", Workload: "matmul", N: 32, Device: "tiny",
				Seed: int64(i % 2)}
		case 4: // instant deadline: timeout/success race, either is legal
			req.TimeoutMs = 1
			req.Seed = int64(i) // distinct, so timeouts don't poison the cache
		}
		return req
	}

	ids := make([]string, 0, storm)
	var faultedID string
	var faultedReq Request
	for i := 0; i < storm; i++ {
		req := makeReq(i)
		var job Job
		for {
			var err error
			job, err = s.Submit("storm", req)
			if err == nil {
				break
			}
			var adm *AdmissionError
			if errors.As(err, &adm) && adm.Status == http.StatusTooManyRequests {
				// Backpressure working; yield and retry.
				time.Sleep(2 * time.Millisecond)
				continue
			}
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, job.ID)
		if faultedID == "" && i%5 == 1 {
			faultedID, faultedReq = job.ID, req
		}
		// Cancel a deterministic slice of the storm at submit time:
		// some are still pending, some already running, some done.
		if i%13 == 6 {
			s.manifest.RequestCancel(job.ID, "chaos cancel")
		}
	}

	deadline := time.After(4 * time.Minute)
	for _, id := range ids {
		select {
		case <-s.manifest.Done(id):
		case <-deadline:
			j, _ := s.manifest.Get(id)
			t.Fatalf("job %s stuck in %s after the storm", id, j.State)
		}
	}
	if leaked := s.manifest.NonTerminal(); len(leaked) != 0 {
		t.Fatalf("non-terminal jobs after the storm: %v", leaked)
	}
	close(stopScrape)
	scrapeWG.Wait()
	// The scrape count is load-dependent (the storm saturates the CPUs
	// and scrapers run at whatever cadence the scheduler grants them);
	// what matters is that every scrape that did happen parsed cleanly.
	if n := scrapes.Load(); n < 3 {
		t.Errorf("only %d successful scrapes during the storm", n)
	}

	counts := s.manifest.CountByState()
	for state := range counts {
		if !state.Terminal() {
			t.Fatalf("state census has non-terminal %s: %v", state, counts)
		}
	}
	if counts[StateSuccess] == 0 {
		t.Fatalf("storm produced no successes: %v", counts)
	}
	// Errors must only be the injected kinds: anything failed that is
	// not a chaos-cancelled job means the machinery broke.
	for _, id := range ids {
		j, _ := s.manifest.Get(id)
		if j.State == StateFailed {
			t.Errorf("job %s failed: %s", id, j.Error)
		}
	}

	// The daemon still serves after the storm.
	after, err := s.Submit("storm", Request{Kind: "run", Workload: "vecadd",
		N: 64, Device: "tiny", Seed: 999})
	if err != nil {
		t.Fatalf("post-storm submit: %v", err)
	}
	if final := waitTerminal(t, s, after.ID); final.State != StateSuccess {
		t.Fatalf("post-storm job = %s err=%q", final.State, final.Error)
	}

	// Cache identity under faults, end to end through the storm's own
	// traffic: rerun the first faulted request with the cache bypassed
	// and compare bytes against what the storm recorded.
	faulted, _ := s.manifest.Get(faultedID)
	if faulted.State == StateSuccess {
		bypass := faultedReq
		bypass.NoCache = true
		fresh, err := s.Submit("storm", bypass)
		if err != nil {
			t.Fatal(err)
		}
		final := waitTerminal(t, s, fresh.ID)
		if final.State != StateSuccess {
			t.Fatalf("bypass rerun = %s err=%q", final.State, final.Error)
		}
		if !bytes.Equal(faulted.Result, final.Result) {
			t.Errorf("cached faulted result differs from fresh simulation:\n%s\nvs\n%s",
				faulted.Result, final.Result)
		}

		// The faulted job asked for trace and metrics: what the daemon
		// serves for it must be byte-identical to a standalone executor
		// running the same request — the telemetry acceptance gate.
		fetch := func(what string) []byte {
			t.Helper()
			resp, err := http.Get(ts.URL + "/v1/jobs/" + faultedID + "/" + what)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s for faulted %s = %d %s", what, faultedID, resp.StatusCode, body)
			}
			return body
		}
		daemonTrace, daemonMetrics := fetch("trace"), fetch("metrics")
		norm, err := faultedReq.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		golden, err := NewExecutor().Execute(context.Background(), norm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(daemonTrace, golden.Trace) {
			t.Error("faulted job's daemon trace differs from the standalone golden")
		}
		if !bytes.Equal(daemonMetrics, golden.Metrics) {
			t.Error("faulted job's daemon metrics differ from the standalone golden")
		}
	}

	st := s.cache.Stats()
	if st.Hits+st.Coalesced == 0 {
		t.Errorf("storm of duplicated requests produced no cache reuse: %+v", st)
	}

	// Graceful end: drain, persist, verify nothing non-terminal in the
	// persisted audit trail either.
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after storm: %v", err)
	}
	snap, err := LoadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) < storm {
		t.Fatalf("persisted %d jobs, want >= %d", len(snap.Jobs), storm)
	}
	for _, j := range snap.Jobs {
		if !j.State.Terminal() {
			t.Errorf("persisted job %s non-terminal: %s", j.ID, j.State)
		}
	}

	// Quiesced: one last scrape after the drain — still a valid
	// exposition, and every liveness gauge reads zero.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("post-drain exposition invalid: %v", err)
	}
	for _, gauge := range []string{
		MetricJobsInflight, MetricQueueDepth, MetricPointsInflight, MetricDrainRemaining,
	} {
		if v, ok := exp.Value(gauge); !ok || v != 0 {
			t.Errorf("post-drain %s = %v (present=%v), want 0", gauge, v, ok)
		}
	}
}
