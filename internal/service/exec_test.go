package service

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNormalizeDefaults(t *testing.T) {
	req, err := Request{Kind: "run", Workload: "vecadd", N: 64}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if req.Device != "gtx650" || req.Scheme != "pageable" || req.SyncCostUs != 50 {
		t.Fatalf("defaults not filled: %+v", req)
	}

	req, err = Request{Kind: "sweep", Workload: "matmul"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Sizes) == 0 || req.Sizes[0] != 32 {
		t.Fatalf("sweep sizes not defaulted: %v", req.Sizes)
	}

	// σ: 0 means default, -1 means zero.
	req, err = Request{Kind: "analyze", Workload: "vecadd", N: 8, SyncCostUs: -1}.Normalize()
	if err != nil || req.SyncCostUs != 0 {
		t.Fatalf("sync_cost_us=-1: %+v err=%v", req, err)
	}
}

func TestNormalizeRejections(t *testing.T) {
	bad := []Request{
		{Kind: "warp", Workload: "vecadd", N: 8},                      // unknown kind
		{Kind: "run", Workload: "sort", N: 8},                         // unknown workload
		{Kind: "run", Workload: "scan", N: 8},                         // scan is lint-only
		{Kind: "run", Workload: "vecadd"},                             // missing n
		{Kind: "run", Workload: "vecadd", N: 8, Sizes: []int{1}},      // n and sizes
		{Kind: "sweep", Workload: "vecadd", N: 8},                     // sizes kind with n
		{Kind: "sweep", Workload: "vecadd", Sizes: []int{0}},          // bad size
		{Kind: "run", Workload: "vecadd", N: 8, Device: "rtx9090"},    // unknown device
		{Kind: "run", Workload: "vecadd", N: 8, Scheme: "psychic"},    // unknown scheme
		{Kind: "run", Workload: "vecadd", N: 8, FaultRate: 1.5},       // rate out of range
		{Kind: "run", Workload: "vecadd", N: 8, TimeoutMs: -5},        // negative timeout
		{Kind: "run", Workload: "vecadd", N: 8, SyncCostUs: -2},       // bad sync cost
		{Kind: "sweep", Workload: "vecadd", Sizes: make([]int, 1000)}, // too many sizes
	}
	for i, req := range bad {
		if _, err := req.Normalize(); err == nil {
			t.Errorf("request %d accepted: %+v", i, req)
		}
	}
	// Scan is legal for lint.
	if _, err := (Request{Kind: "lint", Workload: "scan", N: 64}).Normalize(); err != nil {
		t.Errorf("lint scan rejected: %v", err)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	base := Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 1}
	variants := []Request{
		{Kind: "analyze", Workload: "vecadd", N: 64, Device: "tiny", Seed: 1},
		{Kind: "run", Workload: "reduce", N: 64, Device: "tiny", Seed: 1},
		{Kind: "run", Workload: "vecadd", N: 128, Device: "tiny", Seed: 1},
		{Kind: "run", Workload: "vecadd", N: 64, Device: "gtx650", Seed: 1},
		{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 2},
		{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 1, Scheme: "pinned"},
		{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 1, FaultRate: 0.1},
		{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 1, FaultRate: 0.1, FaultSeed: 3},
		{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 1, SyncCostUs: -1},
	}
	norm := func(r Request) Request {
		n, err := r.Normalize()
		if err != nil {
			t.Fatalf("normalize %+v: %v", r, err)
		}
		return n
	}
	baseKey, err := norm(base).CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	// Stable across recomputation and across policy-only differences.
	again := norm(base)
	again.TimeoutMs = 5000
	again.NoCache = true
	again.Wait = true
	if k, _ := again.CacheKey(); k != baseKey {
		t.Fatal("execution policy leaked into the cache key")
	}
	seen := map[uint64]int{baseKey: -1}
	for i, v := range variants {
		k, err := norm(v).CacheKey()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d", i, prev)
		}
		seen[k] = i
	}

	// Deep validation: matmul sizes must divide by the warp width.
	badMat, err := Request{Kind: "run", Workload: "matmul", N: 37, Device: "tiny"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := badMat.CacheKey(); err == nil {
		t.Fatal("matmul n=37 on warp 4 accepted by CacheKey")
	}
}

// TestExecuteDeterministic is the foundation under the cache: two
// independent executions of the same request — including under injected
// faults — must produce byte-identical documents.
func TestExecuteDeterministic(t *testing.T) {
	x := NewExecutor()
	reqs := []Request{
		{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 3},
		{Kind: "run", Workload: "reduce", N: 256, Device: "tiny", Seed: 3,
			FaultRate: 0.05, FaultSeed: 11},
		{Kind: "sweep", Workload: "vecadd", Device: "tiny", Sizes: []int{32, 64, 128}},
		{Kind: "analyze", Workload: "matmul", N: 32, Device: "tiny"},
		{Kind: "lint", Workload: "scan", N: 64, Device: "tiny"},
	}
	for i, raw := range reqs {
		req, err := raw.Normalize()
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		a, err := x.Execute(context.Background(), req)
		if err != nil {
			t.Fatalf("req %d first execute: %v", i, err)
		}
		b, err := x.Execute(context.Background(), req)
		if err != nil {
			t.Fatalf("req %d second execute: %v", i, err)
		}
		if !bytes.Equal(a.Result, b.Result) {
			t.Errorf("req %d (%s %s): executions diverge:\n%s\nvs\n%s",
				i, req.Kind, req.Workload, a.Result, b.Result)
		}
		var doc Result
		if err := json.Unmarshal(a.Result, &doc); err != nil {
			t.Fatalf("req %d: result not JSON: %v", i, err)
		}
		if doc.Kind != req.Kind || doc.Workload != req.Workload {
			t.Errorf("req %d: document header %+v", i, doc)
		}
	}
	// One calibration serves every tiny/pageable/50µs request above.
	if got := x.CalibrationsWarmed(); got != 1 {
		t.Errorf("calibrations = %d, want 1 shared", got)
	}
}

func TestExecutePayloadShapes(t *testing.T) {
	x := NewExecutor()
	ctx := context.Background()
	run := func(raw Request) Result {
		req, err := raw.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		art, err := x.Execute(ctx, req)
		if err != nil {
			t.Fatalf("%s %s: %v", req.Kind, req.Workload, err)
		}
		var doc Result
		if err := json.Unmarshal(art.Result, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	if doc := run(Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny"}); doc.Point == nil ||
		doc.Point.N != 64 || doc.Point.TotalTime <= 0 {
		t.Errorf("run payload = %+v", doc.Point)
	}
	if doc := run(Request{Kind: "analyze", Workload: "vecadd", N: 64, Device: "tiny"}); doc.Point == nil ||
		doc.Point.ATGPUCost <= 0 || doc.Point.TotalTime != 0 {
		t.Errorf("analyze payload = %+v (must be model-only)", doc.Point)
	}
	if doc := run(Request{Kind: "sweep", Workload: "vecadd", Device: "tiny", Sizes: []int{32, 64}}); len(doc.Points) != 2 {
		t.Errorf("sweep payload = %d points", len(doc.Points))
	}
	if doc := run(Request{Kind: "pipeline", Workload: "vecadd", Device: "tiny", Sizes: []int{64}, Chunks: 2}); len(doc.Pipeline) != 1 ||
		doc.Pipeline[0].PipelinedTime <= 0 {
		t.Errorf("pipeline payload = %+v", doc.Pipeline)
	}
	if doc := run(Request{Kind: "lint", Workload: "vecadd", N: 64, Device: "tiny"}); doc.Lint == nil {
		t.Error("lint payload missing")
	}
}

func TestExecuteCancellationSurfaces(t *testing.T) {
	x := NewExecutor()
	req, err := Request{Kind: "sweep", Workload: "vecadd", Device: "tiny",
		Sizes: []int{32, 64, 128}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.Execute(ctx, req); err == nil ||
		!strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("cancelled execute returned %v", err)
	}
}

func TestWarmUnknownDevice(t *testing.T) {
	if err := NewExecutor().Warm("quantum9000"); err == nil {
		t.Fatal("unknown preset warmed")
	}
}
