package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atgpu/internal/obs"
	"atgpu/internal/sched"
)

// The live telemetry plane. Two clocks coexist in atgpud and this file
// is where the wall-clock one lives:
//
//   - simulated time — everything inside a job. Per-job traces and
//     metrics are stamped with simulated nanoseconds only, which is why
//     a cached job's artifacts can be byte-identical to a fresh run's.
//   - wall-clock time — everything about the service around the jobs:
//     queue wait, execute-phase latency, HTTP latency, drain progress.
//     None of it feeds back into results.
//
// The operational registry reuses internal/obs (labeled series via
// obs.Name), so /metrics is written and parsed by the same code that
// handles simulated-time snapshots.

// Operational metric families. Constants so the dashboard generator,
// the load harness and the tests reference the exact exported names.
const (
	MetricJobsTotal        = "atgpud_jobs_total"         // counter{kind,state}: state transitions
	MetricJobsInflight     = "atgpud_jobs_inflight"      // gauge: non-terminal jobs
	MetricClientInflight   = "atgpud_client_inflight"    // gauge{client}: per-client non-terminal jobs
	MetricQueueDepth       = "atgpud_queue_depth"        // gauge: admission queue occupancy
	MetricQueueCapacity    = "atgpud_queue_capacity"     // gauge: admission queue bound
	MetricQueueWaitNs      = "atgpud_queue_wait_ns"      // histogram: pending → running wall time
	MetricJobDurationNs    = "atgpud_job_duration_ns"    // histogram{kind}: submit → terminal wall time
	MetricExecNs           = "atgpud_exec_ns"            // histogram{kind}: execute-phase wall time
	MetricRejectedTotal    = "atgpud_rejected_total"     // counter{reason}: 429/503 admissions
	MetricCacheHitsTotal   = "atgpud_cache_hits_total"   // counter: result-cache hits
	MetricCacheMissesTotal = "atgpud_cache_misses_total" // counter: result-cache misses
	MetricCacheCoalesced   = "atgpud_cache_coalesced_total"
	MetricCacheEvicted     = "atgpud_cache_evicted_total"
	MetricCacheEntries     = "atgpud_cache_entries" // gauge: completed results held
	MetricHTTPTotal        = "atgpud_http_requests_total"
	MetricHTTPNs           = "atgpud_http_request_ns"
	MetricDraining         = "atgpud_draining"           // gauge: 1 while draining
	MetricDrainRemaining   = "atgpud_drain_remaining"    // gauge: non-terminal jobs left to drain
	MetricPointsTotal      = "atgpud_points_total"       // counter{outcome}: sweep points executed
	MetricPointsInflight   = "atgpud_points_inflight"    // gauge: sweep points currently simulating
	MetricTraceRingEntries = "atgpud_trace_ring_entries" // gauge: retained per-job artifact sets
	MetricTraceRingEvicted = "atgpud_trace_ring_evicted_total"
	MetricUptimeSeconds    = "atgpud_uptime_seconds" // gauge: wall time since boot
)

func init() {
	for family, help := range map[string]string{
		MetricJobsTotal:        "Job state transitions by kind and state entered.",
		MetricJobsInflight:     "Jobs not yet in a terminal state.",
		MetricClientInflight:   "Non-terminal jobs per client.",
		MetricQueueDepth:       "Admission queue occupancy.",
		MetricQueueCapacity:    "Admission queue capacity.",
		MetricQueueWaitNs:      "Wall-clock wait from submission to worker assignment.",
		MetricJobDurationNs:    "Wall-clock job duration from submission to terminal state.",
		MetricExecNs:           "Wall-clock execute-phase duration (cache hits included).",
		MetricRejectedTotal:    "Admissions rejected with 429 or 503, by reason.",
		MetricCacheHitsTotal:   "Result-cache lookups served from a completed entry.",
		MetricCacheMissesTotal: "Result-cache lookups that had to compute.",
		MetricCacheCoalesced:   "Result-cache lookups coalesced onto an in-flight computation.",
		MetricCacheEvicted:     "Completed results dropped by the cache FIFO bound.",
		MetricCacheEntries:     "Completed results held by the cache.",
		MetricHTTPTotal:        "HTTP requests by route and status code.",
		MetricHTTPNs:           "HTTP request latency by route.",
		MetricDraining:         "1 while the daemon is draining, else 0.",
		MetricDrainRemaining:   "Non-terminal jobs remaining during drain.",
		MetricPointsTotal:      "Sweep points executed inside jobs, by outcome.",
		MetricPointsInflight:   "Sweep points currently simulating.",
		MetricTraceRingEntries: "Per-job artifact sets retained in the trace ring.",
		MetricTraceRingEvicted: "Per-job artifact sets evicted from the trace ring.",
		MetricUptimeSeconds:    "Wall-clock seconds since the daemon booted.",
	} {
		obs.RegisterHelp(family, help)
	}
}

// Telemetry is the daemon's wall-clock observability state: the
// operational registry, the structured logger, the per-job artifact
// ring, and the request-ID source. One per Server, created by
// NewServer; all methods are safe for concurrent use.
type Telemetry struct {
	reg   *obs.Registry
	log   *slog.Logger
	ring  *traceRing
	start time.Time

	reqSeq    atomic.Int64
	pointsRun atomic.Int64 // live sweep points (sched observer)
}

// newTelemetry builds the plane. logs == nil discards structured logs;
// ringSize bounds the per-job artifact ring.
func newTelemetry(logs io.Writer, ringSize int) *Telemetry {
	if logs == nil {
		logs = io.Discard
	}
	return &Telemetry{
		reg:   obs.NewRegistry(),
		log:   slog.New(slog.NewJSONHandler(logs, nil)),
		ring:  newTraceRing(ringSize),
		start: time.Now(),
	}
}

// nextRequestID mints a request/trace identifier ("r-000042").
func (t *Telemetry) nextRequestID() string {
	return fmt.Sprintf("r-%06d", t.reqSeq.Add(1))
}

// Logger exposes the structured logger (the daemon binary logs through
// it too, so every line shares one JSON stream).
func (t *Telemetry) Logger() *slog.Logger { return t.log }

// onTransition is the manifest observer: counters by kind×state, the
// queue-wait and end-to-end histograms, and one structured log line per
// transition carrying the job and trace IDs.
func (t *Telemetry) onTransition(job Job, from, to State) {
	t.reg.Add(obs.Name(MetricJobsTotal,
		obs.Label{Key: "kind", Value: job.Request.Kind},
		obs.Label{Key: "state", Value: string(to)}), 1)
	switch {
	case to == StateRunning:
		t.reg.Observe(MetricQueueWaitNs, job.Started.Sub(job.Created))
	case to.Terminal():
		t.reg.Observe(obs.Name(MetricJobDurationNs,
			obs.Label{Key: "kind", Value: job.Request.Kind}), job.Finished.Sub(job.Created))
	}
	attrs := []any{
		"job_id", job.ID,
		"trace_id", job.TraceID,
		"kind", job.Request.Kind,
		"from", string(from),
		"to", string(to),
		"client", job.Client,
	}
	if job.CacheHit {
		attrs = append(attrs, "cache_hit", true)
	}
	if job.Error != "" {
		attrs = append(attrs, "error", job.Error)
	}
	t.log.Info("job transition", attrs...)
}

// rejected counts one 429/503 admission by reason and logs it.
func (t *Telemetry) rejected(reason, client string) {
	t.reg.Add(obs.Name(MetricRejectedTotal, obs.Label{Key: "reason", Value: reason}), 1)
	t.log.Warn("admission rejected", "reason", reason, "client", client)
}

// JobStart/JobDone implement sched.Observer: the executor routes every
// sweep-point dispatch here, giving the plane a live "points
// simulating" gauge and a points-executed counter without the scheduler
// knowing about metrics.
func (t *Telemetry) JobStart(index, worker int) {
	t.pointsRun.Add(1)
}

// JobDone counts the finished point by outcome. Points cancelled before
// they started (worker -1) never got a JobStart, so only started points
// decrement the in-flight gauge.
func (t *Telemetry) JobDone(index, worker int, err error) {
	if worker >= 0 {
		t.pointsRun.Add(-1)
	}
	outcome := "ok"
	switch {
	case errors.Is(err, sched.ErrCancelled):
		outcome = "cancelled"
	case err != nil:
		outcome = "error"
	}
	t.reg.Add(obs.Name(MetricPointsTotal, obs.Label{Key: "outcome", Value: outcome}), 1)
}

// traceRing retains the artifact sets of completed jobs that asked for
// tracing or metrics, bounded FIFO. The stored *Artifacts are the
// cache's immutable values, so serving from the ring preserves
// byte-identity with a standalone run.
type traceRing struct {
	mu      sync.Mutex
	max     int
	byJob   map[string]*Artifacts
	order   []string
	evicted int64
}

func newTraceRing(max int) *traceRing {
	if max <= 0 {
		max = 256
	}
	return &traceRing{max: max, byJob: make(map[string]*Artifacts)}
}

// Put retains a job's artifacts, evicting oldest-first past the bound.
func (tr *traceRing) Put(jobID string, art *Artifacts) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.byJob[jobID]; ok {
		return
	}
	tr.byJob[jobID] = art
	tr.order = append(tr.order, jobID)
	for len(tr.order) > tr.max {
		old := tr.order[0]
		tr.order = tr.order[1:]
		delete(tr.byJob, old)
		tr.evicted++
	}
}

// Get returns a retained artifact set.
func (tr *traceRing) Get(jobID string) (*Artifacts, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	art, ok := tr.byJob[jobID]
	return art, ok
}

// stats returns (entries, evicted).
func (tr *traceRing) stats() (int, int64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.order), tr.evicted
}

// MetricsSnapshot assembles the full operational view: the accumulated
// registry (transitions, histograms, HTTP, rejections) plus the live
// gauges and the cache/ring counters sampled at call time. Counter
// families are monotonic across snapshots; gauges are instantaneous.
func (s *Server) MetricsSnapshot() obs.Snapshot {
	t := s.tel
	snap := t.reg.Snapshot()
	if snap.Counters == nil {
		snap.Counters = make(map[string]int64)
	}
	if snap.Gauges == nil {
		snap.Gauges = make(map[string]float64)
	}

	s.mu.Lock()
	depth, draining := len(s.queue), s.draining
	s.mu.Unlock()
	snap.Gauges[MetricQueueDepth] = float64(depth)
	snap.Gauges[MetricQueueCapacity] = float64(s.cfg.QueueSize)
	if draining {
		snap.Gauges[MetricDraining] = 1
		snap.Gauges[MetricDrainRemaining] = float64(len(s.manifest.NonTerminal()))
	} else {
		snap.Gauges[MetricDraining] = 0
		snap.Gauges[MetricDrainRemaining] = 0
	}
	snap.Gauges[MetricJobsInflight] = float64(len(s.manifest.NonTerminal()))
	for client, n := range s.manifest.InFlightByClient() {
		snap.Gauges[obs.Name(MetricClientInflight, obs.Label{Key: "client", Value: client})] = float64(n)
	}
	snap.Gauges[MetricPointsInflight] = float64(t.pointsRun.Load())

	cs := s.cache.Stats()
	snap.Counters[MetricCacheHitsTotal] = cs.Hits
	snap.Counters[MetricCacheMissesTotal] = cs.Misses
	snap.Counters[MetricCacheCoalesced] = cs.Coalesced
	snap.Counters[MetricCacheEvicted] = cs.Evicted
	snap.Gauges[MetricCacheEntries] = float64(cs.Entries)

	entries, evicted := t.ring.stats()
	snap.Gauges[MetricTraceRingEntries] = float64(entries)
	snap.Counters[MetricTraceRingEvicted] = evicted
	snap.Gauges[MetricUptimeSeconds] = time.Since(t.start).Seconds()
	return snap
}

// requestIDKey carries the request/trace ID through handler contexts.
type requestIDKey struct{}

// requestID returns the middleware-assigned request ID ("" outside it).
func requestID(r *http.Request) string {
	if id, ok := r.Context().Value(requestIDKey{}).(string); ok {
		return id
	}
	return ""
}

// telemetryResponseWriter observes the response: it records the status,
// guarantees Retry-After on 429/503, and converts any non-JSON error
// response (including the mux's own 404/405 text) into the service's
// JSON error envelope carrying the request ID.
type telemetryResponseWriter struct {
	http.ResponseWriter
	requestID   string
	route       string
	status      int
	wroteHeader bool
	takeover    bool
}

// markRoute records which registered pattern handled the request, for
// the route label (Go 1.22's mux does not expose the matched pattern).
func markRoute(w http.ResponseWriter, route string) {
	if rw, ok := w.(*telemetryResponseWriter); ok {
		rw.route = route
	}
}

func (rw *telemetryResponseWriter) WriteHeader(code int) {
	if rw.wroteHeader {
		return
	}
	rw.wroteHeader = true
	rw.status = code
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		if rw.Header().Get("Retry-After") == "" {
			rw.Header().Set("Retry-After", "1")
		}
	}
	if code >= 400 && !strings.HasPrefix(rw.Header().Get("Content-Type"), "application/json") {
		// A non-JSON error (e.g. the mux's own 404/405 plain text):
		// take the body over so every error is the JSON envelope.
		rw.takeover = true
		rw.Header().Set("Content-Type", "application/json")
		rw.Header().Del("Content-Length")
		rw.ResponseWriter.WriteHeader(code)
		fmt.Fprintf(rw.ResponseWriter, "{\n  \"error\": %s,\n  \"request_id\": %s\n}\n",
			strconv.Quote(http.StatusText(code)), strconv.Quote(rw.requestID))
		return
	}
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *telemetryResponseWriter) Write(b []byte) (int, error) {
	if !rw.wroteHeader {
		rw.WriteHeader(http.StatusOK)
	}
	if rw.takeover {
		// Report success so handlers that wrote the original body
		// (now replaced) do not surface spurious errors.
		return len(b), nil
	}
	return rw.ResponseWriter.Write(b)
}

// middleware wraps the whole API: one request ID per request (echoed in
// X-Request-ID and available via requestID), response observation, the
// per-route latency/count metrics, and one structured request log line.
func (t *Telemetry) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := t.nextRequestID()
		rw := &telemetryResponseWriter{ResponseWriter: w, requestID: id, route: "unmatched", status: http.StatusOK}
		rw.Header().Set("X-Request-ID", id)
		start := time.Now()
		next.ServeHTTP(rw, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
		elapsed := time.Since(start)
		t.reg.Add(obs.Name(MetricHTTPTotal,
			obs.Label{Key: "route", Value: rw.route},
			obs.Label{Key: "code", Value: strconv.Itoa(rw.status)}), 1)
		t.reg.Observe(obs.Name(MetricHTTPNs, obs.Label{Key: "route", Value: rw.route}), elapsed)
		t.log.Info("http request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"route", rw.route,
			"status", rw.status,
			"latency_ms", float64(elapsed.Nanoseconds())/1e6,
			"client", clientID(r),
		)
	})
}
