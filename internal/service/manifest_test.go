package service

import (
	"path/filepath"
	"strings"
	"testing"
)

func testRequest() Request {
	req, err := Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny"}.Normalize()
	if err != nil {
		panic(err)
	}
	return req
}

func TestManifestLifecycle(t *testing.T) {
	m := NewManifest()
	job := m.Add("c1", "", testRequest())
	if job.ID != "j-000001" || job.State != StatePending || job.Worker != -1 {
		t.Fatalf("fresh job = %+v", job)
	}
	if !m.start(job.ID, 3, func() {}) {
		t.Fatal("start refused a pending job")
	}
	got, _ := m.Get(job.ID)
	if got.State != StateRunning || got.Worker != 3 || got.Started.IsZero() {
		t.Fatalf("running job = %+v", got)
	}
	if !m.finish(job.ID, StateSuccess, "", "", []byte(`{"x":1}`), true) {
		t.Fatal("finish refused a running job")
	}
	got, _ = m.Get(job.ID)
	if got.State != StateSuccess || !got.CacheHit || string(got.Result) != `{"x":1}` {
		t.Fatalf("finished job = %+v", got)
	}
	if len(got.Events) != 3 {
		t.Fatalf("events = %+v, want submitted/running/finished", got.Events)
	}
	select {
	case <-m.Done(job.ID):
	default:
		t.Fatal("done channel not closed at terminal state")
	}
}

func TestManifestFirstTransitionWins(t *testing.T) {
	m := NewManifest()
	job := m.Add("c1", "", testRequest())
	m.start(job.ID, 0, func() {})
	if !m.finish(job.ID, StateTimeout, "deadline", "", nil, false) {
		t.Fatal("first finish refused")
	}
	if m.finish(job.ID, StateSuccess, "", "", []byte("late"), false) {
		t.Fatal("second finish accepted")
	}
	got, _ := m.Get(job.ID)
	if got.State != StateTimeout || got.Result != nil {
		t.Fatalf("job after racing finishes = %+v", got)
	}
}

func TestManifestIllegalTransitionPanics(t *testing.T) {
	m := NewManifest()
	job := m.Add("c1", "", testRequest())
	// pending → timeout is not a legal edge.
	defer func() {
		if recover() == nil {
			t.Fatal("illegal transition did not panic")
		}
	}()
	m.finish(job.ID, StateTimeout, "", "", nil, false)
}

func TestManifestCancelPendingAndRunning(t *testing.T) {
	m := NewManifest()
	queued := m.Add("c1", "", testRequest())
	if st, ok := m.RequestCancel(queued.ID, "test cancel"); !ok || st != StateCancelled {
		t.Fatalf("cancel pending: state=%v ok=%v", st, ok)
	}
	if m.start(queued.ID, 0, func() {}) {
		t.Fatal("start accepted a cancelled job")
	}

	running := m.Add("c1", "", testRequest())
	fired := false
	m.start(running.ID, 0, func() { fired = true })
	if st, ok := m.RequestCancel(running.ID, "test cancel"); !ok || st != StateRunning {
		t.Fatalf("cancel running: state=%v ok=%v", st, ok)
	}
	if !fired || !m.cancelRequestedFor(running.ID) {
		t.Fatal("running cancel did not fire the context cancel")
	}
	// The worker then records the terminal state.
	m.finish(running.ID, StateCancelled, "cancelled by client", "", nil, false)

	if _, ok := m.RequestCancel("j-999999", "x"); ok {
		t.Fatal("cancel of unknown job reported ok")
	}
}

func TestManifestNonTerminalAndCounts(t *testing.T) {
	m := NewManifest()
	a := m.Add("c1", "", testRequest())
	b := m.Add("c2", "", testRequest())
	m.Add("c1", "", testRequest()) // stays pending
	m.start(a.ID, 0, func() {})
	m.finish(a.ID, StateSuccess, "", "", nil, false)
	m.start(b.ID, 1, func() {})

	if got := m.NonTerminal(); len(got) != 2 || got[0] != b.ID {
		t.Fatalf("NonTerminal = %v", got)
	}
	counts := m.CountByState()
	if counts[StateSuccess] != 1 || counts[StateRunning] != 1 || counts[StatePending] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if m.InFlight("c1") != 1 || m.InFlight("c2") != 1 || m.InFlight("nobody") != 0 {
		t.Fatalf("in-flight: c1=%d c2=%d", m.InFlight("c1"), m.InFlight("c2"))
	}
}

func TestManifestSaveLoad(t *testing.T) {
	m := NewManifest()
	a := m.Add("c1", "", testRequest())
	m.start(a.ID, 0, func() {})
	m.finish(a.ID, StateFailed, "boom", "stack here", nil, false)
	m.Add("c2", "", testRequest())

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || len(snap.Jobs) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Jobs[0].ID != a.ID || snap.Jobs[0].State != StateFailed ||
		snap.Jobs[0].Error != "boom" || !strings.Contains(snap.Jobs[0].Stack, "stack") {
		t.Fatalf("persisted job 0 = %+v", snap.Jobs[0])
	}
	if snap.Jobs[1].State != StatePending {
		t.Fatalf("persisted job 1 = %+v", snap.Jobs[1])
	}
}
