package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"atgpu/internal/algorithms"
	"atgpu/internal/analyze"
	"atgpu/internal/calibrate"
	"atgpu/internal/core"
	"atgpu/internal/experiments"
	"atgpu/internal/obs"
	"atgpu/internal/results"
	"atgpu/internal/sched"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// Request is a job submission: which capability to run (run, sweep,
// pipeline, analyze, lint), on what workload and sizes, on which
// simulated machine, under what fault plan. The zero values of the
// optional fields mean "the default"; Normalize resolves them, so the
// request stored in the manifest — and hashed into the cache key — is
// always explicit.
type Request struct {
	// Kind selects the capability: "run" (one observed point), "sweep"
	// (observed sweep over Sizes), "pipeline" (sequential-vs-overlapped
	// sweep), "analyze" (model-only prediction, no simulation), or
	// "lint" (static kernel analysis, no simulation).
	Kind string `json:"kind"`
	// Workload is the algorithm: vecadd, reduce or matmul ("lint" also
	// accepts scan).
	Workload string `json:"workload"`
	// N is the input size for run/analyze/lint kinds.
	N int `json:"n,omitempty"`
	// Sizes are the sweep sizes for sweep/pipeline kinds (default: the
	// config's standard sweep for the workload).
	Sizes []int `json:"sizes,omitempty"`
	// Device is the simulated GPU preset: gtx650 (default), gtx1080,
	// k40 or tiny.
	Device string `json:"device,omitempty"`
	// Scheme is the transfer scheme: pageable (default), pinned or
	// mapped.
	Scheme string `json:"scheme,omitempty"`
	// SyncCostUs is σ in microseconds (default 50, the EXPERIMENTS.md
	// setup; -1 means zero sync cost).
	SyncCostUs int64 `json:"sync_cost_us,omitempty"`
	// Seed drives the input generators.
	Seed int64 `json:"seed,omitempty"`
	// Chunks is the pipeline chunk/band count (pipeline kind only).
	Chunks int `json:"chunks,omitempty"`

	// FaultRate enables fault injection when > 0 (probability per
	// transfer/launch decision); FaultSeed, MaxRetries and WatchdogUs
	// shape the plan exactly as the CLI flags do.
	FaultRate  float64 `json:"fault_rate,omitempty"`
	FaultSeed  int64   `json:"fault_seed,omitempty"`
	MaxRetries int     `json:"max_retries,omitempty"`
	WatchdogUs int64   `json:"watchdog_us,omitempty"`

	// Trace retains the job's simulated-time Perfetto trace, served at
	// GET /v1/jobs/{id}/trace. Metrics retains the job's simulated-time
	// obs snapshot (Prometheus text), served at GET /v1/jobs/{id}/metrics.
	// Both are byte-identical to a standalone run of the same request and
	// both participate in the cache key: they change the artifact set
	// (and Metrics embeds obs snapshots in the result records).
	Trace   bool `json:"trace,omitempty"`
	Metrics bool `json:"metrics,omitempty"`

	// TimeoutMs bounds the job's execution (0 = server default). Not
	// part of the cache key: it is execution policy, not content.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this job — it neither reads
	// nor writes an entry. The fresh-versus-cached identity tests are
	// built on this.
	NoCache bool `json:"no_cache,omitempty"`
	// Wait makes the submission synchronous: the HTTP response arrives
	// after the job reaches a terminal state.
	Wait bool `json:"wait,omitempty"`
}

// Submission guard rails: a request may be wrong, but it must not be
// able to wedge the daemon.
const (
	maxSweepSizes  = 64
	maxRequestSize = 1 << 26
)

// devicePreset resolves a device preset name.
func devicePreset(name string) (simgpu.Config, error) {
	switch name {
	case "gtx650":
		return simgpu.GTX650(), nil
	case "gtx1080":
		return simgpu.GTX1080(), nil
	case "k40":
		return simgpu.TeslaK40(), nil
	case "tiny":
		return simgpu.Tiny(), nil
	}
	return simgpu.Config{}, fmt.Errorf("unknown device %q (want gtx650, gtx1080, k40 or tiny)", name)
}

// schemeByName resolves a transfer scheme name.
func schemeByName(name string) (transfer.Scheme, error) {
	switch name {
	case "pageable":
		return transfer.Pageable, nil
	case "pinned":
		return transfer.Pinned, nil
	case "mapped":
		return transfer.Mapped, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want pageable, pinned or mapped)", name)
}

// Normalize validates the request and fills every defaultable field
// explicitly (device, scheme, sync cost, sweep sizes), so equal
// requests normalize to equal values and the cache key sees no
// ambiguity. It returns the explicit request.
func (r Request) Normalize() (Request, error) {
	if r.Device == "" {
		r.Device = "gtx650"
	}
	if r.Scheme == "" {
		r.Scheme = "pageable"
	}
	if r.SyncCostUs == 0 {
		r.SyncCostUs = 50
	} else if r.SyncCostUs == -1 {
		r.SyncCostUs = 0
	} else if r.SyncCostUs < 0 {
		return r, fmt.Errorf("sync_cost_us %d invalid (use -1 for zero)", r.SyncCostUs)
	}
	if _, err := devicePreset(r.Device); err != nil {
		return r, err
	}
	if _, err := schemeByName(r.Scheme); err != nil {
		return r, err
	}
	if r.FaultRate < 0 || r.FaultRate > 1 {
		return r, fmt.Errorf("fault_rate %v outside [0,1]", r.FaultRate)
	}
	if r.MaxRetries < 0 || r.WatchdogUs < 0 || r.TimeoutMs < 0 || r.Chunks < 0 {
		return r, fmt.Errorf("negative max_retries, watchdog_us, timeout_ms or chunks")
	}

	workloads := map[string]bool{"vecadd": true, "reduce": true, "matmul": true}
	if r.Kind == "lint" {
		workloads["scan"] = true
	}
	if !workloads[r.Workload] {
		return r, fmt.Errorf("kind %q: unknown workload %q", r.Kind, r.Workload)
	}

	switch r.Kind {
	case "run", "analyze", "lint":
		if r.N <= 0 || r.N > maxRequestSize {
			return r, fmt.Errorf("kind %q needs n in 1..%d, got %d", r.Kind, maxRequestSize, r.N)
		}
		if len(r.Sizes) > 0 {
			return r, fmt.Errorf("kind %q takes n, not sizes", r.Kind)
		}
		r.Chunks = 0
	case "sweep", "pipeline":
		if r.N != 0 {
			return r, fmt.Errorf("kind %q takes sizes, not n", r.Kind)
		}
		if len(r.Sizes) == 0 {
			cfg := experiments.Config{}
			sizes, err := cfg.SweepSizes(r.Workload)
			if err != nil {
				return r, err
			}
			r.Sizes = sizes
		}
		if len(r.Sizes) > maxSweepSizes {
			return r, fmt.Errorf("%d sizes exceed the %d-size limit", len(r.Sizes), maxSweepSizes)
		}
		for _, n := range r.Sizes {
			if n <= 0 || n > maxRequestSize {
				return r, fmt.Errorf("size %d outside 1..%d", n, maxRequestSize)
			}
		}
		if r.Kind != "pipeline" {
			r.Chunks = 0
		}
	default:
		return r, fmt.Errorf("unknown kind %q (want run, sweep, pipeline, analyze or lint)", r.Kind)
	}
	return r, nil
}

// config builds the experiments configuration for a normalized request.
// Workers is pinned to 1: concurrency lives in the server's worker pool,
// and one goroutine per job keeps point index 0 = request N for "run"
// jobs, which the cache key relies on.
func (r Request) config() (experiments.Config, error) {
	dev, err := devicePreset(r.Device)
	if err != nil {
		return experiments.Config{}, err
	}
	scheme, err := schemeByName(r.Scheme)
	if err != nil {
		return experiments.Config{}, err
	}
	cfg := experiments.Config{
		Device:     dev,
		Scheme:     scheme,
		SyncCost:   time.Duration(r.SyncCostUs) * time.Microsecond,
		Seed:       r.Seed,
		Workers:    1,
		Chunks:     r.Chunks,
		FaultRate:  r.FaultRate,
		FaultSeed:  r.FaultSeed,
		MaxRetries: r.MaxRetries,
		Watchdog:   time.Duration(r.WatchdogUs) * time.Microsecond,
	}
	sizes := r.Sizes
	if len(sizes) == 0 {
		sizes = []int{r.N}
	}
	switch r.Workload {
	case "vecadd", "scan":
		cfg.SizesVecAdd = sizes
	case "reduce":
		cfg.SizesReduce = sizes
	case "matmul":
		cfg.SizesMatMul = sizes
	}
	return cfg, nil
}

// CacheKey hashes everything that determines a normalized request's
// result — FNV-1a over the kind, the per-size kernel disassemblies, the
// full machine description, the scheme, σ, the sizes, the seeds and the
// fault plan. Execution policy (timeout, no_cache, wait) is excluded.
// Two requests with equal keys produce byte-identical results; that is
// the contract the cache identity tests enforce.
func (r Request) CacheKey() (uint64, error) {
	cfg, err := r.config()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var buf [8]byte
	str := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	num := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str("atgpud-cache-v2")
	str(r.Kind)
	str(r.Workload)
	// The observability flags select which artifacts exist (and Metrics
	// adds obs snapshots to the result records), so they are content.
	num(uint64(boolBit(r.Trace)<<1 | boolBit(r.Metrics)))
	// The machine, in full: every config field participates, so a preset
	// revision naturally invalidates old entries.
	str(fmt.Sprintf("%#v", cfg.Device))
	str(r.Scheme)
	num(uint64(cfg.SyncCost))
	num(uint64(r.Seed))
	num(uint64(r.Chunks))
	num(math.Float64bits(r.FaultRate))
	num(uint64(r.FaultSeed))
	num(uint64(r.MaxRetries))
	num(uint64(r.WatchdogUs))
	sizes := r.Sizes
	if len(sizes) == 0 {
		sizes = []int{r.N}
	}
	num(uint64(len(sizes)))
	for _, n := range sizes {
		num(uint64(n))
		// The kernel component: the disassembly of the kernel this size
		// launches. Pipelined kernels are chunked variants of the same
		// bodies; kind+chunks above keep their keys apart.
		prog, blocks, err := algorithms.BuiltinKernel(r.Workload, n, cfg.Device.WarpWidth)
		if err != nil {
			return 0, fmt.Errorf("size %d: %w", n, err)
		}
		num(uint64(blocks))
		str(prog.Disassemble())
	}
	return h.Sum64(), nil
}

// boolBit maps a flag into the cache-key hash input.
func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Result is a job's deterministic output document. Exactly one of the
// payload fields is set, per Kind; the surrounding metadata repeats the
// resolved machine so a result is self-describing.
type Result struct {
	Kind       string          `json:"kind"`
	Workload   string          `json:"workload"`
	Device     string          `json:"device"`
	Scheme     string          `json:"scheme"`
	CostParams core.CostParams `json:"cost_params"`

	// Point is the run/analyze payload.
	Point *experiments.WorkloadPoint `json:"point,omitempty"`
	// Points is the sweep payload.
	Points []experiments.WorkloadPoint `json:"points,omitempty"`
	// Pipeline is the pipeline payload.
	Pipeline []experiments.PipelinePoint `json:"pipeline,omitempty"`
	// Lint is the lint payload.
	Lint *analyze.Report `json:"lint,omitempty"`

	// Records carries the same payload in the canonical result-record
	// shape, one per point, stamped with the request's machine identity
	// (but no git or worker stamp — the result must stay deterministic
	// for the cache). The daemon appends these to its result store.
	Records []results.Record `json:"records,omitempty"`

	// FailedPoints counts points that exhausted fault recovery (a
	// deterministic outcome of the fault plan, so still cacheable).
	FailedPoints int `json:"failed_points,omitempty"`
}

// Executor runs jobs. It holds the warmed-system pool: calibrations are
// cached by (device, scheme, σ) — the only inputs calibration depends
// on — so each job builds its isolated runner without re-simulating the
// calibration microkernels. The executor is safe for concurrent use.
type Executor struct {
	mu   sync.Mutex
	cals map[calKey]*calEntry

	// Sched, when non-nil, observes every sweep-point dispatch inside
	// jobs this executor runs (one scheduler job per point). Purely
	// operational — the telemetry plane counts live points through it —
	// and never changes results. Set before first use.
	Sched sched.Observer
}

type calKey struct {
	device string
	scheme string
	sync   time.Duration
}

// calEntry computes one calibration at most once, even under
// concurrent first requests.
type calEntry struct {
	once sync.Once
	link *transfer.Link
	cal  calibrate.Result
	err  error
}

// NewExecutor returns an executor with an empty calibration pool.
func NewExecutor() *Executor {
	return &Executor{cals: make(map[calKey]*calEntry)}
}

// Warm pre-calibrates the named device presets (pageable scheme, the
// default σ) so the first jobs do not pay the calibration. Unknown
// names error; calibration failures surface immediately rather than on
// a request.
func (x *Executor) Warm(devices ...string) error {
	for _, d := range devices {
		req := Request{Kind: "analyze", Workload: "vecadd", N: 1, Device: d}
		req, err := req.Normalize()
		if err != nil {
			return err
		}
		cfg, err := req.config()
		if err != nil {
			return err
		}
		if _, _, err := x.calibration(req, cfg); err != nil {
			return fmt.Errorf("warm %s: %w", d, err)
		}
	}
	return nil
}

// CalibrationsWarmed counts distinct cached calibrations.
func (x *Executor) CalibrationsWarmed() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.cals)
}

// calibration returns the cached calibration for the request's machine,
// computing it once on first use.
func (x *Executor) calibration(req Request, cfg experiments.Config) (*transfer.Link, calibrate.Result, error) {
	k := calKey{device: req.Device, scheme: req.Scheme, sync: cfg.SyncCost}
	x.mu.Lock()
	e, ok := x.cals[k]
	if !ok {
		e = &calEntry{}
		x.cals[k] = e
	}
	x.mu.Unlock()
	e.once.Do(func() {
		e.link, e.cal, e.err = experiments.Calibrate(cfg)
	})
	return e.link, e.cal, e.err
}

// Artifacts is everything a job execution produces: the result document
// plus the optional simulated-time observability artifacts selected by
// Request.Trace and Request.Metrics. All three byte slices are
// immutable once built — the cache hands the same *Artifacts to every
// hit, so a cached trace is byte-identical to the fresh run's by
// construction.
type Artifacts struct {
	// Result is the deterministic result document (canonical JSON).
	Result []byte
	// Trace is the Perfetto trace JSON (nil unless Request.Trace).
	Trace []byte
	// Metrics is the Prometheus text exposition of the job's
	// simulated-time obs snapshot (nil unless Request.Metrics).
	Metrics []byte
}

// Execute runs one normalized request to completion under ctx and
// returns its artifacts; the result document is canonical JSON — the
// bytes the cache stores, so a hit is byte-identical by construction.
// Cancellation surfaces as experiments.ErrCancelled (the worker maps it
// to the timeout or cancelled state); any other error fails the job.
func (x *Executor) Execute(ctx context.Context, req Request) (*Artifacts, error) {
	cfg, err := req.config()
	if err != nil {
		return nil, err
	}
	link, cal, err := x.calibration(req, cfg)
	if err != nil {
		return nil, err
	}
	cfg.Context = ctx
	cfg.Obs = obs.Options{Trace: req.Trace, Metrics: req.Metrics}
	cfg.SchedObserver = x.Sched
	runner, err := experiments.NewRunnerCalibrated(cfg, link, cal)
	if err != nil {
		return nil, err
	}
	doc := Result{
		Kind:       req.Kind,
		Workload:   req.Workload,
		Device:     req.Device,
		Scheme:     req.Scheme,
		CostParams: runner.CostParams(),
	}

	// rep is the job's folded simulated-time obs report; analyze and
	// lint do not simulate, so their requested artifacts are the valid
	// empty trace / empty exposition.
	var rep *obs.Report

	switch req.Kind {
	case "analyze":
		pt, err := runner.PredictPoint(req.Workload, req.N)
		if err != nil {
			return nil, err
		}
		doc.Point = &pt
		doc.Records = []results.Record{runner.Record("analyze", req.Workload, pt)}
	case "lint":
		prog, blocks, err := algorithms.BuiltinKernel(req.Workload, req.N, cfg.Device.WarpWidth)
		if err != nil {
			return nil, err
		}
		cp := runner.CostParams()
		rep, err := analyze.Program(prog, analyze.Options{
			Machine: analyze.FromConfig(cfg.Device),
			Blocks:  blocks,
			Cost:    &cp,
		})
		if err != nil {
			return nil, err
		}
		doc.Lint = rep
	case "run", "sweep":
		data, err := x.sweep(runner, req.Workload)
		if err != nil {
			return nil, err
		}
		rep = data.Obs
		doc.FailedPoints = data.FailedPoints()
		doc.Records = data.Records
		if req.Kind == "run" {
			doc.Point = &data.Points[0]
			// The sweep machinery stamped kind "sweep"; a one-point run
			// is its own kind in the store.
			doc.Records[0].Kind = "run"
		} else {
			doc.Points = data.Points
		}
	case "pipeline":
		data, err := x.pipeline(runner, req.Workload)
		if err != nil {
			return nil, err
		}
		rep = data.Obs
		doc.Pipeline = data.Points
		doc.Records = data.Records
		for _, p := range data.Points {
			if p.Failed {
				doc.FailedPoints++
			}
		}
	default:
		return nil, fmt.Errorf("unknown kind %q", req.Kind)
	}

	result, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	art := &Artifacts{Result: result}
	if req.Trace {
		var buf bytes.Buffer
		var tr *obs.Recorder
		if rep != nil {
			tr = rep.Trace
		}
		// A nil recorder writes the valid empty trace, so analyze/lint
		// jobs that asked for a trace still serve well-formed JSON.
		if err := tr.WriteTrace(&buf); err != nil {
			return nil, err
		}
		art.Trace = buf.Bytes()
	}
	if req.Metrics {
		var buf bytes.Buffer
		if err := rep.Snapshot().WritePrometheus(&buf); err != nil {
			return nil, err
		}
		art.Metrics = buf.Bytes()
	}
	return art, nil
}

// sweep dispatches to the workload's observed sweep.
func (x *Executor) sweep(r *experiments.Runner, workload string) (*experiments.WorkloadData, error) {
	switch workload {
	case "vecadd":
		return r.RunVecAdd()
	case "reduce":
		return r.RunReduce()
	case "matmul":
		return r.RunMatMul()
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

// pipeline dispatches to the workload's pipelined sweep.
func (x *Executor) pipeline(r *experiments.Runner, workload string) (*experiments.PipelineData, error) {
	switch workload {
	case "vecadd":
		return r.RunVecAddPipelined()
	case "reduce":
		return r.RunReducePipelined()
	case "matmul":
		return r.RunMatMulPipelined()
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}
