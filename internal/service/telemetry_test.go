package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atgpu/internal/obs"
)

// tsGet fetches one path from the test daemon and returns the response
// plus its fully-read body.
func tsGet(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// postJob submits one request with wait=true and returns the terminal job.
func postJob(t *testing.T, ts *httptest.Server, req Request) Job {
	t.Helper()
	req.Wait = true
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d %s", resp.StatusCode, data)
	}
	var job Job
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatalf("job decode: %v (%s)", err, data)
	}
	return job
}

// TestTelemetryEndpoints drives a little traffic and checks every
// telemetry surface: /metrics parses under the strict exposition
// parser and carries the expected families, /metrics.json and
// /metrics.otlp are valid JSON exports of the same snapshot, /tracez is
// a Perfetto document covering the jobs, and every response carries a
// fresh X-Request-ID.
func TestTelemetryEndpoints(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job := postJob(t, ts, Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny"})
	postJob(t, ts, Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny"}) // cache hit

	resp, body := tsGet(t, ts, "/metrics")
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("/metrics = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	exp, err := obs.ParsePrometheus(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	for _, family := range []string{
		MetricJobsTotal, MetricJobsInflight, MetricQueueDepth, MetricQueueCapacity,
		MetricQueueWaitNs, MetricJobDurationNs, MetricExecNs,
		MetricCacheHitsTotal, MetricCacheMissesTotal, MetricCacheEntries,
		MetricHTTPTotal, MetricHTTPNs, MetricDraining, MetricUptimeSeconds,
	} {
		f := exp.Family(family)
		if f == nil {
			t.Errorf("family %s missing from /metrics", family)
			continue
		}
		if f.Help == "" || f.Help == "No help registered." {
			t.Errorf("family %s lacks real HELP text", family)
		}
	}
	if v, ok := exp.Value(obs.Name(MetricJobsTotal,
		obs.Label{Key: "kind", Value: "run"},
		obs.Label{Key: "state", Value: "success"})); !ok || v < 2 {
		t.Errorf("jobs_total{kind=run,state=success} = %v ok=%v, want >= 2", v, ok)
	}
	if hits, ok := exp.CounterTotal(MetricCacheHitsTotal); !ok || hits < 1 {
		t.Errorf("cache hits = %v ok=%v, want >= 1", hits, ok)
	}

	// JSON export: the same snapshot shape internal/obs reads back.
	if resp, body := tsGet(t, ts, "/metrics.json"); resp.StatusCode != 200 || !json.Valid(body) {
		t.Errorf("/metrics.json = %d valid=%v", resp.StatusCode, json.Valid(body))
	}
	// OTLP export: resourceMetrics → scopeMetrics → metrics.
	_, otlpBody := tsGet(t, ts, "/metrics.otlp")
	var otlp struct {
		ResourceMetrics []struct {
			ScopeMetrics []struct {
				Metrics []json.RawMessage `json:"metrics"`
			} `json:"scopeMetrics"`
		} `json:"resourceMetrics"`
	}
	if err := json.Unmarshal(otlpBody, &otlp); err != nil ||
		len(otlp.ResourceMetrics) != 1 || len(otlp.ResourceMetrics[0].ScopeMetrics) != 1 ||
		len(otlp.ResourceMetrics[0].ScopeMetrics[0].Metrics) == 0 {
		t.Errorf("/metrics.otlp malformed: err=%v %.200s", err, otlpBody)
	}

	// /tracez: a Perfetto document whose events cover the jobs run above.
	_, tz := tsGet(t, ts, "/tracez")
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tz, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("/tracez malformed: err=%v %.200s", err, tz)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if strings.Contains(ev.Name, job.ID) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("/tracez has no events for job %s", job.ID)
	}

	// Request IDs: present and distinct per request.
	r1, _ := tsGet(t, ts, "/healthz")
	r2, _ := tsGet(t, ts, "/healthz")
	id1, id2 := r1.Header.Get("X-Request-ID"), r2.Header.Get("X-Request-ID")
	if id1 == "" || id1 == id2 {
		t.Errorf("request IDs = %q, %q — want distinct non-empty", id1, id2)
	}
}

// TestDaemonArtifactsByteIdentical is the per-job half of the telemetry
// acceptance gate: the trace and metrics documents the daemon serves for
// a job — fresh, cache-hit, healthy or fault-injected — are byte-for-byte
// what a standalone executor produces for the same request, because both
// are stamped in simulated time only.
func TestDaemonArtifactsByteIdentical(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, raw := range []Request{
		{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 5, Trace: true, Metrics: true},
		{Kind: "run", Workload: "reduce", N: 256, Device: "tiny", Seed: 3,
			FaultRate: 0.05, FaultSeed: 11, Trace: true, Metrics: true},
		{Kind: "sweep", Workload: "vecadd", Device: "tiny", Sizes: []int{32, 64}, Trace: true, Metrics: true},
	} {
		fresh := postJob(t, ts, raw)
		if fresh.State != StateSuccess {
			t.Fatalf("%s %s: job = %s err=%q", raw.Kind, raw.Workload, fresh.State, fresh.Error)
		}
		if fresh.CacheHit {
			t.Fatalf("%s %s: first submission was a cache hit", raw.Kind, raw.Workload)
		}

		fetch := func(id, what string, wantCache string) []byte {
			t.Helper()
			resp, body := tsGet(t, ts, "/v1/jobs/"+id+"/"+what)
			if resp.StatusCode != 200 {
				t.Fatalf("%s for %s = %d %s", what, id, resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Cache"); got != wantCache {
				t.Errorf("%s for %s: X-Cache = %q, want %q", what, id, got, wantCache)
			}
			return body
		}
		freshTrace := fetch(fresh.ID, "trace", "miss")
		freshMetrics := fetch(fresh.ID, "metrics", "miss")

		// A standalone executor, fresh calibrations, same request.
		norm, err := raw.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		art, err := NewExecutor().Execute(context.Background(), norm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(freshTrace, art.Trace) {
			t.Errorf("%s %s: daemon trace differs from standalone run", raw.Kind, raw.Workload)
		}
		if !bytes.Equal(freshMetrics, art.Metrics) {
			t.Errorf("%s %s: daemon metrics differ from standalone run", raw.Kind, raw.Workload)
		}

		// Cache-hit resubmission serves the identical bytes.
		hit := postJob(t, ts, raw)
		if !hit.CacheHit {
			t.Fatalf("%s %s: resubmission missed the cache", raw.Kind, raw.Workload)
		}
		if got := fetch(hit.ID, "trace", "hit"); !bytes.Equal(got, freshTrace) {
			t.Errorf("%s %s: cache-hit trace differs", raw.Kind, raw.Workload)
		}
		if got := fetch(hit.ID, "metrics", "hit"); !bytes.Equal(got, freshMetrics) {
			t.Errorf("%s %s: cache-hit metrics differ", raw.Kind, raw.Workload)
		}

		// The trace is a Perfetto document; the metrics parse strictly.
		if !json.Valid(freshTrace) {
			t.Errorf("%s %s: trace is not JSON", raw.Kind, raw.Workload)
		}
		if _, err := obs.ParsePrometheus(bytes.NewReader(freshMetrics)); err != nil {
			t.Errorf("%s %s: job metrics do not parse: %v", raw.Kind, raw.Workload, err)
		}
	}

	// A job that did not opt in has no artifacts to serve.
	plain := postJob(t, ts, Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 77})
	if resp, _ := tsGet(t, ts, "/v1/jobs/"+plain.ID+"/trace"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace for opt-out job = %d, want 404", resp.StatusCode)
	}
}

// TestErrorResponsesAreJSON audits the error paths: every non-2xx answer
// — including the mux's own 404/405 — is a JSON envelope carrying the
// request ID from X-Request-ID, and backpressure answers always carry
// Retry-After.
func TestErrorResponsesAreJSON(t *testing.T) {
	s := newIdleServer(ServerConfig{QueueSize: 1, PerClient: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func(method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Fill the queue so the next submission is pushed back with 429.
	first := do(http.MethodPost, "/v1/jobs", `{"kind":"run","workload":"vecadd","n":64,"device":"tiny"}`)
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("queue fill = %d", first.StatusCode)
	}
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		retryAfter bool
	}{
		{"mux 404", http.MethodGet, "/no/such/route", "", http.StatusNotFound, false},
		{"mux 405", http.MethodDelete, "/metrics", "", http.StatusMethodNotAllowed, false},
		{"bad body", http.MethodPost, "/v1/jobs", `{"kind":`, http.StatusBadRequest, false},
		{"bad request", http.MethodPost, "/v1/jobs", `{"kind":"warp"}`, http.StatusBadRequest, false},
		{"unknown job", http.MethodGet, "/v1/jobs/j-424242", "", http.StatusNotFound, false},
		{"unknown artifact", http.MethodGet, "/v1/jobs/j-424242/trace", "", http.StatusNotFound, false},
		{"queue full", http.MethodPost, "/v1/jobs", `{"kind":"run","workload":"vecadd","n":64,"device":"tiny","seed":9}`, http.StatusTooManyRequests, true},
		{"not ready", http.MethodGet, "/readyz", "", http.StatusServiceUnavailable, true},
	}
	for _, tc := range cases {
		if tc.name == "not ready" {
			// Drain mode makes /readyz (and submissions) answer 503; flip
			// it only once the backpressure cases have run.
			s.mu.Lock()
			s.draining = true
			s.mu.Unlock()
		}
		resp := do(tc.method, tc.path, tc.body)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, body)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: Content-Type = %q, want JSON", tc.name, ct)
		}
		var envelope struct {
			Error     string `json:"error"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == "" {
			t.Errorf("%s: body is not the error envelope: %v (%s)", tc.name, err, body)
			continue
		}
		if want := resp.Header.Get("X-Request-ID"); want == "" || envelope.RequestID != want {
			t.Errorf("%s: request_id = %q, header = %q", tc.name, envelope.RequestID, want)
		}
		if tc.retryAfter && resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: missing Retry-After", tc.name)
		}
	}
}

// TestTracezTimelineShape checks the wall-clock timeline against the
// manifest: every terminal job appears with its queue span and, once it
// ran, a span on its worker's track.
func TestTracezTimelineShape(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 2})
	postJobDirect := func(req Request) Job {
		t.Helper()
		job, err := s.Submit("t", req)
		if err != nil {
			t.Fatal(err)
		}
		return waitTerminal(t, s, job.ID)
	}
	ran := postJobDirect(Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny", Seed: 1})

	var buf bytes.Buffer
	if err := s.writeTracez(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("tracez: %v", err)
	}
	var queued, running, terminal bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == ran.ID+" queued":
			queued = true
		case ev.Name == ran.ID+" run":
			running = true
		case ev.Name == ran.ID+" "+string(StateSuccess):
			terminal = true
			if ev.Args["state"] != "success" {
				t.Errorf("terminal instant args = %v", ev.Args)
			}
		}
	}
	if !queued || !running || !terminal {
		t.Errorf("tracez coverage: queued=%v running=%v terminal=%v", queued, running, terminal)
	}
}

// TestMetricsSnapshotQuiesces: after a drain, the live gauges all read
// zero — nothing in flight, nothing queued, nothing left to drain.
func TestMetricsSnapshotQuiesces(t *testing.T) {
	s := newTestServer(t, ServerConfig{Workers: 2})
	job, err := s.Submit("t", Request{Kind: "run", Workload: "vecadd", N: 64, Device: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, job.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	snap := s.MetricsSnapshot()
	for _, gauge := range []string{
		MetricJobsInflight, MetricQueueDepth, MetricPointsInflight, MetricDrainRemaining,
	} {
		if v := snap.Gauges[gauge]; v != 0 {
			t.Errorf("%s = %v after drain, want 0", gauge, v)
		}
	}
	if snap.Gauges[MetricDraining] != 1 {
		t.Errorf("draining gauge = %v after shutdown, want 1", snap.Gauges[MetricDraining])
	}
	if snap.Counters[obs.Name(MetricJobsTotal,
		obs.Label{Key: "kind", Value: "run"},
		obs.Label{Key: "state", Value: "success"})] < 1 {
		t.Error("success transition not counted")
	}
}
