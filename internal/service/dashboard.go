package service

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Grafana dashboard generation. The dashboard is derived from the same
// metric-family constants the daemon exports, so a renamed family breaks
// the generator at compile time instead of silently blanking a panel.
// The output is plain Grafana dashboard JSON (schema v39, importable via
// "Dashboards → Import"); the only external assumption is a Prometheus
// datasource scraping GET /metrics.

// DashboardMetricFamilies lists every metric family the generated
// dashboard queries. cmd/atgpu-dash -check-metrics verifies a live
// /metrics exposition serves each one.
func DashboardMetricFamilies() []string {
	return []string{
		MetricJobsTotal,
		MetricJobsInflight,
		MetricQueueDepth,
		MetricQueueCapacity,
		MetricQueueWaitNs,
		MetricJobDurationNs,
		MetricExecNs,
		MetricRejectedTotal,
		MetricCacheHitsTotal,
		MetricCacheMissesTotal,
		MetricHTTPTotal,
		MetricHTTPNs,
		MetricDraining,
		MetricDrainRemaining,
		MetricPointsTotal,
		MetricPointsInflight,
		MetricTraceRingEntries,
		MetricUptimeSeconds,
	}
}

// dashPanel is one Grafana panel; position is assigned by DashboardJSON.
type dashPanel struct {
	title   string
	kind    string // "timeseries" or "stat"
	unit    string // Grafana unit id ("ns", "reqps", "percentunit", "short", "s")
	queries []dashQuery
}

// dashQuery is one PromQL target on a panel.
type dashQuery struct {
	expr   string
	legend string
}

// histogram p-quantile over the power-of-two-ns buckets the daemon
// exports. The bounds are exact (2^i − 1 ns), so the interpolation error
// is at most one octave — good enough for an operational latency panel.
func quantile(q float64, family, by string) string {
	sel := fmt.Sprintf("rate(%s_bucket[$__rate_interval])", family)
	if by == "" {
		return fmt.Sprintf("histogram_quantile(%g, sum by (le) (%s))", q, sel)
	}
	return fmt.Sprintf("histogram_quantile(%g, sum by (le, %s) (%s))", q, by, sel)
}

// dashboardPanels defines the dashboard content in display order.
func dashboardPanels() []dashPanel {
	return []dashPanel{
		{
			title: "Job throughput", kind: "timeseries", unit: "reqps",
			queries: []dashQuery{{
				expr:   fmt.Sprintf("sum by (kind, state) (rate(%s[$__rate_interval]))", MetricJobsTotal),
				legend: "{{kind}} → {{state}}",
			}},
		},
		{
			title: "Jobs in flight", kind: "timeseries", unit: "short",
			queries: []dashQuery{
				{expr: MetricJobsInflight, legend: "jobs"},
				{expr: MetricPointsInflight, legend: "sweep points"},
			},
		},
		{
			title: "Queue depth", kind: "timeseries", unit: "short",
			queries: []dashQuery{
				{expr: MetricQueueDepth, legend: "depth"},
				{expr: MetricQueueCapacity, legend: "capacity"},
			},
		},
		{
			title: "Queue wait", kind: "timeseries", unit: "ns",
			queries: []dashQuery{
				{expr: quantile(0.5, MetricQueueWaitNs, ""), legend: "p50"},
				{expr: quantile(0.95, MetricQueueWaitNs, ""), legend: "p95"},
			},
		},
		{
			title: "Execute-phase latency by kind", kind: "timeseries", unit: "ns",
			queries: []dashQuery{
				{expr: quantile(0.95, MetricExecNs, "kind"), legend: "{{kind}} p95"},
			},
		},
		{
			title: "End-to-end job duration by kind", kind: "timeseries", unit: "ns",
			queries: []dashQuery{
				{expr: quantile(0.95, MetricJobDurationNs, "kind"), legend: "{{kind}} p95"},
			},
		},
		{
			title: "HTTP requests", kind: "timeseries", unit: "reqps",
			queries: []dashQuery{{
				expr:   fmt.Sprintf("sum by (route, code) (rate(%s[$__rate_interval]))", MetricHTTPTotal),
				legend: "{{route}} {{code}}",
			}},
		},
		{
			title: "HTTP latency by route", kind: "timeseries", unit: "ns",
			queries: []dashQuery{
				{expr: quantile(0.95, MetricHTTPNs, "route"), legend: "{{route}} p95"},
			},
		},
		{
			title: "Rejections", kind: "timeseries", unit: "reqps",
			queries: []dashQuery{{
				expr:   fmt.Sprintf("sum by (reason) (rate(%s[$__rate_interval]))", MetricRejectedTotal),
				legend: "{{reason}}",
			}},
		},
		{
			title: "Cache hit ratio", kind: "timeseries", unit: "percentunit",
			queries: []dashQuery{{
				expr: fmt.Sprintf(
					"rate(%[1]s[$__rate_interval]) / clamp_min(rate(%[1]s[$__rate_interval]) + rate(%[2]s[$__rate_interval]), 1)",
					MetricCacheHitsTotal, MetricCacheMissesTotal),
				legend: "hit ratio",
			}},
		},
		{
			title: "Drain", kind: "timeseries", unit: "short",
			queries: []dashQuery{
				{expr: MetricDraining, legend: "draining"},
				{expr: MetricDrainRemaining, legend: "jobs remaining"},
			},
		},
		{
			title: "Sweep points", kind: "timeseries", unit: "reqps",
			queries: []dashQuery{{
				expr:   fmt.Sprintf("sum by (outcome) (rate(%s[$__rate_interval]))", MetricPointsTotal),
				legend: "{{outcome}}",
			}},
		},
		{
			title: "Trace ring", kind: "stat", unit: "short",
			queries: []dashQuery{{expr: MetricTraceRingEntries, legend: "retained"}},
		},
		{
			title: "Uptime", kind: "stat", unit: "s",
			queries: []dashQuery{{expr: MetricUptimeSeconds, legend: "uptime"}},
		},
	}
}

// DashboardJSON renders the atgpud Grafana dashboard. datasource is the
// Prometheus datasource UID (Grafana resolves the literal string
// "${DS_PROMETHEUS}" through its import dialog, which is the useful
// default). Output is deterministic: same input, same bytes.
func DashboardJSON(datasource string) ([]byte, error) {
	if datasource == "" {
		datasource = "${DS_PROMETHEUS}"
	}
	ds := map[string]any{"type": "prometheus", "uid": datasource}

	const cols, panelW, panelH = 2, 12, 8
	var panels []map[string]any
	for i, p := range dashboardPanels() {
		var targets []map[string]any
		for j, q := range p.queries {
			targets = append(targets, map[string]any{
				"datasource":   ds,
				"expr":         q.expr,
				"legendFormat": q.legend,
				"refId":        string(rune('A' + j)),
			})
		}
		h := panelH
		if p.kind == "stat" {
			h = 4
		}
		panels = append(panels, map[string]any{
			"id":         i + 1,
			"type":       p.kind,
			"title":      p.title,
			"datasource": ds,
			"gridPos": map[string]any{
				"x": (i % cols) * panelW,
				"y": (i / cols) * panelH,
				"w": panelW,
				"h": h,
			},
			"fieldConfig": map[string]any{
				"defaults":  map[string]any{"unit": p.unit},
				"overrides": []any{},
			},
			"targets": targets,
		})
	}

	doc := map[string]any{
		"__inputs": []map[string]any{{
			"name":     "DS_PROMETHEUS",
			"label":    "Prometheus",
			"type":     "datasource",
			"pluginId": "prometheus",
		}},
		"title":         "atgpud — live telemetry",
		"uid":           "atgpud-telemetry",
		"tags":          []string{"atgpu", "simulation"},
		"timezone":      "browser",
		"schemaVersion": 39,
		"refresh":       "10s",
		"time":          map[string]any{"from": "now-30m", "to": "now"},
		"panels":        panels,
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
