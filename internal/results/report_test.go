package results

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atgpu/internal/simgpu"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden report fixtures under testdata/")

// diffEntries builds two small run snapshots: run B is a uniform 10%
// slower than run A on vecadd, drops the matmul point and adds a scan
// point, exercising every diff row shape.
func diffEntries() (a, b []Entry) {
	mk := func(run, workload string, n int, total float64) Entry {
		r := testRecord("sweep", workload, n)
		r.Run = run
		r.Seed = 7
		r.Observed.TotalS = total
		return Entry{Record: r}
	}
	a = []Entry{
		mk("runA", "vecadd", 1000, 0.010),
		mk("runA", "vecadd", 2000, 0.020),
		mk("runA", "matmul", 64, 0.500),
	}
	b = []Entry{
		mk("runB", "vecadd", 1000, 0.011),
		mk("runB", "vecadd", 2000, 0.022),
		mk("runB", "scan", 4096, 0.125),
	}
	return a, b
}

// TestGoldenMarkdownDiff pins the `results diff` markdown rendering to
// a committed fixture. Regenerate deliberately with:
//
//	go test ./internal/results/ -run TestGoldenMarkdownDiff -update-golden
func TestGoldenMarkdownDiff(t *testing.T) {
	a, b := diffEntries()
	rep := Compare(a, b, "runA", "runB", CompareOptions{})
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "diff_golden.md")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("markdown diff diverged from %s; rerun with -update-golden and review:\n%s", golden, buf.String())
	}
}

func TestCompareRows(t *testing.T) {
	a, b := diffEntries()
	rep := Compare(a, b, "runA", "runB", CompareOptions{})
	if len(rep.Diffs) != 4 {
		t.Fatalf("%d diff rows, want 4 (2 shared + 1 only-A + 1 only-B)", len(rep.Diffs))
	}
	var shared, onlyA, onlyB int
	for _, d := range rep.Diffs {
		switch {
		case d.OnlyA:
			onlyA++
			if !strings.Contains(d.Label, "matmul") {
				t.Fatalf("only-A row = %+v, want the matmul point", d)
			}
		case d.OnlyB:
			onlyB++
		default:
			shared++
			if d.Delta < 0.099 || d.Delta > 0.101 {
				t.Fatalf("shared row delta = %v, want ~+10%%", d.Delta)
			}
		}
	}
	if shared != 2 || onlyA != 1 || onlyB != 1 {
		t.Fatalf("row mix = %d shared, %d only-A, %d only-B", shared, onlyA, onlyB)
	}
}

// TestCompareIgnoreMachine: the machine-comparison mode aligns the same
// measurement taken on two device presets.
func TestCompareIgnoreMachine(t *testing.T) {
	a := testRecord("sweep", "vecadd", 1000)
	b := testRecord("sweep", "vecadd", 1000)
	b.Machine = &Machine{Device: simgpu.GTX1080(), Scheme: "pageable", SyncCostUs: 50}
	b.Observed.TotalS = a.Observed.TotalS / 2

	strict := Compare([]Entry{{Record: a}}, []Entry{{Record: b}}, "tiny", "gtx1080", CompareOptions{})
	for _, d := range strict.Diffs {
		if !d.OnlyA && !d.OnlyB {
			t.Fatalf("strict compare aligned different machines: %+v", d)
		}
	}
	loose := Compare([]Entry{{Record: a}}, []Entry{{Record: b}}, "tiny", "gtx1080",
		CompareOptions{IgnoreMachine: true})
	if len(loose.Diffs) != 1 || loose.Diffs[0].OnlyA || loose.Diffs[0].OnlyB {
		t.Fatalf("machine compare rows = %+v, want one shared row", loose.Diffs)
	}
	if d := loose.Diffs[0].Delta; d > -0.49 || d < -0.51 {
		t.Fatalf("machine compare delta = %v, want ~-50%%", d)
	}
}

func TestReportFormats(t *testing.T) {
	a, b := diffEntries()
	rep := Compare(a, b, "A", "B", CompareOptions{})
	for _, format := range []string{"text", "markdown", "md", "json", ""} {
		var buf bytes.Buffer
		if err := rep.Write(&buf, format); err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %q produced nothing", format)
		}
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
