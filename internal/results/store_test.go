package results

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atgpu/internal/sched"
	"atgpu/internal/simgpu"
)

func testRecord(kind, workload string, n int) Record {
	return Record{
		Kind:     kind,
		Workload: workload,
		N:        n,
		Machine:  &Machine{Device: simgpu.Tiny(), Scheme: "pageable", SyncCostUs: 50},
		Observed: &Observed{TotalS: float64(n) / 1000, KernelS: float64(n) / 4000},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		testRecord("sweep", "vecadd", 100),
		testRecord("sweep", "reduce", 200),
		testRecord("run", "vecadd", 100),
	}
	for i, r := range recs {
		env := &Env{SavedUnix: int64(1000 + i), Host: "h", Note: fmt.Sprintf("note%d", i)}
		if err := s.Append(r, env); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(recs) {
		t.Fatalf("reopened store has %d entries, want %d", re.Len(), len(recs))
	}
	for i, e := range re.Entries() {
		if e.Record.Key() != recs[i].Key() {
			t.Fatalf("entry %d key = %q, want %q", i, e.Record.Key(), recs[i].Key())
		}
		if e.Env == nil || e.Env.Note != fmt.Sprintf("note%d", i) {
			t.Fatalf("entry %d env = %+v", i, e.Env)
		}
	}

	// Queries.
	if got := re.Query(Filter{Workload: "vecadd"}); len(got) != 2 {
		t.Fatalf("by-workload query returned %d entries, want 2", len(got))
	}
	if got := re.Query(Filter{Kind: "run"}); len(got) != 1 || got[0].Record.Workload != "vecadd" {
		t.Fatalf("by-kind query = %+v", got)
	}
	if got := re.Query(Filter{Machine: "sim-tiny"}); len(got) != 3 {
		t.Fatalf("by-machine query returned %d entries, want 3", len(got))
	}
	if got := re.Query(Filter{N: 200}); len(got) != 1 {
		t.Fatalf("by-n query returned %d entries, want 1", len(got))
	}
	if _, ok := re.Latest(Filter{Workload: "scan"}); ok {
		t.Fatal("Latest matched a workload that was never stored")
	}
	latest, ok := re.Latest(Filter{Workload: "vecadd"})
	if !ok || latest.Record.Kind != "run" {
		t.Fatalf("Latest(vecadd) = %+v, want the run record (appended last)", latest.Record)
	}
}

// TestStoreBest: Best returns the entry with the lowest headline
// metric; ties keep the earliest append.
func TestStoreBest(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "r.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, total := range []float64{3, 1, 2, 1} {
		r := testRecord("sweep", "vecadd", 100)
		r.Run = fmt.Sprintf("run%d", i)
		r.Observed.TotalS = total
		if err := s.Append(r, nil); err != nil {
			t.Fatal(err)
		}
	}
	best, ok := s.Best(Filter{Workload: "vecadd"})
	if !ok || best.Record.Run != "run1" {
		t.Fatalf("Best = %+v, want run1 (first of the tied minima)", best.Record)
	}
}

// TestStoreConcurrentWriters: many goroutines appending through the
// repo's own scheduler leave the store with every line intact (-race
// covers the locking).
func TestStoreConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	errs := sched.Run(context.Background(), n, 8, func(i int) error {
		r := testRecord("sweep", "vecadd", 100+i)
		r.Run = fmt.Sprintf("writer%d", i)
		return s.Append(r, &Env{Note: fmt.Sprintf("w%d", i)})
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != n {
		t.Fatalf("store has %d entries, want %d", re.Len(), n)
	}
	seen := map[int]bool{}
	for _, e := range re.Entries() {
		seen[e.Record.N] = true
	}
	if len(seen) != n {
		t.Fatalf("only %d distinct records survived, want %d", len(seen), n)
	}
}

// TestStoreTruncatedTailRecovery: a partial trailing line (the classic
// crash-mid-append shape) is dropped on Open and the file truncated
// back to the last good entry; appends then continue cleanly.
func TestStoreTruncatedTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord("sweep", "vecadd", 100+i), nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Chop the file mid-way through the last line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatalf("Open after truncation: %v", err)
	}
	if re.Len() != 2 {
		t.Fatalf("recovered %d entries, want 2", re.Len())
	}
	if err := re.Append(testRecord("sweep", "vecadd", 999), nil); err != nil {
		t.Fatal(err)
	}
	re.Close()

	fin, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fin.Close()
	if fin.Len() != 3 {
		t.Fatalf("after recovery + append: %d entries, want 3", fin.Len())
	}
	if got := fin.Entries()[2].Record.N; got != 999 {
		t.Fatalf("recovered tail record n = %d, want 999", got)
	}
}

// TestStoreMidFileCorruptionRejected: damage anywhere but the trailing
// line is not silently dropped — that would erase history — it errors.
func TestStoreMidFileCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord("sweep", "vecadd", 100+i), nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = "{broken json\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open on mid-file corruption = %v, want corrupt-entry error", err)
	}
}
