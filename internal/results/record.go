// Package results is the canonical result model every producer in the
// repo emits into: experiments sweep/pipeline points, service job
// results, bench harness lines and observability snapshots all convert
// to the one Record shape, and an append-only JSONL store persists them
// as a queryable trajectory across runs.
//
// Determinism contract: a Record body contains no wall-clock reads —
// identical runs marshal to byte-identical JSON lines. Run metadata
// that legitimately varies between identical runs (save time, host
// name, wall duration) lives in the separate Env envelope, which the
// store excludes from every identity and comparison key. This package
// is under the repo's notime vet pass; callers in cmd/ stamp the Env.
package results

import (
	"fmt"

	"atgpu/internal/obs"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// Machine is the full simulated-machine identity of a record: the
// device preset (every config field, so a preset revision changes the
// identity), the transfer scheme and the synchronisation charge σ.
type Machine struct {
	Device     simgpu.Config `json:"device"`
	Scheme     string        `json:"scheme,omitempty"`
	SyncCostUs int64         `json:"sync_cost_us,omitempty"`
}

// FaultPlan is the deterministic fault-injection plan a record ran
// under (nil on the record means fault-free).
type FaultPlan struct {
	Rate       float64 `json:"rate"`
	Seed       int64   `json:"seed,omitempty"`
	MaxRetries int     `json:"max_retries,omitempty"`
	WatchdogUs int64   `json:"watchdog_us,omitempty"`
}

// Predicted carries the model-side costs: Expression (1)/(2) for plain
// points, the overlapped-cost split for pipelined ones. All seconds.
type Predicted struct {
	// ATGPUCost is the GPU-cost (Expression 2); SWGPUCost the baseline
	// model's cost; Delta the predicted transfer share Δ_T.
	ATGPUCost float64 `json:"atgpu_cost_s,omitempty"`
	SWGPUCost float64 `json:"swgpu_cost_s,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	// SequentialS, PipelinedS and SavingS are the overlapped-cost
	// model's totals for pipeline records.
	SequentialS float64 `json:"sequential_s,omitempty"`
	PipelinedS  float64 `json:"pipelined_s,omitempty"`
	SavingS     float64 `json:"saving_s,omitempty"`
}

// Observed carries the simulator-side timings. All seconds; Delta is
// the observed transfer share Δ_E.
type Observed struct {
	TotalS    float64 `json:"total_s,omitempty"`
	KernelS   float64 `json:"kernel_s,omitempty"`
	TransferS float64 `json:"transfer_s,omitempty"`
	SyncS     float64 `json:"sync_s,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	// SequentialS, PipelinedS and SavingS are the two observed schedule
	// totals of a pipeline record and their difference.
	SequentialS float64 `json:"sequential_s,omitempty"`
	PipelinedS  float64 `json:"pipelined_s,omitempty"`
	SavingS     float64 `json:"saving_s,omitempty"`
}

// Bench carries one benchmark measurement (kind "bench"); the record's
// Workload holds the benchmark name.
type Bench struct {
	Procs int     `json:"procs,omitempty"`
	Runs  int64   `json:"runs"`
	NsOp  float64 `json:"ns_per_op"`
	// BytesOp and AllocsOp are pointers so a reported zero (the
	// allocation-free disabled observability path) survives in the JSON
	// while benches without -benchmem omit the fields entirely.
	BytesOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsOp *int64   `json:"allocs_per_op,omitempty"`
	// Allowance, when > 0, overrides the gate's regression threshold
	// for this benchmark — noisy service latencies carry a looser limit
	// than the tightly repeatable simulator benches in one trajectory.
	Allowance float64 `json:"allowance,omitempty"`
}

// Record is the canonical result row. Field order is the JSON key
// order (encoding/json marshals structs in declaration order), so two
// identical runs produce byte-identical lines.
type Record struct {
	// Kind names the producer: "sweep", "pipeline", "run", "analyze",
	// "bench".
	Kind string `json:"kind"`
	// Run is the caller-chosen run label, used to select a run's
	// records for diffing. Excluded from the identity key.
	Run string `json:"run,omitempty"`
	// Workload is the algorithm, or the benchmark name for kind
	// "bench".
	Workload string `json:"workload,omitempty"`
	// N is the input size; Seed the input-generator seed; Chunks the
	// pipeline chunk count; Workers the sweep's configured worker count
	// (identity of the run, not of the result — outputs are
	// byte-identical at any worker count).
	N       int   `json:"n,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Chunks  int   `json:"chunks,omitempty"`
	Workers int   `json:"workers,omitempty"`
	// Git is the producing tree's `git describe --always --dirty`
	// stamp (best effort; empty when unavailable).
	Git string `json:"git,omitempty"`

	// Machine is the simulated machine (nil for bench records).
	Machine *Machine `json:"machine,omitempty"`
	// Faults is the fault plan (nil = fault-free).
	Faults *FaultPlan `json:"faults,omitempty"`

	// Predicted and Observed are the two sides of the paper's study.
	Predicted *Predicted `json:"predicted,omitempty"`
	Observed  *Observed  `json:"observed,omitempty"`

	// Transfers, Resilience and Kernel carry the run's full engine,
	// host-recovery and device counters (nil when all zero).
	Transfers  *transfer.Stats         `json:"transfers,omitempty"`
	Resilience *simgpu.ResilienceStats `json:"resilience,omitempty"`
	Kernel     *simgpu.KernelStats     `json:"kernel,omitempty"`

	// Bench is the measurement of a "bench" record.
	Bench *Bench `json:"bench,omitempty"`

	// Obs is the run's metrics snapshot (nil unless collection was on).
	Obs *obs.Snapshot `json:"obs,omitempty"`

	// Failed marks a point that exhausted fault recovery; Err explains.
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"err,omitempty"`
}

// Key is the record's identity: everything that determines which other
// records it is comparable against. Run labels, git stamps, worker
// counts and the Env envelope are deliberately excluded — the same
// logical measurement from two runs (or two commits) must share a key
// so diffs align.
func (r Record) Key() string { return r.key(false) }

// CompareKey is Key with the machine identity blanked, aligning the
// same measurement across two device presets.
func (r Record) CompareKey() string { return r.key(true) }

func (r Record) key(ignoreMachine bool) string {
	dev, scheme, sync := "", "", int64(0)
	if r.Machine != nil && !ignoreMachine {
		dev, scheme, sync = r.Machine.Device.Name, r.Machine.Scheme, r.Machine.SyncCostUs
	}
	return fmt.Sprintf("%s|%s|%s|%s|%d|%d|%d|%d",
		r.Kind, r.Workload, dev, scheme, sync, r.N, r.Seed, r.Chunks)
}

// Metric returns the record's headline scalar and its unit: ns/op for
// benches, the pipelined total for pipeline records, the observed
// total for observed points, and the predicted GPU-cost for
// model-only records. ok is false when the record carries none.
func (r Record) Metric() (v float64, unit string, ok bool) {
	switch {
	case r.Bench != nil:
		return r.Bench.NsOp, "ns/op", true
	case r.Observed != nil && r.Observed.PipelinedS > 0:
		return r.Observed.PipelinedS, "s", true
	case r.Observed != nil && r.Observed.TotalS > 0:
		return r.Observed.TotalS, "s", true
	case r.Predicted != nil && r.Predicted.PipelinedS > 0:
		return r.Predicted.PipelinedS, "s", true
	case r.Predicted != nil && r.Predicted.ATGPUCost > 0:
		return r.Predicted.ATGPUCost, "s", true
	}
	return 0, "", false
}

// Env is the run-metadata envelope: the fields that legitimately vary
// between two identical runs. It is stored beside the record, never
// inside it, and every identity/diff key ignores it. Callers in cmd/
// stamp it (this package is under the notime vet pass and cannot).
type Env struct {
	// SavedUnix is the append wall time in Unix seconds.
	SavedUnix int64 `json:"saved_unix,omitempty"`
	// Host is the producing machine's hostname.
	Host string `json:"host,omitempty"`
	// WallMs is the run's wall-clock duration in milliseconds.
	WallMs float64 `json:"wall_ms,omitempty"`
	// Note is free-form (the service stores the job ID here).
	Note string `json:"note,omitempty"`
}

// Entry is one stored line: the deterministic record body plus its
// optional envelope.
type Entry struct {
	Record Record `json:"record"`
	Env    *Env   `json:"env,omitempty"`
}

// Aggregate is the Merge-based fold of a record slice's engine and
// host counters — the single aggregation path Summarise, the sweep
// assembly and the figure writers all share.
type Aggregate struct {
	Transfers  transfer.Stats
	Resilience simgpu.ResilienceStats
	// Failed counts records that exhausted fault recovery.
	Failed int
}

// Fold merges every record's transfer and resilience counters in
// order (failed records included — their recovery work counts).
func Fold(recs []Record) Aggregate {
	var a Aggregate
	for i := range recs {
		if recs[i].Transfers != nil {
			a.Transfers.Merge(*recs[i].Transfers)
		}
		if recs[i].Resilience != nil {
			a.Resilience.Merge(*recs[i].Resilience)
		}
		if recs[i].Failed {
			a.Failed++
		}
	}
	return a
}

// Successful returns the non-failed records, preserving order.
func Successful(recs []Record) []Record {
	ok := make([]Record, 0, len(recs))
	for _, r := range recs {
		if !r.Failed {
			ok = append(ok, r)
		}
	}
	return ok
}

// Sizes returns the input sizes of the successful records as the
// figure x vector.
func Sizes(recs []Record) []float64 {
	pts := Successful(recs)
	xs := make([]float64, len(pts))
	for i, r := range pts {
		xs[i] = float64(r.N)
	}
	return xs
}

// Column extracts one metric across the successful records, aligned
// with Sizes.
func Column(recs []Record, f func(Record) float64) []float64 {
	pts := Successful(recs)
	ys := make([]float64, len(pts))
	for i, r := range pts {
		ys[i] = f(r)
	}
	return ys
}
