package results

import (
	"bytes"
	"encoding/json"
	"testing"

	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// TestRecordBodyByteIdentical is the determinism contract: two records
// of the same logical run marshal to byte-identical JSON, and the
// envelope — the only thing that may vary — stays outside the body.
func TestRecordBodyByteIdentical(t *testing.T) {
	build := func() Record {
		r := testRecord("sweep", "vecadd", 4096)
		r.Seed = 7
		r.Transfers = &transfer.Stats{InTransactions: 3, InWords: 4096}
		return r
	}
	a, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs marshalled differently:\n%s\nvs\n%s", a, b)
	}

	// Differing envelopes must not leak into the body bytes.
	ea, _ := json.Marshal(Entry{Record: build(), Env: &Env{SavedUnix: 111, Host: "a", WallMs: 5}})
	eb, _ := json.Marshal(Entry{Record: build(), Env: &Env{SavedUnix: 222, Host: "b", WallMs: 9}})
	var da, db Entry
	if err := json.Unmarshal(ea, &da); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(eb, &db); err != nil {
		t.Fatal(err)
	}
	ba, _ := json.Marshal(da.Record)
	bb, _ := json.Marshal(db.Record)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("env leaked into the record body:\n%s\nvs\n%s", ba, bb)
	}
}

func TestRecordKeys(t *testing.T) {
	r := testRecord("sweep", "vecadd", 4096)
	r.Seed = 7

	// Run label, git stamp and worker count never split the identity.
	other := testRecord("sweep", "vecadd", 4096)
	other.Seed = 7
	other.Run, other.Git, other.Workers = "runB", "abc123-dirty", 8
	if r.Key() != other.Key() {
		t.Fatalf("run metadata split the key: %q vs %q", r.Key(), other.Key())
	}

	// The machine does split Key but not CompareKey.
	big := testRecord("sweep", "vecadd", 4096)
	big.Seed = 7
	big.Machine = &Machine{Device: simgpu.GTX1080(), Scheme: "pageable", SyncCostUs: 50}
	if r.Key() == big.Key() {
		t.Fatal("different devices share a Key")
	}
	if r.CompareKey() != big.CompareKey() {
		t.Fatalf("CompareKey split on machine: %q vs %q", r.CompareKey(), big.CompareKey())
	}

	// Size, seed, kind and chunks all split both.
	for _, mut := range []func(*Record){
		func(x *Record) { x.N = 8192 },
		func(x *Record) { x.Seed = 8 },
		func(x *Record) { x.Kind = "pipeline" },
		func(x *Record) { x.Chunks = 4 },
	} {
		x := testRecord("sweep", "vecadd", 4096)
		x.Seed = 7
		mut(&x)
		if x.Key() == r.Key() || x.CompareKey() != x.key(true) {
			t.Fatalf("mutation did not split the key: %q", x.Key())
		}
	}
}

func TestRecordMetric(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
		v    float64
		unit string
		ok   bool
	}{
		{"bench", Record{Bench: &Bench{NsOp: 1500}}, 1500, "ns/op", true},
		{"observed total", Record{Observed: &Observed{TotalS: 2.5}}, 2.5, "s", true},
		{"pipeline observed", Record{Observed: &Observed{PipelinedS: 1.25}}, 1.25, "s", true},
		{"predicted only", Record{Predicted: &Predicted{ATGPUCost: 0.5}}, 0.5, "s", true},
		{"predicted pipeline", Record{Predicted: &Predicted{PipelinedS: 0.75}}, 0.75, "s", true},
		{"empty", Record{}, 0, "", false},
	}
	for _, c := range cases {
		v, unit, ok := c.rec.Metric()
		if v != c.v || unit != c.unit || ok != c.ok {
			t.Fatalf("%s: Metric() = %v %q %v, want %v %q %v", c.name, v, unit, ok, c.v, c.unit, c.ok)
		}
	}
}

func TestFoldAndColumns(t *testing.T) {
	recs := []Record{
		{Kind: "sweep", N: 10, Observed: &Observed{TotalS: 1},
			Transfers:  &transfer.Stats{Retries: 2, InWords: 100},
			Resilience: &simgpu.ResilienceStats{WatchdogFires: 1}},
		{Kind: "sweep", N: 20, Failed: true, Err: "boom",
			Transfers: &transfer.Stats{Retries: 3}},
		{Kind: "sweep", N: 30, Observed: &Observed{TotalS: 3}},
	}
	agg := Fold(recs)
	if agg.Failed != 1 || agg.Transfers.Retries != 5 || agg.Transfers.InWords != 100 ||
		agg.Resilience.WatchdogFires != 1 {
		t.Fatalf("Fold = %+v", agg)
	}

	if got := Sizes(recs); len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("Sizes = %v, want successful sizes [10 30]", got)
	}
	col := Column(recs, func(r Record) float64 {
		if r.Observed == nil {
			return 0
		}
		return r.Observed.TotalS
	})
	if len(col) != 2 || col[0] != 1 || col[1] != 3 {
		t.Fatalf("Column = %v, want [1 3]", col)
	}
	if got := Successful(recs); len(got) != 2 {
		t.Fatalf("Successful kept %d records, want 2", len(got))
	}
}
