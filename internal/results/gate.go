package results

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// BenchResult is one parsed `go test -bench` line, in the exact JSON
// shape the bench2json CI artifacts have always used, so committed
// BENCH_*.json files parse unchanged.
type BenchResult struct {
	Name  string  `json:"name"`
	Procs int     `json:"procs,omitempty"`
	Runs  int64   `json:"runs"`
	NsOp  float64 `json:"ns_per_op"`
	// BytesOp and AllocsOp are pointers so a reported zero (the
	// allocation-free disabled observability path) survives in the
	// JSON while benches without -benchmem omit the fields entirely.
	BytesOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsOp *int64   `json:"allocs_per_op,omitempty"`
}

// Record converts the measurement into the canonical record shape:
// kind "bench", the benchmark name as the workload, allowance as the
// per-benchmark gate threshold override (0 = the gate default).
func (b BenchResult) Record(run string, allowance float64) Record {
	return Record{
		Kind:     "bench",
		Run:      run,
		Workload: b.Name,
		Bench: &Bench{
			Procs:     b.Procs,
			Runs:      b.Runs,
			NsOp:      b.NsOp,
			BytesOp:   b.BytesOp,
			AllocsOp:  b.AllocsOp,
			Allowance: allowance,
		},
	}
}

// ParseBenchLine parses one benchmark result line, e.g.
// "BenchmarkSweepWorkers/workers=4-8   5   238217412 ns/op", splitting
// the trailing -P GOMAXPROCS suffix into Procs and picking up B/op and
// allocs/op when present.
func ParseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	// Values always precede their unit: "<float> ns/op", and with
	// -benchmem also "<float> B/op" and "<int> allocs/op".
	idx := -1
	for i, f := range fields {
		if f == "ns/op" {
			idx = i
			break
		}
	}
	if idx < 2 {
		return BenchResult{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	ns, err := strconv.ParseFloat(fields[idx-1], 64)
	if err != nil {
		return BenchResult{}, false
	}
	r := BenchResult{Name: fields[0], Runs: runs, NsOp: ns}
	for i, f := range fields {
		switch f {
		case "B/op":
			if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
				r.BytesOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(fields[i-1], 10, 64); err == nil {
				r.AllocsOp = &v
			}
		}
	}
	// Split the trailing -P GOMAXPROCS suffix go test appends.
	if cut := strings.LastIndex(r.Name, "-"); cut > 0 {
		if p, err := strconv.Atoi(r.Name[cut+1:]); err == nil {
			r.Name, r.Procs = r.Name[:cut], p
		}
	}
	return r, true
}

// ParseBenchText parses `go test -bench` text output, one BenchResult
// per result line.
func ParseBenchText(r io.Reader) ([]BenchResult, error) {
	var results []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := ParseBenchLine(sc.Text()); ok {
			results = append(results, b)
		}
	}
	return results, sc.Err()
}

// loadReport is the slice of cmd/atgpu-load's JSON report the gate
// consumes: the per-concurrency latency levels, plus the server-side
// view the harness folds in from the daemon's /metrics deltas (absent
// in reports taken against a daemon without a telemetry plane).
type loadReport struct {
	Mode   string `json:"mode"`
	Levels []struct {
		C      int     `json:"c"`
		P50ms  float64 `json:"p50_ms"`
		Server *struct {
			QueueWaitMsMean float64 `json:"queue_wait_ms_mean"`
			ExecMsMean      float64 `json:"exec_ms_mean"`
		} `json:"server"`
	} `json:"levels"`
}

// ParseBenchFile loads benchmark results from a BENCH_*.json artifact.
// Two shapes are accepted: the bench2json array, and the atgpu-load
// report object, whose per-level p50 latencies become pseudo-benchmarks
// named "ServiceP50/c=<concurrency>" with ns/op = p50 (service
// latencies are real wall time, so gate them with a generous
// allowance). Levels carrying the server-side /metrics view additionally
// yield "ServiceQueueWaitMs/c=<n>" and "ServiceExecMs/c=<n>" from the
// daemon's own histograms, so a queueing or execute-phase regression is
// caught even when client-side round-trip numbers hide it.
func ParseBenchFile(path string) ([]BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(data)
	switch {
	case len(trimmed) == 0:
		return nil, nil
	case trimmed[0] == '[':
		var results []BenchResult
		if err := json.Unmarshal(trimmed, &results); err != nil {
			return nil, fmt.Errorf("results: %s: %w", path, err)
		}
		return results, nil
	case trimmed[0] == '{':
		var rep loadReport
		if err := json.Unmarshal(trimmed, &rep); err != nil {
			return nil, fmt.Errorf("results: %s: %w", path, err)
		}
		if len(rep.Levels) == 0 {
			return nil, fmt.Errorf("results: %s: load report has no levels", path)
		}
		var results []BenchResult
		for _, lv := range rep.Levels {
			results = append(results, BenchResult{
				Name: fmt.Sprintf("ServiceP50/c=%d", lv.C),
				Runs: 1,
				NsOp: lv.P50ms * 1e6,
			})
			if lv.Server == nil {
				continue
			}
			if lv.Server.QueueWaitMsMean > 0 {
				results = append(results, BenchResult{
					Name: fmt.Sprintf("ServiceQueueWaitMs/c=%d", lv.C),
					Runs: 1,
					NsOp: lv.Server.QueueWaitMsMean * 1e6,
				})
			}
			if lv.Server.ExecMsMean > 0 {
				results = append(results, BenchResult{
					Name: fmt.Sprintf("ServiceExecMs/c=%d", lv.C),
					Runs: 1,
					NsOp: lv.Server.ExecMsMean * 1e6,
				})
			}
		}
		return results, nil
	}
	return nil, fmt.Errorf("results: %s: neither a bench2json array nor a load report", path)
}

// Regression is one benchmark whose fresh measurement exceeded its
// allowed slowdown over the stored trajectory.
type Regression struct {
	Name    string  `json:"name"`
	FreshNs float64 `json:"fresh_ns_per_op"`
	BaseNs  float64 `json:"base_ns_per_op"`
	// Ratio is the fractional slowdown; Limit the threshold it broke.
	Ratio float64 `json:"ratio"`
	Limit float64 `json:"limit"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op vs trajectory %.0f ns/op (+%.1f%%, limit +%.0f%%)",
		r.Name, r.FreshNs, r.BaseNs, 100*r.Ratio, 100*r.Limit)
}

// Gate compares fresh benchmark results against the store's most
// recent record per benchmark name and returns the regressions beyond
// maxRegress (or the stored record's own Allowance when set).
// Benchmarks with no stored history pass — new benches land before
// their trajectory does.
func Gate(s *Store, fresh []BenchResult, maxRegress float64) []Regression {
	var regressions []Regression
	for _, b := range fresh {
		base, ok := s.Latest(Filter{Kind: "bench", Workload: b.Name})
		if !ok || base.Record.Bench == nil || base.Record.Bench.NsOp <= 0 {
			continue
		}
		limit := maxRegress
		if base.Record.Bench.Allowance > 0 {
			limit = base.Record.Bench.Allowance
		}
		if ratio := b.NsOp/base.Record.Bench.NsOp - 1; ratio > limit {
			regressions = append(regressions, Regression{
				Name:    b.Name,
				FreshNs: b.NsOp,
				BaseNs:  base.Record.Bench.NsOp,
				Ratio:   ratio,
				Limit:   limit,
			})
		}
	}
	return regressions
}
