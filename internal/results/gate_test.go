package results

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := ParseBenchLine("BenchmarkSweepWorkers/workers=4-8   \t5\t 238217412 ns/op")
	if !ok || b.Name != "BenchmarkSweepWorkers/workers=4" || b.Procs != 8 ||
		b.Runs != 5 || b.NsOp != 238217412 {
		t.Fatalf("parsed = %+v ok=%v", b, ok)
	}

	mem, ok := ParseBenchLine("BenchmarkObsOff-2  1000000  1043 ns/op  0 B/op  0 allocs/op")
	if !ok || mem.BytesOp == nil || *mem.BytesOp != 0 || mem.AllocsOp == nil || *mem.AllocsOp != 0 {
		t.Fatalf("benchmem zeros lost: %+v", mem)
	}

	for _, bad := range []string{"", "PASS", "ok  \tatgpu\t1.2s", "Benchmark nope"} {
		if _, ok := ParseBenchLine(bad); ok {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseBenchText(t *testing.T) {
	out := `goos: linux
BenchmarkA-4   10   1000 ns/op
BenchmarkB-4   20   2000 ns/op
PASS
`
	results, err := ParseBenchText(strings.NewReader(out))
	if err != nil || len(results) != 2 || results[0].Name != "BenchmarkA" || results[1].NsOp != 2000 {
		t.Fatalf("parsed = %+v (err %v)", results, err)
	}
}

func TestParseBenchFileShapes(t *testing.T) {
	dir := t.TempDir()

	arr := filepath.Join(dir, "bench.json")
	os.WriteFile(arr, []byte(`[{"name":"BenchmarkA","procs":4,"runs":10,"ns_per_op":1000}]`), 0o644)
	got, err := ParseBenchFile(arr)
	if err != nil || len(got) != 1 || got[0].Name != "BenchmarkA" {
		t.Fatalf("array shape = %+v (err %v)", got, err)
	}

	load := filepath.Join(dir, "load.json")
	os.WriteFile(load, []byte(`{"mode":"sustained","levels":[{"c":1,"p50_ms":12.5},{"c":8,"p50_ms":30}]}`), 0o644)
	got, err = ParseBenchFile(load)
	if err != nil || len(got) != 2 || got[0].Name != "ServiceP50/c=1" || got[0].NsOp != 12.5e6 {
		t.Fatalf("load shape = %+v (err %v)", got, err)
	}

	junk := filepath.Join(dir, "junk.json")
	os.WriteFile(junk, []byte(`"what"`), 0o644)
	if _, err := ParseBenchFile(junk); err == nil {
		t.Fatal("junk accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, nil, 0o644)
	if got, err := ParseBenchFile(empty); err != nil || got != nil {
		t.Fatalf("empty file = %+v (err %v)", got, err)
	}
}

func TestGate(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "trajectory.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := []BenchResult{
		{Name: "BenchmarkTight", Runs: 10, NsOp: 1000},
		{Name: "BenchmarkLoose", Runs: 10, NsOp: 1000},
	}
	if err := s.Append(base[0].Record("seed", 0), nil); err != nil {
		t.Fatal(err)
	}
	// The loose bench carries its own 100% allowance.
	if err := s.Append(base[1].Record("seed", 1.0), nil); err != nil {
		t.Fatal(err)
	}

	// Within limits: nothing regresses.
	fresh := []BenchResult{
		{Name: "BenchmarkTight", Runs: 10, NsOp: 1100},
		{Name: "BenchmarkLoose", Runs: 10, NsOp: 1900},
		{Name: "BenchmarkNew", Runs: 10, NsOp: 5000}, // no history: passes
	}
	if regs := Gate(s, fresh, 0.15); len(regs) != 0 {
		t.Fatalf("clean gate flagged %+v", regs)
	}

	// Past the default limit on the tight bench.
	fresh[0].NsOp = 1300
	regs := Gate(s, fresh, 0.15)
	if len(regs) != 1 || regs[0].Name != "BenchmarkTight" || regs[0].Limit != 0.15 {
		t.Fatalf("gate = %+v, want one BenchmarkTight regression", regs)
	}
	if !strings.Contains(regs[0].String(), "BenchmarkTight") {
		t.Fatalf("regression string = %q", regs[0].String())
	}

	// The allowance override holds until it too is exceeded.
	fresh[1].NsOp = 2100
	regs = Gate(s, fresh, 0.15)
	if len(regs) != 2 || regs[1].Name != "BenchmarkLoose" || regs[1].Limit != 1.0 {
		t.Fatalf("gate with blown allowance = %+v", regs)
	}

	// Newer trajectory entries supersede older ones.
	faster := base[0]
	faster.NsOp = 500
	if err := s.Append(faster.Record("seed2", 0), nil); err != nil {
		t.Fatal(err)
	}
	fresh[0].NsOp = 560
	fresh[1].NsOp = 1000
	regs = Gate(s, fresh, 0.15)
	if len(regs) != 0 {
		t.Fatalf("gate against updated trajectory = %+v", regs)
	}
	fresh[0].NsOp = 600
	if regs = Gate(s, fresh, 0.15); len(regs) != 1 || regs[0].BaseNs != 500 {
		t.Fatalf("gate should compare against the latest entry: %+v", regs)
	}
}
