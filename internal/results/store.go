package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Store is an append-only JSONL trajectory of Entries: one JSON object
// per line, records in append order. Open reads (and, for a damaged
// trailing line, repairs) the whole file; Append writes through to
// disk immediately, so concurrent writers in one process interleave
// whole lines and a crash loses at most the line being written. A
// Store is safe for concurrent use.
type Store struct {
	path string

	mu      sync.Mutex
	f       *os.File
	entries []Entry
}

// Open opens (creating if missing) the JSONL store at path. A corrupt
// or truncated final line — the footprint of a crashed writer — is
// dropped and the file truncated back to the last good line; damage
// anywhere earlier is a real integrity failure and errors.
func Open(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	entries, good, derr := decodeAll(data)
	if derr != nil {
		return nil, fmt.Errorf("results: %s: %w", path, derr)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if good < int64(len(data)) {
		// Recover: drop the damaged tail so the next append starts a
		// clean line.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Store{path: path, f: f, entries: entries}, nil
}

// decodeAll parses data line by line, returning the entries, the byte
// offset after the last good line, and an error only for non-trailing
// damage.
func decodeAll(data []byte) (entries []Entry, good int64, err error) {
	off := int64(0)
	for len(data) > 0 {
		line := data
		rest := []byte(nil)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, rest = data[:i], data[i+1:]
		}
		consumed := int64(len(data) - len(rest))
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var e Entry
			if uerr := json.Unmarshal(trimmed, &e); uerr != nil {
				if len(bytes.TrimSpace(rest)) > 0 {
					return nil, 0, fmt.Errorf("corrupt entry at offset %d: %w", off, uerr)
				}
				return entries, off, nil
			}
			entries = append(entries, e)
		}
		off += consumed
		data = rest
	}
	return entries, off, nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Append writes one record (with its optional envelope) as a single
// JSON line, flushed before returning.
func (s *Store) Append(rec Record, env *Env) error {
	line, err := json.Marshal(Entry{Record: rec, Env: env})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return err
	}
	s.entries = append(s.entries, Entry{Record: rec, Env: env})
	return nil
}

// Close releases the file handle. The entries stay queryable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Filter selects entries; zero-valued fields match everything.
type Filter struct {
	// Kind, Workload and Run match the record fields exactly; Machine
	// matches the device preset name.
	Kind, Workload, Run, Machine string
	// N matches the input size when > 0.
	N int
}

// Match reports whether the filter selects r.
func (f Filter) Match(r Record) bool {
	if f.Kind != "" && r.Kind != f.Kind {
		return false
	}
	if f.Workload != "" && r.Workload != f.Workload {
		return false
	}
	if f.Run != "" && r.Run != f.Run {
		return false
	}
	if f.Machine != "" && (r.Machine == nil || r.Machine.Device.Name != f.Machine) {
		return false
	}
	if f.N > 0 && r.N != f.N {
		return false
	}
	return true
}

// Entries returns every stored entry in append order.
func (s *Store) Entries() []Entry { return s.Query(Filter{}) }

// Query returns the entries the filter selects, in append order.
func (s *Store) Query(f Filter) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for _, e := range s.entries {
		if f.Match(e.Record) {
			out = append(out, e)
		}
	}
	return out
}

// Latest returns the most recently appended entry the filter selects.
func (s *Store) Latest(f Filter) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.entries) - 1; i >= 0; i-- {
		if f.Match(s.entries[i].Record) {
			return s.entries[i], true
		}
	}
	return Entry{}, false
}

// Best returns the selected entry with the lowest headline metric
// (fastest run); entries without a metric are skipped. Ties keep the
// earliest.
func (s *Store) Best(f Filter) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best Entry
	bestV, found := 0.0, false
	for _, e := range s.entries {
		if !f.Match(e.Record) {
			continue
		}
		v, _, ok := e.Record.Metric()
		if !ok {
			continue
		}
		if !found || v < bestV {
			best, bestV, found = e, v, true
		}
	}
	return best, found
}
