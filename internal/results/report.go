package results

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Diff is one key's A-versus-B comparison. When the key exists on only
// one side, the other side's value is absent and OnlyA/OnlyB marks it.
type Diff struct {
	// Key is the shared identity (Record.Key or CompareKey).
	Key string `json:"key"`
	// Label is the human form: "kind workload [device] n=…".
	Label string `json:"label"`
	// Unit is the metric unit ("s", "ns/op").
	Unit string `json:"unit,omitempty"`
	// A and B are the two sides' headline metrics.
	A float64 `json:"a,omitempty"`
	B float64 `json:"b,omitempty"`
	// Delta is the fractional change (B−A)/A, when both sides exist
	// and A is nonzero.
	Delta float64 `json:"delta,omitempty"`
	// OnlyA and OnlyB mark keys present on one side only.
	OnlyA bool `json:"only_a,omitempty"`
	OnlyB bool `json:"only_b,omitempty"`
}

// Report is a rendered comparison of two entry sets.
type Report struct {
	// LabelA and LabelB name the two sides (run labels, machine names).
	LabelA string `json:"label_a"`
	LabelB string `json:"label_b"`
	// Diffs holds one row per identity key, sorted by key.
	Diffs []Diff `json:"diffs"`
}

// CompareOptions shapes Compare.
type CompareOptions struct {
	// IgnoreMachine aligns records across device presets (CompareKey
	// instead of Key) — the machine-comparison mode.
	IgnoreMachine bool
}

// Compare matches two entry sets by record identity and diffs their
// headline metrics. Within one side, the last entry per key wins (the
// sets are append-ordered). Records without a metric are skipped.
func Compare(a, b []Entry, labelA, labelB string, opts CompareOptions) Report {
	key := func(r Record) string {
		if opts.IgnoreMachine {
			return r.CompareKey()
		}
		return r.Key()
	}
	type side struct {
		v     float64
		unit  string
		label string
	}
	collect := func(entries []Entry) map[string]side {
		m := make(map[string]side, len(entries))
		for _, e := range entries {
			v, unit, ok := e.Record.Metric()
			if !ok {
				continue
			}
			m[key(e.Record)] = side{v: v, unit: unit, label: label(e.Record)}
		}
		return m
	}
	ma, mb := collect(a), collect(b)

	keys := make([]string, 0, len(ma)+len(mb))
	for k := range ma {
		keys = append(keys, k)
	}
	for k := range mb {
		if _, ok := ma[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	rep := Report{LabelA: labelA, LabelB: labelB}
	for _, k := range keys {
		sa, okA := ma[k]
		sb, okB := mb[k]
		d := Diff{Key: k, OnlyA: okA && !okB, OnlyB: okB && !okA}
		switch {
		case okA:
			d.Unit, d.Label, d.A = sa.unit, sa.label, sa.v
		case okB:
			d.Unit, d.Label = sb.unit, sb.label
		}
		if okB {
			d.B = sb.v
		}
		if okA && okB && sa.v != 0 {
			d.Delta = (sb.v - sa.v) / sa.v
		}
		rep.Diffs = append(rep.Diffs, d)
	}
	return rep
}

// label renders a record's human-readable row label.
func label(r Record) string {
	var sb strings.Builder
	sb.WriteString(r.Kind)
	if r.Workload != "" {
		sb.WriteString(" ")
		sb.WriteString(r.Workload)
	}
	if r.Machine != nil && r.Machine.Device.Name != "" {
		fmt.Fprintf(&sb, " [%s]", r.Machine.Device.Name)
	}
	if r.N > 0 {
		fmt.Fprintf(&sb, " n=%d", r.N)
	}
	if r.Chunks > 0 {
		fmt.Fprintf(&sb, " chunks=%d", r.Chunks)
	}
	return sb.String()
}

// num renders a metric value compactly and deterministically.
func num(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// delta renders a fractional change as a signed percentage.
func delta(d Diff) string {
	if d.OnlyA {
		return "only A"
	}
	if d.OnlyB {
		return "only B"
	}
	return fmt.Sprintf("%+.1f%%", 100*d.Delta)
}

// WriteText renders the report as an aligned text table.
func (rep Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "comparison: %s vs %s (%d rows)\n",
		rep.LabelA, rep.LabelB, len(rep.Diffs)); err != nil {
		return err
	}
	width := len("result")
	for _, d := range rep.Diffs {
		if len(d.Label) > width {
			width = len(d.Label)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s %14s %14s %9s %s\n",
		width, "result", rep.LabelA, rep.LabelB, "change", "unit"); err != nil {
		return err
	}
	for _, d := range rep.Diffs {
		a, b := "-", "-"
		if !d.OnlyB {
			a = num(d.A)
		}
		if !d.OnlyA {
			b = num(d.B)
		}
		if _, err := fmt.Fprintf(w, "%-*s %14s %14s %9s %s\n",
			width, d.Label, a, b, delta(d), d.Unit); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the report as a markdown table.
func (rep Report) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Results: %s vs %s\n\n", rep.LabelA, rep.LabelB); err != nil {
		return err
	}
	if len(rep.Diffs) == 0 {
		_, err := fmt.Fprintln(w, "No comparable records.")
		return err
	}
	if _, err := fmt.Fprintf(w, "| result | %s | %s | change | unit |\n|---|---:|---:|---:|---|\n",
		rep.LabelA, rep.LabelB); err != nil {
		return err
	}
	for _, d := range rep.Diffs {
		a, b := "—", "—"
		if !d.OnlyB {
			a = num(d.A)
		}
		if !d.OnlyA {
			b = num(d.B)
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			d.Label, a, b, delta(d), d.Unit); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as an indented JSON document.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Write renders the report in the named format: "text", "markdown" or
// "json".
func (rep Report) Write(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return rep.WriteText(w)
	case "markdown", "md":
		return rep.WriteMarkdown(w)
	case "json":
		return rep.WriteJSON(w)
	}
	return fmt.Errorf("results: unknown report format %q (want text, markdown or json)", format)
}
