package results

import (
	"os/exec"
	"strings"
)

// GitDescribe returns the working tree's `git describe --always
// --dirty` stamp, best effort: outside a repository (or without git)
// it returns "". The stamp is part of a record's run identity — it
// tells two trajectory entries from different commits apart — so only
// real CLI runs stamp it; tests and goldens leave it empty.
func GitDescribe(dir string) string {
	if dir == "" {
		dir = "."
	}
	out, err := exec.Command("git", "-C", dir, "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
