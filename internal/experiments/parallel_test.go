package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// runAll executes all three §IV sweeps plus scan and returns them in a
// fixed order for whole-suite comparisons.
func runAll(t *testing.T, cfg Config) []*WorkloadData {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []*WorkloadData
	for _, run := range []func() (*WorkloadData, error){
		r.RunVecAdd, r.RunReduce, r.RunMatMul, r.RunScan,
	} {
		d, err := run()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// TestParallelSweepByteIdentical is the tentpole acceptance: every sweep
// produces exactly the same data — points, aggregates, order — for any
// worker count, because all per-point randomness derives from
// (Seed, workload, N, index), never from scheduling.
func TestParallelSweepByteIdentical(t *testing.T) {
	base := testConfig()
	base.Workers = 1
	want := runAll(t, base)

	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		cfg := testConfig()
		cfg.Workers = workers
		got := runAll(t, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from sequential:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}

// TestParallelFaultedSweepByteIdentical repeats the check under fault
// injection, where the per-point injector and retry-jitter seeds must also
// be scheduling-independent.
func TestParallelFaultedSweepByteIdentical(t *testing.T) {
	base := faultedConfig()
	base.Workers = 1
	want := runAll(t, base)

	for _, workers := range []int{2, 4} {
		cfg := faultedConfig()
		cfg.Workers = workers
		got := runAll(t, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("faulted workers=%d diverged from sequential", workers)
		}
	}
}

// TestSweepAggregates: the sweep-level Transfers/Resilience fields are the
// point-wise Merge of every point, failed points included.
func TestSweepAggregates(t *testing.T) {
	r, err := NewRunner(faultedConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	var tf transfer.Stats
	for _, p := range d.Points {
		tf.Merge(p.Transfers)
	}
	if d.Transfers != tf {
		t.Fatalf("sweep transfer aggregate %+v != folded points %+v", d.Transfers, tf)
	}
	if d.Transfers.InWords == 0 {
		t.Fatal("aggregate carries no transfer totals")
	}
}

func TestWorkersValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = -1
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Fatalf("negative Workers accepted: %v", err)
	}
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("NewRunner accepted negative Workers")
	}
}

// TestObservePointPropagatesNonFaultError: under injection, only genuine
// recovery-exhaustion sentinels may be absorbed into a Failed point; any
// other error (allocation failure, programming error) must surface.
func TestObservePointPropagatesNonFaultError(t *testing.T) {
	r, err := NewRunner(faultedConfig())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom: not a fault")
	var pt WorkloadPoint
	got := r.observePoint(&pt, func() (*simgpu.Host, error) { return nil, boom })
	if !errors.Is(got, boom) {
		t.Fatalf("non-fault error swallowed: got %v", got)
	}
	if pt.Failed {
		t.Fatal("non-fault error marked the point as a fault casualty")
	}

	// The sentinels, wrapped arbitrarily deep, are absorbed.
	pt = WorkloadPoint{}
	wrapped := fmt.Errorf("vecadd n=8: run: %w", transfer.ErrRetriesExhausted)
	if err := r.observePoint(&pt, func() (*simgpu.Host, error) { return nil, wrapped }); err != nil {
		t.Fatalf("fault sentinel propagated: %v", err)
	}
	if !pt.Failed || pt.Err == "" {
		t.Fatalf("sentinel did not record a failed point: %+v", pt)
	}
}

// TestNewHostFailsFastOnOversizedFootprint: a footprint the preset cannot
// hold errors at host construction, naming the workload and sizes, instead
// of surfacing later as an opaque Malloc failure.
func TestNewHostFailsFastOnOversizedFootprint(t *testing.T) {
	r := newTestRunner(t)
	g := r.Config().Device.GlobalWords
	_, err := r.newHost(g+1, "vecadd", 123, 0)
	if err == nil {
		t.Fatal("oversized footprint accepted")
	}
	for _, want := range []string{"vecadd", "123", "exceeds", fmt.Sprint(g)} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	// A sweep over an impossible size propagates the same error (it is
	// not a fault casualty even under injection). n = G/3 keeps the model
	// analysis feasible (footprint 3n ≤ G) while the alignment slack
	// pushes the concrete host over the limit.
	cfg := faultedConfig()
	cfg.SizesVecAdd = []int{cfg.Device.GlobalWords / 3}
	rr, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.RunVecAdd(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized sweep point did not fail fast: %v", err)
	}
}

// TestSummariseSkipsZeroTotalPoints: points without an observed total must
// not drag SWGPUCaptured down as zeros.
func TestSummariseSkipsZeroTotalPoints(t *testing.T) {
	d := &WorkloadData{Workload: "vecadd", Points: []WorkloadPoint{
		{N: 10, TotalTime: 2, KernelTime: 1, SyncTime: 0},
		{N: 20, TotalTime: 0, KernelTime: 0}, // no observation — skipped
		{N: 30, TotalTime: 4, KernelTime: 2, SyncTime: 0},
	}}
	s, err := Summarise(d)
	if err != nil {
		t.Fatal(err)
	}
	// Both observed points capture exactly half; a zero-filled third entry
	// would have dragged the mean to 1/3.
	if s.SWGPUCaptured != 0.5 {
		t.Fatalf("SWGPUCaptured = %v, want 0.5 (zero-total point skewed the mean)", s.SWGPUCaptured)
	}
}
