package experiments

import (
	"fmt"

	"atgpu/internal/algorithms"
	"atgpu/internal/core"
	"atgpu/internal/obs"
	"atgpu/internal/results"
	"atgpu/internal/sched"
	"atgpu/internal/simgpu"
)

// Pipelined sweeps compare the sequential-chunked schedule against the
// overlapped multi-stream schedule of the same workload on identical
// inputs, alongside the overlapped-cost model's prediction of both
// (core.GPUCostPipelined). Every point runs two fresh hosts — one with a
// single stream, one with pipelineStreams — so the observed gap is purely
// the schedule, never the inputs or the device.

// pipelineStreams is the stream count of the overlapped schedule: classic
// double buffering. The sequential baseline always uses one stream.
const pipelineStreams = 2

// defaultChunks is the chunk count when Config.Chunks is zero. Four chunks
// is the smallest split where the steady-state of the pipeline dominates
// its fill and drain.
const defaultChunks = 4

// chunks resolves the effective chunk count.
func (c Config) chunks() int {
	if c.Chunks > 0 {
		return c.Chunks
	}
	return defaultChunks
}

// PipelinePoint is one input size's sequential-versus-pipelined outcome.
type PipelinePoint struct {
	// N is the input size (vector length or matrix side).
	N int
	// Chunks and Streams describe the overlapped schedule.
	Chunks, Streams int
	// SequentialTime and PipelinedTime are the observed simulated totals
	// in seconds for the one-stream and multi-stream runs.
	SequentialTime, PipelinedTime float64
	// ObservedSaving is SequentialTime − PipelinedTime (seconds).
	ObservedSaving float64
	// PredictedSequential and PredictedPipelined are the overlapped-cost
	// model's totals in seconds; PredictedSaving their difference.
	PredictedSequential, PredictedPipelined, PredictedSaving float64
	// Obs is the point's observability report: the sequential run's
	// spans tagged "seq/...", the overlapped run's "pipe/...", so the
	// two schedules sit side by side in one trace (nil unless
	// Config.Obs enables collection).
	Obs *obs.Report

	// Failed marks a point that panicked or was cancelled before it
	// started (Config.Context); its timings are zero and Err explains.
	Failed bool
	// Err is the failure message when Failed.
	Err string
}

// ObservedSavingFraction is the observed saving over the sequential total
// (0 when degenerate).
func (p PipelinePoint) ObservedSavingFraction() float64 {
	if p.SequentialTime <= 0 {
		return 0
	}
	return p.ObservedSaving / p.SequentialTime
}

// PredictedSavingFraction is the predicted saving over the predicted
// sequential total (0 when degenerate).
func (p PipelinePoint) PredictedSavingFraction() float64 {
	if p.PredictedSequential <= 0 {
		return 0
	}
	return p.PredictedSaving / p.PredictedSequential
}

// PipelineData is one workload's pipelined sweep.
type PipelineData struct {
	// Workload names the pipelined algorithm.
	Workload string
	// Points holds one entry per input size, ascending.
	Points []PipelinePoint
	// Records holds the canonical result records, one per point in
	// point order, stamped with the run identity.
	Records []results.Record
	// Obs folds every point's report in point order, each tagged
	// "<workload> n=<N>" (nil unless Config.Obs enables collection).
	Obs *obs.Report
}

// PipelinePointRecord converts one pipeline point into the canonical
// record shape (payload only, no run identity).
func PipelinePointRecord(workload string, pt PipelinePoint) results.Record {
	rec := results.Record{
		Kind:     "pipeline",
		Workload: workload,
		N:        pt.N,
		Chunks:   pt.Chunks,
		Failed:   pt.Failed,
		Err:      pt.Err,
	}
	if pt.PredictedSequential != 0 || pt.PredictedPipelined != 0 {
		rec.Predicted = &results.Predicted{
			SequentialS: pt.PredictedSequential,
			PipelinedS:  pt.PredictedPipelined,
			SavingS:     pt.PredictedSaving,
		}
	}
	if pt.SequentialTime > 0 || pt.PipelinedTime > 0 {
		rec.Observed = &results.Observed{
			SequentialS: pt.SequentialTime,
			PipelinedS:  pt.PipelinedTime,
			SavingS:     pt.ObservedSaving,
		}
	}
	if snap := pt.Obs.Snapshot(); !snap.Empty() {
		rec.Obs = &snap
	}
	return rec
}

// PipelineRecord converts one pipeline point into the canonical record
// stamped with this runner's run identity.
func (r *Runner) PipelineRecord(workload string, pt PipelinePoint) results.Record {
	rec := PipelinePointRecord(workload, pt)
	r.stampIdentity(&rec)
	return rec
}

// runPipelineSweep mirrors runSweep for pipeline points: points are
// self-contained, so the assembly is byte-identical for any worker count.
// Panicking points are recorded as Failed with the stack in Err;
// cancellation returns the partial data with ErrCancelled.
func (r *Runner) runPipelineSweep(workload string, sizes []int, point func(idx, n int) (PipelinePoint, error)) (*PipelineData, error) {
	data := &PipelineData{Workload: workload, Points: make([]PipelinePoint, len(sizes))}
	errs := sched.RunOpts(r.cfg.ctx(), len(sizes),
		sched.Options{Workers: r.cfg.workers(), Observer: r.cfg.SchedObserver},
		func(i int) error {
			pt, err := point(i, sizes[i])
			if err != nil {
				return err
			}
			data.Points[i] = pt
			return nil
		})
	cancelled, err := absorbSweepErrs(errs, func(i int, failed WorkloadPoint) {
		data.Points[i] = PipelinePoint{N: sizes[i], Failed: true, Err: failed.Err}
	})
	if err != nil {
		return nil, err
	}
	data.Records = make([]results.Record, len(data.Points))
	for i := range data.Points {
		data.Records[i] = r.PipelineRecord(workload, data.Points[i])
	}
	if err := r.foldPipelineObs(workload, data); err != nil {
		return nil, err
	}
	if cancelled {
		return data, ErrCancelled
	}
	return data, nil
}

// foldPipelineObs merges per-point reports in point order (no-op with
// observability off). Always returns nil; the error slot keeps the
// call sites single-line.
func (r *Runner) foldPipelineObs(workload string, data *PipelineData) error {
	if !r.cfg.Obs.Enabled() {
		return nil
	}
	data.Obs = r.newSweepReport()
	for i := range data.Points {
		data.Obs.Merge(data.Points[i].Obs, fmt.Sprintf("%s n=%d", workload, data.Points[i].N))
	}
	return nil
}

// observePipeline runs both schedules and fills the observed fields.
// footprint sizes each host; run drives the workload on a host built with
// the given stream count.
func (r *Runner) observePipeline(pt *PipelinePoint, workload string, n, idx int,
	footprint func(streams int) (int, error),
	run func(h *simgpu.Host, streams int) error) error {
	observe := func(streams int, tag string) (float64, error) {
		words, err := footprint(streams)
		if err != nil {
			return 0, err
		}
		h, err := r.newHost(words, workload, n, idx)
		if err != nil {
			return 0, err
		}
		if err := run(h, streams); err != nil {
			return 0, err
		}
		if rep := h.SnapshotObs(); rep != nil {
			if pt.Obs == nil {
				pt.Obs = r.newSweepReport()
			}
			pt.Obs.Merge(rep, tag)
		}
		return h.Report().Total.Seconds(), nil
	}
	seq, err := observe(1, "seq")
	if err != nil {
		return fmt.Errorf("%s n=%d sequential: %w", workload, n, err)
	}
	pipe, err := observe(pt.Streams, "pipe")
	if err != nil {
		return fmt.Errorf("%s n=%d pipelined: %w", workload, n, err)
	}
	pt.SequentialTime = seq
	pt.PipelinedTime = pipe
	pt.ObservedSaving = seq - pipe
	return nil
}

// predictPipeline fills the model-side fields from a chunked analysis.
func (r *Runner) predictPipeline(pt *PipelinePoint, a *core.Analysis) error {
	pc, err := core.GPUCostPipelined(a, r.params)
	if err != nil {
		return err
	}
	pt.PredictedSequential = pc.Sequential
	pt.PredictedPipelined = pc.Pipelined
	pt.PredictedSaving = pc.Saving()
	return nil
}

// RunVecAddPipelined sweeps chunked vector addition, sequential versus
// overlapped.
func (r *Runner) RunVecAddPipelined() (*PipelineData, error) {
	chunks := r.cfg.chunks()
	b := r.cfg.Device.WarpWidth
	return r.runPipelineSweep("vecadd-pipelined", r.VecAddSizes(), func(idx, n int) (PipelinePoint, error) {
		pt := PipelinePoint{N: n, Chunks: chunks, Streams: pipelineStreams}
		alg := algorithms.PipelinedVecAdd{N: n, Chunks: chunks, Streams: pipelineStreams}

		chunkLen := (n + chunks - 1) / chunks
		analysis, err := alg.Analyze(r.modelParams((chunkLen + b - 1) / b))
		if err != nil {
			return pt, fmt.Errorf("vecadd-pipelined n=%d: analyze: %w", n, err)
		}
		if err := r.predictPipeline(&pt, analysis); err != nil {
			return pt, fmt.Errorf("vecadd-pipelined n=%d: predict: %w", n, err)
		}

		rng := r.inputRNG("vecadd-pipelined", n, idx)
		a := randWords(rng, n)
		bb := randWords(rng, n)
		err = r.observePipeline(&pt, "vecadd-pipelined", n, idx,
			func(streams int) (int, error) {
				return algorithms.PipelinedVecAdd{N: n, Chunks: chunks, Streams: streams}.GlobalWords(r.cfg.Device.WarpWidth)
			},
			func(h *simgpu.Host, streams int) error {
				_, err := algorithms.PipelinedVecAdd{N: n, Chunks: chunks, Streams: streams}.Run(h, a, bb)
				return err
			})
		return pt, err
	})
}

// RunReducePipelined sweeps chunked reduction, sequential versus
// overlapped.
func (r *Runner) RunReducePipelined() (*PipelineData, error) {
	chunks := r.cfg.chunks()
	b := r.cfg.Device.WarpWidth
	return r.runPipelineSweep("reduce-pipelined", r.ReduceSizes(), func(idx, n int) (PipelinePoint, error) {
		pt := PipelinePoint{N: n, Chunks: chunks, Streams: pipelineStreams}
		alg := algorithms.PipelinedReduce{N: n, Chunks: chunks, Streams: pipelineStreams}

		chunkLen := (n + chunks - 1) / chunks
		analysis, err := alg.Analyze(r.modelParams((chunkLen + b - 1) / b))
		if err != nil {
			return pt, fmt.Errorf("reduce-pipelined n=%d: analyze: %w", n, err)
		}
		if err := r.predictPipeline(&pt, analysis); err != nil {
			return pt, fmt.Errorf("reduce-pipelined n=%d: predict: %w", n, err)
		}

		in := randBits(r.inputRNG("reduce-pipelined", n, idx), n)
		want := algorithms.ReduceReference(in)
		err = r.observePipeline(&pt, "reduce-pipelined", n, idx,
			func(streams int) (int, error) {
				return algorithms.PipelinedReduce{N: n, Chunks: chunks, Streams: streams}.GlobalWords(b)
			},
			func(h *simgpu.Host, streams int) error {
				got, err := algorithms.PipelinedReduce{N: n, Chunks: chunks, Streams: streams}.Run(h, in)
				if err != nil {
					return err
				}
				if got != want {
					return fmt.Errorf("%w: got %d want %d", algorithms.ErrVerifyFail, got, want)
				}
				return nil
			})
		return pt, err
	})
}

// RunMatMulPipelined sweeps row-banded matrix multiplication, sequential
// versus overlapped.
func (r *Runner) RunMatMulPipelined() (*PipelineData, error) {
	chunks := r.cfg.chunks()
	b := r.cfg.Device.WarpWidth
	return r.runPipelineSweep("matmul-pipelined", r.MatMulSizes(), func(idx, n int) (PipelinePoint, error) {
		pt := PipelinePoint{N: n, Chunks: chunks, Streams: pipelineStreams}
		alg := algorithms.PipelinedMatMul{N: n, Chunks: chunks, Streams: pipelineStreams}

		// The widest band launches bandTiles·(n/b) blocks.
		tiles := n / b
		bands := chunks
		if bands > tiles {
			bands = tiles
		}
		bandTiles := (tiles + bands - 1) / bands
		analysis, err := alg.Analyze(r.modelParams(bandTiles * tiles))
		if err != nil {
			return pt, fmt.Errorf("matmul-pipelined n=%d: analyze: %w", n, err)
		}
		if err := r.predictPipeline(&pt, analysis); err != nil {
			return pt, fmt.Errorf("matmul-pipelined n=%d: predict: %w", n, err)
		}

		rng := r.inputRNG("matmul-pipelined", n, idx)
		a := randWords(rng, n*n)
		bm := randWords(rng, n*n)
		err = r.observePipeline(&pt, "matmul-pipelined", n, idx,
			func(streams int) (int, error) {
				return algorithms.PipelinedMatMul{N: n, Chunks: chunks, Streams: streams}.GlobalWords(b)
			},
			func(h *simgpu.Host, streams int) error {
				_, err := algorithms.PipelinedMatMul{N: n, Chunks: chunks, Streams: streams}.Run(h, a, bm)
				return err
			})
		return pt, err
	})
}
