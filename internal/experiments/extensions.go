package experiments

import (
	"fmt"

	"atgpu/internal/algorithms"
	"atgpu/internal/calibrate"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// This file implements the paper's future-work experiments (§V):
//
//   - RunScan: "further experiments on other computational problems to
//     verify our model" — the prefix-sum sweep, same predicted-vs-observed
//     methodology as §IV.
//   - RunTransposeContrast: the coalescing study; the model's qᵢ metric
//     must order the naive and tiled variants the way the device does.
//   - RunOutOfCore: "approaches where the data does not fit on the global
//     memory" — serial vs overlapped chunked reduction.
//   - RunDeviceSweep: "verify the model using other GPUs" — the same
//     workload calibrated and checked on several device presets.

// ScanSizes returns the scan sweep sizes.
func (r *Runner) ScanSizes() []int {
	if r.cfg.SizesReduce != nil {
		return r.cfg.SizesReduce
	}
	hi := 20
	if r.cfg.Full {
		hi = 24
	}
	var sizes []int
	for e := 14; e <= hi; e += 2 {
		sizes = append(sizes, 1<<e)
	}
	return sizes
}

// RunScan sweeps the prefix-sum workload with the §IV methodology. Its
// inputs are deterministic (no RNG), so it parallelises through runSweep
// like the §IV workloads.
func (r *Runner) RunScan() (*WorkloadData, error) {
	b := r.cfg.Device.WarpWidth
	return r.runSweep("scan", r.ScanSizes(), func(idx, n int) (WorkloadPoint, error) {
		alg := algorithms.Scan{N: n}

		analysis, err := alg.Analyze(r.modelParams((n + b - 1) / b))
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("scan n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("scan n=%d: predict: %w", n, err)
		}
		pt.N = n

		h, err := r.newHost(alg.GlobalWords(b), "scan", n, idx)
		if err != nil {
			return WorkloadPoint{}, err
		}
		in := make([]algorithms.Word, n)
		for i := range in {
			in[i] = algorithms.Word(i%3 - 1)
		}
		got, err := alg.Run(h, in)
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("scan n=%d: run: %w", n, err)
		}
		// Spot-check the tail against the reference reduction.
		if got[n-1] != algorithms.ReduceReference(in) {
			return WorkloadPoint{}, fmt.Errorf("scan n=%d: %w", n, algorithms.ErrVerifyFail)
		}
		pt.observe(h.Report())
		return pt, nil
	})
}

// TransposeContrast reports the coalescing study at one size.
type TransposeContrast struct {
	N int
	// Predicted q (block transactions) per variant, from the analyses.
	NaiveQ, TiledQ float64
	// Observed device cycles and kernel seconds per variant.
	NaiveCycles, TiledCycles int64
	NaiveKernel, TiledKernel float64
	// ModelOrdersCorrectly is true when the variant the model says is
	// cheaper is the variant the device runs faster.
	ModelOrdersCorrectly bool
}

// RunTransposeContrast runs both transpose variants at size n.
func (r *Runner) RunTransposeContrast(n int) (*TransposeContrast, error) {
	out := &TransposeContrast{N: n}
	b := r.cfg.Device.WarpWidth

	for _, tiled := range []bool{false, true} {
		alg := algorithms.Transpose{N: n, Tiled: tiled}
		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(b)))
		if err != nil {
			return nil, fmt.Errorf("%s: analyze: %w", alg.Name(), err)
		}
		h, err := r.newHost(alg.GlobalWords(), alg.Name(), n, 0)
		if err != nil {
			return nil, err
		}
		in := make([]algorithms.Word, n*n)
		for i := range in {
			in[i] = algorithms.Word(i)
		}
		got, err := alg.Run(h, in)
		if err != nil {
			return nil, fmt.Errorf("%s: run: %w", alg.Name(), err)
		}
		want, err := algorithms.TransposeReference(in, n)
		if err != nil {
			return nil, err
		}
		for i := range want {
			if got[i] != want[i] {
				return nil, fmt.Errorf("%s: %w at %d", alg.Name(), algorithms.ErrVerifyFail, i)
			}
		}
		ks := h.KernelStats()
		if tiled {
			out.TiledQ = analysis.TotalIO()
			out.TiledCycles = ks.Cycles
			out.TiledKernel = h.KernelTime().Seconds()
		} else {
			out.NaiveQ = analysis.TotalIO()
			out.NaiveCycles = ks.Cycles
			out.NaiveKernel = h.KernelTime().Seconds()
		}
	}
	out.ModelOrdersCorrectly = (out.NaiveQ > out.TiledQ) == (out.NaiveCycles > out.TiledCycles)
	return out, nil
}

// OutOfCorePoint is one chunk-size configuration of the out-of-core study.
type OutOfCorePoint struct {
	ChunkWords int
	Chunks     int
	Serial     float64 // seconds
	Overlapped float64 // seconds
	Speedup    float64
}

// RunOutOfCore runs the partitioned reduction over several chunk sizes on
// a deliberately small-G device.
func (r *Runner) RunOutOfCore(n int, chunks []int) ([]OutOfCorePoint, error) {
	var out []OutOfCorePoint
	in := make([]algorithms.Word, n)
	for i := range in {
		in[i] = algorithms.Word(i & 1)
	}
	want := algorithms.ReduceReference(in)
	for _, chunk := range chunks {
		b := r.cfg.Device.WarpWidth
		h, err := r.newHost(2*chunk+(chunk+b-1)/b+4*b, "ooc", n, chunk)
		if err != nil {
			return nil, err
		}
		alg := algorithms.OutOfCoreReduce{N: n, ChunkWords: chunk}
		res, err := alg.Run(h, in)
		if err != nil {
			return nil, fmt.Errorf("ooc chunk=%d: %w", chunk, err)
		}
		if res.Sum != want {
			return nil, fmt.Errorf("ooc chunk=%d: %w", chunk, algorithms.ErrVerifyFail)
		}
		out = append(out, OutOfCorePoint{
			ChunkWords: chunk,
			Chunks:     res.Chunks,
			Serial:     res.SerialTime.Seconds(),
			Overlapped: res.OverlappedTime.Seconds(),
			Speedup:    res.Speedup(),
		})
	}
	return out, nil
}

// DevicePoint is one preset's verification outcome.
type DevicePoint struct {
	Device string
	// DeltaPredicted/DeltaObserved are ΔT/ΔE for the probe workload.
	DeltaPredicted, DeltaObserved float64
	// CostCoverage is predicted GPU-cost over observed total.
	CostCoverage float64
}

// RunDeviceSweep calibrates each preset and verifies the model against a
// vecadd probe on it — the cross-GPU validation of the paper's future
// work. Each device gets its own calibration, exactly as a practitioner
// would instantiate γ, λ, α, β per machine.
func RunDeviceSweep(n int, scheme transfer.Scheme, syncCost int64) ([]DevicePoint, error) {
	var out []DevicePoint
	link := transfer.PCIeGen3x8Link()
	for _, preset := range simgpu.Presets() {
		calCfg := preset
		calCfg.GlobalWords = 1 << 22
		dev, err := simgpu.New(calCfg)
		if err != nil {
			return nil, err
		}
		eng, err := transfer.NewEngine(link, scheme)
		if err != nil {
			return nil, err
		}
		cal, err := calibrate.Run(dev, eng, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: calibrate: %w", preset.Name, err)
		}

		cfg := Config{Device: preset, Scheme: scheme, Seed: 1}
		r := &Runner{cfg: cfg, link: link, params: cal.Params, calib: cal}

		alg := algorithms.VecAdd{N: n}
		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(preset.WarpWidth)))
		if err != nil {
			return nil, fmt.Errorf("%s: analyze: %w", preset.Name, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return nil, err
		}
		h, err := r.newHost(alg.GlobalWords(), "device-sweep", n, 0)
		if err != nil {
			return nil, err
		}
		a := make([]algorithms.Word, n)
		bv := make([]algorithms.Word, n)
		if _, err := alg.Run(h, a, bv); err != nil {
			return nil, fmt.Errorf("%s: run: %w", preset.Name, err)
		}
		rep := h.Report()
		out = append(out, DevicePoint{
			Device:         preset.Name,
			DeltaPredicted: pt.DeltaPredicted,
			DeltaObserved:  rep.TransferFraction(),
			CostCoverage:   pt.ATGPUCost / rep.Total.Seconds(),
		})
	}
	return out, nil
}
