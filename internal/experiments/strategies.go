package experiments

import (
	"fmt"

	"atgpu/internal/algorithms"
	"atgpu/internal/models"
)

// StrategyPoint is one reduction strategy's predicted and observed outcome
// at a fixed input size — the "further investigation of reduction
// algorithms on the ATGPU" of the paper's future work.
type StrategyPoint struct {
	Strategy string
	// Rounds is R; Blocks the total blocks launched.
	Rounds int
	Blocks int64
	// PredictedKernel is the SWGPU-style kernel-side cost (seconds) —
	// transfer is identical across strategies, so the kernel side is
	// where the model must discriminate.
	PredictedKernel float64
	// ObservedKernel and ObservedTotal are simulated seconds.
	ObservedKernel float64
	ObservedTotal  float64
}

// RunReduceStrategies compares all reduction strategies at size n. The
// returned slice follows algorithms.ReduceStrategies() order.
func (r *Runner) RunReduceStrategies(n int) ([]StrategyPoint, error) {
	var out []StrategyPoint
	b := r.cfg.Device.WarpWidth
	in := make([]algorithms.Word, n)
	for i := range in {
		in[i] = algorithms.Word(i%5 - 2)
	}
	want := algorithms.ReduceReference(in)

	for _, strat := range algorithms.ReduceStrategies() {
		alg := algorithms.ReduceVariant{N: n, Strategy: strat}
		analysis, err := alg.Analyze(r.modelParams((n + b - 1) / b))
		if err != nil {
			return nil, fmt.Errorf("%s: analyze: %w", strat, err)
		}
		kernelCost, err := models.SWGPUCost(analysis, r.params)
		if err != nil {
			return nil, err
		}

		h, err := r.newHost(alg.GlobalWords(b), "reduce-strategies", n, int(strat))
		if err != nil {
			return nil, err
		}
		got, err := alg.Run(h, in)
		if err != nil {
			return nil, fmt.Errorf("%s: run: %w", strat, err)
		}
		if got != want {
			return nil, fmt.Errorf("%s: %w: got %d want %d", strat, algorithms.ErrVerifyFail, got, want)
		}
		rep := h.Report()
		out = append(out, StrategyPoint{
			Strategy:        strat.String(),
			Rounds:          rep.Rounds,
			Blocks:          rep.Stats.BlocksExecuted,
			PredictedKernel: kernelCost,
			ObservedKernel:  rep.Kernel.Seconds(),
			ObservedTotal:   rep.Total.Seconds(),
		})
	}
	return out, nil
}

// StrategyOrderingAgreement reports how many strategy pairs the model
// orders the same way the device does (by kernel time), out of all pairs.
// A perfect model scores 1.0.
func StrategyOrderingAgreement(points []StrategyPoint) float64 {
	pairs, agree := 0, 0
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			pi, pj := points[i], points[j]
			if pi.PredictedKernel == pj.PredictedKernel || pi.ObservedKernel == pj.ObservedKernel {
				continue
			}
			pairs++
			if (pi.PredictedKernel < pj.PredictedKernel) == (pi.ObservedKernel < pj.ObservedKernel) {
				agree++
			}
		}
	}
	if pairs == 0 {
		return 1
	}
	return float64(agree) / float64(pairs)
}
