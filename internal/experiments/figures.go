package experiments

import (
	"fmt"

	"atgpu/internal/results"
	"atgpu/internal/stats"
)

// Figure is the data behind one paper figure panel: shared x, one or more
// named y series.
type Figure struct {
	// ID is the paper's label, e.g. "fig3a".
	ID string
	// Title describes the panel.
	Title string
	// XLabel names the x axis.
	XLabel string
	// Series holds the panel's curves.
	Series []stats.Series
}

func mustSeries(name string, x, y []float64) stats.Series {
	s, err := stats.NewSeries(name, x, y)
	if err != nil {
		// Series built from a WorkloadData sweep always have matched
		// lengths; reaching here is a programming error.
		panic(err)
	}
	return s
}

// Column accessors over the canonical record. Records built from bare
// test literals may carry no Predicted/Observed payload at all; a nil
// payload reads as zero, exactly like the zero-valued point fields the
// figures were originally built from.

func colATGPUCost(r results.Record) float64 {
	if r.Predicted == nil {
		return 0
	}
	return r.Predicted.ATGPUCost
}

func colSWGPUCost(r results.Record) float64 {
	if r.Predicted == nil {
		return 0
	}
	return r.Predicted.SWGPUCost
}

func colDeltaPredicted(r results.Record) float64 {
	if r.Predicted == nil {
		return 0
	}
	return r.Predicted.Delta
}

func colTotalTime(r results.Record) float64 {
	if r.Observed == nil {
		return 0
	}
	return r.Observed.TotalS
}

func colKernelTime(r results.Record) float64 {
	if r.Observed == nil {
		return 0
	}
	return r.Observed.KernelS
}

func colDeltaObserved(r results.Record) float64 {
	if r.Observed == nil {
		return 0
	}
	return r.Observed.Delta
}

// PredictedFigure builds the "(a) Predicted results" panel: ATGPU vs SWGPU
// cost against input size (Figures 3a, 4a, 5a).
func PredictedFigure(id string, d *WorkloadData) Figure {
	recs := d.records()
	x := results.Sizes(recs)
	return Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s: predicted cost (s)", d.Workload),
		XLabel: "n",
		Series: []stats.Series{
			mustSeries("ATGPU", x, results.Column(recs, colATGPUCost)),
			mustSeries("SWGPU", x, results.Column(recs, colSWGPUCost)),
		},
	}
}

// ObservedFigure builds the "(b) Observed results" panel: total vs kernel
// simulated time (Figures 3b, 4b, 5b).
func ObservedFigure(id string, d *WorkloadData) Figure {
	recs := d.records()
	x := results.Sizes(recs)
	return Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s: observed time (s)", d.Workload),
		XLabel: "n",
		Series: []stats.Series{
			mustSeries("Total", x, results.Column(recs, colTotalTime)),
			mustSeries("Kernel", x, results.Column(recs, colKernelTime)),
		},
	}
}

// NormalisedFigure builds the "(c) Normalised results" panel: all four
// series rescaled to [0,1] (Figures 3c, 4c).
func NormalisedFigure(id string, d *WorkloadData) Figure {
	recs := d.records()
	x := results.Sizes(recs)
	raw := []stats.Series{
		mustSeries("ATGPU", x, results.Column(recs, colATGPUCost)),
		mustSeries("SWGPU", x, results.Column(recs, colSWGPUCost)),
		mustSeries("Total", x, results.Column(recs, colTotalTime)),
		mustSeries("Kernel", x, results.Column(recs, colKernelTime)),
	}
	norm := make([]stats.Series, len(raw))
	for i, s := range raw {
		norm[i] = s.Normalise()
	}
	return Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s: normalised cost/time (0→1)", d.Workload),
		XLabel: "n",
		Series: norm,
	}
}

// DeltaFigure builds one Figure 6 panel: the predicted (Δ_T) and observed
// (Δ_E) proportions of time/cost allocated to data transfer.
func DeltaFigure(id string, d *WorkloadData) Figure {
	recs := d.records()
	x := results.Sizes(recs)
	return Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s: transfer proportion Δ", d.Workload),
		XLabel: "n",
		Series: []stats.Series{
			mustSeries("ΔE (Observed)", x, results.Column(recs, colDeltaObserved)),
			mustSeries("ΔT (Predicted)", x, results.Column(recs, colDeltaPredicted)),
		},
	}
}

// Figures expands a workload sweep into its paper panels. VecAdd yields
// 3a/3b/3c and 6a; reduce 4a/4b/4c and 6b; matmul 5a/5b and 6c (the paper
// has no normalised matmul panel).
func Figures(d *WorkloadData) []Figure {
	switch d.Workload {
	case "vecadd":
		return []Figure{
			PredictedFigure("fig3a", d),
			ObservedFigure("fig3b", d),
			NormalisedFigure("fig3c", d),
			DeltaFigure("fig6a", d),
		}
	case "reduce":
		return []Figure{
			PredictedFigure("fig4a", d),
			ObservedFigure("fig4b", d),
			NormalisedFigure("fig4c", d),
			DeltaFigure("fig6b", d),
		}
	case "matmul":
		return []Figure{
			PredictedFigure("fig5a", d),
			ObservedFigure("fig5b", d),
			DeltaFigure("fig6c", d),
		}
	}
	return nil
}
