package experiments

import (
	"fmt"
	"strings"

	"atgpu/internal/results"
	"atgpu/internal/stats"
)

// Summary condenses one workload's sweep into the Section IV-D statistics:
// the average observed transfer share, the average gap between predicted
// and observed transfer proportions, the share of total running time the
// SWGPU baseline accounts for, and the growth-shape gaps of both models
// against the observed total.
type Summary struct {
	// Workload names the algorithm.
	Workload string
	// MeanDeltaObserved is the average Δ_E — the paper reports 84% for
	// vector addition, 35% for reduction, and a small value for matmul.
	MeanDeltaObserved float64
	// MeanDeltaPredicted is the average Δ_T.
	MeanDeltaPredicted float64
	// MeanDeltaGap is mean |Δ_T − Δ_E| — the paper reports ≤1.5%
	// (vecadd), 5.49% (reduction), 0.76% (matmul).
	MeanDeltaGap float64
	// SWGPUCaptured is the average share of observed total running time
	// that the kernel-side (SWGPU-visible) portion represents — 16%, 58%
	// and 89% in the paper for the three workloads.
	SWGPUCaptured float64
	// ATGPUGrowthGap and SWGPUGrowthGap compare each model's normalised
	// growth against the observed total's (smaller = closer shape); the
	// paper's headline claim is ATGPUGrowthGap < SWGPUGrowthGap for the
	// transfer-affected workloads.
	ATGPUGrowthGap float64
	SWGPUGrowthGap float64
	// ATGPUSlopeRatio and SWGPUSlopeRatio are fitted-slope ratios of each
	// predicted cost against the observed total time: a ratio near 1
	// means the model's cost grows at the observed rate.
	ATGPUSlopeRatio float64
	SWGPUSlopeRatio float64
	// FailedPoints, Retries, WatchdogFires and DegradedLaunches aggregate
	// the sweep's fault-recovery work across all points (failed included).
	// All zero in fault-free runs.
	FailedPoints     int
	Retries          int
	WatchdogFires    int
	DegradedLaunches int
}

// Summarise computes the Section IV-D statistics for one sweep. Statistics
// cover the successful points; failed points contribute only to the
// resilience aggregates, which come from the same record fold the
// sweep's own totals use.
func Summarise(d *WorkloadData) (Summary, error) {
	recs := d.records()
	agg := results.Fold(recs)
	s := Summary{
		Workload:         d.Workload,
		FailedPoints:     agg.Failed,
		Retries:          agg.Transfers.Retries,
		WatchdogFires:    agg.Resilience.WatchdogFires,
		DegradedLaunches: agg.Resilience.DegradedLaunches,
	}
	pts := results.Successful(recs)
	if len(pts) == 0 {
		return Summary{}, fmt.Errorf("experiments: no successful points for %s (%d failed)",
			d.Workload, s.FailedPoints)
	}

	dObs := results.Column(recs, colDeltaObserved)
	dPred := results.Column(recs, colDeltaPredicted)
	s.MeanDeltaObserved = stats.Mean(dObs)
	s.MeanDeltaPredicted = stats.Mean(dPred)
	gap, err := stats.MeanAbsDiff(dPred, dObs)
	if err != nil {
		return Summary{}, err
	}
	s.MeanDeltaGap = gap

	// Captured share: kernel-side time over total, averaged over sizes.
	// Points without an observed total carry no share and are skipped,
	// not averaged in as zeros.
	captured := make([]float64, 0, len(pts))
	for _, r := range pts {
		if r.Observed != nil && r.Observed.TotalS > 0 {
			captured = append(captured, (r.Observed.KernelS+r.Observed.SyncS)/r.Observed.TotalS)
		}
	}
	s.SWGPUCaptured = stats.Mean(captured)

	x := results.Sizes(recs)
	total := mustSeries("Total", x, results.Column(recs, colTotalTime))
	at := mustSeries("ATGPU", x, results.Column(recs, colATGPUCost))
	sw := mustSeries("SWGPU", x, results.Column(recs, colSWGPUCost))

	if len(pts) >= 2 {
		if s.ATGPUGrowthGap, err = stats.GrowthGap(at, total); err != nil {
			return Summary{}, err
		}
		if s.SWGPUGrowthGap, err = stats.GrowthGap(sw, total); err != nil {
			return Summary{}, err
		}
		ft, err := stats.FitLine(x, total.Y)
		if err != nil {
			return Summary{}, err
		}
		fa, err := stats.FitLine(x, at.Y)
		if err != nil {
			return Summary{}, err
		}
		fs, err := stats.FitLine(x, sw.Y)
		if err != nil {
			return Summary{}, err
		}
		if ft.Slope != 0 {
			s.ATGPUSlopeRatio = fa.Slope / ft.Slope
			s.SWGPUSlopeRatio = fs.Slope / ft.Slope
		}
	}
	return s, nil
}

// String renders the summary as a short report block.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:\n", s.Workload)
	fmt.Fprintf(&sb, "  mean ΔE (observed transfer share) = %.1f%%\n", 100*s.MeanDeltaObserved)
	fmt.Fprintf(&sb, "  mean ΔT (predicted transfer share) = %.1f%%\n", 100*s.MeanDeltaPredicted)
	fmt.Fprintf(&sb, "  mean |ΔT-ΔE| = %.2f%%\n", 100*s.MeanDeltaGap)
	fmt.Fprintf(&sb, "  SWGPU-visible share of total time = %.1f%%\n", 100*s.SWGPUCaptured)
	fmt.Fprintf(&sb, "  growth gap vs Total: ATGPU %.4f, SWGPU %.4f\n", s.ATGPUGrowthGap, s.SWGPUGrowthGap)
	fmt.Fprintf(&sb, "  slope ratio vs Total: ATGPU %.3f, SWGPU %.3f\n", s.ATGPUSlopeRatio, s.SWGPUSlopeRatio)
	// The resilience line appears only for faulted sweeps, keeping
	// fault-free reports byte-identical to a rate-0 run.
	if s.FailedPoints > 0 || s.Retries > 0 || s.WatchdogFires > 0 || s.DegradedLaunches > 0 {
		fmt.Fprintf(&sb, "  resilience: %d failed points, %d retries, %d watchdog fires, %d degraded launches\n",
			s.FailedPoints, s.Retries, s.WatchdogFires, s.DegradedLaunches)
	}
	return sb.String()
}
