package experiments

import (
	"math"
	"testing"
)

// atomicsTestConfig shrinks the atomic-workload sweeps so the full
// predicted-vs-observed pipeline runs in seconds.
func atomicsTestConfig() Config {
	cfg := DefaultConfig()
	cfg.SizesHistogram = []int{1 << 8, 1 << 10}
	cfg.SizesCompact = []int{1 << 8, 1 << 10}
	cfg.SizesTopK = []int{1 << 8, 1 << 10}
	cfg.SizesMonteCarlo = []int{1 << 6, 1 << 8}
	return cfg
}

func newAtomicsRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(atomicsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkSweep asserts every point succeeded with positive predictions and
// observations.
func checkSweep(t *testing.T, data *WorkloadData, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s sweep: %v", data.Workload, err)
	}
	if data.FailedPoints() != 0 {
		t.Fatalf("%s sweep: %d failed points", data.Workload, data.FailedPoints())
	}
	for _, p := range data.Points {
		if p.ATGPUCost <= 0 || p.TotalTime <= 0 || p.KernelTime <= 0 {
			t.Errorf("%s n=%d: non-positive outcome: cost=%v total=%v kernel=%v",
				data.Workload, p.N, p.ATGPUCost, p.TotalTime, p.KernelTime)
		}
	}
}

func TestAtomicSweeps(t *testing.T) {
	r := newAtomicsRunner(t)
	for _, run := range []struct {
		name string
		fn   func() (*WorkloadData, error)
	}{
		{"histogram", func() (*WorkloadData, error) { return r.RunHistogram(false) }},
		{"histogram-priv", func() (*WorkloadData, error) { return r.RunHistogram(true) }},
		{"compact", r.RunCompact},
		{"topk", r.RunTopK},
		{"montecarlo", r.RunMonteCarlo},
	} {
		data, err := run.fn()
		checkSweep(t, data, err)
		if data.Workload != run.name {
			t.Errorf("workload name %q, want %q", data.Workload, run.name)
		}
	}
}

func TestAtomicSweepSizeDefaults(t *testing.T) {
	r, err := NewRunner(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.HistogramSizes(); got[0] != 1<<10 || got[len(got)-1] != 1<<16 {
		t.Fatalf("default histogram sizes = %v", got)
	}
	if got := r.MonteCarloSizes(); got[0] != 1<<8 {
		t.Fatalf("default montecarlo sizes = %v", got)
	}
	for _, w := range []string{"histogram", "histogram-priv", "compact", "topk", "montecarlo"} {
		if _, err := r.PredictPoint(w, 1<<10); err != nil {
			t.Errorf("PredictPoint(%s): %v", w, err)
		}
	}
}

// TestHistogramContentionStudy is the acceptance check of the contention
// model: at skew 1 the analyzer's pessimistic bound is realised, so the
// predicted contention factor must land within 10% of the observed one,
// and the observed factor must grow with skew.
func TestHistogramContentionStudy(t *testing.T) {
	r := newAtomicsRunner(t)
	const n = 1 << 10
	study, err := r.RunHistogramContention(n, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Points) != 3 {
		t.Fatalf("%d points, want 3", len(study.Points))
	}
	for _, p := range study.Points {
		if p.PredictedFactor <= 1 {
			t.Errorf("skew=%v: predicted factor %v not above 1", p.Skew, p.PredictedFactor)
		}
		if p.ObservedFactor <= 0 {
			t.Errorf("skew=%v: observed factor %v not positive", p.Skew, p.ObservedFactor)
		}
		if p.StaticAccesses != p.ObservedAccesses {
			t.Errorf("skew=%v: static accesses %d != observed %d (access counts are input-independent)",
				p.Skew, p.StaticAccesses, p.ObservedAccesses)
		}
		// Static serialisation is the worst case over inputs.
		if p.StaticSerialisations < p.ObservedSerialisations {
			t.Errorf("skew=%v: static serialisations %d below observed %d — the bound is unsound",
				p.Skew, p.StaticSerialisations, p.ObservedSerialisations)
		}
	}
	// Observed contention must be monotone in skew.
	for i := 1; i < len(study.Points); i++ {
		if study.Points[i].ObservedFactor < study.Points[i-1].ObservedFactor {
			t.Errorf("observed factor fell from %v to %v as skew rose %v→%v",
				study.Points[i-1].ObservedFactor, study.Points[i].ObservedFactor,
				study.Points[i-1].Skew, study.Points[i].Skew)
		}
	}
	// The headline acceptance: fully skewed input realises the bound.
	last := study.Points[len(study.Points)-1]
	if last.Skew != 1 {
		t.Fatalf("last point skew = %v, want 1", last.Skew)
	}
	relErr := math.Abs(last.PredictedFactor-last.ObservedFactor) / last.ObservedFactor
	if relErr > 0.10 {
		t.Errorf("skew=1: predicted factor %v vs observed %v: relative error %.3f exceeds 10%%",
			last.PredictedFactor, last.ObservedFactor, relErr)
	}
	if last.PredictedSeconds <= 0 {
		t.Errorf("skew=1: predicted contended seconds %v not positive", last.PredictedSeconds)
	}
}
